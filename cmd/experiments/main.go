// Command experiments runs the paper-reproduction experiment suite E1-E15
// (one experiment per quantitative claim; see DESIGN.md §3) and prints the
// tables recorded in EXPERIMENTS.md. Ensemble experiments stream trials
// through sim.Reduce, so -scale full runs in constant memory.
//
// Usage:
//
//	experiments -list
//	experiments -run E1,E4 -scale quick
//	experiments -scale full -seed 7        # run everything
//	experiments -run E2 -scale full -json  # NDJSON for machines
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"cobrawalk/internal/buildinfo"
	"cobrawalk/internal/expt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list experiments and exit")
		runIDs  = fs.String("run", "", "comma-separated experiment IDs (default: all)")
		scale   = fs.String("scale", "quick", "smoke | quick | full")
		seed    = fs.Uint64("seed", 1, "master RNG seed")
		workers = fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		format  = fs.String("format", "text", "table output: text | csv | json")
		jsonOut = fs.Bool("json", false, "shorthand for -format json")
		version = fs.Bool("version", false, "print build info and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(w, buildinfo.Read())
		return nil
	}

	if *list {
		for _, e := range expt.Registry() {
			fmt.Fprintf(w, "%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}

	sc, err := expt.ParseScale(*scale)
	if err != nil {
		return err
	}
	fm, err := expt.ParseFormat(*format)
	if err != nil {
		return err
	}
	if *jsonOut {
		fm = expt.FormatJSON
	}
	p := expt.Params{Scale: sc, Seed: *seed, Workers: *workers, Format: fm}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *runIDs == "" {
		return expt.RunAll(ctx, w, p)
	}
	for _, id := range strings.Split(*runIDs, ",") {
		id = strings.TrimSpace(id)
		e, err := expt.Lookup(id)
		if err != nil {
			return err
		}
		if err := expt.Announce(w, p, e); err != nil {
			return err
		}
		if err := e.Run(ctx, w, p); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}
