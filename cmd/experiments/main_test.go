package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"E1", "E4", "E11"} {
		if !strings.Contains(out, id) {
			t.Fatalf("listing missing %s:\n%s", id, out)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E4", "-scale", "smoke", "-seed", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== E4") || !strings.Contains(out, "exact duality") {
		t.Fatalf("E4 output unexpected:\n%s", out)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E5, E4", "-scale", "smoke"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== E5") || !strings.Contains(out, "=== E4") {
		t.Fatalf("missing experiment sections:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "galactic"}, &buf); err == nil {
		t.Fatal("bad scale should fail")
	}
	if err := run([]string{"-run", "E99", "-scale", "smoke"}, &buf); err == nil {
		t.Fatal("unknown id should fail")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("bad flag should fail")
	}
}
