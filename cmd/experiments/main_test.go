package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunJSONFormat(t *testing.T) {
	for _, args := range [][]string{
		{"-run", "E4", "-scale", "smoke", "-seed", "5", "-json"},
		{"-run", "E4", "-scale", "smoke", "-seed", "5", "-format", "json"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		// Every line must be a standalone JSON object (NDJSON); the first
		// announces the experiment, the rest are tables.
		sc := bufio.NewScanner(&buf)
		sc.Buffer(make([]byte, 1024*1024), 1024*1024)
		lines := 0
		for sc.Scan() {
			var rec map[string]any
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				t.Fatalf("line %d invalid JSON: %v\n%s", lines, err, sc.Text())
			}
			if lines == 0 {
				if rec["experiment"] != "E4" {
					t.Fatalf("first record should announce E4: %v", rec)
				}
			} else if _, ok := rec["columns"]; !ok {
				t.Fatalf("table record missing columns: %v", rec)
			}
			lines++
		}
		if lines < 2 {
			t.Fatalf("expected announce + at least one table, got %d lines", lines)
		}
	}
}

func TestRunCSVFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E4", "-scale", "smoke", "-format", "csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ",") {
		t.Fatalf("csv output has no commas:\n%s", buf.String())
	}
}

func TestRunBadFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-format", "yaml"}, &buf); err == nil {
		t.Fatal("bad format should fail")
	}
}

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"E1", "E4", "E11"} {
		if !strings.Contains(out, id) {
			t.Fatalf("listing missing %s:\n%s", id, out)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E4", "-scale", "smoke", "-seed", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== E4") || !strings.Contains(out, "exact duality") {
		t.Fatalf("E4 output unexpected:\n%s", out)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E5, E4", "-scale", "smoke"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== E5") || !strings.Contains(out, "=== E4") {
		t.Fatalf("missing experiment sections:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "galactic"}, &buf); err == nil {
		t.Fatal("bad scale should fail")
	}
	if err := run([]string{"-run", "E99", "-scale", "smoke"}, &buf); err == nil {
		t.Fatal("unknown id should fail")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("bad flag should fail")
	}
}
