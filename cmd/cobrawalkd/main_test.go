package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-bogus"},
		{}, // -data is required
		{"-data", t.TempDir(), "-addr", "127.0.0.1:99999"}, // invalid port
	} {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cobrawalk") || !strings.Contains(out.String(), "go1") {
		t.Fatalf("-version output %q, want module and toolchain", out.String())
	}
}

// syncBuffer lets the test read daemon logs while run() writes them.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestBootServeShutdown boots the daemon on an ephemeral port, hits
// /v1/healthz over real TCP, and shuts it down with SIGTERM — the whole
// cmd wrapper, end to end.
func TestBootServeShutdown(t *testing.T) {
	logs := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-data", t.TempDir()}, io.Discard, logs)
	}()

	// The daemon logs its realised address once listening.
	addrRe := regexp.MustCompile(`addr=(http://[0-9.:]+)`)
	var base string
	deadline := time.Now().Add(30 * time.Second)
	for base == "" {
		if m := addrRe.FindStringSubmatch(logs.String()); m != nil {
			base = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited early: %v\nlogs:\n%s", err, logs.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never listened; logs:\n%s", logs.String())
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(blob), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, blob)
	}

	resp, err = http.Get(base + "/v1/cachestats")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(blob), `"hits"`) ||
		!strings.Contains(string(blob), `"evictions"`) {
		t.Fatalf("cachestats: %d %s", resp.StatusCode, blob)
	}

	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down on SIGINT")
	}
	if !strings.Contains(logs.String(), "shutting down") {
		t.Fatalf("no shutdown log; logs:\n%s", logs.String())
	}
	// The shutdown line summarises the graph cache counters.
	if !regexp.MustCompile(`cache_hits=\d+ cache_misses=\d+ cache_evictions=\d+`).MatchString(logs.String()) {
		t.Fatalf("shutdown log lacks cache counters; logs:\n%s", logs.String())
	}
}

// TestLogFlagValidation pins that bad -log-level/-log-format values fail
// fast instead of booting a daemon that logs nothing.
func TestLogFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-data", t.TempDir(), "-log-level", "loud"},
		{"-data", t.TempDir(), "-log-format", "xml"},
	} {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}
