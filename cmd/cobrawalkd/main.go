// Command cobrawalkd is the long-running simulation service: an HTTP
// daemon that accepts declarative sweep specs as jobs, runs them
// asynchronously through the sweep engine on a bounded scheduler, and
// persists every job under a data directory so a restarted daemon
// resumes in-flight work byte-identically. All jobs share one graph
// cache, so repeated topologies skip graph construction.
//
// The API lives under /v1 (see internal/server.NewHandler):
//
//	POST   /v1/jobs               submit a spec (cmd/sweep -spec format)
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          job status + progress
//	DELETE /v1/jobs/{id}          cancel
//	GET    /v1/jobs/{id}/results  results.ndjson once done
//	GET    /v1/jobs/{id}/trajectories
//	                              NDJSON per-round quantile bands
//	GET    /v1/jobs/{id}/events   span-event trace (queued → running →
//	                              per-point progress → terminal);
//	                              ?after=<seq> polls incrementally
//	GET    /v1/jobs/{id}/stream   live SSE stream: lifecycle, in-flight
//	                              digest snapshots, completed bands
//	GET    /v1/watch              live SSE firehose across all jobs
//	GET    /v1/processes          process registry
//	GET    /v1/families           graph family registry
//	GET    /v1/metrics            sweep metric registry
//	GET    /v1/cachestats         graph cache hit/miss/eviction counters
//	GET    /v1/healthz            liveness, uptime, build, job counts,
//	                              queue depth, cache counters
//	GET    /v1/version            build identity
//	GET    /metrics               Prometheus text metrics (HTTP, jobs,
//	                              sweep throughput, graph cache, runtime)
//	GET    /debug/pprof/*         Go profiling endpoints (with -pprof)
//
// All output is structured logging (log/slog) with request-ID and
// job-ID fields; tune it with -log-level and -log-format.
//
// Usage:
//
//	cobrawalkd -data runs/daemon
//	cobrawalkd -data runs/daemon -addr 127.0.0.1:8321 -max-jobs 4
//	cobrawalkd -data runs/daemon -log-format json -log-level debug -pprof
//	curl -s -X POST -d @sweep.json localhost:8321/v1/jobs
//	curl -s localhost:8321/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cobrawalk/internal/buildinfo"
	"cobrawalk/internal/graphstore"
	"cobrawalk/internal/obs"
	"cobrawalk/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cobrawalkd:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("cobrawalkd", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		addr      = fs.String("addr", "127.0.0.1:8321", "listen address")
		data      = fs.String("data", "", "data directory for jobs and artifacts (required)")
		maxJobs   = fs.Int("max-jobs", 2, "jobs running concurrently")
		pointWrk  = fs.Int("point-workers", 1, "points run concurrently within a job")
		workers   = fs.Int("workers", 0, "trial worker goroutines per point (0 = GOMAXPROCS)")
		kernelWrk = fs.Int("kernel-workers", 0, "intra-trial kernel workers for cobra-par/bips-par trials (0 = fill the per-job CPU budget left by -workers)")
		cacheCap  = fs.Int("graph-cache", 0, "graph cache vertex budget (0 = default)")
		graphDir  = fs.String("graph-dir", "", "graph store directory: cache misses mmap .csrg files from here and built graphs spill back (see cmd/graphbuild)")
		madvise   = fs.String("graph-madvise", "", "madvise hints for -graph-dir mmaps: comma-separated willneed,hugepage, or off")
		snapEvery = fs.Duration("snapshot-interval", 0, "spacing of in-flight digest snapshots on job streams (0 = default 500ms)")
		streamBuf = fs.Int("stream-buffer", 0, "per-subscriber SSE buffer; a subscriber that falls behind drops oldest events (0 = default 64)")
		logLevel  = fs.String("log-level", "info", "log level: debug, info, warn or error")
		logFormat = fs.String("log-format", "text", "log format: text or json")
		pprofOn   = fs.Bool("pprof", false, "serve Go profiling endpoints under /debug/pprof/")
		quiet     = fs.Bool("quiet", false, "shorthand for -log-level error")
		version   = fs.Bool("version", false, "print build info and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.Read())
		return nil
	}
	if *data == "" {
		return errors.New("-data is required (job state persists there across restarts)")
	}
	if *quiet {
		*logLevel = "error"
	}
	logger, err := obs.NewLogger(errw, obs.LogConfig{Level: *logLevel, Format: *logFormat})
	if err != nil {
		return err
	}
	advice, err := graphstore.ParseAdvice(*madvise)
	if err != nil {
		return fmt.Errorf("-graph-madvise: %w", err)
	}

	m, err := server.NewManager(server.Config{
		Dir:              *data,
		MaxConcurrent:    *maxJobs,
		PointWorkers:     *pointWrk,
		TrialWorkers:     *workers,
		KernelWorkers:    *kernelWrk,
		CacheBudget:      *cacheCap,
		GraphDir:         *graphDir,
		GraphMadvise:     advice,
		SnapshotInterval: *snapEvery,
		StreamBuffer:     *streamBuf,
		Logger:           logger,
	})
	if err != nil {
		return err
	}
	defer m.Close()

	handler := server.NewHandler(m)
	if *pprofOn {
		// The profiling surface mounts outside the instrumented /v1 tree:
		// profile downloads should not pollute request latency histograms.
		root := http.NewServeMux()
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		root.Handle("/", handler)
		handler = root
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: handler}
	logger.Info("cobrawalkd starting",
		"build", buildinfo.Read().String(),
		"addr", fmt.Sprintf("http://%s", ln.Addr()),
		"data", *data,
		"job_slots", *maxJobs,
		"pprof", *pprofOn)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Graceful stop: close the listener, cancel in-flight jobs (their
		// persisted queued/running states stay resumable) and exit. The
		// cache counters summarise how much graph construction this
		// process's lifetime amortised.
		st := m.CacheStats()
		logger.Info("shutting down; unfinished jobs resume on next start",
			"cache_hits", st.Hits, "cache_misses", st.Misses, "cache_evictions", st.Evictions)
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
		return nil
	}
}
