package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBasic(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "petersen"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"vertices:   10", "edges:      15", "3-regular",
		"λmax:       0.666667", "bipartite:  false", "cheeger",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSpectrum(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "cycle:6", "-spectrum"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "spectrum (6 eigenvalues)") {
		t.Fatalf("missing spectrum:\n%s", buf.String())
	}
}

func TestRunIrregular(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "star:6"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "irregular") {
		t.Fatalf("missing irregular flag:\n%s", buf.String())
	}
}

func TestRunWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.edges")
	var buf bytes.Buffer
	if err := run([]string{"-graph", "cycle:5", "-write", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "n 5") {
		t.Fatalf("edge file content: %s", data)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "nope"}, &buf); err == nil {
		t.Fatal("bad spec should fail")
	}
	if err := run([]string{"-graph", "rand-reg:2000:3", "-spectrum"}, &buf); err == nil {
		t.Fatal("dense spectrum beyond limit should fail")
	}
}

// TestRunJSON pins the -json satellite: one parseable object holding the
// structural and spectral report, matching the text path's numbers.
func TestRunJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-graph", "petersen", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Graph     string  `json:"graph"`
		N         int     `json:"n"`
		M         int     `json:"m"`
		Degree    int     `json:"degree"`
		Connected bool    `json:"connected"`
		Bipartite bool    `json:"bipartite"`
		LambdaMax float64 `json:"lambda_max"`
		Gap       float64 `json:"gap"`
		TheoremT  float64 `json:"theorem_t"`
		Spectrum  []float64
	}
	if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
		t.Fatalf("unparseable -json output %q: %v", out.String(), err)
	}
	// Petersen: 10 vertices, 15 edges, 3-regular, λ_max = |λn| = 2/3.
	if rec.N != 10 || rec.M != 15 || rec.Degree != 3 || !rec.Connected || rec.Bipartite {
		t.Fatalf("petersen report = %+v", rec)
	}
	if rec.LambdaMax < 0.66 || rec.LambdaMax > 0.67 || rec.Gap <= 0 || rec.TheoremT <= 0 {
		t.Fatalf("spectral fields = %+v", rec)
	}
	if strings.Count(out.String(), "\n") != 1 {
		t.Fatalf("-json should emit exactly one line, got %q", out.String())
	}

	// -spectrum folds the dense spectrum into the object.
	out.Reset()
	if err := run([]string{"-graph", "petersen", "-json", "-spectrum"}, &out); err != nil {
		t.Fatal(err)
	}
	var withSpec struct {
		Spectrum []float64 `json:"spectrum"`
	}
	if err := json.Unmarshal(out.Bytes(), &withSpec); err != nil {
		t.Fatal(err)
	}
	if len(withSpec.Spectrum) != 10 {
		t.Fatalf("spectrum has %d eigenvalues, want 10", len(withSpec.Spectrum))
	}
}

// TestRunJSONZeroGap pins -json on bipartite graphs: λ_max = 1 makes
// the theorem time scale +Inf, which must surface as JSON null, not an
// encoding error.
func TestRunJSONZeroGap(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-graph", "cycle:16", "-json"}, &out); err != nil {
		t.Fatalf("-json on an even cycle failed: %v", err)
	}
	var rec struct {
		Bipartite bool     `json:"bipartite"`
		Gap       *float64 `json:"gap"`
		TheoremT  *float64 `json:"theorem_t"`
		MixingUB  *float64 `json:"mixing_ub"`
	}
	if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
		t.Fatalf("unparseable output %q: %v", out.String(), err)
	}
	if !rec.Bipartite || rec.Gap == nil || *rec.Gap > 1e-9 {
		t.Fatalf("C16 report = %+v, want bipartite with zero gap", rec)
	}
	if rec.TheoremT != nil || rec.MixingUB != nil {
		t.Fatalf("non-finite fields should be null, got T=%v mix=%v", rec.TheoremT, rec.MixingUB)
	}
}
