package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBasic(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "petersen"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"vertices:   10", "edges:      15", "3-regular",
		"λmax:       0.666667", "bipartite:  false", "cheeger",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSpectrum(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "cycle:6", "-spectrum"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "spectrum (6 eigenvalues)") {
		t.Fatalf("missing spectrum:\n%s", buf.String())
	}
}

func TestRunIrregular(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "star:6"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "irregular") {
		t.Fatalf("missing irregular flag:\n%s", buf.String())
	}
}

func TestRunWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.edges")
	var buf bytes.Buffer
	if err := run([]string{"-graph", "cycle:5", "-write", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "n 5") {
		t.Fatalf("edge file content: %s", data)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "nope"}, &buf); err == nil {
		t.Fatal("bad spec should fail")
	}
	if err := run([]string{"-graph", "rand-reg:2000:3", "-spectrum"}, &buf); err == nil {
		t.Fatal("dense spectrum beyond limit should fail")
	}
}
