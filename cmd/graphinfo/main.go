// Command graphinfo builds a graph from a specification and prints its
// structural and spectral report: size, degree, connectivity,
// bipartiteness, λ₂, λ_n, λ_max, spectral gap, the paper's time scale
// T = log(n)/(1-λ)³, mixing-time and Cheeger bounds.
//
// Usage:
//
//	graphinfo -graph rand-reg:4096:8
//	graphinfo -graph petersen -spectrum
//	graphinfo -graph rand-reg:1024:8 -json
//	graphinfo -graph torus:32x32 -write /tmp/torus.edges
//	graphinfo runs/graphs/rand-reg-n1024-d8-s7.csrg
//	graphinfo -json runs/graphs/rand-reg-n1024-d8-s7.csrg
//
// A positional .csrg argument (or -graph ending in .csrg) switches to
// store-header mode: the file's metadata — name, n, m, degrees, format
// version — prints from the O(1) header read alone, without loading the
// adjacency arrays; a 10⁸-vertex store answers instantly. Use
// -graph file:PATH to fully load a store file for spectral analysis.
//
// -json emits one machine-readable JSON object instead of text, matching
// the other simulation commands.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"cobrawalk/internal/buildinfo"
	"cobrawalk/internal/cli"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/graphstore"
	"cobrawalk/internal/rng"
	"cobrawalk/internal/spectral"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphinfo:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("graphinfo", flag.ContinueOnError)
	var (
		graphSpec = fs.String("graph", "petersen", "graph specification (see internal/cli)")
		seed      = fs.Uint64("seed", 1, "seed for random families")
		spectrum  = fs.Bool("spectrum", false, "print the full spectrum (dense solver, small graphs)")
		writePath = fs.String("write", "", "write the graph in edge-list format to this file")
		jsonOut   = fs.Bool("json", false, "emit one machine-readable JSON object")
		version   = fs.Bool("version", false, "print build info and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(w, buildinfo.Read())
		return nil
	}
	spec := *graphSpec
	if fs.NArg() > 0 {
		spec = fs.Arg(0)
	}
	if strings.HasSuffix(spec, graphstore.Ext) && !strings.HasPrefix(spec, "file:") {
		return storeHeaderInfo(w, spec, *jsonOut)
	}

	g, err := cli.BuildGraph(spec, rng.NewStream(*seed, 0x61))
	if err != nil {
		return err
	}
	rep, err := spectral.Analyze(g, spectral.Options{})
	if err != nil {
		return err
	}

	if *jsonOut {
		// Zero-gap graphs (any bipartite family has λ_max = 1) make the
		// theorem time scale and the mixing bound +Inf, which
		// encoding/json rejects — render non-finite values as null.
		obj := map[string]any{
			"graph":        g.Name(),
			"n":            rep.N,
			"m":            rep.M,
			"degree":       rep.Degree,
			"min_degree":   g.MinDegree(),
			"max_degree":   g.MaxDegree(),
			"connected":    rep.Connected,
			"bipartite":    rep.Bipartite,
			"lambda2":      finiteOrNil(rep.Lambda2),
			"lambda_n":     finiteOrNil(rep.LambdaN),
			"lambda_max":   finiteOrNil(rep.LambdaMax),
			"gap":          finiteOrNil(rep.Gap),
			"theorem_t":    finiteOrNil(rep.TheoremT()),
			"mixing_ub":    finiteOrNil(rep.MixingTimeUB),
			"cheeger_lo":   finiteOrNil(rep.CheegerLo),
			"cheeger_hi":   finiteOrNil(rep.CheegerHi),
			"gap_constant": finiteOrNil(gapConditionConstant(rep)),
		}
		if *spectrum {
			eig, err := spectral.DenseSpectrum(g)
			if err != nil {
				return fmt.Errorf("spectrum: %w", err)
			}
			obj["spectrum"] = eig
		}
		blob, err := json.Marshal(obj)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s\n", blob); err != nil {
			return err
		}
		return writeEdgeList(w, g, *writePath, true)
	}

	fmt.Fprintf(w, "graph:      %s\n", g)
	fmt.Fprintf(w, "vertices:   %d\n", rep.N)
	fmt.Fprintf(w, "edges:      %d\n", rep.M)
	if rep.Degree >= 0 {
		fmt.Fprintf(w, "degree:     %d-regular\n", rep.Degree)
	} else {
		fmt.Fprintf(w, "degree:     irregular (min %d, max %d)\n", g.MinDegree(), g.MaxDegree())
	}
	fmt.Fprintf(w, "connected:  %v\n", rep.Connected)
	fmt.Fprintf(w, "bipartite:  %v\n", rep.Bipartite)
	fmt.Fprintf(w, "λ2:         %+.6f\n", rep.Lambda2)
	fmt.Fprintf(w, "λn:         %+.6f\n", rep.LambdaN)
	fmt.Fprintf(w, "λmax:       %.6f\n", rep.LambdaMax)
	fmt.Fprintf(w, "gap (1-λ):  %.6f\n", rep.Gap)
	fmt.Fprintf(w, "theorem T:  %.2f   (log n/(1-λ)³, Theorems 1-2 time scale)\n", rep.TheoremT())
	fmt.Fprintf(w, "mixing UB:  %.2f\n", rep.MixingTimeUB)
	fmt.Fprintf(w, "cheeger:    %.4f ≤ Φ ≤ %.4f\n", rep.CheegerLo, rep.CheegerHi)
	fmt.Fprintf(w, "gap cond:   1-λ ≥ √(log n/n)·c satisfied for c ≤ %.2f\n", gapConditionConstant(rep))

	if *spectrum {
		eig, err := spectral.DenseSpectrum(g)
		if err != nil {
			return fmt.Errorf("spectrum: %w", err)
		}
		fmt.Fprintf(w, "spectrum (%d eigenvalues):\n", len(eig))
		for i, l := range eig {
			fmt.Fprintf(w, "  λ%-4d %+.8f\n", i+1, l)
		}
	}
	return writeEdgeList(w, g, *writePath, false)
}

// storeHeaderInfo prints a graph store file's header metadata without
// loading the adjacency arrays — the O(1) inspection path for files too
// big to casually load.
func storeHeaderInfo(w io.Writer, path string, jsonOut bool) error {
	h, err := graphstore.ReadHeader(path)
	if err != nil {
		return err
	}
	if jsonOut {
		obj := map[string]any{
			"store":      path,
			"version":    h.Version,
			"graph":      h.Name,
			"n":          h.N,
			"m":          h.M(),
			"min_degree": h.MinDeg,
			"max_degree": h.MaxDeg,
		}
		if d, ok := h.Regular(); ok {
			obj["degree"] = d
		}
		blob, err := json.Marshal(obj)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%s\n", blob)
		return err
	}
	fmt.Fprintf(w, "store:      %s (format v%d)\n", path, h.Version)
	fmt.Fprintf(w, "graph:      %s\n", h.Name)
	fmt.Fprintf(w, "vertices:   %d\n", h.N)
	fmt.Fprintf(w, "edges:      %d\n", h.M())
	if d, ok := h.Regular(); ok {
		fmt.Fprintf(w, "degree:     %d-regular\n", d)
	} else {
		fmt.Fprintf(w, "degree:     irregular (min %d, max %d)\n", h.MinDeg, h.MaxDeg)
	}
	return nil
}

// writeEdgeList writes the graph in edge-list format when a path was
// given; quiet suppresses the confirmation line (-json keeps stdout one
// object).
func writeEdgeList(w io.Writer, g *graph.Graph, path string, quiet bool) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := graph.Write(f, g); err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(w, "wrote edge list to %s\n", path)
	}
	return nil
}

// finiteOrNil renders non-finite report fields as JSON null —
// encoding/json rejects NaN and ±Inf outright.
func finiteOrNil(x float64) any {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return nil
	}
	return x
}

// gapConditionConstant returns the largest constant c such that the
// paper's hypothesis 1-λ ≥ c·√(log n/n) holds for this graph.
func gapConditionConstant(rep spectral.Report) float64 {
	if rep.N < 2 {
		return 0
	}
	lo, hi := 0.0, 1e9
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if rep.SatisfiesGapCondition(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
