package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/graphcache"
	"cobrawalk/internal/graphstore"
	"cobrawalk/internal/rng"
	"cobrawalk/internal/sweep"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errw bytes.Buffer
	err := run(args, &out, &errw)
	return out.String(), err
}

func TestSpecMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.csrg")
	out, err := runCLI(t, "-graph", "rand-reg:128:6", "-seed", "9", "-out", path, "-json")
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatalf("bad -json output %q: %v", out, err)
	}
	if got["n"] != float64(128) || got["m"] != float64(128*6/2) {
		t.Fatalf("summary n/m wrong: %v", got)
	}

	g, err := graphstore.Mmap(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := graph.RandomRegularConnected(128, 6, rng.NewStream(9, 0x61))
	if err != nil {
		t.Fatal(err)
	}
	wo, wn := want.CSR()
	go_, gn := g.CSR()
	if !slices.Equal(wo, go_) || !slices.Equal(wn, gn) {
		t.Fatal("stored graph differs from the same spec built in-process")
	}

	// Second run without -force must refuse to clobber.
	if _, err := runCLI(t, "-graph", "rand-reg:128:6", "-out", path); err == nil {
		t.Fatal("overwrote existing store without -force")
	}
	if _, err := runCLI(t, "-graph", "rand-reg:128:6", "-seed", "9", "-out", path, "-force"); err != nil {
		t.Fatal(err)
	}
}

// TestFamilyMode pins the pre-population contract: the file graphbuild
// writes for sweep axes is the one the graphcache disk tier looks for,
// holding the graph BuildTopology derives for those axes.
func TestFamilyMode(t *testing.T) {
	dir := t.TempDir()
	if _, err := runCLI(t, "-family", "rand-reg", "-size", "64", "-degree", "4", "-sweep-seed", "7", "-out", dir); err != nil {
		t.Fatal(err)
	}
	want, key, err := sweep.BuildTopology("rand-reg", 64, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graphstore.Mmap(filepath.Join(dir, graphcache.StoreFileName(key)))
	if err != nil {
		t.Fatalf("store not at the disk-tier file name: %v", err)
	}
	wo, wn := want.CSR()
	go_, gn := g.CSR()
	if !slices.Equal(wo, go_) || !slices.Equal(wn, gn) {
		t.Fatal("stored graph differs from BuildTopology for the same axes")
	}
}

func TestEdgesMode(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "square.edges")
	edges := "# a 4-cycle\ngraph square\nn 4\n0 1\n1 2\n2 3\n3 0\n"
	if err := os.WriteFile(src, []byte(edges), 0o644); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "square.csrg")
	if _, err := runCLI(t, "-edges", src, "-workers", "3", "-out", path); err != nil {
		t.Fatal(err)
	}
	g, err := graphstore.Mmap(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "square" || g.N() != 4 || g.M() != 4 {
		t.Fatalf("got %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFlagValidation(t *testing.T) {
	dir := t.TempDir()
	for _, args := range [][]string{
		{"-graph", "cycle:8"},                                  // no -out
		{"-out", filepath.Join(dir, "x.csrg")},                 // no mode
		{"-graph", "cycle:8", "-edges", "e", "-out", "x.csrg"}, // two modes
		{"-family", "rand-reg", "-size", "1", "-out", dir},     // size too small
		{"-family", "no-such", "-size", "8", "-out", dir},      // unknown family
		{"-graph", "file:", "-out", filepath.Join(dir, "y.csrg")},
	} {
		if _, err := runCLI(t, args...); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
	if _, err := runCLI(t, "-edges", filepath.Join(dir, "no-n.edges"), "-out", filepath.Join(dir, "z.csrg")); err == nil {
		t.Fatal("missing edge file accepted")
	}
	bad := filepath.Join(dir, "bad.edges")
	if err := os.WriteFile(bad, []byte("0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, "-edges", bad, "-out", filepath.Join(dir, "w.csrg")); err == nil || !strings.Contains(err.Error(), "n <count>") {
		t.Fatalf("edge list without n header: err=%v", err)
	}
}
