// Command graphbuild pre-builds graph store files (.csrg, see
// internal/graphstore): pay the generator cost once, offline, and every
// later consumer — cobrawalkd's -graph-dir disk tier, sweep file:
// specs, graphinfo — loads the graph as an mmap in milliseconds instead
// of minutes of CPU.
//
// Three input modes:
//
//	graphbuild -graph rand-reg:1048576:8 -seed 7 -out g.csrg
//	    build any internal/cli graph spec and store it at -out
//
//	graphbuild -family rand-reg -size 1048576 -degree 8 -sweep-seed 7 -out runs/graphs
//	    build the exact graph a sweep with master seed 7 uses for these
//	    axes (same GraphSeed derivation, same generator stream) and
//	    store it under -out with the disk-tier file name, so a daemon
//	    started with -graph-dir runs/graphs disk-hits its first job
//
//	graphbuild -edges edges.txt -workers 8 -out g.csrg
//	    pack a text edge list (the internal/graph format: "graph NAME" /
//	    "n N" header lines then one "u v" pair per line) through the
//	    parallel CSR packer — degree count, scatter and per-vertex sort
//	    all fan out across -workers cores
//
// -force overwrites an existing store file (default: keep it — store
// files are content-addressed by their name in -family mode, so an
// existing file is already the right graph). -json emits one summary
// object instead of text.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"cobrawalk/internal/buildinfo"
	"cobrawalk/internal/cli"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/graphcache"
	"cobrawalk/internal/graphstore"
	"cobrawalk/internal/rng"
	"cobrawalk/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "graphbuild:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("graphbuild", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		graphSpec = fs.String("graph", "", "graph specification (internal/cli grammar)")
		seed      = fs.Uint64("seed", 1, "generator seed for -graph random families")
		family    = fs.String("family", "", "sweep family name (with -size/-degree/-sweep-seed)")
		size      = fs.Int("size", 0, "sweep size axis value for -family")
		degree    = fs.Int("degree", 0, "sweep degree axis value for -family (degreed families)")
		sweepSeed = fs.Uint64("sweep-seed", 0, "sweep master seed the graph derives from (-family mode)")
		edges     = fs.String("edges", "", "text edge-list file to pack (internal/graph format)")
		workers   = fs.Int("workers", 0, "parallel packer workers for -edges (0 = GOMAXPROCS)")
		outPath   = fs.String("out", "", "output store file, or directory in -family mode (required)")
		madvise   = fs.String("graph-madvise", "", "madvise hints for the post-write read-back verify: comma-separated willneed,hugepage, or off")
		force     = fs.Bool("force", false, "overwrite an existing store file")
		jsonOut   = fs.Bool("json", false, "emit one machine-readable JSON summary")
		version   = fs.Bool("version", false, "print build info and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.Read())
		return nil
	}
	if *outPath == "" {
		return errors.New("-out is required")
	}
	advice, err := graphstore.ParseAdvice(*madvise)
	if err != nil {
		return fmt.Errorf("-graph-madvise: %w", err)
	}
	modes := 0
	for _, set := range []bool{*graphSpec != "", *family != "", *edges != ""} {
		if set {
			modes++
		}
	}
	if modes != 1 {
		return errors.New("pick exactly one input mode: -graph, -family or -edges")
	}

	var (
		g       *graph.Graph
		path    string
		started = time.Now()
	)
	switch {
	case *graphSpec != "":
		built, err := cli.BuildGraph(*graphSpec, rng.NewStream(*seed, 0x61))
		if err != nil {
			return err
		}
		g, path = built, *outPath
	case *family != "":
		if *size < 2 {
			return errors.New("-family needs -size >= 2")
		}
		built, key, err := sweep.BuildTopology(*family, *size, *degree, *sweepSeed)
		if err != nil {
			return err
		}
		// -out is the store directory here: the file name must be the one
		// the graphcache disk tier derives from the key, or the daemon
		// will never find it.
		if err := os.MkdirAll(*outPath, 0o755); err != nil {
			return err
		}
		g, path = built, filepath.Join(*outPath, graphcache.StoreFileName(key))
	case *edges != "":
		built, err := packEdgeList(*edges, *workers)
		if err != nil {
			return err
		}
		g, path = built, *outPath
	}
	buildTime := time.Since(started)

	if !*force {
		if _, err := os.Stat(path); err == nil {
			return fmt.Errorf("%s exists (use -force to overwrite)", path)
		}
	}
	started = time.Now()
	if err := graphstore.Write(path, g); err != nil {
		return err
	}
	writeTime := time.Since(started)
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}

	// Read-back verify: mmap the file just written (with the requested
	// madvise hints) and confirm it describes the graph we built. The
	// load time is the number consumers of this store file will pay, so
	// it is the one worth reporting against different -graph-madvise
	// settings.
	started = time.Now()
	check, err := graphstore.MmapAdvise(path, advice)
	if err != nil {
		return fmt.Errorf("read-back verify: %w", err)
	}
	loadTime := time.Since(started)
	if check.N() != g.N() || check.M() != g.M() {
		return fmt.Errorf("read-back verify: store holds n=%d m=%d, built n=%d m=%d",
			check.N(), check.M(), g.N(), g.M())
	}

	if *jsonOut {
		blob, err := json.Marshal(map[string]any{
			"store":         path,
			"graph":         g.Name(),
			"n":             g.N(),
			"m":             g.M(),
			"bytes":         fi.Size(),
			"build_seconds": buildTime.Seconds(),
			"write_seconds": writeTime.Seconds(),
			"load_seconds":  loadTime.Seconds(),
			"madvise":       advice.String(),
		})
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(out, "%s\n", blob)
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", path)
	fmt.Fprintf(out, "graph:  %s\n", g)
	fmt.Fprintf(out, "bytes:  %d\n", fi.Size())
	fmt.Fprintf(out, "build:  %s\n", buildTime.Round(time.Millisecond))
	fmt.Fprintf(out, "write:  %s\n", writeTime.Round(time.Millisecond))
	fmt.Fprintf(out, "load:   %s (madvise %s)\n", loadTime.Round(time.Millisecond), advice)
	return nil
}

// packEdgeList reads a text edge list (the internal/graph format) and
// packs it through the parallel CSR builder. Unlike graph.Read — which
// feeds the serial Builder — this path exists for big inputs: parsing
// streams line by line, and packing fans out across workers.
func packEdgeList(path string, workers int) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	name, n := "", -1
	var pairs [][2]int32
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case strings.HasPrefix(line, "graph "):
			name = strings.TrimSpace(strings.TrimPrefix(line, "graph "))
		case strings.HasPrefix(line, "n "):
			v, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "n ")))
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad vertex count: %w", path, lineNo, err)
			}
			n = v
		default:
			uStr, vStr, ok := strings.Cut(line, " ")
			if !ok {
				return nil, fmt.Errorf("%s:%d: want \"u v\", got %q", path, lineNo, line)
			}
			u, err1 := strconv.ParseInt(strings.TrimSpace(uStr), 10, 32)
			v, err2 := strconv.ParseInt(strings.TrimSpace(vStr), 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("%s:%d: bad edge %q", path, lineNo, line)
			}
			pairs = append(pairs, [2]int32{int32(u), int32(v)})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("%s: missing \"n <count>\" header line", path)
	}
	if name == "" {
		name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	return graph.ParallelFromEdges(name, n, pairs, workers)
}
