// Command sweep runs a declarative parameter sweep: a grid over graph
// family × size × degree × process × branching expands into deterministic
// points, each point streams a Monte-Carlo ensemble into constant-memory
// digests, and the summary renders as an aligned table, CSV, or NDJSON.
//
// The spec comes from flags or a JSON file (-spec). With -out, every
// completed point persists immediately and -resume continues an
// interrupted sweep, skipping points already on disk; a completed resume
// is byte-identical to an uninterrupted run.
//
// The process axis accepts every name in the internal/process registry
// (see -list-processes); for kwalk the branching K is the walker count.
// The -metrics flag selects what each point records from the metric
// registry (see -list-metrics): scalar summaries (rounds, transmissions,
// peak-active, half-coverage) and/or trajectory quantile bands (coverage,
// frontier) persisted on the point records — the paper's phase plots as
// sweepable artifacts.
//
// Usage:
//
//	sweep -families rand-reg -sizes 1024,4096 -degrees 3,8 -trials 100
//	sweep -families rand-reg,complete -sizes 512 -degrees 8 \
//	      -processes cobra,push,flood -branchings 2,1+0.5 \
//	      -out runs/compare -format csv
//	sweep -families rand-reg -sizes 4096 -degrees 8 \
//	      -processes cobra,bips -metrics rounds,coverage,frontier \
//	      -trials 100 -out runs/phases
//	sweep -spec sweep.json -out runs/night -resume
//	sweep -families complete -sizes 256 -list-points
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"cobrawalk/internal/buildinfo"
	"cobrawalk/internal/cli"
	"cobrawalk/internal/expt"
	"cobrawalk/internal/graphcache"
	"cobrawalk/internal/graphstore"
	"cobrawalk/internal/process"
	"cobrawalk/internal/stats"
	"cobrawalk/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		specFile   = fs.String("spec", "", "JSON spec file (overrides the axis flags)")
		name       = fs.String("name", "", "sweep name for the manifest and summary title")
		families   = fs.String("families", "", "comma-separated graph families (see -list-families)")
		sizes      = fs.String("sizes", "", "comma-separated target vertex counts")
		degrees    = fs.String("degrees", "", "comma-separated degrees for degreed families")
		processes  = fs.String("processes", "cobra", "comma-separated processes ("+cli.ProcessList()+")")
		branchings = fs.String("branchings", "", "comma-separated branchings, each K or K+RHO (default 2)")
		metrics    = fs.String("metrics", "", "comma-separated metrics (see -list-metrics; default rounds,transmissions)")
		trials     = fs.Int("trials", 30, "trials per point")
		seed       = fs.Uint64("seed", 1, "sweep master seed")
		maxRounds  = fs.Int("max-rounds", 0, "per-trial round cap (0 = default)")
		lambda     = fs.Bool("lambda", false, "measure λ_max of every point's graph")

		outDir    = fs.String("out", "", "artifact directory (manifest + per-point records + results.ndjson)")
		resume    = fs.Bool("resume", false, "skip points whose records already exist in -out")
		workers   = fs.Int("workers", 0, "trial worker goroutines per point (0 = GOMAXPROCS)")
		kernelWrk = fs.Int("kernel-workers", 0, "intra-trial kernel workers for cobra-par/bips-par trials (0 = fill the CPU budget left by -workers)")
		pointWrk  = fs.Int("point-workers", 1, "points run concurrently")
		cacheCap  = fs.Int("graph-cache", 0, "graph cache vertex budget (0 = default, negative = disable)")
		graphDir  = fs.String("graph-dir", "", "graph store directory: cache misses mmap .csrg files from here and built graphs spill back (see cmd/graphbuild)")
		madvise   = fs.String("graph-madvise", "", "madvise hints for -graph-dir mmaps: comma-separated willneed,hugepage, or off")

		format      = fs.String("format", "text", "summary output: text | csv | json")
		quiet       = fs.Bool("quiet", false, "suppress per-point progress on stderr")
		listPoints  = fs.Bool("list-points", false, "print the expanded point list and exit")
		listFams    = fs.Bool("list-families", false, "print the family registry and exit")
		listProcs   = fs.Bool("list-processes", false, "print the process registry and exit")
		listMetrics = fs.Bool("list-metrics", false, "print the metric registry and exit")
		version     = fs.Bool("version", false, "print build info and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.Read())
		return nil
	}

	if *listFams {
		for _, f := range sweep.Families() {
			kind := "sized"
			if f.Degreed {
				kind = "sized + degreed"
			}
			fmt.Fprintf(out, "%-10s %s\n", f.Name, kind)
		}
		return nil
	}
	if *listProcs {
		for _, info := range process.All() {
			axis := "unbranched"
			if info.Branched {
				axis = "branched (K"
				if info.AcceptsRho {
					axis += "+Rho"
				}
				axis += ")"
			}
			fmt.Fprintf(out, "%-10s %-18s %s\n", info.Name, axis, info.Summary)
		}
		return nil
	}
	if *listMetrics {
		for _, m := range sweep.Metrics() {
			kind := "scalar"
			if m.Trajectory {
				kind = "trajectory"
			}
			fmt.Fprintf(out, "%-14s %-10s %s\n", m.Name, kind, m.Summary)
		}
		return nil
	}

	fm, err := expt.ParseFormat(*format)
	if err != nil {
		return err
	}

	var spec sweep.Spec
	if *specFile != "" {
		blob, err := os.ReadFile(*specFile)
		if err != nil {
			return err
		}
		dec := json.NewDecoder(strings.NewReader(string(blob)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return fmt.Errorf("parsing %s: %w", *specFile, err)
		}
	} else {
		spec = sweep.Spec{
			Name:          *name,
			Families:      splitList(*families),
			Trials:        *trials,
			Seed:          *seed,
			MaxRounds:     *maxRounds,
			MeasureLambda: *lambda,
		}
		if spec.Processes, err = cli.ParseProcesses(*processes); err != nil {
			return err
		}
		if spec.Sizes, err = splitInts(*sizes); err != nil {
			return fmt.Errorf("-sizes: %w", err)
		}
		if spec.Degrees, err = splitInts(*degrees); err != nil {
			return fmt.Errorf("-degrees: %w", err)
		}
		if spec.Branchings, err = sweep.ParseBranchings(*branchings); err != nil {
			return err
		}
		if spec.Metrics, err = sweep.ParseMetrics(*metrics); err != nil {
			return err
		}
	}

	if *resume && *outDir == "" {
		return fmt.Errorf("-resume requires -out (resume loads records from the artifact dir)")
	}

	pts, err := spec.Points()
	if err != nil {
		return err
	}
	if *listPoints {
		tbl := expt.NewTable(title(spec)+": points",
			"id", "family", "size", "d", "process", "branch", "trials", "seed")
		for _, pt := range pts {
			tbl.AddRow(pt.ID, pt.Family, strconv.Itoa(pt.Size), strconv.Itoa(pt.Degree),
				pt.Process, branchLabel(pt), strconv.Itoa(pt.Trials),
				strconv.FormatUint(pt.Seed, 10))
		}
		return tbl.Emit(out, expt.Params{Format: fm})
	}

	opts := sweep.Options{
		Dir:           *outDir,
		Resume:        *resume,
		PointWorkers:  *pointWrk,
		TrialWorkers:  *workers,
		KernelWorkers: *kernelWrk,
	}
	advice, err := graphstore.ParseAdvice(*madvise)
	if err != nil {
		return fmt.Errorf("-graph-madvise: %w", err)
	}
	if *cacheCap >= 0 {
		// Points sharing a topology share a GraphSeed, so the cache
		// serves one build to the whole process × branching fan-out.
		cache, err := graphcache.NewWithOptions(graphcache.Options{
			BudgetVertices: *cacheCap,
			StoreDir:       *graphDir,
			Madvise:        advice,
		})
		if err != nil {
			return err
		}
		opts.GraphCache = cache
	} else if *graphDir != "" {
		return fmt.Errorf("-graph-dir needs the graph cache (drop the negative -graph-cache)")
	}
	if !*quiet {
		done := 0
		opts.PointDone = func(res sweep.Result, resumed bool) {
			done++
			tag := ""
			if resumed {
				tag = "  (resumed)"
			}
			mean := "-"
			if res.HasMetric(sweep.MetricRounds) {
				mean = fmt.Sprintf("%.2f", res.Metric(sweep.MetricRounds).Mean)
			}
			fmt.Fprintf(errw, "[%d/%d] %s  mean=%s%s\n", done, len(pts), res.ID, mean, tag)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rep, err := sweep.Run(ctx, spec, opts)
	if err != nil {
		return err
	}

	tbl := expt.NewTable(title(rep.Spec),
		"id", "family", "n", "d", "process", "branch", "trials",
		"mean", "±95%", "p50", "p95", "max", "mean-msgs")
	for _, r := range rep.Results {
		rounds, hw, msgs := "-", "-", "-"
		p50, p95, maxv := "-", "-", "-"
		trialsCol := strconv.Itoa(r.Trials)
		if r.HasMetric(sweep.MetricRounds) {
			s := r.Metric(sweep.MetricRounds)
			trialsCol = strconv.Itoa(s.N)
			rounds = fmt.Sprintf("%.2f", s.Mean)
			p50 = fmt.Sprintf("%.1f", s.P50)
			p95 = fmt.Sprintf("%.1f", s.P95)
			maxv = fmt.Sprintf("%.0f", s.Max)
			// N = 1 ensembles have no standard error; show the mean with
			// a blank half-width rather than failing the whole summary.
			if ci, err := s.CI(0.95); err == nil {
				hw = fmt.Sprintf("%.2f", ci.Hi-s.Mean)
			} else if !errors.Is(err, stats.ErrInsufficient) {
				return err
			}
		}
		if r.HasMetric(sweep.MetricTransmissions) {
			msgs = fmt.Sprintf("%.0f", r.Metric(sweep.MetricTransmissions).Mean)
		}
		tbl.AddRow(r.ID, r.Family, strconv.Itoa(r.GraphN), strconv.Itoa(r.GraphDegree),
			r.Process, branchLabel(r.Point), trialsCol,
			rounds, hw, p50, p95, maxv, msgs)
	}
	// Scalar metrics beyond the canonical table columns surface as notes;
	// trajectory metrics summarise their band shape (full bands live in
	// the artifacts and the daemon's /v1/jobs/{id}/trajectories stream).
	for _, m := range rep.Spec.Metrics {
		if m == sweep.MetricRounds || m == sweep.MetricTransmissions {
			continue
		}
		for _, r := range rep.Results {
			if s, ok := r.Trajectory(m); ok {
				tbl.AddNote("%-32s %s: %d round columns, final p50 %.0f (n=%d survivors at last column)",
					r.ID, m, len(s.Rounds), s.P50[len(s.P50)-1], s.N[len(s.N)-1])
			} else if r.HasMetric(m) {
				s := r.Metric(m)
				tbl.AddNote("%-32s %s: mean %.2f  p50 %.1f  p95 %.1f  max %.0f", r.ID, m, s.Mean, s.P50, s.P95, s.Max)
			}
		}
	}
	if rep.Spec.MeasureLambda {
		for _, r := range rep.Results {
			tbl.AddNote("%-32s λ=%.4f (gap %.4f)", r.ID, r.Lambda, 1-r.Lambda)
		}
	}
	if rep.Resumed > 0 {
		tbl.AddNote("resumed: %d of %d points loaded from %s", rep.Resumed, len(rep.Results), *outDir)
	}
	if opts.GraphCache != nil {
		if st := opts.GraphCache.Stats(); st.Hits > 0 {
			tbl.AddNote("graph cache: %d built, %d reused", st.Misses, st.Hits)
		}
	}
	return tbl.Emit(out, expt.Params{Format: fm})
}

func title(spec sweep.Spec) string {
	if spec.Name != "" {
		return "sweep " + spec.Name
	}
	return "sweep"
}

// branchLabel renders the branching column, blank for unbranched
// processes (their collapsed Branching is the zero value).
func branchLabel(pt sweep.Point) string {
	if pt.Branching.K == 0 {
		return "-"
	}
	if pt.Branching.Rho == 0 {
		return fmt.Sprintf("k=%d", pt.Branching.K)
	}
	return fmt.Sprintf("k=%d+%s", pt.Branching.K,
		strconv.FormatFloat(pt.Branching.Rho, 'g', -1, 64))
}

func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, item := range splitList(s) {
		v, err := strconv.Atoi(item)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
