package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runQuiet(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := run(append(args, "-quiet"), &out, io.Discard)
	return out.String(), err
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-bogus"},
		{"-families", "complete"},                // no sizes
		{"-families", "complete", "-sizes", "x"}, // bad size
		{"-families", "complete", "-sizes", "16", "-degrees", "y"},
		{"-families", "complete", "-sizes", "16", "-branchings", "z"},
		{"-families", "complete", "-sizes", "16", "-format", "yaml"},
		{"-families", "nosuch", "-sizes", "16"},
		{"-spec", "/nonexistent/spec.json"},
		{"-families", "complete", "-sizes", "16", "-resume"}, // -resume needs -out
	} {
		if _, err := runQuiet(t, args...); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestListFamiliesAndPoints(t *testing.T) {
	out, err := runQuiet(t, "-list-families")
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"rand-reg", "complete", "torus-2d", "hypercube"} {
		if !strings.Contains(out, fam) {
			t.Fatalf("family listing missing %s:\n%s", fam, out)
		}
	}
	out, err = runQuiet(t, "-families", "complete", "-sizes", "16,32", "-processes", "cobra,push", "-list-points")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"cobra-complete-n16-k2", "push-complete-n32"} {
		if !strings.Contains(out, id) {
			t.Fatalf("point listing missing %s:\n%s", id, out)
		}
	}
}

func TestRunTextSummary(t *testing.T) {
	out, err := runQuiet(t, "-families", "complete", "-sizes", "16", "-trials", "4",
		"-branchings", "2,1+0.5", "-lambda")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cobra-complete-n16-k2", "cobra-complete-n16-k1-rho0.5", "mean", "λ="} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSONSummary(t *testing.T) {
	out, err := runQuiet(t, "-families", "complete", "-sizes", "16", "-trials", "3", "-format", "json")
	if err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &rec); err != nil {
		t.Fatalf("summary is not one JSON object: %v\n%s", err, out)
	}
	if _, ok := rec["rows"]; !ok {
		t.Fatalf("JSON summary missing rows:\n%s", out)
	}
}

func TestSpecFileAndResume(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	specJSON := `{
  "name": "cli-test",
  "families": ["complete"],
  "sizes": [16, 24],
  "processes": ["cobra", "flood"],
  "trials": 3,
  "seed": 9
}`
	if err := os.WriteFile(specPath, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(dir, "artifacts")
	out, err := runQuiet(t, "-spec", specPath, "-out", outDir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sweep cli-test") {
		t.Fatalf("summary missing spec name:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(outDir, "results.ndjson")); err != nil {
		t.Fatalf("no results.ndjson: %v", err)
	}

	// Re-running without -resume refuses; with -resume it skips all.
	if _, err := runQuiet(t, "-spec", specPath, "-out", outDir); err == nil {
		t.Fatal("occupied artifact dir should refuse without -resume")
	}
	out, err = runQuiet(t, "-spec", specPath, "-out", outDir, "-resume")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "resumed: 4 of 4") {
		t.Fatalf("resume note missing:\n%s", out)
	}

	// Unknown spec fields are rejected, not ignored.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"families":["complete"],"sizes":[16],"trials":1,"sede":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runQuiet(t, "-spec", bad); err == nil {
		t.Fatal("unknown spec field should fail")
	}
}

func TestVersionFlag(t *testing.T) {
	out, err := runQuiet(t, "-version")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cobrawalk") || !strings.Contains(out, "go1") {
		t.Fatalf("-version output %q, want module and toolchain", out)
	}
}

// TestGraphCacheNote: a multi-process sweep on one topology reports the
// cache reuse, and -graph-cache -1 disables the cache (no note).
func TestGraphCacheNote(t *testing.T) {
	args := []string{"-families", "complete", "-sizes", "16", "-processes", "cobra,push,flood", "-trials", "2"}
	out, err := runQuiet(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "graph cache: 1 built, 2 reused") {
		t.Fatalf("summary missing cache note:\n%s", out)
	}
	out, err = runQuiet(t, append(args, "-graph-cache", "-1")...)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "graph cache") {
		t.Fatalf("disabled cache still reported:\n%s", out)
	}
}

// TestMetricsFlag pins the -metrics/-list-metrics surface: the registry
// lists, a trajectory-enabled run persists trajectory blocks, and the
// text summary surfaces the extra metrics as notes.
func TestMetricsFlag(t *testing.T) {
	out, err := runQuiet(t, "-list-metrics")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"rounds", "transmissions", "peak-active", "half-coverage", "coverage", "frontier", "trajectory"} {
		if !strings.Contains(out, m) {
			t.Fatalf("metric listing missing %s:\n%s", m, out)
		}
	}

	dir := t.TempDir()
	out, err = runQuiet(t, "-families", "complete", "-sizes", "16", "-trials", "4",
		"-metrics", "rounds,transmissions,peak-active,coverage", "-out", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "peak-active: mean") || !strings.Contains(out, "coverage: ") {
		t.Fatalf("summary lacks extra-metric notes:\n%s", out)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "results.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Metrics      map[string]json.RawMessage `json:"metrics"`
		Trajectories map[string]struct {
			Rounds []int `json:"rounds"`
		} `json:"trajectories"`
	}
	if err := json.Unmarshal(blob, &rec); err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"rounds", "transmissions", "peak-active"} {
		if _, ok := rec.Metrics[m]; !ok {
			t.Fatalf("record lacks scalar metric %s: %s", m, blob)
		}
	}
	if traj, ok := rec.Trajectories["coverage"]; !ok || len(traj.Rounds) == 0 {
		t.Fatalf("record lacks coverage trajectory: %s", blob)
	}

	// Unknown metric is rejected up front.
	if _, err := runQuiet(t, "-families", "complete", "-sizes", "16", "-metrics", "latency"); err == nil ||
		!strings.Contains(err.Error(), "unknown metric") {
		t.Fatalf("unknown metric: %v", err)
	}
}

// TestSingleTrialCIDash pins the DigestSummary.CI hardening at the CLI:
// a one-trial sweep renders a dash for the half-width instead of failing
// or printing NaN.
func TestSingleTrialCIDash(t *testing.T) {
	out, err := runQuiet(t, "-families", "complete", "-sizes", "16", "-trials", "1")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "NaN") {
		t.Fatalf("single-trial summary prints NaN:\n%s", out)
	}
	if !strings.Contains(out, "cobra-complete-n16-k2") {
		t.Fatalf("single-trial summary missing the point row:\n%s", out)
	}
}

// TestSingleTrialNDJSONNullDispersion pins the N < 2 serialisation on the
// artifact path: a -trials 1 sweep writes metric summaries whose
// variance/std/se are null — the NDJSON mirror of the summary table's
// blank ±95% column — rather than degenerate zeros that read as a
// perfectly concentrated ensemble.
func TestSingleTrialNDJSONNullDispersion(t *testing.T) {
	dir := t.TempDir()
	if _, err := runQuiet(t, "-families", "complete", "-sizes", "16", "-trials", "1", "-out", dir); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "results.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"se":null`, `"std":null`, `"variance":null`} {
		if !strings.Contains(string(blob), want) {
			t.Fatalf("single-trial record should carry %s:\n%s", want, blob)
		}
	}
	if strings.Contains(string(blob), `"se":0`) {
		t.Fatalf("single-trial record still has zero dispersion:\n%s", blob)
	}
}
