// Command bipssim runs Monte-Carlo BIPS infection experiments on a chosen
// graph family and prints summary statistics plus the three-phase
// decomposition of the trajectory (Lemmas 2-4 of the paper). Trial results
// stream through sim.Reduce into constant-memory digests, so -trials can
// be pushed to 10⁵+ without memory growth.
//
// Usage:
//
//	bipssim -graph rand-reg:4096:8 -trials 100 -seed 1
//	bipssim -graph torus:64x64 -k 2 -trials 50
//	bipssim -graph rand-reg:4096:8 -trials 100000 -json
//
// -json emits a single machine-readable JSON object instead of text.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"cobrawalk/internal/buildinfo"
	"cobrawalk/internal/cli"
	"cobrawalk/internal/core"
	"cobrawalk/internal/process"
	"cobrawalk/internal/rng"
	"cobrawalk/internal/sim"
	"cobrawalk/internal/spectral"
	"cobrawalk/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bipssim:", err)
		os.Exit(1)
	}
}

// agg is the streaming accumulator one shard folds its trials into: a
// digest for the infection time and plain streams for the three phase
// lengths (means are all the report needs).
type agg struct {
	infec      *stats.Digest
	p1, p2, p3 stats.Stream
}

func newAgg() *agg { return &agg{infec: stats.NewDigest()} }

func (a *agg) merge(o *agg) (*agg, error) {
	if err := a.infec.Merge(o.infec); err != nil {
		return nil, err
	}
	a.p1.Merge(o.p1)
	a.p2.Merge(o.p2)
	a.p3.Merge(o.p3)
	return a, nil
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bipssim", flag.ContinueOnError)
	var (
		graphSpec = fs.String("graph", "rand-reg:1024:8", "graph specification (see internal/cli)")
		k         = fs.Int("k", 2, "integer branching factor")
		rho       = fs.Float64("rho", 0, "fractional extra branching probability in [0,1)")
		trials    = fs.Int("trials", 100, "number of independent runs")
		seed      = fs.Uint64("seed", 1, "master RNG seed")
		source    = fs.Int("source", 0, "persistent infection source vertex")
		workers   = fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		maxRounds = fs.Int("max-rounds", 1<<20, "per-run round cap")
		fast      = fs.Bool("fast", false, "use the closed-form Bernoulli sampling path")
		jsonOut   = fs.Bool("json", false, "emit one machine-readable JSON object")
		version   = fs.Bool("version", false, "print build info and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(w, buildinfo.Read())
		return nil
	}

	g, err := cli.BuildGraph(*graphSpec, rng.NewStream(*seed, 0xb))
	if err != nil {
		return err
	}
	lambda, err := spectral.LambdaMax(g, spectral.Options{})
	if err != nil {
		return err
	}
	if !*jsonOut {
		fmt.Fprintf(w, "graph: %s\n", g)
		fmt.Fprintf(w, "λmax: %.6f  gap: %.6f\n", lambda, 1-lambda)
	}

	branch := core.Branching{K: *k, Rho: *rho}
	if err := branch.Validate(); err != nil {
		return err
	}
	if *maxRounds < 1 {
		return fmt.Errorf("max rounds %d, need >= 1", *maxRounds)
	}
	if _, err := process.New(process.BIPS, g, process.Config{Branching: branch, FastSampling: *fast}); err != nil {
		return err
	}
	smallTarget := int(math.Ceil(4 * math.Log2(float64(g.N()))))
	type outcome struct{ infec, p1, p2, p3 float64 }
	red := sim.Reducer[outcome, *agg]{
		New: newAgg,
		Fold: func(a *agg, _ int, o outcome) *agg {
			a.infec.Add(o.infec)
			a.p1.Add(o.p1)
			a.p2.Add(o.p2)
			a.p3.Add(o.p3)
			return a
		},
		Merge: func(into, from *agg) (*agg, error) { return into.merge(from) },
	}
	// Each worker owns one reusable BIPS process with a metrics Collector
	// attached — the collector's |A_t| series (start state included)
	// feeds the Lemmas 2-4 phase decomposition without any per-trial
	// allocation.
	type bipsState struct {
		p   process.Process
		col *process.Collector
	}
	sources := []int32{int32(*source)}
	total, err := sim.ReduceWithState(context.Background(),
		sim.Spec{Trials: *trials, Seed: *seed, Workers: *workers},
		red,
		func() *bipsState {
			col := process.NewCollector(g.N())
			cfg := process.Config{
				Branching:    branch,
				FastSampling: *fast,
				Observer:     col.Observe,
			}
			p, err := process.New(process.BIPS, g, cfg)
			if err != nil {
				panic(err) // unreachable: validated above
			}
			return &bipsState{p: p, col: col}
		},
		func(st *bipsState, trial int, r *rng.Rand) (outcome, error) {
			out, err := process.RunCollect(nil, st.p, st.col, r, *maxRounds, sources...)
			if err != nil {
				return outcome{}, err
			}
			if !out.Done {
				return outcome{}, fmt.Errorf("trial hit the %d-round cap", *maxRounds)
			}
			ph := core.DetectPhases(st.col.Active(), g.N(), smallTarget)
			p1, p2, p3 := ph.PhaseLengths()
			return outcome{float64(out.Rounds), float64(p1), float64(p2), float64(p3)}, nil
		})
	if err != nil {
		return err
	}
	s, err := total.infec.Summary()
	if err != nil {
		return err
	}
	ci, err := total.infec.Stream.CI(0.95)
	if err != nil {
		return err
	}

	if *jsonOut {
		blob, err := json.Marshal(map[string]any{
			"graph":          g.Name(),
			"n":              g.N(),
			"lambda":         lambda,
			"gap":            1 - lambda,
			"trials":         *trials,
			"seed":           *seed,
			"infection_time": s,
			"ci95":           map[string]float64{"lo": ci.Lo, "hi": ci.Hi},
			"phase_mean_rounds": map[string]float64{
				"small":  total.p1.Mean(),
				"growth": total.p2.Mean(),
				"finish": total.p3.Mean(),
			},
			"phase_small_target": smallTarget,
		})
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%s\n", blob)
		return err
	}

	fmt.Fprintf(w, "infection time (%d trials): mean %.2f [%.2f, %.2f]  median %.0f  p95 %.0f  max %.0f\n",
		*trials, s.Mean, ci.Lo, ci.Hi, s.P50, s.P95, s.Max)
	fmt.Fprintf(w, "infec/log2(n): %.3f\n", s.Mean/math.Log2(float64(g.N())))
	fmt.Fprintf(w, "phases (m=%d): 1→m %.2f   m→0.9n %.2f   0.9n→n %.2f (mean rounds)\n",
		smallTarget, total.p1.Mean(), total.p2.Mean(), total.p3.Mean())
	return nil
}
