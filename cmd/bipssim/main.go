// Command bipssim runs Monte-Carlo BIPS infection experiments on a chosen
// graph family and prints summary statistics plus the three-phase
// decomposition of the trajectory (Lemmas 2-4 of the paper).
//
// Usage:
//
//	bipssim -graph rand-reg:4096:8 -trials 100 -seed 1
//	bipssim -graph torus:64x64 -k 2 -trials 50
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"cobrawalk/internal/cli"
	"cobrawalk/internal/core"
	"cobrawalk/internal/rng"
	"cobrawalk/internal/sim"
	"cobrawalk/internal/spectral"
	"cobrawalk/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bipssim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bipssim", flag.ContinueOnError)
	var (
		graphSpec = fs.String("graph", "rand-reg:1024:8", "graph specification (see internal/cli)")
		k         = fs.Int("k", 2, "integer branching factor")
		rho       = fs.Float64("rho", 0, "fractional extra branching probability in [0,1)")
		trials    = fs.Int("trials", 100, "number of independent runs")
		seed      = fs.Uint64("seed", 1, "master RNG seed")
		source    = fs.Int("source", 0, "persistent infection source vertex")
		workers   = fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		maxRounds = fs.Int("max-rounds", 1<<20, "per-run round cap")
		fast      = fs.Bool("fast", false, "use the closed-form Bernoulli sampling path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := cli.BuildGraph(*graphSpec, rng.NewStream(*seed, 0xb))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "graph: %s\n", g)
	lambda, err := spectral.LambdaMax(g, spectral.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "λmax: %.6f  gap: %.6f\n", lambda, 1-lambda)

	opts := []core.Option{
		core.WithBranching(core.Branching{K: *k, Rho: *rho}),
		core.WithMaxRounds(*maxRounds),
	}
	if *fast {
		opts = append(opts, core.WithFastSampling())
	}
	if _, err := core.NewBIPS(g, opts...); err != nil {
		return err
	}
	smallTarget := int(math.Ceil(4 * math.Log2(float64(g.N()))))
	type outcome struct{ infec, p1, p2, p3 float64 }
	res, err := sim.RunWithState(context.Background(),
		sim.Spec{Trials: *trials, Seed: *seed, Workers: *workers},
		func() *core.BIPS {
			b, err := core.NewBIPS(g, opts...)
			if err != nil {
				panic(err) // unreachable: validated above
			}
			return b
		},
		func(b *core.BIPS, trial int, r *rng.Rand) (outcome, error) {
			out, err := b.Run(int32(*source), r)
			if err != nil {
				return outcome{}, err
			}
			if !out.Infected {
				return outcome{}, fmt.Errorf("trial hit the %d-round cap", *maxRounds)
			}
			ph := core.DetectPhases(out.Sizes, g.N(), smallTarget)
			p1, p2, p3 := ph.PhaseLengths()
			return outcome{float64(out.InfectionTime), float64(p1), float64(p2), float64(p3)}, nil
		})
	if err != nil {
		return err
	}
	times := sim.Floats(res, func(o outcome) float64 { return o.infec })
	s, err := stats.Summarize(times)
	if err != nil {
		return err
	}
	ci, err := stats.NormalCI(times, 0.95)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "infection time (%d trials): mean %.2f [%.2f, %.2f]  median %.0f  p95 %.0f  max %.0f\n",
		*trials, s.Mean, ci.Lo, ci.Hi, s.Median, s.P95, s.Max)
	fmt.Fprintf(w, "infec/log2(n): %.3f\n", s.Mean/math.Log2(float64(g.N())))
	fmt.Fprintf(w, "phases (m=%d): 1→m %.2f   m→0.9n %.2f   0.9n→n %.2f (mean rounds)\n",
		smallTarget,
		stats.Mean(sim.Floats(res, func(o outcome) float64 { return o.p1 })),
		stats.Mean(sim.Floats(res, func(o outcome) float64 { return o.p2 })),
		stats.Mean(sim.Floats(res, func(o outcome) float64 { return o.p3 })))
	return nil
}
