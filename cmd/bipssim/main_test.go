package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-graph", "complete:32", "-trials", "10", "-seed", "3", "-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		N      int     `json:"n"`
		Lambda float64 `json:"lambda"`
		Infec  struct {
			N    int     `json:"n"`
			Mean float64 `json:"mean"`
		} `json:"infection_time"`
		Phases map[string]float64 `json:"phase_mean_rounds"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if rec.N != 32 || rec.Infec.N != 10 || !(rec.Infec.Mean > 0) || len(rec.Phases) != 3 {
		t.Fatalf("JSON record = %+v", rec)
	}
	if strings.Contains(buf.String(), "λmax") {
		t.Fatal("-json must suppress text output")
	}
}

func TestRunBasic(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-graph", "complete:32", "-trials", "10", "-seed", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph:", "λmax:", "infection time", "phases"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFastPathAndFractional(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-graph", "complete:32", "-trials", "10", "-fast", "-k", "1", "-rho", "0.4"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "infection time") {
		t.Fatalf("missing summary:\n%s", buf.String())
	}
}

func TestRunSourceFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "petersen", "-trials", "5", "-source", "7"}, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "bogus"}, &buf); err == nil {
		t.Fatal("bad spec should fail")
	}
	if err := run([]string{"-graph", "petersen", "-source", "99"}, &buf); err == nil {
		t.Fatal("bad source should fail")
	}
	if err := run([]string{"-graph", "cycle:500", "-trials", "2", "-max-rounds", "1"}, &buf); err == nil {
		t.Fatal("capped run should fail")
	}
}
