package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesAllFigures(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-out", dir, "-scale", "smoke", "-seed", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig1-cover-vs-n.svg", "fig2-cover-vs-gap.svg", "fig3-trajectory.svg"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := string(data)
		if !strings.HasPrefix(s, "<svg") || !strings.Contains(s, "polyline") {
			t.Fatalf("%s does not look like a chart:\n%.200s", name, s)
		}
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("missing progress line for %s", name)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("bad flag should fail")
	}
	// Unwritable output directory.
	if err := run([]string{"-out", "/dev/null/x", "-scale", "smoke"}, &buf); err == nil {
		t.Fatal("unwritable out dir should fail")
	}
}
