// Command figures regenerates the paper's headline result as SVG figures
// (the PODC paper itself has no figures — these are the plots its theorems
// describe):
//
//	fig1-cover-vs-n.svg        cover time vs n per graph family (log-x):
//	                           straight lines ⇒ Theorem 1's O(log n)
//	fig2-cover-vs-gap.svg      cover time vs 1/(1-λ) (log-log): slope =
//	                           empirical gap exponent vs the cubic bound
//	fig3-trajectory.svg        |A_t| trajectories of BIPS runs showing the
//	                           Lemma 2-4 phases
//
// Usage:
//
//	figures -out ./figs -scale quick -seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"cobrawalk/internal/buildinfo"
	"cobrawalk/internal/core"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/plot"
	"cobrawalk/internal/process"
	"cobrawalk/internal/rng"
	"cobrawalk/internal/spectral"
	"cobrawalk/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	var (
		outDir  = fs.String("out", ".", "output directory for SVG files")
		scale   = fs.String("scale", "quick", "smoke | quick (sizes and trials)")
		seed    = fs.Uint64("seed", 7, "master RNG seed")
		version = fs.Bool("version", false, "print build info and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(w, buildinfo.Read())
		return nil
	}
	quick := *scale != "smoke"
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	for _, fig := range []struct {
		name string
		make func(quick bool, seed uint64) (*plot.Plot, error)
	}{
		{"fig1-cover-vs-n.svg", figureCoverVsN},
		{"fig2-cover-vs-gap.svg", figureCoverVsGap},
		{"fig3-trajectory.svg", figureTrajectory},
	} {
		p, err := fig.make(quick, *seed)
		if err != nil {
			return fmt.Errorf("%s: %w", fig.name, err)
		}
		path := filepath.Join(*outDir, fig.name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := p.Render(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", fig.name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	}
	return nil
}

func meanCover(g *graph.Graph, branch core.Branching, trials int, seed uint64) (float64, error) {
	c, err := core.NewCobra(g, core.WithBranching(branch), core.WithMaxRounds(1<<20))
	if err != nil {
		return 0, err
	}
	r := rng.NewStream(seed, 0xf16)
	var acc stats.Welford
	for i := 0; i < trials; i++ {
		res, err := c.Run(0, r)
		if err != nil {
			return 0, err
		}
		if !res.Covered {
			return 0, fmt.Errorf("uncovered run on %s", g.Name())
		}
		acc.Add(float64(res.CoverTime))
	}
	return acc.Mean(), nil
}

// figureCoverVsN is Theorem 1 as a picture: with a log-x axis, O(log n)
// cover times are straight lines whose slopes coincide for every degree
// with a comfortable spectral gap.
func figureCoverVsN(quick bool, seed uint64) (*plot.Plot, error) {
	sizes := []int{256, 512, 1024, 2048}
	trials := 15
	if quick {
		sizes = append(sizes, 4096)
		trials = 40
	}
	gr := rng.NewStream(seed, 0xf1)
	p := &plot.Plot{
		Title:  "COBRA k=2 cover time (Theorem 1: O(log n), degree-independent)",
		XLabel: "n (log scale)",
		YLabel: "mean cover time [rounds]",
		LogX:   true,
	}
	for _, deg := range []int{3, 8, 16} {
		var xs, ys []float64
		for _, n := range sizes {
			g, err := graph.RandomRegularConnected(n, deg, gr)
			if err != nil {
				return nil, err
			}
			m, err := meanCover(g, core.DefaultBranching, trials, seed)
			if err != nil {
				return nil, err
			}
			xs = append(xs, float64(n))
			ys = append(ys, m)
		}
		if err := p.Add(fmt.Sprintf("random %d-regular", deg), xs, ys); err != nil {
			return nil, err
		}
	}
	var xs, ys []float64
	for _, n := range sizes {
		if n > 2048 {
			continue
		}
		g, err := graph.Complete(n)
		if err != nil {
			return nil, err
		}
		m, err := meanCover(g, core.DefaultBranching, trials, seed)
		if err != nil {
			return nil, err
		}
		xs = append(xs, float64(n))
		ys = append(ys, m)
	}
	if err := p.Add("complete K_n", xs, ys); err != nil {
		return nil, err
	}
	return p, nil
}

// figureCoverVsGap is the E7 sweep as a log-log picture: the empirical
// gap exponent is the line's slope, to be compared with the cubic bound.
func figureCoverVsGap(quick bool, seed uint64) (*plot.Plot, error) {
	trials := 10
	cn := 512
	js := []int{2, 4, 8, 16}
	if quick {
		trials = 30
		cn = 1024
		js = append(js, 32)
	}
	p := &plot.Plot{
		Title:  "cover time vs 1/(1-λ) (Theorems 1-2 allow exponent ≤ 3)",
		XLabel: "1/(1-λ) (log scale)",
		YLabel: "mean cover time [rounds] (log scale)",
		LogX:   true,
		LogY:   true,
	}
	var xs, ys []float64
	for _, j := range js {
		offs := make([]int, j)
		for i := range offs {
			offs[i] = i + 1
		}
		g, err := graph.Circulant(cn, offs)
		if err != nil {
			return nil, err
		}
		lambda, err := spectral.LambdaMax(g, spectral.Options{})
		if err != nil {
			return nil, err
		}
		if 1-lambda <= 1e-9 {
			continue
		}
		m, err := meanCover(g, core.DefaultBranching, trials, seed)
		if err != nil {
			return nil, err
		}
		xs = append(xs, 1/(1-lambda))
		ys = append(ys, m)
	}
	if err := p.Add(fmt.Sprintf("circulant n=%d, offsets 1..j", cn), xs, ys); err != nil {
		return nil, err
	}
	// Reference slope-1/2 line through the first point.
	if len(xs) >= 2 {
		ref := make([]float64, len(xs))
		for i := range xs {
			ref[i] = ys[len(ys)-1] * math.Sqrt(xs[i]/xs[len(xs)-1])
		}
		if err := p.Add("slope 1/2 reference", xs, ref); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// figureTrajectory shows |A_t| for a few BIPS runs with the Lemma 2-4
// thresholds visible as horizontal reference lines. The curves come from
// the metrics layer: a Collector attached to the registry's bips process
// records the per-round active series of each run.
func figureTrajectory(quick bool, seed uint64) (*plot.Plot, error) {
	n := 1024
	if quick {
		n = 4096
	}
	gr := rng.NewStream(seed, 0xf3)
	g, err := graph.RandomRegularConnected(n, 8, gr)
	if err != nil {
		return nil, err
	}
	col := process.NewCollector(g.N())
	b, err := process.New(process.BIPS, g, process.Config{Observer: col.Observe})
	if err != nil {
		return nil, err
	}
	p := &plot.Plot{
		Title:  fmt.Sprintf("BIPS |A_t| trajectories on %s (Lemmas 2-4 phases)", g.Name()),
		XLabel: "round t",
		YLabel: "|A_t| (log scale)",
		LogY:   true,
	}
	r := rng.NewStream(seed, 0xf33)
	maxLen := 0
	for run := 0; run < 3; run++ {
		res, err := process.RunCollect(nil, b, col, r, 1<<16, 0)
		if err != nil {
			return nil, err
		}
		if !res.Done {
			return nil, fmt.Errorf("uninfected run")
		}
		sizes := col.Active()
		xs := make([]float64, len(sizes))
		ys := make([]float64, len(sizes))
		for t, s := range sizes {
			xs[t] = float64(t)
			ys[t] = float64(s)
		}
		if len(xs) > maxLen {
			maxLen = len(xs)
		}
		if err := p.Add(fmt.Sprintf("run %d", run+1), xs, ys); err != nil {
			return nil, err
		}
	}
	// Threshold reference lines: m = 4·log2 n and 0.9n.
	m := 4 * math.Log2(float64(n))
	for _, ref := range []struct {
		name string
		y    float64
	}{{"m = 4·log₂n (Lemma 2→3)", m}, {"0.9·n (Lemma 3→4)", 0.9 * float64(n)}} {
		xs := []float64{0, float64(maxLen - 1)}
		ys := []float64{ref.y, ref.y}
		if err := p.Add(ref.name, xs, ys); err != nil {
			return nil, err
		}
	}
	return p, nil
}
