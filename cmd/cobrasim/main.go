// Command cobrasim runs Monte-Carlo COBRA cover-time experiments on a
// chosen graph family and prints summary statistics. Trial results stream
// through sim.Reduce into constant-memory digests, so -trials can be
// pushed to 10⁵+ without memory growth.
//
// Usage:
//
//	cobrasim -graph rand-reg:4096:8 -k 2 -trials 100 -seed 1
//	cobrasim -graph complete:1024 -k 1 -rho 0.5 -trials 50 -hist
//	cobrasim -graph rand-reg:65536:8 -trials 100000 -no-spectral -json
//
// The -graph flag uses the specification grammar of internal/cli; -json
// emits a single machine-readable JSON object instead of text.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"cobrawalk/internal/buildinfo"
	"cobrawalk/internal/cli"
	"cobrawalk/internal/core"
	"cobrawalk/internal/process"
	"cobrawalk/internal/rng"
	"cobrawalk/internal/sim"
	"cobrawalk/internal/spectral"
	"cobrawalk/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cobrasim:", err)
		os.Exit(1)
	}
}

// agg is the streaming accumulator one shard folds its trials into:
// digests for the cover time and the transmission count.
type agg struct {
	cover, msgs *stats.Digest
}

func newAgg() *agg { return &agg{cover: stats.NewDigest(), msgs: stats.NewDigest()} }

func (a *agg) merge(o *agg) (*agg, error) {
	if err := a.cover.Merge(o.cover); err != nil {
		return nil, err
	}
	if err := a.msgs.Merge(o.msgs); err != nil {
		return nil, err
	}
	return a, nil
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cobrasim", flag.ContinueOnError)
	var (
		graphSpec = fs.String("graph", "rand-reg:1024:8", "graph specification (see internal/cli)")
		k         = fs.Int("k", 2, "integer branching factor")
		rho       = fs.Float64("rho", 0, "fractional extra branching probability in [0,1)")
		trials    = fs.Int("trials", 100, "number of independent runs")
		seed      = fs.Uint64("seed", 1, "master RNG seed")
		start     = fs.Int("start", 0, "start vertex")
		workers   = fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		maxRounds = fs.Int("max-rounds", 1<<20, "per-run round cap")
		hist      = fs.Bool("hist", false, "print a cover-time histogram")
		noSpec    = fs.Bool("no-spectral", false, "skip the λ measurement (large graphs)")
		jsonOut   = fs.Bool("json", false, "emit one machine-readable JSON object")
		version   = fs.Bool("version", false, "print build info and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(w, buildinfo.Read())
		return nil
	}

	g, err := cli.BuildGraph(*graphSpec, rng.NewStream(*seed, 0x9))
	if err != nil {
		return err
	}
	if !*jsonOut {
		fmt.Fprintf(w, "graph: %s\n", g)
	}

	lambda := math.NaN()
	if !*noSpec {
		lambda, err = spectral.LambdaMax(g, spectral.Options{})
		if err != nil {
			return err
		}
		if !*jsonOut {
			fmt.Fprintf(w, "λmax: %.6f  gap: %.6f  T=log(n)/gap³: %.1f\n",
				lambda, 1-lambda, math.Log(float64(g.N()))/math.Pow(1-lambda, 3))
		}
	}

	branch := core.Branching{K: *k, Rho: *rho}
	if err := branch.Validate(); err != nil {
		return err
	}
	if *maxRounds < 1 {
		return fmt.Errorf("max rounds %d, need >= 1", *maxRounds)
	}
	procCfg := process.Config{Branching: branch}
	// Validate construction once so the per-worker factory cannot fail.
	if _, err := process.New(process.Cobra, g, procCfg); err != nil {
		return err
	}
	type outcome struct{ cover, msgs float64 }
	red := sim.Reducer[outcome, *agg]{
		New: newAgg,
		Fold: func(a *agg, _ int, o outcome) *agg {
			a.cover.Add(o.cover)
			a.msgs.Add(o.msgs)
			return a
		},
		Merge: func(into, from *agg) (*agg, error) { return into.merge(from) },
	}
	starts := []int32{int32(*start)}
	total, err := sim.ReduceWithState(context.Background(),
		sim.Spec{Trials: *trials, Seed: *seed, Workers: *workers},
		red,
		func() process.Process {
			p, err := process.New(process.Cobra, g, procCfg)
			if err != nil {
				panic(err) // unreachable: validated above
			}
			return p
		},
		func(p process.Process, trial int, r *rng.Rand) (outcome, error) {
			out, err := process.Run(p, r, *maxRounds, starts...)
			if err != nil {
				return outcome{}, err
			}
			if !out.Done {
				return outcome{}, fmt.Errorf("trial hit the %d-round cap", *maxRounds)
			}
			return outcome{float64(out.Rounds), float64(out.Transmissions)}, nil
		})
	if err != nil {
		return err
	}
	cs, err := total.cover.Summary()
	if err != nil {
		return err
	}
	ms, err := total.msgs.Summary()
	if err != nil {
		return err
	}
	ci, err := total.cover.Stream.CI(0.95)
	if err != nil {
		return err
	}

	if *jsonOut {
		rec := map[string]any{
			"graph":         g.Name(),
			"n":             g.N(),
			"branching":     branch.String(),
			"trials":        *trials,
			"seed":          *seed,
			"cover_time":    cs,
			"transmissions": ms,
			"ci95":          map[string]float64{"lo": ci.Lo, "hi": ci.Hi},
		}
		if !math.IsNaN(lambda) {
			rec["lambda"] = lambda
			rec["gap"] = 1 - lambda
		}
		if *hist {
			h, err := total.cover.Sketch.FixedHistogram(cs.Min, cs.Max+1, 20)
			if err != nil {
				return err
			}
			rec["cover_time_histogram"] = map[string]any{
				"lo": h.Lo, "hi": h.Hi, "counts": h.Counts,
			}
		}
		blob, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%s\n", blob)
		return err
	}

	fmt.Fprintf(w, "cover time (%s, %d trials): mean %.2f [%.2f, %.2f]  median %.0f  p95 %.0f  max %.0f\n",
		branch, *trials, cs.Mean, ci.Lo, ci.Hi, cs.P50, cs.P95, cs.Max)
	fmt.Fprintf(w, "cover/log2(n): %.3f   transmissions/run: %.0f (%.2f per vertex)\n",
		cs.Mean/math.Log2(float64(g.N())), ms.Mean, ms.Mean/float64(g.N()))

	if *hist {
		h, err := total.cover.Sketch.FixedHistogram(cs.Min, cs.Max+1, 20)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "\ncover-time histogram:")
		fmt.Fprint(w, h.Render(48))
	}
	return nil
}
