// Command cobrasim runs Monte-Carlo COBRA cover-time experiments on a
// chosen graph family and prints summary statistics.
//
// Usage:
//
//	cobrasim -graph rand-reg:4096:8 -k 2 -trials 100 -seed 1
//	cobrasim -graph complete:1024 -k 1 -rho 0.5 -trials 50 -hist
//
// The -graph flag uses the specification grammar of internal/cli.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"cobrawalk/internal/cli"
	"cobrawalk/internal/core"
	"cobrawalk/internal/rng"
	"cobrawalk/internal/sim"
	"cobrawalk/internal/spectral"
	"cobrawalk/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cobrasim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cobrasim", flag.ContinueOnError)
	var (
		graphSpec = fs.String("graph", "rand-reg:1024:8", "graph specification (see internal/cli)")
		k         = fs.Int("k", 2, "integer branching factor")
		rho       = fs.Float64("rho", 0, "fractional extra branching probability in [0,1)")
		trials    = fs.Int("trials", 100, "number of independent runs")
		seed      = fs.Uint64("seed", 1, "master RNG seed")
		start     = fs.Int("start", 0, "start vertex")
		workers   = fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		maxRounds = fs.Int("max-rounds", 1<<20, "per-run round cap")
		hist      = fs.Bool("hist", false, "print a cover-time histogram")
		noSpec    = fs.Bool("no-spectral", false, "skip the λ measurement (large graphs)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := cli.BuildGraph(*graphSpec, rng.NewStream(*seed, 0x9))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "graph: %s\n", g)

	if !*noSpec {
		lambda, err := spectral.LambdaMax(g, spectral.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "λmax: %.6f  gap: %.6f  T=log(n)/gap³: %.1f\n",
			lambda, 1-lambda, math.Log(float64(g.N()))/math.Pow(1-lambda, 3))
	}

	branch := core.Branching{K: *k, Rho: *rho}
	if _, err := core.NewCobra(g, core.WithBranching(branch), core.WithMaxRounds(*maxRounds)); err != nil {
		return err
	}
	type outcome struct{ cover, msgs float64 }
	res, err := sim.RunWithState(context.Background(),
		sim.Spec{Trials: *trials, Seed: *seed, Workers: *workers},
		func() *core.Cobra {
			c, err := core.NewCobra(g, core.WithBranching(branch), core.WithMaxRounds(*maxRounds))
			if err != nil {
				panic(err) // unreachable: validated above
			}
			return c
		},
		func(c *core.Cobra, trial int, r *rng.Rand) (outcome, error) {
			out, err := c.Run(int32(*start), r)
			if err != nil {
				return outcome{}, err
			}
			if !out.Covered {
				return outcome{}, fmt.Errorf("trial hit the %d-round cap", *maxRounds)
			}
			return outcome{float64(out.CoverTime), float64(out.Transmissions)}, nil
		})
	if err != nil {
		return err
	}
	covers := sim.Floats(res, func(o outcome) float64 { return o.cover })
	s, err := stats.Summarize(covers)
	if err != nil {
		return err
	}
	ci, err := stats.NormalCI(covers, 0.95)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "cover time (%s, %d trials): mean %.2f [%.2f, %.2f]  median %.0f  p95 %.0f  max %.0f\n",
		branch, *trials, s.Mean, ci.Lo, ci.Hi, s.Median, s.P95, s.Max)
	fmt.Fprintf(w, "cover/log2(n): %.3f   transmissions/run: %.0f (%.2f per vertex)\n",
		s.Mean/math.Log2(float64(g.N())),
		stats.Mean(sim.Floats(res, func(o outcome) float64 { return o.msgs })),
		stats.Mean(sim.Floats(res, func(o outcome) float64 { return o.msgs }))/float64(g.N()))

	if *hist {
		h, err := stats.NewHistogram(s.Min, s.Max+1, 20)
		if err != nil {
			return err
		}
		for _, c := range covers {
			h.Add(c)
		}
		fmt.Fprintln(w, "\ncover-time histogram:")
		fmt.Fprint(w, h.Render(48))
	}
	return nil
}
