package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunBasic(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-graph", "complete:32", "-trials", "10", "-seed", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph:", "λmax:", "cover time", "cover/log2(n):"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunHistogramAndFractional(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-graph", "petersen", "-trials", "20", "-k", "1", "-rho", "0.5", "-hist"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "histogram") {
		t.Fatalf("missing histogram:\n%s", buf.String())
	}
}

func TestRunNoSpectral(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-graph", "cycle:16", "-trials", "5", "-no-spectral"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "λmax") {
		t.Fatal("spectral output present despite -no-spectral")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "bogus:1"}, &buf); err == nil {
		t.Fatal("bad graph spec should fail")
	}
	if err := run([]string{"-graph", "complete:8", "-k", "0"}, &buf); err == nil {
		t.Fatal("bad branching should fail")
	}
	if err := run([]string{"-graph", "cycle:1000", "-trials", "2", "-max-rounds", "1"}, &buf); err == nil {
		t.Fatal("round-capped run should surface as error")
	}
	if err := run([]string{"-not-a-flag"}, &buf); err == nil {
		t.Fatal("bad flag should fail")
	}
}
