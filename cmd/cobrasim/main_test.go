package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-graph", "complete:32", "-trials", "10", "-seed", "3", "-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Graph  string `json:"graph"`
		N      int    `json:"n"`
		Trials int    `json:"trials"`
		Cover  struct {
			N    int     `json:"n"`
			Mean float64 `json:"mean"`
			P95  float64 `json:"p95"`
		} `json:"cover_time"`
		Transmissions struct {
			Mean float64 `json:"mean"`
		} `json:"transmissions"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if rec.N != 32 || rec.Cover.N != 10 || !(rec.Cover.Mean > 0) || !(rec.Transmissions.Mean > 0) {
		t.Fatalf("JSON record = %+v", rec)
	}
	if strings.Contains(buf.String(), "graph: ") {
		t.Fatal("-json must suppress text output")
	}
}

func TestRunJSONMatchesTextDeterministically(t *testing.T) {
	// The same seed must give the same digest whether or not -json is set
	// and whatever the worker count: the streaming reduction is
	// scheduling-independent.
	var a, b bytes.Buffer
	if err := run([]string{"-graph", "complete:64", "-trials", "50", "-seed", "9", "-workers", "1", "-json"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-graph", "complete:64", "-trials", "50", "-seed", "9", "-workers", "8", "-json"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("workers=1 and workers=8 JSON differ:\n%s\n%s", a.String(), b.String())
	}
}

func TestRunBasic(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-graph", "complete:32", "-trials", "10", "-seed", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph:", "λmax:", "cover time", "cover/log2(n):"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunHistogramAndFractional(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-graph", "petersen", "-trials", "20", "-k", "1", "-rho", "0.5", "-hist"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "histogram") {
		t.Fatalf("missing histogram:\n%s", buf.String())
	}
}

func TestRunNoSpectral(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-graph", "cycle:16", "-trials", "5", "-no-spectral"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "λmax") {
		t.Fatal("spectral output present despite -no-spectral")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "bogus:1"}, &buf); err == nil {
		t.Fatal("bad graph spec should fail")
	}
	if err := run([]string{"-graph", "complete:8", "-k", "0"}, &buf); err == nil {
		t.Fatal("bad branching should fail")
	}
	if err := run([]string{"-graph", "cycle:1000", "-trials", "2", "-max-rounds", "1"}, &buf); err == nil {
		t.Fatal("round-capped run should surface as error")
	}
	if err := run([]string{"-not-a-flag"}, &buf); err == nil {
		t.Fatal("bad flag should fail")
	}
}
