//go:build !unix

package main

// raiseFDLimit is a no-op where rlimits do not exist.
func raiseFDLimit() (uint64, error) { return 0, nil }
