//go:build unix

package main

import "syscall"

// raiseFDLimit lifts the soft RLIMIT_NOFILE to the hard cap and returns
// the resulting soft limit — ten thousand SSE subscriptions are ten
// thousand client fds, usually past the default soft limit.
func raiseFDLimit() (uint64, error) {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 0, err
	}
	if rl.Cur < rl.Max {
		rl.Cur = rl.Max
		if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
			return 0, err
		}
	}
	return rl.Cur, nil
}
