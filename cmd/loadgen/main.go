// Command loadgen is the serving-path load harness: a closed-loop
// (vegeta-style) client pool that drives a cobrawalkd daemon and reports
// measured latency quantiles and throughput — p50/p99 per scenario,
// requests/sec on the read path, jobs/sec end to end on the write path.
// Its JSON report is the repo's HTTP perf anchor: committed as
// BENCH_http.json and gated in CI by cmd/benchgate -http.
//
// Scenarios:
//
//	status  GET /v1/healthz in a closed loop — the read path
//	job     POST a tiny sweep spec, poll to done, fetch results — the
//	        full job lifecycle including persistence and scheduling
//
// With -stream-subscribers N the harness additionally holds N concurrent
// SSE subscriptions on one endless job and reports fan-out latency
// quantiles and drop-policy health as a separate "streaming" block (not
// a scenario, so benchgate's scenario gate is unaffected). Large N wants
// a separate daemon process: loadgen and daemon each hold one fd per
// subscription, so -self halves the headroom under the fd limit.
//
// Usage:
//
//	loadgen -self                         boot an in-process daemon and load it
//	loadgen -addr http://127.0.0.1:8321   load a running daemon
//	loadgen -self -clients 16 -duration 10s -out BENCH_http.json
//	loadgen -addr http://127.0.0.1:8321 -stream-subscribers 10000
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"cobrawalk/internal/buildinfo"
	"cobrawalk/internal/loadgen"
	"cobrawalk/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		addr      = fs.String("addr", "", "base URL of a running cobrawalkd (e.g. http://127.0.0.1:8321)")
		self      = fs.Bool("self", false, "boot an in-process daemon on a temp dir and load that")
		clients   = fs.Int("clients", 8, "closed-loop concurrent clients")
		duration  = fs.Duration("duration", 5*time.Second, "measurement window per scenario")
		warmup    = fs.Duration("warmup", 0, "untimed warm-up window per scenario before measuring")
		scenarios = fs.String("scenarios", "status,job", "comma-separated scenarios to run (\"none\" = only the streaming block)")
		outPath   = fs.String("out", "", "write the JSON report here instead of stdout")
		maxJobs   = fs.Int("max-jobs", 2, "job slots for the -self daemon")
		workers   = fs.Int("workers", 0, "trial workers for the -self daemon (0 = GOMAXPROCS)")
		subs      = fs.Int("stream-subscribers", 0, "also hold N concurrent SSE subscribers on an in-flight job and measure fan-out")
		snapEvery = fs.Duration("snapshot-interval", 100*time.Millisecond, "stream snapshot interval for the -self daemon")
		logLevel  = fs.String("log-level", "info", "log level: debug, info, warn or error")
		logFormat = fs.String("log-format", "text", "log format: text or json")
		version   = fs.Bool("version", false, "print build info and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.Read())
		return nil
	}
	logger, err := obs.NewLogger(errw, obs.LogConfig{Level: *logLevel, Format: *logFormat})
	if err != nil {
		return err
	}

	base := *addr
	if *self {
		if base != "" {
			return errors.New("-self and -addr are mutually exclusive")
		}
		dir, err := os.MkdirTemp("", "loadgen-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		var stop func()
		base, stop, err = loadgen.SelfServe(dir, *maxJobs, *workers, *snapEvery)
		if err != nil {
			return err
		}
		defer stop()
		logger.Info("self-serving daemon", "addr", base, "data", dir)
	}
	if base == "" {
		return errors.New("one of -addr or -self is required")
	}
	if *subs > 0 {
		// Each subscription holds a client-side fd (plus a server-side
		// one under -self); lift the soft fd limit to the hard cap.
		if limit, err := raiseFDLimit(); err != nil {
			logger.Warn("raising fd limit failed", "err", err)
		} else if limit > 0 {
			logger.Info("fd limit", "nofile", limit)
		}
	}

	scens := strings.Split(*scenarios, ",")
	if *scenarios == "" || *scenarios == "none" {
		scens = []string{}
	}
	cfg := loadgen.Config{
		BaseURL:           base,
		Clients:           *clients,
		Duration:          *duration,
		Scenarios:         scens,
		StreamSubscribers: *subs,
	}
	if *warmup > 0 {
		logger.Info("warming up", "duration", warmup.String())
		wcfg := cfg
		wcfg.Duration = *warmup
		wcfg.StreamSubscribers = 0 // warm the closed-loop scenarios only
		if _, err := loadgen.Run(context.Background(), wcfg); err != nil {
			return fmt.Errorf("warm-up: %w", err)
		}
	}
	logger.Info("load starting", "target", base, "clients", *clients,
		"duration", duration.String(), "scenarios", *scenarios)
	rep, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		return err
	}
	for _, s := range rep.Scenarios {
		logger.Info("scenario done", "scenario", s.Name, "ops", s.Ops, "errors", s.Errors,
			"per_second", fmt.Sprintf("%.1f", s.PerSecond),
			"p50_ms", fmt.Sprintf("%.3f", s.P50Ms), "p99_ms", fmt.Sprintf("%.3f", s.P99Ms))
	}
	if sr := rep.Streaming; sr != nil {
		logger.Info("streaming done", "subscribers", sr.Subscribers, "connected", sr.Connected,
			"events", sr.Events, "snapshots", sr.Snapshots,
			"gapped", sr.GappedSubscribers, "errors", sr.Errors,
			"fanout_p50_ms", fmt.Sprintf("%.3f", sr.FanoutP50Ms),
			"fanout_p99_ms", fmt.Sprintf("%.3f", sr.FanoutP99Ms))
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *outPath == "" {
		_, err = out.Write(blob)
		return err
	}
	return os.WriteFile(*outPath, blob, 0o644)
}
