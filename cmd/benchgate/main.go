// Command benchgate is the benchmark regression gate: it re-measures the
// BenchmarkProcessStep workload — one full collected trial per op for
// every registered process on the canonical rand-reg n=2^14 d=8 graph —
// and compares the result against the committed baseline in
// BENCH_process.json, failing (exit 1) on regression.
//
// Absolute ns/op is meaningless across machines, so by default the gate
// compares shapes, not speeds: it computes the measured/baseline ratio
// per process and normalises by the median ratio across all processes.
// A uniformly slower (or faster) machine moves every ratio together and
// cancels out; a single process regressing moves only its own ratio and
// trips the tolerance. Allocations are gated absolutely — the process
// layer's contract is 0 allocs/op in steady state and any growth is a
// regression regardless of hardware. Use -raw on the machine that
// recorded the baseline to gate absolute ns/op instead.
//
// With -http the gate covers the serving path instead: it boots an
// in-process cobrawalkd, re-runs the cmd/loadgen workload against it and
// compares per-scenario p50 latency and per-op cost against the
// committed BENCH_http.json, median-normalised the same way so runner
// speed cancels. p99 is reported but not gated — tail quantiles over a
// short CI window are too noisy to fail a build on.
//
// Usage:
//
//	go run ./cmd/benchgate [-baseline BENCH_process.json] [-tolerance 0.2] [-raw]
//	go run ./cmd/benchgate -http [-http-baseline BENCH_http.json] [-http-duration 3s]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/loadgen"
	"cobrawalk/internal/process"
	"cobrawalk/internal/rng"
)

type baselineFile struct {
	Benchmark string          `json:"benchmark"`
	Graph     string          `json:"graph"`
	Results   []baselineEntry `json:"results"`
}

type baselineEntry struct {
	Process     string  `json:"process"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run() error {
	baselinePath := flag.String("baseline", "BENCH_process.json", "committed baseline to gate against")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional ns/op slowdown per process")
	raw := flag.Bool("raw", false, "gate absolute ns/op (baseline machine) instead of median-normalised ratios")
	httpGate := flag.Bool("http", false, "gate the serving path against BENCH_http.json instead of the process layer")
	httpBaseline := flag.String("http-baseline", "BENCH_http.json", "committed HTTP baseline for -http")
	httpDuration := flag.Duration("http-duration", 3*time.Second, "measurement window per scenario for -http")
	flag.Parse()

	if *httpGate {
		return runHTTPGate(*httpBaseline, *tolerance, *httpDuration)
	}

	blob, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", *baselinePath, err)
	}
	want := make(map[string]baselineEntry, len(base.Results))
	for _, e := range base.Results {
		want[e.Process] = e
	}

	// The exact BenchmarkProcessStep workload: same graph seed, same
	// collector reservation, same warm-up, same per-op trial.
	g, err := graph.RandomRegularConnected(1<<14, 8, rng.New(42))
	if err != nil {
		return err
	}
	starts := []int32{0}
	type measurement struct {
		name    string
		nsPerOp float64
		allocs  int64
		ratio   float64
	}
	var ms []measurement
	for _, info := range process.All() {
		e, ok := want[info.Name]
		if !ok {
			return fmt.Errorf("process %s has no baseline entry in %s (regenerate it)", info.Name, *baselinePath)
		}
		col := process.NewCollector(g.N())
		col.Reserve(1 << 20)
		p, err := info.New(g, process.Config{Observer: col.Observe})
		if err != nil {
			return err
		}
		r := rng.New(1)
		trial := func() error {
			res, err := process.RunCollect(nil, p, col, r, 1<<20, starts...)
			if err != nil {
				return err
			}
			if !res.Done {
				return fmt.Errorf("%s: trial hit the round cap", info.Name)
			}
			return nil
		}
		if err := trial(); err != nil { // warm the buffers: gate steady state
			return err
		}
		var trialErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N && trialErr == nil; i++ {
				trialErr = trial()
			}
		})
		if trialErr != nil {
			return trialErr
		}
		ns := float64(res.NsPerOp())
		ms = append(ms, measurement{
			name:    info.Name,
			nsPerOp: ns,
			allocs:  res.AllocsPerOp(),
			ratio:   ns / e.NsPerOp,
		})
	}

	scale := 1.0
	if !*raw {
		ratios := make([]float64, len(ms))
		for i, m := range ms {
			ratios[i] = m.ratio
		}
		sort.Float64s(ratios)
		scale = ratios[len(ratios)/2] // median machine-speed factor
	}

	fail := false
	fmt.Printf("%-10s %14s %14s %8s %8s  %s\n", "process", "ns/op", "baseline", "ratio", "norm", "verdict")
	for _, m := range ms {
		e := want[m.name]
		norm := m.ratio / scale
		verdict := "ok"
		if norm > 1+*tolerance {
			verdict = fmt.Sprintf("REGRESSION (> +%.0f%%)", *tolerance*100)
			fail = true
		}
		if m.allocs > e.AllocsPerOp {
			verdict = fmt.Sprintf("ALLOC REGRESSION (%d > %d allocs/op)", m.allocs, e.AllocsPerOp)
			fail = true
		}
		fmt.Printf("%-10s %14.0f %14.0f %8.3f %8.3f  %s\n", m.name, m.nsPerOp, e.NsPerOp, m.ratio, norm, verdict)
	}
	if fail {
		return fmt.Errorf("benchmark regression against %s (machine-speed scale %.3f, tolerance ±%.0f%%)",
			*baselinePath, scale, *tolerance*100)
	}
	fmt.Printf("gate passed (machine-speed scale %.3f, tolerance ±%.0f%%)\n", scale, *tolerance*100)
	return nil
}

// runHTTPGate re-measures the cmd/loadgen workload against an
// in-process daemon and gates each scenario's p50 latency and per-op
// cost (1/throughput) against the committed BENCH_http.json. Ratios are
// normalised by their median so a uniformly faster or slower runner
// cancels out and only a shape change — one path regressing relative to
// the others — trips the tolerance.
func runHTTPGate(baselinePath string, tolerance float64, duration time.Duration) error {
	blob, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base loadgen.Report
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", baselinePath, err)
	}
	if len(base.Scenarios) == 0 {
		return fmt.Errorf("%s holds no scenarios", baselinePath)
	}

	dir, err := os.MkdirTemp("", "benchgate-http-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	url, stop, err := loadgen.SelfServe(dir, 2, 0, 0)
	if err != nil {
		return err
	}
	defer stop()
	scenarios := make([]string, len(base.Scenarios))
	for i, s := range base.Scenarios {
		scenarios[i] = s.Name
	}
	// Untimed warm-up: fill the graph cache, fault in the job dirs and
	// let the runtime settle, so the measured window gates steady state
	// like the process gate does.
	if _, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:   url,
		Clients:   base.Clients,
		Duration:  time.Second,
		Scenarios: scenarios,
	}); err != nil {
		return fmt.Errorf("warm-up: %w", err)
	}
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:   url,
		Clients:   base.Clients,
		Duration:  duration,
		Scenarios: scenarios,
	})
	if err != nil {
		return err
	}

	// One gated cost metric pair per scenario: p50 latency and mean
	// per-op cost in ms (1000/throughput). Lower is better for both, so
	// ratio > 1 means slower than baseline.
	type gauge struct {
		name           string
		measured, base float64
		ratio          float64
	}
	var gs []gauge
	for _, bs := range base.Scenarios {
		ms, ok := rep.Scenario(bs.Name)
		if !ok {
			return fmt.Errorf("scenario %s missing from the fresh measurement", bs.Name)
		}
		gs = append(gs,
			gauge{bs.Name + " p50_ms", ms.P50Ms, bs.P50Ms, ms.P50Ms / bs.P50Ms},
			gauge{bs.Name + " ms/op", 1000 / ms.PerSecond, 1000 / bs.PerSecond, bs.PerSecond / ms.PerSecond})
		fmt.Printf("%-12s p99_ms %.3f (baseline %.3f, not gated)\n", bs.Name, ms.P99Ms, bs.P99Ms)
	}
	ratios := make([]float64, len(gs))
	for i, g := range gs {
		ratios[i] = g.ratio
	}
	sort.Float64s(ratios)
	scale := ratios[len(ratios)/2]

	fail := false
	fmt.Printf("%-16s %12s %12s %8s %8s  %s\n", "metric", "measured", "baseline", "ratio", "norm", "verdict")
	for _, g := range gs {
		norm := g.ratio / scale
		verdict := "ok"
		if norm > 1+tolerance {
			verdict = fmt.Sprintf("REGRESSION (> +%.0f%%)", tolerance*100)
			fail = true
		}
		fmt.Printf("%-16s %12.3f %12.3f %8.3f %8.3f  %s\n", g.name, g.measured, g.base, g.ratio, norm, verdict)
	}
	if fail {
		return fmt.Errorf("HTTP serving-path regression against %s (machine-speed scale %.3f, tolerance ±%.0f%%)",
			baselinePath, scale, tolerance*100)
	}
	fmt.Printf("http gate passed (machine-speed scale %.3f, tolerance ±%.0f%%)\n", scale, tolerance*100)
	return nil
}
