// Command benchgate is the benchmark regression gate: it re-measures the
// BenchmarkProcessStep workload — one full collected trial per op for
// every registered process on the canonical rand-reg n=2^14 d=8 graph —
// and compares the result against the committed baseline in
// BENCH_process.json, failing (exit 1) on regression.
//
// Absolute ns/op is meaningless across machines, so by default the gate
// compares shapes, not speeds: it computes the measured/baseline ratio
// per process and normalises by the median ratio across all processes.
// A uniformly slower (or faster) machine moves every ratio together and
// cancels out; a single process regressing moves only its own ratio and
// trips the tolerance. Allocations are gated absolutely — the process
// layer's contract is 0 allocs/op in steady state and any growth is a
// regression regardless of hardware. Use -raw on the machine that
// recorded the baseline to gate absolute ns/op instead.
//
// Usage:
//
//	go run ./cmd/benchgate [-baseline BENCH_process.json] [-tolerance 0.2] [-raw]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"testing"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/process"
	"cobrawalk/internal/rng"
)

type baselineFile struct {
	Benchmark string          `json:"benchmark"`
	Graph     string          `json:"graph"`
	Results   []baselineEntry `json:"results"`
}

type baselineEntry struct {
	Process     string  `json:"process"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run() error {
	baselinePath := flag.String("baseline", "BENCH_process.json", "committed baseline to gate against")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional ns/op slowdown per process")
	raw := flag.Bool("raw", false, "gate absolute ns/op (baseline machine) instead of median-normalised ratios")
	flag.Parse()

	blob, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", *baselinePath, err)
	}
	want := make(map[string]baselineEntry, len(base.Results))
	for _, e := range base.Results {
		want[e.Process] = e
	}

	// The exact BenchmarkProcessStep workload: same graph seed, same
	// collector reservation, same warm-up, same per-op trial.
	g, err := graph.RandomRegularConnected(1<<14, 8, rng.New(42))
	if err != nil {
		return err
	}
	starts := []int32{0}
	type measurement struct {
		name    string
		nsPerOp float64
		allocs  int64
		ratio   float64
	}
	var ms []measurement
	for _, info := range process.All() {
		e, ok := want[info.Name]
		if !ok {
			return fmt.Errorf("process %s has no baseline entry in %s (regenerate it)", info.Name, *baselinePath)
		}
		col := process.NewCollector(g.N())
		col.Reserve(1 << 20)
		p, err := info.New(g, process.Config{Observer: col.Observe})
		if err != nil {
			return err
		}
		r := rng.New(1)
		trial := func() error {
			res, err := process.RunCollect(nil, p, col, r, 1<<20, starts...)
			if err != nil {
				return err
			}
			if !res.Done {
				return fmt.Errorf("%s: trial hit the round cap", info.Name)
			}
			return nil
		}
		if err := trial(); err != nil { // warm the buffers: gate steady state
			return err
		}
		var trialErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N && trialErr == nil; i++ {
				trialErr = trial()
			}
		})
		if trialErr != nil {
			return trialErr
		}
		ns := float64(res.NsPerOp())
		ms = append(ms, measurement{
			name:    info.Name,
			nsPerOp: ns,
			allocs:  res.AllocsPerOp(),
			ratio:   ns / e.NsPerOp,
		})
	}

	scale := 1.0
	if !*raw {
		ratios := make([]float64, len(ms))
		for i, m := range ms {
			ratios[i] = m.ratio
		}
		sort.Float64s(ratios)
		scale = ratios[len(ratios)/2] // median machine-speed factor
	}

	fail := false
	fmt.Printf("%-10s %14s %14s %8s %8s  %s\n", "process", "ns/op", "baseline", "ratio", "norm", "verdict")
	for _, m := range ms {
		e := want[m.name]
		norm := m.ratio / scale
		verdict := "ok"
		if norm > 1+*tolerance {
			verdict = fmt.Sprintf("REGRESSION (> +%.0f%%)", *tolerance*100)
			fail = true
		}
		if m.allocs > e.AllocsPerOp {
			verdict = fmt.Sprintf("ALLOC REGRESSION (%d > %d allocs/op)", m.allocs, e.AllocsPerOp)
			fail = true
		}
		fmt.Printf("%-10s %14.0f %14.0f %8.3f %8.3f  %s\n", m.name, m.nsPerOp, e.NsPerOp, m.ratio, norm, verdict)
	}
	if fail {
		return fmt.Errorf("benchmark regression against %s (machine-speed scale %.3f, tolerance ±%.0f%%)",
			*baselinePath, scale, *tolerance*100)
	}
	fmt.Printf("gate passed (machine-speed scale %.3f, tolerance ±%.0f%%)\n", scale, *tolerance*100)
	return nil
}
