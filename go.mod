module cobrawalk

go 1.24
