package cobrawalk

import (
	"context"

	"cobrawalk/internal/baseline"
	"cobrawalk/internal/buildinfo"
	"cobrawalk/internal/core"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/graphcache"
	"cobrawalk/internal/graphstore"
	"cobrawalk/internal/process"
	"cobrawalk/internal/rng"
	"cobrawalk/internal/spectral"
	"cobrawalk/internal/stats"
	"cobrawalk/internal/sweep"
	"cobrawalk/internal/walk"
)

// Graph is an immutable simple undirected graph in CSR form. See the
// Builder and the generator functions for construction.
type Graph = graph.Graph

// Builder accumulates edges and produces a validated Graph.
type Builder = graph.Builder

// Rand is a seeded xoshiro256++ generator; all simulation randomness flows
// through values of this type. Not safe for concurrent use — derive one
// per goroutine with NewRandStream.
type Rand = rng.Rand

// NewRand returns a deterministic generator for the given seed.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// NewRandStream returns generator number `stream` of an independent family
// derived from seed, for reproducible parallelism.
func NewRandStream(seed, stream uint64) *Rand { return rng.NewStream(seed, stream) }

// NewBuilder returns a graph builder for n vertices with capacity for
// edgeHint undirected edges.
func NewBuilder(n, edgeHint int) *Builder { return graph.NewBuilder(n, edgeHint) }

// Graph generators (see internal/graph for the full catalogue).
var (
	// Complete returns the complete graph K_n.
	Complete = graph.Complete
	// Cycle returns the cycle C_n.
	Cycle = graph.Cycle
	// Hypercube returns the d-dimensional hypercube on 2^d vertices.
	Hypercube = graph.Hypercube
	// Torus returns the regular discrete torus with the given sides (>= 3).
	Torus = graph.Torus
	// Grid returns the (irregular) grid with the given sides.
	Grid = graph.Grid
	// Circulant returns the circulant graph with the given offsets.
	Circulant = graph.Circulant
	// CompleteBipartite returns K_{a,b}.
	CompleteBipartite = graph.CompleteBipartite
	// Paley returns the Paley graph on a prime q ≡ 1 (mod 4).
	Paley = graph.Paley
	// Petersen returns the Petersen graph.
	Petersen = graph.Petersen
	// RandomRegular returns a random simple r-regular graph.
	RandomRegular = graph.RandomRegular
	// RandomRegularConnected retries RandomRegular until connected.
	RandomRegularConnected = graph.RandomRegularConnected
	// ReadGraph parses the text edge-list format produced by WriteGraph.
	ReadGraph = graph.Read
	// WriteGraph serialises a graph in the text edge-list format.
	WriteGraph = graph.Write
	// WriteStore writes a graph as a checksummed binary CSR store file
	// (.csrg) that LoadStore maps back in O(1); see cmd/graphbuild.
	WriteStore = graphstore.Write
	// LoadStore memory-maps a store file written by WriteStore — the
	// returned graph's CSR slices must not outlive it (DESIGN.md §13).
	LoadStore = graphstore.Mmap
)

// SpectralReport collects λ₂, λ_n, λ_max, the spectral gap and derived
// quantities for a graph.
type SpectralReport = spectral.Report

// SpectralOptions tunes the iterative eigensolvers.
type SpectralOptions = spectral.Options

// Analyze computes the spectral report of g with default solver options.
func Analyze(g *Graph) (SpectralReport, error) {
	return spectral.Analyze(g, spectral.Options{})
}

// LambdaMax returns λ = max_{i≥2}|λ_i| of the transition matrix of g — the
// quantity the paper's bounds are stated in.
func LambdaMax(g *Graph) (float64, error) {
	return spectral.LambdaMax(g, spectral.Options{})
}

// Spectrum returns all transition-matrix eigenvalues of g in non-increasing
// order (dense solver; graphs up to 1500 vertices).
func Spectrum(g *Graph) ([]float64, error) { return spectral.DenseSpectrum(g) }

// Branching describes a process branching factor: K pushes always, plus
// one more with probability Rho (Theorem 3's 1+ρ regime is K=1, Rho=ρ).
type Branching = core.Branching

// Cobra is a reusable COBRA process; BIPS is its dual epidemic process.
type (
	Cobra       = core.Cobra
	CobraResult = core.CobraResult
	BIPS        = core.BIPS
	BipsResult  = core.BipsResult
	RoundStat   = core.RoundStat
	PhaseTimes  = core.PhaseTimes
)

// Option configures process construction.
type Option = core.Option

// Process options, re-exported from internal/core.
var (
	// WithBranching sets the branching factor (default k = 2).
	WithBranching = core.WithBranching
	// WithK is shorthand for WithBranching(Branching{K: k}).
	WithK = core.WithK
	// WithMaxRounds caps the rounds a Run may execute.
	WithMaxRounds = core.WithMaxRounds
	// WithHitTimes records first-visit rounds per vertex (COBRA).
	WithHitTimes = core.WithHitTimes
	// WithTrace records a per-round trace.
	WithTrace = core.WithTrace
	// WithFastSampling switches BIPS to the closed-form Bernoulli path.
	WithFastSampling = core.WithFastSampling
)

// NewCobra returns a reusable COBRA process on g (default branching k=2).
func NewCobra(g *Graph, opts ...Option) (*Cobra, error) { return core.NewCobra(g, opts...) }

// NewBIPS returns a reusable BIPS process on g (default branching k=2).
func NewBIPS(g *Graph, opts ...Option) (*BIPS, error) { return core.NewBIPS(g, opts...) }

// DetectPhases decomposes a BIPS size trajectory into the paper's three
// proof phases (Lemmas 2-4).
var DetectPhases = core.DetectPhases

// Duality machinery (Theorem 4).
type (
	// DualityEstimate holds Monte-Carlo estimates of both sides of the
	// duality for t = 0..T.
	DualityEstimate = core.DualityEstimate
	// ExactDuality holds the exact subset-space evaluation of both sides.
	ExactDuality = core.ExactDuality
)

var (
	// EstimateDuality estimates both sides of Theorem 4 by Monte Carlo.
	EstimateDuality = core.EstimateDuality
	// ComputeExactDuality verifies Theorem 4 exactly on graphs with at
	// most MaxExactVertices vertices.
	ComputeExactDuality = core.ComputeExactDuality
	// Lemma1Bound is the paper's one-step growth lower bound.
	Lemma1Bound = core.Lemma1Bound
	// ExactExpectedGrowth evaluates E(|A_{t+1}| | A_t = A) in closed form.
	ExactExpectedGrowth = core.ExactExpectedGrowth
)

// MaxExactVertices bounds the exact duality solver (subset-space cost 4^n).
const MaxExactVertices = core.MaxExactVertices

// Summary holds descriptive statistics of a sample.
type Summary = stats.Summary

// Summarize computes the Summary of a sample.
var Summarize = stats.Summarize

// Streaming statistics: constant-memory accumulators for Monte-Carlo
// ensembles too large to materialise (see internal/sim.Reduce for the
// harness that folds trials into them in parallel, deterministically).
type (
	// Stream accumulates count/mean/variance/min/max online (Welford).
	Stream = stats.Stream
	// QuantileSketch estimates quantiles with bounded relative error and
	// merges exactly.
	QuantileSketch = stats.QuantileSketch
	// Digest combines a Stream and a QuantileSketch — the streaming
	// counterpart of Summarize.
	Digest = stats.Digest
	// DigestSummary is a Digest snapshot, JSON-marshalable for tooling.
	DigestSummary = stats.DigestSummary
	// Histogram is a fixed-bin mergeable histogram.
	Histogram = stats.Histogram
)

var (
	// NewDigest returns an empty Digest with default sketch accuracy.
	NewDigest = stats.NewDigest
	// NewQuantileSketch returns an empty sketch with the given relative
	// accuracy.
	NewQuantileSketch = stats.NewQuantileSketch
	// NewHistogram returns an empty fixed-bin histogram over [lo, hi).
	NewHistogram = stats.NewHistogram
)

// DefaultBranching is the paper's canonical k = 2 branching factor.
var DefaultBranching = core.DefaultBranching

// The unified process layer: every spreading process — cobra, bips,
// push, push-pull, flood, kwalk, and the parallel-kernel variants
// cobra-par and bips-par — is a reusable Process object behind
// one interface, registered by name (see internal/process). Construct
// once per graph via NewProcess, then Reset/Step (or RunProcess) many
// times; ensembles run without per-trial graph-sized allocations.
type (
	// Process is a reusable spreading process bound to a fixed graph.
	Process = process.Process
	// ProcessConfig parameterises process construction (branching,
	// bips fast sampling, round observer, kernel workers).
	ProcessConfig = process.Config
	// ProcessInfo is one registry entry: name, axis semantics, factory.
	ProcessInfo = process.Info
	// ProcessResult reports one driven run (RunProcess).
	ProcessResult = process.Result
	// ProcessRoundStat is the per-round observation a RoundObserver
	// receives.
	ProcessRoundStat = process.RoundStat
	// RoundObserver receives a ProcessRoundStat after every Step —
	// the hook for recording per-round trajectories.
	RoundObserver = process.RoundObserver
)

var (
	// NewProcess constructs the named registry process on a graph.
	NewProcess = process.New
	// LookupProcess returns the registry entry for a process name.
	LookupProcess = process.Lookup
	// ProcessNames returns the registered process names in canonical
	// order — the single source of truth for every process list.
	ProcessNames = process.Names
	// ProcessInfos returns the registry entries in canonical order.
	ProcessInfos = process.All
	// RunProcess drives a Process through one full run (Reset + Step
	// until done or the round cap).
	RunProcess = process.Run
)

// The metrics layer: a MetricsCollector rides a process's RoundObserver
// hook and accumulates one trial's scalars (rounds, transmissions, peak
// active set, half-coverage round) and per-round series (reached, newly
// reached, active) into reusable buffers; a TrajectoryDigest folds those
// series across a Monte-Carlo ensemble into mergeable per-round quantile
// bands. This is the pipeline behind sweep trajectory metrics, the
// daemon's /v1/jobs/{id}/trajectories stream and the paper's phase plots.
type (
	// MetricsCollector accumulates per-trial metrics via Observe.
	MetricsCollector = process.Collector
	// TrajectoryDigest aggregates per-round trajectories across trials.
	TrajectoryDigest = stats.TrajectoryDigest
	// TrajectorySummary is a snapshot: per-round n/mean/p10/p50/p90.
	TrajectorySummary = stats.TrajectorySummary
)

var (
	// NewMetricsCollector returns a collector for an n-vertex graph;
	// attach its Observe method as ProcessConfig.Observer.
	NewMetricsCollector = process.NewCollector
	// RunProcessCollect drives one collected run: Reset, Collector.Begin,
	// then Step until done, the round cap, or ctx cancellation.
	RunProcessCollect = process.RunCollect
	// NewTrajectoryDigest returns an empty trajectory digest.
	NewTrajectoryDigest = stats.NewTrajectoryDigest
)

// Baseline protocols for comparison experiments (the paper's §1
// context). These are one-shot convenience wrappers over the process
// layer; ensemble callers should construct a Process once and reuse it.
type (
	// BaselineResult reports one baseline protocol run.
	BaselineResult = baseline.Result
	// BaselineConfig bounds baseline protocol runs.
	BaselineConfig = baseline.Config
)

var (
	// Push runs the classic push rumour-spreading protocol.
	Push = baseline.Push
	// PushPull runs the push-pull protocol.
	PushPull = baseline.PushPull
	// Flood runs full flooding (rounds = eccentricity of the start).
	Flood = baseline.Flood
	// RandomWalkCover covers the graph with a single random walk.
	RandomWalkCover = baseline.RandomWalkCover
	// MultiWalkCover covers the graph with k independent random walks.
	MultiWalkCover = baseline.MultiWalkCover
)

// Random-walk theory: exact anchors for the k = 1 end of the branching
// spectrum.
var (
	// ExpectedHittingTimes solves the absorbing-chain system exactly.
	ExpectedHittingTimes = walk.ExpectedHittingTimes
	// PairwiseHittingTimes returns the full hitting-time matrix.
	PairwiseHittingTimes = walk.PairwiseHittingTimes
	// MatthewsBounds sandwiches the walk cover time from hitting times.
	MatthewsBounds = walk.MatthewsBounds
	// StationaryDistribution is the degree-proportional walk stationary law.
	StationaryDistribution = walk.StationaryDistribution
)

// Gini summarises inequality of a non-negative sample (load balance).
var Gini = stats.Gini

// Parameter sweeps: a SweepSpec declares a grid over graph family × size
// × degree × process × branching; RunSweep expands it into deterministic,
// ID-stamped points and streams each point's ensemble into digests. With
// SweepOptions.Dir set, completed points persist as JSON records and
// interrupted sweeps resume byte-identically (see internal/sweep and
// cmd/sweep).
type (
	// SweepSpec declares the axes of a sweep grid.
	SweepSpec = sweep.Spec
	// SweepPoint is one fully-specified cell of the expanded grid.
	SweepPoint = sweep.Point
	// SweepResult is one completed point: identity + ensemble digests.
	SweepResult = sweep.Result
	// SweepReport is the outcome of RunSweep.
	SweepReport = sweep.Report
	// SweepOptions carries scheduling and artifact settings; it never
	// affects the computed results.
	SweepOptions = sweep.Options
	// SweepFamily names a graph generator usable in SweepSpec.Families.
	SweepFamily = sweep.Family
)

// RunSweep expands spec and executes every point across a worker pool.
func RunSweep(ctx context.Context, spec SweepSpec, opts SweepOptions) (*SweepReport, error) {
	return sweep.Run(ctx, spec, opts)
}

var (
	// SweepFamilies returns the sweep family registry.
	SweepFamilies = sweep.Families
	// SweepProcesses returns the supported sweep process names,
	// delegating to the process registry (same list as ProcessNames).
	SweepProcesses = sweep.Processes
	// ParseBranchings parses the "K" / "K+RHO" comma-list grammar used
	// by cmd/sweep's -branchings flag.
	ParseBranchings = sweep.ParseBranchings
	// SweepMetrics returns the sweep metric registry in canonical order.
	SweepMetrics = sweep.Metrics
	// SweepMetricNames returns the registered metric names.
	SweepMetricNames = sweep.MetricNames
	// ParseMetrics parses the comma-list grammar of cmd/sweep's -metrics
	// flag against the metric registry.
	ParseMetrics = sweep.ParseMetrics
)

// Canonical sweep metric names (see the registry in internal/sweep):
// scalar summaries per trial plus trajectory quantile bands per round.
const (
	SweepMetricRounds        = sweep.MetricRounds
	SweepMetricTransmissions = sweep.MetricTransmissions
	SweepMetricPeakActive    = sweep.MetricPeakActive
	SweepMetricHalfCoverage  = sweep.MetricHalfCoverage
	SweepMetricCoverage      = sweep.MetricCoverage
	SweepMetricFrontier      = sweep.MetricFrontier
)

// Graph caching: a GraphCache shares built graphs across sweep points,
// jobs and whole runs (LRU by a vertex-count budget, single-flighted
// builds). Hand one to SweepOptions.GraphCache — points that share a
// topology also share a GraphSeed, so one build serves the whole
// process × branching fan-out. The cobrawalkd daemon keeps one cache
// across every job it serves.
type (
	// GraphCache is a concurrency-safe LRU cache of built graphs.
	GraphCache = graphcache.Cache
	// GraphCacheKey identifies one buildable graph: topology axes + seed.
	GraphCacheKey = graphcache.Key
	// GraphCacheStats is a snapshot of hit/miss/eviction counters.
	GraphCacheStats = graphcache.Stats
)

// NewGraphCache returns an empty graph cache holding at most
// budgetVertices total vertices (<= 0 means the default budget).
var NewGraphCache = graphcache.New

// BuildInfo is the build identity of the running binary (module,
// version, VCS revision, toolchain), as served on the daemon's
// /v1/version and printed by every command's -version flag.
type BuildInfo = buildinfo.Info

// ReadBuildInfo reports the build identity of the running binary.
var ReadBuildInfo = buildinfo.Read

// RunProcessContext drives a Process like RunProcess but aborts
// mid-trial, promptly, when ctx is cancelled.
var RunProcessContext = process.RunContext
