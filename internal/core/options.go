// Package core implements the paper's contribution: the COBRA
// coalescing-branching random walk, the dual BIPS epidemic process
// (biased infection with persistent source), the duality relation between
// them (Theorem 4), and the growth-bound machinery of Lemmas 1-4.
//
// Both processes run on graphs from internal/graph, draw randomness from
// internal/rng streams, and are instrumented for the experiments in
// internal/expt: hitting times, cover times, infection trajectories,
// per-round traces and transmission counts.
package core

import (
	"errors"
	"fmt"

	"cobrawalk/internal/graph"
)

// Branching describes the branching factor of a process: every active
// (resp. susceptible) vertex contacts K uniformly random neighbours, with
// replacement, plus one more with probability Rho. The paper's main
// theorems use K=2, Rho=0; Theorem 3 and Corollary 1 use K=1, Rho>0 for an
// expected branching factor of 1+Rho.
type Branching struct {
	K   int     `json:"k"`
	Rho float64 `json:"rho,omitempty"`
}

// DefaultBranching is the paper's canonical k = 2 branching factor.
var DefaultBranching = Branching{K: 2}

// Expected returns the expected number of contacts per vertex per round,
// K + Rho.
func (b Branching) Expected() float64 { return float64(b.K) + b.Rho }

// Validate checks the branching parameters: K >= 1 and 0 <= Rho < 1.
func (b Branching) Validate() error {
	if b.K < 1 {
		return fmt.Errorf("core: branching K = %d, need >= 1", b.K)
	}
	if b.Rho < 0 || b.Rho >= 1 {
		return fmt.Errorf("core: branching Rho = %v, need 0 <= Rho < 1", b.Rho)
	}
	return nil
}

func (b Branching) String() string {
	if b.Rho == 0 {
		return fmt.Sprintf("k=%d", b.K)
	}
	return fmt.Sprintf("k=%d+ρ%.2f", b.K, b.Rho)
}

// config carries the options common to both processes.
type config struct {
	branching   Branching
	maxRounds   int
	trackHits   bool
	trackLoad   bool
	recordTrace bool
	exactSample bool // BIPS: simulate individual neighbour choices
}

func defaultConfig() config {
	return config{
		branching:   DefaultBranching,
		maxRounds:   1 << 20,
		exactSample: true,
	}
}

// Option configures a process at construction time.
type Option func(*config)

// WithBranching sets the branching factor (default k=2).
func WithBranching(b Branching) Option {
	return func(c *config) { c.branching = b }
}

// WithK is shorthand for WithBranching(Branching{K: k}).
func WithK(k int) Option {
	return func(c *config) { c.branching = Branching{K: k} }
}

// WithMaxRounds caps the number of rounds a Run may execute before giving
// up (default 2^20). Runs that hit the cap report Covered/Infected = false
// rather than failing.
func WithMaxRounds(n int) Option {
	return func(c *config) { c.maxRounds = n }
}

// WithHitTimes records the first-visit round of every vertex (COBRA) at
// O(n) memory per process. Required by the duality estimator.
func WithHitTimes() Option {
	return func(c *config) { c.trackHits = true }
}

// WithTrace records a per-round RoundStat trace.
func WithTrace() Option {
	return func(c *config) { c.recordTrace = true }
}

// WithLoadCounts records per-vertex load counters (COBRA): how many rounds
// each vertex was active (sends = k·activations) and how many deliveries
// it received, including coalesced duplicates. Costs O(n) memory.
func WithLoadCounts() Option {
	return func(c *config) { c.trackLoad = true }
}

// WithFastSampling switches BIPS to the closed-form Bernoulli fast path:
// each susceptible vertex u is infected with its exact probability
// 1-(1-d_A(u)/d(u))^K·(1-Rho·d_A(u)/d(u)) instead of simulating the K
// individual neighbour draws. The two paths are identical in distribution;
// the fast path avoids per-choice RNG draws when K is large.
func WithFastSampling() Option {
	return func(c *config) { c.exactSample = false }
}

func buildConfig(g *graph.Graph, opts []Option) (config, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.branching.Validate(); err != nil {
		return cfg, err
	}
	if cfg.maxRounds < 1 {
		return cfg, fmt.Errorf("core: max rounds %d, need >= 1", cfg.maxRounds)
	}
	if g == nil || g.N() == 0 {
		return cfg, errors.New("core: empty graph")
	}
	if g.MinDegree() == 0 {
		return cfg, errors.New("core: graph has an isolated vertex; processes are undefined")
	}
	return cfg, nil
}

// RoundStat records the state of a process after one round, for traces.
type RoundStat struct {
	Round int
	// Active is |C_t| for COBRA or |A_t| for BIPS.
	Active int
	// Visited is the cumulative count of distinct visited (COBRA) or the
	// current infected count (BIPS; equal to Active).
	Visited int
	// Transmissions is the number of messages pushed this round.
	Transmissions int64
}
