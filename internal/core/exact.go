package core

import (
	"fmt"
	"math"
	"math/bits"

	"cobrawalk/internal/graph"
)

// MaxExactVertices bounds the subset-space exact solvers: the per-step cost
// is O(4^n), so 13 vertices (~67M cells) is the practical ceiling.
const MaxExactVertices = 13

// ExactDuality holds the exact (non-Monte-Carlo) evaluation of both sides
// of Theorem 4 on a small graph, over the full subset space:
//
//	CobraSurvival[t][C] = P̂(Hit_C(v) > t)          (COBRA started at set C)
//	BipsAvoid[t][C]     = P(C ∩ A_t = ∅ | A_0 = v)  (BIPS with source v)
//
// Theorem 4 states these tables are identical. Computing both
// independently — one by the COBRA hitting-time recursion, one by evolving
// the BIPS distribution over subsets — and comparing them verifies the
// theorem to floating-point accuracy.
type ExactDuality struct {
	N             int
	V             int32
	T             int
	CobraSurvival [][]float64
	BipsAvoid     [][]float64
}

// MaxAbsError returns max over t and C of the difference between the two
// tables. Under Theorem 4 this is pure floating-point noise (~1e-12).
func (e ExactDuality) MaxAbsError() float64 {
	worst := 0.0
	for t := range e.CobraSurvival {
		for c := range e.CobraSurvival[t] {
			if d := math.Abs(e.CobraSurvival[t][c] - e.BipsAvoid[t][c]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// MarginalSurvival returns the single-vertex series P̂(Hit_u(v) > t) for
// t = 0..T, i.e. the left side of equation (2).
func (e ExactDuality) MarginalSurvival(u int32) []float64 {
	out := make([]float64, e.T+1)
	for t := 0; t <= e.T; t++ {
		out[t] = e.CobraSurvival[t][uint32(1)<<uint(u)]
	}
	return out
}

// MarginalExclusion returns the single-vertex series P(u ∉ A_t | A_0 = v).
func (e ExactDuality) MarginalExclusion(u int32) []float64 {
	out := make([]float64, e.T+1)
	for t := 0; t <= e.T; t++ {
		out[t] = e.BipsAvoid[t][uint32(1)<<uint(u)]
	}
	return out
}

// ComputeExactDuality evaluates both sides of Theorem 4 exactly for all
// 2^n start sets and t = 0..tMax, for a BIPS source / COBRA target v.
func ComputeExactDuality(g *graph.Graph, v int32, tMax int, branch Branching) (*ExactDuality, error) {
	n := g.N()
	if n == 0 || n > MaxExactVertices {
		return nil, fmt.Errorf("core: exact duality supports 1..%d vertices, got %d", MaxExactVertices, n)
	}
	if v < 0 || int(v) >= n {
		return nil, fmt.Errorf("core: vertex %d out of range [0,%d)", v, n)
	}
	if err := branch.Validate(); err != nil {
		return nil, err
	}
	if g.MinDegree() == 0 {
		return nil, fmt.Errorf("core: graph has an isolated vertex")
	}
	if tMax < 0 {
		return nil, fmt.Errorf("core: negative horizon %d", tMax)
	}
	nbr := neighborMasks(g)
	e := &ExactDuality{N: n, V: v, T: tMax}
	e.CobraSurvival = exactCobraSurvival(g, nbr, v, tMax, branch)
	e.BipsAvoid = exactBipsAvoid(g, nbr, v, tMax, branch)
	return e, nil
}

func neighborMasks(g *graph.Graph) []uint32 {
	nbr := make([]uint32, g.N())
	for x := int32(0); x < int32(g.N()); x++ {
		var m uint32
		for _, u := range g.Neighbors(x) {
			m |= 1 << uint(u)
		}
		nbr[x] = m
	}
	return nbr
}

// pushInsideProb returns P(all of x's pushes land inside S) when x has
// degree deg and d of its neighbours lie in S: (d/deg)^K · (1-Rho+Rho·d/deg).
func pushInsideProb(d, deg int, branch Branching) float64 {
	p := float64(d) / float64(deg)
	prob := 1.0
	for i := 0; i < branch.K; i++ {
		prob *= p
	}
	if branch.Rho > 0 {
		prob *= (1 - branch.Rho) + branch.Rho*p
	}
	return prob
}

// infectProb returns P(x gets infected | d of its deg neighbours infected):
// 1 - (1-d/deg)^K · (1 - Rho·d/deg).
func infectProb(d, deg int, branch Branching) float64 {
	p := float64(d) / float64(deg)
	miss := 1.0
	for i := 0; i < branch.K; i++ {
		miss *= 1 - p
	}
	return 1 - miss*(1-branch.Rho*p)
}

// exactCobraSurvival computes h_t[C] = P̂(Hit_C(v) > t) for all subsets C
// via the recursion
//
//	h_{t+1}[C] = Σ_B P(Y(C)=B)·h_t[B] = Σ_S F_C(S)·ĥ_t[S],
//
// where F_C(S) = Π_{x∈C} P(x's pushes ⊆ S) and ĥ_t is the alternating
// superset (Möbius) transform of h_t. The S-sum is evaluated by expanding,
// for each S, the multiplicative-in-C function F_·(S) as a rank-1 tensor
// over the C-lattice, at O(4^n) per step.
func exactCobraSurvival(g *graph.Graph, nbr []uint32, v int32, tMax int, branch Branching) [][]float64 {
	n := g.N()
	size := 1 << uint(n)
	vbit := uint32(1) << uint(v)

	h := make([]float64, size)
	for c := 0; c < size; c++ {
		if uint32(c)&vbit == 0 {
			h[c] = 1
		}
	}
	out := make([][]float64, tMax+1)
	out[0] = append([]float64(nil), h...)

	hat := make([]float64, size)
	next := make([]float64, size)
	tensor := make([]float64, size)
	fS := make([]float64, n)

	for t := 1; t <= tMax; t++ {
		// Alternating superset transform: ĥ[S] = Σ_{B⊇S} (-1)^{|B\S|} h[B].
		copy(hat, h)
		for i := 0; i < n; i++ {
			bit := 1 << uint(i)
			for s := 0; s < size; s++ {
				if s&bit == 0 {
					hat[s] -= hat[s|bit]
				}
			}
		}
		for c := range next {
			next[c] = 0
		}
		for s := 0; s < size; s++ {
			if hat[s] == 0 {
				continue
			}
			// Per-vertex factors f_S(x) = P(x's pushes all land inside S).
			for x := 0; x < n; x++ {
				d := bits.OnesCount32(uint32(s) & nbr[x])
				fS[x] = pushInsideProb(d, g.Degree(int32(x)), branch)
			}
			// Rank-1 tensor over C: tensor[C] = Π_{x∈C} f_S(x), built by
			// doubling over the vertex bits.
			tensor[0] = 1
			width := 1
			for x := 0; x < n; x++ {
				f := fS[x]
				for c := 0; c < width; c++ {
					tensor[width+c] = tensor[c] * f
				}
				width <<= 1
			}
			w := hat[s]
			for c := 0; c < size; c++ {
				next[c] += w * tensor[c]
			}
		}
		// The recursion h_{t+1}[C] = Σ_B P(Y(C)=B)·h_t[B] applies only to
		// sets with v ∉ C; for v ∈ C the hitting time is 0, so survival is
		// identically 0 (the paper's "trivial case" of Theorem 4).
		for c := 0; c < size; c++ {
			if uint32(c)&vbit != 0 {
				next[c] = 0
			}
		}
		copy(h, next)
		out[t] = append([]float64(nil), h...)
	}
	return out
}

// exactBipsAvoid evolves the exact distribution μ_t over infected sets
// (always containing the source v) and derives, for every C, the avoidance
// probability P(C ∩ A_t = ∅) = Σ_{A ⊆ V∖C} μ_t(A) via a subset-sum (zeta)
// transform.
func exactBipsAvoid(g *graph.Graph, nbr []uint32, v int32, tMax int, branch Branching) [][]float64 {
	n := g.N()
	size := 1 << uint(n)
	vbit := uint32(1) << uint(v)
	full := uint32(size - 1)

	mu := make([]float64, size)
	mu[vbit] = 1

	out := make([][]float64, tMax+1)
	out[0] = avoidFromMu(mu, full)

	next := make([]float64, size)
	tensor := make([]float64, size)
	pU := make([]float64, n)

	for t := 1; t <= tMax; t++ {
		for b := range next {
			next[b] = 0
		}
		for a := 0; a < size; a++ {
			w := mu[a]
			if w == 0 {
				continue
			}
			// Per-vertex infection probabilities given A_t = a; the source
			// is infected with probability 1.
			for u := 0; u < n; u++ {
				if int32(u) == v {
					pU[u] = 1
					continue
				}
				d := bits.OnesCount32(uint32(a) & nbr[u])
				pU[u] = infectProb(d, g.Degree(int32(u)), branch)
			}
			// Product distribution over next sets B: independent membership
			// per vertex, expanded by doubling.
			tensor[0] = 1
			width := 1
			for u := 0; u < n; u++ {
				p := pU[u]
				q := 1 - p
				for b := width - 1; b >= 0; b-- {
					tensor[width+b] = tensor[b] * p
					tensor[b] *= q
				}
				width <<= 1
			}
			for b := 0; b < size; b++ {
				if tensor[b] != 0 {
					next[b] += w * tensor[b]
				}
			}
		}
		copy(mu, next)
		out[t] = avoidFromMu(mu, full)
	}
	return out
}

// avoidFromMu returns avoid[C] = Σ_{A ⊆ full∖C} μ(A) for every C, by a
// subset-sum zeta transform followed by complement indexing.
func avoidFromMu(mu []float64, full uint32) []float64 {
	size := len(mu)
	zeta := append([]float64(nil), mu...)
	n := bits.Len32(full)
	for i := 0; i < n; i++ {
		bit := 1 << uint(i)
		for s := 0; s < size; s++ {
			if s&bit != 0 {
				zeta[s] += zeta[s&^bit]
			}
		}
	}
	avoid := make([]float64, size)
	for c := 0; c < size; c++ {
		avoid[c] = zeta[int(full&^uint32(c))]
	}
	return avoid
}
