package core

import (
	"fmt"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// Cobra is a reusable COBRA (coalescing-branching random walk) process on
// a fixed graph. At every round each vertex of the active set C_t pushes
// to K random neighbours (plus one with probability Rho), chosen uniformly
// with replacement; C_{t+1} is the set of push targets (duplicates
// coalesce). The walk covers the graph when every vertex has been active
// at least once.
//
// A Cobra is not safe for concurrent use; run one per goroutine.
type Cobra struct {
	g   *graph.Graph
	cfg config

	cur, next []int32
	// Epoch-stamped membership sets: a vertex is visited iff
	// visitedStamp[v] == epoch (epoch bumps per Reset), and in the next
	// frontier iff nextStamp[v] == stepEpoch (stepEpoch bumps per Step).
	// Bumping an epoch resets the corresponding set in O(1).
	visitedStamp []uint32
	nextStamp    []uint32
	epoch        uint32
	stepEpoch    uint32

	round        int
	visitedCount int
	transmitted  int64
	firstVisit   []int32 // round of first visit, -1 if unvisited (when trackHits)
	activations  []int64 // rounds active per vertex (when trackLoad)
	deliveries   []int64 // messages received per vertex incl. duplicates (when trackLoad)
	trace        []RoundStat
	started      bool
}

// CobraResult reports one COBRA run.
type CobraResult struct {
	// CoverTime is the first round T at which every vertex had been active
	// at least once (counting round 0), or -1 if the run hit MaxRounds
	// first.
	CoverTime int
	// Covered reports whether the whole graph was visited.
	Covered bool
	// Rounds is the number of rounds executed.
	Rounds int
	// Transmissions counts every pushed message.
	Transmissions int64
	// FirstVisit[v] is the round v first became active (-1 = never), only
	// populated under WithHitTimes.
	FirstVisit []int32
	// Activations[v] counts the rounds v was active (so v sent ≈
	// k·Activations[v] messages); only populated under WithLoadCounts.
	Activations []int64
	// Deliveries[v] counts messages delivered to v, including coalesced
	// duplicates; only populated under WithLoadCounts.
	Deliveries []int64
	// Trace holds per-round statistics under WithTrace.
	Trace []RoundStat
}

// NewCobra validates the graph and options and returns a reusable process.
func NewCobra(g *graph.Graph, opts ...Option) (*Cobra, error) {
	cfg, err := buildConfig(g, opts)
	if err != nil {
		return nil, err
	}
	c := &Cobra{
		g:            g,
		cfg:          cfg,
		visitedStamp: make([]uint32, g.N()),
		nextStamp:    make([]uint32, g.N()),
	}
	if cfg.trackHits {
		c.firstVisit = make([]int32, g.N())
	}
	if cfg.trackLoad {
		c.activations = make([]int64, g.N())
		c.deliveries = make([]int64, g.N())
	}
	return c, nil
}

// Reset prepares the process with the starting set C_0 = starts. Starts
// count as visited at round 0.
func (c *Cobra) Reset(starts ...int32) error {
	if len(starts) == 0 {
		return fmt.Errorf("core: COBRA needs a non-empty start set")
	}
	c.epoch++
	if c.epoch == 0 { // stamp wrap-around: flush stale stamps
		clear32(c.visitedStamp)
		c.epoch = 1
	}
	c.cur = c.cur[:0]
	c.round = 0
	c.visitedCount = 0
	c.transmitted = 0
	c.trace = c.trace[:0]
	if c.cfg.trackHits {
		for i := range c.firstVisit {
			c.firstVisit[i] = -1
		}
	}
	if c.cfg.trackLoad {
		for i := range c.activations {
			c.activations[i] = 0
			c.deliveries[i] = 0
		}
	}
	for _, s := range starts {
		if s < 0 || int(s) >= c.g.N() {
			return fmt.Errorf("core: start vertex %d out of range [0,%d)", s, c.g.N())
		}
		if c.visitedStamp[s] == c.epoch {
			continue // duplicate start
		}
		c.visitedStamp[s] = c.epoch
		c.visitedCount++
		c.cur = append(c.cur, s)
		if c.cfg.trackHits {
			c.firstVisit[s] = 0
		}
	}
	c.started = true
	return nil
}

// Step advances the process by one round: every active vertex pushes, and
// the push targets form the next active set.
func (c *Cobra) Step(r *rng.Rand) {
	g := c.g
	k := c.cfg.branching.K
	rho := c.cfg.branching.Rho
	c.next = c.next[:0]
	c.stepEpoch++
	if c.stepEpoch == 0 {
		clear32(c.nextStamp)
		c.stepEpoch = 1
	}
	var sent int64
	trackLoad := c.cfg.trackLoad
	for _, v := range c.cur {
		deg := g.Degree(v)
		pushes := k
		if rho > 0 && r.Bernoulli(rho) {
			pushes++
		}
		if trackLoad {
			c.activations[v]++
		}
		for i := 0; i < pushes; i++ {
			u := g.Neighbor(v, r.Intn(deg))
			sent++
			if trackLoad {
				c.deliveries[u]++
			}
			if c.nextStamp[u] == c.stepEpoch {
				continue // coalesce: u already chosen this round
			}
			c.nextStamp[u] = c.stepEpoch
			c.next = append(c.next, u)
			if c.visitedStamp[u] != c.epoch {
				c.visitedStamp[u] = c.epoch
				c.visitedCount++
				if c.cfg.trackHits {
					c.firstVisit[u] = int32(c.round + 1)
				}
			}
		}
	}
	c.cur, c.next = c.next, c.cur
	c.round++
	c.transmitted += sent
	if c.cfg.recordTrace {
		c.trace = append(c.trace, RoundStat{
			Round:         c.round,
			Active:        len(c.cur),
			Visited:       c.visitedCount,
			Transmissions: sent,
		})
	}
}

// Round returns the current round index (0 just after Reset).
func (c *Cobra) Round() int { return c.round }

// ActiveCount returns |C_t|.
func (c *Cobra) ActiveCount() int { return len(c.cur) }

// Active appends the current active set to dst and returns it.
func (c *Cobra) Active(dst []int32) []int32 { return append(dst, c.cur...) }

// VisitedCount returns the number of distinct vertices visited so far.
func (c *Cobra) VisitedCount() int { return c.visitedCount }

// Transmissions returns the number of messages pushed since Reset.
func (c *Cobra) Transmissions() int64 { return c.transmitted }

// Covered reports whether every vertex has been visited.
func (c *Cobra) Covered() bool { return c.visitedCount == c.g.N() }

// Visited reports whether v has been active in any round so far.
func (c *Cobra) Visited(v int32) bool { return c.visitedStamp[v] == c.epoch }

// Run executes a full cover-time run from the single start vertex. It
// resets the process, steps until the graph is covered or the round cap is
// reached, and reports the result.
func (c *Cobra) Run(start int32, r *rng.Rand) (CobraResult, error) {
	if err := c.Reset(start); err != nil {
		return CobraResult{}, err
	}
	for !c.Covered() && c.round < c.cfg.maxRounds {
		c.Step(r)
	}
	return c.result(), nil
}

// RunFrom executes a full cover-time run from an arbitrary start set.
func (c *Cobra) RunFrom(starts []int32, r *rng.Rand) (CobraResult, error) {
	if err := c.Reset(starts...); err != nil {
		return CobraResult{}, err
	}
	for !c.Covered() && c.round < c.cfg.maxRounds {
		c.Step(r)
	}
	return c.result(), nil
}

// RunUntilHit runs until target is visited (or the cap is reached) and
// returns the hitting time Hit_start(target), or -1 on cap.
func (c *Cobra) RunUntilHit(start, target int32, r *rng.Rand) (int, error) {
	if err := c.Reset(start); err != nil {
		return 0, err
	}
	if target < 0 || int(target) >= c.g.N() {
		return 0, fmt.Errorf("core: target vertex %d out of range [0,%d)", target, c.g.N())
	}
	for !c.Visited(target) {
		if c.round >= c.cfg.maxRounds {
			return -1, nil
		}
		c.Step(r)
	}
	return c.round, nil
}

func (c *Cobra) result() CobraResult {
	res := CobraResult{
		Covered:       c.Covered(),
		CoverTime:     -1,
		Rounds:        c.round,
		Transmissions: c.transmitted,
	}
	if res.Covered {
		res.CoverTime = c.round
	}
	if c.cfg.trackHits {
		res.FirstVisit = append([]int32(nil), c.firstVisit...)
		if res.Covered {
			// Cover time is the max first-visit round, which may precede
			// the round at which the loop observed completion.
			maxHit := int32(0)
			for _, h := range c.firstVisit {
				if h > maxHit {
					maxHit = h
				}
			}
			res.CoverTime = int(maxHit)
		}
	}
	if c.cfg.trackLoad {
		res.Activations = append([]int64(nil), c.activations...)
		res.Deliveries = append([]int64(nil), c.deliveries...)
	}
	if c.cfg.recordTrace {
		res.Trace = append([]RoundStat(nil), c.trace...)
	}
	return res
}

func clear32(s []uint32) {
	for i := range s {
		s[i] = 0
	}
}
