package core

import (
	"math"
	"testing"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
	"cobrawalk/internal/spectral"
	"cobrawalk/internal/stats"
)

func TestLemma1BoundFormula(t *testing.T) {
	// k >= 2: |A|(1 + (1-λ²)(1-|A|/n)).
	got := Lemma1Bound(10, 100, 0.5, Branching{K: 2})
	want := 10 * (1 + 0.75*0.9)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Lemma1Bound = %v, want %v", got, want)
	}
	// Corollary 1: factor ρ.
	got = Lemma1Bound(10, 100, 0.5, Branching{K: 1, Rho: 0.4})
	want = 10 * (1 + 0.4*0.75*0.9)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Corollary1 bound = %v, want %v", got, want)
	}
	// Plain walk (k=1, ρ=0): no growth guarantee.
	if got := Lemma1Bound(10, 100, 0.5, Branching{K: 1}); got != 10 {
		t.Fatalf("k=1 bound = %v, want 10", got)
	}
	// Full set: factor collapses to |A|.
	if got := Lemma1Bound(100, 100, 0.5, Branching{K: 2}); got != 100 {
		t.Fatalf("full-set bound = %v, want 100", got)
	}
}

func TestExactExpectedGrowthK2Formula(t *testing.T) {
	// Hand-check on K4 with A = {0}: Γ(A)\{0} = {1,2,3}, each with
	// d_A = 1, deg = 3: E = 1 + 3·(1-(2/3)²) = 1 + 3·5/9 = 8/3.
	g := mustGraph(t)(graph.Complete(4))
	got, err := ExactExpectedGrowth(g, 0, []int32{0}, DefaultBranching)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 3*(1-4.0/9)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("E growth = %v, want %v", got, want)
	}
}

func TestExactExpectedGrowthValidation(t *testing.T) {
	g := mustGraph(t)(graph.Complete(4))
	if _, err := ExactExpectedGrowth(g, 0, []int32{1}, DefaultBranching); err == nil {
		t.Fatal("source not in A should fail")
	}
	if _, err := ExactExpectedGrowth(g, 0, []int32{0, 0}, DefaultBranching); err == nil {
		t.Fatal("duplicates should fail")
	}
	if _, err := ExactExpectedGrowth(g, 0, []int32{0, 9}, DefaultBranching); err == nil {
		t.Fatal("out-of-range vertex should fail")
	}
	if _, err := ExactExpectedGrowth(g, 9, []int32{9}, DefaultBranching); err == nil {
		t.Fatal("out-of-range source should fail")
	}
	if _, err := ExactExpectedGrowth(g, 0, []int32{0}, Branching{K: 0}); err == nil {
		t.Fatal("bad branching should fail")
	}
}

// TestLemma1HoldsExactly verifies the paper's Lemma 1 deterministically:
// the exact one-step expectation must dominate the spectral lower bound for
// random infected sets of every size, on several regular graphs.
func TestLemma1HoldsExactly(t *testing.T) {
	r := rng.New(5)
	graphs := []*graph.Graph{
		mustGraph(t)(graph.Complete(24)),
		mustGraph(t)(graph.Petersen()),
		mustGraph(t)(graph.Cycle(30)),
		mustGraph(t)(graph.Hypercube(5)),
		mustGraph(t)(graph.Paley(29)),
	}
	rr := rng.New(17)
	for _, g := range graphs {
		lambda, err := spectral.LambdaMax(g, spectral.Options{})
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		n := g.N()
		for _, size := range []int{1, 2, n / 4, n / 2, (3 * n) / 4, n} {
			if size < 1 {
				continue
			}
			for rep := 0; rep < 3; rep++ {
				set, err := RandomInfectedSet(g, 0, size, rr)
				if err != nil {
					t.Fatal(err)
				}
				exact, err := ExactExpectedGrowth(g, 0, set, DefaultBranching)
				if err != nil {
					t.Fatal(err)
				}
				bound := Lemma1Bound(size, n, lambda, DefaultBranching)
				if exact < bound-1e-9 {
					t.Errorf("%s |A|=%d: exact E = %.6f < bound %.6f (λ=%.4f)",
						g.Name(), size, exact, bound, lambda)
				}
			}
		}
		_ = r
	}
}

// TestCorollary1HoldsExactly repeats the Lemma 1 check in the fractional
// branching regime of Corollary 1.
func TestCorollary1HoldsExactly(t *testing.T) {
	g := mustGraph(t)(graph.Paley(29))
	lambda, err := spectral.LambdaMax(g, spectral.Options{})
	if err != nil {
		t.Fatal(err)
	}
	br := Branching{K: 1, Rho: 0.5}
	rr := rng.New(23)
	for _, size := range []int{1, 5, 14, 25} {
		set, err := RandomInfectedSet(g, 0, size, rr)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ExactExpectedGrowth(g, 0, set, br)
		if err != nil {
			t.Fatal(err)
		}
		bound := Lemma1Bound(size, g.N(), lambda, br)
		if exact < bound-1e-9 {
			t.Errorf("|A|=%d: exact E = %.6f < Corollary 1 bound %.6f", size, exact, bound)
		}
	}
}

// TestSampleGrowthMatchesExact cross-validates the Monte-Carlo one-step
// sampler against the closed-form expectation.
func TestSampleGrowthMatchesExact(t *testing.T) {
	g := mustGraph(t)(graph.Petersen())
	rr := rng.New(3)
	set, err := RandomInfectedSet(g, 0, 4, rr)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactExpectedGrowth(g, 0, set, DefaultBranching)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := SampleGrowth(g, 0, set, DefaultBranching, 5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	s, err := stats.Summarize(samples)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(s.Mean - exact); d > 5*s.SE()+1e-9 {
		t.Fatalf("sampled mean %.4f vs exact %.4f (%.1f SE)", s.Mean, exact, d/s.SE())
	}
}

func TestSampleGrowthValidation(t *testing.T) {
	g := mustGraph(t)(graph.Complete(4))
	if _, err := SampleGrowth(g, 0, []int32{0}, DefaultBranching, 0, 1); err == nil {
		t.Fatal("zero trials should fail")
	}
	if _, err := SampleGrowth(g, 0, []int32{0, 9}, DefaultBranching, 5, 1); err == nil {
		t.Fatal("bad vertex should fail")
	}
}

func TestRandomInfectedSet(t *testing.T) {
	g := mustGraph(t)(graph.Complete(10))
	r := rng.New(2)
	set, err := RandomInfectedSet(g, 3, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 5 || set[0] != 3 {
		t.Fatalf("set = %v", set)
	}
	seen := map[int32]bool{}
	for _, v := range set {
		if seen[v] {
			t.Fatalf("duplicate in set: %v", set)
		}
		seen[v] = true
	}
	if _, err := RandomInfectedSet(g, 0, 0, r); err == nil {
		t.Fatal("size 0 should fail")
	}
	if _, err := RandomInfectedSet(g, 0, 11, r); err == nil {
		t.Fatal("size > n should fail")
	}
	full, err := RandomInfectedSet(g, 0, 10, r)
	if err != nil || len(full) != 10 {
		t.Fatalf("full set: %v %v", full, err)
	}
}

// TestGrowthDrivesCoverOnExpander ties Lemma 1 to Theorem 2 empirically:
// on an expander the measured per-round growth factor of small infected
// sets should comfortably exceed 1.
func TestGrowthDrivesCoverOnExpander(t *testing.T) {
	r := rng.New(9)
	g, err := graph.RandomRegularConnected(256, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	lambda, err := spectral.LambdaMax(g, spectral.Options{})
	if err != nil {
		t.Fatal(err)
	}
	set, err := RandomInfectedSet(g, 0, 16, r)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactExpectedGrowth(g, 0, set, DefaultBranching)
	if err != nil {
		t.Fatal(err)
	}
	bound := Lemma1Bound(16, 256, lambda, DefaultBranching)
	if exact < bound-1e-9 {
		t.Fatalf("growth %v below Lemma 1 bound %v", exact, bound)
	}
	if factor := exact / 16; factor < 1.2 {
		t.Fatalf("expander growth factor %.3f too small", factor)
	}
}
