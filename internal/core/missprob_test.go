package core

import (
	"math"
	"testing"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

func TestMissProbMatchesPow(t *testing.T) {
	for k := 1; k <= 7; k++ {
		for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.9, 1} {
			got := missProb(p, k)
			want := math.Pow(1-p, float64(k))
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("missProb(%v, %d) = %v, want %v", p, k, got, want)
			}
		}
	}
}

func TestInfectProbBounds(t *testing.T) {
	// infectProb is a probability and is monotone in d.
	for _, br := range []Branching{{K: 1}, {K: 2}, {K: 3, Rho: 0.5}} {
		prev := -1.0
		for d := 0; d <= 8; d++ {
			p := infectProb(d, 8, br)
			if p < 0 || p > 1 {
				t.Fatalf("infectProb(%d, 8, %v) = %v out of [0,1]", d, br, p)
			}
			if p < prev {
				t.Fatalf("infectProb not monotone at d=%d (%v): %v < %v", d, br, p, prev)
			}
			prev = p
		}
		if infectProb(0, 8, br) != 0 {
			t.Fatalf("no infected neighbours must mean probability 0")
		}
		if p := infectProb(8, 8, br); math.Abs(p-1) > 1e-12 {
			t.Fatalf("all infected neighbours must mean probability 1, got %v", p)
		}
	}
}

func TestPushInsideProbBounds(t *testing.T) {
	for _, br := range []Branching{{K: 1}, {K: 2}, {K: 2, Rho: 0.3}} {
		if p := pushInsideProb(8, 8, br); math.Abs(p-1) > 1e-12 {
			t.Fatalf("full set containment must be certain, got %v", p)
		}
		if p := pushInsideProb(0, 8, br); p != 0 {
			t.Fatalf("empty set containment must be impossible, got %v", p)
		}
		prev := -1.0
		for d := 0; d <= 8; d++ {
			p := pushInsideProb(d, 8, br)
			if p < prev {
				t.Fatalf("pushInsideProb not monotone at d=%d", d)
			}
			prev = p
		}
	}
}

func TestProcessesOnIrregularGraphs(t *testing.T) {
	// COBRA and BIPS are defined on any graph without isolated vertices;
	// run both on a star and a ring of cliques.
	graphs := []*graph.Graph{
		mustGraph(t)(graph.Star(20)),
		mustGraph(t)(graph.RingOfCliques(4, 6)),
		mustGraph(t)(graph.Barbell(6, 2)),
	}
	r := rng.New(7)
	for _, g := range graphs {
		c, err := NewCobra(g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		res, err := c.Run(0, r)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if !res.Covered {
			t.Fatalf("%s: COBRA did not cover", g.Name())
		}
		b, err := NewBIPS(g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		bres, err := b.Run(0, r)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if !bres.Infected {
			t.Fatalf("%s: BIPS did not infect", g.Name())
		}
	}
}

func TestHighBranchingFactors(t *testing.T) {
	// K = 4 exercises the unrolled missProb case, K = 5 the math.Pow
	// fallback; both must cover quickly on K32.
	g := mustGraph(t)(graph.Complete(32))
	r := rng.New(8)
	for _, k := range []int{4, 5} {
		for _, fast := range []bool{false, true} {
			opts := []Option{WithK(k)}
			if fast {
				opts = append(opts, WithFastSampling())
			}
			b, err := NewBIPS(g, opts...)
			if err != nil {
				t.Fatal(err)
			}
			res, err := b.Run(0, r)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Infected {
				t.Fatalf("K=%d fast=%v did not infect", k, fast)
			}
		}
	}
}
