package core

import (
	"math"
	"testing"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

func mustGraph(t *testing.T) func(*graph.Graph, error) *graph.Graph {
	return func(g *graph.Graph, err error) *graph.Graph {
		t.Helper()
		if err != nil {
			t.Fatalf("graph construction: %v", err)
		}
		return g
	}
}

func TestNewCobraValidation(t *testing.T) {
	g := mustGraph(t)(graph.Complete(5))
	if _, err := NewCobra(nil); err == nil {
		t.Fatal("nil graph should fail")
	}
	if _, err := NewCobra(g, WithK(0)); err == nil {
		t.Fatal("K = 0 should fail")
	}
	if _, err := NewCobra(g, WithBranching(Branching{K: 1, Rho: -0.1})); err == nil {
		t.Fatal("negative Rho should fail")
	}
	if _, err := NewCobra(g, WithBranching(Branching{K: 1, Rho: 1})); err == nil {
		t.Fatal("Rho = 1 should fail")
	}
	if _, err := NewCobra(g, WithMaxRounds(0)); err == nil {
		t.Fatal("MaxRounds = 0 should fail")
	}
	iso := mustGraph(t)(graph.FromEdges("iso", 3, [][2]int32{{0, 1}}))
	if _, err := NewCobra(iso); err == nil {
		t.Fatal("isolated vertex should fail")
	}
}

func TestCobraResetValidation(t *testing.T) {
	g := mustGraph(t)(graph.Complete(5))
	c, err := NewCobra(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Reset(); err == nil {
		t.Fatal("empty start set should fail")
	}
	if err := c.Reset(-1); err == nil {
		t.Fatal("negative start should fail")
	}
	if err := c.Reset(5); err == nil {
		t.Fatal("out-of-range start should fail")
	}
	if _, err := c.Run(17, rng.New(1)); err == nil {
		t.Fatal("Run with bad start should fail")
	}
}

func TestCobraCoversCompleteGraph(t *testing.T) {
	g := mustGraph(t)(graph.Complete(64))
	c, err := NewCobra(g)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	res, err := c.Run(0, r)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatal("COBRA failed to cover K64")
	}
	// Active set at most doubles per round, so cover time >= log2(n).
	if res.CoverTime < 6 {
		t.Fatalf("cover time %d below information-theoretic bound log2(64)=6", res.CoverTime)
	}
	// K64 should be covered in a few dozen rounds at most.
	if res.CoverTime > 60 {
		t.Fatalf("cover time %d suspiciously large for K64", res.CoverTime)
	}
	if res.Transmissions <= 0 {
		t.Fatal("no transmissions recorded")
	}
}

func TestCobraActiveSetAtMostDoubles(t *testing.T) {
	// With k = 2, |C_{t+1}| <= 2|C_t|; the visited count can grow by at
	// most |C_{t+1}| per round.
	g := mustGraph(t)(graph.Petersen())
	c, err := NewCobra(g)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	for trial := 0; trial < 50; trial++ {
		if err := c.Reset(0); err != nil {
			t.Fatal(err)
		}
		prev := c.ActiveCount()
		for i := 0; i < 20; i++ {
			c.Step(r)
			cur := c.ActiveCount()
			if cur > 2*prev {
				t.Fatalf("active set grew from %d to %d (> 2x)", prev, cur)
			}
			if cur == 0 {
				t.Fatal("active set became empty")
			}
			prev = cur
		}
	}
}

func TestCobraK1IsSingleWalker(t *testing.T) {
	// With k = 1 and Rho = 0 COBRA degenerates to a simple random walk:
	// exactly one active vertex at all times.
	g := mustGraph(t)(graph.Cycle(12))
	c, err := NewCobra(g, WithK(1))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	if err := c.Reset(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		c.Step(r)
		if c.ActiveCount() != 1 {
			t.Fatalf("k=1 active count = %d at step %d, want 1", c.ActiveCount(), i)
		}
	}
	// Each step moves to an adjacent vertex.
	var prev int32
	if err := c.Reset(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Step(r)
		cur := c.Active(nil)[0]
		if !g.HasEdge(prev, cur) {
			t.Fatalf("walk jumped from %d to %d (not adjacent)", prev, cur)
		}
		prev = cur
	}
}

func TestCobraCoalescing(t *testing.T) {
	// On the star's centre... use K2 (two vertices, one edge): from {0},
	// both pushes go to 1; coalescing must keep |C| = 1.
	g := mustGraph(t)(graph.Complete(2))
	c, err := NewCobra(g)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	if err := c.Reset(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Step(r)
		if c.ActiveCount() != 1 {
			t.Fatalf("K2 active count = %d, want 1 (coalescing broken)", c.ActiveCount())
		}
	}
	if !c.Covered() {
		t.Fatal("K2 not covered after 10 rounds")
	}
}

func TestCobraHitTimes(t *testing.T) {
	g := mustGraph(t)(graph.Complete(16))
	c, err := NewCobra(g, WithHitTimes())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	res, err := c.Run(3, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstVisit == nil {
		t.Fatal("FirstVisit not recorded")
	}
	if res.FirstVisit[3] != 0 {
		t.Fatalf("start vertex first visit = %d, want 0", res.FirstVisit[3])
	}
	maxHit := int32(0)
	for v, h := range res.FirstVisit {
		if h < 0 {
			t.Fatalf("vertex %d never visited in a covered run", v)
		}
		if h > maxHit {
			maxHit = h
		}
	}
	if int(maxHit) != res.CoverTime {
		t.Fatalf("cover time %d != max first visit %d", res.CoverTime, maxHit)
	}
}

func TestCobraTrace(t *testing.T) {
	g := mustGraph(t)(graph.Complete(32))
	c, err := NewCobra(g, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(0, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != res.Rounds {
		t.Fatalf("trace length %d != rounds %d", len(res.Trace), res.Rounds)
	}
	prevVisited := 1
	var total int64
	for i, st := range res.Trace {
		if st.Round != i+1 {
			t.Fatalf("trace round %d at index %d", st.Round, i)
		}
		if st.Visited < prevVisited {
			t.Fatalf("visited count decreased: %d -> %d", prevVisited, st.Visited)
		}
		prevVisited = st.Visited
		total += st.Transmissions
	}
	if total != res.Transmissions {
		t.Fatalf("trace transmissions %d != result %d", total, res.Transmissions)
	}
}

func TestCobraMaxRoundsCap(t *testing.T) {
	// A cycle with one round cannot be covered.
	g := mustGraph(t)(graph.Cycle(100))
	c, err := NewCobra(g, WithMaxRounds(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(0, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered || res.CoverTime != -1 {
		t.Fatalf("capped run reported covered: %+v", res)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
}

func TestCobraRunFrom(t *testing.T) {
	g := mustGraph(t)(graph.Complete(8))
	c, err := NewCobra(g)
	if err != nil {
		t.Fatal(err)
	}
	// Starting from all vertices covers at round 0.
	all := make([]int32, 8)
	for i := range all {
		all[i] = int32(i)
	}
	res, err := c.RunFrom(all, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered || res.CoverTime != 0 || res.Rounds != 0 {
		t.Fatalf("full start set: %+v", res)
	}
	// Duplicates in the start set collapse.
	if err := c.Reset(2, 2, 2); err != nil {
		t.Fatal(err)
	}
	if c.ActiveCount() != 1 || c.VisitedCount() != 1 {
		t.Fatalf("duplicate starts not collapsed: active=%d visited=%d", c.ActiveCount(), c.VisitedCount())
	}
	if _, err := c.RunFrom(nil, rng.New(1)); err == nil {
		t.Fatal("empty start set should fail")
	}
}

func TestCobraRunUntilHit(t *testing.T) {
	g := mustGraph(t)(graph.Complete(10))
	c, err := NewCobra(g)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	// Hitting the start vertex is immediate.
	hit, err := c.RunUntilHit(4, 4, r)
	if err != nil || hit != 0 {
		t.Fatalf("self hit = (%d, %v), want (0, nil)", hit, err)
	}
	hit, err = c.RunUntilHit(0, 9, r)
	if err != nil {
		t.Fatal(err)
	}
	if hit < 1 || hit > 100 {
		t.Fatalf("hit time %d out of plausible range", hit)
	}
	if _, err := c.RunUntilHit(0, 99, r); err == nil {
		t.Fatal("bad target should fail")
	}
	// Cap: target unreachable within 0 effective rounds.
	cc, err := NewCobra(g, WithMaxRounds(1))
	if err != nil {
		t.Fatal(err)
	}
	anyCapped := false
	for i := 0; i < 50; i++ {
		h, err := cc.RunUntilHit(0, 9, r)
		if err != nil {
			t.Fatal(err)
		}
		if h == -1 {
			anyCapped = true
		}
	}
	if !anyCapped {
		t.Fatal("expected some capped hit searches on K10 with 1 round")
	}
}

func TestCobraDeterminismGivenSeed(t *testing.T) {
	g := mustGraph(t)(graph.Petersen())
	run := func() CobraResult {
		c, err := NewCobra(g, WithTrace())
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(0, rng.New(123))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.CoverTime != b.CoverTime || a.Transmissions != b.Transmissions {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestCobraProcessReuseIndependence(t *testing.T) {
	// Reusing one process across many runs must not leak state: cover
	// times from a reused process should match a fresh process given the
	// same RNG stream.
	g := mustGraph(t)(graph.Complete(16))
	reused, err := NewCobra(g)
	if err != nil {
		t.Fatal(err)
	}
	r1 := rng.New(55)
	var reuse []int
	for i := 0; i < 20; i++ {
		res, err := reused.Run(0, r1)
		if err != nil {
			t.Fatal(err)
		}
		reuse = append(reuse, res.CoverTime)
	}
	r2 := rng.New(55)
	for i := 0; i < 20; i++ {
		fresh, err := NewCobra(g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fresh.Run(0, r2)
		if err != nil {
			t.Fatal(err)
		}
		if res.CoverTime != reuse[i] {
			t.Fatalf("trial %d: reused %d vs fresh %d", i, reuse[i], res.CoverTime)
		}
	}
}

func TestCobraFractionalBranchingCovers(t *testing.T) {
	g := mustGraph(t)(graph.Complete(64))
	c, err := NewCobra(g, WithBranching(Branching{K: 1, Rho: 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(0, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatal("1+ρ branching failed to cover K64")
	}
	// Expected branching factor 1.5: still must at least double... no —
	// growth is slower; just check it finished reasonably.
	if res.CoverTime < 6 {
		t.Fatalf("cover time %d impossibly small", res.CoverTime)
	}
}

func TestCobraCoverTimeLogarithmicOnComplete(t *testing.T) {
	// Dutta et al.: COBRA covers K_n in O(log n). Check the mean cover
	// time at two sizes scales roughly logarithmically rather than
	// linearly: mean(K256)/mean(K32) should be far below 256/32 = 8.
	r := rng.New(11)
	meanCover := func(n int) float64 {
		g := mustGraph(t)(graph.Complete(n))
		c, err := NewCobra(g)
		if err != nil {
			t.Fatal(err)
		}
		const trials = 30
		sum := 0.0
		for i := 0; i < trials; i++ {
			res, err := c.Run(0, r)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Covered {
				t.Fatal("uncovered run")
			}
			sum += float64(res.CoverTime)
		}
		return sum / trials
	}
	m32, m256 := meanCover(32), meanCover(256)
	ratio := m256 / m32
	if ratio > 3 {
		t.Fatalf("cover-time ratio K256/K32 = %.2f (means %.1f, %.1f); not logarithmic", ratio, m256, m32)
	}
	// And the absolute scale should be near log2(n): allow generous slack.
	if m256 > 8*math.Log2(256) {
		t.Fatalf("K256 mean cover %.1f far above O(log n) scale", m256)
	}
}
