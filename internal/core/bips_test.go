package core

import (
	"math"
	"testing"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

func TestNewBIPSValidation(t *testing.T) {
	if _, err := NewBIPS(nil); err == nil {
		t.Fatal("nil graph should fail")
	}
	g := mustGraph(t)(graph.Complete(4))
	if _, err := NewBIPS(g, WithK(0)); err == nil {
		t.Fatal("K = 0 should fail")
	}
	b, err := NewBIPS(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Reset(-1); err == nil {
		t.Fatal("negative source should fail")
	}
	if err := b.Reset(4); err == nil {
		t.Fatal("out-of-range source should fail")
	}
	if err := b.Reset(0, 9); err == nil {
		t.Fatal("out-of-range extra should fail")
	}
}

func TestBipsSourceAlwaysInfected(t *testing.T) {
	g := mustGraph(t)(graph.Cycle(20))
	b, err := NewBIPS(g)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	if err := b.Reset(7); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		b.Step(r)
		if !b.Infected(7) {
			t.Fatalf("source left the infected set at step %d", i)
		}
		if b.InfectedCount() < 1 {
			t.Fatal("infected set empty")
		}
	}
}

func TestBipsInfectsCompleteGraph(t *testing.T) {
	g := mustGraph(t)(graph.Complete(64))
	b, err := NewBIPS(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run(0, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Infected {
		t.Fatal("BIPS failed to infect K64")
	}
	if res.InfectionTime < 6 || res.InfectionTime > 80 {
		t.Fatalf("infection time %d implausible for K64", res.InfectionTime)
	}
	if len(res.Sizes) != res.Rounds+1 {
		t.Fatalf("sizes length %d, want rounds+1 = %d", len(res.Sizes), res.Rounds+1)
	}
	if res.Sizes[0] != 1 {
		t.Fatalf("|A_0| = %d, want 1", res.Sizes[0])
	}
	if res.Sizes[len(res.Sizes)-1] != 64 {
		t.Fatalf("final size %d, want 64", res.Sizes[len(res.Sizes)-1])
	}
}

func TestBipsCanShrink(t *testing.T) {
	// BIPS is SIS-like: non-source vertices refresh membership each round,
	// so |A_t| is not monotone. On a cycle with k = 1 shrinkage is common;
	// verify we observe at least one decrease across runs (if the process
	// were monotone this would never fire).
	g := mustGraph(t)(graph.Cycle(32))
	b, err := NewBIPS(g, WithK(1))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	sawShrink := false
	for trial := 0; trial < 20 && !sawShrink; trial++ {
		if err := b.Reset(0); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			before := b.InfectedCount()
			b.Step(r)
			if b.InfectedCount() < before {
				sawShrink = true
				break
			}
		}
	}
	if !sawShrink {
		t.Fatal("never observed the infected set shrinking; SIS dynamics look wrong")
	}
}

func TestBipsExtraSeeds(t *testing.T) {
	g := mustGraph(t)(graph.Complete(10))
	b, err := NewBIPS(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Reset(0, 3, 5, 3); err != nil {
		t.Fatal(err)
	}
	if b.InfectedCount() != 3 { // 0, 3, 5 with duplicate 3 collapsed
		t.Fatalf("initial infected = %d, want 3", b.InfectedCount())
	}
	set := b.InfectedSet(nil)
	want := map[int32]bool{0: true, 3: true, 5: true}
	for _, v := range set {
		if !want[v] {
			t.Fatalf("unexpected infected vertex %d", v)
		}
	}
}

func TestBipsRunUntilContains(t *testing.T) {
	g := mustGraph(t)(graph.Complete(12))
	b, err := NewBIPS(g)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	hit, err := b.RunUntilContains(3, 3, r)
	if err != nil || hit != 0 {
		t.Fatalf("source self-containment = (%d, %v), want (0, nil)", hit, err)
	}
	hit, err = b.RunUntilContains(0, 7, r)
	if err != nil {
		t.Fatal(err)
	}
	if hit < 1 || hit > 200 {
		t.Fatalf("containment time %d implausible", hit)
	}
	if _, err := b.RunUntilContains(0, 50, r); err == nil {
		t.Fatal("bad target should fail")
	}
}

func TestBipsMaxRoundsCap(t *testing.T) {
	g := mustGraph(t)(graph.Cycle(64))
	b, err := NewBIPS(g, WithMaxRounds(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run(0, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Infected || res.InfectionTime != -1 || res.Rounds != 2 {
		t.Fatalf("capped run: %+v", res)
	}
}

func TestBipsNeighbourhoodConstraint(t *testing.T) {
	// A vertex with no infected neighbour cannot become infected: on a
	// long cycle, the infected set must stay within distance t of the
	// source after t rounds.
	g := mustGraph(t)(graph.Cycle(101))
	b, err := NewBIPS(g)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(6)
	if err := b.Reset(50); err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 20; step++ {
		b.Step(r)
		for _, v := range b.InfectedSet(nil) {
			dist := int(math.Abs(float64(v - 50)))
			if dist > 50 {
				dist = 101 - dist
			}
			if dist > step {
				t.Fatalf("vertex %d infected at round %d but is at distance %d", v, step, dist)
			}
		}
	}
}

func TestBipsFastVsExactDistribution(t *testing.T) {
	// The exact-sampling and closed-form fast paths must produce the same
	// infection-time distribution. Compare means on K32 with a tolerance
	// of 5 combined standard errors.
	g := mustGraph(t)(graph.Complete(32))
	meanInfection := func(opts ...Option) (mean, se float64) {
		b, err := NewBIPS(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(77)
		const trials = 400
		var sum, sumSq float64
		for i := 0; i < trials; i++ {
			res, err := b.Run(0, r)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Infected {
				t.Fatal("uninfected run on K32")
			}
			x := float64(res.InfectionTime)
			sum += x
			sumSq += x * x
		}
		mean = sum / trials
		variance := sumSq/trials - mean*mean
		return mean, math.Sqrt(variance / trials)
	}
	exactMean, exactSE := meanInfection()
	fastMean, fastSE := meanInfection(WithFastSampling())
	diff := math.Abs(exactMean - fastMean)
	tol := 5 * math.Hypot(exactSE, fastSE)
	if diff > tol {
		t.Fatalf("exact mean %.3f vs fast mean %.3f differ by %.3f > %.3f", exactMean, fastMean, diff, tol)
	}
}

func TestBipsFractionalBranching(t *testing.T) {
	g := mustGraph(t)(graph.Complete(32))
	for _, mode := range []string{"exact", "fast"} {
		opts := []Option{WithBranching(Branching{K: 1, Rho: 0.5})}
		if mode == "fast" {
			opts = append(opts, WithFastSampling())
		}
		b, err := NewBIPS(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Run(0, rng.New(8))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Infected {
			t.Fatalf("%s: 1+ρ BIPS failed to infect K32", mode)
		}
	}
}

func TestBipsDeterminismAndReuse(t *testing.T) {
	g := mustGraph(t)(graph.Petersen())
	run := func(b *BIPS, seed uint64) []int {
		res, err := b.Run(0, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		return res.Sizes
	}
	b1, err := NewBIPS(g)
	if err != nil {
		t.Fatal(err)
	}
	a := run(b1, 99)
	bb := run(b1, 99) // reuse same process
	if len(a) != len(bb) {
		t.Fatalf("reused process diverged: %v vs %v", a, bb)
	}
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("reused process diverged at %d: %v vs %v", i, a, bb)
		}
	}
}

func TestBipsSizesSharedSlice(t *testing.T) {
	g := mustGraph(t)(graph.Complete(8))
	b, err := NewBIPS(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Reset(0); err != nil {
		t.Fatal(err)
	}
	r := rng.New(10)
	b.Step(r)
	b.Step(r)
	sizes := b.Sizes()
	if len(sizes) != 3 {
		t.Fatalf("sizes = %v, want length 3", sizes)
	}
	if sizes[0] != 1 {
		t.Fatalf("|A_0| = %d", sizes[0])
	}
}

func TestDetectPhases(t *testing.T) {
	sizes := []int{1, 2, 5, 11, 40, 85, 93, 100}
	p := DetectPhases(sizes, 100, 10)
	if p.ReachSmall != 3 { // first size > 10 is 11 at t=3
		t.Fatalf("ReachSmall = %d, want 3", p.ReachSmall)
	}
	if p.ReachNineTenths != 6 { // ceil(0.9*100)=90; first >= 90 is 93 at t=6
		t.Fatalf("ReachNineTenths = %d, want 6", p.ReachNineTenths)
	}
	if p.Full != 7 {
		t.Fatalf("Full = %d, want 7", p.Full)
	}
	p1, p2, p3 := p.PhaseLengths()
	if p1 != 3 || p2 != 3 || p3 != 1 {
		t.Fatalf("phase lengths = (%d,%d,%d), want (3,3,1)", p1, p2, p3)
	}
	// Unreached thresholds report -1.
	q := DetectPhases([]int{1, 2, 3}, 100, 10)
	if q.ReachSmall != -1 || q.ReachNineTenths != -1 || q.Full != -1 {
		t.Fatalf("unreached phases: %+v", q)
	}
	q1, q2, q3 := q.PhaseLengths()
	if q1 != -1 || q2 != -1 || q3 != -1 {
		t.Fatalf("unreached phase lengths: (%d,%d,%d)", q1, q2, q3)
	}
}

func TestBranchingString(t *testing.T) {
	if s := (Branching{K: 2}).String(); s != "k=2" {
		t.Fatalf("String = %q", s)
	}
	if s := (Branching{K: 1, Rho: 0.25}).String(); s != "k=1+ρ0.25" {
		t.Fatalf("String = %q", s)
	}
	if e := (Branching{K: 1, Rho: 0.5}).Expected(); e != 1.5 {
		t.Fatalf("Expected = %v", e)
	}
}
