package core

// PhaseTimes decomposes a BIPS infection trajectory into the three phases
// of the paper's proof of Theorem 2:
//
//	phase 1 (Lemma 2): grow A_t from 1 to the small-set target m,
//	phase 2 (Lemma 3): grow from m to 9n/10,
//	phase 3 (Lemma 4): finish from 9n/10 to n.
//
// Each field is the first round index at which the corresponding threshold
// is reached, or -1 if the trajectory never reached it.
type PhaseTimes struct {
	// SmallTarget is the threshold m used for phase 1.
	SmallTarget int
	// ReachSmall is the first t with |A_t| > SmallTarget.
	ReachSmall int
	// ReachNineTenths is the first t with |A_t| >= ceil(0.9·n).
	ReachNineTenths int
	// Full is the first t with |A_t| = n.
	Full int
}

// PhaseLengths returns the per-phase round counts (each -1 if the phase
// never completed).
func (p PhaseTimes) PhaseLengths() (p1, p2, p3 int) {
	p1, p2, p3 = -1, -1, -1
	if p.ReachSmall >= 0 {
		p1 = p.ReachSmall
	}
	if p.ReachSmall >= 0 && p.ReachNineTenths >= 0 {
		p2 = p.ReachNineTenths - p.ReachSmall
	}
	if p.ReachNineTenths >= 0 && p.Full >= 0 {
		p3 = p.Full - p.ReachNineTenths
	}
	return p1, p2, p3
}

// DetectPhases scans an |A_t| trajectory (sizes[t] = |A_t|) for the phase
// crossing times relative to graph size n and small-set target m.
func DetectPhases(sizes []int, n, smallTarget int) PhaseTimes {
	p := PhaseTimes{SmallTarget: smallTarget, ReachSmall: -1, ReachNineTenths: -1, Full: -1}
	nineTenths := (9*n + 9) / 10
	for t, s := range sizes {
		if p.ReachSmall < 0 && s > smallTarget {
			p.ReachSmall = t
		}
		if p.ReachNineTenths < 0 && s >= nineTenths {
			p.ReachNineTenths = t
		}
		if p.Full < 0 && s >= n {
			p.Full = t
			break
		}
	}
	return p
}
