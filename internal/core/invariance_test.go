package core

import (
	"math"
	"testing"
	"testing/quick"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// TestExactDualityRelabelInvariance: both sides of Theorem 4 are graph
// invariants, so relabelling the graph must permute the marginal series
// without changing the values.
func TestExactDualityRelabelInvariance(t *testing.T) {
	g := mustGraph(t)(graph.PrismGraph())
	r := rng.New(4)
	permInts := r.Perm(g.N())
	perm := make([]int32, g.N())
	for i, p := range permInts {
		perm[i] = int32(p)
	}
	h, err := graph.Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	const v, u = 0, 3
	const horizon = 6
	edG, err := ComputeExactDuality(g, v, horizon, DefaultBranching)
	if err != nil {
		t.Fatal(err)
	}
	edH, err := ComputeExactDuality(h, perm[v], horizon, DefaultBranching)
	if err != nil {
		t.Fatal(err)
	}
	sg := edG.MarginalSurvival(u)
	sh := edH.MarginalSurvival(perm[u])
	for tt := range sg {
		if math.Abs(sg[tt]-sh[tt]) > 1e-10 {
			t.Fatalf("relabel changed survival at t=%d: %v vs %v", tt, sg[tt], sh[tt])
		}
	}
}

// TestExactDualityRandomGraphsQuick: Theorem 4 must hold on arbitrary
// connected graphs without isolated vertices — fuzz over random graphs and
// branching factors.
func TestExactDualityRandomGraphsQuick(t *testing.T) {
	f := func(seed uint32, kRaw, rhoRaw uint8) bool {
		r := rng.New(uint64(seed))
		// Draw a random graph on 5-8 vertices with no isolated vertex.
		n := 5 + r.Intn(4)
		var g *graph.Graph
		for tries := 0; ; tries++ {
			var err error
			g, err = graph.ErdosRenyi(n, 0.45, r)
			if err != nil {
				return false
			}
			if g.MinDegree() > 0 {
				break
			}
			if tries > 100 {
				return false
			}
		}
		branch := Branching{K: 1 + int(kRaw%3), Rho: float64(rhoRaw%10) / 10}
		ed, err := ComputeExactDuality(g, int32(r.Intn(n)), 5, branch)
		if err != nil {
			return false
		}
		return ed.MaxAbsError() < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCoverTimeRelabelInvariance: the cover-time distribution is invariant
// under relabelling; compare means statistically.
func TestCoverTimeRelabelInvariance(t *testing.T) {
	r := rng.New(5)
	g, err := graph.RandomRegularConnected(128, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	permInts := r.Perm(g.N())
	perm := make([]int32, g.N())
	for i, p := range permInts {
		perm[i] = int32(p)
	}
	h, err := graph.Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	meanCover := func(gr *graph.Graph, start int32, seed uint64) (mean, se float64) {
		c, err := NewCobra(gr)
		if err != nil {
			t.Fatal(err)
		}
		rr := rng.New(seed)
		const trials = 300
		var sum, sumSq float64
		for i := 0; i < trials; i++ {
			res, err := c.Run(start, rr)
			if err != nil || !res.Covered {
				t.Fatalf("run failed: %v", err)
			}
			x := float64(res.CoverTime)
			sum += x
			sumSq += x * x
		}
		mean = sum / trials
		se = math.Sqrt((sumSq/trials - mean*mean) / trials)
		return mean, se
	}
	m1, se1 := meanCover(g, 0, 11)
	m2, se2 := meanCover(h, perm[0], 12)
	if d := math.Abs(m1 - m2); d > 5*math.Hypot(se1, se2) {
		t.Fatalf("relabel shifted mean cover: %.3f vs %.3f", m1, m2)
	}
}

// TestBipsStochasticMonotonicity: adding seeds to A_0 cannot slow the
// epidemic — infection times from a larger seed set are stochastically
// dominated. Compare means.
func TestBipsStochasticMonotonicity(t *testing.T) {
	r := rng.New(6)
	g, err := graph.RandomRegularConnected(256, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	meanInfec := func(extra []int32, seed uint64) (mean, se float64) {
		b, err := NewBIPS(g)
		if err != nil {
			t.Fatal(err)
		}
		rr := rng.New(seed)
		const trials = 200
		var sum, sumSq float64
		for i := 0; i < trials; i++ {
			if err := b.Reset(0, extra...); err != nil {
				t.Fatal(err)
			}
			for !b.FullyInfected() && b.Round() < 1<<16 {
				b.Step(rr)
			}
			if !b.FullyInfected() {
				t.Fatal("uninfected run")
			}
			x := float64(b.Round())
			sum += x
			sumSq += x * x
		}
		mean = sum / trials
		se = math.Sqrt((sumSq/trials - mean*mean) / trials)
		return mean, se
	}
	mSmall, seSmall := meanInfec(nil, 21)
	big := make([]int32, 0, 64)
	for v := int32(1); v <= 64; v++ {
		big = append(big, v)
	}
	mBig, seBig := meanInfec(big, 22)
	if mBig > mSmall+3*math.Hypot(seSmall, seBig) {
		t.Fatalf("65 seeds slower than 1 seed: %.3f vs %.3f", mBig, mSmall)
	}
	if mBig >= mSmall {
		t.Fatalf("no speedup from 65 seeds: %.3f vs %.3f", mBig, mSmall)
	}
}
