package core

import (
	"testing"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

func TestLoadCountsConsistency(t *testing.T) {
	g := mustGraph(t)(graph.Complete(32))
	c, err := NewCobra(g, WithLoadCounts())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Activations == nil || res.Deliveries == nil {
		t.Fatal("load counters not recorded")
	}
	// Total deliveries equals total transmissions: every push lands
	// somewhere.
	var totalDeliv, totalAct int64
	for v := range res.Activations {
		totalDeliv += res.Deliveries[v]
		totalAct += res.Activations[v]
	}
	if totalDeliv != res.Transmissions {
		t.Fatalf("deliveries %d != transmissions %d", totalDeliv, res.Transmissions)
	}
	// With k = 2 and rho = 0, transmissions = 2·activations exactly.
	if 2*totalAct != res.Transmissions {
		t.Fatalf("2·activations %d != transmissions %d", 2*totalAct, res.Transmissions)
	}
	// The start vertex was active in round 0.
	if res.Activations[0] < 1 {
		t.Fatal("start vertex has no activations")
	}
}

func TestLoadCountsResetBetweenRuns(t *testing.T) {
	g := mustGraph(t)(graph.Complete(16))
	c, err := NewCobra(g, WithLoadCounts())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	first, err := c.Run(0, r)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Run(0, r)
	if err != nil {
		t.Fatal(err)
	}
	var firstTotal, secondTotal int64
	for v := range first.Deliveries {
		firstTotal += first.Deliveries[v]
		secondTotal += second.Deliveries[v]
	}
	if secondTotal != second.Transmissions {
		t.Fatalf("second run deliveries %d != its transmissions %d (stale counters?)", secondTotal, second.Transmissions)
	}
	_ = firstTotal
}

func TestLoadCountsAbsentByDefault(t *testing.T) {
	g := mustGraph(t)(graph.Complete(8))
	c, err := NewCobra(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(0, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Activations != nil || res.Deliveries != nil {
		t.Fatal("load counters recorded without WithLoadCounts")
	}
}

func TestLoadCountsFractionalBranching(t *testing.T) {
	// With rho > 0, transmissions lie between k·activations and
	// (k+1)·activations.
	g := mustGraph(t)(graph.Complete(32))
	c, err := NewCobra(g, WithLoadCounts(), WithBranching(Branching{K: 1, Rho: 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(0, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	var totalAct int64
	for _, a := range res.Activations {
		totalAct += a
	}
	if res.Transmissions < totalAct || res.Transmissions > 2*totalAct {
		t.Fatalf("transmissions %d outside [activations, 2·activations] = [%d, %d]",
			res.Transmissions, totalAct, 2*totalAct)
	}
}
