package core

import (
	"math"
	"testing"

	"cobrawalk/internal/graph"
)

// TestExactDualityTheorem4 is the strongest check in the repository: it
// computes both sides of Theorem 4 exactly (no Monte Carlo) over the full
// subset space of small graphs and asserts they agree to floating-point
// accuracy, for every start set C and every horizon t.
func TestExactDualityTheorem4(t *testing.T) {
	cases := []struct {
		name string
		mk   func() (*graph.Graph, error)
	}{
		{"K4", func() (*graph.Graph, error) { return graph.Complete(4) }},
		{"C5", func() (*graph.Graph, error) { return graph.Cycle(5) }},
		{"C6-bipartite", func() (*graph.Graph, error) { return graph.Cycle(6) }},
		{"K33", func() (*graph.Graph, error) { return graph.CompleteBipartite(3, 3) }},
		{"prism", graph.PrismGraph},
		{"petersen", graph.Petersen},
		{"Q3", func() (*graph.Graph, error) { return graph.Hypercube(3) }},
		// Theorem 4's proof never uses regularity, so the duality should
		// hold on irregular graphs too; the star is the extreme case.
		{"star-irregular", func() (*graph.Graph, error) { return graph.Star(6) }},
		{"path-irregular", func() (*graph.Graph, error) { return graph.Path(5) }},
	}
	branchings := []Branching{
		{K: 1},
		{K: 2},
		{K: 3},
		{K: 1, Rho: 0.3},
		{K: 2, Rho: 0.7},
	}
	for _, tc := range cases {
		g := mustGraph(t)(tc.mk())
		tMax := 8
		if g.N() > 8 {
			tMax = 6
		}
		for _, br := range branchings {
			ed, err := ComputeExactDuality(g, 0, tMax, br)
			if err != nil {
				t.Fatalf("%s %s: %v", tc.name, br, err)
			}
			if errMax := ed.MaxAbsError(); errMax > 1e-10 {
				t.Errorf("%s %s: Theorem 4 violated: max |Δ| = %.3e", tc.name, br, errMax)
			}
		}
	}
}

func TestExactDualityDifferentSources(t *testing.T) {
	g := mustGraph(t)(graph.Petersen())
	for _, v := range []int32{0, 4, 9} {
		ed, err := ComputeExactDuality(g, v, 6, DefaultBranching)
		if err != nil {
			t.Fatal(err)
		}
		if errMax := ed.MaxAbsError(); errMax > 1e-10 {
			t.Errorf("source %d: max |Δ| = %.3e", v, errMax)
		}
	}
}

func TestExactDualityStructure(t *testing.T) {
	g := mustGraph(t)(graph.Complete(4))
	ed, err := ComputeExactDuality(g, 0, 5, DefaultBranching)
	if err != nil {
		t.Fatal(err)
	}
	size := 1 << 4
	for c := 0; c < size; c++ {
		// t = 0: survival is exactly 1[v ∉ C] (v = 0 is bit 0).
		want := 1.0
		if c&1 != 0 {
			want = 0
		}
		if ed.CobraSurvival[0][c] != want {
			t.Fatalf("h_0[%b] = %v, want %v", c, ed.CobraSurvival[0][c], want)
		}
		// Sets containing v have survival 0 at every t.
		for tt := 0; tt <= ed.T; tt++ {
			if c&1 != 0 && ed.CobraSurvival[tt][c] != 0 {
				t.Fatalf("h_%d[%b] = %v, want 0 (v ∈ C)", tt, c, ed.CobraSurvival[tt][c])
			}
			// Probabilities lie in [0, 1].
			if p := ed.CobraSurvival[tt][c]; p < -1e-12 || p > 1+1e-12 {
				t.Fatalf("h_%d[%b] = %v outside [0,1]", tt, c, p)
			}
		}
		// The empty set never hits: survival identically 1 (up to the
		// accumulated roundoff of the Möbius transforms).
		if math.Abs(ed.CobraSurvival[ed.T][0]-1) > 1e-9 {
			t.Fatalf("empty-set survival = %v, want 1", ed.CobraSurvival[ed.T][0])
		}
	}
	// Survival from a singleton decays with t (monotone non-increasing).
	prev := 1.0
	for tt := 0; tt <= ed.T; tt++ {
		cur := ed.CobraSurvival[tt][1<<1] // C = {1}
		if cur > prev+1e-12 {
			t.Fatalf("survival increased at t=%d: %v > %v", tt, cur, prev)
		}
		prev = cur
	}
	// On K4 from one vertex, survival should decay fast: after 5 rounds
	// the hit probability is overwhelming.
	if final := ed.CobraSurvival[5][1<<1]; final > 0.05 {
		t.Fatalf("K4 survival after 5 rounds = %v, expected < 0.05", final)
	}
}

func TestExactDualityMarginals(t *testing.T) {
	g := mustGraph(t)(graph.Cycle(5))
	ed, err := ComputeExactDuality(g, 0, 6, DefaultBranching)
	if err != nil {
		t.Fatal(err)
	}
	surv := ed.MarginalSurvival(2)
	excl := ed.MarginalExclusion(2)
	if len(surv) != 7 || len(excl) != 7 {
		t.Fatalf("marginal lengths: %d, %d", len(surv), len(excl))
	}
	for i := range surv {
		if math.Abs(surv[i]-excl[i]) > 1e-10 {
			t.Fatalf("marginal duality broken at t=%d: %v vs %v", i, surv[i], excl[i])
		}
	}
	if surv[0] != 1 {
		t.Fatalf("P(Hit > 0) = %v for u != v, want 1", surv[0])
	}
}

func TestExactDualityValidation(t *testing.T) {
	g := mustGraph(t)(graph.Complete(4))
	if _, err := ComputeExactDuality(g, -1, 3, DefaultBranching); err == nil {
		t.Fatal("bad vertex should fail")
	}
	if _, err := ComputeExactDuality(g, 0, -1, DefaultBranching); err == nil {
		t.Fatal("negative horizon should fail")
	}
	if _, err := ComputeExactDuality(g, 0, 3, Branching{K: 0}); err == nil {
		t.Fatal("bad branching should fail")
	}
	big := mustGraph(t)(graph.Complete(MaxExactVertices + 1))
	if _, err := ComputeExactDuality(big, 0, 1, DefaultBranching); err == nil {
		t.Fatal("oversized graph should fail")
	}
	iso := mustGraph(t)(graph.FromEdges("iso", 3, [][2]int32{{0, 1}}))
	if _, err := ComputeExactDuality(iso, 0, 1, DefaultBranching); err == nil {
		t.Fatal("isolated vertex should fail")
	}
}

// TestMonteCarloDuality validates the sampled estimator against the exact
// values: every per-t estimate must sit within 5 standard errors of the
// exact probability on both sides.
func TestMonteCarloDuality(t *testing.T) {
	g := mustGraph(t)(graph.Petersen())
	const u, v = 3, 0
	const tMax = 6
	const trials = 4000
	ed, err := ComputeExactDuality(g, v, tMax, DefaultBranching)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateDuality(g, u, v, tMax, trials, DefaultBranching, 42)
	if err != nil {
		t.Fatal(err)
	}
	exactSurv := ed.MarginalSurvival(u)
	for tt := 0; tt <= tMax; tt++ {
		se := est.CobraSE[tt]
		if se == 0 {
			se = 1.0 / trials
		}
		if d := math.Abs(est.CobraSurvival[tt] - exactSurv[tt]); d > 5*se+1e-9 {
			t.Errorf("COBRA estimate at t=%d: %.4f vs exact %.4f (%.1f SE)", tt, est.CobraSurvival[tt], exactSurv[tt], d/se)
		}
		seB := est.BipsSE[tt]
		if seB == 0 {
			seB = 1.0 / trials
		}
		if d := math.Abs(est.BipsExclusion[tt] - exactSurv[tt]); d > 5*seB+1e-9 {
			t.Errorf("BIPS estimate at t=%d: %.4f vs exact %.4f (%.1f SE)", tt, est.BipsExclusion[tt], exactSurv[tt], d/seB)
		}
	}
	// The two Monte-Carlo sides agree within a max-z of ~4 (they are
	// independent estimates of the same quantity).
	if z := est.MaxZScore(); z > 4.5 {
		t.Errorf("duality max z-score = %.2f", z)
	}
	if est.MaxAbsDiff() > 0.05 {
		t.Errorf("duality max abs diff = %.4f", est.MaxAbsDiff())
	}
}

func TestEstimateDualityValidation(t *testing.T) {
	g := mustGraph(t)(graph.Complete(4))
	if _, err := EstimateDuality(g, 0, 1, -1, 10, DefaultBranching, 1); err == nil {
		t.Fatal("negative horizon should fail")
	}
	if _, err := EstimateDuality(g, 0, 1, 3, 0, DefaultBranching, 1); err == nil {
		t.Fatal("zero trials should fail")
	}
	if _, err := EstimateDuality(g, 0, 9, 3, 10, DefaultBranching, 1); err == nil {
		t.Fatal("bad vertex should fail")
	}
}

func TestEstimateDualitySelfPair(t *testing.T) {
	// u == v: Hit is 0 immediately and u = v ∈ A_t always, so both sides
	// are identically 0.
	g := mustGraph(t)(graph.Complete(6))
	est, err := EstimateDuality(g, 2, 2, 4, 200, DefaultBranching, 7)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt <= 4; tt++ {
		if est.CobraSurvival[tt] != 0 || est.BipsExclusion[tt] != 0 {
			t.Fatalf("self-pair side nonzero at t=%d: %+v", tt, est)
		}
	}
	if est.MaxAbsDiff() != 0 || est.MaxZScore() != 0 {
		t.Fatalf("self-pair diff: %v z: %v", est.MaxAbsDiff(), est.MaxZScore())
	}
}

func TestDualityFractionalBranchingMonteCarlo(t *testing.T) {
	// Corollary 1 regime: branching 1+ρ. Cross-validate MC duality on the
	// prism graph.
	g := mustGraph(t)(graph.PrismGraph())
	br := Branching{K: 1, Rho: 0.4}
	ed, err := ComputeExactDuality(g, 0, 5, br)
	if err != nil {
		t.Fatal(err)
	}
	if errMax := ed.MaxAbsError(); errMax > 1e-10 {
		t.Fatalf("exact duality (1+ρ): %.3e", errMax)
	}
	est, err := EstimateDuality(g, 4, 0, 5, 3000, br, 13)
	if err != nil {
		t.Fatal(err)
	}
	exact := ed.MarginalSurvival(4)
	for tt := 0; tt <= 5; tt++ {
		se := math.Hypot(est.CobraSE[tt], est.BipsSE[tt])
		if se == 0 {
			se = 1e-3
		}
		if d := math.Abs(est.CobraSurvival[tt] - exact[tt]); d > 5*se+1e-9 {
			t.Errorf("t=%d: COBRA MC %.4f vs exact %.4f", tt, est.CobraSurvival[tt], exact[tt])
		}
	}
}
