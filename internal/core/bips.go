package core

import (
	"fmt"
	"math"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// BIPS is a reusable Biased Infection with Persistent Source process on a
// fixed graph. A designated source vertex is permanently infected; at every
// round every other vertex samples K random neighbours uniformly with
// replacement (plus one with probability Rho) and belongs to the next
// infected set A_{t+1} iff at least one sample lies in A_t. The process is
// the time-reversal dual of COBRA (Theorem 4) and the vehicle for the
// paper's analysis (Theorem 2, Lemmas 1-4).
//
// Only vertices with at least one infected neighbour can become infected,
// so each Step costs O(Σ_{v∈A_t} deg(v)) rather than O(n·K).
//
// A BIPS is not safe for concurrent use; run one per goroutine.
type BIPS struct {
	g   *graph.Graph
	cfg config

	source   int32
	infected []int32 // current infected set A_t (unique vertices)
	next     []int32
	// Stamp arrays: v ∈ A_t iff curStamp[v] == epoch; candidate bookkeeping
	// is per-step via candStamp/stepEpoch. infCount[v] accumulates d_A(v)
	// for the fast sampling path.
	curStamp  []uint32
	candStamp []uint32
	infCount  []int32
	cands     []int32
	epoch     uint32
	stepEpoch uint32

	round       int
	transmitted int64
	sizes       []int
	started     bool
}

// BipsResult reports one BIPS run.
type BipsResult struct {
	// InfectionTime is the first round t with A_t = V, or -1 if the run
	// hit MaxRounds first.
	InfectionTime int
	// Infected reports whether the whole graph became infected.
	Infected bool
	// Rounds is the number of rounds executed.
	Rounds int
	// Transmissions counts all neighbour samples drawn (exact path) or the
	// equivalent expected count (fast path).
	Transmissions int64
	// Sizes[t] = |A_t| for t = 0..Rounds; always recorded (one int per
	// round) because every analysis of the process consumes it.
	Sizes []int
}

// NewBIPS validates the graph and options and returns a reusable process.
func NewBIPS(g *graph.Graph, opts ...Option) (*BIPS, error) {
	cfg, err := buildConfig(g, opts)
	if err != nil {
		return nil, err
	}
	n := g.N()
	return &BIPS{
		g:         g,
		cfg:       cfg,
		curStamp:  make([]uint32, n),
		candStamp: make([]uint32, n),
		infCount:  make([]int32, n),
	}, nil
}

// Reset prepares the process with source v and A_0 = {v} ∪ extra.
// The source remains infected in every subsequent round.
func (b *BIPS) Reset(source int32, extra ...int32) error {
	if source < 0 || int(source) >= b.g.N() {
		return fmt.Errorf("core: source vertex %d out of range [0,%d)", source, b.g.N())
	}
	b.epoch++
	if b.epoch == 0 {
		clear32(b.curStamp)
		b.epoch = 1
	}
	b.source = source
	b.infected = b.infected[:0]
	b.round = 0
	b.transmitted = 0
	b.sizes = b.sizes[:0]
	b.curStamp[source] = b.epoch
	b.infected = append(b.infected, source)
	for _, v := range extra {
		if v < 0 || int(v) >= b.g.N() {
			return fmt.Errorf("core: vertex %d out of range [0,%d)", v, b.g.N())
		}
		if b.curStamp[v] == b.epoch {
			continue
		}
		b.curStamp[v] = b.epoch
		b.infected = append(b.infected, v)
	}
	b.sizes = append(b.sizes, len(b.infected))
	b.started = true
	return nil
}

// Step advances the epidemic one round.
func (b *BIPS) Step(r *rng.Rand) {
	g := b.g
	b.stepEpoch++
	if b.stepEpoch == 0 {
		clear32(b.candStamp)
		b.stepEpoch = 1
	}
	// Collect candidates: the inclusive neighbourhood Γ(A_t). While
	// scanning, accumulate d_A(u) for the fast path.
	b.cands = b.cands[:0]
	fast := !b.cfg.exactSample
	for _, v := range b.infected {
		for _, u := range g.Neighbors(v) {
			if b.candStamp[u] != b.stepEpoch {
				b.candStamp[u] = b.stepEpoch
				b.cands = append(b.cands, u)
				if fast {
					b.infCount[u] = 0
				}
			}
			if fast {
				b.infCount[u]++
			}
		}
	}

	b.next = b.next[:0]
	// The source is always infected.
	b.next = append(b.next, b.source)

	k := b.cfg.branching.K
	rho := b.cfg.branching.Rho
	for _, u := range b.cands {
		if u == b.source {
			continue
		}
		var hit bool
		if fast {
			p := float64(b.infCount[u]) / float64(g.Degree(u))
			prob := 1 - missProb(p, k)*(1-rho*p)
			b.transmitted += int64(k) // expected-equivalent accounting
			if rho > 0 && r.Bernoulli(rho) {
				b.transmitted++
			}
			hit = r.Bernoulli(prob)
		} else {
			deg := g.Degree(u)
			samples := k
			if rho > 0 && r.Bernoulli(rho) {
				samples++
			}
			// Draw every sample (no short-circuit) so transmission counts
			// reflect the protocol as defined.
			for i := 0; i < samples; i++ {
				b.transmitted++
				w := g.Neighbor(u, r.Intn(deg))
				if b.curStamp[w] == b.epoch {
					hit = true
				}
			}
		}
		if hit {
			b.next = append(b.next, u)
		}
	}

	// Swap infected sets: stamp the new set with a fresh epoch.
	b.epoch++
	if b.epoch == 0 {
		clear32(b.curStamp)
		b.epoch = 1
	}
	for _, u := range b.next {
		b.curStamp[u] = b.epoch
	}
	b.infected, b.next = b.next, b.infected
	b.round++
	b.sizes = append(b.sizes, len(b.infected))
}

// missProb returns (1-p)^k, with the small integer exponents of practical
// branching factors multiplied out — math.Pow costs more than the entire
// rest of a fast-path candidate evaluation.
func missProb(p float64, k int) float64 {
	q := 1 - p
	switch k {
	case 1:
		return q
	case 2:
		return q * q
	case 3:
		return q * q * q
	case 4:
		qq := q * q
		return qq * qq
	default:
		return math.Pow(q, float64(k))
	}
}

// Round returns the current round index (0 just after Reset).
func (b *BIPS) Round() int { return b.round }

// InfectedCount returns |A_t|.
func (b *BIPS) InfectedCount() int { return len(b.infected) }

// Transmissions returns the number of neighbour samples drawn since Reset
// (exact path) or the equivalent expected count (fast path).
func (b *BIPS) Transmissions() int64 { return b.transmitted }

// Infected reports whether v ∈ A_t.
func (b *BIPS) Infected(v int32) bool { return b.curStamp[v] == b.epoch }

// InfectedSet appends the current infected set to dst and returns it.
func (b *BIPS) InfectedSet(dst []int32) []int32 { return append(dst, b.infected...) }

// Sizes returns the |A_t| trajectory recorded so far (shared slice; do not
// modify).
func (b *BIPS) Sizes() []int { return b.sizes }

// FullyInfected reports whether A_t = V.
func (b *BIPS) FullyInfected() bool { return len(b.infected) == b.g.N() }

// Run executes a full infection run from the given source: it resets the
// process and steps until A_t = V or the round cap is reached.
func (b *BIPS) Run(source int32, r *rng.Rand) (BipsResult, error) {
	if err := b.Reset(source); err != nil {
		return BipsResult{}, err
	}
	for !b.FullyInfected() && b.round < b.cfg.maxRounds {
		b.Step(r)
	}
	res := BipsResult{
		Infected:      b.FullyInfected(),
		InfectionTime: -1,
		Rounds:        b.round,
		Transmissions: b.transmitted,
		Sizes:         append([]int(nil), b.sizes...),
	}
	if res.Infected {
		res.InfectionTime = b.round
	}
	return res, nil
}

// RunUntilContains runs until target ∈ A_t (or the round cap) and returns
// the first such round, or -1 on cap. Used by the duality estimator for
// the right-hand side of Theorem 4.
func (b *BIPS) RunUntilContains(source, target int32, r *rng.Rand) (int, error) {
	if err := b.Reset(source); err != nil {
		return 0, err
	}
	if target < 0 || int(target) >= b.g.N() {
		return 0, fmt.Errorf("core: target vertex %d out of range [0,%d)", target, b.g.N())
	}
	for !b.Infected(target) {
		if b.round >= b.cfg.maxRounds {
			return -1, nil
		}
		b.Step(r)
	}
	return b.round, nil
}
