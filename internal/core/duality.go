package core

import (
	"fmt"
	"math"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// DualityEstimate holds Monte-Carlo estimates of both sides of the paper's
// Theorem 4 identity
//
//	P̂(Hit_u(v) > t)  =  P(u ∉ A_t | A_0 = {v})
//
// for t = 0..T: CobraSurvival[t] estimates the left side from COBRA runs
// started at u, and BipsExclusion[t] the right side from BIPS runs with
// source v.
type DualityEstimate struct {
	U, V          int32
	T             int
	Trials        int
	CobraSurvival []float64
	BipsExclusion []float64
	// SE[t] is the binomial standard error of each estimate.
	CobraSE []float64
	BipsSE  []float64
}

// MaxAbsDiff returns the largest |CobraSurvival[t] - BipsExclusion[t]|.
func (d DualityEstimate) MaxAbsDiff() float64 {
	maxDiff := 0.0
	for t := 0; t <= d.T; t++ {
		if diff := math.Abs(d.CobraSurvival[t] - d.BipsExclusion[t]); diff > maxDiff {
			maxDiff = diff
		}
	}
	return maxDiff
}

// MaxZScore returns the largest |difference| / (combined SE) over t,
// the natural test statistic for the equality: under Theorem 4 it behaves
// like the maximum of ~T standard normals.
func (d DualityEstimate) MaxZScore() float64 {
	maxZ := 0.0
	for t := 0; t <= d.T; t++ {
		se := math.Hypot(d.CobraSE[t], d.BipsSE[t])
		diff := math.Abs(d.CobraSurvival[t] - d.BipsExclusion[t])
		if se == 0 {
			if diff > 0 {
				return math.Inf(1)
			}
			continue
		}
		if z := diff / se; z > maxZ {
			maxZ = z
		}
	}
	return maxZ
}

// EstimateDuality runs trials independent COBRA walks from u (recording
// whether v was hit by each round t) and trials independent BIPS epidemics
// with source v (recording whether u was infected at round t), estimating
// both sides of Theorem 4 for t = 0..tMax. Both processes use the exact
// sampling path and the given branching.
func EstimateDuality(g *graph.Graph, u, v int32, tMax, trials int, branch Branching, seed uint64) (DualityEstimate, error) {
	if tMax < 0 {
		return DualityEstimate{}, fmt.Errorf("core: negative horizon %d", tMax)
	}
	if trials < 1 {
		return DualityEstimate{}, fmt.Errorf("core: trials = %d, need >= 1", trials)
	}
	est := DualityEstimate{
		U: u, V: v, T: tMax, Trials: trials,
		CobraSurvival: make([]float64, tMax+1),
		BipsExclusion: make([]float64, tMax+1),
		CobraSE:       make([]float64, tMax+1),
		BipsSE:        make([]float64, tMax+1),
	}

	cobra, err := NewCobra(g, WithBranching(branch), WithMaxRounds(tMax+1))
	if err != nil {
		return DualityEstimate{}, err
	}
	if v < 0 || int(v) >= g.N() {
		return DualityEstimate{}, fmt.Errorf("core: vertex %d out of range", v)
	}
	// COBRA side: survival counts surv[t] = #trials with Hit_u(v) > t.
	surv := make([]int, tMax+1)
	r := rng.NewStream(seed, 0x10b)
	for i := 0; i < trials; i++ {
		if err := cobra.Reset(u); err != nil {
			return DualityEstimate{}, err
		}
		for t := 0; t <= tMax; t++ {
			if t > 0 {
				cobra.Step(r)
			}
			if !cobra.Visited(v) {
				surv[t]++
			} else {
				break // once hit, survival is 0 for all later t
			}
		}
	}

	bips, err := NewBIPS(g, WithBranching(branch), WithMaxRounds(tMax+1))
	if err != nil {
		return DualityEstimate{}, err
	}
	// BIPS side: excl[t] = #trials with u ∉ A_t. Note u may leave and
	// rejoin the infected set, so every round is examined.
	excl := make([]int, tMax+1)
	r2 := rng.NewStream(seed, 0xb1b5)
	for i := 0; i < trials; i++ {
		if err := bips.Reset(v); err != nil {
			return DualityEstimate{}, err
		}
		for t := 0; t <= tMax; t++ {
			if t > 0 {
				bips.Step(r2)
			}
			if !bips.Infected(u) {
				excl[t]++
			}
		}
	}

	n := float64(trials)
	for t := 0; t <= tMax; t++ {
		pc := float64(surv[t]) / n
		pb := float64(excl[t]) / n
		est.CobraSurvival[t] = pc
		est.BipsExclusion[t] = pb
		est.CobraSE[t] = math.Sqrt(pc * (1 - pc) / n)
		est.BipsSE[t] = math.Sqrt(pb * (1 - pb) / n)
	}
	return est, nil
}
