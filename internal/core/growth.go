package core

import (
	"fmt"
	"math"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// Lemma1Bound returns the paper's lower bound on E(|A_{t+1}| | A_t = A)
// for an r-regular graph with second eigenvalue lambda (in absolute value):
//
//	Lemma 1    (K >= 2):        |A|·(1 + (1-λ²)·(1-|A|/n))
//	Corollary 1 (K = 1, ρ > 0): |A|·(1 + ρ·(1-λ²)·(1-|A|/n))
//
// For K >= 2 the extra pushes beyond the second only help, so the K = 2
// bound remains valid. For K = 1 with ρ = 0 the process is a plain random
// walk and the lemma gives no growth (factor 0).
func Lemma1Bound(sizeA, n int, lambda float64, branch Branching) float64 {
	a := float64(sizeA)
	frac := (1 - lambda*lambda) * (1 - a/float64(n))
	switch {
	case branch.K >= 2:
		return a * (1 + frac)
	case branch.Rho > 0:
		return a * (1 + branch.Rho*frac)
	default:
		return a
	}
}

// ExactExpectedGrowth evaluates E(|A_{t+1}| | A_t = A) in closed form from
// equation (3) of the paper:
//
//	E = 1 + Σ_{u ∈ Γ(A)∖{source}} (1 - (1-d_A(u)/d(u))^K·(1-ρ·d_A(u)/d(u)))
//
// at O(Σ_{v∈A} deg(v)) cost. A must not contain duplicates; source must be
// a member of A.
func ExactExpectedGrowth(g *graph.Graph, source int32, a []int32, branch Branching) (float64, error) {
	if err := branch.Validate(); err != nil {
		return 0, err
	}
	n := g.N()
	if source < 0 || int(source) >= n {
		return 0, fmt.Errorf("core: source %d out of range [0,%d)", source, n)
	}
	inA := make([]bool, n)
	srcOK := false
	for _, v := range a {
		if v < 0 || int(v) >= n {
			return 0, fmt.Errorf("core: vertex %d out of range [0,%d)", v, n)
		}
		if inA[v] {
			return 0, fmt.Errorf("core: duplicate vertex %d in A", v)
		}
		inA[v] = true
		if v == source {
			srcOK = true
		}
	}
	if !srcOK {
		return 0, fmt.Errorf("core: source %d not in A", source)
	}
	// d_A(u) for u ∈ Γ(A) via one pass over the edges leaving A.
	dA := make(map[int32]int, len(a)*4)
	for _, v := range a {
		for _, u := range g.Neighbors(v) {
			dA[u]++
		}
	}
	expected := 1.0 // the persistent source
	for u, d := range dA {
		if u == source {
			continue
		}
		expected += infectProb(d, g.Degree(u), branch)
	}
	return expected, nil
}

// SampleGrowth runs trials independent single BIPS steps from A_t = a
// (source included) and returns the sampled |A_{t+1}| values. Used to
// validate Lemma 1 empirically and to measure the growth-factor
// distribution that the paper's Lemma 2 martingale argument integrates.
func SampleGrowth(g *graph.Graph, source int32, a []int32, branch Branching, trials int, seed uint64) ([]float64, error) {
	if trials < 1 {
		return nil, fmt.Errorf("core: trials = %d, need >= 1", trials)
	}
	b, err := NewBIPS(g, WithBranching(branch))
	if err != nil {
		return nil, err
	}
	extra := make([]int32, 0, len(a))
	for _, v := range a {
		if v != source {
			extra = append(extra, v)
		}
	}
	r := rng.NewStream(seed, 0x9c0147)
	out := make([]float64, trials)
	for i := 0; i < trials; i++ {
		if err := b.Reset(source, extra...); err != nil {
			return nil, err
		}
		if b.InfectedCount() != len(extra)+1 {
			return nil, fmt.Errorf("core: duplicate vertices in A")
		}
		b.Step(r)
		out[i] = float64(b.InfectedCount())
	}
	return out, nil
}

// Lemma2MGF holds a Monte-Carlo estimate of the exponential-moment
// sequence at the heart of the paper's Lemma 2:
//
//	G_t(φ) = E[ e^{-φ(|A_t|-|A_0|)} · 1{|A_s| < m+1 for all s ≤ t-1} ],
//
// which the paper proves satisfies G_t(φ) ≤ exp(t·(log(1+x) - x)) for
// φ = log(1+x), x = (1-λ)/2, and m ≤ n/2. The estimate lets the proof's
// engine be checked empirically, not just its conclusion.
type Lemma2MGF struct {
	Phi float64
	X   float64
	M   int
	// G[t] is the Monte-Carlo estimate of G_t(φ); SE[t] its standard error.
	G  []float64
	SE []float64
}

// Bound returns the paper's upper bound exp(t·(log(1+x)-x)) on G_t(φ).
func (l Lemma2MGF) Bound(t int) float64 {
	return math.Exp(float64(t) * (math.Log(1+l.X) - l.X))
}

// EstimateLemma2MGF runs `trials` independent BIPS processes from source
// and estimates G_t(φ) for t = 0..tMax with φ = log(1+x), x = (1-λ)/2,
// small-set threshold m. Used by experiment E15 to validate the Lemma 2
// supermartingale argument directly.
func EstimateLemma2MGF(g *graph.Graph, source int32, branch Branching, lambda float64, m, tMax, trials int, seed uint64) (Lemma2MGF, error) {
	if trials < 1 {
		return Lemma2MGF{}, fmt.Errorf("core: trials = %d, need >= 1", trials)
	}
	if tMax < 0 {
		return Lemma2MGF{}, fmt.Errorf("core: negative horizon %d", tMax)
	}
	if lambda < 0 || lambda >= 1 {
		return Lemma2MGF{}, fmt.Errorf("core: lambda = %v outside [0,1)", lambda)
	}
	if m < 1 || m > g.N()/2 {
		return Lemma2MGF{}, fmt.Errorf("core: small-set threshold m = %d outside [1, n/2]", m)
	}
	x := (1 - lambda) / 2
	out := Lemma2MGF{
		Phi: math.Log(1 + x),
		X:   x,
		M:   m,
		G:   make([]float64, tMax+1),
		SE:  make([]float64, tMax+1),
	}
	b, err := NewBIPS(g, WithBranching(branch), WithMaxRounds(tMax+1))
	if err != nil {
		return Lemma2MGF{}, err
	}
	sums := make([]float64, tMax+1)
	sumSqs := make([]float64, tMax+1)
	r := rng.NewStream(seed, 0x1e2)
	for i := 0; i < trials; i++ {
		if err := b.Reset(source); err != nil {
			return Lemma2MGF{}, err
		}
		a0 := float64(b.InfectedCount())
		alive := true // 1{E_{t-1}}: all sizes so far < m+1
		for t := 0; t <= tMax; t++ {
			if t > 0 {
				// The indicator freezes once any prior size exceeds m.
				if b.InfectedCount() >= m+1 {
					alive = false
				}
				b.Step(r)
			}
			if alive {
				v := math.Exp(-out.Phi * (float64(b.InfectedCount()) - a0))
				sums[t] += v
				sumSqs[t] += v * v
			}
		}
	}
	n := float64(trials)
	for t := 0; t <= tMax; t++ {
		mean := sums[t] / n
		out.G[t] = mean
		variance := sumSqs[t]/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		out.SE[t] = math.Sqrt(variance / n)
	}
	return out, nil
}

// RandomInfectedSet draws a uniformly random subset of V of the given size
// containing source, for conditioned growth experiments.
func RandomInfectedSet(g *graph.Graph, source int32, size int, r *rng.Rand) ([]int32, error) {
	n := g.N()
	if size < 1 || size > n {
		return nil, fmt.Errorf("core: set size %d out of range [1,%d]", size, n)
	}
	perm := make([]int32, 0, n-1)
	for v := int32(0); v < int32(n); v++ {
		if v != source {
			perm = append(perm, v)
		}
	}
	r.ShuffleInt32s(perm)
	set := make([]int32, 0, size)
	set = append(set, source)
	set = append(set, perm[:size-1]...)
	return set, nil
}
