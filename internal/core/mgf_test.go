package core

import (
	"math"
	"testing"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/spectral"
)

func TestEstimateLemma2MGFValidation(t *testing.T) {
	g := mustGraph(t)(graph.Complete(16))
	if _, err := EstimateLemma2MGF(g, 0, DefaultBranching, 0.5, 8, 5, 0, 1); err == nil {
		t.Fatal("zero trials should fail")
	}
	if _, err := EstimateLemma2MGF(g, 0, DefaultBranching, 0.5, 8, -1, 10, 1); err == nil {
		t.Fatal("negative horizon should fail")
	}
	if _, err := EstimateLemma2MGF(g, 0, DefaultBranching, 1.0, 8, 5, 10, 1); err == nil {
		t.Fatal("lambda = 1 should fail")
	}
	if _, err := EstimateLemma2MGF(g, 0, DefaultBranching, 0.5, 9, 5, 10, 1); err == nil {
		t.Fatal("m > n/2 should fail")
	}
	if _, err := EstimateLemma2MGF(g, 0, DefaultBranching, 0.5, 0, 5, 10, 1); err == nil {
		t.Fatal("m < 1 should fail")
	}
}

// TestLemma2MGFBoundHolds is the proof-engine check: on an expander, the
// Monte-Carlo exponential moment must stay below the paper's per-round
// contraction bound at every horizon.
func TestLemma2MGFBoundHolds(t *testing.T) {
	g := mustGraph(t)(graph.Paley(101))
	lambda, err := spectral.LambdaMax(g, spectral.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const trials = 4000
	const tMax = 10
	mgf, err := EstimateLemma2MGF(g, 0, DefaultBranching, lambda, g.N()/2, tMax, trials, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mgf.G[0] != 1 {
		t.Fatalf("G_0 = %v, want exactly 1", mgf.G[0])
	}
	for tt := 0; tt <= tMax; tt++ {
		bound := mgf.Bound(tt)
		if mgf.G[tt] > bound+3*mgf.SE[tt]+1e-12 {
			t.Fatalf("Lemma 2 bound violated at t=%d: G=%v > bound=%v (SE %v)", tt, mgf.G[tt], bound, mgf.SE[tt])
		}
	}
	// The moment must actually decay (contraction, not just a bound).
	if mgf.G[tMax] >= mgf.G[1] {
		t.Fatalf("no contraction: G_%d = %v >= G_1 = %v", tMax, mgf.G[tMax], mgf.G[1])
	}
}

func TestLemma2MGFBoundFormula(t *testing.T) {
	l := Lemma2MGF{X: 0.25}
	if got := l.Bound(0); got != 1 {
		t.Fatalf("Bound(0) = %v, want 1", got)
	}
	want := math.Exp(2 * (math.Log(1.25) - 0.25))
	if math.Abs(l.Bound(2)-want) > 1e-12 {
		t.Fatalf("Bound(2) = %v, want %v", l.Bound(2), want)
	}
	// The bound is strictly decreasing in t for x > 0.
	if l.Bound(3) >= l.Bound(2) {
		t.Fatal("bound not decreasing")
	}
}
