package expt

import (
	"context"
	"fmt"
	"io"

	"cobrawalk/internal/contact"
	"cobrawalk/internal/core"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
	"cobrawalk/internal/sim"
	"cobrawalk/internal/stats"
)

// e12Experiment situates COBRA/BIPS against the continuous-time contact
// process the paper cites as their classical counterpart (§1, Harris
// 1974): infection rate µ per edge, recovery rate 1. Two behaviours
// distinguish the models, and both are measured here:
//
//  1. the plain contact process can die out — the coverage-before-
//     extinction fraction sweeps from ~0 to ~1 as µ crosses the critical
//     window, whereas COBRA/BIPS always cover;
//  2. with a persistent source (the continuous analogue of BIPS),
//     extinction is impossible and the full-infection time becomes the
//     quantity to compare against BIPS rounds.
func e12Experiment() Experiment {
	return Experiment{
		ID:    "E12",
		Title: "The continuous contact process vs COBRA/BIPS",
		Claim: "§1: COBRA is a discrete contact process that cannot die out; BIPS mirrors a persistently infected source (BVDV).",
		Run:   runE12,
	}
}

func runE12(ctx context.Context, w io.Writer, p Params) error {
	p = p.withDefaults()
	n := pick(p.Scale, 256, 1024, 4096)
	trials := pick(p.Scale, 30, 80, 200)
	gr := rng.NewStream(p.Seed, 0xe12)
	g, err := graph.RandomRegularConnected(n, 8, gr)
	if err != nil {
		return err
	}
	mus := []float64{0.05, 0.1, 0.2, 0.4, 0.8, 1.6}
	// Supercritical runs without a persistent source survive for an
	// exponentially long time; coverage happens within O(n log n) events
	// when it happens at all, so a modest event cap loses nothing.
	maxEvents := pick(p.Scale, 200_000, 1_000_000, 5_000_000)

	tbl := NewTable(fmt.Sprintf("E12a: plain contact process on %s (can die out)", g.Name()),
		"µ", "trials", "covered before extinction", "mean extinction/end time", "mean peak |I|")
	for _, mu := range mus {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := contact.New(g, contact.Config{Mu: mu}); err != nil {
			return err
		}
		type out struct{ covered, endTime, peak float64 }
		res, err := sim.RunWithState(ctx,
			sim.Spec{Trials: trials, Seed: p.Seed ^ 0xc0, Workers: p.Workers},
			func() *contact.Process {
				cp, err := contact.New(g, contact.Config{Mu: mu, MaxEvents: maxEvents})
				if err != nil {
					panic(err) // unreachable: validated above
				}
				return cp
			},
			func(cp *contact.Process, trial int, r *rng.Rand) (out, error) {
				res, err := cp.Run(0, r)
				if err != nil {
					return out{}, err
				}
				covered := 0.0
				if res.CoveredAll {
					covered = 1
				}
				return out{covered, res.EndTime, float64(res.PeakInfected)}, nil
			})
		if err != nil {
			return err
		}
		tbl.AddRow(f2(mu), d(trials),
			f2(stats.Mean(sim.Floats(res, func(o out) float64 { return o.covered }))),
			f2(stats.Mean(sim.Floats(res, func(o out) float64 { return o.endTime }))),
			f1(stats.Mean(sim.Floats(res, func(o out) float64 { return o.peak }))))
	}
	tbl.AddNote("the coverage fraction sweeps 0→1 across the critical window; COBRA/BIPS have no such extinction regime")
	if err := tbl.Emit(w, p); err != nil {
		return err
	}

	// Persistent-source comparison against BIPS. The continuous SIS
	// equilibrium keeps a constant fraction recovered at any instant, so
	// simultaneous full infection is unreachable at scale; the comparable
	// finite objective is coverage — every vertex infected at least once —
	// which by Theorem 4 is also what the BIPS infection time bounds for
	// COBRA.
	tbl2 := NewTable("E12b: persistent-source contact process vs BIPS k=2 (the paper's duality-side process)",
		"model", "parameter", "mean time (coverage / full infection)", "p95")
	bipsTimes, err := infectionTimes(ctx, g, core.DefaultBranching, trials, p, 1<<16)
	if err != nil {
		return err
	}
	bs, err := summarizeOrErr(bipsTimes, "BIPS times")
	if err != nil {
		return err
	}
	tbl2.AddRow("BIPS (discrete rounds, reaches A_t = V)", "k=2", f2(bs.Mean), f1(bs.P95))
	for _, mu := range []float64{0.4, 0.8, 1.6} {
		cfg := contact.Config{Mu: mu, PersistentSource: true, StopOnCoverage: true, MaxEvents: 20_000_000}
		if _, err := contact.New(g, cfg); err != nil {
			return err
		}
		res, err := sim.RunWithState(ctx,
			sim.Spec{Trials: trials, Seed: p.Seed ^ 0xc1, Workers: p.Workers},
			func() *contact.Process {
				cp, err := contact.New(g, cfg)
				if err != nil {
					panic(err) // unreachable: validated above
				}
				return cp
			},
			func(cp *contact.Process, trial int, r *rng.Rand) (float64, error) {
				out, err := cp.Run(0, r)
				if err != nil {
					return 0, err
				}
				if !out.CoveredAll {
					return 0, fmt.Errorf("persistent contact run capped before coverage (µ=%v)", mu)
				}
				return out.CoverTime, nil
			})
		if err != nil {
			return err
		}
		s, err := summarizeOrErr(res, "contact coverage times")
		if err != nil {
			return err
		}
		tbl2.AddRow("contact+persistent source (continuous, coverage)", fmt.Sprintf("µ=%.1f", mu), f2(s.Mean), f1(s.P95))
	}
	tbl2.AddNote("clocks differ (rounds vs continuous time); both objectives complete at comparable logarithmic scale")
	tbl2.AddNote("simultaneous full infection is an exponentially rare SIS fluctuation in continuous time — one more way COBRA/BIPS differ from the classical process")
	return tbl2.Emit(w, p)
}
