package expt

import (
	"context"
	"io"
	"math"
	"time"

	"cobrawalk/internal/core"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// e13Experiment is the implementation ablation called out in DESIGN.md:
// the BIPS step can draw each vertex's k neighbour samples explicitly
// ("exact", the process as defined) or draw the infection event from its
// closed-form probability 1-(1-d_A/d)^k·(1-ρd_A/d) ("fast"). The two are
// identical in distribution; the ablation verifies that equivalence
// statistically (infection-time means within Monte-Carlo error) and
// measures the runtime difference that justifies keeping both paths.
func e13Experiment() Experiment {
	return Experiment{
		ID:    "E13",
		Title: "Ablation: exact vs closed-form BIPS sampling",
		Claim: "Implementation ablation (DESIGN.md): the two sampling paths are distribution-identical; speed differs.",
		Run:   runE13,
	}
}

func runE13(ctx context.Context, w io.Writer, p Params) error {
	p = p.withDefaults()
	n := pick(p.Scale, 512, 2048, 8192)
	trials := pick(p.Scale, 60, 200, 500)
	gr := rng.NewStream(p.Seed, 0xe13)

	tbl := NewTable("E13: BIPS sampling-path ablation",
		"graph", "path", "branching", "mean infec", "SE", "wall-clock/run")
	for _, deg := range []int{4, 16} {
		g, err := graph.RandomRegularConnected(n, deg, gr)
		if err != nil {
			return err
		}
		for _, br := range []core.Branching{{K: 2}, {K: 1, Rho: 0.5}} {
			var exactMean, exactSE, fastMean, fastSE float64
			for _, fast := range []bool{false, true} {
				if err := ctx.Err(); err != nil {
					return err
				}
				opts := []core.Option{core.WithBranching(br), core.WithMaxRounds(1 << 18)}
				name := "exact"
				if fast {
					opts = append(opts, core.WithFastSampling())
					name = "fast"
				}
				proc, err := core.NewBIPS(g, opts...)
				if err != nil {
					return err
				}
				times := make([]float64, 0, trials)
				start := time.Now()
				r := rng.NewStream(p.Seed^uint64(deg), map[bool]uint64{false: 1, true: 2}[fast])
				for i := 0; i < trials; i++ {
					res, err := proc.Run(0, r)
					if err != nil {
						return err
					}
					if !res.Infected {
						continue
					}
					times = append(times, float64(res.InfectionTime))
				}
				perRun := time.Since(start) / time.Duration(trials)
				s, err := summarizeOrErr(times, "infection times")
				if err != nil {
					return err
				}
				tbl.AddRow(g.Name(), name, br.String(), f2(s.Mean), f2(s.SE()), perRun.String())
				if fast {
					fastMean, fastSE = s.Mean, s.SE()
				} else {
					exactMean, exactSE = s.Mean, s.SE()
				}
			}
			z := math.Abs(exactMean-fastMean) / math.Hypot(exactSE, fastSE)
			verdict := "equivalent"
			if z > 4 {
				verdict = "DIVERGENT — bug"
			}
			tbl.AddNote("%s %s: |Δmean| = %.3f (z = %.2f) → %s", g.Name(), br.String(),
				math.Abs(exactMean-fastMean), z, verdict)
		}
	}
	return tbl.Emit(w, p)
}
