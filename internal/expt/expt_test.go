package expt

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("demo", "a", "bb", "ccc")
	tbl.AddRow("1", "22", "333")
	tbl.AddRow("x") // short row pads
	tbl.AddNote("note %d", 7)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "a", "bb", "ccc", "22", "333", "note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	tbl := NewTable("demo", "x", "y")
	tbl.AddRow("1", "2")
	tbl.AddRow("3", "4")
	var buf bytes.Buffer
	if err := tbl.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,2\n3,4\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestParseScale(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Scale
	}{{"smoke", Smoke}, {"quick", Quick}, {"full", Full}} {
		got, err := ParseScale(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseScale(%q) = (%v, %v)", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("unknown scale should fail")
	}
}

func TestRegistryCompleteAndOrdered(t *testing.T) {
	exps := Registry()
	if len(exps) != 15 {
		t.Fatalf("registry has %d experiments, want 15", len(exps))
	}
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15"}
	for i, e := range exps {
		if e.ID != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete: %+v", e.ID, e)
		}
	}
}

func TestLookup(t *testing.T) {
	e, err := Lookup("E4")
	if err != nil || e.ID != "E4" {
		t.Fatalf("Lookup(E4) = (%v, %v)", e.ID, err)
	}
	if _, err := Lookup("E99"); err == nil {
		t.Fatal("unknown id should fail")
	}
}

// TestExperimentsSmoke runs every experiment end-to-end at smoke scale and
// checks it renders a table without error. This is the integration test of
// the whole pipeline (graph → spectral → core/baseline → sim → stats →
// table).
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke experiments take a few seconds")
	}
	p := Params{Scale: Smoke, Seed: 7}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := e.Run(context.Background(), &buf, p); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, e.ID) {
				t.Fatalf("%s output missing its title header:\n%s", e.ID, out)
			}
			if !strings.Contains(out, "---") {
				t.Fatalf("%s produced no table:\n%s", e.ID, out)
			}
		})
	}
}

func TestRunAllStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	if err := RunAll(ctx, &buf, Params{Scale: Smoke, Seed: 1}); err == nil {
		t.Fatal("cancelled RunAll should fail")
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Scale != Smoke {
		t.Fatalf("default scale = %v", p.Scale)
	}
}

func TestPick(t *testing.T) {
	if got := pick(Smoke, 1, 2, 3); got != 1 {
		t.Fatalf("smoke pick = %d", got)
	}
	if got := pick(Quick, 1, 2, 3); got != 2 {
		t.Fatalf("quick pick = %d", got)
	}
	if got := pick(Full, 1, 2, 3); got != 3 {
		t.Fatalf("full pick = %d", got)
	}
}

func TestIntSqrt(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 0}, {1, 1}, {3, 1}, {4, 2}, {15, 3}, {16, 4}, {1024, 32}, {1023, 31},
	} {
		if got := intSqrt(tc.in); got != tc.want {
			t.Fatalf("intSqrt(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
