package expt

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"cobrawalk/internal/core"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/stats"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("demo", "a", "bb", "ccc")
	tbl.AddRow("1", "22", "333")
	tbl.AddRow("x") // short row pads
	tbl.AddNote("note %d", 7)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "a", "bb", "ccc", "22", "333", "note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	tbl := NewTable("demo", "x", "y")
	tbl.AddRow("1", "2")
	tbl.AddRow("3", "4")
	var buf bytes.Buffer
	if err := tbl.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,2\n3,4\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestTableRenderJSONAndEmit(t *testing.T) {
	tbl := NewTable("demo", "x", "y")
	tbl.AddRow("1", "2")
	tbl.AddNote("fit %d", 9)
	var buf bytes.Buffer
	if err := tbl.RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if rec.Title != "demo" || len(rec.Columns) != 2 || len(rec.Rows) != 1 || rec.Notes[0] != "fit 9" {
		t.Fatalf("JSON record = %+v", rec)
	}

	// Empty tables must still render valid JSON ([] not null).
	var empty bytes.Buffer
	if err := NewTable("t", "a").RenderJSON(&empty); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(empty.String(), "null") {
		t.Fatalf("empty table JSON has nulls: %s", empty.String())
	}

	// Emit dispatches on Params.Format.
	for _, tc := range []struct {
		format Format
		want   string
	}{
		{FormatText, "demo\n"},
		{FormatCSV, "x,y\n"},
		{FormatJSON, `"title":"demo"`},
	} {
		var out bytes.Buffer
		if err := tbl.Emit(&out, Params{Format: tc.format}); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out.String(), tc.want) {
			t.Fatalf("Emit(%v) missing %q:\n%s", tc.format, tc.want, out.String())
		}
	}
}

func TestParseFormat(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Format
	}{{"", FormatText}, {"text", FormatText}, {"csv", FormatCSV}, {"json", FormatJSON}} {
		got, err := ParseFormat(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseFormat(%q) = (%v, %v)", tc.in, got, err)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Fatal("unknown format should fail")
	}
	if FormatJSON.String() != "json" || FormatCSV.String() != "csv" || FormatText.String() != "text" {
		t.Fatal("Format.String mismatch")
	}
}

func TestAnnounce(t *testing.T) {
	e := Experiment{ID: "E1", Title: "title", Claim: "claim"}
	var txt bytes.Buffer
	if err := Announce(&txt, Params{}, e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "=== E1") {
		t.Fatalf("text announce = %q", txt.String())
	}
	var js bytes.Buffer
	if err := Announce(&js, Params{Format: FormatJSON}, e); err != nil {
		t.Fatal(err)
	}
	var rec map[string]string
	if err := json.Unmarshal(js.Bytes(), &rec); err != nil {
		t.Fatalf("invalid JSON announce: %v\n%s", err, js.String())
	}
	if rec["experiment"] != "E1" || rec["claim"] != "claim" {
		t.Fatalf("JSON announce = %v", rec)
	}
}

// TestStreamingDigestMatchesRawSample pins the tentpole invariant at the
// workload level: the streaming digest sees exactly the trials the raw
// path sees (same seeds, same streams), so its exact moments agree with
// Summarize on the materialised sample, for any worker count.
func TestStreamingDigestMatchesRawSample(t *testing.T) {
	g, err := graph.Complete(48)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		p := Params{Scale: Smoke, Seed: 11, Workers: workers}
		raw, err := coverTimes(context.Background(), g, core.DefaultBranching, 120, p, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		want, err := summarizeOrErr(raw, "cover times")
		if err != nil {
			t.Fatal(err)
		}
		dg, err := coverDigest(context.Background(), g, core.DefaultBranching, 120, p, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		got, err := digestOrErr(dg, "cover times")
		if err != nil {
			t.Fatal(err)
		}
		if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
			t.Fatalf("workers=%d: digest %+v, raw %+v", workers, got, want)
		}
		if math.Abs(got.Mean-want.Mean) > 1e-9 || math.Abs(got.Variance-want.Variance) > 1e-6 {
			t.Fatalf("workers=%d: digest moments %+v, raw %+v", workers, got, want)
		}
	}
}

// TestStreamingDigestDeterministicAcrossWorkers pins the acceptance
// criterion: bit-identical summaries for Workers=1 and Workers=many.
func TestStreamingDigestDeterministicAcrossWorkers(t *testing.T) {
	g, err := graph.Complete(48)
	if err != nil {
		t.Fatal(err)
	}
	summaries := make([]stats.DigestSummary, 0, 3)
	for _, workers := range []int{1, 4, 16} {
		p := Params{Scale: Smoke, Seed: 5, Workers: workers}
		dg, err := infectionDigest(context.Background(), g, core.DefaultBranching, 150, p, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		s, err := dg.Summary()
		if err != nil {
			t.Fatal(err)
		}
		summaries = append(summaries, s)
	}
	for i := 1; i < len(summaries); i++ {
		if summaries[i] != summaries[0] {
			t.Fatalf("summary %d = %+v, want bit-identical to %+v", i, summaries[i], summaries[0])
		}
	}
}

func TestParseScale(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Scale
	}{{"smoke", Smoke}, {"quick", Quick}, {"full", Full}} {
		got, err := ParseScale(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseScale(%q) = (%v, %v)", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("unknown scale should fail")
	}
}

func TestRegistryCompleteAndOrdered(t *testing.T) {
	exps := Registry()
	if len(exps) != 15 {
		t.Fatalf("registry has %d experiments, want 15", len(exps))
	}
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15"}
	for i, e := range exps {
		if e.ID != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete: %+v", e.ID, e)
		}
	}
}

func TestLookup(t *testing.T) {
	e, err := Lookup("E4")
	if err != nil || e.ID != "E4" {
		t.Fatalf("Lookup(E4) = (%v, %v)", e.ID, err)
	}
	if _, err := Lookup("E99"); err == nil {
		t.Fatal("unknown id should fail")
	}
}

// TestExperimentsSmoke runs every experiment end-to-end at smoke scale and
// checks it renders a table without error. This is the integration test of
// the whole pipeline (graph → spectral → core/baseline → sim → stats →
// table).
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke experiments take a few seconds")
	}
	p := Params{Scale: Smoke, Seed: 7}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := e.Run(context.Background(), &buf, p); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, e.ID) {
				t.Fatalf("%s output missing its title header:\n%s", e.ID, out)
			}
			if !strings.Contains(out, "---") {
				t.Fatalf("%s produced no table:\n%s", e.ID, out)
			}
		})
	}
}

func TestRunAllStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	if err := RunAll(ctx, &buf, Params{Scale: Smoke, Seed: 1}); err == nil {
		t.Fatal("cancelled RunAll should fail")
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Scale != Smoke {
		t.Fatalf("default scale = %v", p.Scale)
	}
}

func TestPick(t *testing.T) {
	if got := pick(Smoke, 1, 2, 3); got != 1 {
		t.Fatalf("smoke pick = %d", got)
	}
	if got := pick(Quick, 1, 2, 3); got != 2 {
		t.Fatalf("quick pick = %d", got)
	}
	if got := pick(Full, 1, 2, 3); got != 3 {
		t.Fatalf("full pick = %d", got)
	}
}

func TestIntSqrt(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 0}, {1, 1}, {3, 1}, {4, 2}, {15, 3}, {16, 4}, {1024, 32}, {1023, 31},
	} {
		if got := intSqrt(tc.in); got != tc.want {
			t.Fatalf("intSqrt(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
