package expt

import (
	"context"
	"io"
	"math"

	"cobrawalk/internal/core"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// e5Experiment reproduces Lemma 1 and Corollary 1: the one-step expected
// growth of the BIPS infected set satisfies
//
//	E(|A_{t+1}| | A_t = A) >= |A|·(1 + c·(1-λ²)·(1-|A|/n)),
//
// with c = 1 for k = 2 and c = ρ for branching 1+ρ. For random infected
// sets across a grid of sizes the exact conditional expectation (computed
// in closed form, no sampling) is compared with the spectral bound; the
// margin column is exact/bound - 1, which the lemma requires to be >= 0.
func e5Experiment() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "One-step growth bound for BIPS (Lemma 1, Corollary 1)",
		Claim: "Lemma 1: E(|A_{t+1}| | A_t=A) ≥ |A|(1+(1-λ²)(1-|A|/n)); Corollary 1 scales the gain by ρ.",
		Run:   runE5,
	}
}

func runE5(ctx context.Context, w io.Writer, p Params) error {
	p = p.withDefaults()
	gr := rng.NewStream(p.Seed, 0xe5)
	n := pick(p.Scale, 256, 1024, 4096)
	repeats := pick(p.Scale, 3, 5, 10)

	expander, err := graph.RandomRegularConnected(n, 8, gr)
	if err != nil {
		return err
	}
	side := intSqrt(n)
	torus, err := graph.Torus(side, side)
	if err != nil {
		return err
	}
	complete, err := graph.Complete(pick(p.Scale, 64, 128, 256))
	if err != nil {
		return err
	}
	graphs := []*graph.Graph{expander, torus, complete}

	branchings := []core.Branching{{K: 2}, {K: 1, Rho: 0.5}}
	tbl := NewTable("E5: exact E(|A_{t+1}|) vs spectral lower bound, random sets",
		"graph", "branching", "λmax", "|A|/n", "exact E", "bound", "margin", "min-margin-ok")
	for _, g := range graphs {
		lambda, err := measureLambda(g)
		if err != nil {
			return err
		}
		gn := g.N()
		for _, br := range branchings {
			for _, fracPct := range []int{1, 10, 25, 50, 75, 95} {
				if err := ctx.Err(); err != nil {
					return err
				}
				size := gn * fracPct / 100
				if size < 1 {
					size = 1
				}
				worstMargin := math.Inf(1)
				var worstExact, worstBound float64
				for rep := 0; rep < repeats; rep++ {
					set, err := core.RandomInfectedSet(g, 0, size, gr)
					if err != nil {
						return err
					}
					exact, err := core.ExactExpectedGrowth(g, 0, set, br)
					if err != nil {
						return err
					}
					bound := core.Lemma1Bound(size, gn, lambda, br)
					margin := exact/bound - 1
					if margin < worstMargin {
						worstMargin, worstExact, worstBound = margin, exact, bound
					}
				}
				ok := "yes"
				if worstMargin < -1e-9 {
					ok = "VIOLATED"
				}
				tbl.AddRow(g.Name(), br.String(), f4(lambda),
					f2(float64(size)/float64(gn)), f2(worstExact), f2(worstBound),
					f4(worstMargin), ok)
			}
		}
	}
	tbl.AddNote("margin = exact/bound - 1; Lemma 1 asserts margin ≥ 0 for every set A (worst of %d random sets shown)", repeats)
	return tbl.Emit(w, p)
}
