package expt

import (
	"context"
	"io"
	"math"

	"cobrawalk/internal/core"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/process"
	"cobrawalk/internal/rng"
)

// e5Experiment reproduces Lemma 1 and Corollary 1: the one-step expected
// growth of the BIPS infected set satisfies
//
//	E(|A_{t+1}| | A_t = A) >= |A|·(1 + c·(1-λ²)·(1-|A|/n)),
//
// with c = 1 for k = 2 and c = ρ for branching 1+ρ. For random infected
// sets across a grid of sizes the exact conditional expectation (computed
// in closed form, no sampling) is compared with the spectral bound; the
// margin column is exact/bound - 1, which the lemma requires to be >= 0.
// A third estimate cross-checks the closed form against the simulator
// itself: the registry bips process is Reset to the same set and stepped
// once, and the sampled mean |A_1| must track the exact expectation —
// tying the lemma's algebra to the process layer every other experiment
// runs on.
func e5Experiment() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "One-step growth bound for BIPS (Lemma 1, Corollary 1)",
		Claim: "Lemma 1: E(|A_{t+1}| | A_t=A) ≥ |A|(1+(1-λ²)(1-|A|/n)); Corollary 1 scales the gain by ρ.",
		Run:   runE5,
	}
}

// sampledGrowth estimates E(|A_1| | A_0 = set) by driving the registry
// bips process: Reset to the set (set[0] is the persistent source), one
// Step, read |A_1|; averaged over samples draws.
func sampledGrowth(p process.Process, set []int32, samples int, r *rng.Rand) (float64, error) {
	var sum float64
	for i := 0; i < samples; i++ {
		if err := p.Reset(set...); err != nil {
			return 0, err
		}
		p.Step(r)
		sum += float64(p.ReachedCount())
	}
	return sum / float64(samples), nil
}

func runE5(ctx context.Context, w io.Writer, p Params) error {
	p = p.withDefaults()
	gr := rng.NewStream(p.Seed, 0xe5)
	n := pick(p.Scale, 256, 1024, 4096)
	repeats := pick(p.Scale, 3, 5, 10)

	expander, err := graph.RandomRegularConnected(n, 8, gr)
	if err != nil {
		return err
	}
	side := intSqrt(n)
	torus, err := graph.Torus(side, side)
	if err != nil {
		return err
	}
	complete, err := graph.Complete(pick(p.Scale, 64, 128, 256))
	if err != nil {
		return err
	}
	graphs := []*graph.Graph{expander, torus, complete}

	samples := pick(p.Scale, 24, 48, 96)

	branchings := []core.Branching{{K: 2}, {K: 1, Rho: 0.5}}
	tbl := NewTable("E5: exact E(|A_{t+1}|) vs spectral lower bound, random sets",
		"graph", "branching", "λmax", "|A|/n", "exact E", "sampled E", "bound", "margin", "min-margin-ok")
	for _, g := range graphs {
		lambda, err := measureLambda(g)
		if err != nil {
			return err
		}
		gn := g.N()
		for _, br := range branchings {
			proc, err := process.New(process.BIPS, g, process.Config{Branching: br})
			if err != nil {
				return err
			}
			for _, fracPct := range []int{1, 10, 25, 50, 75, 95} {
				if err := ctx.Err(); err != nil {
					return err
				}
				size := gn * fracPct / 100
				if size < 1 {
					size = 1
				}
				worstMargin := math.Inf(1)
				var worstExact, worstBound, worstSampled float64
				for rep := 0; rep < repeats; rep++ {
					set, err := core.RandomInfectedSet(g, 0, size, gr)
					if err != nil {
						return err
					}
					exact, err := core.ExactExpectedGrowth(g, 0, set, br)
					if err != nil {
						return err
					}
					sampled, err := sampledGrowth(proc, set, samples, gr)
					if err != nil {
						return err
					}
					bound := core.Lemma1Bound(size, gn, lambda, br)
					margin := exact/bound - 1
					if margin < worstMargin {
						worstMargin, worstExact, worstBound, worstSampled = margin, exact, bound, sampled
					}
				}
				ok := "yes"
				if worstMargin < -1e-9 {
					ok = "VIOLATED"
				}
				tbl.AddRow(g.Name(), br.String(), f4(lambda),
					f2(float64(size)/float64(gn)), f2(worstExact), f2(worstSampled), f2(worstBound),
					f4(worstMargin), ok)
			}
		}
	}
	tbl.AddNote("margin = exact/bound - 1; Lemma 1 asserts margin ≥ 0 for every set A (worst of %d random sets shown)", repeats)
	tbl.AddNote("sampled E = mean |A_1| over %d one-step bips runs from the same set (process-layer cross-check of the closed form)", samples)
	return tbl.Emit(w, p)
}
