package expt

import (
	"context"
	"io"

	"cobrawalk/internal/core"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/stats"
)

// e7Experiment probes the (1-λ) dependence of Theorems 1-2. The bound is
// O(log n/(1-λ)³); sweeping graphs of (nearly) fixed size but shrinking
// spectral gap — tori with increasingly skewed aspect ratios and
// consecutive-offset circulants — and regressing cover time against
// 1/(1-λ) in log-log space yields the empirical exponent. The paper's
// cubic is an upper bound, so the measured exponent must not exceed ~3;
// empirically it is much closer to 1-2, i.e. the bound is conservative.
func e7Experiment() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "Spectral-gap dependence: cover time vs 1/(1-λ)",
		Claim: "Theorems 1-2 bound cover/infection time by O(log n · (1-λ)^{-3}); the exponent 3 is an upper bound.",
		Run:   runE7,
	}
}

// oddify rounds n down to the nearest odd integer >= 3.
func oddify(n int) int {
	if n%2 == 0 {
		n--
	}
	if n < 3 {
		n = 3
	}
	return n
}

func runE7(ctx context.Context, w io.Writer, p Params) error {
	p = p.withDefaults()
	trials := pick(p.Scale, 15, 40, 80)

	// Family A: tori with a sweep of aspect ratios at (nearly) fixed n.
	// Sides are forced odd: an even cycle factor would make the torus
	// bipartite (λ_n = -1, so λ_max = 1 regardless of the aspect), which
	// is the separate scope boundary studied in E10.
	nTarget := pick(p.Scale, 1024, 4096, 16384)
	var graphs []*graph.Graph
	for _, aspect := range []int{1, 2, 4, 8, 16} {
		long := oddify(intSqrt(nTarget) * aspect)
		short := oddify(nTarget / long)
		if short < 3 {
			continue
		}
		g, err := graph.Torus(long, short)
		if err != nil {
			return err
		}
		graphs = append(graphs, g)
	}
	// Family B: circulants with consecutive offsets 1..j at fixed n:
	// larger j widens the gap. j starts at 2 because offsets {1, 2}
	// introduce triangles, keeping the family non-bipartite even for
	// even n (j = 1 is the plain even cycle, which is bipartite).
	cn := pick(p.Scale, 512, 1024, 2048)
	for _, j := range []int{2, 4, 8, 16, 32} {
		offs := make([]int, j)
		for i := range offs {
			offs[i] = i + 1
		}
		g, err := graph.Circulant(cn, offs)
		if err != nil {
			return err
		}
		graphs = append(graphs, g)
	}

	tbl := NewTable("E7: cover time vs spectral gap (COBRA k=2)",
		"graph", "n", "λmax", "1/(1-λ)", "mean cover", "p95")
	var invGaps, means []float64
	for _, g := range graphs {
		if err := ctx.Err(); err != nil {
			return err
		}
		lambda, err := measureLambda(g)
		if err != nil {
			return err
		}
		gap := 1 - lambda
		if gap <= 1e-9 {
			continue // bipartite/disconnected instances are out of scope here
		}
		dg, err := coverDigest(ctx, g, core.DefaultBranching, trials, p, 1<<20)
		if err != nil {
			return err
		}
		s, err := digestOrErr(dg, "cover times")
		if err != nil {
			return err
		}
		tbl.AddRow(g.Name(), d(g.N()), f4(lambda), f2(1/gap), f2(s.Mean), f1(s.P95))
		invGaps = append(invGaps, 1/gap)
		means = append(means, s.Mean)
	}
	if len(invGaps) >= 3 {
		pw, err := stats.FitPower(invGaps, means)
		if err != nil {
			return err
		}
		tbl.AddNote("power fit: cover ≈ %.2f · (1/(1-λ))^%.3f (R²=%.4f)", pw.Coeff, pw.Exponent, pw.R2)
		verdict := "consistent with the O((1-λ)^{-3}) upper bound"
		if pw.Exponent > 3.2 {
			verdict = "EXCEEDS the cubic bound — investigate"
		}
		tbl.AddNote("measured exponent %.3f: %s", pw.Exponent, verdict)
	}
	return tbl.Emit(w, p)
}
