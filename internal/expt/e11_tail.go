package expt

import (
	"context"
	"io"
	"math"
	"sort"

	"cobrawalk/internal/core"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
	"cobrawalk/internal/stats"
)

// e11Experiment reproduces the restart argument of equation (1): the
// w.h.p. bound converts to an expectation bound because the cover-time
// tail decays geometrically — restarting after T rounds succeeds
// independently each epoch. Empirically, log P(cov > t) should fall on a
// straight line in t beyond the median; the fitted decay rate per T-epoch
// is reported.
func e11Experiment() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "Geometric tail of the cover time (equation (1) restart argument)",
		Claim: "Eq. (1): COV(u) ≤ T + O(1/n)·2T + ... = O(T) because P(cov > jT) decays geometrically in j.",
		Run:   runE11,
	}
}

func runE11(ctx context.Context, w io.Writer, p Params) error {
	p = p.withDefaults()
	n := pick(p.Scale, 512, 1024, 4096)
	trials := pick(p.Scale, 400, 2000, 10000)
	gr := rng.NewStream(p.Seed, 0xe11)
	g, err := graph.RandomRegularConnected(n, 8, gr)
	if err != nil {
		return err
	}
	covs, err := coverTimes(ctx, g, core.DefaultBranching, trials, p, 1<<18)
	if err != nil {
		return err
	}
	sort.Float64s(covs)
	s, err := summarizeOrErr(covs, "cover times")
	if err != nil {
		return err
	}

	tbl := NewTable("E11: empirical tail P(cov > t) on "+g.Name(),
		"t", "P(cov > t)", "log10 P")
	// Evaluate the survival function on a grid from the median to the max.
	lo := int(s.Median)
	hi := int(s.Max)
	var ts, logPs []float64
	for t := lo; t <= hi; t++ {
		// covs sorted ascending: count of elements > t.
		idx := sort.SearchFloat64s(covs, float64(t)+0.5)
		surv := float64(len(covs)-idx) / float64(len(covs))
		if surv <= 0 {
			break
		}
		tbl.AddRow(d(t), f4(surv), f2(math.Log10(surv)))
		ts = append(ts, float64(t))
		logPs = append(logPs, math.Log(surv))
	}
	if len(ts) >= 3 {
		fit, err := stats.LinearFit(ts, logPs)
		if err != nil {
			return err
		}
		tbl.AddNote("log-linear tail fit: log P(cov>t) ≈ %.3f·t %+.2f (R²=%.4f)", fit.Slope, fit.Intercept, fit.R2)
		if fit.Slope < 0 {
			perRound := math.Exp(fit.Slope)
			tbl.AddNote("per-round survival factor %.3f (geometric decay, as eq. (1) requires)", perRound)
			halfLife := math.Log(2) / -fit.Slope
			tbl.AddNote("tail half-life %.2f rounds vs mean cover %.2f", halfLife, s.Mean)
		}
	}
	tbl.AddNote("mean %.2f, median %.0f, p95 %.0f, max %.0f over %d trials", s.Mean, s.Median, s.P95, s.Max, trials)
	return tbl.Emit(w, p)
}
