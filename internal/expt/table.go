// Package expt defines the reproduction experiments E1-E15: one per
// quantitative claim of the paper (Theorems 1-4, Lemmas 1-4, the Dutta et
// al. comparisons quoted in its introduction, its scope boundaries, and
// the extension workloads catalogued in EXPERIMENTS.md). Each experiment
// builds its workload from internal/graph, measures the spectral parameter
// λ it is conditioned on, runs the processes from internal/core and
// internal/baseline under internal/sim, fits the claimed scaling law with
// internal/stats, and renders a table.
//
// Ensemble experiments stream trial results through sim.Reduce into
// constant-memory stats.Digest accumulators, so full-scale runs (10⁵+
// trials) never materialise a per-trial slice; only experiments that need
// the raw sample (E11's tail plot, bootstrap CIs) use sim.Run. Tables
// render as aligned ASCII, CSV or NDJSON depending on Params.Format.
//
// The experiments are exposed through a registry consumed by
// cmd/experiments and by the repository-level benchmark harness.
package expt

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders an aligned ASCII table (or CSV).
type Table struct {
	title string
	cols  []string
	rows  [][]string
	notes []string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{title: title, cols: cols}
}

// AddRow appends a row; it pads or truncates to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.cols))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a free-form note rendered under the table (fit results,
// verdicts).
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.cols))
	for i, c := range t.cols {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.cols)
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.notes {
		sb.WriteString("  ")
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

// Emit renders the table in the format selected by p — the single call
// every experiment funnels its output through, so one flag switches the
// whole suite between human-readable tables and machine-readable records.
func (t *Table) Emit(w io.Writer, p Params) error {
	switch p.Format {
	case FormatCSV:
		return t.RenderCSV(w)
	case FormatJSON:
		return t.RenderJSON(w)
	default:
		return t.Render(w)
	}
}

// RenderJSON writes the table as a single JSON object (one NDJSON line):
// {"title": ..., "columns": [...], "rows": [[...], ...], "notes": [...]}.
func (t *Table) RenderJSON(w io.Writer) error {
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	notes := t.notes
	if notes == nil {
		notes = []string{}
	}
	blob, err := json.Marshal(map[string]any{
		"title":   t.title,
		"columns": t.cols,
		"rows":    rows,
		"notes":   notes,
	})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", blob)
	return err
}

// RenderCSV writes the rows as CSV (title and notes omitted).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.cols); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
