package expt

import (
	"context"
	"fmt"
	"io"

	"cobrawalk/internal/core"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// e4Experiment reproduces Theorem 4, the exact duality
// P̂(Hit_u(v) > t) = P(u ∉ A_t | A_0 = {v}). On graphs small enough for the
// subset-space solver the identity is checked exactly (both sides computed
// independently over all 2^n start sets); on larger graphs both sides are
// estimated by Monte Carlo and compared in units of standard error.
func e4Experiment() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "COBRA/BIPS duality (exact on small graphs, Monte Carlo on larger)",
		Claim: "Theorem 4: P̂(Hit_C(v) > t) = P(C ∩ A_t = ∅ | A_0 = v) for every C, t.",
		Run:   runE4,
	}
}

func runE4(ctx context.Context, w io.Writer, p Params) error {
	p = p.withDefaults()

	// Exact phase: full subset-space verification.
	exactCases := []struct {
		name string
		mk   func() (*graph.Graph, error)
	}{
		{"K4", func() (*graph.Graph, error) { return graph.Complete(4) }},
		{"C6", func() (*graph.Graph, error) { return graph.Cycle(6) }},
		{"prism", graph.PrismGraph},
		{"petersen", graph.Petersen},
		{"Q3", func() (*graph.Graph, error) { return graph.Hypercube(3) }},
		{"star-K1,5 (irregular)", func() (*graph.Graph, error) { return graph.Star(6) }},
	}
	horizon := pick(p.Scale, 6, 8, 10)
	branchings := []core.Branching{{K: 2}, {K: 1, Rho: 0.5}}

	tbl := NewTable("E4a: exact duality over all 2^n start sets",
		"graph", "n", "branching", "horizon", "max |LHS-RHS|", "states checked")
	for _, tc := range exactCases {
		g, err := tc.mk()
		if err != nil {
			return err
		}
		for _, br := range branchings {
			if err := ctx.Err(); err != nil {
				return err
			}
			ed, err := core.ComputeExactDuality(g, 0, horizon, br)
			if err != nil {
				return err
			}
			states := (horizon + 1) * (1 << g.N())
			tbl.AddRow(tc.name, d(g.N()), br.String(), d(horizon),
				fmt.Sprintf("%.2e", ed.MaxAbsError()), d(states))
		}
	}
	tbl.AddNote("Theorem 4 holds exactly; residuals are float64 roundoff (≲1e-12)")
	tbl.AddNote("the star rows show the duality does not require regularity (the proof never uses it)")
	if err := tbl.Emit(w, p); err != nil {
		return err
	}

	// Monte-Carlo phase on graphs beyond the exact solver's reach.
	trials := pick(p.Scale, 2000, 10000, 40000)
	mcN := pick(p.Scale, 64, 128, 256)
	gr := rng.NewStream(p.Seed, 0xe4)
	g, err := graph.RandomRegularConnected(mcN, 3, gr)
	if err != nil {
		return err
	}
	tbl2 := NewTable("E4b: Monte-Carlo duality on larger graphs",
		"graph", "u", "v", "trials", "horizon", "max |Δ|", "max z-score")
	pairs := [][2]int32{{1, 0}, {int32(mcN / 2), 0}, {int32(mcN - 1), int32(mcN / 3)}}
	for _, uv := range pairs {
		est, err := core.EstimateDuality(g, uv[0], uv[1], pick(p.Scale, 8, 10, 12), trials, core.DefaultBranching, p.Seed)
		if err != nil {
			return err
		}
		tbl2.AddRow(g.Name(), d(int(uv[0])), d(int(uv[1])), d(trials),
			d(est.T), f4(est.MaxAbsDiff()), f2(est.MaxZScore()))
	}
	tbl2.AddNote("under Theorem 4 the max z-score behaves like the max of ~horizon standard normals (≲3)")
	return tbl2.Emit(w, p)
}
