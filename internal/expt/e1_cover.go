package expt

import (
	"context"
	"io"
	"math"

	"cobrawalk/internal/stats"
	"cobrawalk/internal/sweep"
)

// e1Experiment reproduces Theorem 1: the COBRA cover time with k = 2 on
// regular expanders is O(log n), independent of the degree r for
// 3 <= r <= n-1. The workload is two declarative sweeps — random
// r-regular expanders (r = 3, 8, 16) and the complete graph (r = n-1)
// over doubling n — run by the sweep engine with λ measurement enabled;
// the experiment reports the mean and p95 cover times with the measured λ
// of each instance and fits cover = a·log₂(n) + b per family.
// Degree-independence shows up as near-identical slopes across families;
// the theorem predicts high R² for the logarithmic law.
func e1Experiment() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "COBRA k=2 cover time on expanders is O(log n), independent of degree",
		Claim: "Theorem 1: COV(G) = O(log n / (1-λ)³); for expanders (1-λ = Ω(1)) this is O(log n) for all 3 ≤ r ≤ n-1.",
		Run:   runE1,
	}
}

func runE1(ctx context.Context, w io.Writer, p Params) error {
	p = p.withDefaults()
	sizes := pick(p.Scale,
		[]int{128, 256, 512},
		[]int{256, 512, 1024, 2048, 4096},
		[]int{1024, 2048, 4096, 8192, 16384, 32768})
	trials := pick(p.Scale, 20, 50, 100)
	completeCap := pick(p.Scale, 512, 2048, 4096)

	specs := []sweep.Spec{
		{
			Name:     "e1-expanders",
			Families: []string{"rand-reg"},
			Sizes:    sizes,
			Degrees:  []int{3, 8, 16},
		},
		{
			Name:     "e1-complete",
			Families: []string{"complete"},
			Sizes:    capSizes(sizes, completeCap),
		},
	}

	tbl := NewTable("E1: COBRA k=2 cover time",
		"family", "n", "r", "λmax", "trials", "mean", "±95%", "p95", "max", "mean/log2(n)")
	slopes := make(map[string]stats.Fit)
	lambdas := make(map[string]float64) // largest measured λ per family
	for _, spec := range specs {
		spec.Trials = trials
		spec.Seed = p.Seed
		spec.MaxRounds = 1 << 16
		spec.MeasureLambda = true
		rep, err := sweep.Run(ctx, spec, sweep.Options{TrialWorkers: p.Workers})
		if err != nil {
			return err
		}
		// Expansion order is degree-major, size-minor, so results form
		// contiguous per-family groups with ascending sizes.
		var ns, means []float64
		flush := func(label string) error {
			if len(ns) < 2 {
				ns, means = nil, nil
				return nil
			}
			fit, err := stats.FitLogN(ns, means)
			if err != nil {
				return err
			}
			slopes[label] = fit
			tbl.AddNote("%-12s cover ≈ %.3f·log₂(n) %+.3f  (R²=%.4f)", label, fit.Slope, fit.Intercept, fit.R2)
			ns, means = nil, nil
			return nil
		}
		prev := ""
		for _, res := range rep.Results {
			label := familyLabel(res.Point)
			if prev != "" && label != prev {
				if err := flush(prev); err != nil {
					return err
				}
			}
			prev = label
			if res.Lambda > lambdas[label] {
				lambdas[label] = res.Lambda
			}
			s := res.Metric(sweep.MetricRounds)
			ci, err := s.CI(0.95)
			if err != nil {
				return err
			}
			tbl.AddRow(label, d(res.GraphN), d(res.GraphDegree), f4(res.Lambda), d(s.N),
				f2(s.Mean), f2(ci.Hi-s.Mean), f1(s.P95), f1(s.Max),
				f2(s.Mean/math.Log2(float64(res.GraphN))))
			ns = append(ns, float64(res.GraphN))
			means = append(means, s.Mean)
		}
		if err := flush(prev); err != nil {
			return err
		}
	}
	// Degree-independence verdict. Theorem 1's constant depends on the
	// spectral gap, not the degree, so compare slopes among the families
	// whose measured λ is comfortable (λ ≤ 0.8); small-gap families
	// (3-regular graphs have λ ≈ 0.94) are allowed a larger constant by
	// the (1-λ)^{-3} factor.
	minS, maxS := math.Inf(1), math.Inf(-1)
	count := 0
	for name, f := range slopes {
		if lambdas[name] > 0.8 {
			continue
		}
		minS = math.Min(minS, f.Slope)
		maxS = math.Max(maxS, f.Slope)
		count++
	}
	if count > 1 && minS > 0 {
		tbl.AddNote("degree independence (families with λ ≤ 0.8, r spanning 8..n-1): slope spread %.3f..%.3f (ratio %.2f)",
			minS, maxS, maxS/minS)
		tbl.AddNote("small-gap families (e.g. r=3, λ≈0.94) carry a larger constant through (1-λ), not through r — exactly Theorem 1's form")
	}
	return tbl.Emit(w, p)
}

// capSizes returns the sizes not exceeding cap (dense families are too
// expensive at the largest scales).
func capSizes(sizes []int, limit int) []int {
	var out []int
	for _, n := range sizes {
		if n <= limit {
			out = append(out, n)
		}
	}
	return out
}
