package expt

import (
	"context"
	"fmt"
	"io"
	"math"

	"cobrawalk/internal/core"
	"cobrawalk/internal/process"
	"cobrawalk/internal/rng"
	"cobrawalk/internal/sim"
	"cobrawalk/internal/stats"
)

// e6Experiment reproduces the three-phase structure of the proof of
// Theorem 2: Lemma 2 (grow A_t from 1 past m = Θ(log n)), Lemma 3 (from m
// to 9n/10), Lemma 4 (finish). Each phase's round count is measured on
// random 8-regular expanders over doubling n and fitted against log n —
// all three lemmas predict O(log n) rounds per phase at constant gap.
//
// The trajectories come from the metrics layer: each trial worker owns a
// registry bips process with a Collector attached, whose per-round |A_t|
// series feeds core.DetectPhases; trials stream through sim.Reduce, so
// the ensemble runs in constant memory at any trial count.
func e6Experiment() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "Three-phase BIPS trajectory (Lemmas 2-4)",
		Claim: "Lemmas 2-4: each phase (1→m, m→0.9n, 0.9n→n) takes O(log n) rounds on constant-gap expanders.",
		Run:   runE6,
	}
}

func runE6(ctx context.Context, w io.Writer, p Params) error {
	p = p.withDefaults()
	sizes := pick(p.Scale,
		[]int{256, 512, 1024},
		[]int{512, 1024, 2048, 4096},
		[]int{1024, 2048, 4096, 8192, 16384, 32768})
	trials := pick(p.Scale, 20, 50, 100)
	fam := randomRegularFamily(8)
	gr := rng.NewStream(p.Seed, 0xe6)

	tbl := NewTable("E6: BIPS phase round counts on rand-8-reg (means over trials)",
		"n", "m=⌈4·log2 n⌉", "phase1 (1→m)", "phase2 (m→.9n)", "phase3 (.9n→n)", "total")
	type phases struct{ p1, p2, p3, total float64 }
	red := sim.Reducer[phases, [4]stats.Stream]{
		New: func() [4]stats.Stream { return [4]stats.Stream{} },
		Fold: func(acc [4]stats.Stream, _ int, v phases) [4]stats.Stream {
			acc[0].Add(v.p1)
			acc[1].Add(v.p2)
			acc[2].Add(v.p3)
			acc[3].Add(v.total)
			return acc
		},
		Merge: func(into, from [4]stats.Stream) ([4]stats.Stream, error) {
			for i := range into {
				into[i].Merge(from[i])
			}
			return into, nil
		},
	}
	type bipsState struct {
		p   process.Process
		col *process.Collector
	}
	var ns, p1s, p2s, p3s []float64
	for _, n := range sizes {
		g, err := fam.build(n, gr)
		if err != nil {
			return err
		}
		smallTarget := int(math.Ceil(4 * math.Log2(float64(g.N()))))
		if _, err := process.New(process.BIPS, g, process.Config{}); err != nil {
			return err
		}
		acc, err := sim.ReduceWithState(ctx,
			sim.Spec{Trials: trials, Seed: p.Seed ^ 0xe6, Workers: p.Workers},
			red,
			func() *bipsState {
				col := process.NewCollector(g.N())
				b, err := process.New(process.BIPS, g, process.Config{Observer: col.Observe})
				if err != nil {
					panic(err) // unreachable: validated above
				}
				return &bipsState{p: b, col: col}
			},
			func(st *bipsState, trial int, r *rng.Rand) (phases, error) {
				out, err := process.RunCollect(ctx, st.p, st.col, r, 1<<16, 0)
				if err != nil {
					return phases{}, err
				}
				if !out.Done {
					return phases{}, fmt.Errorf("uninfected run on %s", g.Name())
				}
				pt := core.DetectPhases(st.col.Active(), g.N(), smallTarget)
				a, bb, c := pt.PhaseLengths()
				if a < 0 || bb < 0 || c < 0 {
					return phases{}, fmt.Errorf("phase detection failed: %+v", pt)
				}
				return phases{float64(a), float64(bb), float64(c), float64(out.Rounds)}, nil
			})
		if err != nil {
			return err
		}
		m1, m2, m3, mt := acc[0].Mean(), acc[1].Mean(), acc[2].Mean(), acc[3].Mean()
		tbl.AddRow(d(g.N()), d(smallTarget), f2(m1), f2(m2), f2(m3), f2(mt))
		ns = append(ns, float64(g.N()))
		p1s = append(p1s, m1)
		p2s = append(p2s, m2)
		p3s = append(p3s, m3)
	}
	for _, ph := range []struct {
		name string
		ys   []float64
	}{{"phase1", p1s}, {"phase2", p2s}, {"phase3", p3s}} {
		if len(ns) >= 2 {
			fit, err := stats.FitLogN(ns, ph.ys)
			if err != nil {
				return err
			}
			tbl.AddNote("%s ≈ %.3f·log₂(n) %+.3f (R²=%.4f)", ph.name, fit.Slope, fit.Intercept, fit.R2)
		}
	}
	tbl.AddNote("Lemmas 2-4 predict all three phases are O(log n) at constant spectral gap")
	return tbl.Emit(w, p)
}
