package expt

import (
	"context"
	"io"

	"cobrawalk/internal/core"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// e15Experiment validates the *engine* of Lemma 2, not just its
// conclusion: the proof shows the exponential moment
//
//	G_t(φ) = E[e^{-φ(|A_t|-|A_0|)}·1{|A_s| ≤ m for s < t}]
//
// contracts by a factor e^{log(1+x)-x} < 1 per round (φ = log(1+x),
// x = (1-λ)/2), which is what makes the small-set phase finish in
// O(m/(1-λ) + log n/(1-λ)²) rounds. The experiment estimates G_t by Monte
// Carlo on expanders and checks the paper's bound dominates it at every t.
func e15Experiment() Experiment {
	return Experiment{
		ID:    "E15",
		Title: "Lemma 2's exponential-moment contraction, measured directly",
		Claim: "Lemma 2 (proof): G_t(φ) ≤ exp(t·(log(1+x)-x)) with φ = log(1+x), x = (1-λ)/2, for |A| ≤ m ≤ n/2.",
		Run:   runE15,
	}
}

func runE15(ctx context.Context, w io.Writer, p Params) error {
	p = p.withDefaults()
	n := pick(p.Scale, 512, 2048, 8192)
	trials := pick(p.Scale, 2000, 10000, 40000)
	tMax := pick(p.Scale, 12, 16, 20)
	gr := rng.NewStream(p.Seed, 0xe15)

	tbl := NewTable("E15: Monte-Carlo G_t(φ) vs the Lemma 2 bound",
		"graph", "t", "G_t estimate", "SE", "bound e^{t(log(1+x)-x)}", "bound holds")
	for _, deg := range []int{8, 16} {
		g, err := graph.RandomRegularConnected(n, deg, gr)
		if err != nil {
			return err
		}
		lambda, err := measureLambda(g)
		if err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		m := g.N() / 2
		mgf, err := core.EstimateLemma2MGF(g, 0, core.DefaultBranching, lambda, m, tMax, trials, p.Seed)
		if err != nil {
			return err
		}
		violations := 0
		for t := 0; t <= tMax; t += pick(p.Scale, 3, 4, 5) {
			bound := mgf.Bound(t)
			ok := "yes"
			if mgf.G[t] > bound+3*mgf.SE[t] {
				ok = "VIOLATED"
				violations++
			}
			tbl.AddRow(g.Name(), d(t), f4(mgf.G[t]), f4(mgf.SE[t]), f4(bound), ok)
		}
		tbl.AddNote("%s: φ = log(1+x) with x = (1-λ)/2 = %.4f; m = n/2 = %d; %d violations",
			g.Name(), mgf.X, m, violations)
	}
	tbl.AddNote("the measured moment decays much faster than the bound — Lemma 2's contraction is real and conservative")
	return tbl.Emit(w, p)
}
