package expt

import (
	"context"
	"io"
	"math"

	"cobrawalk/internal/core"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/stats"
)

// e10Experiment probes the scope boundary of Theorems 1-3: they require
// λ = max|λ_i| < 1, which excludes bipartite graphs (λ_n = -1). On
// hypercubes and complete bipartite graphs the bound is vacuous
// (T = log n/(1-λ)³ = ∞), yet the COBRA process itself still covers in
// O(log n) rounds: the failure is in the bound's parameterisation, not the
// process. This experiment documents that empirically — it is the paper's
// natural "future work" edge.
func e10Experiment() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "Outside the theorem: bipartite graphs (λ_max = 1)",
		Claim: "Theorems 1-3 require λ < 1 (non-bipartite); the process itself still covers bipartite expanders fast.",
		Run:   runE10,
	}
}

func runE10(ctx context.Context, w io.Writer, p Params) error {
	p = p.withDefaults()
	trials := pick(p.Scale, 20, 50, 100)

	var graphs []*graph.Graph
	dims := pick(p.Scale, []int{6, 8, 10}, []int{8, 10, 12}, []int{10, 12, 14, 16})
	for _, d := range dims {
		g, err := graph.Hypercube(d)
		if err != nil {
			return err
		}
		graphs = append(graphs, g)
	}
	halves := pick(p.Scale, []int{32, 128}, []int{64, 256, 1024}, []int{256, 1024, 4096})
	for _, h := range halves {
		g, err := graph.CompleteBipartite(h, h)
		if err != nil {
			return err
		}
		graphs = append(graphs, g)
	}

	tbl := NewTable("E10: COBRA k=2 on bipartite graphs (outside Theorem 1's hypothesis)",
		"graph", "n", "λmax", "theorem T", "mean cover", "p95", "mean/log2(n)")
	var ns, means []float64
	for _, g := range graphs {
		if err := ctx.Err(); err != nil {
			return err
		}
		lambda, err := measureLambda(g)
		if err != nil {
			return err
		}
		dg, err := coverDigest(ctx, g, core.DefaultBranching, trials, p, 1<<18)
		if err != nil {
			return err
		}
		s, err := digestOrErr(dg, "cover times")
		if err != nil {
			return err
		}
		theoremT := "∞ (gap 0)"
		if 1-lambda > 1e-9 {
			theoremT = f1(math.Log(float64(g.N())) / math.Pow(1-lambda, 3))
		}
		fn := float64(g.N())
		tbl.AddRow(g.Name(), d(g.N()), f4(lambda), theoremT,
			f2(s.Mean), f1(s.P95), f2(s.Mean/math.Log2(fn)))
		ns = append(ns, fn)
		means = append(means, s.Mean)
	}
	if len(ns) >= 2 {
		fit, err := stats.FitLogN(ns, means)
		if err != nil {
			return err
		}
		tbl.AddNote("all-bipartite fit: cover ≈ %.3f·log₂(n) %+.2f (R²=%.4f)", fit.Slope, fit.Intercept, fit.R2)
	}
	tbl.AddNote("the λ<1 hypothesis is about the proof's spectral machinery, not the process: COBRA still covers in O(log n)")
	return tbl.Emit(w, p)
}
