package expt

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Scale selects the size/trial budget of an experiment run.
type Scale int

const (
	// Smoke is the CI scale: seconds per experiment, used by tests.
	Smoke Scale = iota + 1
	// Quick is the development scale: tens of seconds in total.
	Quick
	// Full is the paper-reproduction scale: minutes in total.
	Full
)

// ParseScale converts a flag value into a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "smoke":
		return Smoke, nil
	case "quick":
		return Quick, nil
	case "full":
		return Full, nil
	default:
		return 0, fmt.Errorf("expt: unknown scale %q (want smoke, quick or full)", s)
	}
}

func (s Scale) String() string {
	switch s {
	case Smoke:
		return "smoke"
	case Quick:
		return "quick"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

// pick indexes a per-scale value table.
func pick[T any](s Scale, smoke, quick, full T) T {
	switch s {
	case Quick:
		return quick
	case Full:
		return full
	default:
		return smoke
	}
}

// Format selects the encoding experiments render their tables in.
type Format int

const (
	// FormatText renders aligned ASCII tables with notes (the default).
	FormatText Format = iota
	// FormatCSV renders bare CSV rows (title and notes omitted).
	FormatCSV
	// FormatJSON renders one JSON object per table (NDJSON), for
	// machine consumption of full-scale runs.
	FormatJSON
)

// ParseFormat converts a flag value into a Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "", "text":
		return FormatText, nil
	case "csv":
		return FormatCSV, nil
	case "json":
		return FormatJSON, nil
	default:
		return 0, fmt.Errorf("expt: unknown format %q (want text, csv or json)", s)
	}
}

func (f Format) String() string {
	switch f {
	case FormatCSV:
		return "csv"
	case FormatJSON:
		return "json"
	default:
		return "text"
	}
}

// Params carries the run-wide knobs every experiment receives.
type Params struct {
	Scale   Scale
	Seed    uint64
	Workers int
	// Format selects table encoding; the zero value is FormatText.
	Format Format
}

func (p Params) withDefaults() Params {
	if p.Scale == 0 {
		p.Scale = Smoke
	}
	return p
}

// Experiment is one reproducible unit of the evaluation.
type Experiment struct {
	// ID is the short handle ("E1").
	ID string
	// Title is the one-line description shown in listings.
	Title string
	// Claim cites the paper statement the experiment reproduces.
	Claim string
	// Run executes the experiment and renders its tables to w.
	Run func(ctx context.Context, w io.Writer, p Params) error
}

// Registry returns all experiments in ID order.
func Registry() []Experiment {
	exps := []Experiment{
		e1Experiment(),
		e2Experiment(),
		e3Experiment(),
		e4Experiment(),
		e5Experiment(),
		e6Experiment(),
		e7Experiment(),
		e8Experiment(),
		e9Experiment(),
		e10Experiment(),
		e11Experiment(),
		e12Experiment(),
		e13Experiment(),
		e14Experiment(),
		e15Experiment(),
	}
	sort.Slice(exps, func(i, j int) bool {
		// Numeric ID order: E1, E2, ..., E10, E11.
		return len(exps[i].ID) < len(exps[j].ID) ||
			(len(exps[i].ID) == len(exps[j].ID) && exps[i].ID < exps[j].ID)
	})
	return exps
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("expt: unknown experiment %q", id)
}

// Announce writes the experiment header: a "=== E1 ===" banner in text
// and CSV modes, a NDJSON record in JSON mode.
func Announce(w io.Writer, p Params, e Experiment) error {
	if p.Format == FormatJSON {
		blob, err := json.Marshal(map[string]string{
			"experiment": e.ID,
			"title":      e.Title,
			"claim":      e.Claim,
		})
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%s\n", blob)
		return err
	}
	_, err := fmt.Fprintf(w, "=== %s: %s ===\n%s\n\n", e.ID, e.Title, e.Claim)
	return err
}

// RunAll executes every experiment in order, stopping at the first error.
func RunAll(ctx context.Context, w io.Writer, p Params) error {
	for _, e := range Registry() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := Announce(w, p, e); err != nil {
			return err
		}
		if err := e.Run(ctx, w, p); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}
