package expt

import (
	"context"
	"fmt"
	"io"
	"sort"
)

// Scale selects the size/trial budget of an experiment run.
type Scale int

const (
	// Smoke is the CI scale: seconds per experiment, used by tests.
	Smoke Scale = iota + 1
	// Quick is the development scale: tens of seconds in total.
	Quick
	// Full is the paper-reproduction scale: minutes in total.
	Full
)

// ParseScale converts a flag value into a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "smoke":
		return Smoke, nil
	case "quick":
		return Quick, nil
	case "full":
		return Full, nil
	default:
		return 0, fmt.Errorf("expt: unknown scale %q (want smoke, quick or full)", s)
	}
}

func (s Scale) String() string {
	switch s {
	case Smoke:
		return "smoke"
	case Quick:
		return "quick"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

// pick indexes a per-scale value table.
func pick[T any](s Scale, smoke, quick, full T) T {
	switch s {
	case Quick:
		return quick
	case Full:
		return full
	default:
		return smoke
	}
}

// Params carries the run-wide knobs every experiment receives.
type Params struct {
	Scale   Scale
	Seed    uint64
	Workers int
}

func (p Params) withDefaults() Params {
	if p.Scale == 0 {
		p.Scale = Smoke
	}
	return p
}

// Experiment is one reproducible unit of the evaluation.
type Experiment struct {
	// ID is the short handle ("E1").
	ID string
	// Title is the one-line description shown in listings.
	Title string
	// Claim cites the paper statement the experiment reproduces.
	Claim string
	// Run executes the experiment and renders its tables to w.
	Run func(ctx context.Context, w io.Writer, p Params) error
}

// Registry returns all experiments in ID order.
func Registry() []Experiment {
	exps := []Experiment{
		e1Experiment(),
		e2Experiment(),
		e3Experiment(),
		e4Experiment(),
		e5Experiment(),
		e6Experiment(),
		e7Experiment(),
		e8Experiment(),
		e9Experiment(),
		e10Experiment(),
		e11Experiment(),
		e12Experiment(),
		e13Experiment(),
		e14Experiment(),
		e15Experiment(),
	}
	sort.Slice(exps, func(i, j int) bool {
		// Numeric ID order: E1, E2, ..., E10, E11.
		return len(exps[i].ID) < len(exps[j].ID) ||
			(len(exps[i].ID) == len(exps[j].ID) && exps[i].ID < exps[j].ID)
	})
	return exps
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("expt: unknown experiment %q", id)
}

// RunAll executes every experiment in order, stopping at the first error.
func RunAll(ctx context.Context, w io.Writer, p Params) error {
	for _, e := range Registry() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "=== %s: %s ===\n%s\n\n", e.ID, e.Title, e.Claim); err != nil {
			return err
		}
		if err := e.Run(ctx, w, p); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}
