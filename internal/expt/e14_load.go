package expt

import (
	"context"
	"fmt"
	"io"

	"cobrawalk/internal/core"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
	"cobrawalk/internal/sim"
	"cobrawalk/internal/stats"
)

// e14Experiment quantifies the per-vertex transmission budget that
// motivates COBRA (§1): not just total messages, but how the send load is
// distributed over vertices. Every COBRA activation sends exactly k
// messages and informed vertices go quiet between activations, so the send
// load per vertex is k·(activations) with activations ≈ cover-time-bounded;
// push keeps every informed vertex sending every round, so early-informed
// vertices accumulate Θ(cover time) sends. The table reports the mean and
// maximum per-vertex sends for both protocols, and COBRA's delivery
// (receive) balance.
func e14Experiment() Experiment {
	return Experiment{
		ID:    "E14",
		Title: "Per-vertex load balance: COBRA's budget vs push's busy vertices",
		Claim: "§1 (extension): COBRA limits transmissions per vertex per step; this measures the whole-run per-vertex load.",
		Run:   runE14,
	}
}

func runE14(ctx context.Context, w io.Writer, p Params) error {
	p = p.withDefaults()
	n := pick(p.Scale, 512, 2048, 8192)
	trials := pick(p.Scale, 15, 40, 80)
	gr := rng.NewStream(p.Seed, 0xe14)
	g, err := graph.RandomRegularConnected(n, 8, gr)
	if err != nil {
		return err
	}

	tbl := NewTable(fmt.Sprintf("E14: per-vertex send load on %s (means over %d runs)", g.Name(), trials),
		"protocol", "rounds", "total sends", "mean sends/vertex", "max sends/vertex", "max duty cycle")

	// COBRA k=2 with load tracking.
	type loadOut struct {
		rounds, total, maxSend, maxRecv, gini float64
	}
	if _, err := core.NewCobra(g, core.WithLoadCounts()); err != nil {
		return err
	}
	cres, err := sim.RunWithState(ctx, sim.Spec{Trials: trials, Seed: p.Seed ^ 0xe14, Workers: p.Workers},
		func() *core.Cobra {
			c, err := core.NewCobra(g, core.WithLoadCounts(), core.WithMaxRounds(1<<18))
			if err != nil {
				panic(err) // unreachable: validated above
			}
			return c
		},
		func(c *core.Cobra, trial int, r *rng.Rand) (loadOut, error) {
			out, err := c.Run(0, r)
			if err != nil {
				return loadOut{}, err
			}
			if !out.Covered {
				return loadOut{}, fmt.Errorf("uncovered run")
			}
			var maxSend, maxRecv int64
			sends := make([]float64, len(out.Activations))
			for v := range out.Activations {
				send := 2 * out.Activations[v] // k = 2 messages per activation
				sends[v] = float64(send)
				if send > maxSend {
					maxSend = send
				}
				if out.Deliveries[v] > maxRecv {
					maxRecv = out.Deliveries[v]
				}
			}
			gini, err := stats.Gini(sends)
			if err != nil {
				return loadOut{}, err
			}
			return loadOut{float64(out.CoverTime), float64(out.Transmissions), float64(maxSend), float64(maxRecv), gini}, nil
		})
	if err != nil {
		return err
	}
	cRounds := stats.Mean(sim.Floats(cres, func(o loadOut) float64 { return o.rounds }))
	cTotal := stats.Mean(sim.Floats(cres, func(o loadOut) float64 { return o.total }))
	cMax := stats.Mean(sim.Floats(cres, func(o loadOut) float64 { return o.maxSend }))
	cMean := cTotal / float64(n)
	// Duty cycle: sends by the busiest vertex relative to the protocol's
	// per-round cap (k) over the whole run — 1.0 means "never rests".
	cDuty := cMax / (2 * cRounds)
	tbl.AddRow("COBRA k=2", f2(cRounds), f1(cTotal), f2(cMean), f2(cMax), f2(cDuty))
	cMaxRecv := stats.Mean(sim.Floats(cres, func(o loadOut) float64 { return o.maxRecv }))

	// Push: per-vertex sends = rounds since the vertex was informed, which
	// we can compute from the protocol's structure: a vertex informed at
	// round t sends exactly (rounds - t) messages. Reuse the COBRA hit
	// recorder by running push manually here.
	pres, err := sim.Run(ctx, sim.Spec{Trials: trials, Seed: p.Seed ^ 0x41, Workers: p.Workers},
		func(trial int, r *rng.Rand) (loadOut, error) {
			rounds, total, maxSend, err := pushWithLoad(g, 0, r)
			if err != nil {
				return loadOut{}, err
			}
			return loadOut{rounds: float64(rounds), total: float64(total), maxSend: float64(maxSend)}, nil
		})
	if err != nil {
		return err
	}
	pRounds := stats.Mean(sim.Floats(pres, func(o loadOut) float64 { return o.rounds }))
	pTotal := stats.Mean(sim.Floats(pres, func(o loadOut) float64 { return o.total }))
	pMax := stats.Mean(sim.Floats(pres, func(o loadOut) float64 { return o.maxSend }))
	pMean := pTotal / float64(n)
	pDuty := pMax / pRounds // push's per-round cap is 1 send
	tbl.AddRow("push", f2(pRounds), f1(pTotal), f2(pMean), f2(pMax), f2(pDuty))

	cGini := stats.Mean(sim.Floats(cres, func(o loadOut) float64 { return o.gini }))
	tbl.AddNote("duty cycle = (busiest vertex's sends)/(per-round cap × rounds); 1.00 means that vertex transmits every round")
	tbl.AddNote("COBRA send-load Gini coefficient: %.3f (0 = perfectly even)", cGini)
	tbl.AddNote("push's source transmits every round until global completion (duty %.2f); COBRA vertices go quiet between activations (max duty %.2f)", pDuty, cDuty)
	tbl.AddNote("COBRA max receive load (deliveries incl. duplicates): %.2f per vertex", cMaxRecv)
	return tbl.Emit(w, p)
}

// pushWithLoad runs the push protocol recording per-vertex send counts
// (the process-layer push tracks only totals, so this mirrors its loop
// with a per-vertex counter).
func pushWithLoad(g *graph.Graph, start int32, r *rng.Rand) (rounds int, total int64, maxSend int64, err error) {
	n := g.N()
	informed := make([]bool, n)
	informed[start] = true
	frontier := []int32{start}
	sends := make([]int64, n)
	count := 1
	for count < n {
		rounds++
		if rounds > 1<<22 {
			return 0, 0, 0, fmt.Errorf("push exceeded the round cap")
		}
		var newly []int32
		for _, v := range frontier {
			u := g.Neighbor(v, r.Intn(g.Degree(v)))
			sends[v]++
			total++
			if !informed[u] {
				informed[u] = true
				count++
				newly = append(newly, u)
			}
		}
		frontier = append(frontier, newly...)
	}
	for _, s := range sends {
		if s > maxSend {
			maxSend = s
		}
	}
	return rounds, total, maxSend, nil
}
