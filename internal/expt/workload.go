package expt

import (
	"context"
	"fmt"

	"cobrawalk/internal/core"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
	"cobrawalk/internal/sim"
	"cobrawalk/internal/spectral"
	"cobrawalk/internal/stats"
	"cobrawalk/internal/sweep"
)

// family names a graph generator parameterised only by target size, for
// size-sweep experiments. The builders delegate to the sweep engine's
// family registry, so size→graph rounding lives in one place.
type family struct {
	name string
	// build returns a graph with ~n vertices (generators round to their
	// natural lattice).
	build func(n int, r *rng.Rand) (*graph.Graph, error)
}

// sweepFamily adapts a sweep.Family (with a fixed degree) to the local
// family shape. The registry names are compile-time constants, so a
// lookup failure is a programming error.
func sweepFamily(name string, deg int, display string) family {
	sf, err := sweep.LookupFamily(name)
	if err != nil {
		panic(err)
	}
	return family{
		name: display,
		build: func(n int, r *rng.Rand) (*graph.Graph, error) {
			return sf.Build(n, deg, r)
		},
	}
}

func randomRegularFamily(deg int) family {
	return sweepFamily("rand-reg", deg, fmt.Sprintf("rand-%d-reg", deg))
}

func completeFamily() family { return sweepFamily("complete", 0, "complete") }

func torus2DFamily() family { return sweepFamily("torus-2d", 0, "torus-2d") }

func hypercubeFamily() family { return sweepFamily("hypercube", 0, "hypercube") }

// intSqrt returns ⌊√n⌋ (torus sizing in E5/E7), delegating to the sweep
// engine's helper so the rounding rule has one home.
func intSqrt(n int) int { return sweep.IntSqrt(n) }

// familyLabel names a sweep point's family the way the experiment tables
// do: degree-parameterised families carry their degree ("rand-3-reg").
func familyLabel(pt sweep.Point) string {
	if pt.Family == "rand-reg" {
		return fmt.Sprintf("rand-%d-reg", pt.Degree)
	}
	return pt.Family
}

// cobraWorkload packages the per-worker factory and per-trial function
// for COBRA cover runs from vertex 0 (regular families are
// vertex-transitive or statistically symmetric, so vertex 0 is
// representative of the worst-case start). Construction is validated once
// up front so the factory cannot fail; the same pair feeds both the
// materialising (sim.RunWithState) and streaming (sim.ReduceWithState)
// harnesses, guaranteeing the two paths see identical trials.
func cobraWorkload(g *graph.Graph, branch core.Branching, maxRounds int) (func() *core.Cobra, func(*core.Cobra, int, *rng.Rand) (float64, error), error) {
	if _, err := core.NewCobra(g, core.WithBranching(branch), core.WithMaxRounds(maxRounds)); err != nil {
		return nil, nil, err
	}
	newState := func() *core.Cobra {
		c, err := core.NewCobra(g, core.WithBranching(branch), core.WithMaxRounds(maxRounds))
		if err != nil {
			panic(err) // unreachable: validated above
		}
		return c
	}
	trial := func(c *core.Cobra, _ int, r *rng.Rand) (float64, error) {
		out, err := c.Run(0, r)
		if err != nil {
			return 0, err
		}
		if !out.Covered {
			return 0, fmt.Errorf("cover run hit round cap %d on %s", maxRounds, g.Name())
		}
		return float64(out.CoverTime), nil
	}
	return newState, trial, nil
}

// bipsWorkload is cobraWorkload for BIPS infection runs with source 0.
func bipsWorkload(g *graph.Graph, branch core.Branching, maxRounds int) (func() *core.BIPS, func(*core.BIPS, int, *rng.Rand) (float64, error), error) {
	if _, err := core.NewBIPS(g, core.WithBranching(branch), core.WithMaxRounds(maxRounds)); err != nil {
		return nil, nil, err
	}
	newState := func() *core.BIPS {
		b, err := core.NewBIPS(g, core.WithBranching(branch), core.WithMaxRounds(maxRounds))
		if err != nil {
			panic(err) // unreachable: validated above
		}
		return b
	}
	trial := func(b *core.BIPS, _ int, r *rng.Rand) (float64, error) {
		out, err := b.Run(0, r)
		if err != nil {
			return 0, err
		}
		if !out.Infected {
			return 0, fmt.Errorf("infection run hit round cap %d on %s", maxRounds, g.Name())
		}
		return float64(out.InfectionTime), nil
	}
	return newState, trial, nil
}

// coverTimes runs `trials` COBRA cover runs on g and returns the raw
// cover times, for experiments that need the materialised sample.
func coverTimes(ctx context.Context, g *graph.Graph, branch core.Branching, trials int, p Params, maxRounds int) ([]float64, error) {
	newState, trial, err := cobraWorkload(g, branch, maxRounds)
	if err != nil {
		return nil, err
	}
	spec := sim.Spec{Trials: trials, Seed: p.Seed, Workers: p.Workers}
	return sim.RunWithState(ctx, spec, newState, trial)
}

// infectionTimes runs `trials` BIPS infection runs on g with source 0.
func infectionTimes(ctx context.Context, g *graph.Graph, branch core.Branching, trials int, p Params, maxRounds int) ([]float64, error) {
	newState, trial, err := bipsWorkload(g, branch, maxRounds)
	if err != nil {
		return nil, err
	}
	spec := sim.Spec{Trials: trials, Seed: p.Seed ^ 0xb195, Workers: p.Workers}
	return sim.RunWithState(ctx, spec, newState, trial)
}

// coverDigest is the streaming counterpart of coverTimes: it folds the
// same trials (same seeds, same per-trial streams) into a constant-memory
// stats.Digest instead of materialising a []float64, so trial counts are
// bounded by time, not RAM. The digest is bit-identical for every Workers
// setting.
func coverDigest(ctx context.Context, g *graph.Graph, branch core.Branching, trials int, p Params, maxRounds int) (*stats.Digest, error) {
	newState, trial, err := cobraWorkload(g, branch, maxRounds)
	if err != nil {
		return nil, err
	}
	spec := sim.Spec{Trials: trials, Seed: p.Seed, Workers: p.Workers}
	return sim.ReduceWithState(ctx, spec,
		sim.DigestReducer(func(x float64) float64 { return x }),
		newState, trial)
}

// infectionDigest is the streaming counterpart of infectionTimes.
func infectionDigest(ctx context.Context, g *graph.Graph, branch core.Branching, trials int, p Params, maxRounds int) (*stats.Digest, error) {
	newState, trial, err := bipsWorkload(g, branch, maxRounds)
	if err != nil {
		return nil, err
	}
	spec := sim.Spec{Trials: trials, Seed: p.Seed ^ 0xb195, Workers: p.Workers}
	return sim.ReduceWithState(ctx, spec,
		sim.DigestReducer(func(x float64) float64 { return x }),
		newState, trial)
}

// digestOrErr snapshots a digest with the experiment error context.
func digestOrErr(dg *stats.Digest, what string) (stats.DigestSummary, error) {
	s, err := dg.Summary()
	if err != nil {
		return stats.DigestSummary{}, fmt.Errorf("expt: summarising %s: %w", what, err)
	}
	return s, nil
}

// measureLambda returns λ_max for g, using a reduced-accuracy power
// iteration (the experiments only report λ to four digits).
func measureLambda(g *graph.Graph) (float64, error) {
	return spectral.LambdaMax(g, spectral.Options{Tol: 1e-9, MaxIter: 20000})
}

// summarizeOrErr wraps stats.Summarize with the experiment error context.
func summarizeOrErr(xs []float64, what string) (stats.Summary, error) {
	s, err := stats.Summarize(xs)
	if err != nil {
		return stats.Summary{}, fmt.Errorf("expt: summarising %s: %w", what, err)
	}
	return s, nil
}

func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f4(x float64) string { return fmt.Sprintf("%.4f", x) }
func d(x int) string      { return fmt.Sprintf("%d", x) }
