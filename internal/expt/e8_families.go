package expt

import (
	"context"
	"io"
	"math"

	"cobrawalk/internal/stats"
	"cobrawalk/internal/sweep"
)

// e8Experiment reproduces the prior results of Dutta et al. (SPAA'13)
// quoted in the paper's introduction, and the paper's improvement over
// them:
//
//	(i)   K_n: COBRA covers in O(log n) rounds;
//	(ii)  constant-degree expanders: Dutta et al. proved O(log² n), this
//	      paper improves it to O(log n);
//	(iii) d-dimensional grids/tori: Õ(n^{1/d}).
//
// Each family is one declarative sweep; the table fits each family's
// scaling law from the sweep records, and for the expander family it
// additionally contrasts the a·log n and a·log² n models by residual sum
// of squares — the paper predicts the linear-in-log model explains the data
// at least as well.
func e8Experiment() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "Family scaling laws: K_n, expanders (log vs log²), 2-D torus",
		Claim: "Dutta et al. results quoted in §1 + Theorem 1's improvement from O(log²n) to O(log n) on expanders.",
		Run:   runE8,
	}
}

func runE8(ctx context.Context, w io.Writer, p Params) error {
	p = p.withDefaults()
	trials := pick(p.Scale, 20, 50, 100)
	sizesExp := pick(p.Scale,
		[]int{128, 256, 512, 1024},
		[]int{256, 512, 1024, 2048, 4096, 8192},
		[]int{1024, 2048, 4096, 8192, 16384, 32768, 65536})
	sizesK := pick(p.Scale,
		[]int{64, 128, 256, 512},
		[]int{128, 256, 512, 1024, 2048},
		[]int{256, 512, 1024, 2048, 4096})
	sizesTorus := pick(p.Scale,
		[]int{144, 256, 529, 1024},
		[]int{256, 1024, 4096, 9216},
		[]int{1024, 4096, 16384, 65536})

	tbl := NewTable("E8: COBRA k=2 cover-time scaling by family",
		"family", "n", "mean", "p95", "mean/log2(n)", "mean/√n")

	collect := func(name, fam string, degrees []int, sizes []int) (ns, means []float64, err error) {
		rep, err := sweep.Run(ctx, sweep.Spec{
			Name:      name,
			Families:  []string{fam},
			Sizes:     sizes,
			Degrees:   degrees,
			Trials:    trials,
			Seed:      p.Seed,
			MaxRounds: 1 << 20,
		}, sweep.Options{TrialWorkers: p.Workers})
		if err != nil {
			return nil, nil, err
		}
		for _, res := range rep.Results {
			fn := float64(res.GraphN)
			s := res.Metric(sweep.MetricRounds)
			tbl.AddRow(familyLabel(res.Point), d(res.GraphN), f2(s.Mean), f1(s.P95),
				f2(s.Mean/math.Log2(fn)), f4(s.Mean/math.Sqrt(fn)))
			ns = append(ns, fn)
			means = append(means, s.Mean)
		}
		return ns, means, nil
	}

	// (i) Complete graphs: O(log n).
	nsK, meansK, err := collect("e8-complete", "complete", nil, sizesK)
	if err != nil {
		return err
	}
	fitK, err := stats.FitLogN(nsK, meansK)
	if err != nil {
		return err
	}
	tbl.AddNote("K_n:      cover ≈ %.3f·log₂(n) %+.2f (R²=%.4f) — Dutta et al. (i)", fitK.Slope, fitK.Intercept, fitK.R2)

	// (ii) Constant-degree expanders: log vs log² model comparison.
	nsE, meansE, err := collect("e8-expander", "rand-reg", []int{3}, sizesExp)
	if err != nil {
		return err
	}
	fitLog, err := stats.FitLogN(nsE, meansE)
	if err != nil {
		return err
	}
	// log² model: regress on (log₂ n)².
	xs2 := make([]float64, len(nsE))
	for i, n := range nsE {
		l := math.Log2(n)
		xs2[i] = l * l
	}
	fitLog2, err := stats.LinearFit(xs2, meansE)
	if err != nil {
		return err
	}
	predLog := make([]float64, len(nsE))
	predLog2 := make([]float64, len(nsE))
	for i := range nsE {
		predLog[i] = fitLog.Predict(math.Log2(nsE[i]))
		predLog2[i] = fitLog2.Predict(xs2[i])
	}
	ratio, err := stats.CompareFits(meansE, predLog, predLog2)
	if err != nil {
		return err
	}
	tbl.AddNote("rand-3-reg: log model R²=%.4f, log² model R²=%.4f, RSS(log)/RSS(log²)=%.3f", fitLog.R2, fitLog2.R2, ratio)
	tbl.AddNote("Theorem 1 (this paper) predicts the O(log n) law suffices where Dutta et al. only proved O(log² n)")

	// (iii) 2-D torus: Õ(n^{1/2}).
	nsT, meansT, err := collect("e8-torus", "torus-2d", nil, sizesTorus)
	if err != nil {
		return err
	}
	pw, err := stats.FitPower(nsT, meansT)
	if err != nil {
		return err
	}
	tbl.AddNote("torus-2d: cover ≈ %.2f·n^%.3f (R²=%.4f) — Dutta et al. (iii) predicts exponent ≈ 1/2 up to log factors", pw.Coeff, pw.Exponent, pw.R2)
	return tbl.Emit(w, p)
}
