package expt

import (
	"context"
	"fmt"
	"io"

	"cobrawalk/internal/core"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/process"
	"cobrawalk/internal/rng"
	"cobrawalk/internal/sim"
	"cobrawalk/internal/stats"
)

// e9Experiment reproduces the paper's motivation (§1): COBRA propagates
// information fast while capping the number of transmissions per informed
// vertex per round at k, unlike flooding (degree transmissions per vertex)
// or push (every informed vertex keeps transmitting forever). The table
// pits COBRA k=2 against push, push-pull, flooding and k independent
// random walks on the same expander and reports rounds and total messages.
func e9Experiment() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "Protocol comparison: rounds vs transmissions on an expander",
		Claim: "§1: COBRA's goal is fast propagation with ≤ k transmissions per informed vertex per round.",
		Run:   runE9,
	}
}

func runE9(ctx context.Context, w io.Writer, p Params) error {
	p = p.withDefaults()
	n := pick(p.Scale, 512, 2048, 8192)
	trials := pick(p.Scale, 15, 40, 80)
	gr := rng.NewStream(p.Seed, 0xe9)
	g, err := graph.RandomRegularConnected(n, 8, gr)
	if err != nil {
		return err
	}

	type outcome struct{ rounds, msgs float64 }
	tbl := NewTable(fmt.Sprintf("E9: broadcast protocols on %s", g.Name()),
		"protocol", "mean rounds", "p95 rounds", "mean msgs", "msgs/n", "per-vertex/round cap")

	addRows := func(name, cap string, rounds, msgs []float64) error {
		rs, err := summarizeOrErr(rounds, name+" rounds")
		if err != nil {
			return err
		}
		ms := stats.Mean(msgs)
		tbl.AddRow(name, f2(rs.Mean), f1(rs.P95), f1(ms), f2(ms/float64(n)), cap)
		return nil
	}

	// Every protocol rides the unified process layer: one reusable
	// Process per trial worker (construct once, Reset per trial), so the
	// comparison ensemble allocates nothing per trial.
	deg, _ := g.Regularity()
	rows := []struct {
		proc      string
		branching core.Branching
		label     string
		cap       string
		seed      uint64
		maxRounds int
	}{
		{process.Cobra, core.DefaultBranching, "COBRA k=2", "2", p.Seed ^ 0xe9, 1 << 18},
		{process.Push, core.Branching{}, "push", "1 (but all informed vertices push forever)", p.Seed ^ 0x99, 1 << 22},
		{process.PushPull, core.Branching{}, "push-pull", "2 (every vertex contacts each round)", p.Seed ^ 0x99, 1 << 22},
		{process.Flood, core.Branching{}, "flood", fmt.Sprintf("%d (degree)", deg), p.Seed ^ 0x99, 1 << 22},
		{process.KWalk, core.Branching{K: 1}, "random-walk", "1 walker total", p.Seed ^ 0x99, 1 << 22},
		{process.KWalk, core.Branching{K: 2}, "2-walks", "2 walkers total", p.Seed ^ 0x99, 1 << 22},
	}
	start := []int32{0}
	for _, row := range rows {
		row := row
		cfg := process.Config{Branching: row.branching}
		if _, err := process.New(row.proc, g, cfg); err != nil {
			return err
		}
		res, err := sim.RunWithState(ctx, sim.Spec{Trials: trials, Seed: row.seed, Workers: p.Workers},
			func() process.Process {
				proc, err := process.New(row.proc, g, cfg)
				if err != nil {
					panic(err) // unreachable: validated above
				}
				return proc
			},
			func(proc process.Process, trial int, r *rng.Rand) (outcome, error) {
				out, err := process.Run(proc, r, row.maxRounds, start...)
				if err != nil {
					return outcome{}, err
				}
				if !out.Done {
					return outcome{}, fmt.Errorf("%s hit round cap", row.label)
				}
				return outcome{float64(out.Rounds), float64(out.Transmissions)}, nil
			})
		if err != nil {
			return err
		}
		if err := addRows(row.label, row.cap,
			sim.Floats(res, func(o outcome) float64 { return o.rounds }),
			sim.Floats(res, func(o outcome) float64 { return o.msgs })); err != nil {
			return err
		}
	}
	tbl.AddNote("COBRA matches the O(log n) round complexity of push/flooding with a hard per-vertex budget of k=2")
	tbl.AddNote("random walks respect a budget of 1-2 messages/round globally but pay Θ(n log n) rounds")
	return tbl.Emit(w, p)
}
