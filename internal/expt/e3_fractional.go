package expt

import (
	"context"
	"io"
	"math"

	"cobrawalk/internal/core"
	"cobrawalk/internal/rng"
	"cobrawalk/internal/stats"
)

// e3Experiment reproduces Theorem 3 / Corollary 1: COBRA with fractional
// branching factor 1+ρ covers expanders in O(log n) rounds for any
// constant ρ > 0, with the constant scaling like 1/ρ (Corollary 1's growth
// factor is ρ(1-λ²) per round). The table sweeps ρ on a random 8-regular
// expander and reports the per-ρ logarithmic fit plus slope·ρ, which the
// corollary predicts to be roughly constant.
func e3Experiment() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "Fractional branching 1+ρ still covers in O(log n); constant ∝ 1/ρ",
		Claim: "Theorem 3 + Corollary 1: cov(v) = O(log n) whp for branching 1+ρ, any constant ρ > 0.",
		Run:   runE3,
	}
}

func runE3(ctx context.Context, w io.Writer, p Params) error {
	p = p.withDefaults()
	sizes := pick(p.Scale,
		[]int{128, 256, 512},
		[]int{256, 512, 1024, 2048},
		[]int{1024, 2048, 4096, 8192, 16384})
	trials := pick(p.Scale, 20, 50, 100)
	rhos := []float64{0.1, 0.25, 0.5, 0.9}

	tbl := NewTable("E3: COBRA with branching 1+ρ on rand-8-reg",
		"ρ", "n", "λmax", "mean", "p95", "mean/log2(n)")
	fam := randomRegularFamily(8)
	type fitRow struct {
		rho float64
		fit stats.Fit
	}
	var fits []fitRow
	for _, rho := range rhos {
		branch := core.Branching{K: 1, Rho: rho}
		var ns, means []float64
		gr := rng.NewStream(p.Seed, 0xe3)
		for _, n := range sizes {
			g, err := fam.build(n, gr)
			if err != nil {
				return err
			}
			lambda, err := measureLambda(g)
			if err != nil {
				return err
			}
			dg, err := coverDigest(ctx, g, branch, trials, p, 1<<18)
			if err != nil {
				return err
			}
			s, err := digestOrErr(dg, "cover times")
			if err != nil {
				return err
			}
			tbl.AddRow(f2(rho), d(g.N()), f4(lambda), f2(s.Mean), f1(s.P95),
				f2(s.Mean/math.Log2(float64(g.N()))))
			ns = append(ns, float64(g.N()))
			means = append(means, s.Mean)
		}
		if len(ns) >= 2 {
			fit, err := stats.FitLogN(ns, means)
			if err != nil {
				return err
			}
			fits = append(fits, fitRow{rho, fit})
			tbl.AddNote("ρ=%.2f: cover ≈ %.3f·log₂(n) %+.2f (R²=%.4f); slope·ρ = %.3f",
				rho, fit.Slope, fit.Intercept, fit.R2, fit.Slope*rho)
		}
	}
	if len(fits) >= 2 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, fr := range fits {
			v := fr.fit.Slope * fr.rho
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		tbl.AddNote("Corollary 1 prediction: slope·ρ ≈ const; measured spread %.3f..%.3f", lo, hi)
	}
	return tbl.Emit(w, p)
}
