package expt

import (
	"context"
	"io"
	"math"

	"cobrawalk/internal/core"
	"cobrawalk/internal/rng"
	"cobrawalk/internal/stats"
)

// e2Experiment reproduces Theorem 2: the BIPS infection time with k = 2 on
// regular expanders is O(log n) in expectation and w.h.p. The table
// reports mean, p95 and max infection times over doubling n (the w.h.p.
// claim shows up as max/mean staying O(1)) and fits the logarithmic law.
func e2Experiment() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "BIPS k=2 infection time on expanders is O(log n), whp concentrated",
		Claim: "Theorem 2: infec(v) = O(log n/(1-λ)³) in expectation and with probability ≥ 1-O(1/n³).",
		Run:   runE2,
	}
}

func runE2(ctx context.Context, w io.Writer, p Params) error {
	p = p.withDefaults()
	sizes := pick(p.Scale,
		[]int{128, 256, 512},
		[]int{256, 512, 1024, 2048, 4096},
		[]int{1024, 2048, 4096, 8192, 16384, 32768})
	trials := pick(p.Scale, 20, 50, 100)

	families := []family{randomRegularFamily(4), randomRegularFamily(12), completeFamily()}
	completeCap := pick(p.Scale, 512, 2048, 4096)

	tbl := NewTable("E2: BIPS k=2 infection time",
		"family", "n", "λmax", "trials", "mean", "p95", "max", "max/mean", "mean/log2(n)")
	for _, fam := range families {
		var ns, means []float64
		gr := rng.NewStream(p.Seed, 0xe2)
		for _, n := range sizes {
			if fam.name == "complete" && n > completeCap {
				continue
			}
			g, err := fam.build(n, gr)
			if err != nil {
				return err
			}
			lambda, err := measureLambda(g)
			if err != nil {
				return err
			}
			dg, err := infectionDigest(ctx, g, core.DefaultBranching, trials, p, 1<<16)
			if err != nil {
				return err
			}
			s, err := digestOrErr(dg, "infection times")
			if err != nil {
				return err
			}
			tbl.AddRow(fam.name, d(g.N()), f4(lambda), d(trials),
				f2(s.Mean), f1(s.P95), f1(s.Max), f2(s.Max/s.Mean),
				f2(s.Mean/math.Log2(float64(g.N()))))
			ns = append(ns, float64(g.N()))
			means = append(means, s.Mean)
		}
		if len(ns) >= 2 {
			fit, err := stats.FitLogN(ns, means)
			if err != nil {
				return err
			}
			tbl.AddNote("%-12s infec ≈ %.3f·log₂(n) %+.3f  (R²=%.4f)", fam.name, fit.Slope, fit.Intercept, fit.R2)
		}
	}
	tbl.AddNote("duality check: Theorem 4 implies E2 means track E1 means on matching families")
	return tbl.Emit(w, p)
}
