package process

import (
	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// pushProc is the classic push protocol as a reusable process: every
// informed vertex sends the rumour to one uniformly random neighbour per
// round and keeps transmitting forever. Rounds to inform all of K_n is
// log₂n + ln n + o(log n) (Frieze–Grimmett); on expanders it is
// O(log n). COBRA with k = 1 differs from push in that COBRA vertices go
// quiet after pushing.
//
// Membership is an epoch-stamped set and the informed list is an
// append-only buffer, both reused across Resets, so a warmed process
// runs whole trials without allocating.
type pushProc struct {
	g        *graph.Graph
	informed stampSet
	active   []int32 // every informed vertex, in discovery order
	round    int
	sent     int64
	obs      RoundObserver
}

func newPushProc(g *graph.Graph, cfg Config) (Process, error) {
	if err := checkGraph(g); err != nil {
		return nil, err
	}
	return &pushProc{g: g, informed: newStampSet(g.N()), obs: cfg.Observer}, nil
}

func (p *pushProc) Reset(starts ...int32) error {
	if err := checkStarts(p.g, starts); err != nil {
		return err
	}
	p.informed.clear()
	p.active = p.active[:0]
	p.round = 0
	p.sent = 0
	for _, s := range starts {
		if p.informed.add(s) {
			p.active = append(p.active, s)
		}
	}
	return nil
}

func (p *pushProc) Step(r *rng.Rand) {
	g := p.g
	m := len(p.active) // vertices informed at round start push this round
	var sent int64
	for i := 0; i < m; i++ {
		v := p.active[i]
		u := g.Neighbor(v, r.Intn(g.Degree(v)))
		sent++
		if p.informed.add(u) {
			p.active = append(p.active, u)
		}
	}
	p.round++
	p.sent += sent
	if p.obs != nil {
		p.obs(RoundStat{Round: p.round, Active: len(p.active), Reached: len(p.active), Transmissions: sent})
	}
}

func (p *pushProc) Done() bool           { return len(p.active) == p.g.N() }
func (p *pushProc) Round() int           { return p.round }
func (p *pushProc) ReachedCount() int    { return len(p.active) }
func (p *pushProc) Transmissions() int64 { return p.sent }
