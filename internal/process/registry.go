package process

import (
	"fmt"
	"strings"

	"cobrawalk/internal/graph"
)

// Canonical process names. These constants are the single source of
// truth; internal/sweep and internal/cli alias them rather than keeping
// their own lists.
const (
	Cobra    = "cobra"     // COBRA cover runs; Rounds = cover time
	BIPS     = "bips"      // BIPS infection runs; Rounds = infection time
	Push     = "push"      // push rumour spreading; Rounds = rounds to inform all
	PushPull = "push-pull" // push-pull rumour spreading
	Flood    = "flood"     // flooding (deterministic; Rounds = start eccentricity)
	KWalk    = "kwalk"     // k independent random walks; K = walker count
	CobraPar = "cobra-par" // cobra on the parallel intra-trial round kernel
	BIPSPar  = "bips-par"  // bips on the parallel intra-trial round kernel
)

// Factory constructs a Process on g with the given configuration.
type Factory func(g *graph.Graph, cfg Config) (Process, error)

// Info is one registry entry: a process name, its axis semantics and its
// factory. Adding a process to the repository means adding one Info to
// the register call in init below — the sweep engine, the CLI listings
// and the benchmarks pick it up from there.
type Info struct {
	// Name is the canonical process name (filesystem- and flag-safe).
	Name string
	// Branched reports whether the branching axis applies: Config.Branching
	// (and a sweep's Branchings axis) parameterises the process.
	Branched bool
	// AcceptsRho reports whether fractional branching (Rho > 0) is
	// meaningful. False for kwalk, whose K is a walker count.
	AcceptsRho bool
	// Monotone reports whether the process's reached count never
	// decreases over a run. True for the informed/visited processes;
	// false for bips, whose reached count is the currently infected set
	// |A_t| and can dip when vertices recover. Trajectory consumers use
	// this to decide which invariants a reached series satisfies.
	Monotone bool
	// Kernel reports whether the process runs on the parallel
	// intra-trial round kernel: Config.KernelWorkers applies, and the
	// sweep layer budgets trial-level against kernel-level parallelism
	// (trialWorkers × kernelWorkers ≤ GOMAXPROCS). Results are
	// byte-identical for every worker count; kernel processes are
	// engine variants, not stream-compatible with their sequential
	// references.
	Kernel bool
	// Summary is a one-line description for listings and flag help.
	Summary string
	// New constructs a Process on a graph.
	New Factory
}

// registry holds the entries in canonical order (registration order).
var registry []Info

func register(info Info) {
	if info.Name == "" || info.New == nil {
		panic("process: registry entry needs a name and a factory")
	}
	for _, have := range registry {
		if have.Name == info.Name {
			panic("process: duplicate registration of " + info.Name)
		}
	}
	registry = append(registry, info)
}

func init() {
	register(Info{
		Name: Cobra, Branched: true, AcceptsRho: true, Monotone: true,
		Summary: "coalescing-branching random walk (cover runs)",
		New:     newCobraProc,
	})
	register(Info{
		Name: BIPS, Branched: true, AcceptsRho: true, Monotone: false,
		Summary: "biased infection with persistent source (dual epidemic)",
		New:     newBipsProc,
	})
	register(Info{
		Name: Push, Branched: false, Monotone: true,
		Summary: "push rumour spreading (informed vertices push forever)",
		New:     newPushProc,
	})
	register(Info{
		Name: PushPull, Branched: false, Monotone: true,
		Summary: "push-pull rumour spreading (every vertex contacts each round)",
		New:     newPushPullProc,
	})
	register(Info{
		Name: Flood, Branched: false, Monotone: true,
		Summary: "flooding (deterministic; rounds = start eccentricity)",
		New:     newFloodProc,
	})
	register(Info{
		Name: KWalk, Branched: true, AcceptsRho: false, Monotone: true,
		Summary: "K independent random walks from the start set",
		New:     newKWalkProc,
	})
	register(Info{
		Name: CobraPar, Branched: true, AcceptsRho: true, Monotone: true, Kernel: true,
		Summary: "COBRA on the parallel round kernel (one trial, many cores)",
		New:     newCobraParProc,
	})
	register(Info{
		Name: BIPSPar, Branched: true, AcceptsRho: true, Monotone: false, Kernel: true,
		Summary: "BIPS on the parallel round kernel (one trial, many cores)",
		New:     newBipsParProc,
	})
}

// Names returns the registered process names in canonical order.
func Names() []string {
	out := make([]string, len(registry))
	for i, info := range registry {
		out[i] = info.Name
	}
	return out
}

// All returns the registry entries in canonical order. The returned
// slice is a copy; the entries themselves are shared.
func All() []Info {
	return append([]Info(nil), registry...)
}

// Lookup returns the registry entry for name.
func Lookup(name string) (Info, error) {
	for _, info := range registry {
		if info.Name == name {
			return info, nil
		}
	}
	return Info{}, fmt.Errorf("process: unknown process %q (want one of %s)",
		name, strings.Join(Names(), ", "))
}

// New constructs the named process on g — Lookup plus Factory in one
// call, for callers that do not need the Info.
func New(name string, g *graph.Graph, cfg Config) (Process, error) {
	info, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return info.New(g, cfg)
}
