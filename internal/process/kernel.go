package process

import (
	"sync"
	"sync/atomic"

	"cobrawalk/internal/rng"
)

// kernelChunk is the chunk grain of the parallel round kernels: the
// number of frontier entries (cobra-par) or candidates (bips-par) one
// work chunk covers. The grain is part of the determinism contract —
// chunk boundaries, and therefore the per-chunk RNG streams, depend
// only on the data (frontier length), never on the worker count — so
// changing it changes results the same way changing a seed would.
//
// 2048 entries × K pushes ≈ 4k random CSR gathers per chunk: coarse
// enough that chunk-claim traffic (one atomic add) and the per-chunk
// reseed are noise, fine enough that a 10^5-vertex frontier splits into
// ~50 chunks for dynamic load balancing across 8 workers.
const kernelChunk = 2048

// chunksFor returns the number of kernelChunk-sized chunks covering
// items entries.
func chunksFor(items int) int {
	return (items + kernelChunk - 1) / kernelChunk
}

// chunkRunner is the per-round work a parallel engine hands the pool:
// execute chunk `chunk` using the pool's worker-private generator
// rands[worker]. Implementations must touch only chunk-owned staging
// regions (plus read-only shared state) — the pool provides the
// happens-before edges between dispatch, the chunk runs and the merge,
// but no mutual exclusion.
type chunkRunner interface {
	runChunk(worker, chunk int)
}

// kernelPool executes one round's chunk grid across a fixed set of
// workers. The calling goroutine is worker 0; workers 1..W-1 are
// persistent helper goroutines started at construction and parked on
// per-helper wake channels between rounds, so a dispatch costs channel
// sends and a WaitGroup join — no goroutine creation, no allocation.
//
// Chunks are claimed dynamically through one atomic counter: which
// worker runs which chunk is scheduling, not semantics, because every
// chunk derives its own RNG stream from (roundSeed, chunkIndex) and
// writes to its own staging region. Results are therefore byte-identical
// for every worker count, including 1 (pure inline execution).
//
// The pool never references its owning engine between rounds (runner is
// cleared after every dispatch), so an engine dropped by its caller
// becomes unreachable; a runtime.AddCleanup hook on the engine then
// closes quit and the helpers exit. Engines are not safe for concurrent
// use, so at most one dispatch runs at a time.
type kernelPool struct {
	// rands[w] is worker w's private generator, reseeded per chunk via
	// ReseedStream(roundSeed, chunk).
	rands []*rng.Rand

	runner    chunkRunner
	numChunks int
	next      atomic.Int64

	start []chan struct{} // start[i] wakes helper worker i+1
	wg    sync.WaitGroup
	quit  chan struct{}
}

// newKernelPool returns a pool with the given total worker count
// (including the calling goroutine); workers-1 helper goroutines are
// started immediately.
func newKernelPool(workers int) *kernelPool {
	if workers < 1 {
		workers = 1
	}
	kp := &kernelPool{
		rands: make([]*rng.Rand, workers),
		start: make([]chan struct{}, workers-1),
		quit:  make(chan struct{}),
	}
	for i := range kp.rands {
		kp.rands[i] = rng.New(0)
	}
	for i := range kp.start {
		kp.start[i] = make(chan struct{}, 1)
		go kp.serve(i + 1)
	}
	return kp
}

// workers returns the total worker count, calling goroutine included.
func (kp *kernelPool) workers() int { return len(kp.start) + 1 }

// stop terminates the helper goroutines. Idempotence is not required:
// it is called exactly once, by the owning engine's cleanup hook.
func (kp *kernelPool) stop() { close(kp.quit) }

// dispatch runs chunks 0..numChunks-1 of run and returns when all have
// completed. Only as many helpers as there are chunks beyond the
// caller's first claim are woken, so tiny rounds stay single-threaded
// with zero synchronisation beyond the (uncontended) atomic claims.
func (kp *kernelPool) dispatch(run chunkRunner, numChunks int) {
	if numChunks <= 0 {
		return
	}
	kp.runner = run
	kp.numChunks = numChunks
	kp.next.Store(0)
	helpers := len(kp.start)
	if helpers > numChunks-1 {
		helpers = numChunks - 1
	}
	kp.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		kp.start[i] <- struct{}{}
	}
	kp.drain(0)
	kp.wg.Wait()
	// Drop the engine reference so an idle pool keeps nothing alive and
	// the engine's cleanup hook can fire once its caller lets go of it.
	kp.runner = nil
}

// drain claims and runs chunks until the grid is exhausted.
func (kp *kernelPool) drain(worker int) {
	for {
		c := int(kp.next.Add(1)) - 1
		if c >= kp.numChunks {
			return
		}
		kp.runner.runChunk(worker, c)
	}
}

// serve is the helper-goroutine loop: park until woken (or the pool is
// stopped), drain the chunk grid, signal completion.
func (kp *kernelPool) serve(worker int) {
	for {
		select {
		case <-kp.quit:
			return
		case <-kp.start[worker-1]:
			kp.drain(worker)
			kp.wg.Done()
		}
	}
}
