package process

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"cobrawalk/internal/core"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

func mk(t *testing.T) func(*graph.Graph, error) *graph.Graph {
	return func(g *graph.Graph, err error) *graph.Graph {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
}

func expander(t *testing.T, n, deg int) *graph.Graph {
	t.Helper()
	g, err := graph.RandomRegularConnected(n, deg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRegistry(t *testing.T) {
	want := []string{Cobra, BIPS, Push, PushPull, Flood, KWalk, CobraPar, BIPSPar}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		info, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if info.Name != name || info.New == nil || info.Summary == "" {
			t.Fatalf("incomplete registry entry %+v", info)
		}
	}
	if _, err := Lookup("gossip"); err == nil || !strings.Contains(err.Error(), "unknown process") {
		t.Fatalf("Lookup(gossip) = %v, want unknown-process error", err)
	}
	if _, err := New("gossip", expander(t, 16, 3), Config{}); err == nil {
		t.Fatal("New with unknown name should fail")
	}
	branchedWant := map[string]bool{Cobra: true, BIPS: true, Push: false, PushPull: false, Flood: false, KWalk: true,
		CobraPar: true, BIPSPar: true}
	kernelWant := map[string]bool{CobraPar: true, BIPSPar: true}
	for _, info := range All() {
		if info.Branched != branchedWant[info.Name] {
			t.Errorf("%s: Branched = %v, want %v", info.Name, info.Branched, branchedWant[info.Name])
		}
		if info.Kernel != kernelWant[info.Name] {
			t.Errorf("%s: Kernel = %v, want %v", info.Name, info.Kernel, kernelWant[info.Name])
		}
	}
}

// TestAllProcessesCoverAndRepeat drives every registered process to
// completion on a small expander, checks the shared invariants, and
// pins that a reused (Reset) process reproduces the identical run for
// the identical random stream — the reusability contract.
func TestAllProcessesCoverAndRepeat(t *testing.T) {
	g := expander(t, 64, 4)
	for _, info := range All() {
		t.Run(info.Name, func(t *testing.T) {
			p, err := info.New(g, Config{})
			if err != nil {
				t.Fatal(err)
			}
			first, err := Run(p, rng.New(7), 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !first.Done {
				t.Fatalf("%s did not finish on a 64-vertex expander", info.Name)
			}
			if p.ReachedCount() != g.N() {
				t.Fatalf("ReachedCount = %d, want %d", p.ReachedCount(), g.N())
			}
			if first.Rounds < 1 || first.Transmissions < 1 {
				t.Fatalf("degenerate result %+v", first)
			}
			if first.Transmissions < int64(p.ReachedCount())-1 {
				t.Fatalf("transmissions %d < reached-1 = %d", first.Transmissions, p.ReachedCount()-1)
			}
			// Second run on the same object with a fresh identical stream.
			again, err := Run(p, rng.New(7), 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if again != first {
				t.Fatalf("reused process diverged: %+v vs %+v", again, first)
			}
		})
	}
}

func TestFloodRoundsEqualEccentricity(t *testing.T) {
	graphs := []*graph.Graph{
		mk(t)(graph.Cycle(11)),
		mk(t)(graph.Hypercube(5)),
		mk(t)(graph.Path(9)),
		expander(t, 48, 3),
	}
	r := rng.New(1)
	for _, g := range graphs {
		p, err := New(Flood, g, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []int32{0, int32(g.N() / 2), int32(g.N() - 1)} {
			res, err := Run(p, r, 0, s)
			if err != nil {
				t.Fatal(err)
			}
			if want := g.Eccentricity(s); !res.Done || res.Rounds != want {
				t.Fatalf("%s: flood from %d took %d rounds (done=%v), want eccentricity %d",
					g.Name(), s, res.Rounds, res.Done, want)
			}
		}
	}
}

// TestPushPullTransmissions pins the accounting invariants: every vertex
// contacts exactly once per round (n transmissions per round), and at
// least reached-1 transmissions are needed to inform reached vertices —
// even on capped, partially-informed runs.
func TestPushPullTransmissions(t *testing.T) {
	g := mk(t)(graph.Cycle(64))
	p, err := New(PushPull, g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, rng.New(3), 5, 0) // capped: C64 cannot finish in 5 rounds
	if err != nil {
		t.Fatal(err)
	}
	if res.Done {
		t.Fatal("push-pull informed C64 in 5 rounds?")
	}
	if res.Transmissions != int64(res.Rounds)*int64(g.N()) {
		t.Fatalf("transmissions = %d, want rounds×n = %d", res.Transmissions, res.Rounds*g.N())
	}
	if res.Transmissions < int64(p.ReachedCount())-1 {
		t.Fatalf("transmissions %d < reached-1 = %d", res.Transmissions, p.ReachedCount()-1)
	}
}

func TestKWalk(t *testing.T) {
	g := mk(t)(graph.Cycle(24))
	p, err := New(KWalk, g, Config{Branching: Branching{K: 3}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, rng.New(5), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("3 walks failed to cover C24")
	}
	if res.Transmissions != 3*int64(res.Rounds) {
		t.Fatalf("transmissions = %d, want 3×rounds = %d", res.Transmissions, 3*res.Rounds)
	}
	// Multi-start: walkers spread round-robin, both starts visited at round 0.
	if err := p.Reset(0, 12); err != nil {
		t.Fatal(err)
	}
	if p.ReachedCount() != 2 || p.Round() != 0 {
		t.Fatalf("after Reset(0, 12): reached=%d round=%d", p.ReachedCount(), p.Round())
	}
	// Config validation.
	if _, err := New(KWalk, g, Config{Branching: Branching{K: 1, Rho: 0.5}}); err == nil {
		t.Fatal("kwalk should reject fractional branching")
	}
	if _, err := New(KWalk, g, Config{Branching: Branching{K: -1}}); err == nil {
		t.Fatal("kwalk should reject K < 1")
	}
	// The zero Config defaults to DefaultBranching: 2 walkers.
	q, err := New(KWalk, g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Reset(0); err != nil {
		t.Fatal(err)
	}
	q.Step(rng.New(9))
	if q.Transmissions() != 2 {
		t.Fatalf("default kwalk made %d transmissions in one round, want 2 walkers", q.Transmissions())
	}
}

func TestResetValidation(t *testing.T) {
	g := mk(t)(graph.Complete(8))
	for _, info := range All() {
		p, err := info.New(g, Config{})
		if err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		if err := p.Reset(); err == nil {
			t.Errorf("%s: empty start set should fail", info.Name)
		}
		if err := p.Reset(-1); err == nil {
			t.Errorf("%s: negative start should fail", info.Name)
		}
		if err := p.Reset(8); err == nil {
			t.Errorf("%s: out-of-range start should fail", info.Name)
		}
	}
	for _, info := range All() {
		if _, err := info.New(nil, Config{}); err == nil {
			t.Errorf("%s: nil graph should fail", info.Name)
		}
	}
	iso, err := graph.FromEdges("iso", 3, [][2]int32{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range All() {
		if _, err := info.New(iso, Config{}); err == nil {
			t.Errorf("%s: isolated vertex should fail", info.Name)
		}
	}
}

// TestObserver pins the RoundObserver contract for every process: one
// call per Step, increasing round indices, per-round transmissions that
// sum to the total, and a final Reached matching the process state.
func TestObserver(t *testing.T) {
	g := expander(t, 48, 4)
	for _, info := range All() {
		t.Run(info.Name, func(t *testing.T) {
			var stats []RoundStat
			p, err := info.New(g, Config{Observer: func(rs RoundStat) { stats = append(stats, rs) }})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(p, rng.New(11), 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(stats) != res.Rounds {
				t.Fatalf("observer saw %d rounds, result has %d", len(stats), res.Rounds)
			}
			var sent int64
			for i, rs := range stats {
				if rs.Round != i+1 {
					t.Fatalf("observation %d has round %d", i, rs.Round)
				}
				if rs.Active < 0 || rs.Reached < 1 || rs.Reached > g.N() {
					t.Fatalf("implausible observation %+v", rs)
				}
				sent += rs.Transmissions
			}
			if sent != res.Transmissions {
				t.Fatalf("per-round transmissions sum to %d, total is %d", sent, res.Transmissions)
			}
			if last := stats[len(stats)-1]; last.Reached != p.ReachedCount() {
				t.Fatalf("final observed reached %d, process reports %d", last.Reached, p.ReachedCount())
			}

			// A second run with the observer still attached replays the
			// same trajectory for the same stream.
			first := append([]RoundStat(nil), stats...)
			stats = stats[:0]
			if _, err := Run(p, rng.New(11), 0, 0); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first, stats) {
				t.Fatal("observer trajectory not reproducible across Reset")
			}
		})
	}
}

// TestZeroAllocTrials pins the buffer-reuse contract: once warmed, a
// full Reset+Step-to-completion trial performs zero allocations for
// every registered process. (AllocsPerRun's integer average also
// tolerates the rare capacity growth when a later run runs longer than
// any before.)
func TestZeroAllocTrials(t *testing.T) {
	g := expander(t, 512, 8)
	starts := []int32{0}
	for _, info := range All() {
		t.Run(info.Name, func(t *testing.T) {
			p, err := info.New(g, Config{})
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(13)
			trial := func() {
				if err := p.Reset(starts...); err != nil {
					t.Fatal(err)
				}
				for !p.Done() && p.Round() < DefaultMaxRounds {
					p.Step(r)
				}
				if !p.Done() {
					t.Fatal("trial hit the round cap")
				}
			}
			for i := 0; i < 16; i++ { // warm every buffer past its high-water mark
				trial()
			}
			if allocs := testing.AllocsPerRun(16, trial); allocs != 0 {
				t.Fatalf("%s: %v allocs per trial after warm-up, want 0", info.Name, allocs)
			}
		})
	}
}

// TestBranchingFlowsThrough pins that Config.Branching reaches the core
// processes: cobra k=1 sends exactly one message per active vertex per
// round.
func TestBranchingFlowsThrough(t *testing.T) {
	g := mk(t)(graph.Complete(16))
	p, err := New(Cobra, g, Config{Branching: core.Branching{K: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Reset(0); err != nil {
		t.Fatal(err)
	}
	p.Step(rng.New(17))
	if p.Transmissions() != 1 {
		t.Fatalf("cobra k=1 first round sent %d messages, want 1", p.Transmissions())
	}
}

// TestRunContextCancellation pins the prompt-cancellation contract: a
// context cancelled mid-trial aborts the run within cancelCheckInterval
// rounds instead of running to completion, a pre-cancelled context never
// steps, and a nil context behaves exactly like Run.
func TestRunContextCancellation(t *testing.T) {
	// A single walker on a large cycle needs Θ(n²) rounds to cover — a
	// long trial for cancellation to interrupt.
	g := mk(t)(graph.Cycle(512))
	p, err := New(KWalk, g, Config{Branching: Branching{K: 1}})
	if err != nil {
		t.Fatal(err)
	}

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(pre, p, rng.New(1), 0, 0)
	if err == nil {
		t.Fatal("pre-cancelled context should abort the run")
	}
	if res.Rounds != 0 || res.Done {
		t.Fatalf("pre-cancelled run reported %+v, want no progress", res)
	}

	// Cancel from a round observer once the run is under way: the run
	// must stop within one check interval of the cancellation round.
	ctx, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var cancelledAt int
	obs := func(st RoundStat) {
		if st.Round == 100 {
			cancelledAt = st.Round
			cancel2()
		}
	}
	q, err := New(KWalk, g, Config{Branching: Branching{K: 1}, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	res, err = RunContext(ctx, q, rng.New(2), 0, 0)
	if err == nil {
		t.Fatal("cancellation mid-run should surface as an error")
	}
	if cancelledAt == 0 {
		t.Fatal("observer never fired at round 100 — trial too short for the test")
	}
	if res.Done {
		t.Fatal("cancelled run claims completion")
	}
	if res.Rounds < cancelledAt || res.Rounds > cancelledAt+cancelCheckInterval {
		t.Fatalf("run stopped at round %d, want within %d rounds of cancellation at %d",
			res.Rounds, cancelCheckInterval, cancelledAt)
	}

	// nil context: identical to Run on the same seed.
	fresh, err := New(KWalk, g, Config{Branching: Branching{K: 1}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(fresh, rng.New(3), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunContext(nil, fresh, rng.New(3), 0, 0)
	if err != nil || got != want {
		t.Fatalf("RunContext(nil) = %+v, %v; Run = %+v", got, err, want)
	}
}
