package process

import "math/bits"

// bitset is a fixed-capacity bit membership set over vertex ids. The
// native cobra/bips engines keep their frontier and reached sets in
// bitsets instead of the 4-byte-per-vertex stamp arrays the reference
// implementations use: at one bit per vertex the whole set stays resident
// in L1/L2 (2 KB at n = 2^14, 1.25 MB at n = 10^7), so the random-order
// membership probes of the inner loops stop paying a cache miss per push.
//
// Clearing is the caller's business, and there are two idioms: zero (O(n)
// word memset, for per-Reset lifetimes) and clearing just the members you
// inserted via clearBit (O(members), for per-round frontiers whose member
// list the engine holds anyway).
type bitset []uint64

func newBitset(n int) bitset {
	return make(bitset, (n+63)>>6)
}

// zero clears every bit.
func (b bitset) zero() {
	clear(b)
}

// test reports whether bit v is set.
func (b bitset) test(v int32) bool {
	return b[uint32(v)>>6]&(1<<(uint32(v)&63)) != 0
}

// testAndSet sets bit v and reports whether it was previously clear.
func (b bitset) testAndSet(v int32) bool {
	w := uint32(v) >> 6
	m := uint64(1) << (uint32(v) & 63)
	old := b[w]
	b[w] = old | m
	return old&m == 0
}

// set sets bit v.
func (b bitset) set(v int32) {
	b[uint32(v)>>6] |= 1 << (uint32(v) & 63)
}

// clearBit clears bit v.
func (b bitset) clearBit(v int32) {
	b[uint32(v)>>6] &^= 1 << (uint32(v) & 63)
}

// clearMembers clears the bits named by members, switching to a whole-set
// memclr when the member list outnumbers the words: clearing
// member-by-member is O(|members|) random read-modify-writes, while clear
// is a straight-line memset of len(b) words — for dense rounds the memset
// wins by orders of magnitude.
func (b bitset) clearMembers(members []int32) {
	if len(members) >= len(b) {
		clear(b)
		return
	}
	for _, v := range members {
		b.clearBit(v)
	}
}

// appendBits appends the ids of all set bits in [0, n) to dst in
// ascending order.
func appendBits(dst []int32, b bitset, n int) []int32 {
	for w, word := range b {
		base := int32(w << 6)
		for word != 0 {
			v := base + int32(bits.TrailingZeros64(word))
			if int(v) >= n {
				return dst
			}
			dst = append(dst, v)
			word &= word - 1
		}
	}
	return dst
}
