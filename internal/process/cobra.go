package process

import (
	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// cobraProc is the native COBRA engine: at every round each vertex of the
// active set C_t pushes to K uniformly random neighbours (plus one with
// probability Rho, sampled with replacement); the push targets coalesce
// into C_{t+1}, and the walk is done when every vertex has been active at
// least once.
//
// The engine runs directly over the graph's CSR arrays with bitset
// membership sets: `visited` lives for the whole run (cleared per Reset),
// `frontier` coalesces the targets of the current round and is cleared
// member-by-member, so a Step costs O(K·|C_t|) regardless of n. On a
// regular graph the degree is hoisted into a precomputed rng.Bounded
// sampler and neighbour addressing needs no offsets lookup at all.
//
// The push loop is deliberately branchless: both bitsets are updated with
// unconditional read-or-write pairs and the frontier/visited outcomes are
// folded into index arithmetic (`sel` below). The membership tests are
// data-dependent coin flips mid-run, so a conditional version pays a
// pipeline flush per mispredict — and each flush also squashes the
// out-of-order window that hides the random neighbour load's latency.
// C_{t+1} therefore builds into a fixed n-length buffer through a write
// index rather than append.
//
// cobraProc consumes its generator exactly like the reference
// implementation (core.Cobra): per active vertex one optional Rho
// Bernoulli followed by one bounded draw per push, in active-set order.
// The differential harness (internal/process/difftest) pins that
// byte-identity; do not reorder draws.
type cobraProc struct {
	// g pins the source graph for the engine's lifetime: the CSR slices
	// below alias it, and for mmap-backed graphs (graphstore.Mmap) the
	// mapping is released when the graph becomes unreachable — an engine
	// holding only the slices would sample unmapped pages.
	g         *graph.Graph
	offsets   []int64
	neighbors []int32
	n         int
	reg       int32       // common degree when the graph is regular, else 0
	samp      rng.Bounded // sampler over [0, reg) when regular

	k   int
	rho float64
	obs RoundObserver

	visited  bitset
	frontier bitset
	curBuf   []int32 // C_t, first curLen entries
	nextBuf  []int32 // C_{t+1} under construction
	curLen   int

	round   int
	reached int
	sent    int64
}

func newCobraProc(g *graph.Graph, cfg Config) (Process, error) {
	if err := checkGraph(g); err != nil {
		return nil, err
	}
	br := cfg.branching()
	if err := br.Validate(); err != nil {
		return nil, err
	}
	offsets, neighbors := g.CSR()
	p := &cobraProc{
		g:         g,
		offsets:   offsets,
		neighbors: neighbors,
		n:         g.N(),
		k:         br.K,
		rho:       br.Rho,
		obs:       cfg.Observer,
		visited:   newBitset(g.N()),
		frontier:  newBitset(g.N()),
		// One slot beyond n: the branchless push loop always stores the
		// target at next[j] and advances j only for fresh frontier bits,
		// so after the n-th distinct target the dead store lands in the
		// sentinel slot.
		curBuf:  make([]int32, g.N()+1),
		nextBuf: make([]int32, g.N()+1),
	}
	if reg, err := g.Regularity(); err == nil {
		p.reg = int32(reg)
		p.samp = rng.NewBounded(uint64(reg))
	}
	return p, nil
}

func (p *cobraProc) Reset(starts ...int32) error {
	if err := checkStartsN(p.n, starts); err != nil {
		return err
	}
	p.visited.zero()
	p.curLen = 0
	p.round = 0
	p.reached = 0
	p.sent = 0
	for _, s := range starts {
		if p.visited.testAndSet(s) {
			p.reached++
			p.curBuf[p.curLen] = s
			p.curLen++
		}
	}
	return nil
}

// sel returns 1 when bit `bit` of word is clear, 0 when set — the
// branchless select the push loops advance their counters with.
func sel(word uint64, bit uint32) int {
	return int(word>>bit)&1 ^ 1
}

func (p *cobraProc) Step(r *rng.Rand) {
	next := p.nextBuf
	j := 0
	var sent int64
	if p.reg > 0 && p.rho == 0 {
		// Regular graph, integral branching: the tight loop. No offsets
		// lookups (neighbour base is v·reg), no per-draw degree test, no
		// Bernoulli branch, and no data-dependent branches in the body:
		// the frontier/visited words are rewritten unconditionally (if the
		// frontier bit is already set the visited bit must be too, so
		// re-OR-ing both is a no-op), the target is stored unconditionally,
		// and the write index advances only on a fresh frontier bit.
		k := p.k
		reg := int64(p.reg)
		nb := p.neighbors
		frontier, visited := p.frontier, p.visited
		reached := p.reached
		mask, pow2 := p.samp.Mask()
		samp := p.samp
		for _, v := range p.curBuf[:p.curLen] {
			base := int64(v) * reg
			for i := 0; i < k; i++ {
				var idx uint64
				if pow2 {
					idx = r.Uint64() & mask
				} else {
					idx = samp.Next(r)
				}
				u := nb[base+int64(idx)]
				w := uint32(u) >> 6
				bit := uint32(u) & 63
				m := uint64(1) << bit
				old := frontier[w]
				vis := visited[w]
				frontier[w] = old | m
				visited[w] = vis | m
				next[j] = u
				j += sel(old, bit)
				reached += sel(vis, bit)
			}
		}
		p.reached = reached
		sent = int64(k) * int64(p.curLen)
	} else {
		nb := p.neighbors
		offsets := p.offsets
		frontier, visited := p.frontier, p.visited
		reached := p.reached
		for _, v := range p.curBuf[:p.curLen] {
			lo, hi := offsets[v], offsets[v+1]
			deg := uint64(hi - lo)
			pushes := p.k
			if p.rho > 0 && r.Bernoulli(p.rho) {
				pushes++
			}
			for i := 0; i < pushes; i++ {
				u := nb[lo+int64(r.Uint64n(deg))]
				sent++
				w := uint32(u) >> 6
				bit := uint32(u) & 63
				m := uint64(1) << bit
				old := frontier[w]
				vis := visited[w]
				frontier[w] = old | m
				visited[w] = vis | m
				next[j] = u
				j += sel(old, bit)
				reached += sel(vis, bit)
			}
		}
		p.reached = reached
	}
	// The frontier bits are exactly the members of next; clearing by
	// members keeps sparse rounds O(|C_t|), dense rounds one memclr.
	p.frontier.clearMembers(next[:j])
	p.curBuf, p.nextBuf = next, p.curBuf
	p.curLen = j
	p.round++
	p.sent += sent
	if p.obs != nil {
		p.obs(RoundStat{Round: p.round, Active: p.curLen, Reached: p.reached, Transmissions: sent})
	}
}

func (p *cobraProc) Done() bool           { return p.reached == p.n }
func (p *cobraProc) Round() int           { return p.round }
func (p *cobraProc) ReachedCount() int    { return p.reached }
func (p *cobraProc) Transmissions() int64 { return p.sent }

// AppendReached appends the visited set in ascending vertex order.
func (p *cobraProc) AppendReached(dst []int32) []int32 {
	return appendBits(dst, p.visited, p.n)
}
