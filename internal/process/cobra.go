package process

import (
	"cobrawalk/internal/core"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// cobraProc adapts core.Cobra to the Process interface. The adapter owns
// no simulation state beyond the per-round transmission cursor the
// observer needs; all buffers live in the core process and are reused
// across runs.
type cobraProc struct {
	c        *core.Cobra
	obs      RoundObserver
	prevSent int64
}

func newCobraProc(g *graph.Graph, cfg Config) (Process, error) {
	c, err := core.NewCobra(g, core.WithBranching(cfg.branching()))
	if err != nil {
		return nil, err
	}
	return &cobraProc{c: c, obs: cfg.Observer}, nil
}

func (p *cobraProc) Reset(starts ...int32) error {
	p.prevSent = 0
	return p.c.Reset(starts...)
}

func (p *cobraProc) Step(r *rng.Rand) {
	p.c.Step(r)
	if p.obs != nil {
		sent := p.c.Transmissions()
		p.obs(RoundStat{
			Round:         p.c.Round(),
			Active:        p.c.ActiveCount(),
			Reached:       p.c.VisitedCount(),
			Transmissions: sent - p.prevSent,
		})
		p.prevSent = sent
	}
}

func (p *cobraProc) Done() bool           { return p.c.Covered() }
func (p *cobraProc) Round() int           { return p.c.Round() }
func (p *cobraProc) ReachedCount() int    { return p.c.VisitedCount() }
func (p *cobraProc) Transmissions() int64 { return p.c.Transmissions() }
