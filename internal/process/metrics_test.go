package process

import (
	"reflect"
	"strings"
	"testing"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// collected constructs the named process with a fresh collector attached
// and runs one collected trial from vertex 0.
func collected(t *testing.T, name string, g *graph.Graph, seed uint64) (*Collector, Result) {
	t.Helper()
	c := NewCollector(g.N())
	p, err := New(name, g, Config{Observer: c.Observe})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCollect(nil, p, c, rng.New(seed), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("%s did not finish", name)
	}
	return c, res
}

// TestCollectorContract is the satellite's RoundObserver-contract pin,
// run through the Collector for every registered process: the observer
// fires exactly Round() times (series length = rounds + the start
// state), the reached series is non-decreasing for monotone processes,
// and it ends at ReachedCount() — which at completion is n.
func TestCollectorContract(t *testing.T) {
	g, err := graph.RandomRegularConnected(96, 4, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range All() {
		t.Run(info.Name, func(t *testing.T) {
			c, res := collected(t, info.Name, g, 11)
			if c.Rounds() != res.Rounds {
				t.Fatalf("collector saw %d rounds, result has %d — observer did not fire once per Step", c.Rounds(), res.Rounds)
			}
			if got := len(c.Reached()); got != res.Rounds+1 {
				t.Fatalf("reached series has %d entries, want rounds+1 = %d", got, res.Rounds+1)
			}
			if c.Transmissions() != res.Transmissions {
				t.Fatalf("collector transmissions %d, result %d", c.Transmissions(), res.Transmissions)
			}
			reached := c.Reached()
			if reached[0] != 1 {
				t.Fatalf("start state reached = %d, want 1 (single start vertex)", reached[0])
			}
			if last := reached[len(reached)-1]; last != g.N() {
				t.Fatalf("final reached %d, want full coverage %d", last, g.N())
			}
			sum := 0
			for i, v := range reached {
				if v < 0 || v > g.N() {
					t.Fatalf("implausible reached[%d] = %d", i, v)
				}
				if info.Monotone && i > 0 && v < reached[i-1] {
					t.Fatalf("%s is registered monotone but reached dipped %d → %d at round %d",
						info.Name, reached[i-1], v, i)
				}
				sum += c.NewlyReached()[i]
			}
			// NewlyReached telescopes back to the final reached count.
			if sum != reached[len(reached)-1] {
				t.Fatalf("newly-reached sums to %d, final reached is %d", sum, reached[len(reached)-1])
			}
			if len(c.Active()) != len(reached) || len(c.NewlyReached()) != len(reached) {
				t.Fatal("series lengths disagree")
			}
			if c.PeakActive() < 1 {
				t.Fatalf("peak active %d", c.PeakActive())
			}
			// Completed runs always pass half coverage, in [0, rounds].
			if hr := c.HalfCoverageRound(); hr < 0 || hr > res.Rounds {
				t.Fatalf("half-coverage round %d outside [0, %d]", hr, res.Rounds)
			}
			// Half-coverage is consistent with the series.
			hr := c.HalfCoverageRound()
			if 2*reached[hr] < g.N() {
				t.Fatalf("reached[%d] = %d is below half of %d", hr, reached[hr], g.N())
			}
			for tt := 0; tt < hr; tt++ {
				if 2*reached[tt] >= g.N() {
					t.Fatalf("round %d already at half coverage, but HalfCoverageRound = %d", tt, hr)
				}
			}
		})
	}
}

// TestMonotoneRegistryTruthful cross-checks the Monotone flags: bips is
// the only non-monotone process, and on an unfavourable instance its
// reached series actually dips (the flag is not vacuous).
func TestMonotoneRegistryTruthful(t *testing.T) {
	want := map[string]bool{Cobra: true, BIPS: false, Push: true, PushPull: true, Flood: true, KWalk: true,
		CobraPar: true, BIPSPar: false}
	for _, info := range All() {
		if info.Monotone != want[info.Name] {
			t.Errorf("%s: Monotone = %v, want %v", info.Name, info.Monotone, want[info.Name])
		}
	}
	// A sparse cycle keeps BIPS in the small phase for a while, where
	// recoveries outnumber infections in some round of most runs.
	g, err := graph.Cycle(64)
	if err != nil {
		t.Fatal(err)
	}
	dipped := false
	for seed := uint64(1); seed <= 20 && !dipped; seed++ {
		c, _ := collected(t, BIPS, g, seed)
		r := c.Reached()
		for i := 1; i < len(r); i++ {
			if r[i] < r[i-1] {
				dipped = true
				break
			}
		}
	}
	if !dipped {
		t.Fatal("bips reached series never dipped across 20 runs — Monotone=false untestable?")
	}
}

// TestCollectorReproducible pins that a collected trial replays exactly:
// same stream, same series, same scalars — the Reset/Begin sequencing in
// RunCollect does not leak state between trials.
func TestCollectorReproducible(t *testing.T) {
	g, err := graph.RandomRegularConnected(64, 4, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(g.N())
	p, err := New(Cobra, g, Config{Observer: c.Observe})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCollect(nil, p, c, rng.New(3), 0, 0); err != nil {
		t.Fatal(err)
	}
	first := append([]int(nil), c.Reached()...)
	firstActive := append([]int(nil), c.Active()...)
	firstHalf, firstPeak, firstSent := c.HalfCoverageRound(), c.PeakActive(), c.Transmissions()

	// An interleaved different-seed trial must not disturb the replay.
	if _, err := RunCollect(nil, p, c, rng.New(99), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := RunCollect(nil, p, c, rng.New(3), 0, 0); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, c.Reached()) || !reflect.DeepEqual(firstActive, c.Active()) {
		t.Fatal("collected series not reproducible across Reset/Begin")
	}
	if c.HalfCoverageRound() != firstHalf || c.PeakActive() != firstPeak || c.Transmissions() != firstSent {
		t.Fatal("collected scalars not reproducible across Reset/Begin")
	}
}

// TestCollectorZeroAlloc extends the buffer-reuse contract to the
// metrics layer: a warmed Process+Collector pair runs whole collected
// trials with zero allocations, for every registered process.
func TestCollectorZeroAlloc(t *testing.T) {
	g, err := graph.RandomRegularConnected(512, 8, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	starts := []int32{0}
	for _, info := range All() {
		t.Run(info.Name, func(t *testing.T) {
			c := NewCollector(g.N())
			p, err := info.New(g, Config{Observer: c.Observe})
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(13)
			trial := func() {
				res, err := RunCollect(nil, p, c, r, DefaultMaxRounds, starts...)
				if err != nil || !res.Done {
					t.Fatalf("trial failed: %+v %v", res, err)
				}
			}
			for i := 0; i < 16; i++ { // warm buffers past their high-water mark
				trial()
			}
			if allocs := testing.AllocsPerRun(16, trial); allocs != 0 {
				t.Fatalf("%s: %v allocs per collected trial after warm-up, want 0", info.Name, allocs)
			}
		})
	}
}

// TestCollectorReserve pins the strict zero-alloc escape hatch: after
// Reserve(cap), a first (cold) trial within the cap allocates nothing.
func TestCollectorReserve(t *testing.T) {
	g, err := graph.Cycle(64)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(g.N())
	c.Reserve(1 << 14)
	p, err := New(KWalk, g, Config{Branching: Branching{K: 1}, Observer: c.Observe})
	if err != nil {
		t.Fatal(err)
	}
	// Warm only the process buffers (walk a few rounds), never the
	// collector past Reserve.
	if err := p.Reset(0); err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	starts := []int32{0} // hoisted: the variadic literal would be the only allocation
	if allocs := testing.AllocsPerRun(4, func() {
		res, err := RunCollect(nil, p, c, r, 1<<14, starts...)
		if err != nil || !res.Done {
			t.Fatalf("trial: %+v %v", res, err)
		}
	}); allocs != 0 {
		t.Fatalf("%v allocs per reserved trial, want 0", allocs)
	}
}

// TestObserveBeforeBeginPanicsWithGuidance pins the misuse diagnostic:
// an attached collector driven without Begin (plain Run instead of
// RunCollect) must fail with an actionable message, not a bare index
// panic.
func TestObserveBeforeBeginPanicsWithGuidance(t *testing.T) {
	g, err := graph.Complete(8)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(g.N())
	p, err := New(Push, g, Config{Observer: c.Observe})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Observe before Begin should panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "RunCollect") {
			t.Fatalf("panic %v lacks RunCollect guidance", r)
		}
	}()
	Run(p, rng.New(1), 0, 0) // misuse: never calls Begin
}

// TestCollectorHalfCoverageStart pins the Begin edge cases: a start set
// already past half coverage reports round 0, and RunCollect without a
// collector is rejected.
func TestCollectorHalfCoverageStart(t *testing.T) {
	g, err := graph.Complete(8)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(g.N())
	p, err := New(Push, g, Config{Observer: c.Observe})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCollect(nil, p, c, rng.New(1), 0, 0, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if c.InitialReached() != 4 {
		t.Fatalf("initial reached %d, want 4", c.InitialReached())
	}
	if c.HalfCoverageRound() != 0 {
		t.Fatalf("half-coverage round %d, want 0 for a half-covered start set", c.HalfCoverageRound())
	}
	if _, err := RunCollect(nil, p, nil, rng.New(1), 0, 0); err == nil {
		t.Fatal("nil collector should be rejected")
	}
}
