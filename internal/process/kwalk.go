package process

import (
	"fmt"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// kwalkProc runs K independent simple random walks, one step each per
// round, until their union has visited every vertex. This is the
// "multiple random walks" process of Alon et al. and Elsässer–Sauerwald
// whose techniques the paper contrasts with COBRA's dependent branching.
// The walker count is Config.Branching.K, which makes it sweepable
// through the same branching axis as cobra/bips; fractional branching
// (Rho > 0) has no meaning for walker counts and is rejected.
type kwalkProc struct {
	g       *graph.Graph
	visited stampSet
	walkers []int32
	count   int
	round   int
	sent    int64
	obs     RoundObserver
}

func newKWalkProc(g *graph.Graph, cfg Config) (Process, error) {
	if err := checkGraph(g); err != nil {
		return nil, err
	}
	br := cfg.branching()
	if br.Rho != 0 {
		return nil, fmt.Errorf("process: kwalk does not support fractional branching (Rho = %v)", br.Rho)
	}
	if br.K < 1 {
		return nil, fmt.Errorf("process: kwalk walker count %d, need >= 1", br.K)
	}
	return &kwalkProc{g: g, visited: newStampSet(g.N()), walkers: make([]int32, br.K), obs: cfg.Observer}, nil
}

// Reset places the walkers round-robin over the start set (all at
// starts[0] in the common single-start case) and marks every start
// visited.
func (p *kwalkProc) Reset(starts ...int32) error {
	if err := checkStarts(p.g, starts); err != nil {
		return err
	}
	p.visited.clear()
	p.count = 0
	p.round = 0
	p.sent = 0
	for _, s := range starts {
		if p.visited.add(s) {
			p.count++
		}
	}
	for i := range p.walkers {
		p.walkers[i] = starts[i%len(starts)]
	}
	return nil
}

func (p *kwalkProc) Step(r *rng.Rand) {
	g := p.g
	for i, v := range p.walkers {
		u := g.Neighbor(v, r.Intn(g.Degree(v)))
		p.walkers[i] = u
		if p.visited.add(u) {
			p.count++
		}
	}
	p.round++
	p.sent += int64(len(p.walkers))
	if p.obs != nil {
		p.obs(RoundStat{Round: p.round, Active: len(p.walkers), Reached: p.count, Transmissions: int64(len(p.walkers))})
	}
}

func (p *kwalkProc) Done() bool           { return p.count == p.g.N() }
func (p *kwalkProc) Round() int           { return p.round }
func (p *kwalkProc) ReachedCount() int    { return p.count }
func (p *kwalkProc) Transmissions() int64 { return p.sent }
