package process

import (
	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// pushPullProc is the push-pull protocol as a reusable process: every
// round, every vertex contacts one uniformly random neighbour and the
// rumour crosses the contact edge in whichever direction informs
// someone. Karp et al. showed K_n needs only Θ(log n) rounds and
// Θ(n·loglog n) total messages.
//
// The informed set is monotone, so one epoch-stamped set holds the
// round-start state while a second marks vertices informed during the
// current round (they must not transmit or absorb until the next round).
type pushPullProc struct {
	g        *graph.Graph
	informed stampSet // informed as of round start
	fresh    stampSet // informed during the current round
	newly    []int32  // scratch: this round's fresh vertices
	count    int
	round    int
	sent     int64
	obs      RoundObserver
}

func newPushPullProc(g *graph.Graph, cfg Config) (Process, error) {
	if err := checkGraph(g); err != nil {
		return nil, err
	}
	n := g.N()
	return &pushPullProc{g: g, informed: newStampSet(n), fresh: newStampSet(n), obs: cfg.Observer}, nil
}

func (p *pushPullProc) Reset(starts ...int32) error {
	if err := checkStarts(p.g, starts); err != nil {
		return err
	}
	p.informed.clear()
	p.count = 0
	p.round = 0
	p.sent = 0
	for _, s := range starts {
		if p.informed.add(s) {
			p.count++
		}
	}
	return nil
}

func (p *pushPullProc) Step(r *rng.Rand) {
	g := p.g
	p.fresh.clear()
	p.newly = p.newly[:0]
	n := int32(g.N())
	for v := int32(0); v < n; v++ {
		u := g.Neighbor(v, r.Intn(g.Degree(v)))
		switch {
		case p.informed.has(v) && !p.informed.has(u) && p.fresh.add(u):
			p.newly = append(p.newly, u)
		case !p.informed.has(v) && p.informed.has(u) && p.fresh.add(v):
			p.newly = append(p.newly, v)
		}
	}
	for _, u := range p.newly {
		p.informed.add(u)
	}
	p.count += len(p.newly)
	p.round++
	p.sent += int64(n) // every vertex contacts exactly once per round
	if p.obs != nil {
		p.obs(RoundStat{Round: p.round, Active: p.count, Reached: p.count, Transmissions: int64(n)})
	}
}

func (p *pushPullProc) Done() bool           { return p.count == p.g.N() }
func (p *pushPullProc) Round() int           { return p.round }
func (p *pushPullProc) ReachedCount() int    { return p.count }
func (p *pushPullProc) Transmissions() int64 { return p.sent }
