package process

import (
	"context"
	"errors"

	"cobrawalk/internal/rng"
)

// Collector is the metrics layer's per-trial accumulator, built on the
// RoundObserver hook: attach Observe as the process Observer at
// construction time, Begin it at the start of every trial (RunCollect
// does both bookkeeping steps of a driven run), and read the per-trial
// scalars and per-round series afterwards.
//
// All buffers are reused across trials — Begin truncates without
// freeing — so a warmed Collector adds zero allocations to a trial,
// preserving the process layer's zero-alloc contract (BenchmarkProcessStep
// runs with a collector attached).
//
// Series are indexed by round: series[t] is the state after round t, and
// series[0] is the start state recorded by Begin. For the non-monotone
// BIPS process "reached" is |A_t| (the currently infected set), so the
// Reached series can dip; monotone processes (see Info.Monotone) are
// non-decreasing.
//
// A Collector is not safe for concurrent use; pair one with each Process.
type Collector struct {
	graphN  int
	initial int

	transmissions int64
	peakActive    int
	halfRound     int

	reached []int
	newly   []int
	active  []int
}

// NewCollector returns a collector for processes on a graph of n
// vertices (n sets the half-coverage threshold).
func NewCollector(n int) *Collector {
	return &Collector{graphN: n, halfRound: -1}
}

// Begin starts a new trial: it clears every accumulator and records the
// start state, initialReached being the process's ReachedCount after
// Reset. The start state seeds index 0 of every series (Active uses the
// same value — the driving set at round 0 is the start set).
func (c *Collector) Begin(initialReached int) {
	c.initial = initialReached
	c.transmissions = 0
	c.peakActive = initialReached
	c.halfRound = -1
	if 2*initialReached >= c.graphN {
		c.halfRound = 0
	}
	c.reached = append(c.reached[:0], initialReached)
	c.newly = append(c.newly[:0], initialReached)
	c.active = append(c.active[:0], initialReached)
}

// Reserve grows the series buffers to hold trials of up to rounds
// rounds without reallocating. Buffers already grow amortised through
// append; Reserve is for callers with a known round cap (benchmarks,
// fixed-horizon ensembles) that want strictly zero allocations per
// trial rather than amortised-zero.
func (c *Collector) Reserve(rounds int) {
	need := rounds + 1 // + the start state
	for _, s := range []*[]int{&c.reached, &c.newly, &c.active} {
		if cap(*s) < need {
			grown := make([]int, len(*s), need)
			copy(grown, *s)
			*s = grown
		}
	}
}

// Observe is the RoundObserver: pass it as Config.Observer when
// constructing the process the collector is paired with. Begin must
// have run for the current trial — RunCollect sequences that; driving
// an attached process with plain Run/RunContext is a misuse that fails
// here with guidance rather than an opaque index panic.
func (c *Collector) Observe(rs RoundStat) {
	if len(c.reached) == 0 {
		panic("process: Collector.Observe before Begin — drive collected runs with RunCollect, or call Begin(p.ReachedCount()) after every Reset")
	}
	prev := c.reached[len(c.reached)-1]
	c.reached = append(c.reached, rs.Reached)
	c.newly = append(c.newly, rs.Reached-prev)
	c.active = append(c.active, rs.Active)
	c.transmissions += rs.Transmissions
	if rs.Active > c.peakActive {
		c.peakActive = rs.Active
	}
	if c.halfRound < 0 && 2*rs.Reached >= c.graphN {
		c.halfRound = rs.Round
	}
}

// Rounds returns the number of observed rounds this trial.
func (c *Collector) Rounds() int { return len(c.reached) - 1 }

// Transmissions returns the total messages observed this trial.
func (c *Collector) Transmissions() int64 { return c.transmissions }

// PeakActive returns the largest driving-set size seen this trial — the
// peak COBRA frontier |C_t|, peak |A_t| for bips — including the start
// state.
func (c *Collector) PeakActive() int { return c.peakActive }

// HalfCoverageRound returns the first round t with 2·reached(t) >= n (0
// when the start set already covers half), or -1 if the trial never got
// there. Completed runs always have a half-coverage round.
func (c *Collector) HalfCoverageRound() int { return c.halfRound }

// InitialReached returns the start-state reached count recorded by Begin.
func (c *Collector) InitialReached() int { return c.initial }

// Reached returns the per-round reached series: Reached()[t] is the
// reached count after round t, [0] the start state. The slice is reused
// by the next Begin; copy it to keep it.
func (c *Collector) Reached() []int { return c.reached }

// NewlyReached returns the per-round newly-reached series: the first
// differences of Reached, with [0] the start-set size. Negative entries
// are possible for non-monotone processes (bips recoveries).
func (c *Collector) NewlyReached() []int { return c.newly }

// Active returns the per-round driving-set series: |C_t| for cobra,
// |A_t| for bips, the informed count for push/push-pull/flood, the
// walker count for kwalk. Index 0 is the start state (recorded as the
// start-set size). The slice is reused by the next Begin.
func (c *Collector) Active() []int { return c.active }

// RunCollect drives p through one full collected run: Reset, Begin the
// collector with the post-Reset reached count, then step until Done,
// the round cap, or — with a non-nil ctx — cancellation, exactly like
// RunContext. The collector must have been attached as p's observer
// (Config.Observer = c.Observe) for the series to fill; RunCollect
// cannot verify that, it only sequences Reset and Begin correctly.
func RunCollect(ctx context.Context, p Process, c *Collector, r *rng.Rand, maxRounds int, starts ...int32) (Result, error) {
	if c == nil {
		return Result{}, errors.New("process: RunCollect needs a collector")
	}
	if err := p.Reset(starts...); err != nil {
		return Result{}, err
	}
	c.Begin(p.ReachedCount())
	return drive(ctx, p, r, maxRounds)
}
