package process

import (
	"runtime"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// bipsParProc is the parallel-round-kernel variant of the native BIPS
// engine (bipsProc). Candidate collection — a branchy, duplicate-
// suppressing scan whose discovery order defines the candidate list —
// stays sequential and byte-identical in structure to bipsProc; the
// expensive phase, evaluating every candidate's K random neighbour
// samples against A_t (a random CSR gather per sample), runs as a
// parallel-for over contiguous candidate ranges on a kernelPool.
//
// A Step:
//
//  1. Seed: one Uint64 draw from the trial stream yields roundSeed.
//  2. Collect (sequential, no RNG): Γ(A_t) minus the source, in
//     infected-list discovery order, exactly as bipsProc.
//  3. Evaluate (parallel): candidates are cut into kernelChunk-sized
//     chunks. A worker claiming chunk c reseeds its private generator
//     to NewStream(roundSeed, c) and fills the chunk's slice of the
//     hit-flag buffer (disjoint ranges; infB, infCount and the CSR are
//     read-only here), recording per-chunk transmission counts.
//  4. Compact (sequential): bipsProc's branchless hit compaction
//     builds A_{t+1}, then the usual member-wise cleanup runs.
//
// Chunk boundaries depend only on the candidate count and the chunk
// streams only on (roundSeed, c), so results are byte-identical for
// every worker count (difftest.LockstepWorkers). Like cobra-par, the
// engine is not stream-compatible with the sequential reference.
//
// Buffers are sized at construction and reused; steady-state Steps
// perform zero allocations.
type bipsParProc struct {
	// g pins the source graph: see cobraProc — the CSR slices alias it,
	// and mmap-backed graphs unmap when the graph becomes unreachable.
	g         *graph.Graph
	offsets   []int64
	neighbors []int32
	n         int
	reg       int32       // common degree when the graph is regular, else 0
	samp      rng.Bounded // sampler over [0, reg) when regular

	k    int
	rho  float64
	fast bool
	obs  RoundObserver

	pool *kernelPool

	source   int32
	infB     []uint8 // infB[v] == 1 iff v ∈ A_t
	candB    []uint8 // candB[v] == 1 iff v already discovered this round
	infCount []int32
	infBuf   []int32 // A_t, first infLen entries (+ sentinel slot)
	nextBuf  []int32 // A_{t+1} under construction
	candBuf  []int32 // Γ(A_t) minus the source, in discovery order
	hitBuf   []uint8 // per-candidate hit flags; chunk c owns [c·kernelChunk, …)
	infLen   int

	// Per-round kernel state: the candidate count, the round seed (both
	// frozen during the parallel phase), per-chunk transmission counts,
	// and one bulk-draw buffer per worker for the pow2 fast loop.
	nc        int
	roundSeed uint64
	sentC     []int64
	drawBufs  [][]uint64

	round int
	sent  int64
}

func newBipsParProc(g *graph.Graph, cfg Config) (Process, error) {
	if err := checkGraph(g); err != nil {
		return nil, err
	}
	br := cfg.branching()
	if err := br.Validate(); err != nil {
		return nil, err
	}
	offsets, neighbors := g.CSR()
	p := &bipsParProc{
		g:         g,
		offsets:   offsets,
		neighbors: neighbors,
		n:         g.N(),
		k:         br.K,
		rho:       br.Rho,
		fast:      cfg.FastSampling,
		obs:       cfg.Observer,
		pool:      newKernelPool(cfg.kernelWorkers()),
		infB:      make([]uint8, g.N()),
		candB:     make([]uint8, g.N()),
		infBuf:    make([]int32, g.N()+1),
		nextBuf:   make([]int32, g.N()+1),
		candBuf:   make([]int32, g.N()+1),
		hitBuf:    make([]uint8, g.N()+1),
		sentC:     make([]int64, chunksFor(g.N())),
	}
	if cfg.FastSampling {
		p.infCount = make([]int32, g.N())
	}
	if reg, err := g.Regularity(); err == nil {
		p.reg = int32(reg)
		p.samp = rng.NewBounded(uint64(reg))
		if _, pow2 := p.samp.Mask(); pow2 && !p.fast {
			// One L1-sized bulk-draw chunk per worker; at least K so a
			// block always holds one whole candidate.
			size := 2048
			if p.k > size {
				size = p.k
			}
			p.drawBufs = make([][]uint64, p.pool.workers())
			for i := range p.drawBufs {
				p.drawBufs[i] = make([]uint64, size)
			}
		}
	}
	if len(p.pool.start) > 0 {
		runtime.AddCleanup(p, func(kp *kernelPool) { kp.stop() }, p.pool)
	}
	return p, nil
}

// Reset prepares the run with source starts[0] and A_0 = set(starts).
func (p *bipsParProc) Reset(starts ...int32) error {
	if err := checkStartsN(p.n, starts); err != nil {
		return err
	}
	clear(p.infB)
	p.source = starts[0]
	p.infLen = 0
	p.round = 0
	p.sent = 0
	for _, s := range starts {
		if p.infB[s] == 0 {
			p.infB[s] = 1
			p.infBuf[p.infLen] = s
			p.infLen++
		}
	}
	return nil
}

// runChunk evaluates candidate chunk `chunk` into its slice of the
// hit-flag buffer. Shared state (infB, infCount, the CSR arrays, the
// candidate list) is read-only during the parallel phase; the only
// writes are hitBuf[chunk range] and sentC[chunk].
func (p *bipsParProc) runChunk(worker, chunk int) {
	r := p.pool.rands[worker]
	r.ReseedStream(p.roundSeed, uint64(chunk))
	lo := chunk * kernelChunk
	hi := lo + kernelChunk
	if hi > p.nc {
		hi = p.nc
	}
	cands := p.candBuf[lo:hi]
	hit := p.hitBuf[lo:hi]
	nb := p.neighbors
	offsets := p.offsets
	k := p.k
	rho := p.rho
	var sent int64
	switch {
	case p.fast:
		infCount := p.infCount
		for i, u := range cands {
			deg := offsets[u+1] - offsets[u]
			pp := float64(infCount[u]) / float64(deg)
			prob := 1 - missProb(pp, k)*(1-rho*pp)
			sent += int64(k) // expected-equivalent accounting
			if rho > 0 && r.Bernoulli(rho) {
				sent++
			}
			var h uint8
			if r.Bernoulli(prob) {
				h = 1
			}
			hit[i] = h
		}
	case p.reg > 0 && rho == 0:
		// Regular graph, integral branching: bipsProc's tight two-pass
		// loop, pass one only — the compaction pass runs sequentially
		// after the join. Bulk draws come from the worker's private
		// buffer; the chunked FillUint64 stream is fixed by the chunk's
		// candidate count, so it is identical however chunks are
		// scheduled.
		reg := int64(p.reg)
		samp := p.samp
		mask, pow2 := p.samp.Mask()
		infB := p.infB
		if pow2 {
			draws := p.drawBufs[worker]
			blockCands := len(draws) / k
			for blo := 0; blo < len(cands); blo += blockCands {
				bhi := blo + blockCands
				if bhi > len(cands) {
					bhi = len(cands)
				}
				block := cands[blo:bhi]
				r.FillUint64(draws[:len(block)*k])
				pos := 0
				if k == 2 {
					for bi, u := range block {
						base := int64(u) * reg
						w0 := nb[base+int64(draws[pos]&mask)]
						w1 := nb[base+int64(draws[pos+1]&mask)]
						pos += 2
						hit[blo+bi] = infB[w0] | infB[w1]
					}
				} else {
					for bi, u := range block {
						base := int64(u) * reg
						var hits uint8
						for s := 0; s < k; s++ {
							w := nb[base+int64(draws[pos]&mask)]
							pos++
							hits |= infB[w]
						}
						hit[blo+bi] = hits
					}
				}
			}
		} else {
			for i, u := range cands {
				base := int64(u) * reg
				var hits uint8
				for s := 0; s < k; s++ {
					w := nb[base+int64(samp.Next(r))]
					hits |= infB[w]
				}
				hit[i] = hits
			}
		}
		sent = int64(k) * int64(len(cands))
	default:
		infB := p.infB
		for i, u := range cands {
			olo, ohi := offsets[u], offsets[u+1]
			deg := uint64(ohi - olo)
			samples := k
			if rho > 0 && r.Bernoulli(rho) {
				samples++
			}
			var hits uint8
			for s := 0; s < samples; s++ {
				sent++
				w := nb[olo+int64(r.Uint64n(deg))]
				hits |= infB[w]
			}
			hit[i] = hits
		}
	}
	p.sentC[chunk] = sent
}

func (p *bipsParProc) Step(r *rng.Rand) {
	p.roundSeed = r.Uint64()
	// Collect candidates exactly as bipsProc: inclusive neighbourhood
	// Γ(A_t) in infected-list discovery order, source pre-marked so it
	// never enters the list. No randomness is consumed, so collection
	// order — and therefore the chunk grid — is worker-count-free.
	cands := p.candBuf
	candB := p.candB
	nb := p.neighbors
	offsets := p.offsets
	infected := p.infBuf[:p.infLen]
	nc := 0
	candB[p.source] = 1
	if p.fast {
		infCount := p.infCount
		for _, v := range infected {
			for _, u := range nb[offsets[v]:offsets[v+1]] {
				if candB[u] == 0 {
					candB[u] = 1
					cands[nc] = u
					nc++
					infCount[u] = 0
				}
				infCount[u]++
			}
		}
	} else if p.reg > 0 {
		// See bipsProc for the unroll/prefetch/full-break rationale.
		reg := int64(p.reg)
		full := p.n - 1
		pf := p.hitBuf
		last := len(infected) - 1
		for i, v := range infected {
			if nc == full {
				break
			}
			pf[p.n] = uint8(nb[int64(infected[min(i+8, last)])*reg])
			a := int64(v) * reg
			end := a + reg
			for ; a+1 < end; a += 2 {
				u0, u1 := nb[a], nb[a+1]
				old0 := candB[u0]
				candB[u0] = 1
				cands[nc] = u0
				nc += int(old0) ^ 1
				old1 := candB[u1]
				candB[u1] = 1
				cands[nc] = u1
				nc += int(old1) ^ 1
			}
			if a < end {
				u := nb[a]
				old := candB[u]
				candB[u] = 1
				cands[nc] = u
				nc += int(old) ^ 1
			}
		}
	} else {
		for _, v := range infected {
			for _, u := range nb[offsets[v]:offsets[v+1]] {
				old := candB[u]
				candB[u] = 1
				cands[nc] = u
				nc += int(old) ^ 1
			}
		}
	}
	cands = cands[:nc]
	p.nc = nc

	// Evaluate in parallel, then compact sequentially.
	numChunks := chunksFor(nc)
	p.pool.dispatch(p, numChunks)

	next := p.nextBuf
	next[0] = p.source // the source is always infected
	j := 1
	hit := p.hitBuf
	for i, u := range cands {
		next[j] = u
		j += int(hit[i])
	}
	var sent int64
	for c := 0; c < numChunks; c++ {
		sent += p.sentC[c]
	}

	// Swap infected sets: clear the per-round candidate marks (including
	// the source pre-mark) and the old membership marks, then stamp the
	// new set.
	clearByteMembers(candB, cands)
	candB[p.source] = 0
	infB := p.infB
	clearByteMembers(infB, infected)
	for _, u := range next[:j] {
		infB[u] = 1
	}
	p.infBuf, p.nextBuf = next, p.infBuf
	p.infLen = j
	p.round++
	p.sent += sent
	if p.obs != nil {
		p.obs(RoundStat{Round: p.round, Active: p.infLen, Reached: p.infLen,
			Transmissions: sent})
	}
}

func (p *bipsParProc) Done() bool           { return p.infLen == p.n }
func (p *bipsParProc) Round() int           { return p.round }
func (p *bipsParProc) ReachedCount() int    { return p.infLen }
func (p *bipsParProc) Transmissions() int64 { return p.sent }

// AppendReached appends A_t in ascending vertex order.
func (p *bipsParProc) AppendReached(dst []int32) []int32 {
	for v, x := range p.infB {
		if x != 0 {
			dst = append(dst, int32(v))
		}
	}
	return dst
}
