// Package process is the unified process layer: every spreading process
// the repository can simulate — COBRA, its dual BIPS, and the comparison
// protocols push, push-pull, flood and k independent random walks — is a
// reusable Process object behind one interface, registered by name in a
// central registry (see registry.go).
//
// A Process is constructed once per graph (allocating its frontier and
// membership buffers) and then Reset/Step many times, so ensembles of
// thousands of trials run without per-trial graph-sized allocations. The
// registry is the single source of truth for process names: the sweep
// engine, the CLI tools and the experiment harness all dispatch through
// it, and adding a process requires only a new registry entry.
package process

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"cobrawalk/internal/core"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// Branching is the branching factor shared with internal/core: K
// contacts per round plus one more with probability Rho. For kwalk, K is
// the walker count and Rho must be zero.
type Branching = core.Branching

// DefaultBranching is the paper's canonical k = 2 branching factor.
var DefaultBranching = core.DefaultBranching

// Process is one reusable spreading process bound to a fixed graph.
// Construct via a registry Factory (or the concrete constructors), then
// Reset and Step; every buffer is reused across runs, so a warmed Process
// executes whole trials without allocating.
//
// A Process is not safe for concurrent use; run one per goroutine.
type Process interface {
	// Reset prepares a fresh run from the given non-empty start set.
	// For source-based processes (bips) the first start is the source.
	Reset(starts ...int32) error
	// Step advances the process by one synchronous round.
	Step(r *rng.Rand)
	// Done reports whether the process has reached its goal: every
	// vertex informed, visited or infected.
	Done() bool
	// Round returns the number of rounds executed since Reset.
	Round() int
	// ReachedCount returns the number of vertices currently counted as
	// reached (informed/visited for monotone processes, |A_t| for bips).
	ReachedCount() int
	// Transmissions returns the number of messages sent since Reset.
	Transmissions() int64
}

// RoundStat is the per-round observation delivered to a RoundObserver
// after every Step.
type RoundStat struct {
	// Round is the just-completed round index (1 for the first Step).
	Round int
	// Active is the size of the driving set this round: |C_t| for cobra,
	// |A_t| for bips, the informed count for push/push-pull/flood, the
	// walker count for kwalk.
	Active int
	// Reached is the cumulative reached count after the round.
	Reached int
	// Transmissions is the number of messages sent during this round.
	Transmissions int64
}

// RoundObserver receives a RoundStat after every Step. Observers are the
// raw material for trajectory analyses (Lemma 1 growth phases, frontier
// sizes); a nil observer costs nothing.
type RoundObserver func(RoundStat)

// Config parameterises process construction. The zero value is valid for
// every registered process.
type Config struct {
	// Branching configures branched processes: K pushes (cobra), K
	// neighbour samples (bips) or K walkers (kwalk), plus Rho where the
	// process supports fractional branching. The zero value means
	// core.DefaultBranching (the paper's k = 2). Unbranched processes
	// ignore it.
	Branching Branching
	// FastSampling switches bips to the closed-form Bernoulli sampling
	// path (core.WithFastSampling). Ignored by every other process.
	FastSampling bool
	// Observer, when non-nil, receives a RoundStat after every Step.
	Observer RoundObserver
	// KernelWorkers is the worker count (calling goroutine included) of
	// the parallel round kernels (cobra-par, bips-par; Info.Kernel).
	// It is a scheduling knob only: per-chunk counter-derived RNG
	// streams make results byte-identical for every value, pinned by
	// difftest.LockstepWorkers. <= 0 means GOMAXPROCS. Non-kernel
	// processes ignore it.
	KernelWorkers int
}

// branching resolves the configured branching factor, defaulting the
// zero value to the paper's k = 2.
func (c Config) branching() Branching {
	if c.Branching == (Branching{}) {
		return DefaultBranching
	}
	return c.Branching
}

// kernelWorkers resolves the kernel worker count, defaulting to
// GOMAXPROCS — "one trial, whole machine". Callers running many trials
// concurrently (the sweep ensemble reducer) set it explicitly to their
// share of the CPU budget.
func (c Config) kernelWorkers() int {
	w := c.KernelWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return w
}

// DefaultMaxRounds caps driven runs that pass maxRounds <= 0 to Run.
const DefaultMaxRounds = 1 << 20

// Result reports one driven run (see Run).
type Result struct {
	// Rounds is the number of rounds executed; when Done it is the
	// completion round.
	Rounds int
	// Done reports whether the process reached its goal within the cap.
	Done bool
	// Transmissions counts every message sent.
	Transmissions int64
}

// Run drives p through one full run: it resets the process with the
// given start set and steps until the process is Done or maxRounds is
// reached (maxRounds <= 0 means DefaultMaxRounds). The process remains
// usable for further runs.
func Run(p Process, r *rng.Rand, maxRounds int, starts ...int32) (Result, error) {
	if err := p.Reset(starts...); err != nil {
		return Result{}, err
	}
	return drive(nil, p, r, maxRounds)
}

// drive steps an already-Reset process to completion (or the round cap,
// or — with a non-nil ctx — a cancellation noticed within
// cancelCheckInterval rounds). It is the one stepping loop behind Run,
// RunContext and RunCollect.
func drive(ctx context.Context, p Process, r *rng.Rand, maxRounds int) (Result, error) {
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	for !p.Done() && p.Round() < maxRounds {
		if ctx != nil && p.Round()%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return Result{Rounds: p.Round(), Done: false, Transmissions: p.Transmissions()}, err
			}
		}
		p.Step(r)
	}
	return Result{Rounds: p.Round(), Done: p.Done(), Transmissions: p.Transmissions()}, nil
}

// cancelCheckInterval bounds how many rounds a driven run executes
// between context checks in RunContext: slow single trials (a lone
// random walk on a large cycle runs Θ(n²) cheap rounds) notice a
// cancellation within this many rounds, while the per-round overhead of
// ctx.Err() stays off the fast path.
const cancelCheckInterval = 64

// RunContext is Run with prompt cancellation: it checks ctx every
// cancelCheckInterval rounds and aborts the run with ctx.Err() mid-trial
// instead of running to completion. A nil ctx behaves like Run. The
// returned Result reflects the partial run when the error is non-nil;
// the process remains usable (Reset discards the partial state).
func RunContext(ctx context.Context, p Process, r *rng.Rand, maxRounds int, starts ...int32) (Result, error) {
	if err := p.Reset(starts...); err != nil {
		return Result{}, err
	}
	return drive(ctx, p, r, maxRounds)
}

// checkGraph validates a graph at construction time: processes are
// undefined on empty graphs and graphs with isolated vertices.
func checkGraph(g *graph.Graph) error {
	if g == nil || g.N() == 0 {
		return errors.New("process: empty graph")
	}
	if g.MinDegree() == 0 {
		return errors.New("process: graph has an isolated vertex")
	}
	return nil
}

// checkStarts validates a Reset start set.
func checkStarts(g *graph.Graph, starts []int32) error {
	return checkStartsN(g.N(), starts)
}

// checkStartsN is checkStarts for engines that hold only the vertex count.
func checkStartsN(n int, starts []int32) error {
	if len(starts) == 0 {
		return errors.New("process: empty start set")
	}
	for _, s := range starts {
		if s < 0 || int(s) >= n {
			return fmt.Errorf("process: start vertex %d out of range [0,%d)", s, n)
		}
	}
	return nil
}

// Reacher is the optional Process extension the differential test harness
// keys on: engines that can enumerate their reached set implement it,
// returning the vertices in ascending id order. The native cobra/bips
// engines and the difftest reference adapters all do.
type Reacher interface {
	AppendReached(dst []int32) []int32
}

// stampSet is an O(1)-clear membership set over vertex ids: v is a
// member iff stamp[v] == epoch, so clear is an epoch bump and only the
// (rare) wrap-around pays an O(n) flush. This is the buffer-reuse
// pattern that keeps Reset allocation-free.
type stampSet struct {
	stamp []uint32
	epoch uint32
}

func newStampSet(n int) stampSet {
	return stampSet{stamp: make([]uint32, n), epoch: 1}
}

func (s *stampSet) clear() {
	s.epoch++
	if s.epoch == 0 { // wrap-around: flush stale stamps
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
}

func (s *stampSet) has(v int32) bool { return s.stamp[v] == s.epoch }

// add inserts v and reports whether it was absent.
func (s *stampSet) add(v int32) bool {
	if s.stamp[v] == s.epoch {
		return false
	}
	s.stamp[v] = s.epoch
	return true
}
