package process

import (
	"path/filepath"
	"sync"
	"testing"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/graphstore"
	"cobrawalk/internal/rng"
)

// TestKernelStepZeroAlloc pins the kernel engines' steady-state
// allocation contract: after construction and one warm-up run, whole
// trials (Reset + Steps) on a multi-worker kernel perform zero
// allocations — the pool dispatch, the per-chunk reseeds and the
// staging writes all reuse construction-time buffers.
func TestKernelStepZeroAlloc(t *testing.T) {
	g := expander(t, 1<<12, 8)
	for _, name := range []string{CobraPar, BIPSPar} {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := New(name, g, Config{KernelWorkers: 4})
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(3)
			starts := []int32{0}
			if _, err := Run(p, r, 0, starts...); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(3, func() {
				if _, err := Run(p, r, 0, starts...); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("%s steady-state trial allocates %.1f times, want 0", name, allocs)
			}
		})
	}
}

// TestKernelHammerSharedMmapGraph is the race hammer: 16 goroutines,
// each owning a kernel engine with several workers, run concurrent
// Reset/Step trials over ONE shared memory-mapped graph. Under -race
// this proves the parallel phase reads the shared CSR arrays without a
// single write, and that no two engines' pools interfere. Each
// goroutine also checks its runs stay deterministic while the other 15
// hammer the same mapping.
func TestKernelHammerSharedMmapGraph(t *testing.T) {
	g, err := graph.RandomRegularConnected(1<<10, 8, rng.New(1234))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "hammer.csrg")
	if err := graphstore.Write(path, g); err != nil {
		t.Fatal(err)
	}
	shared, err := graphstore.Mmap(path)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		name := CobraPar
		if i%2 == 1 {
			name = BIPSPar
		}
		p, err := New(name, shared, Config{KernelWorkers: 3})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, p Process) {
			defer wg.Done()
			r := rng.New(uint64(i))
			first, err := Run(p, r, 1<<14, 0)
			if err != nil {
				errc <- err
				return
			}
			for trial := 0; trial < 4; trial++ {
				again, err := Run(p, rng.New(uint64(i)), 1<<14, 0)
				if err != nil {
					errc <- err
					return
				}
				if again != first {
					errc <- &Mismatched{i, trial, first, again}
					return
				}
			}
		}(i, p)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// Mismatched reports a hammer goroutine whose repeat run diverged.
type Mismatched struct {
	Goroutine, Trial int
	Want, Got        Result
}

func (m *Mismatched) Error() string {
	return "kernel hammer: goroutine repeat run diverged"
}
