package process

import (
	"errors"

	"cobrawalk/internal/core"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// bipsProc adapts core.BIPS to the Process interface. The first start
// vertex is the persistent source; any further starts seed A_0.
type bipsProc struct {
	b        *core.BIPS
	obs      RoundObserver
	prevSent int64
}

func newBipsProc(g *graph.Graph, cfg Config) (Process, error) {
	opts := []core.Option{core.WithBranching(cfg.branching())}
	if cfg.FastSampling {
		opts = append(opts, core.WithFastSampling())
	}
	b, err := core.NewBIPS(g, opts...)
	if err != nil {
		return nil, err
	}
	return &bipsProc{b: b, obs: cfg.Observer}, nil
}

func (p *bipsProc) Reset(starts ...int32) error {
	if len(starts) == 0 {
		return errors.New("process: empty start set")
	}
	p.prevSent = 0
	return p.b.Reset(starts[0], starts[1:]...)
}

func (p *bipsProc) Step(r *rng.Rand) {
	p.b.Step(r)
	if p.obs != nil {
		sent := p.b.Transmissions()
		p.obs(RoundStat{
			Round:         p.b.Round(),
			Active:        p.b.InfectedCount(),
			Reached:       p.b.InfectedCount(),
			Transmissions: sent - p.prevSent,
		})
		p.prevSent = sent
	}
}

func (p *bipsProc) Done() bool           { return p.b.FullyInfected() }
func (p *bipsProc) Round() int           { return p.b.Round() }
func (p *bipsProc) ReachedCount() int    { return p.b.InfectedCount() }
func (p *bipsProc) Transmissions() int64 { return p.b.Transmissions() }
