package process

import (
	"math"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// bipsProc is the native BIPS (biased infection with persistent source)
// engine: the first start vertex is the permanently infected source; at
// every round each vertex with an infected neighbour samples K random
// neighbours with replacement (plus one with probability Rho) and joins
// A_{t+1} iff at least one sample lies in A_t. BIPS is the time-reversal
// dual of COBRA (Theorem 4); a Step costs O(Σ_{v∈A_t} deg(v)).
//
// Membership lives in byte maps rather than bitsets: `infB[v]` is 1 when
// v ∈ A_t, `candB[v]` is 1 once v has been discovered as a candidate this
// round. A byte map costs 8× the memory of a bitset (16 KB at n = 2^14 —
// still L1-resident) but the per-arc update is a plain load/store pair
// with no shift/mask arithmetic and, crucially, no read-modify-write of a
// word shared by 64 vertices: with a 256-word bitset, consecutive arcs
// hit the same word often enough that the OR chains serialize through
// store-forwarding, and the candidate scan touches every arc of the
// infected set. The hot loops are branchless — candidate discovery and
// the hit test are folded into unconditional stores plus arithmetic index
// advancement into fixed n+1-length buffers (see cobraProc for why: the
// membership branches are data-dependent coin flips whose mispredicts
// flush the pipeline and squash the out-of-order window hiding the random
// row loads). infCount (d_A per candidate) is touched only on the
// fast-sampling path.
//
// The generator is consumed exactly like the reference implementation
// (core.BIPS) — candidates are discovered in infected-list order, and per
// candidate the exact path draws an optional Rho Bernoulli then one
// bounded draw per sample, while the fast path draws the optional Rho
// Bernoulli then one Bernoulli against the closed-form infection
// probability, computed with the identical float expression. The
// differential harness (internal/process/difftest) pins the
// byte-identity; do not reorder draws or refactor the probability
// arithmetic.
type bipsProc struct {
	// g pins the source graph: see cobraProc — the CSR slices alias it,
	// and mmap-backed graphs unmap when the graph becomes unreachable.
	g         *graph.Graph
	offsets   []int64
	neighbors []int32
	n         int
	reg       int32       // common degree when the graph is regular, else 0
	samp      rng.Bounded // sampler over [0, reg) when regular

	k    int
	rho  float64
	fast bool
	obs  RoundObserver

	source   int32
	infB     []uint8 // infB[v] == 1 iff v ∈ A_t
	candB    []uint8 // candB[v] == 1 iff v already discovered this round
	infCount []int32
	infBuf   []int32  // A_t, first infLen entries (+ sentinel slot)
	nextBuf  []int32  // A_{t+1} under construction
	candBuf  []int32  // Γ(A_t) minus the source, in discovery order
	hitBuf   []uint8  // per-candidate hit flags for the two-pass tight loop
	drawBuf  []uint64 // bulk-generated draws, one L1-sized chunk at a time
	infLen   int

	round int
	sent  int64
}

func newBipsProc(g *graph.Graph, cfg Config) (Process, error) {
	if err := checkGraph(g); err != nil {
		return nil, err
	}
	br := cfg.branching()
	if err := br.Validate(); err != nil {
		return nil, err
	}
	offsets, neighbors := g.CSR()
	p := &bipsProc{
		g:         g,
		offsets:   offsets,
		neighbors: neighbors,
		n:         g.N(),
		k:         br.K,
		rho:       br.Rho,
		fast:      cfg.FastSampling,
		obs:       cfg.Observer,
		infB:      make([]uint8, g.N()),
		candB:     make([]uint8, g.N()),
		infBuf:    make([]int32, g.N()+1),
		nextBuf:   make([]int32, g.N()+1),
		candBuf:   make([]int32, g.N()+1),
		hitBuf:    make([]uint8, g.N()+1),
	}
	if cfg.FastSampling {
		p.infCount = make([]int32, g.N())
	}
	if reg, err := g.Regularity(); err == nil {
		p.reg = int32(reg)
		p.samp = rng.NewBounded(uint64(reg))
		if _, pow2 := p.samp.Mask(); pow2 && !p.fast {
			// One L1-sized chunk of bulk draws for the tight loop; at
			// least K so a block always holds one whole candidate.
			size := 2048
			if p.k > size {
				size = p.k
			}
			p.drawBuf = make([]uint64, size)
		}
	}
	return p, nil
}

// Reset prepares the run with source starts[0] and A_0 = set(starts).
func (p *bipsProc) Reset(starts ...int32) error {
	if err := checkStartsN(p.n, starts); err != nil {
		return err
	}
	clear(p.infB)
	p.source = starts[0]
	p.infLen = 0
	p.round = 0
	p.sent = 0
	for _, s := range starts {
		if p.infB[s] == 0 {
			p.infB[s] = 1
			p.infBuf[p.infLen] = s
			p.infLen++
		}
	}
	return nil
}

// clearByteMembers zeroes the byte-map entries named by members, switching
// to a whole-map memclr when the members would dirty a comparable number of
// cache lines anyway: member-wise clearing is a random store per member,
// memclr is a straight-line sweep.
func clearByteMembers(b []uint8, members []int32) {
	if len(members) >= len(b)>>3 {
		clear(b)
		return
	}
	for _, v := range members {
		b[v] = 0
	}
}

func (p *bipsProc) Step(r *rng.Rand) {
	sentBefore := p.sent
	// Collect candidates: the inclusive neighbourhood Γ(A_t), in
	// infected-list discovery order (the order the RNG stream is spent
	// in). The byte maps and CSR arrays are hoisted into locals throughout
	// Step: stores through the maps could alias p, so without the hoist
	// the compiler reloads each slice header from p on every arc. On the
	// fast path, accumulate d_A(u) while scanning.
	cands := p.candBuf
	candB := p.candB
	nb := p.neighbors
	offsets := p.offsets
	infected := p.infBuf[:p.infLen]
	nc := 0
	// Pre-mark the source so it never enters the candidate list: the
	// protocol skips it without consuming any draws, so excluding it here
	// keeps the RNG stream identical while letting every evaluation loop
	// below run with no per-candidate source test at all. The mark is
	// undone after the round's cleanup.
	candB[p.source] = 1
	if p.fast {
		infCount := p.infCount
		for _, v := range infected {
			for _, u := range nb[offsets[v]:offsets[v+1]] {
				if candB[u] == 0 {
					candB[u] = 1
					cands[nc] = u
					nc++
					infCount[u] = 0
				}
				infCount[u]++
			}
		}
	} else if p.reg > 0 {
		// Regular graph: row v is nb[v·reg : (v+1)·reg] — no offsets
		// loads — and discovery is branchless: mark and store
		// unconditionally, advance on a fresh candidate byte. Once every
		// non-source vertex is a candidate no row can contribute more, so
		// dense rounds break out of the scan early (the check is per row,
		// not per arc, and predicts perfectly until the exit).
		// The row scan is unrolled two arcs per iteration (plus an odd
		// tail): the per-arc work is four µops, so halving the loop
		// control is a measurable slice of the round. A duplicate
		// neighbour inside one pair is still counted once — the second
		// byte load observes the first store.
		reg := int64(p.reg)
		full := p.n - 1
		pf := p.hitBuf
		last := len(infected) - 1
		for i, v := range infected {
			if nc == full {
				break
			}
			pf[p.n] = uint8(nb[int64(infected[min(i+8, last)])*reg])
			a := int64(v) * reg
			end := a + reg
			for ; a+1 < end; a += 2 {
				u0, u1 := nb[a], nb[a+1]
				old0 := candB[u0]
				candB[u0] = 1
				cands[nc] = u0
				nc += int(old0) ^ 1
				old1 := candB[u1]
				candB[u1] = 1
				cands[nc] = u1
				nc += int(old1) ^ 1
			}
			if a < end {
				u := nb[a]
				old := candB[u]
				candB[u] = 1
				cands[nc] = u
				nc += int(old) ^ 1
			}
		}
	} else {
		for _, v := range infected {
			for _, u := range nb[offsets[v]:offsets[v+1]] {
				old := candB[u]
				candB[u] = 1
				cands[nc] = u
				nc += int(old) ^ 1
			}
		}
	}
	cands = cands[:nc]

	next := p.nextBuf
	next[0] = p.source // the source is always infected
	j := 1

	k := p.k
	rho := p.rho
	if p.fast {
		infCount := p.infCount
		for _, u := range cands {
			deg := offsets[u+1] - offsets[u]
			pp := float64(infCount[u]) / float64(deg)
			prob := 1 - missProb(pp, k)*(1-rho*pp)
			p.sent += int64(k) // expected-equivalent accounting
			if rho > 0 && r.Bernoulli(rho) {
				p.sent++
			}
			if r.Bernoulli(prob) {
				next[j] = u
				j++
			}
		}
	} else if p.reg > 0 && rho == 0 {
		// Regular graph, integral branching: the tight loop, in two
		// passes. Pass one draws every sample (no short-circuit on the
		// first hit, so transmission counts reflect the protocol as
		// defined) and records a per-candidate hit flag; its iterations
		// carry no cross-iteration data dependency, so the out-of-order
		// core overlaps the random row loads across candidates. On the
		// power-of-two degree path the draws are bulk-generated with
		// FillUint64 in L1-sized chunks — the candidate count fixes the
		// draw count up front, so the chunked stream is identical to
		// per-call draws, state included — and K = 2 (the paper's default
		// branching) gets a fully unrolled body. Pass two compacts the
		// hit candidates into A_{t+1} — a branchless index bump over
		// L1-resident flags, keeping the serial part of the round off
		// the load-latency chain.
		reg := int64(p.reg)
		samp := p.samp
		mask, pow2 := p.samp.Mask()
		infB := p.infB
		hit := p.hitBuf
		if pow2 {
			draws := p.drawBuf
			blockCands := len(draws) / k
			for lo := 0; lo < len(cands); lo += blockCands {
				hi := lo + blockCands
				if hi > len(cands) {
					hi = len(cands)
				}
				block := cands[lo:hi]
				r.FillUint64(draws[:len(block)*k])
				pos := 0
				if k == 2 {
					for bi, u := range block {
						base := int64(u) * reg
						w0 := nb[base+int64(draws[pos]&mask)]
						w1 := nb[base+int64(draws[pos+1]&mask)]
						pos += 2
						hit[lo+bi] = infB[w0] | infB[w1]
					}
				} else {
					for bi, u := range block {
						base := int64(u) * reg
						var hits uint8
						for s := 0; s < k; s++ {
							w := nb[base+int64(draws[pos]&mask)]
							pos++
							hits |= infB[w]
						}
						hit[lo+bi] = hits
					}
				}
			}
		} else {
			for i, u := range cands {
				base := int64(u) * reg
				var hits uint8
				for s := 0; s < k; s++ {
					w := nb[base+int64(samp.Next(r))]
					hits |= infB[w]
				}
				hit[i] = hits
			}
		}
		for i, u := range cands {
			next[j] = u
			j += int(hit[i])
		}
		p.sent += int64(k) * int64(len(cands))
	} else {
		infB := p.infB
		for _, u := range cands {
			lo, hi := offsets[u], offsets[u+1]
			deg := uint64(hi - lo)
			samples := k
			if rho > 0 && r.Bernoulli(rho) {
				samples++
			}
			var hits uint8
			for i := 0; i < samples; i++ {
				p.sent++
				w := nb[lo+int64(r.Uint64n(deg))]
				hits |= infB[w]
			}
			if hits != 0 {
				next[j] = u
				j++
			}
		}
	}

	// Swap infected sets: clear the per-round candidate marks (including
	// the source pre-mark) and the old membership marks (member-wise when
	// sparse, memclr when dense), then stamp the new set.
	clearByteMembers(candB, cands)
	candB[p.source] = 0
	infB := p.infB
	clearByteMembers(infB, infected)
	for _, u := range next[:j] {
		infB[u] = 1
	}
	p.infBuf, p.nextBuf = next, p.infBuf
	p.infLen = j
	p.round++
	if p.obs != nil {
		p.obs(RoundStat{Round: p.round, Active: p.infLen, Reached: p.infLen,
			Transmissions: p.sent - sentBefore})
	}
}

// missProb returns (1-p)^k with small integer exponents multiplied out —
// identical, operation for operation, to the reference implementation's
// core.missProb so the fast path's infection probabilities match bit for
// bit.
func missProb(p float64, k int) float64 {
	q := 1 - p
	switch k {
	case 1:
		return q
	case 2:
		return q * q
	case 3:
		return q * q * q
	case 4:
		qq := q * q
		return qq * qq
	default:
		return math.Pow(q, float64(k))
	}
}

func (p *bipsProc) Done() bool           { return p.infLen == p.n }
func (p *bipsProc) Round() int           { return p.round }
func (p *bipsProc) ReachedCount() int    { return p.infLen }
func (p *bipsProc) Transmissions() int64 { return p.sent }

// AppendReached appends A_t in ascending vertex order.
func (p *bipsProc) AppendReached(dst []int32) []int32 {
	for v, x := range p.infB {
		if x != 0 {
			dst = append(dst, int32(v))
		}
	}
	return dst
}
