package process

import (
	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// floodProc is flooding as a reusable process: every informed vertex
// forwards to all neighbours every round. Rounds equal the eccentricity
// of the start vertex — the fastest possible broadcast — at the cost of
// Θ(m) messages per round. Flooding is deterministic; Step ignores its
// generator (kept for interface symmetry) and draws nothing from it.
type floodProc struct {
	g        *graph.Graph
	informed stampSet
	active   []int32 // every informed vertex, in discovery order
	round    int
	sent     int64
	obs      RoundObserver
}

func newFloodProc(g *graph.Graph, cfg Config) (Process, error) {
	if err := checkGraph(g); err != nil {
		return nil, err
	}
	return &floodProc{g: g, informed: newStampSet(g.N()), obs: cfg.Observer}, nil
}

func (p *floodProc) Reset(starts ...int32) error {
	if err := checkStarts(p.g, starts); err != nil {
		return err
	}
	p.informed.clear()
	p.active = p.active[:0]
	p.round = 0
	p.sent = 0
	for _, s := range starts {
		if p.informed.add(s) {
			p.active = append(p.active, s)
		}
	}
	return nil
}

func (p *floodProc) Step(_ *rng.Rand) {
	g := p.g
	m := len(p.active) // all informed vertices forward every round
	var sent int64
	for i := 0; i < m; i++ {
		v := p.active[i]
		sent += int64(g.Degree(v))
		for _, u := range g.Neighbors(v) {
			if p.informed.add(u) {
				p.active = append(p.active, u)
			}
		}
	}
	p.round++
	p.sent += sent
	if p.obs != nil {
		p.obs(RoundStat{Round: p.round, Active: len(p.active), Reached: len(p.active), Transmissions: sent})
	}
}

func (p *floodProc) Done() bool           { return len(p.active) == p.g.N() }
func (p *floodProc) Round() int           { return p.round }
func (p *floodProc) ReachedCount() int    { return len(p.active) }
func (p *floodProc) Transmissions() int64 { return p.sent }
