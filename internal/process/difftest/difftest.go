// Package difftest pins the native cobra/bips engines of internal/process
// to the reference implementations in internal/core.
//
// The native engines (bitset frontiers over the CSR arrays, precomputed
// bounded samplers) are performance rewrites of the stamp-array processes
// in internal/core, under one hard contract: driven from identical RNG
// streams they must be byte-identical to the reference — same reached
// sets, same transmission counts, same per-round trajectories across
// every sweep metric. This package holds both halves of that pin: the
// reference engines re-adapted to the Process interface (the thin
// adapters that used to *be* the production cobra/bips processes, demoted
// here to test-only duty), and the lockstep harness that drives a native
// and a reference engine from cloned generators and diffs everything
// observable after every round.
package difftest

import (
	"errors"
	"fmt"
	"slices"

	"cobrawalk/internal/core"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/process"
	"cobrawalk/internal/rng"
)

// NewCoreCobra adapts core.Cobra — the reference COBRA implementation —
// to the Process interface. This is the adapter that used to back the
// "cobra" registry entry before the native engine landed.
func NewCoreCobra(g *graph.Graph, cfg process.Config) (process.Process, error) {
	br := cfg.Branching
	if br == (process.Branching{}) {
		br = process.DefaultBranching
	}
	c, err := core.NewCobra(g, core.WithBranching(br))
	if err != nil {
		return nil, err
	}
	return &coreCobra{c: c, g: g, obs: cfg.Observer}, nil
}

type coreCobra struct {
	c        *core.Cobra
	g        *graph.Graph
	obs      process.RoundObserver
	prevSent int64
}

func (p *coreCobra) Reset(starts ...int32) error {
	p.prevSent = 0
	return p.c.Reset(starts...)
}

func (p *coreCobra) Step(r *rng.Rand) {
	p.c.Step(r)
	if p.obs != nil {
		sent := p.c.Transmissions()
		p.obs(process.RoundStat{
			Round:         p.c.Round(),
			Active:        p.c.ActiveCount(),
			Reached:       p.c.VisitedCount(),
			Transmissions: sent - p.prevSent,
		})
		p.prevSent = sent
	}
}

func (p *coreCobra) Done() bool           { return p.c.Covered() }
func (p *coreCobra) Round() int           { return p.c.Round() }
func (p *coreCobra) ReachedCount() int    { return p.c.VisitedCount() }
func (p *coreCobra) Transmissions() int64 { return p.c.Transmissions() }

// AppendReached appends the visited set in ascending vertex order.
func (p *coreCobra) AppendReached(dst []int32) []int32 {
	for v := int32(0); int(v) < p.g.N(); v++ {
		if p.c.Visited(v) {
			dst = append(dst, v)
		}
	}
	return dst
}

// NewCoreBips adapts core.BIPS — the reference BIPS implementation — to
// the Process interface. The first start vertex is the persistent source;
// any further starts seed A_0.
func NewCoreBips(g *graph.Graph, cfg process.Config) (process.Process, error) {
	br := cfg.Branching
	if br == (process.Branching{}) {
		br = process.DefaultBranching
	}
	opts := []core.Option{core.WithBranching(br)}
	if cfg.FastSampling {
		opts = append(opts, core.WithFastSampling())
	}
	b, err := core.NewBIPS(g, opts...)
	if err != nil {
		return nil, err
	}
	return &coreBips{b: b, g: g, obs: cfg.Observer}, nil
}

type coreBips struct {
	b        *core.BIPS
	g        *graph.Graph
	obs      process.RoundObserver
	prevSent int64
}

func (p *coreBips) Reset(starts ...int32) error {
	if len(starts) == 0 {
		return errors.New("difftest: empty start set")
	}
	p.prevSent = 0
	return p.b.Reset(starts[0], starts[1:]...)
}

func (p *coreBips) Step(r *rng.Rand) {
	p.b.Step(r)
	if p.obs != nil {
		sent := p.b.Transmissions()
		p.obs(process.RoundStat{
			Round:         p.b.Round(),
			Active:        p.b.InfectedCount(),
			Reached:       p.b.InfectedCount(),
			Transmissions: sent - p.prevSent,
		})
		p.prevSent = sent
	}
}

func (p *coreBips) Done() bool           { return p.b.FullyInfected() }
func (p *coreBips) Round() int           { return p.b.Round() }
func (p *coreBips) ReachedCount() int    { return p.b.InfectedCount() }
func (p *coreBips) Transmissions() int64 { return p.b.Transmissions() }

// AppendReached appends A_t in ascending vertex order.
func (p *coreBips) AppendReached(dst []int32) []int32 {
	for v := int32(0); int(v) < p.g.N(); v++ {
		if p.b.Infected(v) {
			dst = append(dst, v)
		}
	}
	return dst
}

// Reference returns the reference-implementation factory for a native
// process name, or nil if the name has no reference twin.
func Reference(name string) process.Factory {
	switch name {
	case process.Cobra:
		return NewCoreCobra
	case process.BIPS:
		return NewCoreBips
	default:
		return nil
	}
}

// Mismatch describes the first divergence a lockstep run found. The
// zero-value-pointer (nil) means the run was byte-identical.
type Mismatch struct {
	Round int
	Field string
	Want  string // reference engine's value
	Got   string // native engine's value
}

func (m *Mismatch) Error() string {
	return fmt.Sprintf("difftest: round %d: %s: native %s != reference %s", m.Round, m.Field, m.Got, m.Want)
}

// Lockstep drives a native and a reference engine from identically seeded
// generators and compares everything observable after every round: Round,
// Done, ReachedCount, Transmissions, the RoundStat streams delivered to
// the observers, the generators' own states (a consumption skew that
// happens not to change this round's outputs still fails), and — on Done
// or the round cap — the full reached sets. It returns nil when the
// engines were byte-identical for the whole run, or the first divergence.
//
// Both engines are constructed fresh from their factories so the harness
// also covers construction-time defaults, and each is driven twice from
// the same seed to pin Reset reusability.
func Lockstep(g *graph.Graph, cfg process.Config, native, reference process.Factory,
	seed uint64, maxRounds int, starts ...int32) error {
	if maxRounds <= 0 {
		maxRounds = process.DefaultMaxRounds
	}

	var natStats, refStats []process.RoundStat
	natCfg, refCfg := cfg, cfg
	natCfg.Observer = func(rs process.RoundStat) { natStats = append(natStats, rs) }
	refCfg.Observer = func(rs process.RoundStat) { refStats = append(refStats, rs) }

	nat, err := native(g, natCfg)
	if err != nil {
		return fmt.Errorf("difftest: constructing native engine: %w", err)
	}
	ref, err := reference(g, refCfg)
	if err != nil {
		return fmt.Errorf("difftest: constructing reference engine: %w", err)
	}

	for rerun := 0; rerun < 2; rerun++ {
		natStats, refStats = natStats[:0], refStats[:0]
		natRNG, refRNG := rng.New(seed), rng.New(seed)
		if err := nat.Reset(starts...); err != nil {
			return fmt.Errorf("difftest: native Reset: %w", err)
		}
		if err := ref.Reset(starts...); err != nil {
			return fmt.Errorf("difftest: reference Reset: %w", err)
		}
		if err := compareRound(nat, ref, natStats, refStats, natRNG, refRNG); err != nil {
			return err
		}
		for !ref.Done() && ref.Round() < maxRounds {
			nat.Step(natRNG)
			ref.Step(refRNG)
			if err := compareRound(nat, ref, natStats, refStats, natRNG, refRNG); err != nil {
				return err
			}
		}
		if err := compareReached(nat, ref); err != nil {
			return err
		}
	}
	return nil
}

// LockstepWorkers pins the parallel round kernels' determinism contract:
// the same kernel process constructed at two different KernelWorkers
// settings, driven from identically seeded generators, must be
// byte-identical in everything observable — Round, Done, ReachedCount,
// Transmissions, the RoundStat streams, the trial generators' own states
// (the kernels spend exactly one trial-stream draw per round; a skew
// fails even when this round's outputs agree), and the full reached set
// after every round (not just at the end: a transient divergence that
// later re-coalesces still fails). Both engines are driven twice from
// the same seed to pin Reset reusability, mirroring Lockstep.
//
// The engine at workersA is the "reference" side of reported Mismatches,
// the engine at workersB the "native" side.
func LockstepWorkers(g *graph.Graph, cfg process.Config, factory process.Factory,
	workersA, workersB int, seed uint64, maxRounds int, starts ...int32) error {
	if maxRounds <= 0 {
		maxRounds = process.DefaultMaxRounds
	}

	var aStats, bStats []process.RoundStat
	aCfg, bCfg := cfg, cfg
	aCfg.KernelWorkers = workersA
	bCfg.KernelWorkers = workersB
	aCfg.Observer = func(rs process.RoundStat) { aStats = append(aStats, rs) }
	bCfg.Observer = func(rs process.RoundStat) { bStats = append(bStats, rs) }

	pa, err := factory(g, aCfg)
	if err != nil {
		return fmt.Errorf("difftest: constructing %d-worker engine: %w", workersA, err)
	}
	pb, err := factory(g, bCfg)
	if err != nil {
		return fmt.Errorf("difftest: constructing %d-worker engine: %w", workersB, err)
	}

	for rerun := 0; rerun < 2; rerun++ {
		aStats, bStats = aStats[:0], bStats[:0]
		aRNG, bRNG := rng.New(seed), rng.New(seed)
		if err := pa.Reset(starts...); err != nil {
			return fmt.Errorf("difftest: %d-worker Reset: %w", workersA, err)
		}
		if err := pb.Reset(starts...); err != nil {
			return fmt.Errorf("difftest: %d-worker Reset: %w", workersB, err)
		}
		if err := compareRound(pb, pa, bStats, aStats, bRNG, aRNG); err != nil {
			return err
		}
		for !pa.Done() && pa.Round() < maxRounds {
			pa.Step(aRNG)
			pb.Step(bRNG)
			if err := compareRound(pb, pa, bStats, aStats, bRNG, aRNG); err != nil {
				return err
			}
			if err := compareReached(pb, pa); err != nil {
				return err
			}
		}
	}
	return nil
}

// compareRound diffs every per-round observable of the two engines.
func compareRound(nat, ref process.Process, natStats, refStats []process.RoundStat, natRNG, refRNG *rng.Rand) error {
	round := ref.Round()
	if got, want := nat.Round(), ref.Round(); got != want {
		return &Mismatch{round, "Round", itoa(want), itoa(got)}
	}
	if got, want := nat.Done(), ref.Done(); got != want {
		return &Mismatch{round, "Done", fmt.Sprint(want), fmt.Sprint(got)}
	}
	if got, want := nat.ReachedCount(), ref.ReachedCount(); got != want {
		return &Mismatch{round, "ReachedCount", itoa(want), itoa(got)}
	}
	if got, want := nat.Transmissions(), ref.Transmissions(); got != want {
		return &Mismatch{round, "Transmissions", fmt.Sprint(want), fmt.Sprint(got)}
	}
	if got, want := len(natStats), len(refStats); got != want {
		return &Mismatch{round, "observed rounds", itoa(want), itoa(got)}
	}
	for i := range refStats {
		if natStats[i] != refStats[i] {
			return &Mismatch{round, fmt.Sprintf("RoundStat[%d]", i),
				fmt.Sprintf("%+v", refStats[i]), fmt.Sprintf("%+v", natStats[i])}
		}
	}
	if got, want := natRNG.State(), refRNG.State(); got != want {
		return &Mismatch{round, "generator state",
			fmt.Sprintf("%x", want), fmt.Sprintf("%x", got)}
	}
	return nil
}

// compareReached diffs the engines' full reached sets.
func compareReached(nat, ref process.Process) error {
	natR, okN := nat.(process.Reacher)
	refR, okR := ref.(process.Reacher)
	if !okN || !okR {
		return errors.New("difftest: engine does not implement process.Reacher")
	}
	got := natR.AppendReached(nil)
	want := refR.AppendReached(nil)
	if !slices.Equal(got, want) {
		return &Mismatch{ref.Round(), "reached set",
			fmt.Sprintf("%d vertices %v…", len(want), head(want)),
			fmt.Sprintf("%d vertices %v…", len(got), head(got))}
	}
	return nil
}

func head(s []int32) []int32 {
	if len(s) > 8 {
		return s[:8]
	}
	return s
}

func itoa(v int) string { return fmt.Sprint(v) }
