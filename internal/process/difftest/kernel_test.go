package difftest

import (
	"errors"
	"fmt"
	"testing"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/process"
	"cobrawalk/internal/rng"
)

// TestKernelWorkerInvarianceCobra pins the parallel COBRA kernel's
// determinism contract across the family × size × degree × branching
// grid: one worker versus eight workers must be byte-identical in every
// observable — reached sets after every round, transmissions,
// trajectories, trial-generator states — including a Reset rerun and a
// deduplicating multi-vertex start set.
func TestKernelWorkerInvarianceCobra(t *testing.T) {
	for _, g := range gridGraphs(t) {
		for _, br := range branchings {
			g, br := g, br
			t.Run(fmt.Sprintf("%s/%s", g.Name(), br), func(t *testing.T) {
				t.Parallel()
				cfg := process.Config{Branching: br}
				factory := nativeFactory(t, process.CobraPar)
				seed := uint64(len(g.Name())) + uint64(br.K)<<8 + 13
				if err := LockstepWorkers(g, cfg, factory, 1, 8, seed, 1<<14, 0); err != nil {
					t.Fatal(err)
				}
				starts := []int32{0, int32(g.N() / 2), 0}
				if err := LockstepWorkers(g, cfg, factory, 1, 8, seed+1, 1<<14, starts...); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestKernelWorkerInvarianceBips is the BIPS half of the grid, on both
// the exact-sampling and the closed-form fast path.
func TestKernelWorkerInvarianceBips(t *testing.T) {
	for _, g := range gridGraphs(t) {
		for _, br := range branchings {
			for _, fast := range []bool{false, true} {
				g, br, fast := g, br, fast
				name := fmt.Sprintf("%s/%s/fast=%v", g.Name(), br, fast)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					cfg := process.Config{Branching: br, FastSampling: fast}
					factory := nativeFactory(t, process.BIPSPar)
					seed := uint64(len(g.Name())) + uint64(br.K)<<8 + 29
					if err := LockstepWorkers(g, cfg, factory, 1, 8, seed, 1<<14, 0); err != nil {
						t.Fatal(err)
					}
					starts := []int32{1, int32(g.N() - 1)}
					if err := LockstepWorkers(g, cfg, factory, 1, 8, seed+1, 1<<14, starts...); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestKernelWorkerCountsPairwise sweeps intermediate worker counts on
// one representative graph: any two counts must agree, not just 1 vs 8
// (a bug that only bites when chunks outnumber workers by a non-integer
// ratio would hide from a single pairing).
func TestKernelWorkerCountsPairwise(t *testing.T) {
	g, err := graph.RandomRegularConnected(256, 8, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{process.CobraPar, process.BIPSPar} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			factory := nativeFactory(t, name)
			for _, w := range []int{2, 3, 5, 16} {
				if err := LockstepWorkers(g, process.Config{}, factory, 1, w, 77, 1<<14, 0); err != nil {
					t.Fatalf("workers 1 vs %d: %v", w, err)
				}
			}
		})
	}
}

// TestLockstepWorkersHasTeeth proves the harness detects divergence: a
// factory that skews the branching factor on the 8-worker side must
// fail with a *Mismatch naming the diverging field.
func TestLockstepWorkersHasTeeth(t *testing.T) {
	g, err := graph.RandomRegularConnected(128, 4, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	skewed := func(g *graph.Graph, cfg process.Config) (process.Process, error) {
		if cfg.KernelWorkers == 8 {
			cfg.Branching = process.Branching{K: 3}
		}
		return nativeFactory(t, process.CobraPar)(g, cfg)
	}
	err = LockstepWorkers(g, process.Config{Branching: process.Branching{K: 2}}, skewed, 1, 8, 11, 1<<14, 0)
	var mm *Mismatch
	if !errors.As(err, &mm) {
		t.Fatalf("skewed kernel engine passed the lockstep harness: %v", err)
	}
}
