package difftest

import (
	"errors"
	"fmt"
	"testing"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/process"
	"cobrawalk/internal/rng"
)

// grid is the family × size × degree slice of the differential suite.
// Regular families drive the native engines' hoisted-degree fast paths;
// the irregular ones (barbell, star) force the per-vertex offsets path.
func gridGraphs(t testing.TB) []*graph.Graph {
	t.Helper()
	var gs []*graph.Graph
	add := func(g *graph.Graph, err error) {
		if err != nil {
			t.Fatal(err)
		}
		gs = append(gs, g)
	}
	for _, n := range []int{64, 256} {
		for _, d := range []int{3, 8} {
			add(graph.RandomRegularConnected(n, d, rng.New(uint64(n*100+d))))
		}
	}
	add(graph.Complete(48))            // deg 47, pow2-free sampler path
	add(graph.Hypercube(6))            // deg 6
	add(graph.Torus(8, 8))             // deg 4
	add(graph.Cycle(101))              // deg 2, slow cover
	add(graph.Barbell(12, 7))          // irregular: cliques + path
	add(graph.Star(33))                // irregular: hub deg 32, leaves deg 1
	add(graph.CompleteBipartite(9, 5)) // irregular bipartite
	return gs
}

var branchings = []process.Branching{
	{K: 1},
	{K: 2},
	{K: 3},
	{K: 5},
	{K: 1, Rho: 0.5},
	{K: 2, Rho: 0.25},
}

// TestLockstepCobra pins native cobra to core.Cobra across the grid:
// byte-identical rounds, reached sets, transmissions, trajectories and
// generator states from identical seeds, including a Reset rerun.
func TestLockstepCobra(t *testing.T) {
	for _, g := range gridGraphs(t) {
		for _, br := range branchings {
			br := br
			t.Run(fmt.Sprintf("%s/%s", g.Name(), br), func(t *testing.T) {
				t.Parallel()
				cfg := process.Config{Branching: br}
				seed := uint64(len(g.Name())) + uint64(br.K)<<8
				if err := Lockstep(g, cfg, nativeFactory(t, process.Cobra), NewCoreCobra, seed, 1<<14, 0); err != nil {
					t.Fatal(err)
				}
				// Multi-vertex start sets exercise Reset dedup too.
				starts := []int32{0, int32(g.N() / 2), 0}
				if err := Lockstep(g, cfg, nativeFactory(t, process.Cobra), NewCoreCobra, seed+1, 1<<14, starts...); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestLockstepBips pins native bips to core.BIPS across the grid, on both
// the exact-sampling and the closed-form fast path.
func TestLockstepBips(t *testing.T) {
	for _, g := range gridGraphs(t) {
		for _, br := range branchings {
			for _, fast := range []bool{false, true} {
				br, fast := br, fast
				name := fmt.Sprintf("%s/%s/fast=%v", g.Name(), br, fast)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					cfg := process.Config{Branching: br, FastSampling: fast}
					seed := uint64(len(g.Name())) + uint64(br.K)<<8 + 7
					if err := Lockstep(g, cfg, nativeFactory(t, process.BIPS), NewCoreBips, seed, 1<<14, 0); err != nil {
						t.Fatal(err)
					}
					starts := []int32{1, int32(g.N() - 1)}
					if err := Lockstep(g, cfg, nativeFactory(t, process.BIPS), NewCoreBips, seed+1, 1<<14, starts...); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// nativeFactory resolves the registry factory for name — the engines
// under test are exactly what production sweeps construct.
func nativeFactory(t testing.TB, name string) process.Factory {
	t.Helper()
	info, err := process.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return info.New
}

// TestLockstepHasTeeth proves the harness detects divergence: a native
// engine configured with a different branching factor must fail, and the
// failure must be a *Mismatch naming the diverging field.
func TestLockstepHasTeeth(t *testing.T) {
	g, err := graph.RandomRegularConnected(128, 4, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	skewed := func(g *graph.Graph, cfg process.Config) (process.Process, error) {
		cfg.Branching = process.Branching{K: 3}
		return nativeFactory(t, process.Cobra)(g, cfg)
	}
	err = Lockstep(g, process.Config{Branching: process.Branching{K: 2}}, skewed, NewCoreCobra, 11, 1<<14, 0)
	var mm *Mismatch
	if !errors.As(err, &mm) {
		t.Fatalf("skewed engine passed the lockstep harness: %v", err)
	}
}

// TestInvariants is the property half of the suite, on the native engines
// alone: reached is monotone non-decreasing for cobra, transmissions ≥
// reached − |starts| for both (every newly reached vertex was hit by at
// least one message), and Done ⇒ full coverage on these connected graphs.
func TestInvariants(t *testing.T) {
	for _, g := range gridGraphs(t) {
		for _, name := range []string{process.Cobra, process.BIPS, process.CobraPar, process.BIPSPar} {
			g, name := g, name
			t.Run(fmt.Sprintf("%s/%s", name, g.Name()), func(t *testing.T) {
				t.Parallel()
				info, err := process.Lookup(name)
				if err != nil {
					t.Fatal(err)
				}
				prevReached := -1
				cfg := process.Config{Observer: func(rs process.RoundStat) {
					if info.Monotone && rs.Reached < prevReached {
						t.Fatalf("round %d: monotone process lost reached vertices: %d -> %d",
							rs.Round, prevReached, rs.Reached)
					}
					prevReached = rs.Reached
					if rs.Active < 0 || rs.Reached < 0 || rs.Reached > g.N() {
						t.Fatalf("round %d: degenerate stat %+v", rs.Round, rs)
					}
				}}
				p, err := info.New(g, cfg)
				if err != nil {
					t.Fatal(err)
				}
				r := rng.New(uint64(g.N()))
				for trial := 0; trial < 3; trial++ {
					prevReached = -1
					res, err := process.Run(p, r, 1<<14, 0)
					if err != nil {
						t.Fatal(err)
					}
					if !res.Done {
						t.Fatalf("trial %d hit the round cap on a connected graph", trial)
					}
					if p.ReachedCount() != g.N() {
						t.Fatalf("Done with %d of %d reached", p.ReachedCount(), g.N())
					}
					if res.Transmissions < int64(g.N()-1) {
						t.Fatalf("covered %d vertices with only %d transmissions", g.N(), res.Transmissions)
					}
					set := p.(process.Reacher).AppendReached(nil)
					if len(set) != g.N() {
						t.Fatalf("AppendReached returned %d of %d vertices", len(set), g.N())
					}
					for i, v := range set {
						if int(v) != i {
							t.Fatalf("AppendReached not the ascending full set at index %d: %d", i, v)
						}
					}
				}
			})
		}
	}
}
