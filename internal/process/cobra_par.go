package process

import (
	"runtime"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// cobraParProc is the parallel-round-kernel variant of the native COBRA
// engine (cobraProc): the same protocol, membership bitsets and
// branchless merge arithmetic, but each round's push sampling — the
// DRAM-latency-bound bulk of a trial at scale — runs as a parallel-for
// over contiguous frontier chunks on a kernelPool.
//
// A Step has three phases:
//
//  1. Seed: one Uint64 draw from the trial stream yields roundSeed —
//     the only draw the trial generator spends per round.
//  2. Sample (parallel): the frontier C_t is cut into kernelChunk-sized
//     chunks. A worker claiming chunk c reseeds its private generator
//     to NewStream(roundSeed, c) and writes the chunk's raw push
//     targets into the chunk's fixed staging region stage[c·stride:],
//     recording the target count and transmission count per chunk. No
//     shared state is written: the bitsets are untouched and infB-style
//     membership reads do not exist in cobra's sampling.
//  3. Merge (sequential): chunks are folded in chunk order with exactly
//     cobraProc's branchless frontier/visited arithmetic, building
//     C_{t+1} and the reached count.
//
// Chunk boundaries depend only on |C_t| and the per-chunk streams only
// on (roundSeed, c), so phases 2–3 produce byte-identical state for
// every worker count; difftest.LockstepWorkers pins this. The engine is
// NOT stream-compatible with cobraProc (which spends the trial stream
// per push, not per round) — the sequential engine stays the reference,
// cobra-par is a registered variant.
//
// All buffers are sized at construction and reused across rounds and
// Resets, so steady-state Steps perform zero allocations.
type cobraParProc struct {
	// g pins the source graph: see cobraProc — the CSR slices alias it,
	// and mmap-backed graphs unmap when the graph becomes unreachable.
	g         *graph.Graph
	offsets   []int64
	neighbors []int32
	n         int
	reg       int32       // common degree when the graph is regular, else 0
	samp      rng.Bounded // sampler over [0, reg) when regular

	k   int
	rho float64
	obs RoundObserver

	pool *kernelPool

	visited  bitset
	frontier bitset
	curBuf   []int32 // C_t, first curLen entries
	nextBuf  []int32 // C_{t+1} under construction
	curLen   int

	// Per-round kernel state. stage is one flat buffer; chunk c owns
	// stage[c·stride : c·stride+stageLen[c]] (stride = kernelChunk ×
	// max pushes per vertex, so regions never overlap). sentC[c] is the
	// chunk's transmission count. roundSeed is read-only during the
	// parallel phase.
	stage     []int32
	stageLen  []int32
	sentC     []int64
	stride    int
	roundSeed uint64

	round   int
	reached int
	sent    int64
}

func newCobraParProc(g *graph.Graph, cfg Config) (Process, error) {
	if err := checkGraph(g); err != nil {
		return nil, err
	}
	br := cfg.branching()
	if err := br.Validate(); err != nil {
		return nil, err
	}
	offsets, neighbors := g.CSR()
	maxPush := br.K
	if br.Rho > 0 {
		maxPush++
	}
	maxChunks := chunksFor(g.N())
	p := &cobraParProc{
		g:         g,
		offsets:   offsets,
		neighbors: neighbors,
		n:         g.N(),
		k:         br.K,
		rho:       br.Rho,
		obs:       cfg.Observer,
		pool:      newKernelPool(cfg.kernelWorkers()),
		visited:   newBitset(g.N()),
		frontier:  newBitset(g.N()),
		// One slot beyond n: see cobraProc — the branchless merge always
		// stores at next[j] and advances only on fresh frontier bits.
		curBuf:   make([]int32, g.N()+1),
		nextBuf:  make([]int32, g.N()+1),
		stage:    make([]int32, maxChunks*kernelChunk*maxPush),
		stageLen: make([]int32, maxChunks),
		sentC:    make([]int64, maxChunks),
		stride:   kernelChunk * maxPush,
	}
	if reg, err := g.Regularity(); err == nil {
		p.reg = int32(reg)
		p.samp = rng.NewBounded(uint64(reg))
	}
	if len(p.pool.start) > 0 {
		// The pool holds no reference to p between rounds, so once the
		// caller drops the engine this hook fires and the helpers exit.
		runtime.AddCleanup(p, func(kp *kernelPool) { kp.stop() }, p.pool)
	}
	return p, nil
}

func (p *cobraParProc) Reset(starts ...int32) error {
	if err := checkStartsN(p.n, starts); err != nil {
		return err
	}
	p.visited.zero()
	p.curLen = 0
	p.round = 0
	p.reached = 0
	p.sent = 0
	for _, s := range starts {
		if p.visited.testAndSet(s) {
			p.reached++
			p.curBuf[p.curLen] = s
			p.curLen++
		}
	}
	return nil
}

// runChunk samples every push of frontier chunk `chunk` into the
// chunk's staging region. It reads only construction-time state plus
// curBuf/roundSeed (both frozen for the round) and writes only
// chunk-owned slots, so chunks race on nothing.
func (p *cobraParProc) runChunk(worker, chunk int) {
	r := p.pool.rands[worker]
	r.ReseedStream(p.roundSeed, uint64(chunk))
	lo := chunk * kernelChunk
	hi := lo + kernelChunk
	if hi > p.curLen {
		hi = p.curLen
	}
	out := p.stage[chunk*p.stride:]
	pos := 0
	nb := p.neighbors
	k := p.k
	if p.reg > 0 && p.rho == 0 {
		// Regular graph, integral branching: no offsets lookups, no
		// Bernoulli branch — the same tight sampling loop as cobraProc,
		// minus the merge (deferred to the sequential phase).
		reg := int64(p.reg)
		mask, pow2 := p.samp.Mask()
		samp := p.samp
		for _, v := range p.curBuf[lo:hi] {
			base := int64(v) * reg
			for i := 0; i < k; i++ {
				var idx uint64
				if pow2 {
					idx = r.Uint64() & mask
				} else {
					idx = samp.Next(r)
				}
				out[pos] = nb[base+int64(idx)]
				pos++
			}
		}
	} else {
		offsets := p.offsets
		rho := p.rho
		for _, v := range p.curBuf[lo:hi] {
			olo, ohi := offsets[v], offsets[v+1]
			deg := uint64(ohi - olo)
			pushes := k
			if rho > 0 && r.Bernoulli(rho) {
				pushes++
			}
			for i := 0; i < pushes; i++ {
				out[pos] = nb[olo+int64(r.Uint64n(deg))]
				pos++
			}
		}
	}
	p.stageLen[chunk] = int32(pos)
	p.sentC[chunk] = int64(pos)
}

func (p *cobraParProc) Step(r *rng.Rand) {
	p.roundSeed = r.Uint64()
	numChunks := chunksFor(p.curLen)
	p.pool.dispatch(p, numChunks)

	// Merge in chunk order — identical arithmetic to cobraProc's push
	// loop, operating on the staged targets. The targets are L2-resident
	// sequential reads and the bitset updates are branchless RMWs, so
	// the serial fraction stays a small slice of the round even though
	// this phase is single-threaded (Amdahl's bound on the kernel).
	next := p.nextBuf
	j := 0
	frontier, visited := p.frontier, p.visited
	reached := p.reached
	var sent int64
	for c := 0; c < numChunks; c++ {
		sent += p.sentC[c]
		base := c * p.stride
		for _, u := range p.stage[base : base+int(p.stageLen[c])] {
			w := uint32(u) >> 6
			bit := uint32(u) & 63
			m := uint64(1) << bit
			old := frontier[w]
			vis := visited[w]
			frontier[w] = old | m
			visited[w] = vis | m
			next[j] = u
			j += sel(old, bit)
			reached += sel(vis, bit)
		}
	}
	p.reached = reached
	p.frontier.clearMembers(next[:j])
	p.curBuf, p.nextBuf = next, p.curBuf
	p.curLen = j
	p.round++
	p.sent += sent
	if p.obs != nil {
		p.obs(RoundStat{Round: p.round, Active: p.curLen, Reached: p.reached, Transmissions: sent})
	}
}

func (p *cobraParProc) Done() bool           { return p.reached == p.n }
func (p *cobraParProc) Round() int           { return p.round }
func (p *cobraParProc) ReachedCount() int    { return p.reached }
func (p *cobraParProc) Transmissions() int64 { return p.sent }

// AppendReached appends the visited set in ascending vertex order.
func (p *cobraParProc) AppendReached(dst []int32) []int32 {
	return appendBits(dst, p.visited, p.n)
}
