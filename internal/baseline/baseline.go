// Package baseline is the one-shot convenience face of the comparison
// protocols the paper positions COBRA against: the classic push and
// push-pull rumour-spreading protocols, flooding, a single random walk,
// and k independent random walks. Each call constructs the process from
// the internal/process registry, drives one run, and reports the same
// Result shape (rounds to cover, messages sent) the experiment harness
// tabulates.
//
// Ensemble callers should not loop over these functions: construct the
// process once via internal/process and Reset/Step (or process.Run) per
// trial instead, which reuses every buffer. These wrappers allocate a
// fresh process per call and exist for single-shot comparisons and API
// stability.
package baseline

import (
	"fmt"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/process"
	"cobrawalk/internal/rng"
)

// Result reports one protocol run.
type Result struct {
	// Rounds is the number of rounds until every vertex was informed
	// (visited), or executed before the cap.
	Rounds int
	// Covered reports whether all vertices were informed within MaxRounds.
	Covered bool
	// Transmissions counts every message sent (for random walks, every
	// step of every walker).
	Transmissions int64
}

// Config bounds protocol runs.
type Config struct {
	// MaxRounds caps the run (default 2^20).
	MaxRounds int
}

func (c Config) maxRounds() int {
	if c.MaxRounds <= 0 {
		return process.DefaultMaxRounds
	}
	return c.MaxRounds
}

// run constructs the named registry process and drives one run from
// start.
func run(name string, branch process.Branching, g *graph.Graph, start int32, cfg Config, r *rng.Rand) (Result, error) {
	p, err := process.New(name, g, process.Config{Branching: branch})
	if err != nil {
		return Result{}, err
	}
	out, err := process.Run(p, r, cfg.maxRounds(), start)
	if err != nil {
		return Result{}, err
	}
	return Result{Rounds: out.Rounds, Covered: out.Done, Transmissions: out.Transmissions}, nil
}

// Push runs the classic push protocol: every informed vertex sends the
// rumour to one uniformly random neighbour per round; informed vertices
// keep transmitting forever (unlike COBRA, whose vertices go quiet after
// pushing).
func Push(g *graph.Graph, start int32, cfg Config, r *rng.Rand) (Result, error) {
	return run(process.Push, process.Branching{}, g, start, cfg, r)
}

// PushPull runs the push-pull protocol: every round, every vertex
// contacts one uniformly random neighbour; the rumour crosses the
// contact edge in whichever direction informs someone.
func PushPull(g *graph.Graph, start int32, cfg Config, r *rng.Rand) (Result, error) {
	return run(process.PushPull, process.Branching{}, g, start, cfg, r)
}

// Flood runs flooding: every informed vertex forwards to all neighbours
// every round, so rounds equal the eccentricity of the start vertex.
func Flood(g *graph.Graph, start int32, cfg Config, r *rng.Rand) (Result, error) {
	return run(process.Flood, process.Branching{}, g, start, cfg, r)
}

// RandomWalkCover runs a single simple random walk until it has visited
// every vertex. Cover time is Θ(n log n) for expanders and K_n, Θ(n²)
// for cycles — the paper's point of comparison for COBRA's k = 1 case.
func RandomWalkCover(g *graph.Graph, start int32, cfg Config, r *rng.Rand) (Result, error) {
	return MultiWalkCover(g, start, 1, cfg, r)
}

// MultiWalkCover runs k independent simple random walks from the same
// start vertex, one step each per round, until their union has visited
// every vertex.
func MultiWalkCover(g *graph.Graph, start int32, k int, cfg Config, r *rng.Rand) (Result, error) {
	if k < 1 {
		return Result{}, fmt.Errorf("baseline: walker count %d, need >= 1", k)
	}
	return run(process.KWalk, process.Branching{K: k}, g, start, cfg, r)
}

// Protocol is the common shape of all baselines, for table-driven
// experiment code.
type Protocol struct {
	Name string
	Run  func(g *graph.Graph, start int32, cfg Config, r *rng.Rand) (Result, error)
}

// All returns the baseline protocol table. The k-walk entry uses k walkers.
func All(kWalkers int) []Protocol {
	return []Protocol{
		{Name: "push", Run: Push},
		{Name: "push-pull", Run: PushPull},
		{Name: "flood", Run: Flood},
		{Name: "random-walk", Run: RandomWalkCover},
		{Name: fmt.Sprintf("%d-walks", kWalkers), Run: func(g *graph.Graph, start int32, cfg Config, r *rng.Rand) (Result, error) {
			return MultiWalkCover(g, start, kWalkers, cfg, r)
		}},
	}
}
