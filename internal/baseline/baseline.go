// Package baseline implements the comparison protocols the paper positions
// COBRA against: the classic push and push-pull rumour-spreading protocols,
// flooding, a single random walk, and k independent random walks. Each
// exposes the same Result shape (rounds to cover, messages sent) so the
// experiment harness can tabulate round-complexity against per-round
// transmission budgets.
package baseline

import (
	"errors"
	"fmt"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// Result reports one protocol run.
type Result struct {
	// Rounds is the number of rounds until every vertex was informed
	// (visited), or executed before the cap.
	Rounds int
	// Covered reports whether all vertices were informed within MaxRounds.
	Covered bool
	// Transmissions counts every message sent (for random walks, every
	// step of every walker).
	Transmissions int64
}

// Config bounds protocol runs.
type Config struct {
	// MaxRounds caps the run (default 2^20).
	MaxRounds int
}

func (c Config) maxRounds() int {
	if c.MaxRounds <= 0 {
		return 1 << 20
	}
	return c.MaxRounds
}

func validate(g *graph.Graph, start int32) error {
	if g == nil || g.N() == 0 {
		return errors.New("baseline: empty graph")
	}
	if g.MinDegree() == 0 {
		return errors.New("baseline: graph has an isolated vertex")
	}
	if start < 0 || int(start) >= g.N() {
		return fmt.Errorf("baseline: start vertex %d out of range [0,%d)", start, g.N())
	}
	return nil
}

// Push runs the classic push protocol: every informed vertex sends the
// rumour to one uniformly random neighbour per round. Rounds to inform all
// of K_n is log₂n + ln n + o(log n) (Frieze–Grimmett); on expanders it is
// O(log n). COBRA with k = 1 differs from push in that COBRA vertices go
// quiet after pushing — push keeps every informed vertex active forever,
// so its per-round transmission cost grows to n.
func Push(g *graph.Graph, start int32, cfg Config, r *rng.Rand) (Result, error) {
	if err := validate(g, start); err != nil {
		return Result{}, err
	}
	n := g.N()
	informed := make([]bool, n)
	informed[start] = true
	frontier := []int32{start}
	count := 1
	var res Result
	maxRounds := cfg.maxRounds()
	for count < n && res.Rounds < maxRounds {
		res.Rounds++
		var newly []int32
		for _, v := range frontier {
			u := g.Neighbor(v, r.Intn(g.Degree(v)))
			res.Transmissions++
			if !informed[u] {
				informed[u] = true
				count++
				newly = append(newly, u)
			}
		}
		frontier = append(frontier, newly...)
	}
	res.Covered = count == n
	return res, nil
}

// PushPull runs the push-pull protocol: every round, every vertex contacts
// one uniformly random neighbour; the rumour crosses the contact edge in
// whichever direction informs someone. Karp et al. showed K_n needs only
// Θ(log n) rounds and Θ(n·loglog n) total messages.
func PushPull(g *graph.Graph, start int32, cfg Config, r *rng.Rand) (Result, error) {
	if err := validate(g, start); err != nil {
		return Result{}, err
	}
	n := g.N()
	informed := make([]bool, n)
	informed[start] = true
	count := 1
	var res Result
	maxRounds := cfg.maxRounds()
	next := make([]bool, n)
	for count < n && res.Rounds < maxRounds {
		res.Rounds++
		copy(next, informed)
		for v := int32(0); v < int32(n); v++ {
			u := g.Neighbor(v, r.Intn(g.Degree(v)))
			res.Transmissions++
			switch {
			case informed[v] && !informed[u] && !next[u]:
				next[u] = true
				count++
			case !informed[v] && informed[u] && !next[v]:
				next[v] = true
				count++
			}
		}
		informed, next = next, informed
	}
	res.Covered = count == n
	return res, nil
}

// Flood runs flooding: every informed vertex forwards to all neighbours
// every round. Rounds equal the eccentricity of the start vertex — the
// fastest possible broadcast — at the cost of Θ(m) messages per round.
func Flood(g *graph.Graph, start int32, cfg Config, r *rng.Rand) (Result, error) {
	if err := validate(g, start); err != nil {
		return Result{}, err
	}
	n := g.N()
	informed := make([]bool, n)
	informed[start] = true
	frontier := []int32{start}
	active := []int32{start} // all informed vertices forward every round
	count := 1
	var res Result
	maxRounds := cfg.maxRounds()
	for count < n && res.Rounds < maxRounds {
		res.Rounds++
		frontier = frontier[:0]
		for _, v := range active {
			res.Transmissions += int64(g.Degree(v))
			for _, u := range g.Neighbors(v) {
				if !informed[u] {
					informed[u] = true
					count++
					frontier = append(frontier, u)
				}
			}
		}
		active = append(active, frontier...)
	}
	res.Covered = count == n
	_ = r // flooding is deterministic; parameter kept for interface symmetry
	return res, nil
}

// RandomWalkCover runs a single simple random walk until it has visited
// every vertex. Cover time is Θ(n log n) for expanders and K_n, Θ(n²) for
// cycles — the paper's point of comparison for COBRA's k = 1 case.
func RandomWalkCover(g *graph.Graph, start int32, cfg Config, r *rng.Rand) (Result, error) {
	return MultiWalkCover(g, start, 1, cfg, r)
}

// MultiWalkCover runs k independent simple random walks from the same
// start vertex, one step each per round, until their union has visited
// every vertex. This is the "multiple random walks" process of Alon et al.
// and Elsässer-Sauerwald whose techniques the paper contrasts with COBRA's
// dependent branching.
func MultiWalkCover(g *graph.Graph, start int32, k int, cfg Config, r *rng.Rand) (Result, error) {
	if err := validate(g, start); err != nil {
		return Result{}, err
	}
	if k < 1 {
		return Result{}, fmt.Errorf("baseline: walker count %d, need >= 1", k)
	}
	n := g.N()
	visited := make([]bool, n)
	visited[start] = true
	count := 1
	walkers := make([]int32, k)
	for i := range walkers {
		walkers[i] = start
	}
	var res Result
	maxRounds := cfg.maxRounds()
	for count < n && res.Rounds < maxRounds {
		res.Rounds++
		for i, v := range walkers {
			u := g.Neighbor(v, r.Intn(g.Degree(v)))
			res.Transmissions++
			walkers[i] = u
			if !visited[u] {
				visited[u] = true
				count++
			}
		}
	}
	res.Covered = count == n
	return res, nil
}

// Protocol is the common shape of all baselines, for table-driven
// experiment code.
type Protocol struct {
	Name string
	Run  func(g *graph.Graph, start int32, cfg Config, r *rng.Rand) (Result, error)
}

// All returns the baseline protocol table. The k-walk entry uses k walkers.
func All(kWalkers int) []Protocol {
	return []Protocol{
		{Name: "push", Run: Push},
		{Name: "push-pull", Run: PushPull},
		{Name: "flood", Run: Flood},
		{Name: "random-walk", Run: RandomWalkCover},
		{Name: fmt.Sprintf("%d-walks", kWalkers), Run: func(g *graph.Graph, start int32, cfg Config, r *rng.Rand) (Result, error) {
			return MultiWalkCover(g, start, kWalkers, cfg, r)
		}},
	}
}
