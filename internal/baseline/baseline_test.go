package baseline

import (
	"math"
	"testing"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// mk returns a curried constructor-checker so call sites can expand
// multi-value returns directly: g := mk(t)(graph.Complete(5)).
func mk(t *testing.T) func(*graph.Graph, error) *graph.Graph {
	return func(g *graph.Graph, err error) *graph.Graph {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
}

func TestValidation(t *testing.T) {
	g := mk(t)(graph.Complete(5))
	r := rng.New(1)
	protos := All(4)
	for _, p := range protos {
		t.Run(p.Name, func(t *testing.T) {
			if _, err := p.Run(nil, 0, Config{}, r); err == nil {
				t.Fatal("nil graph should fail")
			}
			if _, err := p.Run(g, -1, Config{}, r); err == nil {
				t.Fatal("bad start should fail")
			}
			if _, err := p.Run(g, 5, Config{}, r); err == nil {
				t.Fatal("out-of-range start should fail")
			}
		})
	}
	iso := mk(t)(graph.FromEdges("iso", 3, [][2]int32{{0, 1}}))
	if _, err := Push(iso, 0, Config{}, r); err == nil {
		t.Fatal("isolated vertex should fail")
	}
	if _, err := MultiWalkCover(g, 0, 0, Config{}, r); err == nil {
		t.Fatal("zero walkers should fail")
	}
}

func TestAllProtocolsCoverCompleteGraph(t *testing.T) {
	g := mk(t)(graph.Complete(32))
	r := rng.New(2)
	for _, p := range All(4) {
		t.Run(p.Name, func(t *testing.T) {
			res, err := p.Run(g, 0, Config{}, r)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Covered {
				t.Fatalf("%s failed to cover K32", p.Name)
			}
			if res.Rounds < 1 || res.Transmissions < 1 {
				t.Fatalf("%s: degenerate result %+v", p.Name, res)
			}
		})
	}
}

func TestFloodRoundsEqualEccentricity(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		s    int32
		want int
	}{
		{mk(t)(graph.Cycle(10)), 0, 5},
		{mk(t)(graph.Complete(7)), 3, 1},
		{mk(t)(graph.Hypercube(4)), 0, 4},
		{mk(t)(graph.Path(6)), 0, 5},
	}
	r := rng.New(3)
	for _, tc := range cases {
		res, err := Flood(tc.g, tc.s, Config{}, r)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Covered || res.Rounds != tc.want {
			t.Fatalf("%s: flood rounds = %d (covered=%v), want %d",
				tc.g.Name(), res.Rounds, res.Covered, tc.want)
		}
	}
}

func TestPushLogarithmicOnComplete(t *testing.T) {
	// Frieze–Grimmett: push on K_n informs everyone in ≈ log2(n) + ln(n)
	// rounds. For n = 512: ≈ 9 + 6.2 ≈ 15.2. Check the mean is within a
	// generous band.
	g := mk(t)(graph.Complete(512))
	r := rng.New(4)
	const trials = 40
	sum := 0.0
	for i := 0; i < trials; i++ {
		res, err := Push(g, 0, Config{}, r)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Covered {
			t.Fatal("push failed to cover")
		}
		sum += float64(res.Rounds)
	}
	mean := sum / trials
	want := math.Log2(512) + math.Log(512)
	if mean < want-4 || mean > want+6 {
		t.Fatalf("push mean rounds %.2f, theory ≈ %.2f", mean, want)
	}
}

func TestPushPullFasterOrEqualToPush(t *testing.T) {
	// Push-pull dominates push on average: it does everything push does
	// plus pulls. Compare means on a random regular graph.
	gr := rng.New(5)
	g, err := graph.RandomRegularConnected(256, 3, gr)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 30
	meanOf := func(f func(*graph.Graph, int32, Config, *rng.Rand) (Result, error)) float64 {
		r := rng.New(6)
		sum := 0.0
		for i := 0; i < trials; i++ {
			res, err := f(g, 0, Config{}, r)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Covered {
				t.Fatal("uncovered")
			}
			sum += float64(res.Rounds)
		}
		return sum / trials
	}
	push, pushPull := meanOf(Push), meanOf(PushPull)
	if pushPull > push+1 {
		t.Fatalf("push-pull (%.2f rounds) slower than push (%.2f)", pushPull, push)
	}
}

func TestRandomWalkCoverCycleQuadratic(t *testing.T) {
	// Cover time of C_n by a single walk is exactly n(n-1)/2 in
	// expectation. For n = 24: 276. Check the empirical mean within 25%.
	g := mk(t)(graph.Cycle(24))
	r := rng.New(7)
	const trials = 60
	sum := 0.0
	for i := 0; i < trials; i++ {
		res, err := RandomWalkCover(g, 0, Config{}, r)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Covered {
			t.Fatal("uncovered walk")
		}
		sum += float64(res.Rounds)
	}
	mean := sum / trials
	want := 24.0 * 23 / 2
	if math.Abs(mean-want)/want > 0.25 {
		t.Fatalf("C24 walk cover mean %.1f, theory %.1f", mean, want)
	}
}

func TestMultiWalkSpeedup(t *testing.T) {
	// k walks cover no slower (in rounds) than one walk on average.
	g := mk(t)(graph.Cycle(20))
	const trials = 40
	meanOf := func(k int) float64 {
		r := rng.New(8)
		sum := 0.0
		for i := 0; i < trials; i++ {
			res, err := MultiWalkCover(g, 0, k, Config{}, r)
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(res.Rounds)
		}
		return sum / trials
	}
	one, eight := meanOf(1), meanOf(8)
	if eight > one {
		t.Fatalf("8 walks (%.1f rounds) slower than 1 walk (%.1f)", eight, one)
	}
	if eight > one/2 {
		t.Fatalf("8 walks (%.1f) show no meaningful speedup over 1 (%.1f)", eight, one)
	}
}

func TestMaxRoundsCap(t *testing.T) {
	g := mk(t)(graph.Cycle(1000))
	r := rng.New(9)
	for _, p := range All(2) {
		res, err := p.Run(g, 0, Config{MaxRounds: 2}, r)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if p.Name == "flood" {
			if res.Covered {
				t.Fatal("flood covered C1000 in 2 rounds?")
			}
			continue
		}
		if res.Covered || res.Rounds != 2 {
			t.Fatalf("%s: capped run %+v", p.Name, res)
		}
	}
}

func TestTransmissionAccounting(t *testing.T) {
	// Push sends exactly (number of informed vertices) messages per round;
	// flooding sends Σ deg(informed). Verify on K4 round 1.
	g := mk(t)(graph.Complete(4))
	r := rng.New(10)
	res, err := Push(g, 0, Config{MaxRounds: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transmissions != 1 {
		t.Fatalf("push round-1 transmissions = %d, want 1", res.Transmissions)
	}
	res, err = Flood(g, 0, Config{MaxRounds: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transmissions != 3 {
		t.Fatalf("flood round-1 transmissions = %d, want 3", res.Transmissions)
	}
	// Flood on K4 covers in 1 round.
	if !res.Covered {
		t.Fatal("flood should cover K4 in one round")
	}
}
