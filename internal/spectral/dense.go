package spectral

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"cobrawalk/internal/graph"
)

// denseLimit caps the dense eigensolver: Jacobi sweeps cost O(n³) per
// sweep, so the exact path is reserved for the small graphs used in tests
// and exact experiments.
const denseLimit = 1500

// DenseSpectrum returns all eigenvalues of the normalised adjacency
// N = D^{-1/2} A D^{-1/2} (equal to the spectrum of the random-walk
// transition matrix P), sorted in non-increasing order, computed by cyclic
// Jacobi rotations. Exact up to floating-point roundoff; limited to
// n <= 1500 vertices.
func DenseSpectrum(g *graph.Graph) ([]float64, error) {
	n := g.N()
	if n == 0 {
		return nil, errors.New("spectral: empty graph")
	}
	if n > denseLimit {
		return nil, fmt.Errorf("spectral: dense solver limited to n <= %d, got %d", denseLimit, n)
	}
	op, err := NewOperator(g)
	if err != nil {
		return nil, err
	}
	// Build the dense symmetric matrix N.
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(int32(v)) {
			a[v][u] = op.invSqrtDeg[v] * op.invSqrtDeg[u]
		}
	}
	eig, err := jacobiEigenvalues(a)
	if err != nil {
		return nil, err
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(eig)))
	return eig, nil
}

// jacobiEigenvalues destroys a and returns its eigenvalues (unsorted).
// a must be symmetric.
func jacobiEigenvalues(a [][]float64) ([]float64, error) {
	n := len(a)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius norm.
		var off float64
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				off += 2 * a[p][q] * a[p][q]
			}
		}
		if off < 1e-22*float64(n*n) {
			d := make([]float64, n)
			for i := range d {
				d[i] = a[i][i]
			}
			return d, nil
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := a[p][q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				// Compute the rotation annihilating a[p][q].
				theta := (a[q][q] - a[p][p]) / (2 * apq)
				var t float64
				if math.Abs(theta) > 1e150 {
					t = 1 / (2 * theta)
				} else {
					t = math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				tau := s / (1 + c)
				app, aqq := a[p][p], a[q][q]
				a[p][p] = app - t*apq
				a[q][q] = aqq + t*apq
				a[p][q] = 0
				a[q][p] = 0
				for i := 0; i < n; i++ {
					if i == p || i == q {
						continue
					}
					aip, aiq := a[i][p], a[i][q]
					a[i][p] = aip - s*(aiq+tau*aip)
					a[p][i] = a[i][p]
					a[i][q] = aiq + s*(aip-tau*aiq)
					a[q][i] = a[i][q]
				}
			}
		}
	}
	return nil, errors.New("spectral: Jacobi did not converge")
}
