package spectral

import (
	"errors"
	"fmt"
	"math"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// Options configures the iterative eigensolvers. The zero value selects
// sensible defaults.
type Options struct {
	// Seed initialises the random starting vectors. The default 0 is a
	// valid seed, so results are deterministic unless callers vary it.
	Seed uint64
	// Steps is the Lanczos iteration count (default min(n-1, 96)). Memory
	// use is O(Steps·n) because the basis is stored for full
	// reorthogonalization.
	Steps int
	// MaxIter bounds power-iteration steps (default 50000).
	MaxIter int
	// Tol is the convergence tolerance on eigenvalue estimates
	// (default 1e-11).
	Tol float64
}

func (o Options) steps(n int) int {
	s := o.Steps
	if s <= 0 {
		s = 96
	}
	if s > n-1 {
		s = n - 1
	}
	return s
}

func (o Options) maxIter() int {
	if o.MaxIter <= 0 {
		return 50000
	}
	return o.MaxIter
}

func (o Options) tol() float64 {
	if o.Tol <= 0 {
		return 1e-11
	}
	return o.Tol
}

// Extremes returns λ_2 (largest eigenvalue of the transition matrix after
// the trivial eigenvalue 1) and λ_n (the smallest), computed by Lanczos
// iteration with full reorthogonalization against both the Krylov basis and
// the deflated top eigenvector. For n == 1 both are 0 by convention.
func Extremes(g *graph.Graph, opt Options) (lambda2, lambdaN float64, err error) {
	n := g.N()
	if n == 0 {
		return 0, 0, errors.New("spectral: empty graph")
	}
	if n == 1 {
		return 0, 0, nil
	}
	if n <= 64 {
		// Dense path is exact and cheap at this size.
		eig, derr := DenseSpectrum(g)
		if derr != nil {
			return 0, 0, derr
		}
		return eig[1], eig[n-1], nil
	}
	op, err := NewOperator(g)
	if err != nil {
		return 0, 0, err
	}
	steps := opt.steps(n)
	r := rng.New(opt.Seed)

	basis := make([][]float64, 0, steps)
	v := randomUnitDeflated(op, r)
	w := make([]float64, n)
	alphas := make([]float64, 0, steps)
	betas := make([]float64, 0, steps) // betas[j] couples v_j and v_{j+1}

	for j := 0; j < steps; j++ {
		basis = append(basis, v)
		op.Apply(v, w)
		alpha := dot(w, v)
		alphas = append(alphas, alpha)
		// w -= alpha*v_j + beta_{j-1}*v_{j-1}, then full reorthogonalization
		// (two passes of classical Gram-Schmidt) against the whole basis and
		// the deflated top vector, which keeps the Krylov space clean of the
		// trivial eigenvalue.
		axpy(-alpha, v, w)
		if j > 0 {
			axpy(-betas[j-1], basis[j-1], w)
		}
		for pass := 0; pass < 2; pass++ {
			op.DeflateTop(w)
			for _, b := range basis {
				axpy(-dot(w, b), b, w)
			}
		}
		beta := norm2(w)
		if beta < 1e-14 {
			// Invariant subspace exhausted: the Ritz values are exact.
			break
		}
		betas = append(betas, beta)
		next := make([]float64, n)
		copy(next, w)
		scale(next, 1/beta)
		v = next
	}

	m := len(alphas)
	d := make([]float64, m)
	e := make([]float64, m)
	copy(d, alphas)
	copy(e, betas)
	if err := tridiagEigenvalues(d, e); err != nil {
		return 0, 0, fmt.Errorf("spectral: Lanczos Ritz solve: %w", err)
	}
	lambda2, lambdaN = d[0], d[0]
	for _, x := range d[1:] {
		if x > lambda2 {
			lambda2 = x
		}
		if x < lambdaN {
			lambdaN = x
		}
	}
	// Clamp to the valid range [-1, 1] to absorb roundoff.
	lambda2 = clamp(lambda2, -1, 1)
	lambdaN = clamp(lambdaN, -1, 1)
	return lambda2, lambdaN, nil
}

// LambdaMax returns λ = max_{i>=2} |λ_i|, the quantity the paper's bounds
// depend on, via power iteration on N² restricted to the complement of the
// top eigenvector. Squaring makes the dominant eigenvalue λ² non-negative,
// which avoids sign oscillation when λ_n = -λ_2. Works at any graph size
// with O(n) memory.
func LambdaMax(g *graph.Graph, opt Options) (float64, error) {
	n := g.N()
	if n == 0 {
		return 0, errors.New("spectral: empty graph")
	}
	if n == 1 {
		return 0, nil
	}
	op, err := NewOperator(g)
	if err != nil {
		return 0, err
	}
	r := rng.New(opt.Seed)
	v := randomUnitDeflated(op, r)
	tmp := make([]float64, n)
	w := make([]float64, n)
	tol := opt.tol()
	maxIter := opt.maxIter()
	prev := math.Inf(1)
	for iter := 0; iter < maxIter; iter++ {
		op.Apply(v, tmp)
		op.Apply(tmp, w)
		op.DeflateTop(w)
		lambdaSq := dot(w, v) // Rayleigh quotient of N² at unit v
		nw := norm2(w)
		if nw < 1e-300 {
			// v lies in the kernel of N²: all deflated eigenvalues are 0.
			return 0, nil
		}
		scale(w, 1/nw)
		v, w = w, v
		if math.Abs(lambdaSq-prev) < tol {
			return math.Sqrt(math.Max(lambdaSq, 0)), nil
		}
		prev = lambdaSq
	}
	// Power iteration converged too slowly (tightly clustered spectrum);
	// the last Rayleigh quotient still lower-bounds λ² and is accurate to
	// O(residual²). Report it rather than failing.
	return math.Sqrt(math.Max(prev, 0)), nil
}

func randomUnitDeflated(op *Operator, r *rng.Rand) []float64 {
	n := op.N()
	v := make([]float64, n)
	for {
		for i := range v {
			v[i] = r.NormFloat64()
		}
		op.DeflateTop(v)
		if nv := norm2(v); nv > 1e-9 {
			scale(v, 1/nv)
			return v
		}
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
