package spectral

import (
	"math"
	"sort"
	"testing"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// TestDoubleCoverSpectrum: the transition spectrum of the bipartite double
// cover is the union of the base spectrum and its negation — a sharp
// cross-check of both the graph construction and the dense eigensolver,
// and the cleanest way to see why bipartite graphs sit at λ_max = 1.
func TestDoubleCoverSpectrum(t *testing.T) {
	bases := []*graph.Graph{
		mustG(t)(graph.Petersen()),
		mustG(t)(graph.Complete(7)),
		mustG(t)(graph.Cycle(5)),
	}
	for _, g := range bases {
		dc, err := graph.DoubleCover(g)
		if err != nil {
			t.Fatal(err)
		}
		base, err := DenseSpectrum(g)
		if err != nil {
			t.Fatal(err)
		}
		cover, err := DenseSpectrum(dc)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, 0, 2*len(base))
		for _, l := range base {
			want = append(want, l, -l)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(want)))
		if len(cover) != len(want) {
			t.Fatalf("%s: cover spectrum size %d, want %d", g.Name(), len(cover), len(want))
		}
		for i := range want {
			if math.Abs(cover[i]-want[i]) > 1e-8 {
				t.Fatalf("%s: cover eigenvalue %d = %.10f, want %.10f", g.Name(), i, cover[i], want[i])
			}
		}
	}
}

// TestRelabelSpectrumInvariance: eigenvalues are graph invariants.
func TestRelabelSpectrumInvariance(t *testing.T) {
	r := rng.New(9)
	g, err := graph.RandomRegularConnected(40, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	permInts := r.Perm(g.N())
	perm := make([]int32, g.N())
	for i, p := range permInts {
		perm[i] = int32(p)
	}
	h, err := graph.Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	eg, err := DenseSpectrum(g)
	if err != nil {
		t.Fatal(err)
	}
	eh, err := DenseSpectrum(h)
	if err != nil {
		t.Fatal(err)
	}
	for i := range eg {
		if math.Abs(eg[i]-eh[i]) > 1e-8 {
			t.Fatalf("relabel changed eigenvalue %d: %v vs %v", i, eg[i], eh[i])
		}
	}
}

// TestComplementSpectrumComplete: for an r-regular graph G on n vertices
// with adjacency eigenvalues r = µ1 ≥ µ2 ≥ ..., the complement has
// adjacency eigenvalues n-1-r and -1-µi (i ≥ 2). Check on the Petersen
// graph, whose complement is the Kneser graph K(5,2)'s complement, the
// triangular graph T(5): 6-regular with adjacency spectrum {6, 1⁵, -2⁴}...
// verified here directly from the identity.
func TestComplementSpectrumIdentity(t *testing.T) {
	g := mustG(t)(graph.Petersen())
	comp, err := graph.Complement(g)
	if err != nil {
		t.Fatal(err)
	}
	eigG, err := DenseSpectrum(g) // transition spectrum: adjacency / 3
	if err != nil {
		t.Fatal(err)
	}
	eigC, err := DenseSpectrum(comp) // transition spectrum: adjacency / 6
	if err != nil {
		t.Fatal(err)
	}
	// Build expected complement spectrum from the identity.
	want := []float64{1} // top eigenvalue
	for _, l := range eigG[1:] {
		adj := 3 * l // adjacency eigenvalue of G
		want = append(want, (-1-adj)/6)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(want)))
	for i := range want {
		if math.Abs(eigC[i]-want[i]) > 1e-9 {
			t.Fatalf("complement eigenvalue %d = %.10f, want %.10f", i, eigC[i], want[i])
		}
	}
}
