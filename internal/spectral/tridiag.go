package spectral

import (
	"errors"
	"math"
)

// tridiagEigenvalues computes, in place, the eigenvalues of the symmetric
// tridiagonal matrix with diagonal d (length n) and subdiagonal e (length
// n, with e[n-1] ignored and used as workspace). On return d holds the
// eigenvalues in unspecified order. This is the classic implicit-shift QL
// iteration (EISPACK tql1 / Numerical Recipes tqli, eigenvalues only).
func tridiagEigenvalues(d, e []float64) error {
	n := len(d)
	if n == 0 {
		return nil
	}
	if len(e) < n {
		return errors.New("spectral: subdiagonal workspace too short")
	}
	// Shift the subdiagonal so e[i] couples d[i] and d[i+1]; e[n-1] = 0
	// acts as a sentinel.
	e[n-1] = 0
	for l := 0; l < n; l++ {
		iter := 0
		for {
			// Find the first small subdiagonal element at or after l.
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= math.SmallestNonzeroFloat64+2.3e-16*dd {
					break
				}
			}
			if m == l {
				break // d[l] has converged
			}
			iter++
			if iter > 50 {
				return errors.New("spectral: tridiagonal QL failed to converge")
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					// Recover from underflow: annihilate the tiny element
					// and restart this eigenvalue.
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				if i == l {
					d[l] -= p
					e[l] = g
					e[m] = 0
				}
			}
		}
	}
	return nil
}
