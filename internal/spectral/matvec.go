// Package spectral computes the spectral quantities the paper's bounds are
// parameterised by: the second-largest-in-absolute-value eigenvalue λ of the
// random-walk transition matrix P, the spectral gap 1-λ, and derived
// estimates (mixing time, Cheeger conductance bounds).
//
// For a regular graph, P = A/r is symmetric and its top eigenvector is the
// constant vector. For general graphs the package operates on the
// symmetrically normalised adjacency N = D^{-1/2} A D^{-1/2}, which is
// similar to P (identical spectrum) and symmetric, with top eigenvector
// proportional to (√deg(x)). All solvers are matrix-free against the CSR
// graph except the dense Jacobi path used for exact small-n spectra.
package spectral

import (
	"errors"
	"fmt"
	"math"

	"cobrawalk/internal/graph"
)

// ErrIsolatedVertex is returned when the graph has a degree-0 vertex, for
// which the random-walk transition matrix is undefined.
var ErrIsolatedVertex = errors.New("spectral: graph has an isolated vertex")

// Operator is a matrix-free symmetric linear operator on R^n, precomputed
// from a graph: it applies N = D^{-1/2} A D^{-1/2}.
type Operator struct {
	g          *graph.Graph
	invSqrtDeg []float64
	// top is the unit top eigenvector of N (eigenvalue 1 for connected
	// graphs): top[x] ∝ √deg(x).
	top []float64
}

// NewOperator validates the graph and precomputes normalisation vectors.
func NewOperator(g *graph.Graph) (*Operator, error) {
	n := g.N()
	if n == 0 {
		return nil, errors.New("spectral: empty graph")
	}
	op := &Operator{
		g:          g,
		invSqrtDeg: make([]float64, n),
		top:        make([]float64, n),
	}
	var norm float64
	for v := 0; v < n; v++ {
		d := g.Degree(int32(v))
		if d == 0 {
			return nil, fmt.Errorf("%w: vertex %d", ErrIsolatedVertex, v)
		}
		op.invSqrtDeg[v] = 1 / math.Sqrt(float64(d))
		op.top[v] = math.Sqrt(float64(d))
		norm += float64(d)
	}
	norm = math.Sqrt(norm)
	for v := range op.top {
		op.top[v] /= norm
	}
	return op, nil
}

// N returns the dimension of the operator.
func (op *Operator) N() int { return op.g.N() }

// Apply computes y = N·x. x and y must have length N() and must not alias.
func (op *Operator) Apply(x, y []float64) {
	g := op.g
	n := g.N()
	for v := 0; v < n; v++ {
		var sum float64
		for _, u := range g.Neighbors(int32(v)) {
			sum += x[u] * op.invSqrtDeg[u]
		}
		y[v] = sum * op.invSqrtDeg[v]
	}
}

// DeflateTop removes from x its component along the top eigenvector, in
// place, leaving x in the invariant subspace carrying the eigenvalues
// λ_2 ≥ ... ≥ λ_n.
func (op *Operator) DeflateTop(x []float64) {
	var dot float64
	for i, t := range op.top {
		dot += x[i] * t
	}
	for i, t := range op.top {
		x[i] -= dot * t
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm2(a []float64) float64 { return math.Sqrt(dot(a, a)) }

func scale(a []float64, c float64) {
	for i := range a {
		a[i] *= c
	}
}

// axpy computes y += c*x.
func axpy(c float64, x, y []float64) {
	for i := range y {
		y[i] += c * x[i]
	}
}
