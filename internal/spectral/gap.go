package spectral

import (
	"fmt"
	"math"

	"cobrawalk/internal/graph"
)

// Report collects the spectral quantities of a graph that parameterise the
// paper's bounds.
type Report struct {
	N int // vertices
	M int // edges
	// Degree is the common degree for regular graphs, -1 otherwise.
	Degree int
	// Lambda2 is the second-largest eigenvalue of the transition matrix.
	Lambda2 float64
	// LambdaN is the smallest eigenvalue (= -1 iff bipartite, for
	// connected graphs).
	LambdaN float64
	// LambdaMax = max(|Lambda2|, |LambdaN|) is the λ in Theorems 1-3.
	LambdaMax float64
	// Gap is 1 - LambdaMax, the quantity the paper's cover-time bound
	// O(log n / Gap³) is stated in.
	Gap float64
	// GapL2 is 1 - Lambda2, the "lazy" gap that ignores the bipartite end
	// of the spectrum.
	GapL2 float64
	// MixingTimeUB is the standard upper bound log(n·√2)/Gap on the
	// ε=½ mixing time of the lazy walk, +Inf when Gap = 0.
	MixingTimeUB float64
	// CheegerLo and CheegerHi bound the conductance Φ(G) via the Cheeger
	// inequalities GapL2/2 ≤ Φ ≤ √(2·GapL2).
	CheegerLo, CheegerHi float64
	Connected            bool
	Bipartite            bool
}

// TheoremT returns the paper's Theorem 1/2 time scale T = log(n)/(1-λ)³
// for this graph, or +Inf if the gap is zero.
func (r Report) TheoremT() float64 {
	if r.Gap <= 0 {
		return math.Inf(1)
	}
	return math.Log(float64(r.N)) / (r.Gap * r.Gap * r.Gap)
}

// SatisfiesGapCondition reports whether the graph meets the paper's
// hypothesis 1-λ >> √(log n / n) with the given constant factor C (the
// paper requires 1-λ ≥ C·√(log n / n) for suitably large C).
func (r Report) SatisfiesGapCondition(c float64) bool {
	n := float64(r.N)
	if n < 2 {
		return false
	}
	return r.Gap >= c*math.Sqrt(math.Log(n)/n)
}

func (r Report) String() string {
	deg := "irregular"
	if r.Degree >= 0 {
		deg = fmt.Sprintf("%d-regular", r.Degree)
	}
	return fmt.Sprintf("spectral{n=%d m=%d %s λ2=%.6f λn=%.6f λmax=%.6f gap=%.6f conn=%v bip=%v}",
		r.N, r.M, deg, r.Lambda2, r.LambdaN, r.LambdaMax, r.Gap, r.Connected, r.Bipartite)
}

// snapToZero collapses values within eigensolver roundoff of zero, so that
// structurally-zero gaps (bipartite or disconnected graphs) are reported as
// exactly zero rather than ±1e-16.
func snapToZero(x float64) float64 {
	if math.Abs(x) < 1e-9 {
		return 0
	}
	return x
}

// Analyze computes the full spectral report for a graph. Graphs small
// enough for the dense path get exact eigenvalues; larger graphs use
// Lanczos for the signed extremes. Cost is O(n³) below the dense cutoff
// and O(Steps·m) above it.
func Analyze(g *graph.Graph, opt Options) (Report, error) {
	rep := Report{
		N:         g.N(),
		M:         g.M(),
		Degree:    -1,
		Connected: g.IsConnected(),
		Bipartite: g.IsBipartite(),
	}
	if deg, err := g.Regularity(); err == nil {
		rep.Degree = deg
	}
	if g.N() == 0 {
		return rep, fmt.Errorf("spectral: empty graph")
	}
	if g.N() == 1 {
		rep.Gap, rep.GapL2 = 1, 1
		rep.MixingTimeUB = 0
		return rep, nil
	}
	var l2, ln float64
	var err error
	if g.N() <= 256 {
		var eig []float64
		eig, err = DenseSpectrum(g)
		if err == nil {
			l2, ln = eig[1], eig[len(eig)-1]
		}
	} else {
		l2, ln, err = Extremes(g, opt)
	}
	if err != nil {
		return rep, err
	}
	rep.Lambda2 = l2
	rep.LambdaN = ln
	rep.LambdaMax = math.Max(math.Abs(l2), math.Abs(ln))
	rep.Gap = snapToZero(1 - rep.LambdaMax)
	rep.GapL2 = snapToZero(1 - rep.Lambda2)
	if rep.Gap > 0 {
		rep.MixingTimeUB = math.Log(float64(rep.N)*math.Sqrt2) / rep.Gap
	} else {
		rep.MixingTimeUB = math.Inf(1)
	}
	rep.CheegerLo = rep.GapL2 / 2
	rep.CheegerHi = math.Sqrt(2 * rep.GapL2)
	return rep, nil
}
