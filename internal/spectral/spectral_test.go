package spectral

import (
	"math"
	"testing"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

const eigTol = 1e-9

func mustG(t *testing.T) func(*graph.Graph, error) *graph.Graph {
	return func(g *graph.Graph, err error) *graph.Graph {
		t.Helper()
		if err != nil {
			t.Fatalf("graph construction: %v", err)
		}
		return g
	}
}

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// assertSpectrum checks a computed spectrum against the expected multiset
// (both sorted descending) within tolerance.
func assertSpectrum(t *testing.T, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("spectrum length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if !approxEq(got[i], want[i], tol) {
			t.Fatalf("eigenvalue[%d] = %.12f, want %.12f (got %v)", i, got[i], want[i], got)
		}
	}
}

func TestDenseSpectrumComplete(t *testing.T) {
	// K_n transition eigenvalues: 1 once, -1/(n-1) with multiplicity n-1.
	for _, n := range []int{2, 3, 5, 10, 25} {
		g := mustG(t)(graph.Complete(n))
		eig, err := DenseSpectrum(g)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, n)
		want[0] = 1
		for i := 1; i < n; i++ {
			want[i] = -1 / float64(n-1)
		}
		assertSpectrum(t, eig, want, eigTol)
	}
}

func TestDenseSpectrumCycle(t *testing.T) {
	// C_n eigenvalues: cos(2πk/n), k = 0..n-1.
	for _, n := range []int{3, 4, 6, 9, 16} {
		g := mustG(t)(graph.Cycle(n))
		eig, err := DenseSpectrum(g)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, 0, n)
		for k := 0; k < n; k++ {
			want = append(want, math.Cos(2*math.Pi*float64(k)/float64(n)))
		}
		sortDesc(want)
		assertSpectrum(t, eig, want, eigTol)
	}
}

func TestDenseSpectrumHypercube(t *testing.T) {
	// Q_d eigenvalues: (d-2i)/d with multiplicity C(d,i).
	for _, d := range []int{2, 3, 4, 5} {
		g := mustG(t)(graph.Hypercube(d))
		eig, err := DenseSpectrum(g)
		if err != nil {
			t.Fatal(err)
		}
		var want []float64
		binom := 1
		for i := 0; i <= d; i++ {
			for j := 0; j < binom; j++ {
				want = append(want, float64(d-2*i)/float64(d))
			}
			binom = binom * (d - i) / (i + 1)
		}
		sortDesc(want)
		assertSpectrum(t, eig, want, eigTol)
	}
}

func TestDenseSpectrumPetersen(t *testing.T) {
	g := mustG(t)(graph.Petersen())
	eig, err := DenseSpectrum(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1}
	for i := 0; i < 5; i++ {
		want = append(want, 1.0/3)
	}
	for i := 0; i < 4; i++ {
		want = append(want, -2.0/3)
	}
	assertSpectrum(t, eig, want, eigTol)
}

func TestDenseSpectrumCompleteBipartite(t *testing.T) {
	// K_{a,b} normalised spectrum: {1, 0 (×(a+b-2)), -1}.
	g := mustG(t)(graph.CompleteBipartite(3, 4))
	eig, err := DenseSpectrum(g)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 7)
	want[0], want[6] = 1, -1
	assertSpectrum(t, eig, want, eigTol)
}

func TestDenseSpectrumStar(t *testing.T) {
	// The star is K_{1,m}: {1, 0 (×(m-1)), -1}. Exercises irregular
	// normalisation.
	g := mustG(t)(graph.Star(6))
	eig, err := DenseSpectrum(g)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 6)
	want[0], want[5] = 1, -1
	assertSpectrum(t, eig, want, eigTol)
}

func TestDenseSpectrumPaley(t *testing.T) {
	// Paley(q) adjacency eigenvalues (q-1)/2 and (-1±√q)/2; divide by
	// degree (q-1)/2 for the transition spectrum.
	q := 13
	g := mustG(t)(graph.Paley(q))
	eig, err := DenseSpectrum(g)
	if err != nil {
		t.Fatal(err)
	}
	deg := float64(q-1) / 2
	plus := (-1 + math.Sqrt(float64(q))) / 2 / deg
	minus := (-1 - math.Sqrt(float64(q))) / 2 / deg
	if !approxEq(eig[0], 1, eigTol) {
		t.Fatalf("λ1 = %v", eig[0])
	}
	// (q-1)/2 eigenvalues at plus, (q-1)/2 at minus.
	for i := 1; i <= (q-1)/2; i++ {
		if !approxEq(eig[i], plus, eigTol) {
			t.Fatalf("λ%d = %.12f, want %.12f", i, eig[i], plus)
		}
	}
	for i := (q+1)/2 + 1; i < q; i++ {
		if !approxEq(eig[i], minus, eigTol) {
			t.Fatalf("λ%d = %.12f, want %.12f", i, eig[i], minus)
		}
	}
}

func TestDenseSpectrumTorus(t *testing.T) {
	// Torus(a,b) eigenvalues: (cos(2πi/a) + cos(2πj/b))/2.
	a, b := 4, 5
	g := mustG(t)(graph.Torus(a, b))
	eig, err := DenseSpectrum(g)
	if err != nil {
		t.Fatal(err)
	}
	var want []float64
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			want = append(want, (math.Cos(2*math.Pi*float64(i)/float64(a))+math.Cos(2*math.Pi*float64(j)/float64(b)))/2)
		}
	}
	sortDesc(want)
	assertSpectrum(t, eig, want, eigTol)
}

func TestSpectrumBasicInvariants(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 5; trial++ {
		g, err := graph.RandomRegularConnected(60, 4, r)
		if err != nil {
			t.Fatal(err)
		}
		eig, err := DenseSpectrum(g)
		if err != nil {
			t.Fatal(err)
		}
		// λ1 = 1; all eigenvalues in [-1, 1]; trace = 0 (no self-loops).
		if !approxEq(eig[0], 1, eigTol) {
			t.Fatalf("λ1 = %v, want 1", eig[0])
		}
		trace := 0.0
		for _, l := range eig {
			if l < -1-eigTol || l > 1+eigTol {
				t.Fatalf("eigenvalue %v outside [-1,1]", l)
			}
			trace += l
		}
		if !approxEq(trace, 0, 1e-7) {
			t.Fatalf("trace = %v, want 0", trace)
		}
		// trace(N²) = Σλ² = n/r for r-regular simple graphs.
		sumSq := 0.0
		for _, l := range eig {
			sumSq += l * l
		}
		if want := float64(g.N()) / 4.0; !approxEq(sumSq, want, 1e-7) {
			t.Fatalf("Σλ² = %v, want %v", sumSq, want)
		}
	}
}

func TestDisconnectedLambda2IsOne(t *testing.T) {
	g, err := graph.FromEdges("2tri", 6, [][2]int32{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}})
	if err != nil {
		t.Fatal(err)
	}
	eig, err := DenseSpectrum(g)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(eig[1], 1, eigTol) {
		t.Fatalf("disconnected λ2 = %v, want 1", eig[1])
	}
}

func TestExtremesMatchesDense(t *testing.T) {
	// Lanczos on mid-size graphs must match the dense solver's extremes.
	r := rng.New(17)
	graphs := []*graph.Graph{
		mustG(t)(graph.RandomRegularConnected(200, 6, r)),
		mustG(t)(graph.Torus(10, 12)),
		mustG(t)(graph.Circulant(150, []int{1, 2, 3})),
		mustG(t)(graph.Hypercube(7)),
		mustG(t)(graph.CompleteBipartite(40, 40)),
	}
	for _, g := range graphs {
		eig, err := DenseSpectrum(g)
		if err != nil {
			t.Fatalf("%s: dense: %v", g.Name(), err)
		}
		l2, ln, err := Extremes(g, Options{})
		if err != nil {
			t.Fatalf("%s: lanczos: %v", g.Name(), err)
		}
		if !approxEq(l2, eig[1], 1e-7) {
			t.Errorf("%s: λ2 lanczos %.10f vs dense %.10f", g.Name(), l2, eig[1])
		}
		if !approxEq(ln, eig[len(eig)-1], 1e-7) {
			t.Errorf("%s: λn lanczos %.10f vs dense %.10f", g.Name(), ln, eig[len(eig)-1])
		}
	}
}

func TestExtremesSmallGraphDensePath(t *testing.T) {
	g := mustG(t)(graph.Petersen())
	l2, ln, err := Extremes(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(l2, 1.0/3, eigTol) || !approxEq(ln, -2.0/3, eigTol) {
		t.Fatalf("Petersen extremes = (%v, %v), want (1/3, -2/3)", l2, ln)
	}
}

func TestExtremesSingleVertex(t *testing.T) {
	g, err := graph.FromEdges("k1", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Extremes(g, Options{}); err == nil {
		t.Skip("isolated vertex accepted") // K1 has an isolated vertex
	}
}

func TestLambdaMaxKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want float64
	}{
		{"petersen", mustG(t)(graph.Petersen()), 2.0 / 3},
		{"K10", mustG(t)(graph.Complete(10)), 1.0 / 9},
		{"C12", mustG(t)(graph.Cycle(12)), 1}, // bipartite: λn = -1
		{"C15", mustG(t)(graph.Cycle(15)), math.Abs(math.Cos(2 * math.Pi * 7 / 15))},
		{"K55", mustG(t)(graph.CompleteBipartite(5, 5)), 1},
		{"Q4", mustG(t)(graph.Hypercube(4)), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := LambdaMax(tc.g, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !approxEq(got, tc.want, 1e-6) {
				t.Fatalf("λmax = %.10f, want %.10f", got, tc.want)
			}
		})
	}
}

func TestLambdaMaxMatchesDenseOnRandom(t *testing.T) {
	r := rng.New(77)
	for _, deg := range []int{3, 5, 8} {
		g, err := graph.RandomRegularConnected(120, deg, r)
		if err != nil {
			t.Fatal(err)
		}
		eig, err := DenseSpectrum(g)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Max(math.Abs(eig[1]), math.Abs(eig[len(eig)-1]))
		got, err := LambdaMax(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(got, want, 1e-6) {
			t.Fatalf("deg %d: λmax power %.10f vs dense %.10f", deg, got, want)
		}
	}
}

func TestRandomRegularNearRamanujan(t *testing.T) {
	// Random r-regular graphs satisfy λ ≤ (2√(r-1) + o(1))/r w.h.p.
	// (Friedman's theorem). Allow 20% slack for finite n.
	r := rng.New(5)
	for _, deg := range []int{4, 8, 16} {
		g, err := graph.RandomRegularConnected(400, deg, r)
		if err != nil {
			t.Fatal(err)
		}
		lmax, err := LambdaMax(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		bound := 2 * math.Sqrt(float64(deg-1)) / float64(deg) * 1.2
		if lmax > bound {
			t.Errorf("deg %d: λmax = %.4f exceeds Ramanujan-ish bound %.4f", deg, lmax, bound)
		}
		if lmax <= 0 {
			t.Errorf("deg %d: λmax = %v not positive", deg, lmax)
		}
	}
}

func TestOperatorErrors(t *testing.T) {
	if _, err := NewOperator(&graph.Graph{}); err == nil {
		t.Fatal("empty graph should fail")
	}
	g, err := graph.FromEdges("iso", 3, [][2]int32{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOperator(g); err == nil {
		t.Fatal("isolated vertex should fail")
	}
	if _, err := DenseSpectrum(g); err == nil {
		t.Fatal("DenseSpectrum should propagate isolated-vertex error")
	}
}

func TestDenseLimit(t *testing.T) {
	r := rng.New(3)
	g, err := graph.RandomRegular(denseLimit+2, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DenseSpectrum(g); err == nil {
		t.Fatal("dense solver should refuse n > denseLimit")
	}
}

func TestAnalyzePetersen(t *testing.T) {
	g := mustG(t)(graph.Petersen())
	rep, err := Analyze(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 10 || rep.M != 15 || rep.Degree != 3 {
		t.Fatalf("report basics: %+v", rep)
	}
	if !approxEq(rep.Lambda2, 1.0/3, eigTol) || !approxEq(rep.LambdaN, -2.0/3, eigTol) {
		t.Fatalf("extremes: %+v", rep)
	}
	if !approxEq(rep.LambdaMax, 2.0/3, eigTol) || !approxEq(rep.Gap, 1.0/3, eigTol) {
		t.Fatalf("gap: %+v", rep)
	}
	if !rep.Connected || rep.Bipartite {
		t.Fatalf("flags: %+v", rep)
	}
	// T = log(10)/(1/3)³ = 27·log 10.
	if want := 27 * math.Log(10); !approxEq(rep.TheoremT(), want, 1e-6) {
		t.Fatalf("TheoremT = %v, want %v", rep.TheoremT(), want)
	}
	if !rep.SatisfiesGapCondition(0.5) {
		t.Fatal("Petersen should satisfy modest gap condition")
	}
	// Cheeger sandwich must be ordered.
	if rep.CheegerLo > rep.CheegerHi {
		t.Fatalf("Cheeger bounds inverted: %+v", rep)
	}
}

func TestAnalyzeBipartiteFlags(t *testing.T) {
	g := mustG(t)(graph.Hypercube(5))
	rep, err := Analyze(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Bipartite {
		t.Fatal("hypercube should be flagged bipartite")
	}
	if !approxEq(rep.LambdaN, -1, 1e-7) || !approxEq(rep.LambdaMax, 1, 1e-7) {
		t.Fatalf("bipartite extremes: %+v", rep)
	}
	if !math.IsInf(rep.MixingTimeUB, 1) {
		t.Fatalf("MixingTimeUB should be +Inf at gap 0, got %v", rep.MixingTimeUB)
	}
	if !math.IsInf(rep.TheoremT(), 1) {
		t.Fatal("TheoremT should be +Inf at gap 0")
	}
}

func TestAnalyzeLargeUsesLanczos(t *testing.T) {
	r := rng.New(11)
	g, err := graph.RandomRegularConnected(600, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LambdaMax <= 0 || rep.LambdaMax >= 1 {
		t.Fatalf("λmax = %v out of (0,1)", rep.LambdaMax)
	}
	// λ ≈ 2√7/8 ≈ 0.66 for random 8-regular graphs, so the gap is ≈ 0.34.
	if rep.Gap <= 0.25 || rep.Gap >= 0.45 {
		t.Fatalf("8-regular expander gap = %v, expected ≈ 0.34", rep.Gap)
	}
}

func TestTridiagEigenvaluesKnown(t *testing.T) {
	// 2x2: [[2,1],[1,2]] has eigenvalues 1 and 3.
	d := []float64{2, 2}
	e := []float64{1, 0}
	if err := tridiagEigenvalues(d, e); err != nil {
		t.Fatal(err)
	}
	sortDesc(d)
	if !approxEq(d[0], 3, eigTol) || !approxEq(d[1], 1, eigTol) {
		t.Fatalf("2x2 eigenvalues = %v, want [3 1]", d)
	}
	// Free Laplacian-like chain: tridiag(diag=0, off=1) of size n has
	// eigenvalues 2cos(kπ/(n+1)).
	n := 7
	d = make([]float64, n)
	e = make([]float64, n)
	for i := range e {
		e[i] = 1
	}
	if err := tridiagEigenvalues(d, e); err != nil {
		t.Fatal(err)
	}
	sortDesc(d)
	for k := 1; k <= n; k++ {
		want := 2 * math.Cos(float64(k)*math.Pi/float64(n+1))
		if !approxEq(d[k-1], want, eigTol) {
			t.Fatalf("chain eigenvalue %d = %.12f, want %.12f", k, d[k-1], want)
		}
	}
	// Empty and singleton inputs are fine.
	if err := tridiagEigenvalues(nil, nil); err != nil {
		t.Fatal(err)
	}
	single := []float64{5}
	if err := tridiagEigenvalues(single, []float64{0}); err != nil || single[0] != 5 {
		t.Fatalf("singleton: %v %v", single, err)
	}
	// Workspace too short must error.
	if err := tridiagEigenvalues([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("short workspace should fail")
	}
}

func sortDesc(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j-1] < x[j]; j-- {
			x[j-1], x[j] = x[j], x[j-1]
		}
	}
}
