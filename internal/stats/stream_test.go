package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"cobrawalk/internal/rng"
)

func randomSample(n int, seed uint64) []float64 {
	r := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		// Long-tailed positives, like cover times.
		xs[i] = math.Exp(3*r.Float64()) * (1 + 50*r.Float64())
	}
	return xs
}

func TestStreamMatchesSummarize(t *testing.T) {
	xs := randomSample(10000, 1)
	var s Stream
	for _, x := range xs {
		s.Add(x)
	}
	want, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != want.N {
		t.Fatalf("N = %d, want %d", s.N(), want.N)
	}
	const tol = 1e-9
	approx := func(name string, got, ref float64) {
		t.Helper()
		if math.Abs(got-ref) > tol*math.Max(1, math.Abs(ref)) {
			t.Fatalf("%s = %v, want %v", name, got, ref)
		}
	}
	approx("mean", s.Mean(), want.Mean)
	approx("variance", s.Variance(), want.Variance)
	approx("std", s.Std(), want.Std)
	if s.Min() != want.Min || s.Max() != want.Max {
		t.Fatalf("min/max = %v/%v, want %v/%v", s.Min(), s.Max(), want.Min, want.Max)
	}
}

func TestStreamMergeMatchesSequential(t *testing.T) {
	xs := randomSample(5000, 2)
	var whole Stream
	for _, x := range xs {
		whole.Add(x)
	}
	// Shard into 7 pieces, merge in order: same observations, same order
	// of merge regardless of how the pieces were filled.
	const shards = 7
	parts := make([]Stream, shards)
	for i, x := range xs {
		parts[i*shards/len(xs)].Add(x)
	}
	var merged Stream
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.N() != whole.N() {
		t.Fatalf("N = %d, want %d", merged.N(), whole.N())
	}
	if math.Abs(merged.Mean()-whole.Mean()) > 1e-9*whole.Mean() {
		t.Fatalf("merged mean %v, sequential %v", merged.Mean(), whole.Mean())
	}
	if math.Abs(merged.Variance()-whole.Variance()) > 1e-6*whole.Variance() {
		t.Fatalf("merged variance %v, sequential %v", merged.Variance(), whole.Variance())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestStreamMergeDeterministic(t *testing.T) {
	// Bit-identical results for the same shard partition, however many
	// times we run it — the property sim.Reduce relies on.
	xs := randomSample(1000, 3)
	build := func() Stream {
		parts := make([]Stream, 4)
		for i, x := range xs {
			parts[i%4].Add(x)
		}
		var out Stream
		for _, p := range parts {
			out.Merge(p)
		}
		return out
	}
	a, b := build(), build()
	if a.Mean() != b.Mean() || a.Variance() != b.Variance() {
		t.Fatal("same partition should give bit-identical results")
	}
}

func TestStreamEmptyAndCI(t *testing.T) {
	var s Stream
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Fatal("empty stream should report NaN")
	}
	if _, err := s.CI(0.95); err == nil {
		t.Fatal("empty CI should fail")
	}
	xs := randomSample(400, 4)
	for _, x := range xs {
		s.Add(x)
	}
	ci, err := s.CI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NormalCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ci.Lo-want.Lo) > 1e-9 || math.Abs(ci.Hi-want.Hi) > 1e-9 {
		t.Fatalf("stream CI [%v,%v], batch [%v,%v]", ci.Lo, ci.Hi, want.Lo, want.Hi)
	}
	if _, err := s.CI(1.5); err == nil {
		t.Fatal("bad level should fail")
	}
}

func TestSketchRelativeError(t *testing.T) {
	xs := randomSample(20000, 5)
	sk := NewDefaultSketch()
	for _, x := range xs {
		sk.Add(x)
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99} {
		got, err := sk.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Quantile(xs, q)
		if err != nil {
			t.Fatal(err)
		}
		// The guarantee is relative to an exact order statistic; linear
		// interpolation in Quantile shifts it by at most one neighbour
		// gap, so allow 2α.
		if math.Abs(got-want) > 2*DefaultSketchAlpha*want {
			t.Fatalf("q=%v: sketch %v, exact %v", q, got, want)
		}
	}
}

func TestSketchMergeExact(t *testing.T) {
	xs := randomSample(8000, 6)
	whole := NewDefaultSketch()
	for _, x := range xs {
		whole.Add(x)
	}
	parts := make([]*QuantileSketch, 5)
	for i := range parts {
		parts[i] = NewDefaultSketch()
	}
	for i, x := range xs {
		parts[i%5].Add(x)
	}
	merged := NewDefaultSketch()
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if merged.N() != whole.N() {
		t.Fatalf("N = %d, want %d", merged.N(), whole.N())
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		a, err := merged.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := whole.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("q=%v: merged %v, whole %v (merge must be exact)", q, a, b)
		}
	}
}

func TestSketchSignsAndErrors(t *testing.T) {
	sk := NewDefaultSketch()
	if _, err := sk.Quantile(0.5); err == nil {
		t.Fatal("empty sketch should fail")
	}
	for _, x := range []float64{-10, -1, 0, 0, 1, 10, math.NaN()} {
		sk.Add(x)
	}
	if sk.N() != 6 {
		t.Fatalf("N = %d, want 6 (NaN ignored)", sk.N())
	}
	lo, err := sk.Quantile(0)
	if err != nil {
		t.Fatal(err)
	}
	if lo > -9 {
		t.Fatalf("q=0 should land near -10, got %v", lo)
	}
	med, err := sk.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if med != 0 {
		t.Fatalf("median of {-10,-1,0,0,1,10} should be 0, got %v", med)
	}
	if _, err := sk.Quantile(2); err == nil {
		t.Fatal("q>1 should fail")
	}
	if _, err := NewQuantileSketch(0); err == nil {
		t.Fatal("alpha=0 should fail")
	}
	other, err := NewQuantileSketch(0.1)
	if err != nil {
		t.Fatal(err)
	}
	other.Add(1)
	if err := sk.Merge(other); err == nil {
		t.Fatal("mismatched accuracies should fail to merge")
	}
}

func TestSketchInfinities(t *testing.T) {
	sk := NewDefaultSketch()
	for _, x := range []float64{math.Inf(-1), 1, 2, 3, math.Inf(1), math.Inf(1)} {
		sk.Add(x)
	}
	if sk.N() != 6 {
		t.Fatalf("N = %d, want 6", sk.N())
	}
	lo, err := sk.Quantile(0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(lo, -1) {
		t.Fatalf("q=0 = %v, want -Inf", lo)
	}
	hi, err := sk.Quantile(1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(hi, 1) {
		t.Fatalf("q=1 = %v, want +Inf", hi)
	}
	// Finite quantiles must be untouched by the infinite observations.
	med, err := sk.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(med-2) > 2*DefaultSketchAlpha*2 {
		t.Fatalf("median = %v, want ≈2", med)
	}
	// Merge must carry the infinity counters.
	other := NewDefaultSketch()
	other.Add(math.Inf(1))
	if err := sk.Merge(other); err != nil {
		t.Fatal(err)
	}
	if sk.N() != 7 {
		t.Fatalf("merged N = %d, want 7", sk.N())
	}
	// FixedHistogram clamps infinities into the edge bins, losing nothing.
	h, err := sk.FixedHistogram(0, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 7 {
		t.Fatalf("hist total = %d, want 7", h.Total())
	}
}

func TestHistogramMergeAndAddN(t *testing.T) {
	a, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	a.AddN(1, 3)
	b.AddN(9, 2)
	b.Add(5)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 6 {
		t.Fatalf("total = %d, want 6", a.Total())
	}
	var sum int64
	for _, c := range a.Counts {
		sum += c
	}
	if sum != a.Total() {
		t.Fatalf("bin counts sum %d != total %d", sum, a.Total())
	}
	mismatched, err := NewHistogram(0, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(mismatched); err == nil {
		t.Fatal("mismatched ranges should fail to merge")
	}
}

func TestDigestSummaryAndJSON(t *testing.T) {
	d := NewDigest()
	if _, err := d.Summary(); err == nil {
		t.Fatal("empty digest should fail")
	}
	xs := randomSample(3000, 7)
	for _, x := range xs {
		d.Add(x)
	}
	s, err := d.Summary()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != want.N || math.Abs(s.Mean-want.Mean) > 1e-9*want.Mean {
		t.Fatalf("digest %+v disagrees with Summarize %+v", s, want)
	}
	if math.Abs(s.P95-want.P95) > 2*DefaultSketchAlpha*want.P95 {
		t.Fatalf("p95 = %v, exact %v", s.P95, want.P95)
	}
	if s.P50 > s.P90 || s.P90 > s.P95 || s.P95 > s.P99 {
		t.Fatalf("quantiles out of order: %+v", s)
	}
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("summary JSON invalid: %v\n%s", err, blob)
	}
	for _, key := range []string{"n", "mean", "p50", "p90", "p99", "min", "max"} {
		if _, ok := back[key]; !ok {
			t.Fatalf("JSON missing %q: %s", key, blob)
		}
	}
	if !strings.Contains(s.String(), "mean=") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestDigestMerge(t *testing.T) {
	xs := randomSample(2000, 8)
	whole := NewDigest()
	for _, x := range xs {
		whole.Add(x)
	}
	parts := []*Digest{NewDigest(), NewDigest(), NewDigest()}
	for i, x := range xs {
		parts[i%3].Add(x)
	}
	merged := NewDigest()
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := merged.Merge(nil); err != nil {
		t.Fatal("nil merge should be a no-op")
	}
	a, err := merged.Summary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := whole.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if a.N != b.N || a.Min != b.Min || a.Max != b.Max || a.P95 != b.P95 {
		t.Fatalf("merged %+v, whole %+v", a, b)
	}
	if math.Abs(a.Mean-b.Mean) > 1e-9*b.Mean {
		t.Fatalf("merged mean %v, whole %v", a.Mean, b.Mean)
	}
}

// TestDigestSummaryJSONRoundTrip pins the DigestSummary wire format: a
// marshalled summary unmarshals back field-for-field, non-finite values
// travel as null (and come back as the zero value), and the CI
// reconstructed from the snapshot matches the live Stream's.
func TestDigestSummaryJSONRoundTrip(t *testing.T) {
	d := NewDigest()
	xs := randomSample(2500, 13)
	for _, x := range xs {
		d.Add(x)
	}
	s, err := d.Summary()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back DigestSummary
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, blob)
	}
	if back != s {
		t.Fatalf("round trip changed the summary:\n got %+v\nwant %+v", back, s)
	}
	// Re-marshalling is byte-stable — the property sweep artifacts rely
	// on for byte-identical resumes.
	blob2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatalf("re-marshal not byte-stable:\n%s\n%s", blob, blob2)
	}

	// CI from the snapshot matches CI from the live stream.
	want, err := d.Stream.CI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.CI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Lo-want.Lo) > 1e-9 || math.Abs(got.Hi-want.Hi) > 1e-9 {
		t.Fatalf("snapshot CI %+v, stream CI %+v", got, want)
	}
	if _, err := (DigestSummary{}).CI(0.95); err == nil {
		t.Fatal("empty summary CI should fail")
	}
	if _, err := s.CI(1.5); err == nil {
		t.Fatal("bad level should fail")
	}

	// Non-finite fields marshal as null...
	inf := NewDigest()
	inf.Add(math.Inf(1))
	si, err := inf.Summary()
	if err != nil {
		t.Fatal(err)
	}
	iblob, err := json.Marshal(si)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(iblob), `"max":null`) {
		t.Fatalf("+Inf max should marshal as null: %s", iblob)
	}
	// ...and unmarshal to the zero value rather than erroring.
	var iback DigestSummary
	if err := json.Unmarshal(iblob, &iback); err != nil {
		t.Fatalf("null fields should unmarshal: %v", err)
	}
	if iback.Max != 0 || iback.N != 1 {
		t.Fatalf("null round trip: %+v", iback)
	}
}

// TestDigestSummaryJSONSingleObservation pins the N < 2 wire format: a
// one-trial ensemble has no dispersion, so variance/std/se travel as
// null — not as zeros that read as a perfectly concentrated sample — and
// the round trip stays byte-stable (the resume byte-identity contract).
func TestDigestSummaryJSONSingleObservation(t *testing.T) {
	d := NewDigest()
	d.Add(17.5)
	s, err := d.Summary()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"variance":null`, `"std":null`, `"se":null`, `"mean":17.5`, `"n":1`} {
		if !strings.Contains(string(blob), want) {
			t.Fatalf("single-observation summary missing %s: %s", want, blob)
		}
	}
	var back DigestSummary
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	blob2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatalf("single-observation re-marshal not byte-stable:\n%s\n%s", blob, blob2)
	}
}

// TestSketchSingleValue: a sketch holding one observation reports that
// observation (within α) at every quantile.
func TestSketchSingleValue(t *testing.T) {
	for _, v := range []float64{42.5, -3.25, 0} {
		sk := NewDefaultSketch()
		sk.Add(v)
		if sk.N() != 1 {
			t.Fatalf("N = %d", sk.N())
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.95, 1} {
			got, err := sk.Quantile(q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-v) > DefaultSketchAlpha*math.Abs(v)+1e-12 {
				t.Fatalf("value %v: Q(%v) = %v", v, q, got)
			}
		}
	}
}

// TestSketchAllEqual: a constant sample collapses into one bucket, so
// every quantile agrees to within α and the digest summary stays sane.
func TestSketchAllEqual(t *testing.T) {
	const v = 7.5
	d := NewDigest()
	for i := 0; i < 1000; i++ {
		d.Add(v)
	}
	lo, err := d.Quantile(0)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := d.Quantile(1)
	if err != nil {
		t.Fatal(err)
	}
	if lo != hi {
		t.Fatalf("constant sample spread across buckets: Q(0)=%v Q(1)=%v", lo, hi)
	}
	if math.Abs(lo-v) > DefaultSketchAlpha*v {
		t.Fatalf("Q = %v, want within %v of %v", lo, DefaultSketchAlpha*v, v)
	}
	s, err := d.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 1000 || s.Mean != v || s.Variance != 0 || s.Min != v || s.Max != v {
		t.Fatalf("summary of constant sample: %+v", s)
	}
	if s.P50 != s.P99 {
		t.Fatalf("constant quantiles differ: %+v", s)
	}
}

// TestSketchQuantilesBatch pins the contract of the one-pass batch
// accessor: for sorted quantiles it returns exactly what per-quantile
// Quantile calls return, across sign mixes and infinities.
func TestSketchQuantilesBatch(t *testing.T) {
	streams := map[string][]float64{
		"positive":  randomSample(5000, 3),
		"mixed":     {-50, -3, -3, 0, 0, 0, 0.25, 1, 1, 7, 1e6},
		"signs+inf": {math.Inf(-1), -2, 0, 5, math.Inf(1), math.Inf(1)},
		"zeros":     {0, 0, 0},
	}
	qs := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
	for name, xs := range streams {
		sk := NewDefaultSketch()
		for _, x := range xs {
			sk.Add(x)
		}
		out := make([]float64, len(qs))
		if err := sk.Quantiles(qs, out); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, q := range qs {
			want, err := sk.Quantile(q)
			if err != nil {
				t.Fatal(err)
			}
			if out[i] != want && !(math.IsNaN(out[i]) && math.IsNaN(want)) {
				t.Fatalf("%s q=%v: batch %v, single %v", name, q, out[i], want)
			}
		}
	}

	sk := NewDefaultSketch()
	sk.Add(1)
	out := make([]float64, 2)
	if err := sk.Quantiles([]float64{0.9, 0.1}, out); err == nil {
		t.Fatal("descending quantiles accepted")
	}
	if err := sk.Quantiles([]float64{0.5}, out); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := sk.Quantiles([]float64{0.1, 1.5}, out); err == nil {
		t.Fatal("q>1 accepted")
	}
	if err := NewDefaultSketch().Quantiles([]float64{0.5}, out[:1]); err != ErrEmpty {
		t.Fatalf("empty sketch: got %v, want ErrEmpty", err)
	}
}
