package stats

import "math"

// Stream is a constant-memory streaming accumulator for the moments the
// experiment tables report: count, mean, variance (Welford), min and max.
// The zero value is an empty accumulator ready for use. Streams merge
// associatively, so a sample can be folded shard-by-shard in parallel and
// combined afterwards; merging in a fixed shard order makes the result
// bit-reproducible regardless of how many goroutines did the folding.
type Stream struct {
	w        Welford
	min, max float64
}

// Add incorporates one observation.
func (s *Stream) Add(x float64) {
	if s.w.N() == 0 || x < s.min {
		s.min = x
	}
	if s.w.N() == 0 || x > s.max {
		s.max = x
	}
	s.w.Add(x)
}

// Merge combines another accumulator into this one.
func (s *Stream) Merge(o Stream) {
	if o.w.N() == 0 {
		return
	}
	if s.w.N() == 0 {
		*s = o
		return
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.w.Merge(o.w)
}

// N returns the number of observations so far.
func (s Stream) N() int { return s.w.N() }

// Mean returns the running mean (NaN when empty).
func (s Stream) Mean() float64 { return s.w.Mean() }

// Variance returns the unbiased sample variance (0 for n <= 1).
func (s Stream) Variance() float64 { return s.w.Variance() }

// Std returns the sample standard deviation.
func (s Stream) Std() float64 { return s.w.Std() }

// SE returns the standard error of the running mean.
func (s Stream) SE() float64 { return s.w.SE() }

// Min returns the smallest observation (NaN when empty).
func (s Stream) Min() float64 {
	if s.w.N() == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation (NaN when empty).
func (s Stream) Max() float64 {
	if s.w.N() == 0 {
		return math.NaN()
	}
	return s.max
}

// CI returns the normal-approximation confidence interval for the running
// mean at the given level (e.g. 0.95) — the streaming counterpart of
// NormalCI.
func (s Stream) CI(level float64) (Interval, error) {
	if s.w.N() == 0 {
		return Interval{}, ErrEmpty
	}
	if level <= 0 || level >= 1 {
		return Interval{}, errBadLevel(level)
	}
	h := zQuantile(level) * s.SE()
	m := s.Mean()
	return Interval{Point: m, Lo: m - h, Hi: m + h, Level: level}, nil
}
