package stats

import (
	"errors"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"cobrawalk/internal/rng"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || !approx(s.Mean, 5, 1e-12) {
		t.Fatalf("mean: %+v", s)
	}
	// Sample variance with n-1 denominator: Σ(x-5)² = 32, 32/7.
	if !approx(s.Variance, 32.0/7, 1e-12) {
		t.Fatalf("variance = %v, want %v", s.Variance, 32.0/7)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("range: %+v", s)
	}
	if !approx(s.Median, 4.5, 1e-12) {
		t.Fatalf("median = %v, want 4.5", s.Median)
	}
	if !approx(s.SE(), s.Std/math.Sqrt(8), 1e-12) {
		t.Fatalf("SE = %v", s.SE())
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Fatalf("String: %s", s.String())
	}
}

func TestSummarizeSingleAndEmpty(t *testing.T) {
	s, err := Summarize([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 3.5 || s.Variance != 0 || s.Median != 3.5 || s.Min != 3.5 || s.Max != 3.5 {
		t.Fatalf("singleton summary: %+v", s)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty: %v", err)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Summarize(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, tc := range cases {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(got, tc.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("q > 1 should fail")
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty should fail with ErrEmpty")
	}
}

func TestQuantilePropertyMonotone(t *testing.T) {
	r := rng.New(1)
	f := func(seed uint32) bool {
		rr := rng.New(uint64(seed))
		n := rr.Intn(50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rr.Float64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v, err := Quantile(xs, q)
			if err != nil || v < prev {
				return false
			}
			prev = v
		}
		// Quantiles bounded by min/max.
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		lo, _ := Quantile(xs, 0)
		hi, _ := Quantile(xs, 1)
		return lo == sorted[0] && hi == sorted[n-1]
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 7
		w.Add(xs[i])
	}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(w.Mean(), s.Mean, 1e-10) || !approx(w.Variance(), s.Variance, 1e-8) {
		t.Fatalf("welford (%v, %v) vs batch (%v, %v)", w.Mean(), w.Variance(), s.Mean, s.Variance)
	}
	if w.N() != 1000 {
		t.Fatalf("N = %d", w.N())
	}
}

func TestWelfordMerge(t *testing.T) {
	r := rng.New(3)
	var whole, left, right Welford
	for i := 0; i < 500; i++ {
		x := r.Float64() * 10
		whole.Add(x)
		if i < 180 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(right)
	if left.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", left.N(), whole.N())
	}
	if !approx(left.Mean(), whole.Mean(), 1e-10) || !approx(left.Variance(), whole.Variance(), 1e-8) {
		t.Fatalf("merge mismatch: (%v,%v) vs (%v,%v)", left.Mean(), left.Variance(), whole.Mean(), whole.Variance())
	}
	// Merging into empty and merging empty are both identity-ish.
	var empty Welford
	empty.Merge(whole)
	if !approx(empty.Mean(), whole.Mean(), 1e-12) {
		t.Fatal("merge into empty failed")
	}
	before := whole.Mean()
	whole.Merge(Welford{})
	if whole.Mean() != before {
		t.Fatal("merging empty changed state")
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.SE()) {
		t.Fatal("empty accumulator should report NaN mean/SE")
	}
	if w.Variance() != 0 {
		t.Fatal("empty variance should be 0")
	}
}

func TestInvNormCDF(t *testing.T) {
	// Known standard normal quantiles.
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.995, 2.575829},
		{0.841344746, 1.0},
		{0.025, -1.959964},
		{0.0001, -3.719016},
	}
	for _, tc := range cases {
		if got := invNormCDF(tc.p); !approx(got, tc.want, 1e-4) {
			t.Fatalf("invNormCDF(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if !math.IsNaN(invNormCDF(0)) || !math.IsNaN(invNormCDF(1)) {
		t.Fatal("edge probabilities should be NaN")
	}
}

func TestNormalCI(t *testing.T) {
	r := rng.New(4)
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = r.NormFloat64() + 5
	}
	iv, err := NormalCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(5) {
		t.Fatalf("CI %v should contain the true mean 5", iv)
	}
	if iv.Hi-iv.Lo > 0.2 {
		t.Fatalf("CI too wide: %v", iv)
	}
	if iv.Lo >= iv.Point || iv.Point >= iv.Hi {
		t.Fatalf("CI ordering broken: %v", iv)
	}
	if _, err := NormalCI(xs, 1.5); err == nil {
		t.Fatal("bad level should fail")
	}
	if _, err := NormalCI(nil, 0.95); err == nil {
		t.Fatal("empty should fail")
	}
}

func TestNormalCICoverage(t *testing.T) {
	// Empirical coverage of the 90% CI over repeated sampling should be
	// near 0.9. 400 experiments of 50 samples each.
	r := rng.New(5)
	covered := 0
	const experiments = 400
	for e := 0; e < experiments; e++ {
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = r.NormFloat64() * 2
		}
		iv, err := NormalCI(xs, 0.90)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(0) {
			covered++
		}
	}
	rate := float64(covered) / experiments
	if rate < 0.84 || rate > 0.96 {
		t.Fatalf("90%% CI empirical coverage = %.3f", rate)
	}
}

func TestBootstrapCI(t *testing.T) {
	r := rng.New(6)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Float64()*2 + 3 // uniform(3,5), median 4
	}
	iv, err := BootstrapCI(xs, 0.95, 1000, func(s []float64) float64 {
		v, _ := Quantile(s, 0.5)
		return v
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(4) {
		t.Fatalf("bootstrap CI %v should contain true median 4", iv)
	}
	if _, err := BootstrapCI(nil, 0.95, 100, Mean, r); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty should fail")
	}
	if _, err := BootstrapCI(xs, 0, 100, Mean, r); err == nil {
		t.Fatal("bad level should fail")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	f, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(f.Slope, 2, 1e-12) || !approx(f.Intercept, 3, 1e-12) || !approx(f.R2, 1, 1e-12) {
		t.Fatalf("fit: %+v", f)
	}
	if !approx(f.Predict(10), 23, 1e-12) {
		t.Fatalf("predict: %v", f.Predict(10))
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point should fail")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("constant x should fail")
	}
	// Constant y fits exactly with slope 0.
	f, err := LinearFit([]float64{1, 2, 3}, []float64{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if f.Slope != 0 || f.R2 != 1 {
		t.Fatalf("constant-y fit: %+v", f)
	}
}

func TestFitLogN(t *testing.T) {
	// y = 3·log2(n) + 1.
	ns := []float64{256, 512, 1024, 2048, 4096}
	ys := make([]float64, len(ns))
	for i, n := range ns {
		ys[i] = 3*math.Log2(n) + 1
	}
	f, err := FitLogN(ns, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(f.Slope, 3, 1e-10) || !approx(f.Intercept, 1, 1e-9) {
		t.Fatalf("log fit: %+v", f)
	}
	if _, err := FitLogN([]float64{0, 2}, []float64{1, 2}); err == nil {
		t.Fatal("n = 0 should fail")
	}
}

func TestFitPower(t *testing.T) {
	// y = 5·x^0.5.
	xs := []float64{1, 4, 9, 16, 25}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 * math.Sqrt(x)
	}
	p, err := FitPower(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p.Exponent, 0.5, 1e-10) || !approx(p.Coeff, 5, 1e-9) || !approx(p.R2, 1, 1e-10) {
		t.Fatalf("power fit: %+v", p)
	}
	if !approx(p.Predict(100), 50, 1e-8) {
		t.Fatalf("predict: %v", p.Predict(100))
	}
	if _, err := FitPower([]float64{-1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("negative x should fail")
	}
}

func TestCompareFits(t *testing.T) {
	ys := []float64{1, 2, 3}
	perfect := []float64{1, 2, 3}
	off := []float64{2, 3, 4}
	ratio, err := CompareFits(ys, perfect, off)
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 0 {
		t.Fatalf("perfect model ratio = %v, want 0", ratio)
	}
	ratio, err = CompareFits(ys, off, perfect)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(ratio, 1) {
		t.Fatalf("ratio against perfect baseline = %v, want +Inf", ratio)
	}
	ratio, err = CompareFits(ys, perfect, perfect)
	if err != nil || ratio != 1 {
		t.Fatalf("both perfect: %v, %v", ratio, err)
	}
	if _, err := CompareFits(ys, perfect, []float64{1}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := CompareFits(nil, nil, nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty should fail")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 1, 3, 5, 7, 9, -2, 15} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	// -2 clamps into bin 0, 15 into bin 4.
	if h.Counts[0] != 3 { // 0.5, 1, -2
		t.Fatalf("bin0 = %d, want 3 (counts %v)", h.Counts[0], h.Counts)
	}
	if h.Counts[4] != 2 { // 9, 15
		t.Fatalf("bin4 = %d, want 2 (counts %v)", h.Counts[4], h.Counts)
	}
	if !approx(h.BinCenter(0), 1, 1e-12) || !approx(h.BinCenter(4), 9, 1e-12) {
		t.Fatalf("bin centers: %v %v", h.BinCenter(0), h.BinCenter(4))
	}
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Fatalf("render produced no bars:\n%s", out)
	}
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("zero bins should fail")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("hi == lo should fail")
	}
}

func TestMeanEdge(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean broken")
	}
}

// Property: Summary invariants hold for arbitrary samples.
func TestSummaryInvariantsQuick(t *testing.T) {
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		n := r.Intn(100) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 50
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.Q25 && s.Q25 <= s.Median && s.Median <= s.Q75 &&
			s.Q75 <= s.Max && s.Mean >= s.Min && s.Mean <= s.Max &&
			s.Variance >= 0 && s.P95 <= s.Max && s.P95 >= s.Median
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
