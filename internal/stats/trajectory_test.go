package stats

import (
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"testing"
)

func TestTrajectoryRoundAxis(t *testing.T) {
	// The exact prefix samples every round including the start state.
	for k := 0; k <= TrajectoryBaseRounds; k++ {
		if got := TrajectoryRound(k); got != k {
			t.Fatalf("TrajectoryRound(%d) = %d, want %d", k, got, k)
		}
	}
	// Beyond the prefix the axis is strictly increasing.
	prev := TrajectoryBaseRounds
	for k := TrajectoryBaseRounds + 1; k < TrajectoryMaxColumns; k++ {
		r := TrajectoryRound(k)
		if r <= prev {
			t.Fatalf("axis not strictly increasing: round(%d) = %d, round(%d) = %d", k-1, prev, k, r)
		}
		prev = r
	}
	// The last sample round comfortably exceeds every engine round cap.
	if last := TrajectoryRound(TrajectoryMaxColumns - 1); last < 1<<24 {
		t.Fatalf("last sample round %d too small to cover long runs", last)
	}
	if TrajectoryRound(-1) != -1 || TrajectoryRound(TrajectoryMaxColumns) != -1 {
		t.Fatal("out-of-range columns should return -1")
	}
}

func TestTrajectoryDigestKnown(t *testing.T) {
	d := NewTrajectoryDigest()
	// Three trials of different lengths; values chosen so per-column
	// means are exact.
	d.AddTrial([]int{1, 2, 4})    // rounds 0..2
	d.AddTrial([]int{1, 4, 8, 8}) // rounds 0..3
	d.AddTrial([]int{1, 6})       // rounds 0..1
	if d.N() != 3 {
		t.Fatalf("N = %d, want 3", d.N())
	}
	if d.Columns() != 4 {
		t.Fatalf("Columns = %d, want 4 (longest trial ran 3 rounds)", d.Columns())
	}
	s, err := d.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Rounds, []int{0, 1, 2, 3}) {
		t.Fatalf("Rounds = %v", s.Rounds)
	}
	if !reflect.DeepEqual(s.N, []int{3, 3, 2, 1}) {
		t.Fatalf("N = %v, want survivors [3 3 2 1]", s.N)
	}
	wantMean := []float64{1, 4, 6, 8}
	for k := range wantMean {
		if math.Abs(s.Mean[k]-wantMean[k]) > 1e-12 {
			t.Fatalf("Mean[%d] = %v, want %v", k, s.Mean[k], wantMean[k])
		}
	}
	// Sketch quantiles are within the default 1% relative accuracy.
	if math.Abs(s.P50[1]-4) > 4*2*DefaultSketchAlpha {
		t.Fatalf("P50[1] = %v, want ≈ 4", s.P50[1])
	}
	if s.P10[1] > s.P50[1] || s.P50[1] > s.P90[1] {
		t.Fatalf("quantile band not ordered at column 1: %v %v %v", s.P10[1], s.P50[1], s.P90[1])
	}
}

// TestTrajectoryShardedMerge pins the determinism contract the sim layer
// relies on: trials partitioned into fixed shards and merged in
// ascending shard order reproduce byte-identically run after run, the
// quantile band is exactly the sequential one (sketch bucket counts are
// additive integers), and the means agree to floating-point tolerance.
func TestTrajectoryShardedMerge(t *testing.T) {
	trials := make([][]int, 40)
	for i := range trials {
		length := 3 + (i*7)%90
		s := make([]int, length+1)
		for r := range s {
			v := 1 + r*(i%5+1)
			if v > 100 {
				v = 100
			}
			s[r] = v
		}
		trials[i] = s
	}
	seq := NewTrajectoryDigest()
	for _, tr := range trials {
		seq.AddTrial(tr)
	}

	// shardFold mimics sim.Reduce: contiguous trial blocks per shard,
	// merged in ascending shard order.
	shardFold := func(shards int) *TrajectoryDigest {
		per := (len(trials) + shards - 1) / shards
		total := NewTrajectoryDigest()
		for s := 0; s < shards; s++ {
			d := NewTrajectoryDigest()
			for i := s * per; i < (s+1)*per && i < len(trials); i++ {
				d.AddTrial(trials[i])
			}
			if err := total.Merge(d); err != nil {
				t.Fatal(err)
			}
		}
		return total
	}

	a, err := shardFold(4).Summary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := shardFold(4).Summary()
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("identical sharded folds are not byte-identical")
	}

	ref, err := seq.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.N, ref.N) || !reflect.DeepEqual(a.Rounds, ref.Rounds) {
		t.Fatalf("sharded column structure differs: %v vs %v", a.N, ref.N)
	}
	// Sketch merges are exact, so the quantile band is bitwise the
	// sequential one even across groupings.
	if !reflect.DeepEqual(a.P10, ref.P10) || !reflect.DeepEqual(a.P50, ref.P50) || !reflect.DeepEqual(a.P90, ref.P90) {
		t.Fatal("quantile bands differ between sharded and sequential folds")
	}
	for k := range ref.Mean {
		if math.Abs(a.Mean[k]-ref.Mean[k]) > 1e-9*(1+math.Abs(ref.Mean[k])) {
			t.Fatalf("column %d mean drifted: %v vs %v", k, a.Mean[k], ref.Mean[k])
		}
	}
	if err := seq.Merge(nil); err != nil {
		t.Fatal("nil merge should be a no-op")
	}
}

func TestTrajectoryDownsampledColumns(t *testing.T) {
	// A long monotone trial: every sampled column must hold the exact
	// value at its sample round, skipping unsampled rounds.
	series := make([]int, 1001)
	for r := range series {
		series[r] = r
	}
	d := NewTrajectoryDigest()
	d.AddTrial(series)
	s, err := d.Summary()
	if err != nil {
		t.Fatal(err)
	}
	for k, r := range s.Rounds {
		if r > 1000 {
			t.Fatalf("column %d samples round %d beyond the trial", k, r)
		}
		if s.Mean[k] != float64(r) {
			t.Fatalf("column %d (round %d) mean = %v, want %d", k, r, s.Mean[k], r)
		}
	}
	if last := s.Rounds[len(s.Rounds)-1]; last <= TrajectoryBaseRounds {
		t.Fatalf("downsampled region never reached: last sampled round %d", last)
	}
	// Roughly logarithmic: far fewer columns than rounds.
	if len(s.Rounds) > 200 {
		t.Fatalf("%d columns for a 1000-round trial — axis not downsampled", len(s.Rounds))
	}
}

func TestTrajectoryEmpty(t *testing.T) {
	if _, err := NewTrajectoryDigest().Summary(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty summary err = %v, want ErrEmpty", err)
	}
}

// TestDigestSummaryCISmallN is the satellite's table-driven pin: interval
// estimates from serialised summaries refuse N < 2 explicitly rather
// than reporting NaN or zero-width bounds.
func TestDigestSummaryCISmallN(t *testing.T) {
	cases := []struct {
		name    string
		adds    []float64
		wantErr error
	}{
		{"empty", nil, ErrEmpty},
		{"single", []float64{42}, ErrInsufficient},
		{"pair", []float64{1, 3}, nil},
		{"triple", []float64{1, 2, 3}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDigest()
			for _, x := range tc.adds {
				d.Add(x)
			}
			var s DigestSummary
			if len(tc.adds) > 0 {
				var err error
				if s, err = d.Summary(); err != nil {
					t.Fatal(err)
				}
			}
			iv, err := s.CI(0.95)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("CI err = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) || iv.Lo > iv.Hi {
				t.Fatalf("degenerate interval %+v", iv)
			}
			if iv.Lo == iv.Hi {
				t.Fatalf("zero-width interval %+v for N = %d", iv, s.N)
			}
		})
	}
	// Bad level still rejected for healthy N.
	d := NewDigest()
	d.Add(1)
	d.Add(2)
	s, err := d.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CI(1.5); err == nil {
		t.Fatal("level outside (0,1) should fail")
	}
}
