package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width-bin histogram over [Lo, Hi); samples outside
// the range are clamped into the edge bins so no observation is lost.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	total  int64
}

// NewHistogram returns a histogram with bins equal-width bins over
// [lo, hi). bins must be positive and hi > lo.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bin count, got %d", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram needs hi > lo, got [%v, %v)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) { h.AddN(x, 1) }

// AddN records n identical observations (bulk insertion for merges and
// sketch redistribution).
func (h *Histogram) AddN(x float64, n int64) {
	if n <= 0 {
		return
	}
	idx := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx] += n
	h.total += n
}

// Merge adds another histogram's counts into this one. The two histograms
// must have identical range and bin count.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil {
		return nil
	}
	if o.Lo != h.Lo || o.Hi != h.Hi || len(o.Counts) != len(h.Counts) {
		return fmt.Errorf("stats: merging histograms [%v,%v)x%d and [%v,%v)x%d",
			h.Lo, h.Hi, len(h.Counts), o.Lo, o.Hi, len(o.Counts))
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.total += o.total
	return nil
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Render draws a fixed-width ASCII bar chart, one line per bin, suitable
// for experiment logs.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	var maxCount int64 = 1
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var sb strings.Builder
	for i, c := range h.Counts {
		barLen := int(math.Round(float64(c) / float64(maxCount) * float64(width)))
		fmt.Fprintf(&sb, "%10.3g | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", barLen), c)
	}
	return sb.String()
}
