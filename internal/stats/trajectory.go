package stats

import (
	"fmt"
	"math"
	"sort"
)

// TrajectoryDigest aggregates per-round trajectories (|A_t| curves,
// cumulative coverage counts) across a Monte-Carlo ensemble: column k
// holds a Digest of the trajectory value at sample round TrajectoryRound(k),
// so quantile bands (p10/p50/p90 per round) come out in constant memory
// per column no matter how many trials stream through.
//
// The round axis is downsampled geometrically: every round up to
// TrajectoryBaseRounds is sampled exactly, and beyond that sample rounds
// grow by a factor of TrajectoryGrowth per column, capped at
// TrajectoryMaxColumns columns. The axis is a fixed function of the
// column index — never of the data — so a trial contributes to exactly
// the columns its length reaches, wherever and whenever it is folded.
// Column sketch merges are exact (bucket counts are additive integers)
// and column moment merges follow the same fixed-shard-order contract as
// the rest of the stats layer, which keeps ensembles byte-identical
// across worker counts when folded through sim.Reduce.
//
// The zero value is not usable; construct with NewTrajectoryDigest.
type TrajectoryDigest struct {
	cols []*Digest
	// spareD/spareS hold pre-allocated column storage: grow carves new
	// columns out of these slabs and refills them with geometrically
	// growing chunks, so extending the column set one round at a time (a
	// trial slightly longer than every previous one — the common case)
	// costs amortised O(1) allocations instead of a slab pair per call.
	spareD []Digest
	spareS []QuantileSketch
}

const (
	// TrajectoryBaseRounds is the exactly-sampled prefix of the round
	// axis: columns 0..TrajectoryBaseRounds sample rounds 0, 1, ...,
	// TrajectoryBaseRounds (round 0 is the pre-step start state).
	TrajectoryBaseRounds = 64
	// TrajectoryGrowth is the geometric spacing of sample rounds past the
	// base prefix — about 14 samples per doubling of the round index.
	TrajectoryGrowth = 1.05
	// TrajectoryMaxColumns caps the column count; rounds past the last
	// sample round (≈ 10⁹ at the default base and growth, far beyond any
	// round cap the engine accepts) are not sampled.
	TrajectoryMaxColumns = 384
)

// trajectoryRounds is the precomputed sample-round axis — a fixed
// function of the constants above, tabulated once so the hot fold path
// does table lookups and a binary search instead of math.Pow per column.
var trajectoryRounds = func() [TrajectoryMaxColumns]int {
	var r [TrajectoryMaxColumns]int
	for k := range r {
		if k <= TrajectoryBaseRounds {
			r[k] = k
		} else {
			r[k] = int(math.Ceil(TrajectoryBaseRounds * math.Pow(TrajectoryGrowth, float64(k-TrajectoryBaseRounds))))
		}
	}
	return r
}()

// TrajectoryRound returns the sample round of column k: k itself for
// k <= TrajectoryBaseRounds, then ⌈base·growth^(k-base)⌉, strictly
// increasing. It returns -1 for k outside [0, TrajectoryMaxColumns).
func TrajectoryRound(k int) int {
	if k < 0 || k >= TrajectoryMaxColumns {
		return -1
	}
	return trajectoryRounds[k]
}

// trajectoryColumnsFor returns the number of columns a series of the
// given length populates: the count of sample rounds < seriesLen.
func trajectoryColumnsFor(seriesLen int) int {
	return sort.SearchInts(trajectoryRounds[:], seriesLen)
}

// NewTrajectoryDigest returns an empty trajectory digest.
func NewTrajectoryDigest() *TrajectoryDigest {
	return &TrajectoryDigest{}
}

// AddTrial folds one trial's trajectory: series[t] is the value after
// round t, with series[0] the start state. The trial contributes one
// observation to every column whose sample round the series reaches;
// trials of different lengths therefore populate different column
// prefixes, and each column's N counts the trials that ran at least that
// long.
func (t *TrajectoryDigest) AddTrial(series []int) {
	need := trajectoryColumnsFor(len(series))
	t.grow(need)
	for k := 0; k < need; k++ {
		t.cols[k].Add(float64(series[trajectoryRounds[k]]))
	}
}

// grow extends the column set to at least need columns, drawing storage
// from the spare slabs.
func (t *TrajectoryDigest) grow(need int) {
	for len(t.cols) < need {
		if len(t.spareD) == 0 {
			// One slab pair covers the whole request plus a small reserve:
			// the geometric round axis keeps later extensions to a column
			// or two, so a fixed reserve beats doubling here (columns are
			// ~140 B each — over-reserving across hundreds of per-worker
			// digests costs real memory).
			chunk := max(need-len(t.cols), 8)
			if room := TrajectoryMaxColumns - len(t.cols); chunk > room {
				chunk = room
			}
			t.spareD = make([]Digest, chunk)
			t.spareS = make([]QuantileSketch, chunk)
		}
		d, s := &t.spareD[0], &t.spareS[0]
		t.spareD, t.spareS = t.spareD[1:], t.spareS[1:]
		s.init(DefaultSketchAlpha)
		d.Sketch = s
		t.cols = append(t.cols, d)
	}
}

// Columns returns the number of populated columns.
func (t *TrajectoryDigest) Columns() int { return len(t.cols) }

// N returns the number of trials folded so far (the N of column 0; every
// trial has a start state, so every trial reaches column 0).
func (t *TrajectoryDigest) N() int {
	if len(t.cols) == 0 {
		return 0
	}
	return t.cols[0].N()
}

// Merge combines another trajectory digest into this one, column by
// column. Merging is associative and column counts need not match: the
// result has the longer column set.
func (t *TrajectoryDigest) Merge(o *TrajectoryDigest) error {
	if o == nil {
		return nil
	}
	t.grow(len(o.cols))
	for k, col := range o.cols {
		if err := t.cols[k].Merge(col); err != nil {
			return fmt.Errorf("stats: merging trajectory column %d: %w", k, err)
		}
	}
	return nil
}

// TrajectorySummary is the machine-readable snapshot of a
// TrajectoryDigest: parallel per-column arrays of the sample round, the
// surviving-trial count and the mean and p10/p50/p90 quantile band. It is
// the trajectory block of sweep records and the payload of the daemon's
// /v1/jobs/{id}/trajectories stream.
type TrajectorySummary struct {
	// Rounds[k] is the sample round of column k.
	Rounds []int `json:"rounds"`
	// N[k] counts the trials whose run reached round Rounds[k].
	N []int `json:"n"`
	// Mean and the quantiles describe the trajectory value distribution
	// at each sample round, over the N[k] surviving trials.
	Mean []float64 `json:"mean"`
	P10  []float64 `json:"p10"`
	P50  []float64 `json:"p50"`
	P90  []float64 `json:"p90"`
}

// Summary snapshots the digest. It returns ErrEmpty when no trials have
// been folded.
func (t *TrajectoryDigest) Summary() (TrajectorySummary, error) {
	if len(t.cols) == 0 {
		return TrajectorySummary{}, ErrEmpty
	}
	s := TrajectorySummary{
		Rounds: make([]int, len(t.cols)),
		N:      make([]int, len(t.cols)),
		Mean:   make([]float64, len(t.cols)),
		P10:    make([]float64, len(t.cols)),
		P50:    make([]float64, len(t.cols)),
		P90:    make([]float64, len(t.cols)),
	}
	qs := [3]float64{0.10, 0.50, 0.90}
	var band [3]float64
	for k, col := range t.cols {
		s.Rounds[k] = TrajectoryRound(k)
		s.N[k] = col.N()
		s.Mean[k] = col.Stream.Mean()
		col.Sketch.mustQuantiles(qs[:], band[:])
		s.P10[k], s.P50[k], s.P90[k] = band[0], band[1], band[2]
	}
	return s, nil
}
