package stats

import (
	"encoding/json"
	"fmt"
	"math"
)

// Digest is the streaming counterpart of Summarize: it folds observations
// one at a time into a Stream (count/mean/variance/min/max, exact) and a
// QuantileSketch (p50/p90/p95/p99 to within the sketch's relative
// accuracy), holding constant memory regardless of how many observations
// it sees. Digests merge associatively, which is what lets the Monte-Carlo
// harness aggregate 10⁵+ trials across a worker pool without ever
// materialising a per-trial slice.
type Digest struct {
	Stream Stream
	Sketch *QuantileSketch
}

// NewDigest returns an empty digest with the default sketch accuracy.
func NewDigest() *Digest {
	return &Digest{Sketch: NewDefaultSketch()}
}

// Add incorporates one observation.
func (d *Digest) Add(x float64) {
	d.Stream.Add(x)
	d.Sketch.Add(x)
}

// Merge combines another digest into this one.
func (d *Digest) Merge(o *Digest) error {
	if o == nil {
		return nil
	}
	d.Stream.Merge(o.Stream)
	return d.Sketch.Merge(o.Sketch)
}

// N returns the number of observations so far.
func (d *Digest) N() int { return d.Stream.N() }

// Quantile returns the q-th quantile estimate from the sketch.
func (d *Digest) Quantile(q float64) (float64, error) { return d.Sketch.Quantile(q) }

// DigestSummary is the machine-readable snapshot of a Digest, shaped for
// the -json output of the simulation commands. Quantiles carry the
// sketch's relative accuracy; everything else is exact.
type DigestSummary struct {
	N        int     `json:"n"`
	Mean     float64 `json:"mean"`
	Variance float64 `json:"variance"`
	Std      float64 `json:"std"`
	SE       float64 `json:"se"`
	Min      float64 `json:"min"`
	Max      float64 `json:"max"`
	P50      float64 `json:"p50"`
	P90      float64 `json:"p90"`
	P95      float64 `json:"p95"`
	P99      float64 `json:"p99"`
}

// Summary snapshots the digest. It returns ErrEmpty when no observations
// have been added.
func (d *Digest) Summary() (DigestSummary, error) {
	if d.Stream.N() == 0 {
		return DigestSummary{}, ErrEmpty
	}
	qs := [4]float64{0.50, 0.90, 0.95, 0.99}
	var p [4]float64
	d.Sketch.mustQuantiles(qs[:], p[:])
	return DigestSummary{
		N:        d.Stream.N(),
		Mean:     d.Stream.Mean(),
		Variance: d.Stream.Variance(),
		Std:      d.Stream.Std(),
		SE:       d.Stream.SE(),
		Min:      d.Stream.Min(),
		Max:      d.Stream.Max(),
		P50:      p[0],
		P90:      p[1],
		P95:      p[2],
		P99:      p[3],
	}, nil
}

// CI returns the normal-approximation confidence interval for the mean
// at the given level — Stream.CI reconstructed from the snapshot, for
// consumers that only hold the serialised summary (sweep records). A
// single observation has no standard error, so N < 2 returns
// ErrInsufficient (ErrEmpty for N == 0) instead of degenerate bounds.
func (s DigestSummary) CI(level float64) (Interval, error) {
	if s.N == 0 {
		return Interval{}, ErrEmpty
	}
	if s.N < 2 {
		return Interval{}, ErrInsufficient
	}
	if level <= 0 || level >= 1 {
		return Interval{}, errBadLevel(level)
	}
	h := zQuantile(level) * s.SE
	return Interval{Point: s.Mean, Lo: s.Mean - h, Hi: s.Mean + h, Level: level}, nil
}

func (s DigestSummary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g sd=%.4g min=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
		s.N, s.Mean, s.SE, s.Std, s.Min, s.P50, s.P95, s.P99, s.Max)
}

// MarshalJSON renders non-finite fields as null so the output stays valid
// JSON even for degenerate samples (encoding/json rejects NaN and ±Inf).
// Dispersion fields of an N < 2 ensemble are null too: a single
// observation has no variance, standard deviation or standard error, and
// serialising them as zeros reads as "perfectly concentrated" — the
// NDJSON mirror of the summary table's blank ±95% column (and of CI
// returning ErrInsufficient).
func (s DigestSummary) MarshalJSON() ([]byte, error) {
	variance, std, se := finiteOrNil(s.Variance), finiteOrNil(s.Std), finiteOrNil(s.SE)
	if s.N < 2 {
		variance, std, se = nil, nil, nil
	}
	return json.Marshal(map[string]any{
		"n":        s.N,
		"mean":     finiteOrNil(s.Mean),
		"variance": variance,
		"std":      std,
		"se":       se,
		"min":      finiteOrNil(s.Min),
		"max":      finiteOrNil(s.Max),
		"p50":      finiteOrNil(s.P50),
		"p90":      finiteOrNil(s.P90),
		"p95":      finiteOrNil(s.P95),
		"p99":      finiteOrNil(s.P99),
	})
}

func finiteOrNil(x float64) any {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		return nil
	}
	return x
}
