// Package stats provides the statistical machinery the experiment harness
// reports with, in two flavours:
//
//   - batch: Summarize, Quantile, NormalCI, BootstrapCI, Gini and the
//     least-squares fits for the scaling laws the paper predicts (cover
//     time ∝ log n, cover time ∝ (1-λ)^{-c}) — these take a materialised
//     []float64 sample;
//   - streaming: Stream (count/mean/variance/min/max via Welford),
//     QuantileSketch (mergeable log-bucket quantiles with bounded relative
//     error), Histogram (fixed-bin, mergeable) and Digest (the combination)
//     — constant-memory accumulators that merge associatively, which is
//     what sim.Reduce folds trial results into so ensembles of 10⁵+ trials
//     never materialise a per-trial slice.
//
// Batch and streaming agree: a Stream fed a sample reports the same
// moments as Summarize on it, and sketch quantiles are within the sketch's
// relative accuracy of the exact order statistics.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when an operation requires at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// ErrInsufficient is returned when an operation requires at least two
// samples — a one-trial ensemble has no standard error, so interval
// estimates refuse loudly instead of reporting NaN or zero-width bounds.
var ErrInsufficient = errors.New("stats: need at least 2 observations")

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1 denominator); 0 for n = 1
	Std      float64
	Min, Max float64
	Median   float64
	Q25, Q75 float64
	P95      float64
}

// Summarize computes a Summary of xs. It returns ErrEmpty for an empty
// sample. The input is not modified.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var acc Welford
	for _, x := range sorted {
		acc.Add(x)
	}
	return Summary{
		N:        len(sorted),
		Mean:     acc.Mean(),
		Variance: acc.Variance(),
		Std:      acc.Std(),
		Min:      sorted[0],
		Max:      sorted[len(sorted)-1],
		Median:   quantileSorted(sorted, 0.5),
		Q25:      quantileSorted(sorted, 0.25),
		Q75:      quantileSorted(sorted, 0.75),
		P95:      quantileSorted(sorted, 0.95),
	}, nil
}

// SE returns the standard error of the mean.
func (s Summary) SE() float64 {
	if s.N == 0 {
		return math.NaN()
	}
	return s.Std / math.Sqrt(float64(s.N))
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g sd=%.4g min=%.4g med=%.4g p95=%.4g max=%.4g",
		s.N, s.Mean, s.SE(), s.Std, s.Min, s.Median, s.P95, s.Max)
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns ErrEmpty for empty
// input and an error for q outside [0, 1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

// quantileSorted interpolates the q-th quantile of an already-sorted slice.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Gini returns the Gini coefficient of a non-negative sample: 0 for
// perfectly equal values, approaching 1 as a single element dominates.
// Used by the load-balance experiments to summarise per-vertex inequality.
func Gini(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if sorted[0] < 0 {
		return 0, fmt.Errorf("stats: Gini needs non-negative data, got %v", sorted[0])
	}
	n := float64(len(sorted))
	var cum, total float64
	for i, x := range sorted {
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0, nil // all-zero sample: perfectly equal
	}
	return (2*cum)/(n*total) - (n+1)/n, nil
}

// Welford is a streaming mean/variance accumulator (Welford's online
// algorithm), numerically stable for long runs. The zero value is an empty
// accumulator ready for use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations so far.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (NaN when empty).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the unbiased sample variance (0 for n <= 1).
func (w *Welford) Variance() float64 {
	if w.n <= 1 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// SE returns the standard error of the running mean.
func (w *Welford) SE() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.Std() / math.Sqrt(float64(w.n))
}

// Merge combines another accumulator into this one (parallel reduction),
// using Chan et al.'s pairwise update.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / float64(n)
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}
