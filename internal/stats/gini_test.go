package stats

import (
	"errors"
	"testing"
)

func TestGini(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
		tol  float64
	}{
		{"equal", []float64{5, 5, 5, 5}, 0, 1e-12},
		{"all-zero", []float64{0, 0, 0}, 0, 1e-12},
		{"one-holder-of-4", []float64{0, 0, 0, 8}, 0.75, 1e-12}, // (n-1)/n
		{"two-values", []float64{1, 3}, 0.25, 1e-12},
		{"arithmetic", []float64{1, 2, 3, 4, 5}, 4.0 / 15, 1e-12},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Gini(tc.in)
			if err != nil {
				t.Fatal(err)
			}
			if !approx(got, tc.want, tc.tol) {
				t.Fatalf("Gini = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestGiniOrderInvariant(t *testing.T) {
	a, err := Gini([]float64{3, 1, 4, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Gini([]float64{5, 4, 3, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(a, b, 1e-12) {
		t.Fatalf("order changed Gini: %v vs %v", a, b)
	}
}

func TestGiniErrors(t *testing.T) {
	if _, err := Gini(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty should fail with ErrEmpty")
	}
	if _, err := Gini([]float64{1, -1}); err == nil {
		t.Fatal("negative data should fail")
	}
}

func TestGiniRange(t *testing.T) {
	// Gini of any non-negative sample lies in [0, 1).
	samples := [][]float64{
		{1}, {0.5, 0.5}, {10, 0, 0, 0, 0, 0, 0, 0}, {1, 2, 4, 8, 16, 32},
	}
	for _, s := range samples {
		g, err := Gini(s)
		if err != nil {
			t.Fatal(err)
		}
		if g < 0 || g >= 1 {
			t.Fatalf("Gini(%v) = %v outside [0,1)", s, g)
		}
	}
}
