package stats

import (
	"fmt"
	"math"
)

// Fit is an ordinary-least-squares line y = Slope·x + Intercept with its
// coefficient of determination.
type Fit struct {
	Slope, Intercept float64
	R2               float64
	N                int
}

func (f Fit) String() string {
	return fmt.Sprintf("y = %.4g·x + %.4g (R²=%.4f, n=%d)", f.Slope, f.Intercept, f.R2, f.N)
}

// Predict evaluates the fitted line at x.
func (f Fit) Predict(x float64) float64 { return f.Slope*x + f.Intercept }

// LinearFit fits y = a·x + b by least squares. It needs at least two
// points with non-constant x.
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return Fit{}, fmt.Errorf("stats: need >= 2 points, got %d", n)
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, fmt.Errorf("stats: degenerate fit: x is constant")
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx, N: n}
	if syy == 0 {
		fit.R2 = 1 // constant y fitted exactly by zero slope
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// FitLogN fits y = a·log₂(n) + b for positive sample sizes ns. It is the
// harness's test for "is this cover time Θ(log n)": a high R² with stable
// slope across doublings supports a logarithmic law.
func FitLogN(ns []float64, ys []float64) (Fit, error) {
	xs := make([]float64, len(ns))
	for i, n := range ns {
		if n <= 0 {
			return Fit{}, fmt.Errorf("stats: non-positive n[%d] = %v in log fit", i, n)
		}
		xs[i] = math.Log2(n)
	}
	return LinearFit(xs, ys)
}

// PowerFit fits y = c·x^p by least squares in log-log space and returns
// (p, c, R²). All inputs must be positive. Used for the grid/torus scaling
// law Õ(n^{1/d}) and the λ-sweep exponent of experiment E7.
type PowerLaw struct {
	Exponent float64
	Coeff    float64
	R2       float64
	N        int
}

func (p PowerLaw) String() string {
	return fmt.Sprintf("y = %.4g·x^%.4f (R²=%.4f, n=%d)", p.Coeff, p.Exponent, p.R2, p.N)
}

// Predict evaluates the power law at x.
func (p PowerLaw) Predict(x float64) float64 { return p.Coeff * math.Pow(x, p.Exponent) }

// FitPower fits y = c·x^p via regression of log y on log x.
func FitPower(xs, ys []float64) (PowerLaw, error) {
	if len(xs) != len(ys) {
		return PowerLaw{}, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return PowerLaw{}, fmt.Errorf("stats: power fit needs positive data, got (%v, %v) at %d", xs[i], ys[i], i)
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	f, err := LinearFit(lx, ly)
	if err != nil {
		return PowerLaw{}, err
	}
	return PowerLaw{Exponent: f.Slope, Coeff: math.Exp(f.Intercept), R2: f.R2, N: f.N}, nil
}

// CompareFits reports which of two candidate models explains ys better, by
// comparing residual sums of squares of (already-fitted) predictions. It
// returns the ratio RSS(a)/RSS(b); values < 1 favour model a. Used by
// experiment E8 to contrast the log n law (this paper) against the log² n
// law (Dutta et al.'s earlier bound) on expanders.
func CompareFits(ys, predA, predB []float64) (float64, error) {
	if len(ys) != len(predA) || len(ys) != len(predB) {
		return 0, fmt.Errorf("stats: length mismatch")
	}
	if len(ys) == 0 {
		return 0, ErrEmpty
	}
	var rssA, rssB float64
	for i := range ys {
		da, db := ys[i]-predA[i], ys[i]-predB[i]
		rssA += da * da
		rssB += db * db
	}
	if rssB == 0 {
		if rssA == 0 {
			return 1, nil
		}
		return math.Inf(1), nil
	}
	return rssA / rssB, nil
}
