package stats

import (
	"fmt"
	"math"
	"sort"

	"cobrawalk/internal/rng"
)

// Interval is a two-sided confidence interval for a point estimate.
type Interval struct {
	Point  float64
	Lo, Hi float64
	Level  float64 // e.g. 0.95
}

func (iv Interval) String() string {
	return fmt.Sprintf("%.4g [%.4g, %.4g] @%.0f%%", iv.Point, iv.Lo, iv.Hi, iv.Level*100)
}

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

func errBadLevel(level float64) error {
	return fmt.Errorf("stats: confidence level %v outside (0,1)", level)
}

// zQuantile returns the standard normal quantile for the given two-sided
// confidence level via Acklam's rational approximation of the inverse
// normal CDF (absolute error < 1.2e-9, ample for CI construction).
func zQuantile(level float64) float64 {
	p := 1 - (1-level)/2 // upper-tail point, e.g. 0.975 for level 0.95
	return invNormCDF(p)
}

// invNormCDF is Acklam's inverse normal CDF approximation.
func invNormCDF(p float64) float64 {
	if p <= 0 || p >= 1 {
		if p == 0.5 {
			return 0
		}
		return math.NaN()
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// NormalCI returns the normal-approximation confidence interval for the
// mean of xs at the given level (e.g. 0.95).
func NormalCI(xs []float64, level float64) (Interval, error) {
	if level <= 0 || level >= 1 {
		return Interval{}, errBadLevel(level)
	}
	s, err := Summarize(xs)
	if err != nil {
		return Interval{}, err
	}
	z := zQuantile(level)
	h := z * s.SE()
	return Interval{Point: s.Mean, Lo: s.Mean - h, Hi: s.Mean + h, Level: level}, nil
}

// BootstrapCI returns a percentile-bootstrap confidence interval for an
// arbitrary statistic of xs. resamples controls the bootstrap replications
// (default 2000 when <= 0). Deterministic given the rng stream.
func BootstrapCI(xs []float64, level float64, resamples int, stat func([]float64) float64, r *rng.Rand) (Interval, error) {
	if len(xs) == 0 {
		return Interval{}, ErrEmpty
	}
	if level <= 0 || level >= 1 {
		return Interval{}, errBadLevel(level)
	}
	if resamples <= 0 {
		resamples = 2000
	}
	point := stat(xs)
	replicates := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for b := 0; b < resamples; b++ {
		for i := range buf {
			buf[i] = xs[r.Intn(len(xs))]
		}
		replicates[b] = stat(buf)
	}
	sort.Float64s(replicates)
	alpha := (1 - level) / 2
	return Interval{
		Point: point,
		Lo:    quantileSorted(replicates, alpha),
		Hi:    quantileSorted(replicates, 1-alpha),
		Level: level,
	}, nil
}
