package stats

import (
	"fmt"
	"math"
	"sort"
)

// QuantileSketch estimates quantiles of a stream in constant memory using
// logarithmically-spaced buckets (the DDSketch construction of Masson,
// Rim & Lee, VLDB 2019): a value x > 0 lands in bucket ⌈log_γ(x)⌉ with
// γ = (1+α)/(1-α), which guarantees every reported quantile is within
// relative error α of an exact sample quantile. Zero and negative values
// get their own buckets (negatives mirror the positive layout), so the
// sketch accepts arbitrary float64 observations.
//
// Bucket counts are additive, so merging two sketches is exact — a merged
// sketch is indistinguishable from one that saw both streams — and the
// result is independent of merge order. Memory is O(distinct buckets):
// for α = 0.01 a stream spanning [1, 10⁹] touches ~1000 buckets.
//
// The zero value is not usable; construct with NewQuantileSketch.
type QuantileSketch struct {
	alpha  float64
	gamma  float64 // (1+α)/(1-α)
	lnG    float64 // ln γ
	pos    map[int]int64
	neg    map[int]int64
	zeros  int64
	posInf int64
	negInf int64
	total  int64
}

// DefaultSketchAlpha is the relative accuracy used by NewDefaultSketch:
// quantiles are reported to within 1%.
const DefaultSketchAlpha = 0.01

// NewQuantileSketch returns an empty sketch with relative accuracy alpha
// (0 < alpha < 1).
func NewQuantileSketch(alpha float64) (*QuantileSketch, error) {
	if !(alpha > 0 && alpha < 1) {
		return nil, fmt.Errorf("stats: sketch accuracy %v outside (0,1)", alpha)
	}
	s := new(QuantileSketch)
	s.init(alpha)
	return s, nil
}

// init prepares a zero sketch in place with the given (already validated)
// accuracy. The bucket maps stay nil until first use — a trajectory
// ensemble batch-allocates hundreds of column sketches, most of which see
// only a handful of distinct buckets, so eager maps were pure overhead.
func (s *QuantileSketch) init(alpha float64) {
	g := (1 + alpha) / (1 - alpha)
	s.alpha = alpha
	s.gamma = g
	s.lnG = math.Log(g)
}

// posMap and negMap create their bucket map on first use, without a size
// hint: hintless small maps stay on the runtime's cheap single-group path
// until they actually grow, where a larger hint pays three allocations up
// front for every sketch that might never see that side of zero.

func (s *QuantileSketch) posMap() map[int]int64 {
	if s.pos == nil {
		s.pos = make(map[int]int64)
	}
	return s.pos
}

func (s *QuantileSketch) negMap() map[int]int64 {
	if s.neg == nil {
		s.neg = make(map[int]int64)
	}
	return s.neg
}

// NewDefaultSketch returns an empty sketch with DefaultSketchAlpha
// accuracy.
func NewDefaultSketch() *QuantileSketch {
	s, err := NewQuantileSketch(DefaultSketchAlpha)
	if err != nil {
		panic(err) // unreachable: constant accuracy is valid
	}
	return s
}

// bucket maps a positive value to its bucket index ⌈log_γ(x)⌉.
func (s *QuantileSketch) bucket(x float64) int {
	return int(math.Ceil(math.Log(x) / s.lnG))
}

// Add incorporates one observation. NaN is ignored; ±Inf get dedicated
// end buckets (int(log(±Inf)) would otherwise be implementation-defined).
func (s *QuantileSketch) Add(x float64) {
	switch {
	case math.IsNaN(x):
		return
	case math.IsInf(x, 1):
		s.posInf++
	case math.IsInf(x, -1):
		s.negInf++
	case x > 0:
		s.posMap()[s.bucket(x)]++
	case x < 0:
		s.negMap()[s.bucket(-x)]++
	default:
		s.zeros++
	}
	s.total++
}

// N returns the number of recorded observations.
func (s *QuantileSketch) N() int64 { return s.total }

// Alpha returns the relative accuracy the sketch was built with.
func (s *QuantileSketch) Alpha() float64 { return s.alpha }

// Merge combines another sketch into this one. The two sketches must have
// been built with the same accuracy.
func (s *QuantileSketch) Merge(o *QuantileSketch) error {
	if o == nil || o.total == 0 {
		return nil
	}
	if o.alpha != s.alpha {
		return fmt.Errorf("stats: merging sketches with accuracies %v and %v", s.alpha, o.alpha)
	}
	if len(o.pos) > 0 {
		dst := s.posMap()
		for b, c := range o.pos {
			dst[b] += c
		}
	}
	if len(o.neg) > 0 {
		dst := s.negMap()
		for b, c := range o.neg {
			dst[b] += c
		}
	}
	s.zeros += o.zeros
	s.posInf += o.posInf
	s.negInf += o.negInf
	s.total += o.total
	return nil
}

// value returns the representative value of positive bucket b: the
// γ-geometric midpoint 2γ^b/(γ+1), which is within α of every value the
// bucket can hold.
func (s *QuantileSketch) value(b int) float64 {
	return 2 * math.Pow(s.gamma, float64(b)) / (s.gamma + 1)
}

// Quantile returns the q-th quantile (0 <= q <= 1) with relative error at
// most Alpha. It returns ErrEmpty for an empty sketch.
func (s *QuantileSketch) Quantile(q float64) (float64, error) {
	var (
		qs  = [1]float64{q}
		out [1]float64
	)
	if err := s.Quantiles(qs[:], out[:]); err != nil {
		return 0, err
	}
	return out[0], nil
}

// Quantiles fills out[i] with the qs[i]-th quantile for every requested
// quantile in one walk over the buckets — each out[i] is exactly what
// Quantile(qs[i]) returns, at a fraction of the cost when several
// quantiles are wanted from the same sketch (summary rows, trajectory
// bands). qs must be sorted ascending, with every entry in [0, 1], and
// out must have the same length. It returns ErrEmpty for an empty sketch.
func (s *QuantileSketch) Quantiles(qs []float64, out []float64) error {
	if len(out) != len(qs) {
		return fmt.Errorf("stats: Quantiles got %d outputs for %d quantiles", len(out), len(qs))
	}
	if s.total == 0 {
		return ErrEmpty
	}
	var ranksBuf [8]int64
	ranks := ranksBuf[:0]
	if len(qs) > len(ranksBuf) {
		ranks = make([]int64, 0, len(qs))
	}
	for i, q := range qs {
		if q < 0 || q > 1 {
			return fmt.Errorf("stats: quantile %v outside [0,1]", q)
		}
		if i > 0 && q < qs[i-1] {
			return fmt.Errorf("stats: Quantiles wants ascending quantiles, got %v after %v", q, qs[i-1])
		}
		// Rank of the q-th order statistic among total observations.
		rank := int64(math.Ceil(q * float64(s.total)))
		if rank < 1 {
			rank = 1
		}
		ranks = append(ranks, rank)
	}
	s.quantileWalk(ranks, out)
	return nil
}

// quantileWalk resolves ascending ranks against the bucket cumulative
// distribution in one pass, in ascending value order: -Inf, negatives
// (descending index), zeros, positives (ascending index), +Inf.
func (s *QuantileSketch) quantileWalk(ranks []int64, out []float64) {
	i := 0
	cum := s.negInf
	for i < len(ranks) && cum >= ranks[i] {
		out[i] = math.Inf(-1)
		i++
	}
	for _, b := range sortedKeys(s.neg, true) {
		if i == len(ranks) {
			return
		}
		cum += s.neg[b]
		for i < len(ranks) && cum >= ranks[i] {
			out[i] = -s.value(b)
			i++
		}
	}
	cum += s.zeros
	for i < len(ranks) && cum >= ranks[i] {
		out[i] = 0
		i++
	}
	posKeys := sortedKeys(s.pos, false)
	for _, b := range posKeys {
		if i == len(ranks) {
			return
		}
		cum += s.pos[b]
		for i < len(ranks) && cum >= ranks[i] {
			out[i] = s.value(b)
			i++
		}
	}
	if i == len(ranks) {
		return
	}
	// Ranks past the whole distribution: +Inf when the stream held any,
	// else (rounding pathologies only) the largest finite bucket.
	tail := math.Inf(-1)
	switch {
	case s.posInf > 0:
		tail = math.Inf(1)
	case len(posKeys) > 0:
		tail = s.value(posKeys[len(posKeys)-1])
	case s.zeros > 0:
		tail = 0
	default:
		if keys := sortedKeys(s.neg, false); len(keys) > 0 {
			tail = -s.value(keys[len(keys)-1])
		}
	}
	for ; i < len(ranks); i++ {
		out[i] = tail
	}
}

// mustQuantile is Quantile for internal callers that have already checked
// for emptiness.
func (s *QuantileSketch) mustQuantile(q float64) float64 {
	v, err := s.Quantile(q)
	if err != nil {
		return math.NaN()
	}
	return v
}

// mustQuantiles is Quantiles for internal callers with pre-sorted inputs;
// on error the outputs are NaN.
func (s *QuantileSketch) mustQuantiles(qs []float64, out []float64) {
	if err := s.Quantiles(qs, out); err != nil {
		for i := range out {
			out[i] = math.NaN()
		}
	}
}

// FixedHistogram redistributes the sketch's buckets into a fixed-bin
// Histogram over [lo, hi) for display; each sketch bucket contributes its
// full count at its representative value, so the histogram total equals
// N. Accuracy is the sketch's α, ample for ASCII rendering.
func (s *QuantileSketch) FixedHistogram(lo, hi float64, bins int) (*Histogram, error) {
	h, err := NewHistogram(lo, hi, bins)
	if err != nil {
		return nil, err
	}
	h.AddN(lo, s.negInf) // infinities clamp into the edge bins
	for _, b := range sortedKeys(s.neg, true) {
		h.AddN(-s.value(b), s.neg[b])
	}
	h.AddN(0, s.zeros)
	for _, b := range sortedKeys(s.pos, false) {
		h.AddN(s.value(b), s.pos[b])
	}
	h.AddN(hi, s.posInf)
	return h, nil
}

// sortedKeys returns the map's keys ascending, or descending when rev.
func sortedKeys(m map[int]int64, rev bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	if rev {
		for i, j := 0, len(keys)-1; i < j; i, j = i+1, j-1 {
			keys[i], keys[j] = keys[j], keys[i]
		}
	}
	return keys
}
