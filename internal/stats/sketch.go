package stats

import (
	"fmt"
	"math"
	"sort"
)

// QuantileSketch estimates quantiles of a stream in constant memory using
// logarithmically-spaced buckets (the DDSketch construction of Masson,
// Rim & Lee, VLDB 2019): a value x > 0 lands in bucket ⌈log_γ(x)⌉ with
// γ = (1+α)/(1-α), which guarantees every reported quantile is within
// relative error α of an exact sample quantile. Zero and negative values
// get their own buckets (negatives mirror the positive layout), so the
// sketch accepts arbitrary float64 observations.
//
// Bucket counts are additive, so merging two sketches is exact — a merged
// sketch is indistinguishable from one that saw both streams — and the
// result is independent of merge order. Memory is O(distinct buckets):
// for α = 0.01 a stream spanning [1, 10⁹] touches ~1000 buckets.
//
// The zero value is not usable; construct with NewQuantileSketch.
type QuantileSketch struct {
	alpha  float64
	gamma  float64 // (1+α)/(1-α)
	lnG    float64 // ln γ
	pos    map[int]int64
	neg    map[int]int64
	zeros  int64
	posInf int64
	negInf int64
	total  int64
}

// DefaultSketchAlpha is the relative accuracy used by NewDefaultSketch:
// quantiles are reported to within 1%.
const DefaultSketchAlpha = 0.01

// NewQuantileSketch returns an empty sketch with relative accuracy alpha
// (0 < alpha < 1).
func NewQuantileSketch(alpha float64) (*QuantileSketch, error) {
	if !(alpha > 0 && alpha < 1) {
		return nil, fmt.Errorf("stats: sketch accuracy %v outside (0,1)", alpha)
	}
	g := (1 + alpha) / (1 - alpha)
	return &QuantileSketch{
		alpha: alpha,
		gamma: g,
		lnG:   math.Log(g),
		pos:   make(map[int]int64),
		neg:   make(map[int]int64),
	}, nil
}

// NewDefaultSketch returns an empty sketch with DefaultSketchAlpha
// accuracy.
func NewDefaultSketch() *QuantileSketch {
	s, err := NewQuantileSketch(DefaultSketchAlpha)
	if err != nil {
		panic(err) // unreachable: constant accuracy is valid
	}
	return s
}

// bucket maps a positive value to its bucket index ⌈log_γ(x)⌉.
func (s *QuantileSketch) bucket(x float64) int {
	return int(math.Ceil(math.Log(x) / s.lnG))
}

// Add incorporates one observation. NaN is ignored; ±Inf get dedicated
// end buckets (int(log(±Inf)) would otherwise be implementation-defined).
func (s *QuantileSketch) Add(x float64) {
	switch {
	case math.IsNaN(x):
		return
	case math.IsInf(x, 1):
		s.posInf++
	case math.IsInf(x, -1):
		s.negInf++
	case x > 0:
		s.pos[s.bucket(x)]++
	case x < 0:
		s.neg[s.bucket(-x)]++
	default:
		s.zeros++
	}
	s.total++
}

// N returns the number of recorded observations.
func (s *QuantileSketch) N() int64 { return s.total }

// Alpha returns the relative accuracy the sketch was built with.
func (s *QuantileSketch) Alpha() float64 { return s.alpha }

// Merge combines another sketch into this one. The two sketches must have
// been built with the same accuracy.
func (s *QuantileSketch) Merge(o *QuantileSketch) error {
	if o == nil || o.total == 0 {
		return nil
	}
	if o.alpha != s.alpha {
		return fmt.Errorf("stats: merging sketches with accuracies %v and %v", s.alpha, o.alpha)
	}
	for b, c := range o.pos {
		s.pos[b] += c
	}
	for b, c := range o.neg {
		s.neg[b] += c
	}
	s.zeros += o.zeros
	s.posInf += o.posInf
	s.negInf += o.negInf
	s.total += o.total
	return nil
}

// value returns the representative value of positive bucket b: the
// γ-geometric midpoint 2γ^b/(γ+1), which is within α of every value the
// bucket can hold.
func (s *QuantileSketch) value(b int) float64 {
	return 2 * math.Pow(s.gamma, float64(b)) / (s.gamma + 1)
}

// Quantile returns the q-th quantile (0 <= q <= 1) with relative error at
// most Alpha. It returns ErrEmpty for an empty sketch.
func (s *QuantileSketch) Quantile(q float64) (float64, error) {
	if s.total == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	// Rank of the q-th order statistic among total observations.
	rank := int64(math.Ceil(q * float64(s.total)))
	if rank < 1 {
		rank = 1
	}
	// Walk buckets in ascending value order: -Inf, negatives (descending
	// index), zeros, positives (ascending index), +Inf.
	cum := s.negInf
	if cum >= rank {
		return math.Inf(-1), nil
	}
	for _, b := range sortedKeys(s.neg, true) {
		cum += s.neg[b]
		if cum >= rank {
			return -s.value(b), nil
		}
	}
	cum += s.zeros
	if cum >= rank {
		return 0, nil
	}
	posKeys := sortedKeys(s.pos, false)
	for _, b := range posKeys {
		cum += s.pos[b]
		if cum >= rank {
			return s.value(b), nil
		}
	}
	if s.posInf > 0 {
		return math.Inf(1), nil
	}
	// Rounding pathologies only: fall back to the largest finite bucket.
	if len(posKeys) > 0 {
		return s.value(posKeys[len(posKeys)-1]), nil
	}
	if s.zeros > 0 {
		return 0, nil
	}
	if keys := sortedKeys(s.neg, false); len(keys) > 0 {
		return -s.value(keys[len(keys)-1]), nil
	}
	return math.Inf(-1), nil
}

// mustQuantile is Quantile for internal callers that have already checked
// for emptiness.
func (s *QuantileSketch) mustQuantile(q float64) float64 {
	v, err := s.Quantile(q)
	if err != nil {
		return math.NaN()
	}
	return v
}

// FixedHistogram redistributes the sketch's buckets into a fixed-bin
// Histogram over [lo, hi) for display; each sketch bucket contributes its
// full count at its representative value, so the histogram total equals
// N. Accuracy is the sketch's α, ample for ASCII rendering.
func (s *QuantileSketch) FixedHistogram(lo, hi float64, bins int) (*Histogram, error) {
	h, err := NewHistogram(lo, hi, bins)
	if err != nil {
		return nil, err
	}
	h.AddN(lo, s.negInf) // infinities clamp into the edge bins
	for _, b := range sortedKeys(s.neg, true) {
		h.AddN(-s.value(b), s.neg[b])
	}
	h.AddN(0, s.zeros)
	for _, b := range sortedKeys(s.pos, false) {
		h.AddN(s.value(b), s.pos[b])
	}
	h.AddN(hi, s.posInf)
	return h, nil
}

// sortedKeys returns the map's keys ascending, or descending when rev.
func sortedKeys(m map[int]int64, rev bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	if rev {
		for i, j := 0, len(keys)-1; i < j; i, j = i+1, j-1 {
			keys[i], keys[j] = keys[j], keys[i]
		}
	}
	return keys
}
