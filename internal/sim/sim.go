// Package sim is the Monte-Carlo harness: it runs independent trials of a
// simulation function across a worker pool with deterministic per-trial RNG
// streams, so results are bit-identical regardless of parallelism, and
// aggregates outcomes for the statistics layer.
//
// Two aggregation modes are offered:
//
//   - Run / RunWithState materialise every trial result in a []T, for
//     callers that need the raw sample (tail plots, bootstrap CIs, exact
//     order statistics). Memory is O(Trials).
//   - Reduce / ReduceWithState fold each trial result into per-shard
//     accumulators (see Reducer) merged deterministically at the end.
//     Memory is O(shards) — constant — so ensembles of 10⁵+ trials are
//     limited by time, not RAM. DigestReducer covers the common case of
//     streaming a scalar metric into a stats.Digest.
//
// Both modes derive trial i's randomness from rng.NewStream(Seed, i) and
// produce results that do not depend on the Workers setting.
package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cobrawalk/internal/rng"
)

// Spec configures a batch of trials.
type Spec struct {
	// Trials is the number of independent runs (must be >= 1).
	Trials int
	// Seed is the master seed; trial i uses the independent stream
	// rng.NewStream(Seed, i), so results do not depend on scheduling.
	Seed uint64
	// Workers bounds the worker pool (default GOMAXPROCS; 1 = serial).
	Workers int
}

func (s Spec) workers() int {
	w := s.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > s.Trials {
		w = s.Trials
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes fn once per trial and returns the results in trial order.
// fn receives the trial index and a private RNG stream; it must not share
// mutable state across trials (each worker may reuse scratch state between
// its own trials via the factory pattern in RunWithState). The first error
// cancels outstanding work.
func Run[T any](ctx context.Context, spec Spec, fn func(trial int, r *rng.Rand) (T, error)) ([]T, error) {
	return RunWithState(ctx, spec, func() struct{} { return struct{}{} },
		func(_ struct{}, trial int, r *rng.Rand) (T, error) { return fn(trial, r) })
}

// RunWithState is Run with per-worker scratch state: newState is called
// once per worker, and the returned state is passed to every trial that
// worker executes. This lets expensive per-run allocations (process
// objects, buffers) be reused safely without sharing across goroutines.
func RunWithState[S any, T any](ctx context.Context, spec Spec, newState func() S, fn func(state S, trial int, r *rng.Rand) (T, error)) ([]T, error) {
	if spec.Trials < 1 {
		return nil, fmt.Errorf("sim: trials = %d, need >= 1", spec.Trials)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]T, spec.Trials)
	workers := spec.workers()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			state := newState()
			for {
				if cctx.Err() != nil {
					return
				}
				i := int(next.Add(1) - 1)
				if i >= spec.Trials {
					return
				}
				r := rng.NewStream(spec.Seed, uint64(i))
				out, err := fn(state, i, r)
				if err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("sim: trial %d: %w", i, err)
						cancel()
					})
					return
				}
				results[i] = out
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sim: cancelled: %w", err)
	}
	return results, nil
}

// Floats extracts a float64 metric from every result.
func Floats[T any](results []T, metric func(T) float64) []float64 {
	out := make([]float64, len(results))
	for i, r := range results {
		out[i] = metric(r)
	}
	return out
}
