package sim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"cobrawalk/internal/rng"
	"cobrawalk/internal/stats"
)

// Reducer describes a streaming reduction over trial results: trial
// outcomes of type T are folded into accumulators of type A, and
// accumulators combine with Merge. The three functions must be pure with
// respect to everything except the accumulator they are handed — Reduce
// calls them from multiple goroutines, but never concurrently on the same
// accumulator.
type Reducer[T, A any] struct {
	// New returns a fresh accumulator. It is called once per shard.
	New func() A
	// Fold incorporates one trial result and returns the updated
	// accumulator (in-place update and returning the argument is fine).
	Fold func(acc A, trial int, v T) A
	// Merge combines from into into and returns the result. Reduce always
	// merges in ascending shard order, so a non-commutative Merge (e.g.
	// Welford/Chan moment combination) still yields bit-identical results
	// for every worker count.
	Merge func(into, from A) (A, error)
}

// reduceShards is the fixed shard count Reduce partitions trials into.
// Shard assignment depends only on the trial index — never on the worker
// count or scheduling — which is what makes the final merged accumulator
// bit-identical for Workers=1 and Workers=GOMAXPROCS. 64 shards keeps the
// tail of a run well balanced across any realistic core count while
// holding memory at O(64) accumulators regardless of trial count.
const reduceShards = 64

// Reduce executes fn once per trial, folding each result into a per-shard
// accumulator and merging the shards in order at the end. Unlike Run it
// never materialises a per-trial slice: memory is O(shards), so 10⁵+
// trial ensembles are limited by time, not RAM. Determinism matches Run:
// trial i uses the stream rng.NewStream(Seed, i), and the shard-ordered
// merge makes the result independent of Workers.
func Reduce[T, A any](ctx context.Context, spec Spec, red Reducer[T, A], fn func(trial int, r *rng.Rand) (T, error)) (A, error) {
	return ReduceWithState(ctx, spec, red, func() struct{} { return struct{}{} },
		func(_ struct{}, trial int, r *rng.Rand) (T, error) { return fn(trial, r) })
}

// ReduceWithState is Reduce with per-worker scratch state, mirroring
// RunWithState: newState runs once per worker goroutine and its value is
// passed to every trial that worker executes, so expensive per-run
// allocations (process objects, buffers) are reused without cross-worker
// sharing.
func ReduceWithState[S, T, A any](ctx context.Context, spec Spec, red Reducer[T, A], newState func() S, fn func(state S, trial int, r *rng.Rand) (T, error)) (A, error) {
	var zero A
	if spec.Trials < 1 {
		return zero, fmt.Errorf("sim: trials = %d, need >= 1", spec.Trials)
	}
	if red.New == nil || red.Fold == nil || red.Merge == nil {
		return zero, fmt.Errorf("sim: reducer needs New, Fold and Merge")
	}
	if ctx == nil {
		ctx = context.Background()
	}

	shards := reduceShards
	if shards > spec.Trials {
		shards = spec.Trials
	}
	accs := make([]A, shards)
	workers := spec.workers()
	if workers > shards {
		// A worker with no shard to claim would still pay for newState
		// (often a full process object); never spawn more than there is
		// work for.
		workers = shards
	}

	var (
		next     atomic.Int64 // shard claim counter
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			state := newState()
			for {
				if cctx.Err() != nil {
					return
				}
				s := int(next.Add(1) - 1)
				if s >= shards {
					return
				}
				// Shard s owns the contiguous trial block [lo, hi); blocks
				// are balanced to within one trial.
				lo, hi := shardRange(spec.Trials, shards, s)
				acc := red.New()
				for i := lo; i < hi; i++ {
					if cctx.Err() != nil {
						return
					}
					r := rng.NewStream(spec.Seed, uint64(i))
					out, err := fn(state, i, r)
					if err != nil {
						errOnce.Do(func() {
							firstErr = fmt.Errorf("sim: trial %d: %w", i, err)
							cancel()
						})
						return
					}
					acc = red.Fold(acc, i, out)
				}
				accs[s] = acc
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return zero, firstErr
	}
	if err := ctx.Err(); err != nil {
		return zero, fmt.Errorf("sim: cancelled: %w", err)
	}
	// Deterministic reduction: always ascending shard order.
	total := accs[0]
	for s := 1; s < shards; s++ {
		var err error
		total, err = red.Merge(total, accs[s])
		if err != nil {
			return zero, fmt.Errorf("sim: merging shard %d: %w", s, err)
		}
	}
	return total, nil
}

// shardRange returns the half-open trial interval owned by shard s when
// trials are split into `shards` balanced contiguous blocks.
func shardRange(trials, shards, s int) (lo, hi int) {
	q, r := trials/shards, trials%shards
	lo = s*q + min(s, r)
	hi = lo + q
	if s < r {
		hi++
	}
	return lo, hi
}

// DigestReducer reduces trials into a stats.Digest of the given scalar
// metric — the common case for cover-time and infection-time ensembles.
func DigestReducer[T any](metric func(T) float64) Reducer[T, *stats.Digest] {
	return Reducer[T, *stats.Digest]{
		New: stats.NewDigest,
		Fold: func(d *stats.Digest, _ int, v T) *stats.Digest {
			d.Add(metric(v))
			return d
		},
		Merge: func(into, from *stats.Digest) (*stats.Digest, error) {
			if err := into.Merge(from); err != nil {
				return nil, err
			}
			return into, nil
		},
	}
}
