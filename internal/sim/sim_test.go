package sim

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"cobrawalk/internal/rng"
)

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []float64 {
		res, err := Run(context.Background(), Spec{Trials: 64, Seed: 42, Workers: workers},
			func(trial int, r *rng.Rand) (float64, error) {
				// Consume a trial-dependent amount of randomness to make
				// any stream-sharing bug visible.
				sum := 0.0
				for i := 0; i <= trial%7; i++ {
					sum += r.Float64()
				}
				return sum, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, w := range []int{2, 4, 16} {
		par := run(w)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: trial %d = %v, serial = %v", w, i, par[i], serial[i])
			}
		}
	}
}

func TestRunResultsInTrialOrder(t *testing.T) {
	res, err := Run(context.Background(), Spec{Trials: 100, Seed: 1},
		func(trial int, r *rng.Rand) (int, error) { return trial * trial, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res {
		if v != i*i {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}

func TestRunErrorPropagation(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Run(context.Background(), Spec{Trials: 50, Seed: 2, Workers: 4},
		func(trial int, r *rng.Rand) (int, error) {
			if trial == 13 {
				return 0, sentinel
			}
			return trial, nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Spec{Trials: 0},
		func(int, *rng.Rand) (int, error) { return 0, nil }); err == nil {
		t.Fatal("zero trials should fail")
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before start
	_, err := Run(ctx, Spec{Trials: 10, Seed: 3},
		func(trial int, r *rng.Rand) (int, error) { return trial, nil })
	if err == nil {
		t.Fatal("pre-cancelled context should fail")
	}
}

func TestRunWithStatePerWorkerReuse(t *testing.T) {
	// Each worker gets its own scratch buffer; concurrent trials must
	// never observe another worker's state. Use a counter-in-struct that
	// each trial increments; totals must equal trial count.
	type scratch struct{ uses int }
	res, err := RunWithState(context.Background(), Spec{Trials: 200, Seed: 4, Workers: 8},
		func() *scratch { return &scratch{} },
		func(s *scratch, trial int, r *rng.Rand) (int, error) {
			s.uses++
			return s.uses, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	maxUse := 0
	for _, v := range res {
		if v < 1 {
			t.Fatalf("invalid use count %d", v)
		}
		total++
		if v > maxUse {
			maxUse = v
		}
	}
	if total != 200 {
		t.Fatalf("total trials %d", total)
	}
	if maxUse < 200/8 {
		t.Fatalf("max per-worker use %d suspiciously small (state not reused?)", maxUse)
	}
}

func TestFloats(t *testing.T) {
	type res struct{ x int }
	in := []res{{1}, {2}, {3}}
	out := Floats(in, func(r res) float64 { return float64(r.x) * 2 })
	want := []float64{2, 4, 6}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Floats = %v", out)
		}
	}
}

func TestSpecWorkersClamp(t *testing.T) {
	s := Spec{Trials: 3, Workers: 100}
	if got := s.workers(); got != 3 {
		t.Fatalf("workers clamped to %d, want 3", got)
	}
	s = Spec{Trials: 5, Workers: -1}
	if got := s.workers(); got < 1 {
		t.Fatalf("workers = %d", got)
	}
}

func ExampleRun() {
	res, err := Run(context.Background(), Spec{Trials: 3, Seed: 7},
		func(trial int, r *rng.Rand) (int, error) { return trial + 1, nil })
	if err != nil {
		panic(err)
	}
	fmt.Println(res)
	// Output: [1 2 3]
}
