package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"

	"cobrawalk/internal/rng"
	"cobrawalk/internal/stats"
)

// trialMetric is a deterministic per-trial workload that consumes a
// trial-dependent amount of randomness, so stream-sharing or ordering
// bugs change the values.
func trialMetric(trial int, r *rng.Rand) (float64, error) {
	sum := 0.0
	for i := 0; i <= trial%11; i++ {
		sum += r.Float64()
	}
	return sum * float64(trial%17+1), nil
}

func digestOf(t *testing.T, workers, trials int) stats.DigestSummary {
	t.Helper()
	d, err := Reduce(context.Background(),
		Spec{Trials: trials, Seed: 42, Workers: workers},
		DigestReducer(func(x float64) float64 { return x }),
		trialMetric)
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.Summary()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestReduceBitIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, trials := range []int{1, 7, 64, 1000} {
		serial := digestOf(t, 1, trials)
		for _, w := range []int{2, 4, runtime.GOMAXPROCS(0), 32} {
			par := digestOf(t, w, trials)
			if par != serial {
				t.Fatalf("trials=%d workers=%d: %+v != serial %+v", trials, w, par, serial)
			}
		}
	}
}

func TestReduceMatchesRunPlusSummarize(t *testing.T) {
	const trials = 500
	raw, err := Run(context.Background(), Spec{Trials: trials, Seed: 42}, trialMetric)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := stats.Summarize(raw)
	if err != nil {
		t.Fatal(err)
	}
	streaming := digestOf(t, 0, trials)
	if streaming.N != batch.N {
		t.Fatalf("N = %d, want %d", streaming.N, batch.N)
	}
	rel := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("%s = %v, batch %v", name, got, want)
		}
	}
	rel("mean", streaming.Mean, batch.Mean)
	rel("variance", streaming.Variance, batch.Variance)
	rel("min", streaming.Min, batch.Min)
	rel("max", streaming.Max, batch.Max)
	// Quantiles go through the sketch: relative accuracy, not exact.
	if math.Abs(streaming.P95-batch.P95) > 2*stats.DefaultSketchAlpha*batch.P95 {
		t.Fatalf("p95 = %v, batch %v", streaming.P95, batch.P95)
	}
}

func TestReduceWithStatePerWorkerReuse(t *testing.T) {
	type scratch struct{ uses int }
	red := Reducer[int, int]{
		New:   func() int { return 0 },
		Fold:  func(acc, _, v int) int { return acc + v },
		Merge: func(a, b int) (int, error) { return a + b, nil },
	}
	// Each trial contributes 1; the scratch state is exercised to ensure
	// worker-local reuse does not corrupt results.
	total, err := ReduceWithState(context.Background(), Spec{Trials: 300, Seed: 4, Workers: 8},
		red,
		func() *scratch { return &scratch{} },
		func(s *scratch, trial int, r *rng.Rand) (int, error) {
			s.uses++
			if s.uses < 1 {
				return 0, fmt.Errorf("state lost")
			}
			return 1, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if total != 300 {
		t.Fatalf("total = %d, want 300 (every trial folded exactly once)", total)
	}
}

func TestReduceErrorPropagation(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Reduce(context.Background(), Spec{Trials: 200, Seed: 2, Workers: 4},
		DigestReducer(func(x float64) float64 { return x }),
		func(trial int, r *rng.Rand) (float64, error) {
			if trial == 131 {
				return 0, sentinel
			}
			return 1, nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestReduceValidation(t *testing.T) {
	red := DigestReducer(func(x float64) float64 { return x })
	if _, err := Reduce(context.Background(), Spec{Trials: 0}, red,
		func(int, *rng.Rand) (float64, error) { return 0, nil }); err == nil {
		t.Fatal("zero trials should fail")
	}
	bad := Reducer[float64, *stats.Digest]{New: stats.NewDigest}
	if _, err := Reduce(context.Background(), Spec{Trials: 1}, bad,
		func(int, *rng.Rand) (float64, error) { return 0, nil }); err == nil {
		t.Fatal("incomplete reducer should fail")
	}
}

func TestReduceContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Reduce(ctx, Spec{Trials: 10, Seed: 3},
		DigestReducer(func(x float64) float64 { return x }),
		func(trial int, r *rng.Rand) (float64, error) { return 1, nil })
	if err == nil {
		t.Fatal("pre-cancelled context should fail")
	}
}

func TestReduceMergeErrorSurfaces(t *testing.T) {
	red := Reducer[float64, *stats.Digest]{
		New: stats.NewDigest,
		Fold: func(d *stats.Digest, _ int, v float64) *stats.Digest {
			d.Add(v)
			return d
		},
		Merge: func(into, from *stats.Digest) (*stats.Digest, error) {
			return nil, errors.New("merge exploded")
		},
	}
	// Needs at least two shards for Merge to run: 200 trials > 64 shards.
	_, err := Reduce(context.Background(), Spec{Trials: 200, Seed: 5}, red,
		func(trial int, r *rng.Rand) (float64, error) { return 1, nil })
	if err == nil || !strings.Contains(err.Error(), "merge exploded") {
		t.Fatalf("merge error should surface, got %v", err)
	}
}

func TestReduceTrialsMatchRunStreams(t *testing.T) {
	// Reduce must hand trial i exactly the stream Run hands it: fold the
	// first random uint64 of each trial via XOR (order-independent) and
	// compare against a serial computation.
	xorRed := Reducer[uint64, uint64]{
		New:   func() uint64 { return 0 },
		Fold:  func(acc uint64, _ int, v uint64) uint64 { return acc ^ v },
		Merge: func(a, b uint64) (uint64, error) { return a ^ b, nil },
	}
	got, err := Reduce(context.Background(), Spec{Trials: 777, Seed: 9, Workers: 16}, xorRed,
		func(trial int, r *rng.Rand) (uint64, error) { return r.Uint64(), nil })
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for i := 0; i < 777; i++ {
		want ^= rng.NewStream(9, uint64(i)).Uint64()
	}
	if got != want {
		t.Fatalf("stream fold = %x, want %x", got, want)
	}
}

func TestShardRangeCoversAllTrials(t *testing.T) {
	for _, trials := range []int{1, 2, 63, 64, 65, 100, 1000} {
		shards := reduceShards
		if shards > trials {
			shards = trials
		}
		covered := 0
		prevHi := 0
		for s := 0; s < shards; s++ {
			lo, hi := shardRange(trials, shards, s)
			if lo != prevHi {
				t.Fatalf("trials=%d shard %d: lo=%d, want %d (contiguous)", trials, s, lo, prevHi)
			}
			if hi < lo {
				t.Fatalf("trials=%d shard %d: empty-inverted [%d,%d)", trials, s, lo, hi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != trials || prevHi != trials {
			t.Fatalf("trials=%d: covered %d, end %d", trials, covered, prevHi)
		}
	}
}

func ExampleReduce() {
	d, err := Reduce(context.Background(), Spec{Trials: 100000, Seed: 7},
		DigestReducer(func(x float64) float64 { return x }),
		func(trial int, r *rng.Rand) (float64, error) { return float64(trial % 10), nil })
	if err != nil {
		panic(err)
	}
	s, _ := d.Summary()
	fmt.Printf("n=%d mean=%.1f min=%.0f max=%.0f\n", s.N, s.Mean, s.Min, s.Max)
	// Output: n=100000 mean=4.5 min=0 max=9
}
