package contact

import (
	"math"
	"testing"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

func mk(t *testing.T) func(*graph.Graph, error) *graph.Graph {
	return func(g *graph.Graph, err error) *graph.Graph {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
}

func TestNewValidation(t *testing.T) {
	g := mk(t)(graph.Complete(5))
	if _, err := New(nil, Config{Mu: 1}); err == nil {
		t.Fatal("nil graph should fail")
	}
	if _, err := New(g, Config{Mu: -1}); err == nil {
		t.Fatal("negative rate should fail")
	}
	iso := mk(t)(graph.FromEdges("iso", 3, [][2]int32{{0, 1}}))
	if _, err := New(iso, Config{Mu: 1}); err == nil {
		t.Fatal("isolated vertex should fail")
	}
	p, err := New(g, Config{Mu: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(9, rng.New(1)); err == nil {
		t.Fatal("bad source should fail")
	}
}

func TestZeroRateDiesImmediately(t *testing.T) {
	g := mk(t)(graph.Complete(8))
	p, err := New(g, Config{Mu: 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Extinct {
		t.Fatalf("µ=0 should go extinct: %+v", res)
	}
	if res.CoveredAll || res.PeakInfected != 1 {
		t.Fatalf("µ=0 spread: %+v", res)
	}
	// Extinction time is a single Exp(1) recovery: positive, finite.
	if res.ExtinctionTime <= 0 || math.IsInf(res.ExtinctionTime, 1) {
		t.Fatalf("extinction time %v", res.ExtinctionTime)
	}
}

func TestZeroRatePersistentFreezes(t *testing.T) {
	g := mk(t)(graph.Complete(8))
	p, err := New(g, Config{Mu: 0, PersistentSource: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Extinct {
		t.Fatal("persistent source cannot go extinct")
	}
	if res.Events != 0 {
		t.Fatalf("frozen process simulated %d events", res.Events)
	}
}

func TestPersistentSourceNeverExtinct(t *testing.T) {
	g := mk(t)(graph.Cycle(16))
	p, err := New(g, Config{Mu: 0.3, PersistentSource: true, MaxEvents: 20000})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	for trial := 0; trial < 10; trial++ {
		res, err := p.Run(0, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.Extinct {
			t.Fatalf("trial %d: persistent source went extinct: %+v", trial, res)
		}
	}
}

func TestSupercriticalCoversCompleteGraph(t *testing.T) {
	// On K_n with µ·(n-1) >> 1 the process is strongly supercritical:
	// starting from one vertex it should reach full infection quickly
	// (with a persistent source, always).
	g := mk(t)(graph.Complete(32))
	p, err := New(g, Config{Mu: 1, PersistentSource: true})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	res, err := p.Run(0, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.FullyInfectedTime < 0 {
		t.Fatalf("supercritical persistent run never fully infected: %+v", res)
	}
	if !res.CoveredAll {
		t.Fatalf("full infection without coverage? %+v", res)
	}
	if res.CoverTime > res.FullyInfectedTime+1e-9 {
		t.Fatalf("cover time %v after full-infection time %v", res.CoverTime, res.FullyInfectedTime)
	}
}

func TestSubcriticalDiesWithoutCovering(t *testing.T) {
	// Far subcritical (µ·deg << 1) on a large cycle: the infection dies
	// long before covering, in every trial.
	g := mk(t)(graph.Cycle(200))
	p, err := New(g, Config{Mu: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	for trial := 0; trial < 20; trial++ {
		res, err := p.Run(0, r)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Extinct {
			t.Fatalf("trial %d: subcritical run survived: %+v", trial, res)
		}
		if res.CoveredAll {
			t.Fatalf("trial %d: subcritical run covered C200: %+v", trial, res)
		}
	}
}

func TestSurvivalMonotoneInMu(t *testing.T) {
	// Extinction before coverage should become rarer as µ grows.
	g := mk(t)(graph.Complete(24))
	r := rng.New(5)
	coverage := func(mu float64) float64 {
		// Cap events: supercritical SIS on a finite graph survives for an
		// exponentially long time, and coverage (if it happens) happens
		// early — there is no information past ~10^5 events here.
		p, err := New(g, Config{Mu: mu, MaxEvents: 100_000})
		if err != nil {
			t.Fatal(err)
		}
		const trials = 60
		covered := 0
		for i := 0; i < trials; i++ {
			res, err := p.Run(0, r)
			if err != nil {
				t.Fatal(err)
			}
			if res.CoveredAll {
				covered++
			}
		}
		return float64(covered) / trials
	}
	lo, hi := coverage(0.05), coverage(2)
	if hi < lo {
		t.Fatalf("coverage rate not increasing in µ: %v (µ=0.05) vs %v (µ=2)", lo, hi)
	}
	if hi < 0.9 {
		t.Fatalf("strongly supercritical coverage only %v", hi)
	}
}

func TestEventCap(t *testing.T) {
	g := mk(t)(graph.Complete(16))
	p, err := New(g, Config{Mu: 1, MaxEvents: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(0, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Events > 5 {
		t.Fatalf("event cap exceeded: %+v", res)
	}
}

func TestTimeCap(t *testing.T) {
	g := mk(t)(graph.Cycle(8))
	p, err := New(g, Config{Mu: 0.5, PersistentSource: true, MaxTime: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(0, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.EndTime > 2+1e-9 {
		t.Fatalf("time cap exceeded: %+v", res)
	}
}

func TestDeterminism(t *testing.T) {
	g := mk(t)(graph.Petersen())
	p, err := New(g, Config{Mu: 0.8, PersistentSource: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Run(0, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Run(0, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || a.FullyInfectedTime != b.FullyInfectedTime {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := rng.New(11)
	const draws = 200_000
	sum := 0.0
	for i := 0; i < draws; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("negative exponential %v", x)
		}
		sum += x
	}
	mean := sum / draws
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("Exp(1) mean = %v", mean)
	}
}
