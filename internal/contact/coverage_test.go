package contact

import (
	"testing"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

func TestStopOnCoverage(t *testing.T) {
	g := mk(t)(graph.Cycle(32))
	p, err := New(g, Config{Mu: 1, PersistentSource: true, StopOnCoverage: true})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	res, err := p.Run(0, r)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CoveredAll {
		t.Fatalf("persistent supercritical run did not cover: %+v", res)
	}
	if res.CoverTime <= 0 {
		t.Fatalf("cover time %v", res.CoverTime)
	}
	// With StopOnCoverage the run should end at (or just after) coverage,
	// not grind to the event cap.
	if res.Events >= p.cfg.maxEvents() {
		t.Fatalf("run hit the event cap despite StopOnCoverage: %+v", res)
	}
}

func TestCoverageBeforeFullInfection(t *testing.T) {
	// On a larger sparse graph, coverage must complete strictly before any
	// simultaneous full infection (which essentially never happens).
	g := mk(t)(graph.Cycle(64))
	p, err := New(g, Config{Mu: 2, PersistentSource: true, StopOnCoverage: true})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	for trial := 0; trial < 5; trial++ {
		res, err := p.Run(0, r)
		if err != nil {
			t.Fatal(err)
		}
		if !res.CoveredAll {
			t.Fatalf("trial %d: not covered: %+v", trial, res)
		}
		if res.FullyInfectedTime >= 0 && res.FullyInfectedTime < res.CoverTime {
			t.Fatalf("full infection before coverage? %+v", res)
		}
	}
}
