// Package contact implements the continuous-time contact process (Harris
// 1974), the classical epidemic model the paper identifies as COBRA's
// continuous counterpart (§1): every infected vertex infects each
// neighbour at rate µ and recovers at rate 1. Unlike COBRA/BIPS, the plain
// contact process can die out; with a persistent source (the continuous
// analogue of BIPS) extinction is impossible and full-infection times
// become meaningful.
//
// Simulation uses the Gillespie algorithm: event times are exponential
// with the current total rate, and events are recoveries (uniform over
// recoverable vertices) or infection attempts (infected vertex chosen
// proportionally to degree, then a uniform neighbour).
package contact

import (
	"errors"
	"fmt"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// Config parameterises the contact process.
type Config struct {
	// Mu is the per-edge infection rate (recovery rate is fixed at 1).
	Mu float64
	// PersistentSource pins the source vertex in the infected state, the
	// continuous analogue of the paper's BIPS process.
	PersistentSource bool
	// StopOnCoverage ends the run as soon as every vertex has been
	// infected at least once. Coverage is the natural finite objective for
	// the persistent-source process: simultaneous full infection (|I| = n)
	// is an exponentially rare fluctuation of the SIS equilibrium and is
	// generally unreachable, unlike in the discrete BIPS process.
	StopOnCoverage bool
	// MaxTime caps simulated time (default 1e6).
	MaxTime float64
	// MaxEvents caps simulated events (default 50M) as a safety valve for
	// supercritical runs that neither die nor finish.
	MaxEvents int
}

func (c Config) maxTime() float64 {
	if c.MaxTime <= 0 {
		return 1e6
	}
	return c.MaxTime
}

func (c Config) maxEvents() int {
	if c.MaxEvents <= 0 {
		return 50_000_000
	}
	return c.MaxEvents
}

// Result reports one contact-process run.
type Result struct {
	// Extinct reports whether the infection died out (impossible with a
	// persistent source).
	Extinct bool
	// ExtinctionTime is the time of extinction (0 if not extinct).
	ExtinctionTime float64
	// CoveredAll reports whether every vertex was infected at least once.
	CoveredAll bool
	// CoverTime is the time the last first-infection happened (only valid
	// when CoveredAll).
	CoverTime float64
	// FullyInfectedTime is the first time the infected set equalled V, or
	// -1 if that never happened.
	FullyInfectedTime float64
	// PeakInfected is the largest infected-set size observed.
	PeakInfected int
	// Events is the number of simulated events.
	Events int
	// EndTime is the simulated time at which the run stopped.
	EndTime float64
}

// Process is a reusable contact-process simulator on a fixed graph.
// Not safe for concurrent use.
type Process struct {
	g   *graph.Graph
	cfg Config

	// Infected set with O(1) insert/remove: members holds the vertices,
	// pos[v] is v's index in members or -1.
	members []int32
	pos     []int32
	sumDeg  int64
	maxDeg  int

	firstHit []float64 // first-infection time per vertex, -1 if never
	hitCount int
}

// New validates the configuration and returns a simulator.
func New(g *graph.Graph, cfg Config) (*Process, error) {
	if g == nil || g.N() == 0 {
		return nil, errors.New("contact: empty graph")
	}
	if g.MinDegree() == 0 {
		return nil, errors.New("contact: graph has an isolated vertex")
	}
	if cfg.Mu < 0 {
		return nil, fmt.Errorf("contact: negative infection rate %v", cfg.Mu)
	}
	return &Process{
		g:        g,
		cfg:      cfg,
		pos:      make([]int32, g.N()),
		firstHit: make([]float64, g.N()),
		maxDeg:   g.MaxDegree(),
	}, nil
}

func (p *Process) reset(source int32) error {
	if source < 0 || int(source) >= p.g.N() {
		return fmt.Errorf("contact: source %d out of range [0,%d)", source, p.g.N())
	}
	p.members = p.members[:0]
	for i := range p.pos {
		p.pos[i] = -1
		p.firstHit[i] = -1
	}
	p.sumDeg = 0
	p.hitCount = 0
	p.add(source, 0)
	return nil
}

func (p *Process) add(v int32, now float64) {
	if p.pos[v] >= 0 {
		return
	}
	p.pos[v] = int32(len(p.members))
	p.members = append(p.members, v)
	p.sumDeg += int64(p.g.Degree(v))
	if p.firstHit[v] < 0 {
		p.firstHit[v] = now
		p.hitCount++
	}
}

func (p *Process) remove(v int32) {
	i := p.pos[v]
	last := p.members[len(p.members)-1]
	p.members[i] = last
	p.pos[last] = i
	p.members = p.members[:len(p.members)-1]
	p.pos[v] = -1
	p.sumDeg -= int64(p.g.Degree(v))
}

// Run simulates the process from a single infected source until
// extinction, full infection with a persistent source, or a cap.
func (p *Process) Run(source int32, r *rng.Rand) (Result, error) {
	if err := p.reset(source); err != nil {
		return Result{}, err
	}
	var res Result
	res.FullyInfectedTime = -1
	now := 0.0
	maxTime := p.cfg.maxTime()
	maxEvents := p.cfg.maxEvents()
	n := p.g.N()
	res.PeakInfected = 1

	for res.Events < maxEvents && now < maxTime {
		infected := len(p.members)
		if infected == 0 {
			res.Extinct = true
			res.ExtinctionTime = now
			break
		}
		recoverable := float64(infected)
		if p.cfg.PersistentSource {
			recoverable--
		}
		rateInfect := p.cfg.Mu * float64(p.sumDeg)
		total := recoverable + rateInfect
		if total <= 0 {
			// Persistent source with µ = 0: frozen forever.
			break
		}
		now += r.ExpFloat64() / total
		if now > maxTime {
			now = maxTime
			break
		}
		res.Events++
		if r.Float64()*total < recoverable {
			// Recovery of a uniformly random recoverable vertex.
			for {
				v := p.members[r.Intn(infected)]
				if p.cfg.PersistentSource && v == source {
					continue
				}
				p.remove(v)
				break
			}
		} else {
			// Infection attempt from a degree-weighted infected vertex.
			var src int32
			for {
				src = p.members[r.Intn(len(p.members))]
				if p.maxDeg == 0 || r.Float64()*float64(p.maxDeg) < float64(p.g.Degree(src)) {
					break
				}
			}
			u := p.g.Neighbor(src, r.Intn(p.g.Degree(src)))
			if p.pos[u] < 0 {
				p.add(u, now)
			}
		}
		if len(p.members) > res.PeakInfected {
			res.PeakInfected = len(p.members)
		}
		if len(p.members) == n && res.FullyInfectedTime < 0 {
			res.FullyInfectedTime = now
			if p.cfg.PersistentSource {
				break // nothing further can change the recorded quantities
			}
		}
		if p.cfg.StopOnCoverage && p.hitCount == n {
			break
		}
	}
	res.EndTime = now
	res.CoveredAll = p.hitCount == n
	if res.CoveredAll {
		maxHit := 0.0
		for _, h := range p.firstHit {
			if h > maxHit {
				maxHit = h
			}
		}
		res.CoverTime = maxHit
	}
	return res, nil
}

// InfectedCount returns the current infected-set size (diagnostics).
func (p *Process) InfectedCount() int { return len(p.members) }
