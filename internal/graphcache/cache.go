// Package graphcache is a concurrency-safe cache of built graphs, shared
// across sweep points, jobs and server restarts of the serving layer.
// Graph construction dominates the cost of small-ensemble points (a
// random-regular graph build is O(n·d) with retries; the spectral λ
// measurement on top of it is O(n·d·iters)), so a long-running daemon
// that sees many sweeps over the same topologies amortises that cost by
// keying each built graph on exactly the inputs that determine it:
// family, size, degree and the graph seed.
//
// The cache is LRU by a vertex-count budget rather than an entry count:
// one 2^20-vertex expander should displace many 2^10 toys. Concurrent
// requests for the same key are single-flighted — one goroutine builds,
// the rest wait for the result — which is the common shape when a sweep
// fans one topology out across process × branching points.
//
// Graphs are immutable after construction (CSR form, see internal/graph),
// so a cached *graph.Graph is safely shared by any number of concurrent
// readers, and an entry evicted while still in use stays valid for the
// holders — eviction only drops the cache's reference.
//
// With Options.StoreDir set, the cache gains a disk tier: built graphs
// spill to graphstore files, and a memory miss mmaps the store file back
// instead of re-running the generator — so an eviction or a daemon
// restart costs a page-cache map, not minutes of generator CPU, and
// every process pointing at the same directory shares physical pages.
package graphcache

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/graphstore"
)

// Key identifies one buildable graph: the topology axes of a sweep point
// plus the seed its generator draws from. Two points with equal Keys are
// guaranteed the same graph, so sharing the built value never changes a
// result (the determinism contract of DESIGN.md §7).
type Key struct {
	Family string `json:"family"`
	Size   int    `json:"size"`
	Degree int    `json:"degree,omitempty"`
	Seed   uint64 `json:"seed"`
}

func (k Key) String() string {
	s := fmt.Sprintf("%s-n%d", k.Family, k.Size)
	if k.Degree > 0 {
		s += fmt.Sprintf("-d%d", k.Degree)
	}
	return fmt.Sprintf("%s-s%d", s, k.Seed)
}

// Stats is a point-in-time snapshot of the cache counters, surfaced on
// the daemon's /v1/healthz and in cmd/sweep's summary notes.
type Stats struct {
	// Hits counts GetOrBuild calls served without running build —
	// including waiters that joined an in-flight build.
	Hits uint64 `json:"hits"`
	// Misses counts GetOrBuild calls that started a build.
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped to fit the vertex budget.
	Evictions uint64 `json:"evictions"`
	// DiskHits counts misses served by mmapping a store file from the
	// disk tier instead of running build; DiskWrites counts graphs
	// spilled to store files after a build. Both stay zero without a
	// configured StoreDir.
	DiskHits   uint64 `json:"disk_hits"`
	DiskWrites uint64 `json:"disk_writes"`
	// Entries and Vertices describe current residency.
	Entries  int `json:"entries"`
	Vertices int `json:"vertices"`
	// Budget is the configured vertex-count capacity.
	Budget int `json:"budget"`
}

// DefaultBudget is the vertex budget used when New is given a
// non-positive one: 2^22 vertices ≈ a few hundred MB of CSR adjacency at
// the degrees the sweeps use.
const DefaultBudget = 1 << 22

// Cache is a single-flighted LRU graph cache. The zero value is not
// usable; construct with New. All methods are safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	budget   int
	storeDir string // disk tier root; "" disables it
	madvise  graphstore.Advice
	entries  map[Key]*entry
	lru      *list.List // resident entries, front = most recently used

	hits, misses, evictions uint64
	diskHits, diskWrites    uint64
	vertices                int
}

// entry is one cache slot. ready is closed once the build finished (g or
// err set); elem is non-nil only while the entry is resident in the LRU —
// in-flight builds are in entries but not in lru, so they can be joined
// but never evicted.
type entry struct {
	key   Key
	ready chan struct{}
	g     *graph.Graph
	err   error
	elem  *list.Element
}

// New returns an empty cache holding at most budgetVertices total
// vertices (<= 0 means DefaultBudget). The budget is soft by exactly one
// entry: the most recently built graph is always retained, even when it
// alone exceeds the budget, so a working set of one never thrashes.
func New(budgetVertices int) *Cache {
	c, _ := NewWithOptions(Options{BudgetVertices: budgetVertices})
	return c
}

// Options configures a cache beyond the vertex budget.
type Options struct {
	// BudgetVertices is the LRU capacity in total vertices (<= 0 means
	// DefaultBudget).
	BudgetVertices int
	// StoreDir, when non-empty, enables the disk tier: every graph built
	// on a miss is spilled to <StoreDir>/<StoreFileName(key)> in
	// graphstore format, and later misses for the same key — including
	// after an LRU eviction or a process restart — mmap that file back
	// instead of re-running the generator. The directory is shared
	// infrastructure: cmd/graphbuild pre-populates it, any number of
	// daemons mmap from it concurrently, and the kernel shares the
	// physical pages among them.
	StoreDir string
	// Madvise is the set of madvise hints applied when the disk tier
	// mmaps a store file back (graphstore.MmapAdvise). Best-effort and
	// linux-only; a load-latency knob that never affects which graph is
	// returned.
	Madvise graphstore.Advice
}

// NewWithOptions returns an empty cache configured by o, creating the
// store directory if a disk tier is requested.
func NewWithOptions(o Options) (*Cache, error) {
	if o.BudgetVertices <= 0 {
		o.BudgetVertices = DefaultBudget
	}
	if o.StoreDir != "" {
		if err := os.MkdirAll(o.StoreDir, 0o755); err != nil {
			return nil, fmt.Errorf("graphcache: store dir: %w", err)
		}
	}
	return &Cache{
		budget:   o.BudgetVertices,
		storeDir: o.StoreDir,
		madvise:  o.Madvise,
		entries:  make(map[Key]*entry),
		lru:      list.New(),
	}, nil
}

// StoreFileName is the disk-tier file name for a key: its canonical
// string with every rune outside [A-Za-z0-9._-] flattened to '_' (family
// names like "file:/runs/g.csrg" must become single path components),
// plus the store extension. The seed is part of the name, so files for
// different seeds of one topology never collide.
func StoreFileName(key Key) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, key.String()) + graphstore.Ext
}

// GetOrBuild returns the graph for key, building it with build on a
// miss. Concurrent calls for the same key share one build: the first
// caller runs build, the others block until it finishes and receive the
// same graph (or the same error). Errors are not cached — the next call
// for the key retries the build.
func (c *Cache) GetOrBuild(key Key, build func() (*graph.Graph, error)) (*graph.Graph, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, e.err
		}
		c.touch(e)
		return e.g, nil
	}
	e := &entry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	g, err := c.loadOrBuild(key, build)

	c.mu.Lock()
	if err != nil {
		e.err = fmt.Errorf("graphcache: building %s: %w", key, err)
		delete(c.entries, key) // do not cache failures
	} else {
		e.g = g
		e.elem = c.lru.PushFront(e)
		c.vertices += g.N()
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready) // publishes e.g / e.err to waiters
	if e.err != nil {
		return nil, e.err
	}
	return g, nil
}

// loadOrBuild resolves a memory-tier miss: mmap from the disk tier if a
// store file exists, otherwise run build and spill the result to disk
// for the next miss. Because a loaded store file holds the exact CSR
// bytes the generator produced for this key, the two paths are
// observationally identical — same graph, same downstream results —
// which is why the disk tier can sit under the determinism contract.
func (c *Cache) loadOrBuild(key Key, build func() (*graph.Graph, error)) (*graph.Graph, error) {
	if c.storeDir == "" {
		return build()
	}
	path := filepath.Join(c.storeDir, StoreFileName(key))
	if g, err := graphstore.MmapAdvise(path, c.madvise); err == nil {
		c.mu.Lock()
		c.diskHits++
		c.mu.Unlock()
		return g, nil
	}
	// Any load failure — absent, truncated, corrupt — falls back to the
	// generator; the subsequent spill rewrites a bad file atomically.
	g, err := build()
	if err != nil {
		return nil, err
	}
	// file:-family graphs were mmapped from a store file already; copying
	// them into the tier would double the disk footprint for no load-time
	// gain. A failed spill is not a build failure: the graph is good, the
	// tier just stays cold for this key.
	if !strings.HasPrefix(key.Family, "file:") {
		if werr := graphstore.Write(path, g); werr == nil {
			c.mu.Lock()
			c.diskWrites++
			c.mu.Unlock()
		}
	}
	return g, nil
}

// touch moves a resident entry to the LRU front. The entry may have been
// evicted while the caller waited on ready; its graph stays valid, only
// the recency bump is skipped.
func (c *Cache) touch(e *entry) {
	c.mu.Lock()
	if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
	c.mu.Unlock()
}

// evictLocked drops least-recently-used entries until the vertex budget
// holds, always keeping at least the freshest entry. Callers hold c.mu.
func (c *Cache) evictLocked() {
	for c.vertices > c.budget && c.lru.Len() > 1 {
		back := c.lru.Back()
		e := back.Value.(*entry)
		c.lru.Remove(back)
		e.elem = nil
		delete(c.entries, e.key)
		c.vertices -= e.g.N()
		c.evictions++
	}
}

// Len returns the number of resident graphs.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evictions,
		DiskHits:   c.diskHits,
		DiskWrites: c.diskWrites,
		Entries:    c.lru.Len(),
		Vertices:   c.vertices,
		Budget:     c.budget,
	}
}
