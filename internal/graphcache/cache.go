// Package graphcache is a concurrency-safe cache of built graphs, shared
// across sweep points, jobs and server restarts of the serving layer.
// Graph construction dominates the cost of small-ensemble points (a
// random-regular graph build is O(n·d) with retries; the spectral λ
// measurement on top of it is O(n·d·iters)), so a long-running daemon
// that sees many sweeps over the same topologies amortises that cost by
// keying each built graph on exactly the inputs that determine it:
// family, size, degree and the graph seed.
//
// The cache is LRU by a vertex-count budget rather than an entry count:
// one 2^20-vertex expander should displace many 2^10 toys. Concurrent
// requests for the same key are single-flighted — one goroutine builds,
// the rest wait for the result — which is the common shape when a sweep
// fans one topology out across process × branching points.
//
// Graphs are immutable after construction (CSR form, see internal/graph),
// so a cached *graph.Graph is safely shared by any number of concurrent
// readers, and an entry evicted while still in use stays valid for the
// holders — eviction only drops the cache's reference.
package graphcache

import (
	"container/list"
	"fmt"
	"sync"

	"cobrawalk/internal/graph"
)

// Key identifies one buildable graph: the topology axes of a sweep point
// plus the seed its generator draws from. Two points with equal Keys are
// guaranteed the same graph, so sharing the built value never changes a
// result (the determinism contract of DESIGN.md §7).
type Key struct {
	Family string `json:"family"`
	Size   int    `json:"size"`
	Degree int    `json:"degree,omitempty"`
	Seed   uint64 `json:"seed"`
}

func (k Key) String() string {
	s := fmt.Sprintf("%s-n%d", k.Family, k.Size)
	if k.Degree > 0 {
		s += fmt.Sprintf("-d%d", k.Degree)
	}
	return fmt.Sprintf("%s-s%d", s, k.Seed)
}

// Stats is a point-in-time snapshot of the cache counters, surfaced on
// the daemon's /v1/healthz and in cmd/sweep's summary notes.
type Stats struct {
	// Hits counts GetOrBuild calls served without running build —
	// including waiters that joined an in-flight build.
	Hits uint64 `json:"hits"`
	// Misses counts GetOrBuild calls that started a build.
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped to fit the vertex budget.
	Evictions uint64 `json:"evictions"`
	// Entries and Vertices describe current residency.
	Entries  int `json:"entries"`
	Vertices int `json:"vertices"`
	// Budget is the configured vertex-count capacity.
	Budget int `json:"budget"`
}

// DefaultBudget is the vertex budget used when New is given a
// non-positive one: 2^22 vertices ≈ a few hundred MB of CSR adjacency at
// the degrees the sweeps use.
const DefaultBudget = 1 << 22

// Cache is a single-flighted LRU graph cache. The zero value is not
// usable; construct with New. All methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	budget  int
	entries map[Key]*entry
	lru     *list.List // resident entries, front = most recently used

	hits, misses, evictions uint64
	vertices                int
}

// entry is one cache slot. ready is closed once the build finished (g or
// err set); elem is non-nil only while the entry is resident in the LRU —
// in-flight builds are in entries but not in lru, so they can be joined
// but never evicted.
type entry struct {
	key   Key
	ready chan struct{}
	g     *graph.Graph
	err   error
	elem  *list.Element
}

// New returns an empty cache holding at most budgetVertices total
// vertices (<= 0 means DefaultBudget). The budget is soft by exactly one
// entry: the most recently built graph is always retained, even when it
// alone exceeds the budget, so a working set of one never thrashes.
func New(budgetVertices int) *Cache {
	if budgetVertices <= 0 {
		budgetVertices = DefaultBudget
	}
	return &Cache{
		budget:  budgetVertices,
		entries: make(map[Key]*entry),
		lru:     list.New(),
	}
}

// GetOrBuild returns the graph for key, building it with build on a
// miss. Concurrent calls for the same key share one build: the first
// caller runs build, the others block until it finishes and receive the
// same graph (or the same error). Errors are not cached — the next call
// for the key retries the build.
func (c *Cache) GetOrBuild(key Key, build func() (*graph.Graph, error)) (*graph.Graph, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, e.err
		}
		c.touch(e)
		return e.g, nil
	}
	e := &entry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	g, err := build()

	c.mu.Lock()
	if err != nil {
		e.err = fmt.Errorf("graphcache: building %s: %w", key, err)
		delete(c.entries, key) // do not cache failures
	} else {
		e.g = g
		e.elem = c.lru.PushFront(e)
		c.vertices += g.N()
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready) // publishes e.g / e.err to waiters
	if e.err != nil {
		return nil, e.err
	}
	return g, nil
}

// touch moves a resident entry to the LRU front. The entry may have been
// evicted while the caller waited on ready; its graph stays valid, only
// the recency bump is skipped.
func (c *Cache) touch(e *entry) {
	c.mu.Lock()
	if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
	c.mu.Unlock()
}

// evictLocked drops least-recently-used entries until the vertex budget
// holds, always keeping at least the freshest entry. Callers hold c.mu.
func (c *Cache) evictLocked() {
	for c.vertices > c.budget && c.lru.Len() > 1 {
		back := c.lru.Back()
		e := back.Value.(*entry)
		c.lru.Remove(back)
		e.elem = nil
		delete(c.entries, e.key)
		c.vertices -= e.g.N()
		c.evictions++
	}
}

// Len returns the number of resident graphs.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.lru.Len(),
		Vertices:  c.vertices,
		Budget:    c.budget,
	}
}
