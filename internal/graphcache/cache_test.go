package graphcache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"
	"testing"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/process"
	"cobrawalk/internal/rng"
)

func completeBuilder(n int, builds *atomic.Int64) func() (*graph.Graph, error) {
	return func() (*graph.Graph, error) {
		if builds != nil {
			builds.Add(1)
		}
		return graph.Complete(n)
	}
}

func TestHitMissAccounting(t *testing.T) {
	c := New(1 << 20)
	var builds atomic.Int64
	key := Key{Family: "complete", Size: 16, Seed: 7}

	g1, err := c.GetOrBuild(key, completeBuilder(16, &builds))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.GetOrBuild(key, completeBuilder(16, &builds))
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("second get did not return the cached graph")
	}
	if builds.Load() != 1 {
		t.Fatalf("build ran %d times, want 1", builds.Load())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 0 evictions", st)
	}
	if st.Entries != 1 || st.Vertices != 16 || st.Budget != 1<<20 {
		t.Fatalf("residency = %+v, want 1 entry of 16 vertices", st)
	}

	// A different seed is a different graph, even on the same topology.
	other := key
	other.Seed = 8
	if _, err := c.GetOrBuild(other, completeBuilder(16, &builds)); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Misses != 2 || got.Entries != 2 {
		t.Fatalf("distinct seeds should not share entries: %+v", got)
	}
}

func TestEvictionByVertexBudget(t *testing.T) {
	c := New(100) // fits two 40-vertex graphs, not three
	for _, n := range []int{40, 41, 42} {
		if _, err := c.GetOrBuild(Key{Family: "complete", Size: n, Seed: 1},
			completeBuilder(n, nil)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Vertices != 41+42 {
		t.Fatalf("stats = %+v, want the n=40 entry evicted", st)
	}
	// The evicted (least recently used) entry is n=40: re-getting it is a
	// miss, while n=42 is still a hit.
	var builds atomic.Int64
	if _, err := c.GetOrBuild(Key{Family: "complete", Size: 42, Seed: 1},
		completeBuilder(42, &builds)); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 0 {
		t.Fatal("n=42 should still be resident")
	}
	if _, err := c.GetOrBuild(Key{Family: "complete", Size: 40, Seed: 1},
		completeBuilder(40, &builds)); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 1 {
		t.Fatal("n=40 should have been evicted and rebuilt")
	}
}

func TestLRUOrderRespectsUse(t *testing.T) {
	c := New(100)
	a := Key{Family: "complete", Size: 40, Seed: 1}
	b := Key{Family: "complete", Size: 41, Seed: 1}
	for _, k := range []Key{a, b} {
		if _, err := c.GetOrBuild(k, completeBuilder(k.Size, nil)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a so b becomes least recently used, then overflow.
	if _, err := c.GetOrBuild(a, completeBuilder(a.Size, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetOrBuild(Key{Family: "complete", Size: 42, Seed: 1},
		completeBuilder(42, nil)); err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int64
	if _, err := c.GetOrBuild(a, completeBuilder(a.Size, &builds)); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 0 {
		t.Fatal("recently used entry was evicted before the LRU one")
	}
	if _, err := c.GetOrBuild(b, completeBuilder(b.Size, &builds)); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 1 {
		t.Fatal("least recently used entry should have been the eviction victim")
	}
}

// TestOversizedEntryIsRetained pins the soft-budget rule: a graph larger
// than the whole budget still caches (alone) instead of thrashing.
func TestOversizedEntryIsRetained(t *testing.T) {
	c := New(10)
	var builds atomic.Int64
	key := Key{Family: "complete", Size: 64, Seed: 1}
	for i := 0; i < 2; i++ {
		if _, err := c.GetOrBuild(key, completeBuilder(64, &builds)); err != nil {
			t.Fatal(err)
		}
	}
	if builds.Load() != 1 {
		t.Fatalf("oversized entry rebuilt %d times, want cached after 1", builds.Load())
	}
}

func TestBuildErrorsAreNotCached(t *testing.T) {
	c := New(0)
	key := Key{Family: "broken", Size: 8, Seed: 1}
	boom := errors.New("boom")
	if _, err := c.GetOrBuild(key, func() (*graph.Graph, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	// The failure is not cached: the next call retries and can succeed.
	g, err := c.GetOrBuild(key, completeBuilder(8, nil))
	if err != nil || g == nil {
		t.Fatalf("retry after failed build: %v", err)
	}
	if st := c.Stats(); st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("stats after retry = %+v, want 2 misses / 1 entry", st)
	}
}

// TestSingleFlight hammers one key from many goroutines (run with -race):
// exactly one build may run, everyone gets the same graph, and the
// waiters all count as hits.
func TestSingleFlight(t *testing.T) {
	c := New(0)
	key := Key{Family: "complete", Size: 32, Seed: 3}
	const goroutines = 64

	var builds atomic.Int64
	release := make(chan struct{})
	build := func() (*graph.Graph, error) {
		builds.Add(1)
		<-release // hold the build open until every goroutine has joined
		return graph.Complete(32)
	}

	var (
		wg      sync.WaitGroup
		started sync.WaitGroup
		got     [goroutines]*graph.Graph
		errs    [goroutines]error
	)
	started.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			got[i], errs[i] = c.GetOrBuild(key, build)
		}(i)
	}
	started.Wait()
	close(release)
	wg.Wait()

	if builds.Load() != 1 {
		t.Fatalf("%d builds ran, want 1 (single-flight)", builds.Load())
	}
	for i := 1; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if got[i] != got[0] {
			t.Fatal("waiters received different graphs")
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != goroutines-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hits", st, goroutines-1)
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Family: "rand-reg", Size: 4096, Degree: 8, Seed: 7}
	if got, want := k.String(), "rand-reg-n4096-d8-s7"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if got, want := (Key{Family: "complete", Size: 64, Seed: 1}).String(), "complete-n64-s1"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestHammerCSRReaders drives the cache the way a busy daemon does —
// many goroutines churning a small vertex budget over CSR-backed
// random-regular graphs while running native process engines over the
// shared adjacency they get back. Cached graphs are immutable CSR and
// may be held past eviction, so every reader must see a valid, identical
// structure no matter how the LRU churns; under -race this is the
// data-race probe for the cache/engine seam. Each goroutine checks the
// trials it runs are deterministic per (key, seed) so a torn or shared
// mutable state would also surface as a value mismatch.
func TestHammerCSRReaders(t *testing.T) {
	c := New(3 * 96) // room for ~3 of the 5 keys: constant LRU churn
	keys := make([]Key, 5)
	for i := range keys {
		keys[i] = Key{Family: "rand-reg", Size: 96, Degree: 4 + i%2*2, Seed: uint64(i)}
	}
	build := func(k Key) func() (*graph.Graph, error) {
		return func() (*graph.Graph, error) {
			return graph.RandomRegularConnected(k.Size, k.Degree, rng.New(k.Seed))
		}
	}
	want := make(map[Key]int)
	for _, k := range keys {
		g, err := build(k)()
		if err != nil {
			t.Fatal(err)
		}
		p, err := process.New(process.Cobra, g, process.Config{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := process.Run(p, rng.New(k.Seed), 1<<14, 0)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = res.Rounds
	}

	const goroutines, iters = 16, 40
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				k := keys[(gi+it)%len(keys)]
				g, err := c.GetOrBuild(k, build(k))
				if err != nil {
					errCh <- err
					return
				}
				name := process.Cobra
				if it%2 == 1 {
					name = process.BIPS
				}
				p, err := process.New(name, g, process.Config{})
				if err != nil {
					errCh <- err
					return
				}
				res, err := process.Run(p, rng.New(k.Seed), 1<<14, 0)
				if err != nil {
					errCh <- err
					return
				}
				if name == process.Cobra && res.Rounds != want[k] {
					errCh <- fmt.Errorf("key %s: cobra rounds %d, want %d", k, res.Rounds, want[k])
					return
				}
				if !res.Done {
					errCh <- fmt.Errorf("key %s: %s did not cover within the round cap", k, name)
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatalf("hammer never evicted (stats %+v); budget too large to exercise churn", st)
	}
}

// TestDiskTierSpillAndReload pins the disk-tier lifecycle on one key:
// first miss builds and spills, an eviction drops the memory entry, and
// the next get comes back from the store file (a disk hit, zero builds)
// with identical CSR content.
func TestDiskTierSpillAndReload(t *testing.T) {
	dir := t.TempDir()
	c, err := NewWithOptions(Options{BudgetVertices: 100, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Family: "rand-reg", Size: 80, Degree: 4, Seed: 9}
	build := func() (*graph.Graph, error) {
		return graph.RandomRegularConnected(key.Size, key.Degree, rng.New(key.Seed))
	}
	g1, err := c.GetOrBuild(key, build)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.DiskWrites != 1 || st.DiskHits != 0 {
		t.Fatalf("after first build: %+v, want 1 disk write", st)
	}

	// Evict by overflowing the budget with another key.
	other := Key{Family: "complete", Size: 90, Seed: 1}
	if _, err := c.GetOrBuild(other, completeBuilder(90, nil)); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatalf("budget overflow did not evict: %+v", st)
	}

	var builds atomic.Int64
	g2, err := c.GetOrBuild(key, func() (*graph.Graph, error) {
		builds.Add(1)
		return build()
	})
	if err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 0 {
		t.Fatal("post-eviction get ran the generator instead of the disk tier")
	}
	if st := c.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want 1 disk hit", st)
	}
	o1, n1 := g1.CSR()
	o2, n2 := g2.CSR()
	if !slices.Equal(o1, o2) || !slices.Equal(n1, n2) {
		t.Fatal("disk-tier reload produced a different graph")
	}
	if g2.Name() != g1.Name() {
		t.Fatalf("name %q round-tripped to %q", g1.Name(), g2.Name())
	}
}

// TestDiskTierSurvivesRestart simulates a daemon restart: a fresh cache
// over the same store directory serves the old cache's graphs from disk.
func TestDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	key := Key{Family: "rand-reg", Size: 64, Degree: 4, Seed: 3}
	build := func() (*graph.Graph, error) {
		return graph.RandomRegularConnected(key.Size, key.Degree, rng.New(key.Seed))
	}
	c1, err := NewWithOptions(Options{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.GetOrBuild(key, build); err != nil {
		t.Fatal(err)
	}

	c2, err := NewWithOptions(Options{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.GetOrBuild(key, func() (*graph.Graph, error) {
		t.Fatal("restarted cache ran the generator")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.DiskHits != 1 || st.DiskWrites != 0 {
		t.Fatalf("restart stats = %+v, want pure disk hit", st)
	}
}

// TestDiskTierIgnoresCorruptFile: a damaged store file must degrade to a
// generator build (and be atomically rewritten), never an error or a bad
// graph.
func TestDiskTierIgnoresCorruptFile(t *testing.T) {
	dir := t.TempDir()
	key := Key{Family: "complete", Size: 24, Seed: 5}
	path := filepath.Join(dir, StoreFileName(key))
	if err := os.WriteFile(path, []byte("definitely not a store file"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := NewWithOptions(Options{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int64
	if _, err := c.GetOrBuild(key, completeBuilder(24, &builds)); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 1 {
		t.Fatal("corrupt store file did not fall back to the generator")
	}
	if st := c.Stats(); st.DiskHits != 0 || st.DiskWrites != 1 {
		t.Fatalf("stats = %+v, want fallback build + respill", st)
	}
	// The respill healed the file: a fresh cache now disk-hits.
	c2, err := NewWithOptions(Options{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.GetOrBuild(key, completeBuilder(24, nil)); err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Fatalf("respilled file not served: %+v", st)
	}
}

func TestStoreFileName(t *testing.T) {
	cases := []struct {
		key  Key
		want string
	}{
		{Key{Family: "rand-reg", Size: 4096, Degree: 8, Seed: 7}, "rand-reg-n4096-d8-s7.csrg"},
		{Key{Family: "file:/runs/g.csrg", Size: 10, Seed: 1}, "file__runs_g.csrg-n10-s1.csrg"},
	}
	for _, c := range cases {
		if got := StoreFileName(c.key); got != c.want {
			t.Errorf("StoreFileName(%+v) = %q, want %q", c.key, got, c.want)
		}
	}
}

// TestHammerDiskTier is TestHammerCSRReaders with the disk tier enabled:
// 16 goroutines churn a tight budget so entries constantly evict to disk
// and mmap back, while every reader still sees deterministic per-key
// results. Under -race this exercises the spill/load seam concurrently.
func TestHammerDiskTier(t *testing.T) {
	c, err := NewWithOptions(Options{BudgetVertices: 3 * 96, StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]Key, 5)
	for i := range keys {
		keys[i] = Key{Family: "rand-reg", Size: 96, Degree: 4 + i%2*2, Seed: uint64(i)}
	}
	build := func(k Key) func() (*graph.Graph, error) {
		return func() (*graph.Graph, error) {
			return graph.RandomRegularConnected(k.Size, k.Degree, rng.New(k.Seed))
		}
	}
	want := make(map[Key]int)
	for _, k := range keys {
		g, err := build(k)()
		if err != nil {
			t.Fatal(err)
		}
		p, err := process.New(process.Cobra, g, process.Config{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := process.Run(p, rng.New(k.Seed), 1<<14, 0)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = res.Rounds
	}

	const goroutines, iters = 16, 40
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				k := keys[(gi+it)%len(keys)]
				g, err := c.GetOrBuild(k, build(k))
				if err != nil {
					errCh <- err
					return
				}
				p, err := process.New(process.Cobra, g, process.Config{})
				if err != nil {
					errCh <- err
					return
				}
				res, err := process.Run(p, rng.New(k.Seed), 1<<14, 0)
				if err != nil {
					errCh <- err
					return
				}
				if res.Rounds != want[k] {
					errCh <- fmt.Errorf("key %s: cobra rounds %d, want %d", k, res.Rounds, want[k])
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("hammer never evicted (stats %+v)", st)
	}
	if st.DiskWrites != uint64(len(keys)) {
		t.Fatalf("disk writes = %d, want one per key (%d): %+v", st.DiskWrites, len(keys), st)
	}
	if st.DiskHits == 0 {
		t.Fatalf("hammer never reloaded from disk (stats %+v)", st)
	}
}
