// Package buildinfo reports what binary is running: module version, VCS
// revision and toolchain, read from the build metadata the go toolchain
// embeds (runtime/debug.ReadBuildInfo). Every cmd/* binary exposes it
// via -version and the daemon serves it on /v1/version, so a deployed
// fleet can always be asked exactly what code produced a result.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info is the build identity of the running binary. Fields degrade to
// "unknown"/empty when the binary was built without module or VCS
// metadata (e.g. go test binaries), never to an error.
type Info struct {
	// Module is the main module path ("cobrawalk").
	Module string `json:"module"`
	// Version is the module version, "(devel)" for source builds.
	Version string `json:"version"`
	// Revision is the VCS commit hash, when embedded.
	Revision string `json:"revision,omitempty"`
	// Dirty reports uncommitted changes at build time.
	Dirty bool `json:"dirty,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

// Read extracts the build identity from the embedded build metadata.
func Read() Info {
	info := Info{Module: "cobrawalk", Version: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Path != "" {
		info.Module = bi.Main.Path
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// String renders the one-line form the -version flags print:
// "cobrawalk (devel) go1.24.0" plus " rev abcdef123456 (dirty)" when a
// VCS revision is embedded.
func (i Info) String() string {
	s := fmt.Sprintf("%s %s %s", i.Module, i.Version, i.GoVersion)
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if i.Dirty {
			s += " (dirty)"
		}
	}
	return s
}
