package buildinfo

import (
	"strings"
	"testing"
)

func TestReadNeverFails(t *testing.T) {
	info := Read()
	if info.Module == "" || info.Version == "" || info.GoVersion == "" {
		t.Fatalf("Read() = %+v, want every core field populated", info)
	}
	// In a test binary the main module is this module.
	if info.Module != "cobrawalk" {
		t.Fatalf("module = %q, want cobrawalk", info.Module)
	}
}

func TestStringRendering(t *testing.T) {
	i := Info{Module: "cobrawalk", Version: "(devel)", GoVersion: "go1.24.0"}
	if got := i.String(); got != "cobrawalk (devel) go1.24.0" {
		t.Fatalf("String() = %q", got)
	}
	i.Revision = "0123456789abcdef0123"
	i.Dirty = true
	got := i.String()
	if !strings.Contains(got, "rev 0123456789ab") || !strings.Contains(got, "(dirty)") {
		t.Fatalf("String() = %q, want truncated revision and dirty marker", got)
	}
	if strings.Contains(got, "0123456789abc") {
		t.Fatalf("String() = %q, revision not truncated to 12 chars", got)
	}
}
