package sweep

import (
	"fmt"
	"strings"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/graphcache"
	"cobrawalk/internal/graphstore"
	"cobrawalk/internal/rng"
)

// Family names a graph generator parameterised by a target size and,
// when Degreed, a degree. Generators round the target to their natural
// lattice (tori to squares, hypercubes to powers of two); the realised
// size is recorded on each Result.
type Family struct {
	Name string
	// Degreed reports whether the family consumes the Degrees axis.
	Degreed bool
	// Build constructs a graph with ~n vertices. degree is ignored when
	// !Degreed. Random families draw from r.
	Build func(n, degree int, r *rng.Rand) (*graph.Graph, error)
}

// Families returns the family registry in canonical order. This is the
// single home of size→graph rounding: the experiment helpers in
// internal/expt wrap these same builders.
func Families() []Family {
	return []Family{
		{
			Name:    "rand-reg",
			Degreed: true,
			Build: func(n, degree int, r *rng.Rand) (*graph.Graph, error) {
				if n*degree%2 != 0 {
					n++
				}
				return graph.RandomRegularConnected(n, degree, r)
			},
		},
		{
			Name: "complete",
			Build: func(n, _ int, r *rng.Rand) (*graph.Graph, error) {
				return graph.Complete(n)
			},
		},
		{
			Name: "torus-2d",
			Build: func(n, _ int, r *rng.Rand) (*graph.Graph, error) {
				side := IntSqrt(n)
				if side < 3 {
					side = 3
				}
				return graph.Torus(side, side)
			},
		},
		{
			Name: "hypercube",
			Build: func(n, _ int, r *rng.Rand) (*graph.Graph, error) {
				d := 1
				for (1 << d) < n {
					d++
				}
				return graph.Hypercube(d)
			},
		},
		{
			Name: "cycle",
			Build: func(n, _ int, r *rng.Rand) (*graph.Graph, error) {
				return graph.Cycle(n)
			},
		},
	}
}

// FamilyNames returns the registered family names in canonical order.
func FamilyNames() []string {
	fams := Families()
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.Name
	}
	return names
}

// LookupFamily finds a family by name. Beyond the static registry it
// resolves "file:<path>" to a dynamic pseudo-family whose Build mmaps a
// graphstore file: the spec's size axis is advisory for these (the
// record carries the file's realised size, the same rounding contract as
// torus/hypercube), the degree axis is unused, and no rng is drawn. The
// store header is checked at lookup time so a bad path fails spec
// validation, not a worker mid-sweep.
func LookupFamily(name string) (Family, error) {
	if path, ok := strings.CutPrefix(name, "file:"); ok {
		if path == "" {
			return Family{}, fmt.Errorf("sweep: family %q has no path after file:", name)
		}
		if _, err := graphstore.ReadHeader(path); err != nil {
			return Family{}, fmt.Errorf("sweep: family %q: %w", name, err)
		}
		return Family{
			Name: name,
			Build: func(_, _ int, _ *rng.Rand) (*graph.Graph, error) {
				return graphstore.Mmap(path)
			},
		}, nil
	}
	for _, f := range Families() {
		if f.Name == name {
			return f, nil
		}
	}
	return Family{}, fmt.Errorf("sweep: unknown family %q (want one of %s, or file:<path.csrg>)",
		name, strings.Join(FamilyNames(), ", "))
}

// BuildTopology realises the graph a sweep with master seed sweepSeed
// uses for (family, size, degree), plus the cache key the serving stack
// files it under. This is the exact derivation runPoint performs —
// GraphSeed from the topology identity, generator rng from the reserved
// graph stream — exported so cmd/graphbuild can pre-build the very store
// files the daemon's disk tier will look for.
func BuildTopology(family string, size, degree int, sweepSeed uint64) (*graph.Graph, graphcache.Key, error) {
	fam, err := LookupFamily(family)
	if err != nil {
		return nil, graphcache.Key{}, err
	}
	if !fam.Degreed {
		degree = 0
	}
	pt := Point{Family: family, Size: size, Degree: degree}
	seed := pointSeed(sweepSeed, pt.topologyID())
	key := graphcache.Key{Family: family, Size: size, Degree: degree, Seed: seed}
	g, err := fam.Build(size, degree, rng.NewStream(seed, graphStream))
	if err != nil {
		return nil, graphcache.Key{}, err
	}
	return g, key, nil
}

// IntSqrt returns ⌊√n⌋ — the torus-sizing helper shared with the
// experiment layer.
func IntSqrt(n int) int {
	s := 0
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}
