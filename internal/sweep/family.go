package sweep

import (
	"fmt"
	"strings"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// Family names a graph generator parameterised by a target size and,
// when Degreed, a degree. Generators round the target to their natural
// lattice (tori to squares, hypercubes to powers of two); the realised
// size is recorded on each Result.
type Family struct {
	Name string
	// Degreed reports whether the family consumes the Degrees axis.
	Degreed bool
	// Build constructs a graph with ~n vertices. degree is ignored when
	// !Degreed. Random families draw from r.
	Build func(n, degree int, r *rng.Rand) (*graph.Graph, error)
}

// Families returns the family registry in canonical order. This is the
// single home of size→graph rounding: the experiment helpers in
// internal/expt wrap these same builders.
func Families() []Family {
	return []Family{
		{
			Name:    "rand-reg",
			Degreed: true,
			Build: func(n, degree int, r *rng.Rand) (*graph.Graph, error) {
				if n*degree%2 != 0 {
					n++
				}
				return graph.RandomRegularConnected(n, degree, r)
			},
		},
		{
			Name: "complete",
			Build: func(n, _ int, r *rng.Rand) (*graph.Graph, error) {
				return graph.Complete(n)
			},
		},
		{
			Name: "torus-2d",
			Build: func(n, _ int, r *rng.Rand) (*graph.Graph, error) {
				side := IntSqrt(n)
				if side < 3 {
					side = 3
				}
				return graph.Torus(side, side)
			},
		},
		{
			Name: "hypercube",
			Build: func(n, _ int, r *rng.Rand) (*graph.Graph, error) {
				d := 1
				for (1 << d) < n {
					d++
				}
				return graph.Hypercube(d)
			},
		},
		{
			Name: "cycle",
			Build: func(n, _ int, r *rng.Rand) (*graph.Graph, error) {
				return graph.Cycle(n)
			},
		},
	}
}

// FamilyNames returns the registered family names in canonical order.
func FamilyNames() []string {
	fams := Families()
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.Name
	}
	return names
}

// LookupFamily finds a family by name.
func LookupFamily(name string) (Family, error) {
	for _, f := range Families() {
		if f.Name == name {
			return f, nil
		}
	}
	return Family{}, fmt.Errorf("sweep: unknown family %q (want one of %s)",
		name, strings.Join(FamilyNames(), ", "))
}

// IntSqrt returns ⌊√n⌋ — the torus-sizing helper shared with the
// experiment layer.
func IntSqrt(n int) int {
	s := 0
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}
