package sweep

// snapshot.go is the live-observability tap on a running ensemble: a
// periodic, read-only view of a point's partial digests while trials
// are still folding in. The serving layer broadcasts these over SSE so
// an operator can watch quantile bands converge instead of polling for
// the finished artifact.
//
// Determinism: the snapshot path must never move a byte of the final
// results. It doesn't — snapshots are built from *shadow* accumulators
// that duplicate each fold outside the reduction tree, the real
// per-shard accumulators and the trial rng streams are never read or
// touched, and delivery is timer-gated (an Options field, which by
// contract cannot affect results). Killing the hook, changing its
// interval, or racing its timer differently changes only what is
// observed, never what is computed. The shadow digests fold trials in
// completion order rather than the fixed shard-merge order, so a
// snapshot's float rounding may differ run to run — snapshots are
// advisory views; only the final Result carries the contract.

import (
	"sync"
	"time"

	"cobrawalk/internal/sim"
	"cobrawalk/internal/stats"
)

// DefaultSnapshotInterval spaces Options.Snapshot deliveries when
// Options.SnapshotInterval is unset.
const DefaultSnapshotInterval = 500 * time.Millisecond

// Snapshot is a mid-ensemble view of one running point: the partial
// scalar summaries and trajectory quantile bands over the trials folded
// so far. Fields mirror Result so readers can reuse decoding.
type Snapshot struct {
	// Point is the running point.
	Point Point `json:"point"`
	// Trials counts the trials folded into this snapshot's digests
	// (the final Result will hold Point.Trials).
	Trials int `json:"trials"`
	// Metrics holds the partial ensemble summary per requested scalar
	// metric, keyed by registry name.
	Metrics map[string]stats.DigestSummary `json:"metrics"`
	// Trajectories holds the partial per-round quantile-band block per
	// requested trajectory metric, keyed by registry name.
	Trajectories map[string]stats.TrajectorySummary `json:"trajectories,omitempty"`
}

// snapshotReducer wraps the point reducer so every fold also feeds a
// shadow accumulator under its own mutex; when at least interval has
// passed since the last delivery, the fold that crossed the line
// summarises the shadow and hands a Snapshot to snap. With snap == nil
// the reducer is returned untouched — the hot path pays nothing.
func snapshotReducer(red sim.Reducer[trialOut, pointAcc], pt Point, scalars, trajs []MetricInfo, snap func(Snapshot), interval time.Duration) sim.Reducer[trialOut, pointAcc] {
	if snap == nil {
		return red
	}
	if interval <= 0 {
		interval = DefaultSnapshotInterval
	}
	var (
		mu     sync.Mutex
		shadow = red.New()
		trials int
		last   = time.Now()
	)
	fold := red.Fold
	red.Fold = func(acc pointAcc, trial int, v trialOut) pointAcc {
		acc = fold(acc, trial, v)
		// The collector buffers in v are only valid until the worker's
		// next trial, but Fold runs synchronously before that — reading
		// them a second time here is safe.
		mu.Lock()
		defer mu.Unlock()
		shadow = fold(shadow, trial, v)
		trials++
		if now := time.Now(); now.Sub(last) >= interval {
			last = now
			snap(snapshotOf(pt, trials, shadow, scalars, trajs))
		}
		return acc
	}
	return red
}

// snapshotOf summarises the shadow accumulator into a Snapshot.
// Metrics whose digests cannot summarise yet (empty) are skipped.
func snapshotOf(pt Point, trials int, acc pointAcc, scalars, trajs []MetricInfo) Snapshot {
	s := Snapshot{
		Point:   pt,
		Trials:  trials,
		Metrics: make(map[string]stats.DigestSummary, len(scalars)),
	}
	for i, m := range scalars {
		sum, err := acc.scalars[i].Summary()
		if err != nil {
			continue
		}
		s.Metrics[m.Name] = sum
	}
	if len(trajs) > 0 {
		s.Trajectories = make(map[string]stats.TrajectorySummary, len(trajs))
		for i, m := range trajs {
			sum, err := acc.trajs[i].Summary()
			if err != nil {
				continue
			}
			s.Trajectories[m.Name] = sum
		}
	}
	return s
}
