package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"cobrawalk/internal/core"
	"cobrawalk/internal/graphcache"
	"cobrawalk/internal/process"
)

// testSpec is a small grid that still exercises collapsed axes: a
// degreed family × two degrees, a non-degreed family, a branched and an
// unbranched process.
func testSpec() Spec {
	return Spec{
		Name:       "test",
		Families:   []string{"rand-reg", "complete"},
		Sizes:      []int{24, 32},
		Degrees:    []int{3, 4},
		Processes:  []string{ProcCobra, ProcPush},
		Branchings: []core.Branching{{K: 2}, {K: 1, Rho: 0.5}},
		Trials:     6,
		Seed:       7,
		MaxRounds:  1 << 14,
	}
}

func TestSpecExpansion(t *testing.T) {
	pts, err := testSpec().Points()
	if err != nil {
		t.Fatal(err)
	}
	// rand-reg: 2 degrees × 2 sizes × (cobra×2 branchings + push×1) = 12
	// complete: 1 × 2 sizes × 3 = 6
	if len(pts) != 18 {
		t.Fatalf("got %d points, want 18", len(pts))
	}
	seen := make(map[string]bool)
	for i, pt := range pts {
		if pt.Index != i {
			t.Fatalf("point %s has index %d at position %d", pt.ID, pt.Index, i)
		}
		if seen[pt.ID] {
			t.Fatalf("duplicate ID %s", pt.ID)
		}
		seen[pt.ID] = true
		if pt.Family == "complete" && pt.Degree != 0 {
			t.Fatalf("complete point %s carries degree %d", pt.ID, pt.Degree)
		}
		if pt.Process == ProcPush && pt.Branching.K != 0 {
			t.Fatalf("push point %s carries branching %v", pt.ID, pt.Branching)
		}
		if pt.Seed == 0 {
			t.Fatalf("point %s has zero seed", pt.ID)
		}
	}
	if !seen["cobra-rand-reg-n24-d3-k1-rho0.5"] {
		t.Fatalf("expected canonical ID missing; have %v", keys(seen))
	}
	if !seen["push-complete-n32"] {
		t.Fatalf("collapsed-axis ID missing; have %v", keys(seen))
	}

	// Expansion is deterministic: same spec, same list.
	again, err := testSpec().Points()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pts, again) {
		t.Fatal("expansion is not deterministic")
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no families", func(s *Spec) { s.Families = nil }, "family"},
		{"unknown family", func(s *Spec) { s.Families = []string{"mobius"} }, "unknown family"},
		{"degreed without degrees", func(s *Spec) { s.Degrees = nil }, "no degrees"},
		{"bad degree", func(s *Spec) { s.Degrees = []int{0} }, "degree"},
		{"no sizes", func(s *Spec) { s.Sizes = nil }, "size"},
		{"tiny size", func(s *Spec) { s.Sizes = []int{1} }, "size"},
		{"unknown process", func(s *Spec) { s.Processes = []string{"gossip"} }, "unknown process"},
		{"kwalk with rho", func(s *Spec) { s.Processes = []string{ProcKWalk} }, "fractional"},
		{"bad K", func(s *Spec) { s.Branchings = []core.Branching{{K: 0}} }, "K"},
		{"bad rho", func(s *Spec) { s.Branchings = []core.Branching{{K: 1, Rho: 1.5}} }, "Rho"},
		{"no trials", func(s *Spec) { s.Trials = 0 }, "trials"},
		{"duplicate size", func(s *Spec) { s.Sizes = []int{24, 24} }, "duplicate"},
	}
	for _, tc := range cases {
		s := testSpec()
		tc.mut(&s)
		_, err := s.Points()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestSpecDefaults(t *testing.T) {
	pts, err := Spec{Families: []string{"complete"}, Sizes: []int{16}, Trials: 2, Seed: 1}.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1", len(pts))
	}
	pt := pts[0]
	if pt.Process != ProcCobra || pt.Branching != core.DefaultBranching || pt.MaxRounds != DefaultMaxRounds {
		t.Fatalf("defaults not applied: %+v", pt)
	}
}

func TestParseBranchings(t *testing.T) {
	got, err := ParseBranchings("2, 1+0.5,3")
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Branching{{K: 2}, {K: 1, Rho: 0.5}, {K: 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if got, err := ParseBranchings(""); err != nil || got != nil {
		t.Fatalf("empty input: got %v, %v", got, err)
	}
	for _, bad := range []string{"x", "1+x", "1.5"} {
		if _, err := ParseBranchings(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}

// smallSpec keeps end-to-end engine tests fast.
func smallSpec() Spec {
	return Spec{
		Name:      "small",
		Families:  []string{"rand-reg", "complete"},
		Sizes:     []int{16, 24},
		Degrees:   []int{3},
		Processes: []string{ProcCobra, ProcPush},
		Trials:    5,
		Seed:      11,
		MaxRounds: 1 << 14,
	}
}

// reportJSON canonicalises a report for comparison.
func reportJSON(t *testing.T, rep *Report) string {
	t.Helper()
	blob, err := json.Marshal(rep.Results)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

func TestRunWorkerCountIndependence(t *testing.T) {
	base, err := Run(context.Background(), smallSpec(), Options{PointWorkers: 1, TrialWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// rand-reg×1 degree×2 sizes×2 processes + complete×2 sizes×2 = 8.
	if len(base.Results) != 8 || base.Resumed != 0 {
		t.Fatalf("unexpected report shape: %d results, %d resumed", len(base.Results), base.Resumed)
	}
	for _, res := range base.Results {
		rounds, trans := res.Metric(MetricRounds), res.Metric(MetricTransmissions)
		if rounds.N != 5 || trans.N != 5 {
			t.Fatalf("point %s: digests saw %d/%d trials, want 5", res.ID, rounds.N, trans.N)
		}
		if rounds.Mean <= 0 || trans.Mean <= 0 {
			t.Fatalf("point %s: degenerate digests %+v", res.ID, rounds)
		}
		if res.GraphN < res.Size {
			t.Fatalf("point %s: graph_n %d below requested %d", res.ID, res.GraphN, res.Size)
		}
	}
	parallel, err := Run(context.Background(), smallSpec(), Options{PointWorkers: 4, TrialWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if reportJSON(t, base) != reportJSON(t, parallel) {
		t.Fatal("report depends on worker counts")
	}
}

// TestProcessesDelegateToRegistry pins the single-source-of-truth
// contract: the sweep's process list is the process registry's, so a
// process added there is sweepable with no change in this package.
func TestProcessesDelegateToRegistry(t *testing.T) {
	if got := Processes(); !reflect.DeepEqual(got, process.Names()) {
		t.Fatalf("Processes() = %v, registry has %v", got, process.Names())
	}
	want := []string{ProcCobra, ProcBIPS, ProcPush, ProcPushPull, ProcFlood, ProcKWalk, ProcCobraPar, ProcBIPSPar}
	if got := Processes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("canonical order = %v, want %v", got, want)
	}
}

// TestAllProcessesWorkerIndependence runs every registered process
// through the sweep engine and pins that the report is byte-identical
// across worker counts — the determinism contract extended to the whole
// process registry.
func TestAllProcessesWorkerIndependence(t *testing.T) {
	spec := Spec{
		Name:       "all-procs",
		Families:   []string{"rand-reg"},
		Sizes:      []int{24},
		Degrees:    []int{3},
		Processes:  Processes(),
		Branchings: []core.Branching{{K: 2}},
		Trials:     5,
		Seed:       13,
		MaxRounds:  1 << 14,
	}
	base, err := Run(context.Background(), spec, Options{PointWorkers: 1, TrialWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Results) != len(Processes()) {
		t.Fatalf("got %d results, want one per process (%d)", len(base.Results), len(Processes()))
	}
	for _, res := range base.Results {
		if res.Metric(MetricRounds).N != 5 || res.Metric(MetricRounds).Mean <= 0 || res.Metric(MetricTransmissions).Mean <= 0 {
			t.Fatalf("point %s: degenerate digests %+v", res.ID, res.Metric(MetricRounds))
		}
	}
	parallel, err := Run(context.Background(), spec, Options{PointWorkers: 3, TrialWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if reportJSON(t, base) != reportJSON(t, parallel) {
		t.Fatal("report depends on worker counts")
	}
}

// TestNativeEnginesWorkerPoolIdentity pins the native cobra/bips engines
// under the sweep worker pool: workers 1 vs 8 must produce byte-identical
// reports. The degree axis is chosen to exercise both native sampling
// paths — degree 4 hits the power-of-two masked tight loop, degree 6 the
// Lemire path — and the branching axis covers the branchless rho == 0
// loops and the rho > 0 fallback. Run under -race in CI this doubles as
// the data-race probe for the construct-once/Reset-many process objects
// and the shared CSR graphs beneath them.
func TestNativeEnginesWorkerPoolIdentity(t *testing.T) {
	spec := Spec{
		Name:       "native-pool",
		Families:   []string{"rand-reg"},
		Sizes:      []int{96},
		Degrees:    []int{4, 6},
		Processes:  []string{ProcCobra, ProcBIPS},
		Branchings: []core.Branching{{K: 2}, {K: 3, Rho: 0.5}},
		Trials:     6,
		Seed:       11,
		MaxRounds:  1 << 14,
	}
	base, err := Run(context.Background(), spec, Options{PointWorkers: 1, TrialWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 2; len(base.Results) != want {
		t.Fatalf("got %d results, want %d", len(base.Results), want)
	}
	parallel, err := Run(context.Background(), spec, Options{PointWorkers: 8, TrialWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if reportJSON(t, base) != reportJSON(t, parallel) {
		t.Fatal("native engine report depends on worker counts")
	}
}

// TestKWalkSweepable pins the satellite: kwalk arrives through the
// registry path with the branching axis as its walker count, and more
// walkers cover no slower.
func TestKWalkSweepable(t *testing.T) {
	spec := Spec{
		Families:   []string{"cycle"},
		Sizes:      []int{24},
		Processes:  []string{ProcKWalk},
		Branchings: []core.Branching{{K: 1}, {K: 8}},
		Trials:     10,
		Seed:       9,
	}
	rep, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(rep.Results))
	}
	if rep.Results[0].ID != "kwalk-cycle-n24-k1" || rep.Results[1].ID != "kwalk-cycle-n24-k8" {
		t.Fatalf("unexpected point IDs %s, %s", rep.Results[0].ID, rep.Results[1].ID)
	}
	one, eight := rep.Results[0].Metric(MetricRounds).Mean, rep.Results[1].Metric(MetricRounds).Mean
	if eight > one {
		t.Fatalf("8 walkers (%.1f rounds) slower than 1 (%.1f)", eight, one)
	}
}

func TestRunMeasureLambda(t *testing.T) {
	spec := Spec{Families: []string{"complete"}, Sizes: []int{12}, Trials: 2, Seed: 3, MeasureLambda: true}
	rep, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// K_12 has λ = 1/(n-1).
	if got := rep.Results[0].Lambda; got < 0.05 || got > 0.15 {
		t.Fatalf("lambda = %v, want ≈ 1/11", got)
	}
	if deg := rep.Results[0].GraphDegree; deg != 11 {
		t.Fatalf("graph_degree = %d, want 11", deg)
	}
}

func TestRunBips(t *testing.T) {
	spec := Spec{Families: []string{"complete"}, Sizes: []int{16}, Processes: []string{ProcBIPS, ProcPushPull, ProcFlood}, Trials: 3, Seed: 5}
	rep, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("got %d results", len(rep.Results))
	}
	for _, res := range rep.Results {
		if res.Metric(MetricRounds).Mean <= 0 {
			t.Fatalf("point %s: mean rounds %v", res.ID, res.Metric(MetricRounds).Mean)
		}
	}
}

// readTree returns relative path → content for every regular file under
// dir, skipping nothing — so comparisons cover manifest, point records
// and results.ndjson alike.
func readTree(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = string(blob)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestResumeByteIdentical pins the resume contract: kill a sweep after k
// of m points, re-run with Resume, and every final artifact byte matches
// an uninterrupted run — across different worker counts.
func TestResumeByteIdentical(t *testing.T) {
	spec := smallSpec()

	// Reference: uninterrupted run.
	dirA := t.TempDir()
	repA, err := Run(context.Background(), spec, Options{Dir: dirA, PointWorkers: 2, TrialWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel after 2 completed points.
	dirB := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := 0
	_, err = Run(ctx, spec, Options{
		Dir: dirB, PointWorkers: 1, TrialWorkers: 1,
		PointDone: func(Result, bool) {
			if done++; done == 2 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("interrupted run should report an error")
	}
	partial := readTree(t, dirB)
	if _, ok := partial["manifest.json"]; !ok {
		t.Fatal("interrupted run left no manifest")
	}
	if _, ok := partial["results.ndjson"]; ok {
		t.Fatal("interrupted run should not have written results.ndjson")
	}
	nPartial := 0
	for rel := range partial {
		if strings.HasPrefix(rel, "points/") {
			nPartial++
		}
	}
	if nPartial < 2 || nPartial >= len(repA.Results) {
		t.Fatalf("interrupted run persisted %d points, want in [2, %d)", nPartial, len(repA.Results))
	}

	// Resume with different worker counts; results must not depend on
	// either the interruption or the scheduling.
	repB, err := Run(context.Background(), spec, Options{Dir: dirB, Resume: true, PointWorkers: 3, TrialWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if repB.Resumed != nPartial {
		t.Fatalf("resume skipped %d points, want %d", repB.Resumed, nPartial)
	}
	treeA, treeB := readTree(t, dirA), readTree(t, dirB)
	if len(treeA) != len(treeB) {
		t.Fatalf("artifact trees differ in size: %d vs %d", len(treeA), len(treeB))
	}
	for rel, want := range treeA {
		if got, ok := treeB[rel]; !ok {
			t.Errorf("resumed tree missing %s", rel)
		} else if got != want {
			t.Errorf("%s differs between uninterrupted and resumed runs", rel)
		}
	}
	if reportJSON(t, repA) != reportJSON(t, repB) {
		t.Fatal("in-memory reports differ between uninterrupted and resumed runs")
	}

	// results.ndjson is the point records concatenated in order.
	var want strings.Builder
	for _, res := range repA.Results {
		want.WriteString(treeA[filepath.Join("points", res.ID+".json")])
	}
	if treeA["results.ndjson"] != want.String() {
		t.Fatal("results.ndjson is not the in-order concatenation of point records")
	}
}

// TestResumeCompletedRunIsNoop re-runs a finished sweep with Resume: all
// points skip and the artifacts are untouched.
func TestResumeCompletedRunIsNoop(t *testing.T) {
	spec := Spec{Families: []string{"complete"}, Sizes: []int{12}, Trials: 2, Seed: 2}
	dir := t.TempDir()
	if _, err := Run(context.Background(), spec, Options{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	before := readTree(t, dir)
	resumedFlags := make(map[string]bool)
	rep, err := Run(context.Background(), spec, Options{Dir: dir, Resume: true,
		PointDone: func(res Result, resumed bool) { resumedFlags[res.ID] = resumed }})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != len(rep.Results) {
		t.Fatalf("resumed %d of %d points", rep.Resumed, len(rep.Results))
	}
	for id, resumed := range resumedFlags {
		if !resumed {
			t.Fatalf("point %s was recomputed", id)
		}
	}
	if !reflect.DeepEqual(before, readTree(t, dir)) {
		t.Fatal("no-op resume modified artifacts")
	}
}

func TestArtifactGuards(t *testing.T) {
	spec := Spec{Families: []string{"complete"}, Sizes: []int{12}, Trials: 2, Seed: 2}
	dir := t.TempDir()
	if _, err := Run(context.Background(), spec, Options{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	// Re-running into an occupied dir without Resume is refused.
	if _, err := Run(context.Background(), spec, Options{Dir: dir}); err == nil ||
		!strings.Contains(err.Error(), "resume") {
		t.Fatalf("overwrite guard failed: %v", err)
	}
	// Resuming a different spec is refused.
	other := spec
	other.Seed = 99
	if _, err := Run(context.Background(), other, Options{Dir: dir, Resume: true}); err == nil ||
		!strings.Contains(err.Error(), "manifest") {
		t.Fatalf("spec-mismatch guard failed: %v", err)
	}
	// A corrupt point record is an error, not a silent recompute.
	recs, err := filepath.Glob(filepath.Join(dir, pointsDir, "*.json"))
	if err != nil || len(recs) == 0 {
		t.Fatalf("no point records: %v", err)
	}
	if err := os.WriteFile(recs[0], []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), spec, Options{Dir: dir, Resume: true}); err == nil ||
		!strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt-record guard failed: %v", err)
	}
}

// TestPointSeedStability: a point's seed depends on its identity, not
// its position, so adding a size upstream does not disturb existing
// points.
func TestPointSeedStability(t *testing.T) {
	spec := smallSpec()
	pts, err := spec.Points()
	if err != nil {
		t.Fatal(err)
	}
	grown := spec
	grown.Sizes = append([]int{12}, spec.Sizes...)
	grownPts, err := grown.Points()
	if err != nil {
		t.Fatal(err)
	}
	bySeed := make(map[string]uint64)
	for _, pt := range grownPts {
		bySeed[pt.ID] = pt.Seed
	}
	for _, pt := range pts {
		if got, ok := bySeed[pt.ID]; !ok || got != pt.Seed {
			t.Fatalf("point %s seed changed after grid edit: %d vs %d", pt.ID, pt.Seed, got)
		}
	}
}

func TestRunPointErrorNamesPoint(t *testing.T) {
	// A 1-round cap cannot cover K_16, so the point must fail with its ID.
	spec := Spec{Families: []string{"complete"}, Sizes: []int{16}, Trials: 2, Seed: 1, MaxRounds: 1}
	_, err := Run(context.Background(), spec, Options{})
	if err == nil || !strings.Contains(err.Error(), "cobra-complete-n16") {
		t.Fatalf("err = %v, want point ID context", err)
	}
}

// TestGraphSeedSharedAcrossProcesses pins the topology-seed contract:
// every point on the same family/size/degree carries the same GraphSeed
// (so process comparisons are paired on one realised graph and a cache
// can serve the whole fan-out), while distinct topologies differ.
func TestGraphSeedSharedAcrossProcesses(t *testing.T) {
	pts, err := testSpec().Points()
	if err != nil {
		t.Fatal(err)
	}
	byTopology := make(map[string]uint64)
	seeds := make(map[uint64]bool)
	for _, pt := range pts {
		topo := pt.topologyID()
		if pt.GraphSeed == 0 {
			t.Fatalf("point %s has zero graph seed", pt.ID)
		}
		if prev, ok := byTopology[topo]; ok {
			if prev != pt.GraphSeed {
				t.Fatalf("topology %s has two graph seeds: %d and %d", topo, prev, pt.GraphSeed)
			}
			continue
		}
		if seeds[pt.GraphSeed] {
			t.Fatalf("distinct topologies share graph seed %d", pt.GraphSeed)
		}
		seeds[pt.GraphSeed] = true
		byTopology[topo] = pt.GraphSeed
	}
	// testSpec: rand-reg × 2 degrees × 2 sizes + complete × 2 sizes = 6.
	if len(byTopology) != 6 {
		t.Fatalf("got %d topologies, want 6", len(byTopology))
	}
}

// TestGraphCacheEffective pins the acceptance criterion: with a shared
// cache, one sweep builds each topology once (misses == topologies,
// hits == points − topologies), a re-run of the same point set is all
// hits, and the report is byte-identical to an uncached run.
func TestGraphCacheEffective(t *testing.T) {
	spec := testSpec()
	pts, err := spec.Points()
	if err != nil {
		t.Fatal(err)
	}
	topologies := make(map[string]bool)
	for _, pt := range pts {
		topologies[pt.topologyID()] = true
	}

	uncached, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}

	cache := graphcache.New(0)
	cached, err := Run(context.Background(), spec, Options{GraphCache: cache, PointWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if reportJSON(t, uncached) != reportJSON(t, cached) {
		t.Fatal("cache changed the results")
	}
	st := cache.Stats()
	if int(st.Misses) != len(topologies) {
		t.Fatalf("first run built %d graphs, want one per topology (%d)", st.Misses, len(topologies))
	}
	if int(st.Hits) != len(pts)-len(topologies) {
		t.Fatalf("first run hit %d times, want %d", st.Hits, len(pts)-len(topologies))
	}

	// Re-running the same point set rebuilds nothing.
	again, err := Run(context.Background(), spec, Options{GraphCache: cache, PointWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reportJSON(t, cached) != reportJSON(t, again) {
		t.Fatal("re-run with warm cache changed the results")
	}
	st2 := cache.Stats()
	if st2.Misses != st.Misses {
		t.Fatalf("warm re-run rebuilt graphs: %d misses, want still %d", st2.Misses, st.Misses)
	}
	if int(st2.Hits) != int(st.Hits)+len(pts) {
		t.Fatalf("warm re-run hit %d times total, want %d", st2.Hits, int(st.Hits)+len(pts))
	}
}

// TestRunCancellationIsPrompt submits a grid whose single point would run
// a very long trial and cancels immediately: Run must return the
// cancellation error without waiting for the trial to finish.
func TestRunCancellationIsPrompt(t *testing.T) {
	// kwalk K=1 on a 2^20-cycle covers in Θ(n²) ≈ 10^12 rounds per
	// trial; with a 2^40 round cap the single trial would run for hours
	// uncancelled, so only mid-trial cancellation can end this promptly.
	spec := Spec{
		Families:   []string{"cycle"},
		Sizes:      []int{1 << 20},
		Processes:  []string{ProcKWalk},
		Branchings: []core.Branching{{K: 1}},
		Trials:     4,
		Seed:       3,
		MaxRounds:  1 << 40,
	}
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := Run(ctx, spec, Options{})
	if err == nil {
		t.Fatal("cancelled run should fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v — trial did not stop promptly", elapsed)
	}
}
