package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"
)

// Artifact layout inside Options.Dir:
//
//	manifest.json      version + normalised spec + point IDs, written
//	                   before any point runs; a resume must match it
//	                   byte for byte.
//	points/<id>.json   one Result per completed point, written
//	                   atomically as each point finishes.
//	results.ndjson     all point records in expansion order, written on
//	                   completion by concatenating the point files — so
//	                   a resumed run reproduces an uninterrupted run's
//	                   bytes exactly.
const (
	manifestName = "manifest.json"
	pointsDir    = "points"
	resultsName  = "results.ndjson"

	// manifestVersion guards the artifact layout; bump on incompatible
	// changes so stale dirs fail loudly instead of resuming wrongly.
	// v2: points carry graph_seed (graphs keyed on topology, not point).
	// v3: pluggable metrics — specs carry a metric set, records hold
	// per-metric summaries plus optional trajectory blocks.
	manifestVersion = 3
)

// Hash returns a short stable fingerprint of the normalised spec plus
// the artifact layout version: equal exactly when two specs expand to
// the same points and their completed artifacts are byte-identical.
// The serving layer uses it as the ETag on completed-result reads, so
// identical sweep requests from many clients collapse onto one cached
// artifact read (and 304 on revalidation) the way the graph cache
// collapses graph builds.
func (s Spec) Hash() string {
	blob, err := json.Marshal(s.withDefaults())
	if err != nil {
		// Spec holds only plain marshallable fields; this cannot fail.
		panic(fmt.Sprintf("sweep: encoding spec for hash: %v", err))
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d:", manifestVersion)
	h.Write(blob)
	return strconv.FormatUint(h.Sum64(), 16)
}

// manifest pins a sweep to its artifact directory.
type manifest struct {
	Version int      `json:"version"`
	Spec    Spec     `json:"spec"`
	Points  []string `json:"points"`
}

type artifacts struct {
	dir string
}

// openArtifacts prepares dir for the sweep: it creates the layout and
// writes the manifest, or — when a manifest already exists — verifies it
// matches so a resume cannot silently mix two different sweeps.
func openArtifacts(dir string, spec Spec, pts []Point, resume bool) (*artifacts, error) {
	if err := os.MkdirAll(filepath.Join(dir, pointsDir), 0o755); err != nil {
		return nil, fmt.Errorf("sweep: creating artifact dir: %w", err)
	}
	ids := make([]string, len(pts))
	for i, pt := range pts {
		ids[i] = pt.ID
	}
	want, err := json.MarshalIndent(manifest{Version: manifestVersion, Spec: spec, Points: ids}, "", "  ")
	if err != nil {
		return nil, err
	}
	want = append(want, '\n')

	path := filepath.Join(dir, manifestName)
	existing, err := os.ReadFile(path)
	switch {
	case err == nil:
		if !resume {
			return nil, fmt.Errorf("sweep: %s already holds a sweep manifest; pass resume to continue it or use a fresh dir", dir)
		}
		if !bytes.Equal(existing, want) {
			return nil, fmt.Errorf("sweep: manifest in %s does not match this spec; refusing to mix sweeps", dir)
		}
	case os.IsNotExist(err):
		if err := writeFileAtomic(path, want); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("sweep: reading manifest: %w", err)
	}
	return &artifacts{dir: dir}, nil
}

func (a *artifacts) pointPath(id string) string {
	return filepath.Join(a.dir, pointsDir, id+".json")
}

// load returns the persisted Result for pt, if present. A record that
// fails to parse or names a different point is an error, not a silent
// recompute — delete the file to recompute the point.
func (a *artifacts) load(pt Point) (Result, bool, error) {
	path := a.pointPath(pt.ID)
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return Result{}, false, nil
	}
	if err != nil {
		return Result{}, false, fmt.Errorf("sweep: reading %s: %w", path, err)
	}
	var res Result
	if err := json.Unmarshal(blob, &res); err != nil {
		return Result{}, false, fmt.Errorf("sweep: corrupt point record %s (delete it to recompute): %w", path, err)
	}
	if res.ID != pt.ID || res.Index != pt.Index {
		return Result{}, false, fmt.Errorf("sweep: point record %s names %s[%d], expected %s[%d]",
			path, res.ID, res.Index, pt.ID, pt.Index)
	}
	if res.GraphSeed != pt.GraphSeed {
		return Result{}, false, fmt.Errorf("sweep: point record %s was computed with graph seed %d, expected %d (stale artifact layout? delete it to recompute)",
			path, res.GraphSeed, pt.GraphSeed)
	}
	if err := res.checkMetrics(pt.Metrics); err != nil {
		return Result{}, false, fmt.Errorf("sweep: point record %s: %w (delete it to recompute)", path, err)
	}
	res.Point.Metrics = pt.Metrics // not serialised; restore for in-memory consumers
	return res, true, nil
}

// save persists one completed point atomically.
func (a *artifacts) save(res Result) error {
	blob, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("sweep: encoding point %s: %w", res.ID, err)
	}
	return writeFileAtomic(a.pointPath(res.ID), append(blob, '\n'))
}

// finish writes results.ndjson by concatenating the point records in
// expansion order. Using the persisted bytes (rather than re-encoding
// in-memory results) guarantees a resumed run's final artifacts are
// byte-identical to an uninterrupted run's.
func (a *artifacts) finish(pts []Point) error {
	var buf bytes.Buffer
	for _, pt := range pts {
		blob, err := os.ReadFile(a.pointPath(pt.ID))
		if err != nil {
			return fmt.Errorf("sweep: assembling results: %w", err)
		}
		buf.Write(blob)
	}
	return writeFileAtomic(filepath.Join(a.dir, resultsName), buf.Bytes())
}

// writeFileAtomic writes via a temp file + rename, so readers (and
// resumes after a kill) never observe a partial record.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("sweep: writing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("sweep: committing %s: %w", path, err)
	}
	return nil
}
