package sweep

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// snapSpec is a small trajectory-enabled grid: two points so callback
// interleaving is exercised, with enough trials for several snapshots
// at a 1ns interval (which fires on every fold).
func snapSpec() Spec {
	return Spec{
		Name:      "snap",
		Families:  []string{"rand-reg"},
		Sizes:     []int{32},
		Degrees:   []int{4},
		Processes: []string{ProcCobra, ProcBIPS},
		Metrics:   []string{"rounds", "transmissions", "coverage"},
		Trials:    8,
		Seed:      5,
		MaxRounds: 1 << 14,
	}
}

func TestSnapshotHookDelivers(t *testing.T) {
	var (
		mu    sync.Mutex
		snaps []Snapshot
	)
	rep, err := Run(context.Background(), snapSpec(), Options{
		TrialWorkers:     2,
		Snapshot:         func(s Snapshot) { mu.Lock(); snaps = append(snaps, s); mu.Unlock() },
		SnapshotInterval: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots delivered at a 1ns interval")
	}
	lastTrials := make(map[string]int)
	for _, s := range snaps {
		if s.Trials < 1 || s.Trials > s.Point.Trials {
			t.Fatalf("snapshot for %s has trials %d outside [1, %d]", s.Point.ID, s.Trials, s.Point.Trials)
		}
		if s.Trials < lastTrials[s.Point.ID] {
			t.Fatalf("snapshot trials went backwards for %s: %d after %d", s.Point.ID, s.Trials, lastTrials[s.Point.ID])
		}
		lastTrials[s.Point.ID] = s.Trials
		for _, name := range []string{"rounds", "transmissions"} {
			d, ok := s.Metrics[name]
			if !ok {
				t.Fatalf("snapshot for %s lacks scalar metric %q", s.Point.ID, name)
			}
			if d.N != s.Trials {
				t.Fatalf("snapshot for %s: metric %q has N=%d, want %d", s.Point.ID, name, d.N, s.Trials)
			}
		}
		tr, ok := s.Trajectories["coverage"]
		if !ok {
			t.Fatalf("snapshot for %s lacks trajectory metric", s.Point.ID)
		}
		if len(tr.Rounds) == 0 || tr.N[0] != s.Trials {
			t.Fatalf("snapshot for %s: trajectory has %d columns, N[0]=%v, want N[0]=%d",
				s.Point.ID, len(tr.Rounds), tr.N, s.Trials)
		}
	}
	for _, res := range rep.Results {
		if lastTrials[res.ID] == 0 {
			t.Fatalf("point %s delivered no snapshots", res.ID)
		}
	}
}

// TestSnapshotDoesNotChangeResults is the determinism half of the
// contract: enabling snapshots (at any interval, any worker count)
// must not move a byte of the results.
func TestSnapshotDoesNotChangeResults(t *testing.T) {
	encode := func(opts Options) string {
		rep, err := Run(context.Background(), snapSpec(), opts)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(rep.Results)
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}
	base := encode(Options{TrialWorkers: 1})
	withSnaps := encode(Options{
		TrialWorkers: 4, PointWorkers: 2,
		Snapshot:         func(Snapshot) {},
		SnapshotInterval: time.Nanosecond,
	})
	if base != withSnaps {
		t.Fatal("snapshot hook changed the results")
	}
}

// TestSnapshotSerialisedWithLifecycle pins the ordering contract:
// snapshots for a point arrive only between its PointStart and its
// PointDone, even with concurrent point workers.
func TestSnapshotSerialisedWithLifecycle(t *testing.T) {
	var (
		mu      sync.Mutex
		started = make(map[string]bool)
		done    = make(map[string]bool)
	)
	_, err := Run(context.Background(), snapSpec(), Options{
		PointWorkers: 2,
		PointStart: func(pt Point) {
			mu.Lock()
			started[pt.ID] = true
			mu.Unlock()
		},
		PointDone: func(res Result, resumed bool) {
			mu.Lock()
			done[res.ID] = true
			mu.Unlock()
		},
		Snapshot: func(s Snapshot) {
			mu.Lock()
			defer mu.Unlock()
			if !started[s.Point.ID] {
				t.Errorf("snapshot for %s before its PointStart", s.Point.ID)
			}
			if done[s.Point.ID] {
				t.Errorf("snapshot for %s after its PointDone", s.Point.ID)
			}
		},
		SnapshotInterval: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpecHash(t *testing.T) {
	base := snapSpec()
	h := base.Hash()
	if h == "" {
		t.Fatal("empty hash")
	}
	if again := snapSpec().Hash(); again != h {
		t.Fatalf("hash not stable: %s vs %s", h, again)
	}
	// Normalisation: a spec with its defaults spelled out hashes the
	// same as one that leaves them implicit.
	explicit := base
	explicit.MaxRounds = 1 << 14
	if explicit.Hash() != h {
		t.Fatal("explicit defaults changed the hash")
	}
	implicitMetrics := base
	implicitMetrics.Metrics = nil
	defaulted := base
	defaulted.Metrics = DefaultMetrics()
	if implicitMetrics.Hash() != defaulted.Hash() {
		t.Fatal("defaulted metric set hashes differently from implicit")
	}
	// Any material change moves the hash.
	for name, mut := range map[string]func(*Spec){
		"seed":    func(s *Spec) { s.Seed++ },
		"trials":  func(s *Spec) { s.Trials++ },
		"sizes":   func(s *Spec) { s.Sizes = []int{64} },
		"metrics": func(s *Spec) { s.Metrics = []string{"rounds"} },
	} {
		s := snapSpec()
		mut(&s)
		if s.Hash() == h {
			t.Errorf("%s change did not move the hash", name)
		}
	}
}
