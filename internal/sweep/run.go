package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/graphcache"
	"cobrawalk/internal/process"
	"cobrawalk/internal/rng"
	"cobrawalk/internal/sim"
	"cobrawalk/internal/spectral"
	"cobrawalk/internal/stats"
)

// graphStream is the rng stream index reserved for graph construction.
// Trial i of a point uses stream i, so the maximum index can never
// collide with a trial stream.
const graphStream = ^uint64(0)

// Options configures a Run without affecting what is computed: every
// field may change between an interrupted run and its resume and the
// results stay byte-identical.
type Options struct {
	// Dir is the artifact directory: a manifest pinning the spec, one
	// JSON record per completed point under points/, and results.ndjson
	// (all records in expansion order) on completion. Empty = in-memory
	// only.
	Dir string
	// Resume continues a previous run into Dir: points whose records
	// already exist are loaded instead of recomputed. The manifest must
	// match the spec.
	Resume bool
	// PointWorkers bounds how many points run concurrently (default 1).
	PointWorkers int
	// TrialWorkers bounds the sim worker pool inside each point
	// (default: the MaxProcs budget).
	TrialWorkers int
	// KernelWorkers bounds the intra-trial worker count of kernel
	// processes (cobra-par, bips-par; process.Info.Kernel). Defaults to
	// the budget slack: MaxProcs / effective trial workers, so a
	// single-trial point gets the whole budget and a wide ensemble gets
	// one kernel worker per trial — trialWorkers × kernelWorkers never
	// exceeds MaxProcs unless both knobs are set explicitly. Like every
	// Options field it cannot affect results: kernel results are
	// byte-identical for every worker count.
	KernelWorkers int
	// MaxProcs is the CPU budget the two worker knobs above are resolved
	// against (default GOMAXPROCS). The server sets it to its per-job
	// share (GOMAXPROCS / MaxConcurrent) so co-scheduled jobs don't
	// oversubscribe the machine.
	MaxProcs int
	// PointStart, when non-nil, is called as a worker begins computing a
	// point. Resumed points skip it — they are loaded, not computed.
	// Calls are serialised with each other and with PointDone, so a
	// start/done pair for one point never interleaves observably. Like
	// every Options field it cannot affect results: the hook observes
	// scheduling, the random streams never see it.
	PointStart func(pt Point)
	// PointDone, when non-nil, is called once per completed point —
	// resumed points first, in expansion order, then live points as
	// they finish. Calls are serialised.
	PointDone func(res Result, resumed bool)
	// Snapshot, when non-nil, receives periodic mid-ensemble digest
	// snapshots of each running point — partial summaries over the
	// trials folded so far, at most one delivery per SnapshotInterval
	// per point. Calls are serialised with PointStart and PointDone.
	// Resumed points deliver no snapshots (they are loaded, not run).
	// Like every Options field it cannot affect results: snapshots
	// read shadow accumulators outside the reduction tree and the
	// random streams never see them (see snapshot.go).
	Snapshot func(Snapshot)
	// SnapshotInterval spaces Snapshot deliveries per running point
	// (<= 0 = DefaultSnapshotInterval).
	SnapshotInterval time.Duration
	// GraphCache, when non-nil, serves graph builds across points (and,
	// for a long-lived cache, across runs): points sharing a topology and
	// GraphSeed reuse one built graph instead of rebuilding it. Like
	// every Options field it cannot affect results — a cached graph is
	// byte-for-byte the graph a rebuild would produce.
	GraphCache *graphcache.Cache
}

// Result is one completed point: the point identity plus the realised
// graph and the streamed ensemble digests, one per requested metric.
type Result struct {
	Point
	// GraphN is the realised vertex count (generators round the target
	// size); GraphDegree is the realised degree, 0 for irregular graphs.
	GraphN      int `json:"graph_n"`
	GraphDegree int `json:"graph_degree,omitempty"`
	// Lambda is λ_max of the realised graph when Spec.MeasureLambda was
	// set, else 0.
	Lambda float64 `json:"lambda,omitempty"`
	// Metrics holds one ensemble summary per requested scalar metric,
	// keyed by registry name ("rounds" is the process's time metric:
	// cover time for cobra, infection time for bips, rounds to inform
	// all for the baselines; "transmissions" counts messages).
	Metrics map[string]stats.DigestSummary `json:"metrics"`
	// Trajectories holds one per-round quantile-band block per requested
	// trajectory metric, keyed by registry name.
	Trajectories map[string]stats.TrajectorySummary `json:"trajectories,omitempty"`
}

// Metric returns the named scalar metric's ensemble summary, zero-valued
// (N == 0) when the metric was not requested.
func (r Result) Metric(name string) stats.DigestSummary { return r.Metrics[name] }

// HasMetric reports whether the named scalar metric was recorded.
func (r Result) HasMetric(name string) bool {
	_, ok := r.Metrics[name]
	return ok
}

// Trajectory returns the named trajectory metric's quantile-band block.
func (r Result) Trajectory(name string) (stats.TrajectorySummary, bool) {
	t, ok := r.Trajectories[name]
	return t, ok
}

// checkMetrics verifies the result records exactly the wanted metric set
// — the resume guard against mixing records from sweeps with different
// metric selections.
func (r Result) checkMetrics(want []string) error {
	have := make(map[string]bool, len(r.Metrics)+len(r.Trajectories))
	for name := range r.Metrics {
		have[name] = true
	}
	for name := range r.Trajectories {
		have[name] = true
	}
	for _, name := range want {
		if !have[name] {
			return fmt.Errorf("record lacks metric %q", name)
		}
		delete(have, name)
	}
	for name := range have {
		return fmt.Errorf("record holds unexpected metric %q", name)
	}
	return nil
}

// Report is the outcome of a Run.
type Report struct {
	// Spec is the normalised spec the points expanded from.
	Spec Spec `json:"spec"`
	// Results holds one Result per point, in expansion order.
	Results []Result `json:"results"`
	// Resumed counts the points loaded from a prior run's artifacts.
	Resumed int `json:"resumed,omitempty"`
}

// Run expands spec and executes every point across a worker pool. With
// Options.Dir set, completed points persist immediately and
// Options.Resume skips points already on disk; see Options. The report
// — and, with Dir set, every artifact byte — is independent of the
// worker counts and of how a run was split by interruptions.
func Run(ctx context.Context, spec Spec, opts Options) (*Report, error) {
	spec = spec.withDefaults()
	pts, err := spec.Points()
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	var art *artifacts
	if opts.Dir != "" {
		art, err = openArtifacts(opts.Dir, spec, pts, opts.Resume)
		if err != nil {
			return nil, err
		}
	}

	var cbMu sync.Mutex // serialises PointStart/PointDone across point workers
	notify := func(res Result, resumed bool) {
		if opts.PointDone == nil {
			return
		}
		cbMu.Lock()
		defer cbMu.Unlock()
		opts.PointDone(res, resumed)
	}
	notifyStart := func(pt Point) {
		if opts.PointStart == nil {
			return
		}
		cbMu.Lock()
		defer cbMu.Unlock()
		opts.PointStart(pt)
	}
	var snap func(Snapshot)
	if opts.Snapshot != nil {
		snap = func(s Snapshot) {
			cbMu.Lock()
			defer cbMu.Unlock()
			opts.Snapshot(s)
		}
	}

	results := make([]Result, len(pts))
	var todo []int
	resumed := 0
	for i, pt := range pts {
		if art != nil && opts.Resume {
			res, ok, err := art.load(pt)
			if err != nil {
				return nil, err
			}
			if ok {
				results[i] = res
				resumed++
				notify(res, true)
				continue
			}
		}
		todo = append(todo, i)
	}

	workers := opts.PointWorkers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(todo) {
		workers = len(todo)
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if cctx.Err() != nil {
					return
				}
				k := int(next.Add(1) - 1)
				if k >= len(todo) {
					return
				}
				i := todo[k]
				notifyStart(pts[i])
				res, err := runPoint(cctx, pts[i], opts.budget(), opts.GraphCache, snap, opts.SnapshotInterval)
				if err != nil {
					fail(fmt.Errorf("sweep: point %s: %w", pts[i].ID, err))
					return
				}
				if art != nil {
					if err := art.save(res); err != nil {
						fail(err)
						return
					}
				}
				results[i] = res
				notify(res, false)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sweep: cancelled: %w", err)
	}
	if art != nil {
		if err := art.finish(pts); err != nil {
			return nil, err
		}
	}
	return &Report{Spec: spec, Results: results, Resumed: resumed}, nil
}

// trialOut is one trial's raw material for the metric registry: the
// driven run's result plus the worker's collector (nil when no requested
// metric observes rounds). The collector's buffers are only valid until
// the worker's next trial, so Fold must consume them immediately — the
// sim layer guarantees Fold runs before the worker starts another trial.
type trialOut struct {
	res process.Result
	col *process.Collector
}

// pointAcc streams a point's ensemble: one digest per requested scalar
// metric and one trajectory digest per requested trajectory metric, both
// in spec order.
type pointAcc struct {
	scalars []*stats.Digest
	trajs   []*stats.TrajectoryDigest
}

// pointReducer folds trialOuts into a pointAcc through the metric
// registry. Merges run in the sim layer's fixed shard order, so the
// ensemble is independent of the trial worker count.
func pointReducer(scalars, trajs []MetricInfo) sim.Reducer[trialOut, pointAcc] {
	return sim.Reducer[trialOut, pointAcc]{
		New: func() pointAcc {
			acc := pointAcc{
				scalars: make([]*stats.Digest, len(scalars)),
				trajs:   make([]*stats.TrajectoryDigest, len(trajs)),
			}
			for i := range acc.scalars {
				acc.scalars[i] = stats.NewDigest()
			}
			for i := range acc.trajs {
				acc.trajs[i] = stats.NewTrajectoryDigest()
			}
			return acc
		},
		Fold: func(acc pointAcc, _ int, v trialOut) pointAcc {
			for i, m := range scalars {
				acc.scalars[i].Add(m.scalar(v.res, v.col))
			}
			for i, m := range trajs {
				acc.trajs[i].AddTrial(m.series(v.col))
			}
			return acc
		},
		Merge: func(into, from pointAcc) (pointAcc, error) {
			for i := range into.scalars {
				if err := into.scalars[i].Merge(from.scalars[i]); err != nil {
					return pointAcc{}, err
				}
			}
			for i := range into.trajs {
				if err := into.trajs[i].Merge(from.trajs[i]); err != nil {
					return pointAcc{}, err
				}
			}
			return into, nil
		},
	}
}

// workerBudget carries the Options parallelism knobs into runPoint; see
// resolve for how they become a per-point (trialWorkers, kernelWorkers)
// pair.
type workerBudget struct {
	trialWorkers, kernelWorkers, maxProcs int
}

// budget extracts the parallelism knobs from Options.
func (o Options) budget() workerBudget {
	return workerBudget{trialWorkers: o.TrialWorkers, kernelWorkers: o.KernelWorkers, maxProcs: o.MaxProcs}
}

// resolve turns the configured knobs into the effective worker counts
// for a point with the given trial count, under the anti-oversubscription
// invariant trialWorkers × kernelWorkers ≤ maxProcs: an explicit knob is
// respected and the defaulted side shrinks to the remaining slack, so a
// single-trial point on an idle daemon gets the whole budget as kernel
// workers while a wide ensemble gets one kernel worker per trial worker.
// Only an operator setting both knobs explicitly can oversubscribe.
// Worker counts are pure scheduling: they cannot affect results.
func (b workerBudget) resolve(trials int, kernel bool) (tw, kw int) {
	budget := b.maxProcs
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	if budget < 1 {
		budget = 1
	}
	kernelWorkers := b.kernelWorkers
	if !kernel {
		kernelWorkers = 1 // non-kernel processes have no intra-trial workers
	}
	clampT := func(w int) int {
		if w > trials {
			w = trials
		}
		if w < 1 {
			w = 1
		}
		return w
	}
	switch {
	case b.trialWorkers > 0 && kernelWorkers > 0:
		return clampT(b.trialWorkers), kernelWorkers
	case kernelWorkers > 0:
		// Kernel width pinned: the trial pool gets the slack.
		return clampT(budget / kernelWorkers), kernelWorkers
	case b.trialWorkers > 0:
		tw = clampT(b.trialWorkers)
	default:
		tw = clampT(budget)
	}
	kw = budget / tw
	if kw < 1 {
		kw = 1
	}
	return tw, kw
}

// runPoint builds the point's graph deterministically from the point's
// GraphSeed and streams its ensemble. It depends on nothing but pt and
// the worker budget and cache (which cannot affect the result: the
// graph is a pure function of family/size/degree/GraphSeed, so a cache
// hit returns exactly the graph a rebuild would).
func runPoint(ctx context.Context, pt Point, workers workerBudget, cache *graphcache.Cache, snap func(Snapshot), snapInterval time.Duration) (Result, error) {
	fam, err := LookupFamily(pt.Family)
	if err != nil {
		return Result{}, err
	}
	build := func() (*graph.Graph, error) {
		return fam.Build(pt.Size, pt.Degree, rng.NewStream(pt.GraphSeed, graphStream))
	}
	var g *graph.Graph
	if cache != nil {
		g, err = cache.GetOrBuild(graphcache.Key{
			Family: pt.Family, Size: pt.Size, Degree: pt.Degree, Seed: pt.GraphSeed,
		}, build)
	} else {
		g, err = build()
	}
	if err != nil {
		return Result{}, fmt.Errorf("building graph: %w", err)
	}
	res := Result{Point: pt, GraphN: g.N()}
	if deg, err := g.Regularity(); err == nil {
		res.GraphDegree = deg
	}
	if pt.MeasureLambda {
		res.Lambda, err = spectral.LambdaMax(g, spectral.Options{Tol: 1e-9, MaxIter: 20000})
		if err != nil {
			return Result{}, fmt.Errorf("measuring lambda: %w", err)
		}
	}

	scalars, trajs, collects, err := pointMetrics(pt.Metrics)
	if err != nil {
		return Result{}, err
	}
	acc, err := runEnsemble(ctx, g, pt, workers, scalars, trajs, collects, snap, snapInterval)
	if err != nil {
		return Result{}, err
	}
	res.Metrics = make(map[string]stats.DigestSummary, len(scalars))
	for i, m := range scalars {
		if res.Metrics[m.Name], err = acc.scalars[i].Summary(); err != nil {
			return Result{}, fmt.Errorf("summarising %s: %w", m.Name, err)
		}
	}
	if len(trajs) > 0 {
		res.Trajectories = make(map[string]stats.TrajectorySummary, len(trajs))
		for i, m := range trajs {
			if res.Trajectories[m.Name], err = acc.trajs[i].Summary(); err != nil {
				return Result{}, fmt.Errorf("summarising %s: %w", m.Name, err)
			}
		}
	}
	return res, nil
}

// trialState is one trial worker's reusable equipment: a Process
// (constructed once, Reset per trial) and, when any requested metric
// observes rounds, a Collector attached as its observer.
type trialState struct {
	p   process.Process
	col *process.Collector
}

// runEnsemble streams the point's ensemble through the process registry
// and the metric registry: the point's process name selects a Factory,
// each trial worker owns one reusable Process plus (when needed) one
// reusable Collector — no per-trial graph-sized allocations — and the
// requested metrics decide what each trial folds into the point
// accumulator. Adding a process to internal/process makes it sweepable,
// and adding a metric to the registry in metrics.go makes it recordable,
// with no change here. All runs start from vertex 0: the sweep families
// are vertex-transitive or statistically symmetric, so vertex 0 is
// representative of the worst-case start. Attaching a collector never
// touches the random stream, so the metric set cannot change any drawn
// trial.
func runEnsemble(ctx context.Context, g *graph.Graph, pt Point, workers workerBudget, scalars, trajs []MetricInfo, collects bool, snap func(Snapshot), snapInterval time.Duration) (pointAcc, error) {
	info, err := process.Lookup(pt.Process)
	if err != nil {
		return pointAcc{}, err
	}
	trialWorkers, kernelWorkers := workers.resolve(pt.Trials, info.Kernel)
	// Validate construction once so the per-worker factory cannot fail.
	// The probe is single-worker so validating never spins up a pool.
	if _, err := info.New(g, process.Config{Branching: pt.Branching, KernelWorkers: 1}); err != nil {
		return pointAcc{}, err
	}
	spec := sim.Spec{Trials: pt.Trials, Seed: pt.Seed, Workers: trialWorkers}
	start := []int32{0} // hoisted so the per-trial Run call allocates nothing
	red := snapshotReducer(pointReducer(scalars, trajs), pt, scalars, trajs, snap, snapInterval)
	return sim.ReduceWithState(ctx, spec, red,
		func() trialState {
			cfg := process.Config{Branching: pt.Branching, KernelWorkers: kernelWorkers}
			var col *process.Collector
			if collects {
				col = process.NewCollector(g.N())
				cfg.Observer = col.Observe
			}
			p, err := info.New(g, cfg)
			if err != nil {
				panic(err) // unreachable: validated above
			}
			return trialState{p: p, col: col}
		},
		func(st trialState, _ int, r *rng.Rand) (trialOut, error) {
			var out process.Result
			var err error
			if st.col != nil {
				out, err = process.RunCollect(ctx, st.p, st.col, r, pt.MaxRounds, start...)
			} else {
				out, err = process.RunContext(ctx, st.p, r, pt.MaxRounds, start...)
			}
			if err != nil {
				return trialOut{}, err
			}
			if !out.Done {
				return trialOut{}, fmt.Errorf("%s run hit round cap %d on %s", pt.Process, pt.MaxRounds, g.Name())
			}
			return trialOut{res: out, col: st.col}, nil
		})
}
