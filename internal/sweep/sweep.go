// Package sweep is the declarative parameter-sweep engine: a Spec names
// the axes of a grid — graph family, size, degree, process, branching —
// plus a metric set, and expands into a deterministic, ID-stamped list
// of Points; Run schedules the points across a worker pool, each point
// streaming its Monte-Carlo ensemble through sim.Reduce into
// constant-memory digests, one per requested metric (see metrics.go:
// scalar summaries like rounds and transmissions, and per-round
// trajectory quantile bands like coverage and frontier).
//
// With an artifact directory, every completed point is persisted as one
// JSON record plus a manifest that pins the spec, which makes interrupted
// sweeps resumable: re-running with Options.Resume skips points whose
// records already exist, and a completed resume is byte-identical to an
// uninterrupted run. Per-point results are independent of both the point
// and trial worker counts (the determinism contract of DESIGN.md §7):
// point seeds derive from the point identity, never from scheduling.
package sweep

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"cobrawalk/internal/core"
	"cobrawalk/internal/process"
)

// Process names accepted by Spec.Processes, aliased from the process
// registry — internal/process is the single source of truth; adding a
// process there makes it sweepable with no change here.
const (
	ProcCobra    = process.Cobra    // COBRA cover runs; Rounds = cover time
	ProcBIPS     = process.BIPS     // BIPS infection runs; Rounds = infection time
	ProcPush     = process.Push     // push rumour spreading; Rounds = rounds to inform all
	ProcPushPull = process.PushPull // push-pull rumour spreading
	ProcFlood    = process.Flood    // flooding (deterministic)
	ProcKWalk    = process.KWalk    // k independent random walks; Branching.K = walker count
	ProcCobraPar = process.CobraPar // cobra on the parallel intra-trial round kernel
	ProcBIPSPar  = process.BIPSPar  // bips on the parallel intra-trial round kernel
)

// Processes returns the registered process names in canonical order,
// delegating to the internal/process registry.
func Processes() []string { return process.Names() }

// processBranched reports whether the process has a branching factor —
// the Branchings axis collapses to a single point for those that do not.
func processBranched(name string) bool {
	info, err := process.Lookup(name)
	return err == nil && info.Branched
}

// DefaultMaxRounds caps point runs that do not set Spec.MaxRounds.
const DefaultMaxRounds = 1 << 20

// Spec declares a sweep grid. Points expands it into the cross product
// family × degree × size × process × branching, with the degree axis
// collapsed for families that take no degree and the branching axis
// collapsed for processes that do not branch. The JSON encoding is the
// file format cmd/sweep -spec reads and the manifest pins.
type Spec struct {
	// Name labels the sweep in manifests and summaries (optional).
	Name string `json:"name,omitempty"`
	// Families lists graph family names (see Families / LookupFamily).
	Families []string `json:"families"`
	// Sizes lists target vertex counts (generators round to their
	// natural lattice; the record carries the realised size).
	Sizes []int `json:"sizes"`
	// Degrees lists degrees for degree-parameterised families. Required
	// iff a degreed family is listed.
	Degrees []int `json:"degrees,omitempty"`
	// Processes lists process names (default: cobra).
	Processes []string `json:"processes,omitempty"`
	// Branchings lists branching factors for cobra/bips points
	// (default: the paper's k = 2).
	Branchings []core.Branching `json:"branchings,omitempty"`
	// Metrics lists the metric names to collect per point (see Metrics /
	// LookupMetric; default: rounds and transmissions). Scalar metrics
	// add a summary to every record; trajectory metrics add a per-round
	// quantile-band block. The metric set never affects the random
	// stream, so two sweeps differing only in Metrics draw identical
	// trials.
	Metrics []string `json:"metrics,omitempty"`
	// Trials is the ensemble size per point (must be >= 1).
	Trials int `json:"trials"`
	// Seed is the sweep master seed; every point derives its own seed
	// from it and the point identity.
	Seed uint64 `json:"seed"`
	// MaxRounds caps each trial (default DefaultMaxRounds). A trial that
	// hits the cap fails the point.
	MaxRounds int `json:"max_rounds,omitempty"`
	// MeasureLambda additionally computes λ_max of every point's graph.
	MeasureLambda bool `json:"measure_lambda,omitempty"`
}

// withDefaults fills the optional axes. Run and Points normalise through
// this, so the manifest records the explicit form.
func (s Spec) withDefaults() Spec {
	if len(s.Processes) == 0 {
		s.Processes = []string{ProcCobra}
	}
	if len(s.Branchings) == 0 {
		s.Branchings = []core.Branching{core.DefaultBranching}
	}
	if len(s.Metrics) == 0 {
		s.Metrics = DefaultMetrics()
	}
	if s.MaxRounds <= 0 {
		s.MaxRounds = DefaultMaxRounds
	}
	return s
}

func (s Spec) validate() error {
	if len(s.Families) == 0 {
		return fmt.Errorf("sweep: spec needs at least one family")
	}
	needDegrees := false
	for _, f := range s.Families {
		fam, err := LookupFamily(f)
		if err != nil {
			return err
		}
		needDegrees = needDegrees || fam.Degreed
	}
	if needDegrees && len(s.Degrees) == 0 {
		return fmt.Errorf("sweep: spec lists a degree-parameterised family but no degrees")
	}
	for _, d := range s.Degrees {
		if d < 1 {
			return fmt.Errorf("sweep: degree %d, need >= 1", d)
		}
	}
	if len(s.Sizes) == 0 {
		return fmt.Errorf("sweep: spec needs at least one size")
	}
	for _, n := range s.Sizes {
		if n < 2 {
			return fmt.Errorf("sweep: size %d, need >= 2", n)
		}
	}
	for _, p := range s.Processes {
		info, err := process.Lookup(p)
		if err != nil {
			return fmt.Errorf("sweep: unknown process %q (want one of %s)",
				p, strings.Join(Processes(), ", "))
		}
		if info.Branched && !info.AcceptsRho {
			for _, b := range s.Branchings {
				if b.Rho != 0 {
					return fmt.Errorf("sweep: process %q does not accept fractional branching (Rho = %v)", p, b.Rho)
				}
			}
		}
	}
	for _, b := range s.Branchings {
		if b.K < 1 {
			return fmt.Errorf("sweep: branching K = %d, need >= 1", b.K)
		}
		if b.Rho < 0 || b.Rho >= 1 {
			return fmt.Errorf("sweep: branching Rho = %v, need 0 <= Rho < 1", b.Rho)
		}
	}
	seenMetric := make(map[string]bool)
	for _, m := range s.Metrics {
		if _, err := LookupMetric(m); err != nil {
			return err
		}
		if seenMetric[m] {
			return fmt.Errorf("sweep: duplicate metric %q", m)
		}
		seenMetric[m] = true
	}
	if s.Trials < 1 {
		return fmt.Errorf("sweep: trials = %d, need >= 1", s.Trials)
	}
	return nil
}

// Point is one cell of the expanded grid: a fully-specified workload with
// a stable identity. ID and Seed depend only on the point's parameters —
// never on its position, the worker counts, or scheduling — so a point's
// result is reproducible in isolation.
type Point struct {
	// ID is the stable, filesystem-safe handle ("cobra-rand-reg-n4096-d8-k2").
	ID string `json:"id"`
	// Index is the position in expansion order.
	Index int `json:"index"`
	// Family and Size/Degree select the graph.
	Family string `json:"family"`
	Size   int    `json:"size"`
	Degree int    `json:"degree,omitempty"`
	// Process and Branching select the workload.
	Process   string         `json:"process"`
	Branching core.Branching `json:"branching"`
	// Trials, Seed and MaxRounds bound the ensemble. Seed is derived
	// from the spec seed and the point ID.
	Trials    int    `json:"trials"`
	Seed      uint64 `json:"seed"`
	MaxRounds int    `json:"max_rounds"`
	// Metrics carries the spec's metric set: what each trial records and
	// each record summarises. It never feeds the ID or the seeds, so
	// changing the metric set re-records the same draws. Not serialised:
	// in a Result the recorded summaries themselves carry the metric
	// names (and the manifest pins the spec), so the record stays
	// single-sourced.
	Metrics []string `json:"-"`
	// GraphSeed drives graph construction. It is derived from the spec
	// seed and the topology identity (family/size/degree) only — not the
	// process or branching — so every point on the same topology runs on
	// the same graph. That makes cross-process comparisons paired (same
	// realised expander, lower variance) and lets a graph cache serve one
	// build to the whole process × branching fan-out.
	GraphSeed uint64 `json:"graph_seed"`
	// MeasureLambda carries the spec's λ switch.
	MeasureLambda bool `json:"measure_lambda,omitempty"`
}

// fsSafe flattens every rune outside [A-Za-z0-9._-] to '_'. Point IDs
// become artifact file names (points/<id>.json), so family names with
// path structure — "file:/runs/g.csrg" — must collapse to one path
// component. Registry family names pass through unchanged, which keeps
// every existing ID (and therefore every derived seed) stable.
func fsSafe(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, s)
}

// id renders the canonical point handle from the axis values.
func (p Point) id() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s-%s-n%d", p.Process, fsSafe(p.Family), p.Size)
	if p.Degree > 0 {
		fmt.Fprintf(&sb, "-d%d", p.Degree)
	}
	if processBranched(p.Process) {
		fmt.Fprintf(&sb, "-k%d", p.Branching.K)
		if p.Branching.Rho != 0 {
			fmt.Fprintf(&sb, "-rho%s", strconv.FormatFloat(p.Branching.Rho, 'g', -1, 64))
		}
	}
	return sb.String()
}

// topologyID renders the graph-defining axes only ("rand-reg-n4096-d8")
// — the domain GraphSeed derives from and the graph cache keys on. It is
// a strict prefix-free namespace apart from point IDs (those lead with a
// process name, never a family name).
func (p Point) topologyID() string {
	if p.Degree > 0 {
		return fmt.Sprintf("%s-n%d-d%d", fsSafe(p.Family), p.Size, p.Degree)
	}
	return fmt.Sprintf("%s-n%d", fsSafe(p.Family), p.Size)
}

// pointSeed derives a point's master seed from the sweep seed and the
// point identity, so results survive grid edits that reorder points.
// The same derivation over topologyID yields GraphSeed.
func pointSeed(sweepSeed uint64, id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return sweepSeed ^ h.Sum64()
}

// Points expands the spec into its deterministic point list, ordered
// family → degree → size → process → branching, with collapsed axes (see
// Spec) and duplicate points rejected.
func (s Spec) Points() ([]Point, error) {
	s = s.withDefaults()
	if err := s.validate(); err != nil {
		return nil, err
	}
	var pts []Point
	seen := make(map[string]bool)
	for _, famName := range s.Families {
		fam, err := LookupFamily(famName)
		if err != nil {
			return nil, err
		}
		degrees := s.Degrees
		if !fam.Degreed {
			degrees = []int{0}
		}
		for _, deg := range degrees {
			for _, n := range s.Sizes {
				for _, proc := range s.Processes {
					branchings := s.Branchings
					if !processBranched(proc) {
						branchings = []core.Branching{{}}
					}
					for _, br := range branchings {
						pt := Point{
							Index:         len(pts),
							Family:        famName,
							Size:          n,
							Degree:        deg,
							Process:       proc,
							Branching:     br,
							Trials:        s.Trials,
							MaxRounds:     s.MaxRounds,
							Metrics:       s.Metrics,
							MeasureLambda: s.MeasureLambda,
						}
						pt.ID = pt.id()
						pt.Seed = pointSeed(s.Seed, pt.ID)
						pt.GraphSeed = pointSeed(s.Seed, pt.topologyID())
						if seen[pt.ID] {
							return nil, fmt.Errorf("sweep: duplicate point %s (repeated axis value?)", pt.ID)
						}
						seen[pt.ID] = true
						pts = append(pts, pt)
					}
				}
			}
		}
	}
	return pts, nil
}

// ParseBranchings parses the cmd/sweep branching grammar: a
// comma-separated list of items, each `K` or `K+RHO` — e.g. "2,1+0.5"
// means {K:2} and {K:1, Rho:0.5}.
func ParseBranchings(s string) ([]core.Branching, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []core.Branching
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		kStr, rhoStr, hasRho := strings.Cut(item, "+")
		k, err := strconv.Atoi(kStr)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad branching %q (want K or K+RHO): %w", item, err)
		}
		b := core.Branching{K: k}
		if hasRho {
			b.Rho, err = strconv.ParseFloat(rhoStr, 64)
			if err != nil {
				return nil, fmt.Errorf("sweep: bad branching %q (want K or K+RHO): %w", item, err)
			}
		}
		out = append(out, b)
	}
	return out, nil
}
