package sweep

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestMetricRegistry(t *testing.T) {
	want := []string{MetricRounds, MetricTransmissions, MetricPeakActive, MetricHalfCoverage, MetricCoverage, MetricFrontier}
	if got := MetricNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("MetricNames() = %v, want %v", got, want)
	}
	for _, name := range want {
		m, err := LookupMetric(name)
		if err != nil || m.Name != name || m.Summary == "" {
			t.Fatalf("incomplete registry entry for %s: %+v, %v", name, m, err)
		}
		if m.Trajectory && m.series == nil || !m.Trajectory && m.scalar == nil {
			t.Fatalf("%s: extractor does not match kind", name)
		}
	}
	if _, err := LookupMetric("latency"); err == nil || !strings.Contains(err.Error(), "unknown metric") {
		t.Fatalf("LookupMetric(latency) = %v", err)
	}
	if got, err := ParseMetrics(" rounds, coverage "); err != nil || !reflect.DeepEqual(got, []string{"rounds", "coverage"}) {
		t.Fatalf("ParseMetrics = %v, %v", got, err)
	}
	if got, err := ParseMetrics(""); err != nil || got != nil {
		t.Fatalf("empty ParseMetrics = %v, %v", got, err)
	}
	if _, err := ParseMetrics("rounds,latency"); err == nil {
		t.Fatal("unknown metric should fail to parse")
	}
}

func TestMetricSpecValidation(t *testing.T) {
	s := smallSpec()
	s.Metrics = []string{"rounds", "latency"}
	if _, err := s.Points(); err == nil || !strings.Contains(err.Error(), "unknown metric") {
		t.Fatalf("unknown metric: %v", err)
	}
	s.Metrics = []string{"rounds", "rounds"}
	if _, err := s.Points(); err == nil || !strings.Contains(err.Error(), "duplicate metric") {
		t.Fatalf("duplicate metric: %v", err)
	}
	// Defaults fill the canonical pair.
	s.Metrics = nil
	pts, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pts[0].Metrics, DefaultMetrics()) {
		t.Fatalf("default metrics = %v", pts[0].Metrics)
	}
}

// trajSpec exercises every registered metric on every registered process
// in one small grid.
func trajSpec() Spec {
	return Spec{
		Name:      "traj",
		Families:  []string{"rand-reg"},
		Sizes:     []int{32},
		Degrees:   []int{4},
		Processes: Processes(),
		Metrics:   MetricNames(),
		Trials:    6,
		Seed:      17,
		MaxRounds: 1 << 14,
	}
}

func TestTrajectoryMetricsRecorded(t *testing.T) {
	rep, err := Run(context.Background(), trajSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Results {
		for _, m := range []string{MetricRounds, MetricTransmissions, MetricPeakActive, MetricHalfCoverage} {
			if !res.HasMetric(m) || res.Metric(m).N != 6 {
				t.Fatalf("point %s: scalar %s missing or short: %+v", res.ID, m, res.Metric(m))
			}
		}
		rounds := res.Metric(MetricRounds)
		if peak := res.Metric(MetricPeakActive); peak.Max > float64(res.GraphN) {
			t.Fatalf("point %s: peak active %v exceeds n", res.ID, peak.Max)
		}
		if half := res.Metric(MetricHalfCoverage); half.Max > rounds.Max || half.Min < 0 {
			t.Fatalf("point %s: half-coverage %+v out of [0, rounds]", res.ID, half)
		}
		for _, m := range []string{MetricCoverage, MetricFrontier} {
			traj, ok := res.Trajectory(m)
			if !ok {
				t.Fatalf("point %s: no %s trajectory", res.ID, m)
			}
			if len(traj.Rounds) == 0 || traj.N[0] != 6 {
				t.Fatalf("point %s: degenerate %s trajectory %+v", res.ID, m, traj)
			}
			// Every trial completed, so the longest trial's last sampled
			// column exists and its p50 is within [1, n].
			last := len(traj.Rounds) - 1
			if traj.P50[last] < 1 || traj.P50[last] > float64(res.GraphN)*(1+2*0.01) {
				t.Fatalf("point %s: %s final p50 %v implausible", res.ID, m, traj.P50[last])
			}
		}
		// Coverage at the start state is the single start vertex.
		cov, _ := res.Trajectory(MetricCoverage)
		if cov.Mean[0] != 1 {
			t.Fatalf("point %s: coverage start column mean %v, want 1", res.ID, cov.Mean[0])
		}
	}
}

// TestTrajectoryWorkerIndependence is the acceptance pin: a
// trajectory-enabled sweep is byte-identical across trial and point
// worker counts.
func TestTrajectoryWorkerIndependence(t *testing.T) {
	base, err := Run(context.Background(), trajSpec(), Options{PointWorkers: 1, TrialWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), trajSpec(), Options{PointWorkers: 4, TrialWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if reportJSON(t, base) != reportJSON(t, parallel) {
		t.Fatal("trajectory-enabled report depends on worker counts")
	}
}

// TestMetricSetDoesNotChangeDraws pins that attaching collectors (and
// digesting extra metrics) cannot disturb the random stream: the rounds
// and transmissions summaries of a full-metrics sweep are byte-identical
// to a default-metrics sweep of the same spec.
func TestMetricSetDoesNotChangeDraws(t *testing.T) {
	full := trajSpec()
	lean := trajSpec()
	lean.Metrics = DefaultMetrics()
	repFull, err := Run(context.Background(), full, Options{TrialWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	repLean, err := Run(context.Background(), lean, Options{TrialWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, rf := range repFull.Results {
		rl := repLean.Results[i]
		if !reflect.DeepEqual(rf.Metric(MetricRounds), rl.Metric(MetricRounds)) ||
			!reflect.DeepEqual(rf.Metric(MetricTransmissions), rl.Metric(MetricTransmissions)) {
			t.Fatalf("point %s: metric set changed the canonical digests", rf.ID)
		}
	}
}

// TestTrajectoryResumeByteIdentical extends the resume contract to
// trajectory-enabled sweeps: kill mid-run, resume with different worker
// counts, and every artifact byte — trajectory blocks included — matches
// an uninterrupted run.
func TestTrajectoryResumeByteIdentical(t *testing.T) {
	spec := trajSpec()

	dirA := t.TempDir()
	repA, err := Run(context.Background(), spec, Options{Dir: dirA, PointWorkers: 2, TrialWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}

	dirB := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := 0
	if _, err := Run(ctx, spec, Options{
		Dir: dirB, PointWorkers: 1, TrialWorkers: 1,
		PointDone: func(Result, bool) {
			if done++; done == 2 {
				cancel()
			}
		},
	}); err == nil {
		t.Fatal("interrupted run should report an error")
	}

	repB, err := Run(context.Background(), spec, Options{Dir: dirB, Resume: true, PointWorkers: 3, TrialWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if repB.Resumed < 2 {
		t.Fatalf("resume loaded %d points, want >= 2", repB.Resumed)
	}
	treeA, treeB := readTree(t, dirA), readTree(t, dirB)
	if !reflect.DeepEqual(treeA, treeB) {
		for rel, want := range treeA {
			if got, ok := treeB[rel]; !ok || got != want {
				t.Fatalf("artifact %s differs between uninterrupted and resumed trajectory runs", rel)
			}
		}
		t.Fatal("artifact trees differ")
	}
	if reportJSON(t, repA) != reportJSON(t, repB) {
		t.Fatal("in-memory reports differ between uninterrupted and resumed trajectory runs")
	}
	// Records carry the trajectory blocks on disk.
	if !strings.Contains(treeA["results.ndjson"], `"trajectories"`) ||
		!strings.Contains(treeA["results.ndjson"], `"`+MetricCoverage+`"`) {
		t.Fatal("results.ndjson lacks trajectory blocks")
	}
}

// TestResumeRejectsDifferentMetricSet pins the per-record guard: a
// record computed under one metric set cannot silently satisfy a resume
// that expects another (the manifest catches whole-dir mixes; this
// catches hand-mixed records).
func TestResumeRejectsDifferentMetricSet(t *testing.T) {
	spec := Spec{Families: []string{"complete"}, Sizes: []int{12}, Trials: 2, Seed: 2}
	dir := t.TempDir()
	if _, err := Run(context.Background(), spec, Options{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	// Same grid, richer metrics: the manifest differs, so openArtifacts
	// refuses first.
	richer := spec
	richer.Metrics = []string{MetricRounds, MetricTransmissions, MetricCoverage}
	if _, err := Run(context.Background(), richer, Options{Dir: dir, Resume: true}); err == nil ||
		!strings.Contains(err.Error(), "manifest") {
		t.Fatalf("manifest guard: %v", err)
	}
	// Bypass the manifest by grafting the old record into a fresh richer
	// dir: the per-record metric guard must catch it.
	dir2 := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	Run(ctx, richer, Options{Dir: dir2}) // writes the manifest, computes nothing
	old := readTree(t, dir)
	for rel, blob := range old {
		if strings.HasPrefix(rel, "points/") {
			writeFileAtomic(filepath.Join(dir2, rel), []byte(blob))
		}
	}
	if _, err := Run(context.Background(), richer, Options{Dir: dir2, Resume: true}); err == nil ||
		!strings.Contains(err.Error(), "metric") {
		t.Fatalf("record metric guard: %v", err)
	}
}

// TestHalfCoverageMatchesCollector spot-checks a recorded scalar against
// a direct collected run: the sweep's half-coverage digest for a
// deterministic process (flood) equals the collector's answer.
func TestHalfCoverageMatchesCollector(t *testing.T) {
	spec := Spec{
		Families:  []string{"cycle"},
		Sizes:     []int{24},
		Processes: []string{ProcFlood},
		Metrics:   []string{MetricRounds, MetricHalfCoverage},
		Trials:    3,
		Seed:      5,
	}
	rep, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	// Flooding a C24 from one vertex reaches 2t+1 vertices after t
	// rounds; half coverage (12) lands at t = 6.
	half := res.Metric(MetricHalfCoverage)
	if half.Min != 6 || half.Max != 6 {
		t.Fatalf("flood half-coverage digest %+v, want exactly 6", half)
	}
}
