package sweep

import (
	"fmt"
	"strings"

	"cobrawalk/internal/process"
)

// Canonical metric names accepted by Spec.Metrics. The metric registry
// below is the single source of truth: adding a metric means adding one
// entry there, and the spec validation, the per-trial collection, the
// record schema and the CLI listings all pick it up.
const (
	// MetricRounds is the process's time metric per trial: cover time for
	// cobra, infection time for bips, rounds to inform all for the
	// baselines.
	MetricRounds = "rounds"
	// MetricTransmissions counts messages sent per trial.
	MetricTransmissions = "transmissions"
	// MetricPeakActive is the largest driving-set size per trial — the
	// peak COBRA frontier |C_t|, the peak infected set |A_t| for bips.
	MetricPeakActive = "peak-active"
	// MetricHalfCoverage is the first round at which the reached count
	// passes n/2 — the paper's growth-phase/finish-phase boundary signal.
	MetricHalfCoverage = "half-coverage"
	// MetricCoverage is a trajectory metric: the per-round reached-count
	// curve, digested into quantile bands over the ensemble.
	MetricCoverage = "coverage"
	// MetricFrontier is a trajectory metric: the per-round driving-set
	// curve (|C_t| for cobra, |A_t| for bips — the paper's phase plots).
	MetricFrontier = "frontier"
)

// MetricInfo is one metric registry entry.
type MetricInfo struct {
	// Name is the canonical metric name (flag- and JSON-safe).
	Name string
	// Trajectory reports whether the metric is a per-round series
	// digested into a trajectory block, rather than a per-trial scalar
	// digested into a summary.
	Trajectory bool
	// Collects reports whether the metric needs a process.Collector
	// attached to each trial. Rounds and transmissions come free from
	// the driven run's Result; everything else observes rounds.
	Collects bool
	// Summary is a one-line description for listings and flag help.
	Summary string

	// scalar extracts a per-trial scalar (Trajectory == false). The
	// collector is nil unless Collects.
	scalar func(res process.Result, c *process.Collector) float64
	// series returns the per-round series to digest (Trajectory == true).
	// The returned slice is owned by the collector and must be consumed
	// before the next trial.
	series func(c *process.Collector) []int
}

// metricRegistry holds the entries in canonical order.
var metricRegistry = []MetricInfo{
	{
		Name: MetricRounds, Summary: "per-trial completion time in rounds",
		scalar: func(res process.Result, _ *process.Collector) float64 { return float64(res.Rounds) },
	},
	{
		Name: MetricTransmissions, Summary: "per-trial messages sent",
		scalar: func(res process.Result, _ *process.Collector) float64 { return float64(res.Transmissions) },
	},
	{
		Name: MetricPeakActive, Collects: true, Summary: "per-trial peak driving-set size (|C_t| / |A_t|)",
		scalar: func(_ process.Result, c *process.Collector) float64 { return float64(c.PeakActive()) },
	},
	{
		Name: MetricHalfCoverage, Collects: true, Summary: "per-trial first round past n/2 reached",
		scalar: func(_ process.Result, c *process.Collector) float64 { return float64(c.HalfCoverageRound()) },
	},
	{
		Name: MetricCoverage, Trajectory: true, Collects: true,
		Summary: "trajectory: per-round reached count, quantile-banded over the ensemble",
		series:  func(c *process.Collector) []int { return c.Reached() },
	},
	{
		Name: MetricFrontier, Trajectory: true, Collects: true,
		Summary: "trajectory: per-round driving-set size, quantile-banded over the ensemble",
		series:  func(c *process.Collector) []int { return c.Active() },
	},
}

// Metrics returns the metric registry entries in canonical order.
func Metrics() []MetricInfo {
	return append([]MetricInfo(nil), metricRegistry...)
}

// MetricNames returns the registered metric names in canonical order.
func MetricNames() []string {
	out := make([]string, len(metricRegistry))
	for i, m := range metricRegistry {
		out[i] = m.Name
	}
	return out
}

// LookupMetric returns the registry entry for name.
func LookupMetric(name string) (MetricInfo, error) {
	for _, m := range metricRegistry {
		if m.Name == name {
			return m, nil
		}
	}
	return MetricInfo{}, fmt.Errorf("sweep: unknown metric %q (want one of %s)",
		name, strings.Join(MetricNames(), ", "))
}

// DefaultMetrics is the metric set used when a spec names none — the
// pre-metrics-layer record shape.
func DefaultMetrics() []string {
	return []string{MetricRounds, MetricTransmissions}
}

// ParseMetrics parses the cmd/sweep -metrics grammar: a comma-separated
// list of registry names. Empty input means nil (spec defaults apply).
func ParseMetrics(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []string
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if _, err := LookupMetric(item); err != nil {
			return nil, err
		}
		out = append(out, item)
	}
	return out, nil
}

// pointMetrics resolves a point's metric names into registry entries,
// split into scalars and trajectories in spec order, and reports whether
// any of them needs a collector.
func pointMetrics(names []string) (scalars, trajs []MetricInfo, collects bool, err error) {
	for _, name := range names {
		m, err := LookupMetric(name)
		if err != nil {
			return nil, nil, false, err
		}
		collects = collects || m.Collects
		if m.Trajectory {
			trajs = append(trajs, m)
		} else {
			scalars = append(scalars, m)
		}
	}
	return scalars, trajs, collects, nil
}
