package sweep

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// TestWorkerBudgetResolve pins the anti-oversubscription arithmetic:
// trialWorkers × kernelWorkers ≤ maxProcs with the defaulted knob
// shrinking to the slack, explicit knobs respected, and non-kernel
// processes always resolving to one kernel worker.
func TestWorkerBudgetResolve(t *testing.T) {
	cases := []struct {
		name           string
		b              workerBudget
		trials         int
		kernel         bool
		wantTW, wantKW int
	}{
		{"defaults-wide-ensemble", workerBudget{maxProcs: 8}, 100, true, 8, 1},
		{"defaults-single-trial", workerBudget{maxProcs: 8}, 1, true, 1, 8},
		{"defaults-small-ensemble", workerBudget{maxProcs: 8}, 2, true, 2, 4},
		{"explicit-trials-slack-kernel", workerBudget{trialWorkers: 2, maxProcs: 8}, 100, true, 2, 4},
		{"explicit-kernel-slack-trials", workerBudget{kernelWorkers: 4, maxProcs: 8}, 100, true, 2, 4},
		{"explicit-kernel-exceeds-budget", workerBudget{kernelWorkers: 16, maxProcs: 8}, 100, true, 1, 16},
		{"both-explicit-trusted", workerBudget{trialWorkers: 4, kernelWorkers: 4, maxProcs: 8}, 100, true, 4, 4},
		{"non-kernel-ignores-kernel-knob", workerBudget{kernelWorkers: 4, maxProcs: 8}, 100, false, 8, 1},
		{"non-kernel-explicit-trials", workerBudget{trialWorkers: 3, maxProcs: 8}, 100, false, 3, 1},
		{"trials-cap", workerBudget{maxProcs: 8}, 3, true, 3, 2},
	}
	for _, tc := range cases {
		tw, kw := tc.b.resolve(tc.trials, tc.kernel)
		if tw != tc.wantTW || kw != tc.wantKW {
			t.Errorf("%s: resolve(%d, %v) = (%d, %d), want (%d, %d)",
				tc.name, tc.trials, tc.kernel, tw, kw, tc.wantTW, tc.wantKW)
		}
	}
	// The zero budget falls back to GOMAXPROCS.
	tw, kw := workerBudget{}.resolve(1, true)
	if want := runtime.GOMAXPROCS(0); tw != 1 || kw != want {
		t.Errorf("zero budget: resolve = (%d, %d), want (1, %d)", tw, kw, want)
	}
}

// kernelSpec sweeps both kernel processes over a regular and an
// irregular family with every registered metric, so the golden diff
// below covers trajectory digests and snapshots too.
func kernelSpec() Spec {
	return Spec{
		Name:      "kernel-golden",
		Families:  []string{"rand-reg", "complete"},
		Sizes:     []int{24},
		Degrees:   []int{4},
		Processes: []string{ProcCobraPar, ProcBIPSPar},
		Metrics:   MetricNames(),
		Trials:    6,
		Seed:      23,
		MaxRounds: 1 << 14,
	}
}

// TestKernelGoldenDiffWorkers is the sweep-level half of the kernel
// determinism pin: kernel workers 1 vs 4 (with different trial worker
// counts and snapshots enabled on both sides) must produce
// byte-identical artifact trees — manifest, per-point records and
// results.ndjson — and identical in-memory reports.
func TestKernelGoldenDiffWorkers(t *testing.T) {
	run := func(dir string, trialWorkers, kernelWorkers int) *Report {
		t.Helper()
		rep, err := Run(context.Background(), kernelSpec(), Options{
			Dir:              dir,
			TrialWorkers:     trialWorkers,
			KernelWorkers:    kernelWorkers,
			Snapshot:         func(Snapshot) {},
			SnapshotInterval: time.Nanosecond, // force deliveries every fold
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	repA := run(dirA, 2, 1)
	repB := run(dirB, 1, 4)
	if reportJSON(t, repA) != reportJSON(t, repB) {
		t.Fatal("kernel sweep report depends on kernel worker count")
	}
	treeA, treeB := readTree(t, dirA), readTree(t, dirB)
	if !reflect.DeepEqual(treeA, treeB) {
		for rel, want := range treeA {
			if got, ok := treeB[rel]; !ok || got != want {
				t.Fatalf("artifact %s differs between kernel workers 1 and 4", rel)
			}
		}
		t.Fatal("artifact trees differ between kernel workers 1 and 4")
	}
	if _, ok := treeA["results.ndjson"]; !ok {
		t.Fatal("results.ndjson missing from kernel sweep artifacts")
	}
}
