package sweep

import (
	"context"
	"slices"
	"strings"
	"testing"

	"cobrawalk/internal/graphcache"
	"cobrawalk/internal/graphstore"
)

// TestDiskTierByteIdentity pins the acceptance contract of the graph
// store: a sweep whose graphs come back from disk-tier store files
// (mmap-loaded) produces artifacts byte-identical to one whose graphs
// came straight from the generators. Three runs share a spec: no cache,
// a cold disk tier (generator builds + spills), and a warm disk tier
// over the same store directory (pure mmap loads).
func TestDiskTierByteIdentity(t *testing.T) {
	spec := testSpec()
	storeDir := t.TempDir()

	dirPlain := t.TempDir()
	if _, err := Run(context.Background(), spec, Options{Dir: dirPlain, TrialWorkers: 2}); err != nil {
		t.Fatal(err)
	}

	cold, err := graphcache.NewWithOptions(graphcache.Options{StoreDir: storeDir})
	if err != nil {
		t.Fatal(err)
	}
	dirCold := t.TempDir()
	if _, err := Run(context.Background(), spec, Options{Dir: dirCold, TrialWorkers: 2, GraphCache: cold}); err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.DiskWrites == 0 {
		t.Fatalf("cold run spilled nothing: %+v", st)
	}

	warm, err := graphcache.NewWithOptions(graphcache.Options{StoreDir: storeDir})
	if err != nil {
		t.Fatal(err)
	}
	dirWarm := t.TempDir()
	if _, err := Run(context.Background(), spec, Options{Dir: dirWarm, PointWorkers: 3, TrialWorkers: 4, GraphCache: warm}); err != nil {
		t.Fatal(err)
	}
	st := warm.Stats()
	if st.DiskHits == 0 || st.DiskWrites != 0 {
		t.Fatalf("warm run should be all disk hits: %+v", st)
	}

	plain, coldTree, warmTree := readTree(t, dirPlain), readTree(t, dirCold), readTree(t, dirWarm)
	if len(plain) == 0 {
		t.Fatal("no artifacts written")
	}
	for name, want := range plain {
		if coldTree[name] != want {
			t.Fatalf("%s differs between plain and cold-disk-tier runs", name)
		}
		if warmTree[name] != want {
			t.Fatalf("%s differs between generator-built and mmap-loaded runs", name)
		}
	}
}

// TestBuildTopologyMatchesSweepSpill: the graph BuildTopology realises
// for a topology is bit-identical to the store file a disk-tier sweep
// spills for the same axes — the contract that lets cmd/graphbuild
// pre-populate a daemon's -graph-dir.
func TestBuildTopologyMatchesSweepSpill(t *testing.T) {
	spec := Spec{
		Families: []string{"rand-reg"},
		Sizes:    []int{48},
		Degrees:  []int{4},
		Trials:   2,
		Seed:     21,
	}
	storeDir := t.TempDir()
	cache, err := graphcache.NewWithOptions(graphcache.Options{StoreDir: storeDir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), spec, Options{GraphCache: cache}); err != nil {
		t.Fatal(err)
	}

	g, key, err := BuildTopology("rand-reg", 48, 4, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	spilled, err := graphstore.Mmap(storeDir + "/" + graphcache.StoreFileName(key))
	if err != nil {
		t.Fatalf("sweep spill not at the key BuildTopology reports: %v", err)
	}
	wo, wn := g.CSR()
	so, sn := spilled.CSR()
	if !slices.Equal(wo, so) || !slices.Equal(wn, sn) {
		t.Fatal("BuildTopology graph differs from the sweep's spilled store file")
	}
}

// TestFileFamilySweep runs a sweep over a file: pseudo-family and checks
// the realised size comes from the store file, the point IDs stay
// filesystem-safe, and a bad path fails spec validation up front.
func TestFileFamilySweep(t *testing.T) {
	g, _, err := BuildTopology("rand-reg", 40, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/topo.csrg"
	if err := graphstore.Write(path, g); err != nil {
		t.Fatal(err)
	}

	spec := Spec{
		Families:  []string{"file:" + path},
		Sizes:     []int{40},
		Trials:    3,
		Seed:      9,
		MaxRounds: 1 << 14,
	}
	pts, err := spec.Points()
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if strings.ContainsAny(pt.ID, "/:") {
			t.Fatalf("point ID %q is not filesystem-safe", pt.ID)
		}
	}
	rep, err := Run(context.Background(), spec, Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Results {
		if res.GraphN != g.N() {
			t.Fatalf("realised size %d, want the store file's %d", res.GraphN, g.N())
		}
	}

	if _, err := (Spec{Families: []string{"file:/nonexistent.csrg"}, Sizes: []int{8}, Trials: 1, Seed: 1}).Points(); err == nil {
		t.Fatal("missing store file accepted by spec validation")
	}
}
