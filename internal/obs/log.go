package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
)

// LogConfig selects a structured logger, typically filled straight from
// -log-level / -log-format flags. The zero value means info-level text.
type LogConfig struct {
	// Level is one of debug, info, warn, error ("" = info).
	Level string
	// Format is text or json ("" = text).
	Format string
}

// NewLogger builds a slog.Logger writing to w per cfg. Every binary in
// the repo logs through this, so operators see one format everywhere.
func NewLogger(w io.Writer, cfg LogConfig) (*slog.Logger, error) {
	var level slog.Level
	switch cfg.Level {
	case "", "info":
		level = slog.LevelInfo
	case "debug":
		level = slog.LevelDebug
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", cfg.Level)
	}
	opts := &slog.HandlerOptions{Level: level}
	switch cfg.Format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", cfg.Format)
	}
}

// DefaultLogger is the zero-configuration logger for examples and small
// tools: info-level text on stderr.
func DefaultLogger() *slog.Logger {
	l, _ := NewLogger(os.Stderr, LogConfig{})
	return l
}

// Discard returns a logger that drops everything — the nil-object for
// components that take a logger but whose caller wants silence.
func Discard() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}

// Fatal logs msg plus attrs at error level and exits 1 — the structured
// replacement for log.Fatal in package main.
func Fatal(l *slog.Logger, msg string, args ...any) {
	if l == nil {
		l = DefaultLogger()
	}
	l.Error(msg, args...)
	os.Exit(1)
}
