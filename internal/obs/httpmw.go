package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// HTTPMetrics is the per-route request instrumentation: a request
// counter by route/method/status, a latency histogram by route, and an
// in-flight gauge. One set serves one handler tree.
type HTTPMetrics struct {
	requests *CounterVec
	latency  *HistogramVec
	inflight *Gauge
}

// NewHTTPMetrics registers the HTTP request families on reg under the
// given prefix (e.g. "cobrawalkd").
func NewHTTPMetrics(reg *Registry, prefix string) *HTTPMetrics {
	return &HTTPMetrics{
		requests: reg.CounterVec(prefix+"_http_requests_total",
			"HTTP requests served, by route pattern, method and status code.",
			"route", "method", "code"),
		latency: reg.HistogramVec(prefix+"_http_request_seconds",
			"HTTP request latency in seconds, by route pattern.",
			nil, "route"),
		inflight: reg.Gauge(prefix+"_http_requests_in_flight",
			"HTTP requests currently being served."),
	}
}

// Requests exposes the request counter for tests and dashboards.
func (h *HTTPMetrics) Requests(route, method, code string) *Counter {
	return h.requests.With(route, method, code)
}

// statusWriter records the status code and body size written through it,
// passing Flush along so streaming endpoints keep streaming.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// reqSeq numbers requests within the process; requestNonce distinguishes
// processes, so a request ID is unique across a fleet's logs.
var (
	reqSeq       atomic.Uint64
	requestNonce = func() string {
		var b [4]byte
		rand.Read(b[:])
		return hex.EncodeToString(b[:])
	}()
)

// newRequestID mints "deadbeef-000042"-style IDs: process nonce plus
// sequence number.
func newRequestID() string {
	return fmt.Sprintf("%s-%06d", requestNonce, reqSeq.Add(1))
}

// Instrument wraps next with request observability: every request gets
// an ID (reusing an inbound X-Request-Id, else minting one) echoed on
// the response, a per-route latency observation, a status-labelled
// counter increment, and one structured log line on logger. routeOf maps
// a request to its low-cardinality route label — for a ServeMux, the
// matched pattern — so one scan of wrong URLs cannot mint a thousand
// series.
func Instrument(next http.Handler, m *HTTPMetrics, logger *slog.Logger, routeOf func(*http.Request) string) http.Handler {
	if logger == nil {
		logger = Discard()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		route := routeOf(r)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		if m != nil {
			m.inflight.Inc()
		}
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		if sw.status == 0 { // handler wrote nothing at all
			sw.status = http.StatusOK
		}
		if m != nil {
			m.inflight.Dec()
			m.requests.With(route, r.Method, strconv.Itoa(sw.status)).Inc()
			m.latency.With(route).Observe(elapsed.Seconds())
		}
		logger.Info("http request",
			"request_id", id,
			"method", r.Method,
			"route", route,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"duration_ms", float64(elapsed.Microseconds())/1000)
	})
}

// MuxRoute returns a routeOf function for a ServeMux: the matched
// pattern, or "unmatched" for requests no pattern claims.
func MuxRoute(mux *http.ServeMux) func(*http.Request) string {
	return func(r *http.Request) string {
		_, pattern := mux.Handler(r)
		if pattern == "" {
			return "unmatched"
		}
		return pattern
	}
}
