package obs

import (
	"sync"
	"time"
)

// Event is one timestamped step in a traced lifecycle — a span event in
// the tracing sense: cheap, append-only, and meaningful after the fact.
// The serving layer records them per job (queued → running → per-point
// progress → terminal) and persists them into job.json, so a stuck or
// slow job can be diagnosed from its artifacts alone.
type Event struct {
	Time time.Time `json:"time"`
	// Name is the step ("queued", "running", "point-start", "point",
	// "done", "failed", "cancelled", ...).
	Name string `json:"name"`
	// Detail is a human-readable payload ("p007 rand-reg-n64 (3/9)").
	Detail string `json:"detail,omitempty"`
}

// Trace is a bounded, concurrency-safe span-event recorder. Once the
// cap is reached, further events overwrite the last slot instead of
// growing — so a million-point sweep keeps its head (the lifecycle
// transitions and the first points) and always shows the most recent
// progress, in constant space.
type Trace struct {
	mu     sync.Mutex
	max    int
	events []Event
	// clipped counts events that landed in the overwrite slot.
	clipped int
}

// DefaultTraceCap bounds a trace to roughly one job.json page worth of
// events.
const DefaultTraceCap = 256

// NewTrace returns an empty trace holding at most max events
// (<= 0 = DefaultTraceCap).
func NewTrace(max int) *Trace {
	if max <= 0 {
		max = DefaultTraceCap
	}
	return &Trace{max: max}
}

// Add records an event at time.Now.
func (t *Trace) Add(name, detail string) {
	t.add(Event{Time: time.Now().UTC(), Name: name, Detail: detail})
}

func (t *Trace) add(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) < t.max {
		t.events = append(t.events, ev)
		return
	}
	t.events[len(t.events)-1] = ev
	t.clipped++
}

// Seed replaces the trace contents — used when restoring a persisted
// job's events so post-restart appends continue the same history.
func (t *Trace) Seed(events []Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(events) > t.max {
		events = events[:t.max]
	}
	t.events = append(t.events[:0], events...)
}

// Events returns a copy of the recorded events in order.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Len returns the number of stored events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}
