package obs

import (
	"sync"
	"time"
)

// Event is one timestamped step in a traced lifecycle — a span event in
// the tracing sense: cheap, append-only, and meaningful after the fact.
// The serving layer records them per job (queued → running → per-point
// progress → terminal) and persists them into job.json, so a stuck or
// slow job can be diagnosed from its artifacts alone.
type Event struct {
	// Seq is the event's position in its trace's total history: 1, 2,
	// 3, … assigned by Add and never reused, even when the bounded
	// buffer overwrites old events. The serving layer uses it as the
	// SSE event id and as the /events?after incremental cursor, so a
	// client can resume exactly where it left off.
	Seq  uint64    `json:"seq,omitempty"`
	Time time.Time `json:"time"`
	// Name is the step ("queued", "running", "point-start", "point",
	// "done", "failed", "cancelled", ...).
	Name string `json:"name"`
	// Detail is a human-readable payload ("p007 rand-reg-n64 (3/9)").
	Detail string `json:"detail,omitempty"`
}

// Trace is a bounded, concurrency-safe span-event recorder. Once the
// cap is reached, further events overwrite the last slot instead of
// growing — so a million-point sweep keeps its head (the lifecycle
// transitions and the first points) and always shows the most recent
// progress, in constant space.
type Trace struct {
	mu     sync.Mutex
	max    int
	seq    uint64
	events []Event
	// clipped counts events that landed in the overwrite slot.
	clipped int
}

// DefaultTraceCap bounds a trace to roughly one job.json page worth of
// events.
const DefaultTraceCap = 256

// NewTrace returns an empty trace holding at most max events
// (<= 0 = DefaultTraceCap).
func NewTrace(max int) *Trace {
	if max <= 0 {
		max = DefaultTraceCap
	}
	return &Trace{max: max}
}

// Add records an event at time.Now, assigns it the next sequence
// number, and returns it — callers that broadcast the event elsewhere
// (the serving layer's stream hub) reuse the same Seq, so the trace
// poll path and the live stream share one cursor space.
func (t *Trace) Add(name, detail string) Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	ev := Event{Seq: t.seq, Time: time.Now().UTC(), Name: name, Detail: detail}
	if len(t.events) < t.max {
		t.events = append(t.events, ev)
		return ev
	}
	t.events[len(t.events)-1] = ev
	t.clipped++
	return ev
}

// Seed replaces the trace contents — used when restoring a persisted
// job's events so post-restart appends continue the same history. The
// sequence counter resumes past the largest seeded Seq, so cursors
// handed out before a restart stay valid after it.
func (t *Trace) Seed(events []Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(events) > t.max {
		events = events[:t.max]
	}
	t.events = append(t.events[:0], events...)
	for _, ev := range t.events {
		if ev.Seq > t.seq {
			t.seq = ev.Seq
		}
	}
}

// Events returns a copy of the recorded events in order.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// EventsAfter returns a copy of the recorded events with Seq > after,
// in order — the incremental form behind the /events?after cursor.
// EventsAfter(0) is Events().
func (t *Trace) EventsAfter(after uint64) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.events))
	for _, ev := range t.events {
		if ev.Seq > after {
			out = append(out, ev)
		}
	}
	return out
}

// Len returns the number of stored events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}
