package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeRendering(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("widgets_total", "Widgets made.")
	c.Inc()
	c.Add(4)
	g := reg.Gauge("depth", "Queue depth.")
	g.Set(3)
	g.Dec()
	reg.GaugeFunc("temp_celsius", "Temperature.", func() float64 { return 21.5 })

	var b bytes.Buffer
	reg.WritePrometheus(&b)
	got := b.String()
	want := `# HELP depth Queue depth.
# TYPE depth gauge
depth 2
# HELP temp_celsius Temperature.
# TYPE temp_celsius gauge
temp_celsius 21.5
# HELP widgets_total Widgets made.
# TYPE widgets_total counter
widgets_total 5
`
	if got != want {
		t.Errorf("rendering mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestCounterVecLabels(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("req_total", "Requests.", "route", "code")
	cv.With("/v1/jobs", "200").Add(2)
	cv.With("/v1/jobs", "404").Inc()
	cv.With(`weird"route\`, "200").Inc()

	var b bytes.Buffer
	reg.WritePrometheus(&b)
	got := b.String()
	for _, line := range []string{
		`req_total{route="/v1/jobs",code="200"} 2`,
		`req_total{route="/v1/jobs",code="404"} 1`,
		`req_total{route="weird\"route\\",code="200"} 1`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("output lacks %q:\n%s", line, got)
		}
	}
	// Same label values must hit the same series.
	if v := cv.With("/v1/jobs", "200").Value(); v != 2 {
		t.Errorf("series not shared: got %d", v)
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	var b bytes.Buffer
	reg.WritePrometheus(&b)
	got := b.String()
	want := `# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 2
lat_seconds_bucket{le="1"} 3
lat_seconds_bucket{le="10"} 4
lat_seconds_bucket{le="+Inf"} 5
lat_seconds_sum 102.65
lat_seconds_count 5
`
	if got != want {
		t.Errorf("histogram mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestDuplicateFamilyPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.Gauge("x_total", "")
}

func TestConcurrentWritesRace(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n_total", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h_seconds", "", nil)
	cv := reg.CounterVec("v_total", "", "k")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.01)
				cv.With("a").Inc()
			}
		}()
	}
	var b bytes.Buffer
	reg.WritePrometheus(&b) // scrape while writing
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter: got %d, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Errorf("histogram count: got %d, want 8000", got)
	}
}

func TestRegisterRuntimeFamilies(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntime(reg)
	var b bytes.Buffer
	reg.WritePrometheus(&b)
	got := b.String()
	for _, fam := range []string{"go_goroutines", "go_heap_alloc_bytes", "go_sys_bytes",
		"go_gc_cycles_total", "go_gc_pause_seconds_total", "process_uptime_seconds"} {
		if !strings.Contains(got, "# TYPE "+fam+" ") {
			t.Errorf("runtime families lack %s", fam)
		}
	}
}

func TestNewLoggerLevelsAndFormats(t *testing.T) {
	var b bytes.Buffer
	l, err := NewLogger(&b, LogConfig{Level: "warn", Format: "json"})
	if err != nil {
		t.Fatal(err)
	}
	l.Info("dropped")
	l.Warn("kept", "k", 1)
	out := b.String()
	if strings.Contains(out, "dropped") {
		t.Errorf("info line passed a warn-level logger: %s", out)
	}
	if !strings.Contains(out, `"msg":"kept"`) || !strings.Contains(out, `"k":1`) {
		t.Errorf("json line malformed: %s", out)
	}
	if _, err := NewLogger(&b, LogConfig{Level: "loud"}); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(&b, LogConfig{Format: "xml"}); err == nil {
		t.Error("bad format accepted")
	}
}

func TestTraceBounded(t *testing.T) {
	tr := NewTrace(4)
	tr.Add("queued", "")
	tr.Add("running", "")
	for i := 0; i < 10; i++ {
		tr.Add("point", "p")
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("trace grew past cap: %d events", len(evs))
	}
	if evs[0].Name != "queued" || evs[1].Name != "running" {
		t.Errorf("trace lost its head: %+v", evs[:2])
	}
	if evs[3].Name != "point" {
		t.Errorf("tail not the latest event: %+v", evs[3])
	}
	tr.Seed([]Event{{Name: "a"}, {Name: "b"}})
	if got := tr.Len(); got != 2 {
		t.Errorf("seed: got %d events, want 2", got)
	}
}

func TestTraceSequenceNumbers(t *testing.T) {
	tr := NewTrace(4)
	if ev := tr.Add("queued", ""); ev.Seq != 1 {
		t.Fatalf("first event seq = %d, want 1", ev.Seq)
	}
	tr.Add("running", "")
	for i := 0; i < 5; i++ {
		tr.Add("point", "p")
	}
	// Overwritten tail slots keep consuming sequence numbers: the last
	// stored event carries the latest seq even though earlier tail
	// events are gone.
	evs := tr.Events()
	if got := evs[len(evs)-1].Seq; got != 7 {
		t.Errorf("tail seq = %d, want 7", got)
	}
	if got := len(tr.EventsAfter(2)); got != 2 {
		t.Errorf("EventsAfter(2) returned %d events, want 2 (stored events 3 and 7)", got)
	}
	if got := tr.EventsAfter(0); len(got) != len(evs) {
		t.Errorf("EventsAfter(0) returned %d events, want %d", len(got), len(evs))
	}
	if got := tr.EventsAfter(100); len(got) != 0 {
		t.Errorf("EventsAfter(100) returned %d events, want 0", len(got))
	}

	// Seeding resumes the counter past the largest persisted seq, so
	// post-restart appends never reuse a cursor position.
	tr2 := NewTrace(8)
	tr2.Seed(tr.Events())
	if ev := tr2.Add("done", ""); ev.Seq != 8 {
		t.Errorf("post-seed seq = %d, want 8", ev.Seq)
	}
}

func TestInstrumentMiddleware(t *testing.T) {
	reg := NewRegistry()
	hm := NewHTTPMetrics(reg, "test")
	mux := http.NewServeMux()
	mux.HandleFunc("GET /ok", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("hi"))
	})
	mux.HandleFunc("GET /fail", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusTeapot)
	})
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	h := Instrument(mux, hm, logger, MuxRoute(mux))
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/ok")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); id == "" {
		t.Error("no X-Request-Id on response")
	}
	resp, err = http.Get(ts.URL + "/fail")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if got := hm.Requests("GET /ok", "GET", "200").Value(); got != 1 {
		t.Errorf("ok counter: got %d, want 1", got)
	}
	if got := hm.Requests("GET /fail", "GET", "418").Value(); got != 1 {
		t.Errorf("teapot counter: got %d, want 1", got)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "route=\"GET /ok\"") || !strings.Contains(logs, "status=418") {
		t.Errorf("request log lines missing fields:\n%s", logs)
	}
	var b bytes.Buffer
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), `test_http_request_seconds_count{route="GET /ok"} 1`) {
		t.Errorf("latency histogram not recorded:\n%s", b.String())
	}
}
