package obs

import (
	"runtime"
	"sync"
	"time"
)

// RegisterRuntime adds the Go runtime metric families to reg:
// goroutine count, heap/sys memory, GC cycle and pause totals, and the
// process uptime. Memory stats are refreshed once per scrape via an
// OnScrape hook (runtime.ReadMemStats briefly stops the world, so each
// scrape pays it exactly once, and the serving hot path never does).
func RegisterRuntime(reg *Registry) {
	start := time.Now()
	var (
		mu sync.Mutex
		ms runtime.MemStats
	)
	reg.OnScrape(func() {
		mu.Lock()
		runtime.ReadMemStats(&ms)
		mu.Unlock()
	})
	read := func(f func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return f(&ms)
		}
	}
	reg.GaugeFunc("go_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		read(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) }))
	reg.GaugeFunc("go_heap_objects",
		"Number of allocated heap objects.",
		read(func(m *runtime.MemStats) float64 { return float64(m.HeapObjects) }))
	reg.GaugeFunc("go_sys_bytes",
		"Bytes of memory obtained from the OS.",
		read(func(m *runtime.MemStats) float64 { return float64(m.Sys) }))
	reg.CounterFunc("go_gc_cycles_total",
		"Completed GC cycles.",
		read(func(m *runtime.MemStats) float64 { return float64(m.NumGC) }))
	reg.CounterFunc("go_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time.",
		read(func(m *runtime.MemStats) float64 { return float64(m.PauseTotalNs) / 1e9 }))
	reg.GaugeFunc("process_uptime_seconds",
		"Seconds since the process registered its metrics.",
		func() float64 { return time.Since(start).Seconds() })
}
