// Package obs is the dependency-free observability subsystem behind the
// serving layer: a Prometheus-text metrics registry with atomic hot
// paths, structured logging setup (log/slog), bounded span-event traces
// for job-lifecycle post-mortems, HTTP middleware that measures and logs
// every request, and a Go runtime stats collector.
//
// The package observes computation, it never participates in it: nothing
// here touches the random streams, so attaching any of it cannot change
// a simulated byte (the determinism contract of DESIGN.md §7). Metric
// writes are single atomic operations; scraping is the only place locks
// and allocation happen.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metric families and renders them in the
// Prometheus text exposition format. Construct with NewRegistry; all
// methods are safe for concurrent use. Family names must be unique —
// registering a name twice panics, because that is a wiring bug, not a
// runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	scrape   []func() // pre-scrape hooks (e.g. refresh runtime stats)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric family: a help string, a type, and its
// series (one per label-value combination; the empty label set is the
// single series of an unlabelled metric).
type family struct {
	name, help, typ string
	labels          []string

	mu     sync.Mutex
	series map[string]metric // key: rendered label pairs ("" for none)
}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// metric is anything a family can hold a series of.
type metric interface {
	// write renders the series' sample lines. name is the family name,
	// labelPairs the rendered label set ("" for none).
	write(w io.Writer, name, labelPairs string)
}

func (r *Registry) register(name, help, typ string, labels []string) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	f := &family{name: name, help: help, typ: typ, labels: labels,
		series: make(map[string]metric)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("obs: duplicate metric family " + name)
	}
	r.families[name] = f
	return f
}

// getOrCreate returns the series for key, constructing it with mk on
// first use.
func (f *family) getOrCreate(key string, mk func() metric) metric {
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.series[key]
	if !ok {
		m = mk()
		f.series[key] = m
	}
	return m
}

// labelPairs renders a label set as `{k1="v1",k2="v2"}`, escaping values
// per the exposition format. Keys come from the family's declared label
// names, in declaration order, so the rendering is canonical.
func labelPairs(names, values []string) string {
	if len(names) != len(values) {
		panic(fmt.Sprintf("obs: %d label values for %d label names", len(values), len(names)))
	}
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatValue renders a sample value the way Prometheus expects:
// shortest round-trip float, with integral values printed bare.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// --- Counter ---

// Counter is a monotonically increasing float-free counter. The zero
// value is unusable; obtain one from Registry.Counter or CounterVec.With.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, name, lp string) {
	fmt.Fprintf(w, "%s%s %d\n", name, lp, c.v.Load())
}

// Counter registers an unlabelled counter family and returns its single
// series.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, typeCounter, nil)
	c := &Counter{}
	f.series[""] = c
	return c
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, typeCounter, labels)}
}

// With returns the series for the given label values (created on first
// use). Series are cached; the call is cheap after the first.
func (cv *CounterVec) With(values ...string) *Counter {
	key := labelPairs(cv.f.labels, values)
	return cv.f.getOrCreate(key, func() metric { return &Counter{} }).(*Counter)
}

// CounterFunc registers a counter family whose value is read from fn at
// scrape time — the adapter shape for counters owned elsewhere (e.g. the
// graph cache's hit/miss totals).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, typeCounter, nil)
	f.series[""] = funcMetric(fn)
}

// --- Gauge ---

// Gauge is a value that can go up and down, stored as float bits.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d (CAS loop; contention-tolerant).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc and Dec adjust by ±1.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, name, lp string) {
	fmt.Fprintf(w, "%s%s %s\n", name, lp, formatValue(g.Value()))
}

// Gauge registers an unlabelled gauge family and returns its series.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, typeGauge, nil)
	g := &Gauge{}
	f.series[""] = g
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, typeGauge, nil)
	f.series[""] = funcMetric(fn)
}

// funcMetric adapts a read callback into a series.
type funcMetric func() float64

func (fn funcMetric) write(w io.Writer, name, lp string) {
	fmt.Fprintf(w, "%s%s %s\n", name, lp, formatValue(fn()))
}

// --- Histogram ---

// Histogram counts observations into cumulative buckets, Prometheus
// style: one _bucket series per upper bound (plus +Inf), a _sum and a
// _count. Observe is lock-free — one atomic add per bucket walk plus a
// CAS for the float sum.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds, +Inf implicit
	counts []atomic.Uint64
	sum    Gauge // CAS float accumulator
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

func (h *Histogram) write(w io.Writer, name, lp string) {
	// Re-render the label set with le appended (inside the braces).
	open := func(le string) string {
		pair := `le="` + le + `"`
		if lp == "" {
			return "{" + pair + "}"
		}
		return lp[:len(lp)-1] + "," + pair + "}"
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, open(formatValue(b)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, open("+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, lp, formatValue(h.sum.Value()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, lp, h.count.Load())
}

// DefBuckets are the default latency buckets in seconds, spanning
// sub-millisecond scrapes to minute-scale jobs.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram registers an unlabelled histogram family (nil bounds =
// DefBuckets) and returns its series.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	f := r.register(name, help, typeHistogram, nil)
	h := newHistogram(bounds)
	f.series[""] = h
	return h
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// HistogramVec registers a labelled histogram family (nil bounds =
// DefBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &HistogramVec{r.register(name, help, typeHistogram, labels), bounds}
}

// With returns the series for the given label values.
func (hv *HistogramVec) With(values ...string) *Histogram {
	key := labelPairs(hv.f.labels, values)
	return hv.f.getOrCreate(key, func() metric { return newHistogram(hv.bounds) }).(*Histogram)
}

// --- Scraping ---

// OnScrape registers a hook run (in registration order) at the start of
// every WritePrometheus, before any family renders — the place to
// refresh cached snapshots like runtime memory stats.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.scrape = append(r.scrape, fn)
}

// Families returns the registered family names, sorted.
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WritePrometheus renders every family in the text exposition format,
// families sorted by name and series sorted by label set, so the output
// layout is deterministic (values, of course, are live).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	hooks := append([]func(){}, r.scrape...)
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		series := make([]metric, len(keys))
		for i, k := range keys {
			series[i] = f.series[k]
		}
		f.mu.Unlock()
		for i, k := range keys {
			series[i].write(w, f.name, k)
		}
	}
}

// Handler serves the registry at GET, Prometheus content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
