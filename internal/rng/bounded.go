package rng

import "math/bits"

// Bounded is a precomputed uniform sampler over [0, n) for a bound that is
// fixed across many draws — the shape of neighbour sampling on a regular
// graph, where every vertex shares one degree and the inner loop draws
// millions of indices against it.
//
// Next consumes the underlying generator exactly like Uint64n(n): the same
// number of Uint64 draws in the same order, producing the same values. That
// stream-identity is load-bearing — the native process engines use Bounded
// in their hot loops while the differential test harness replays the same
// seeds through the reference implementations, which call Uint64n. What
// Bounded removes is the per-call work that does not depend on the draw:
// the power-of-two test and the (2^64 - n) mod n rejection threshold, both
// hoisted to construction time.
//
// The zero value is a sampler over the degenerate bound 0 and always
// returns 0 without consuming the generator, matching Uint64n(0).
type Bounded struct {
	n      uint64
	mask   uint64 // n-1 when n is a power of two
	thresh uint64 // Lemire rejection threshold otherwise
	pow2   bool
}

// NewBounded returns a sampler over [0, n).
func NewBounded(n uint64) Bounded {
	b := Bounded{n: n}
	if n == 0 {
		return b
	}
	if n&(n-1) == 0 {
		b.pow2 = true
		b.mask = n - 1
		return b
	}
	b.thresh = -n % n // (2^64 - n) mod n, computed in uint64 arithmetic
	return b
}

// N returns the bound the sampler was constructed with.
func (b Bounded) N() uint64 { return b.n }

// Mask returns (n-1, true) when the bound is a power of two. Hot loops use
// it to specialize sampling to an inline `r.Uint64() & mask` — the exact
// computation Next performs on the pow2 path, minus the call.
func (b Bounded) Mask() (uint64, bool) { return b.mask, b.pow2 }

// Next returns a uniformly distributed integer in [0, b.N()), drawing from
// r exactly as r.Uint64n(b.N()) would.
func (b Bounded) Next(r *Rand) uint64 {
	if b.pow2 {
		return r.Uint64() & b.mask
	}
	if b.n == 0 {
		return 0
	}
	v := r.Uint64()
	hi, lo := bits.Mul64(v, b.n)
	// Uint64n only compares against the threshold when lo < n; since
	// thresh < n, folding the guard into one loop rejects the same draws.
	for lo < b.thresh {
		v = r.Uint64()
		hi, lo = bits.Mul64(v, b.n)
	}
	return hi
}
