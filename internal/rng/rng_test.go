package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// Reference vector for SplitMix64 with seed 0, matching the canonical C
// implementation by Sebastiano Vigna (splitmix64.c).
func TestSplitMix64ReferenceVector(t *testing.T) {
	want := []uint64{
		0xE220A8397B1DCDAF,
		0x6E789E6AA1B965F4,
		0x06C45D188009454F,
		0xF88BB8A8724C81EC,
		0x1B39896A51A8749B,
	}
	s := NewSplitMix64(0)
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("SplitMix64(0) output %d = %#x, want %#x", i, got, w)
		}
	}
}

// refXoshiro is a line-by-line transcription of Vigna's xoshiro256++
// reference C implementation (xoshiro256plusplus.c), kept deliberately
// naive. It pins the optimized scalar-field Uint64 in rng.go: any
// restructuring of the update that changes the output stream — which
// would silently invalidate every recorded trajectory in the repository —
// fails TestXoshiroMatchesReference.
type refXoshiro struct{ s [4]uint64 }

func refRotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

func (r *refXoshiro) next() uint64 {
	result := refRotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = refRotl(r.s[3], 45)
	return result
}

func TestXoshiroMatchesReference(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xDEADBEEF, ^uint64(0)} {
		r := New(seed)
		ref := refXoshiro{s: r.State()}
		for i := 0; i < 10_000; i++ {
			if got, want := r.Uint64(), ref.next(); got != want {
				t.Fatalf("seed %#x draw %d: Uint64() = %#x, reference %#x", seed, i, got, want)
			}
		}
		if got, want := r.State(), ref.s; got != want {
			t.Fatalf("seed %#x: state diverged: %x vs reference %x", seed, got, want)
		}
	}
}

// FillUint64 must be stream-identical to per-call draws: same values,
// same state afterwards — including across chunked fills of odd sizes.
func TestFillUint64MatchesSequentialDraws(t *testing.T) {
	a, b := New(123), New(123)
	for _, size := range []int{0, 1, 7, 1000, 64} {
		buf := make([]uint64, size)
		a.FillUint64(buf)
		for i, v := range buf {
			if w := b.Uint64(); v != w {
				t.Fatalf("fill(%d)[%d] = %#x, sequential draw %#x", size, i, v, w)
			}
		}
		if a.State() != b.State() {
			t.Fatalf("state diverged after fill of %d", size)
		}
	}
}

func TestSplitMix64Determinism(t *testing.T) {
	a, b := NewSplitMix64(42), NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestMix64Bijective(t *testing.T) {
	// Spot-check injectivity on a sample; Mix64 is a documented bijection,
	// so no collisions may appear.
	seen := make(map[uint64]uint64, 4096)
	for i := uint64(0); i < 4096; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: Mix64(%d) == Mix64(%d) == %#x", i, prev, h)
		}
		seen[h] = i
	}
}

func TestNewDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(8)
	same := 0
	a = New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 identical outputs", same)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(99)
	a.Uint64()
	b := a.Clone()
	if a.State() != b.State() {
		t.Fatal("clone state differs")
	}
	av, bv := a.Uint64(), b.Uint64()
	if av != bv {
		t.Fatal("clone diverged on first draw")
	}
	a.Uint64() // advance a only
	if a.State() == b.State() {
		t.Fatal("advancing original advanced the clone")
	}
}

func TestJumpChangesStateAndDisjointPrefix(t *testing.T) {
	a := New(1)
	before := a.State()
	a.Jump()
	if a.State() == before {
		t.Fatal("Jump did not change state")
	}

	// Streams separated by a jump must not share any values within a
	// modest prefix (overlap probability is ~0 for a 2^128 jump).
	x := New(1)
	y := New(1)
	y.Jump()
	seen := make(map[uint64]struct{}, 4096)
	for i := 0; i < 4096; i++ {
		seen[x.Uint64()] = struct{}{}
	}
	for i := 0; i < 4096; i++ {
		if _, ok := seen[y.Uint64()]; ok {
			t.Fatalf("jumped stream repeated a value from the base stream at step %d", i)
		}
	}
}

func TestNewStreamIndependence(t *testing.T) {
	a := NewStream(5, 0)
	b := NewStream(5, 1)
	if a.State() == b.State() {
		t.Fatal("distinct streams share initial state")
	}
	// Same (seed, stream) must reproduce.
	c := NewStream(5, 1)
	for i := 0; i < 100; i++ {
		if b.Uint64() != c.Uint64() {
			t.Fatalf("NewStream not deterministic at step %d", i)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 10, 1 << 20, 1<<63 + 12345} {
		for i := 0; i < 2000; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
	if v := r.Uint64n(0); v != 0 {
		t.Fatalf("Uint64n(0) = %d, want 0", v)
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-square test over 10 buckets. With 100k draws the statistic is
	// chi2 with 9 dof; reject above 33 (p ~ 1e-4) to keep flake risk low.
	r := New(1234)
	const buckets = 10
	const draws = 100_000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 33 {
		t.Fatalf("chi-square = %.2f over 9 dof; distribution looks non-uniform: %v", chi2, counts)
	}
}

func TestIntnAndInt32n(t *testing.T) {
	r := New(4)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Int32n(5); v < 0 || v >= 5 {
			t.Fatalf("Int32n out of range: %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const draws = 100_000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %.4f, want ~0.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(6)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) fired")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) did not fire")
	}
	if r.Bernoulli(-0.5) {
		t.Fatal("Bernoulli(negative) fired")
	}
	if !r.Bernoulli(1.5) {
		t.Fatal("Bernoulli(>1) did not fire")
	}
	hits := 0
	const draws = 100_000
	for i := 0; i < draws; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / draws
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical rate %.4f", p)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(7)
	const draws = 200_000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %.4f, want ~1", variance)
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(8)
	cases := []struct {
		n int
		p float64
	}{
		{10, 0.5},   // Bernoulli-sum path
		{500, 0.01}, // inversion path (np = 5)
		{5000, 0.4}, // normal-approximation path (np = 2000)
		{100, 0.9},  // complement path
		{50, 0.0},   // degenerate
		{50, 1.0},   // degenerate
	}
	for _, tc := range cases {
		const draws = 20_000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < draws; i++ {
			k := r.Binomial(tc.n, tc.p)
			if k < 0 || k > tc.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", tc.n, tc.p, k)
			}
			sum += float64(k)
			sumSq += float64(k) * float64(k)
		}
		mean := sum / draws
		wantMean := float64(tc.n) * tc.p
		sd := math.Sqrt(wantMean * (1 - tc.p))
		tol := 4 * sd / math.Sqrt(draws)
		if tol < 1e-9 {
			tol = 1e-9
		}
		if math.Abs(mean-wantMean) > tol+0.05 {
			t.Errorf("Binomial(%d,%v): mean %.3f, want %.3f±%.3f", tc.n, tc.p, mean, wantMean, tol)
		}
		variance := sumSq/draws - mean*mean
		wantVar := wantMean * (1 - tc.p)
		if wantVar > 1 && math.Abs(variance-wantVar)/wantVar > 0.1 {
			t.Errorf("Binomial(%d,%v): var %.3f, want %.3f", tc.n, tc.p, variance, wantVar)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(9)
	const p = 0.2
	const draws = 100_000
	sum := 0.0
	for i := 0; i < draws; i++ {
		g := r.Geometric(p)
		if g < 0 {
			t.Fatalf("Geometric returned negative value %d", g)
		}
		sum += float64(g)
	}
	mean := sum / draws
	want := (1 - p) / p // mean number of failures before first success
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("Geometric(%v) mean = %.3f, want %.3f", p, mean, want)
	}
	if g := r.Geometric(1); g != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", g)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(10)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleInt32sPreservesMultiset(t *testing.T) {
	r := New(11)
	in := []int32{5, 5, 1, 2, 9, 9, 9, 0}
	got := append([]int32(nil), in...)
	r.ShuffleInt32s(got)
	count := map[int32]int{}
	for _, v := range in {
		count[v]++
	}
	for _, v := range got {
		count[v]--
	}
	for k, c := range count {
		if c != 0 {
			t.Fatalf("multiset changed for value %d (delta %d)", k, c)
		}
	}
}

func TestShuffleUniformitySmall(t *testing.T) {
	// All 6 permutations of 3 elements should appear roughly equally.
	r := New(12)
	counts := map[[3]int]int{}
	const draws = 60_000
	for i := 0; i < draws; i++ {
		p := r.Perm(3)
		counts[[3]int{p[0], p[1], p[2]}]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct permutations, want 6", len(counts))
	}
	for perm, c := range counts {
		frac := float64(c) / draws
		if math.Abs(frac-1.0/6.0) > 0.01 {
			t.Fatalf("permutation %v frequency %.4f, want ~0.1667", perm, frac)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64n(12345)
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}
