package rng

import (
	"math"
	"math/bits"
)

// Uint64n returns a uniformly distributed integer in [0, n) without modulo
// bias, using Lemire's multiply-shift rejection method. n must be > 0;
// n == 0 returns 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Lemire: compute the 128-bit product and reject the biased low range.
	v := r.Uint64()
	hi, lo := bits.Mul64(v, n)
	if lo < n {
		thresh := -n % n // (2^64 - n) mod n, computed in uint64 arithmetic
		for lo < thresh {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, n)
		}
	}
	return hi
}

// Intn returns a uniformly distributed int in [0, n). It panics only via
// integer conversion for negative n; callers must pass n >= 1.
func (r *Rand) Intn(n int) int {
	return int(r.Uint64n(uint64(n)))
}

// Int32n returns a uniformly distributed int32 in [0, n).
func (r *Rand) Int32n(n int32) int32 {
	return int32(r.Uint64n(uint64(n)))
}

// Float64 returns a uniformly distributed float64 in [0, 1), using the top
// 53 bits of a Uint64 draw.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bernoulli returns true with probability p. Values of p outside [0, 1]
// are clamped by construction: p <= 0 never fires, p >= 1 always fires.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method. The second variate of each pair is cached.
func (r *Rand) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// Binomial returns a Binomial(n, p) variate. For small n it sums Bernoulli
// trials; for large n it uses the inversion method on the CDF when n*p is
// moderate and a normal approximation with continuity correction (clamped
// to [0, n]) when n*p is large. The approximation regime is only used
// where its relative error is far below Monte-Carlo noise.
func (r *Rand) Binomial(n int, p float64) int {
	switch {
	case n <= 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	case p > 0.5:
		return n - r.Binomial(n, 1-p)
	}
	np := float64(n) * p
	switch {
	case n <= 64:
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	case np <= 30:
		// Inversion by sequential search from k = 0.
		q := math.Pow(1-p, float64(n))
		u := r.Float64()
		k := 0
		c := q
		for u > c && k < n {
			k++
			q *= (float64(n-k+1) / float64(k)) * (p / (1 - p))
			c += q
		}
		return k
	default:
		sd := math.Sqrt(np * (1 - p))
		k := int(math.Round(np + sd*r.NormFloat64()))
		if k < 0 {
			k = 0
		}
		if k > n {
			k = n
		}
		return k
	}
}

// ExpFloat64 returns an exponentially distributed variate with rate 1
// (mean 1), by inversion. Scale by 1/rate for other rates.
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Geometric returns the number of failures before the first success in
// independent Bernoulli(p) trials (support {0, 1, 2, ...}). p must be in
// (0, 1]; p >= 1 returns 0.
func (r *Rand) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	// Inversion: floor(log(U) / log(1-p)).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Log(u) / math.Log1p(-p))
}

// Perm returns a uniformly random permutation of [0, n) as a fresh slice.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts performs an in-place Fisher-Yates shuffle.
func (r *Rand) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// ShuffleInt32s performs an in-place Fisher-Yates shuffle of int32 values.
func (r *Rand) ShuffleInt32s(p []int32) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
