// Package rng provides deterministic, splittable pseudo-random number
// generation for Monte-Carlo simulation.
//
// All experiment randomness in this repository flows from a single 64-bit
// master seed. Per-trial generators are derived with SplitMix64 so that
// trials are mutually independent and bit-reproducible regardless of the
// number of worker goroutines executing them.
//
// The core generator is xoshiro256++ (Blackman & Vigna, 2019), a fast
// all-purpose generator with a 2^256-1 period and a jump function that
// advances the state by 2^128 steps, yielding provably non-overlapping
// parallel streams.
package rng

import "fmt"

// SplitMix64 is a tiny, high-quality 64-bit generator used to seed and
// derive other generators. Its zero value is a valid generator seeded
// with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the sequence.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Mix64 applies the SplitMix64 output mix to x. It is a bijective
// finalizer useful for hashing counters into well-distributed seeds.
func Mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Rand is a xoshiro256++ generator. It is not safe for concurrent use;
// derive one generator per goroutine with NewStream.
//
// The 256-bit state lives in four scalar fields rather than a [4]uint64:
// that keeps Uint64 under the compiler's inlining budget, which matters
// because the process engines draw from it in their innermost loops.
type Rand struct {
	s0, s1, s2, s3 uint64

	// Spare normal variate cache for NormFloat64 (Marsaglia polar pairs).
	spare    float64
	hasSpare bool
}

// New returns a generator whose state is derived from seed via SplitMix64,
// per the xoshiro authors' recommendation. Any seed, including zero, is
// valid.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	r := &Rand{s0: sm.Uint64(), s1: sm.Uint64(), s2: sm.Uint64(), s3: sm.Uint64()}
	// The all-zero state is invalid for xoshiro; SplitMix64 cannot emit
	// four consecutive zeros, so no further check is needed, but keep a
	// defensive fix-up in case of future refactoring.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9E3779B97F4A7C15
	}
	return r
}

// NewStream returns the generator for an independent stream, derived
// deterministically from (seed, stream). Distinct stream indices yield
// generators seeded through one extra SplitMix64 mixing round, so streams
// for consecutive indices share no statistical structure.
func NewStream(seed, stream uint64) *Rand {
	return New(Mix64(seed) ^ Mix64(stream*0xD1342543DE82EF95+0x2545F4914F6CDD1D))
}

// Reseed reinitialises r in place to exactly the state New(seed) returns,
// spare-variate cache included. Hot paths that need many short-lived
// derived generators (the parallel round kernels reseed one per-worker
// generator once per work chunk) use this instead of New to stay
// allocation-free.
func (r *Rand) Reseed(seed uint64) {
	sm := NewSplitMix64(seed)
	r.s0, r.s1, r.s2, r.s3 = sm.Uint64(), sm.Uint64(), sm.Uint64(), sm.Uint64()
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9E3779B97F4A7C15
	}
	r.spare, r.hasSpare = 0, false
}

// ReseedStream is the in-place form of NewStream: it reinitialises r to
// exactly the state NewStream(seed, stream) returns.
func (r *Rand) ReseedStream(seed, stream uint64) {
	r.Reseed(Mix64(seed) ^ Mix64(stream*0xD1342543DE82EF95+0x2545F4914F6CDD1D))
}

// Uint64 returns the next 64 uniformly distributed bits. It is written to
// stay within the inlining budget: hot loops calling it compile to the
// bare xoshiro256++ update with no call.
func (r *Rand) Uint64() uint64 {
	s0, s1, s3 := r.s0, r.s1, r.s3
	x := s0 + s3
	n2 := r.s2 ^ s0
	n3 := s3 ^ s1
	r.s1 = s1 ^ n2
	r.s0 = s0 ^ n3
	r.s2 = n2 ^ s1<<17
	r.s3 = n3<<45 | n3>>19
	return (x<<23 | x>>41) + s0
}

// FillUint64 fills dst with consecutive draws, exactly as if Uint64 had
// been called len(dst) times. The state walks through registers for the
// whole fill instead of bouncing through the struct fields once per draw,
// so bulk consumers (the process engines' sampling loops, which know
// their per-round draw counts up front) sidestep the store-forwarding
// stall the per-call update chain pays.
func (r *Rand) FillUint64(dst []uint64) {
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	for i := range dst {
		x := s0 + s3
		dst[i] = (x<<23 | x>>41) + s0
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = s3<<45 | s3>>19
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

// jumpPoly is the characteristic polynomial used by Jump; it advances the
// generator by 2^128 steps.
var jumpPoly = [4]uint64{0x180EC6D33CFD0ABA, 0xD5A61266F0C9392C, 0xA9582618E03FC9AA, 0x39ABDC4529B1661C}

// Jump advances the generator by 2^128 steps, as if Uint64 had been called
// 2^128 times. Repeated jumps therefore produce non-overlapping
// subsequences suitable for parallel workers.
func (r *Rand) Jump() {
	var s0, s1, s2, s3 uint64
	for _, jp := range jumpPoly {
		for b := 0; b < 64; b++ {
			if jp&(uint64(1)<<uint(b)) != 0 {
				s0 ^= r.s0
				s1 ^= r.s1
				s2 ^= r.s2
				s3 ^= r.s3
			}
			r.Uint64()
		}
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

// Clone returns an independent copy of the generator with identical state.
func (r *Rand) Clone() *Rand {
	c := *r
	return &c
}

// State returns the current 256-bit state, for diagnostics and tests.
func (r *Rand) State() [4]uint64 { return [4]uint64{r.s0, r.s1, r.s2, r.s3} }

// String implements fmt.Stringer for debug output.
func (r *Rand) String() string {
	return fmt.Sprintf("xoshiro256++{%#x,%#x,%#x,%#x}", r.s0, r.s1, r.s2, r.s3)
}
