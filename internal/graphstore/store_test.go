package graphstore

import (
	"errors"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

// xxh64 known-answer vectors (the reference XXH64 test values): the
// checksum must match the standard algorithm bit for bit or store files
// stop being portable across implementations.
func TestXXH64Vectors(t *testing.T) {
	cases := []struct {
		in   string
		seed uint64
		want uint64
	}{
		{"", 0, 0xef46db3751d8e999},
		{"a", 0, 0xd24ec4f1a98c6e5b},
		{"as", 0, 0x1c330fb2d66be179},
		{"asd", 0, 0x631c37ce72a97393},
		{"asdf", 0, 0x415872f599cea71e},
		// 63 bytes: exercises the 32-byte lane loop plus every tail size.
		{"Call me Ishmael. Some years ago--never mind how long precisely-", 0, 0x02a2e85470d6fd96},
	}
	for _, c := range cases {
		if got := xxh64([]byte(c.in), c.seed); got != c.want {
			t.Errorf("xxh64(%q, %d) = %#016x, want %#016x", c.in, c.seed, got, c.want)
		}
	}
}

func mustGraph(g *graph.Graph, err error) *graph.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

// writeStore writes g to a fresh store file under t.TempDir.
func writeStore(t *testing.T, g *graph.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g"+Ext)
	if err := Write(path, g); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return path
}

func assertSameCSR(t *testing.T, want, got *graph.Graph) {
	t.Helper()
	wo, wn := want.CSR()
	go_, gn := got.CSR()
	if !slices.Equal(wo, go_) {
		t.Fatalf("offsets differ: %d vs %d entries", len(wo), len(go_))
	}
	if !slices.Equal(wn, gn) {
		t.Fatalf("neighbors differ: %d vs %d entries", len(wn), len(gn))
	}
	if want.Name() != got.Name() {
		t.Fatalf("name: %q vs %q", want.Name(), got.Name())
	}
}

func TestRoundTrip(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rand-reg":  mustGraph(graph.RandomRegular(512, 8, rng.NewStream(7, 1))),
		"star":      mustGraph(graph.Star(33)),
		"complete":  mustGraph(graph.Complete(17)),
		"singleton": mustGraph(graph.Complete(1)),
	}
	for label, g := range graphs {
		t.Run(label, func(t *testing.T) {
			path := writeStore(t, g)

			h, err := ReadHeader(path)
			if err != nil {
				t.Fatalf("ReadHeader: %v", err)
			}
			if h.N != g.N() || h.Arcs != int64(2*g.M()) || h.Name != g.Name() {
				t.Fatalf("header %+v does not describe %v", h, g)
			}
			if h.MinDeg != g.MinDegree() || h.MaxDeg != g.MaxDegree() {
				t.Fatalf("header degrees %d..%d, graph %d..%d", h.MinDeg, h.MaxDeg, g.MinDegree(), g.MaxDegree())
			}

			heap, err := ReadAll(path)
			if err != nil {
				t.Fatalf("ReadAll: %v", err)
			}
			assertSameCSR(t, g, heap)
			if err := heap.Validate(); err != nil {
				t.Fatalf("ReadAll graph invalid: %v", err)
			}

			mapped, err := Mmap(path)
			if err != nil {
				t.Fatalf("Mmap: %v", err)
			}
			assertSameCSR(t, g, mapped)
			if err := mapped.Validate(); err != nil {
				t.Fatalf("Mmap graph invalid: %v", err)
			}
		})
	}
}

func TestRoundTripEmpty(t *testing.T) {
	g := &graph.Graph{}
	path := writeStore(t, g)
	got, err := ReadAll(path)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if got.N() != 0 || got.M() != 0 {
		t.Fatalf("empty graph round-tripped to n=%d m=%d", got.N(), got.M())
	}
}

func TestWriteAtomicReplacesExisting(t *testing.T) {
	a := mustGraph(graph.Complete(5))
	b := mustGraph(graph.Cycle(9))
	path := filepath.Join(t.TempDir(), "g"+Ext)
	if err := Write(path, a); err != nil {
		t.Fatal(err)
	}
	if err := Write(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCSR(t, b, got)
	// No temp litter left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("store dir has %d entries, want 1", len(entries))
	}
}

// corrupt loads the file, applies f, and writes it back.
func corrupt(t *testing.T, path string, f func([]byte) []byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, f(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsCorruption(t *testing.T) {
	g := mustGraph(graph.RandomRegular(96, 4, rng.NewStream(3, 1)))
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, ErrNotStore},
		{"header-bitflip", func(b []byte) []byte { b[17] ^= 0x01; return b }, ErrChecksum},
		{"neighbor-bitflip", func(b []byte) []byte { b[len(b)-24] ^= 0x40; return b }, ErrChecksum},
		{"truncated-header", func(b []byte) []byte { return b[:40] }, ErrTruncated},
		{"truncated-data", func(b []byte) []byte { return b[:len(b)/2] }, ErrTruncated},
		{"trailing-garbage", func(b []byte) []byte { return append(b, 0xaa) }, ErrCorrupt},
		{"version-skew", func(b []byte) []byte {
			// Bump the version and re-seal the header checksum so the skew
			// is the first thing the parser can object to.
			b[8] = 99
			reseal(b)
			return b
		}, ErrVersion},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := writeStore(t, g)
			corrupt(t, path, c.mutate)
			for _, loadPath := range []struct {
				name string
				fn   func(string) (*graph.Graph, error)
			}{{"ReadAll", ReadAll}, {"Mmap", Mmap}} {
				if _, err := loadPath.fn(path); !errors.Is(err, c.wantErr) {
					t.Errorf("%s: err = %v, want %v", loadPath.name, err, c.wantErr)
				}
			}
		})
	}
}

// reseal recomputes the header checksum after a test mutates the fixed
// prefix, so the mutation survives to the check under test.
func reseal(b []byte) {
	sum := xxh64(b[0:48], 0)
	for i := 0; i < 8; i++ {
		b[48+i] = byte(sum >> (8 * i))
	}
}

func TestReadHeaderRejectsTruncation(t *testing.T) {
	g := mustGraph(graph.Complete(9))
	path := writeStore(t, g)
	corrupt(t, path, func(b []byte) []byte { return b[:len(b)-4] })
	if _, err := ReadHeader(path); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

// TestChecksummedGarbageRejected builds a file whose checksums are
// perfectly valid but whose CSR content is structurally broken: the
// loader's linear validation, not the checksum, must catch it.
func TestChecksummedGarbageRejected(t *testing.T) {
	// A legitimate 2-vertex, 1-edge graph... with a self-loop patched in
	// after extraction, then re-stored through the raw encoder.
	offsets := []int64{0, 1, 2}
	neighbors := []int32{0, 0} // self-loops: checksummable, not loadable
	data := encodeImage(t, "bad", offsets, neighbors)
	if _, _, _, err := load(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// encodeImage renders a store image from raw arrays without graph-level
// validation — the test-only path to well-checksummed invalid content.
func encodeImage(t *testing.T, name string, offsets []int64, neighbors []int32) []byte {
	t.Helper()
	rh := rawHeader{
		Header:  Header{Version: FormatVersion, Name: name, N: len(offsets) - 1, Arcs: int64(len(neighbors))},
		nameLen: int64(len(name)),
	}
	hdr := encodeHeader(rh)
	var buf []byte
	buf = append(buf, hdr[:]...)
	nameBytes := []byte(name)
	buf = append(buf, nameBytes...)
	buf = append(buf, make([]byte, pad8(int64(len(nameBytes)))-int64(len(nameBytes)))...)
	offBytes := int64LEBytes(offsets)
	buf = append(buf, offBytes...)
	nbrBytes := int32LEBytes(neighbors)
	buf = append(buf, nbrBytes...)
	buf = append(buf, make([]byte, pad8(int64(len(nbrBytes)))-int64(len(nbrBytes)))...)
	foot := encodeFooter(xxh64(hdr[0:48], 0), xxh64(nameBytes, 0), xxh64(offBytes, 0), xxh64(nbrBytes, 0))
	buf = append(buf, foot[:]...)
	return buf
}

func TestHeaderHelpers(t *testing.T) {
	h := Header{N: 10, Arcs: 40, MinDeg: 4, MaxDeg: 4}
	if h.M() != 20 {
		t.Errorf("M() = %d, want 20", h.M())
	}
	if d, ok := h.Regular(); !ok || d != 4 {
		t.Errorf("Regular() = %d,%v, want 4,true", d, ok)
	}
	h.MaxDeg = 5
	if _, ok := h.Regular(); ok {
		t.Error("irregular header reported regular")
	}
}

// BenchmarkMmap: the always-on load-path benchmark at a CI-friendly size
// (n = 2^16, ~2.4 MB file); the n = 10^7 counterpart is the env-gated
// BenchmarkScaleStoreLoad at the repo root.
func BenchmarkMmap(b *testing.B) {
	g := mustGraph(graph.RandomRegularConnected(1<<16, 8, rng.NewStream(3, 1)))
	path := filepath.Join(b.TempDir(), "bench.csrg")
	if err := Write(path, g); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := Mmap(path)
		if err != nil {
			b.Fatal(err)
		}
		if got.N() != g.N() {
			b.Fatal("wrong graph")
		}
	}
}
