package graphstore

import (
	"encoding/binary"
	"unsafe"
)

// The store format is little-endian on disk; the hosts that matter
// (amd64, arm64) are little-endian in memory. When the two agree and the
// data is aligned, an array section IS its byte image — hashing and
// loading reinterpret the same memory instead of copying ~2 GB at
// 10⁸ vertices. The helpers below centralise that reinterpretation and
// its two escape hatches: a big-endian host (encode/decode element-wise)
// and a misaligned buffer (copy-decode), so every caller gets the fast
// path when it is safe and a correct slow path when it is not.

// nativeLE reports whether the host stores integers little-endian, i.e.
// whether in-memory arrays already match the on-disk byte order.
var nativeLE = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// int64LEBytes returns the little-endian byte image of s: a zero-copy
// alias on little-endian hosts, a fresh encoding elsewhere.
func int64LEBytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	if nativeLE {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
	}
	b := make([]byte, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(v))
	}
	return b
}

// int32LEBytes is int64LEBytes for int32 elements.
func int32LEBytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	if nativeLE {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
	}
	b := make([]byte, len(s)*4)
	for i, v := range s {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(v))
	}
	return b
}

// bytesToInt64LE interprets b (len a multiple of 8) as little-endian
// int64s. aliased reports whether the result shares b's memory — true on
// an aligned little-endian fast path, false when a copy was decoded. The
// caller uses aliased to decide whether the backing buffer must outlive
// the result (it must for an mmap region).
func bytesToInt64LE(b []byte) (vals []int64, aliased bool) {
	if len(b) == 0 {
		return nil, false
	}
	if nativeLE && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8), true
	}
	vals = make([]int64, len(b)/8)
	for i := range vals {
		vals[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return vals, false
}

// bytesToInt32LE is bytesToInt64LE for int32 elements (4-byte alignment).
func bytesToInt32LE(b []byte) (vals []int32, aliased bool) {
	if len(b) == 0 {
		return nil, false
	}
	if nativeLE && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4), true
	}
	vals = make([]int32, len(b)/4)
	for i := range vals {
		vals[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return vals, false
}
