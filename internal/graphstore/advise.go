package graphstore

import (
	"fmt"
	"strings"
)

// Advice is the set of madvise hints MmapAdvise applies to a mapping
// before the graph is verified and returned. Hints are best-effort and
// linux-only: on other platforms (and on kernels rejecting a hint) they
// are silently skipped — advice can change load latency, never
// semantics.
type Advice struct {
	// WillNeed issues madvise(MADV_WILLNEED): the kernel starts reading
	// the whole file into the page cache immediately instead of faulting
	// pages one random access at a time, turning the first trial's
	// random CSR gathers into page-cache hits.
	WillNeed bool
	// HugePage issues madvise(MADV_HUGEPAGE): the mapping becomes
	// eligible for transparent huge pages, cutting TLB pressure for the
	// random neighbour gathers over multi-GB adjacency arrays. Only
	// effective on kernels with THP enabled (and never for page-cache
	// backed file mappings on kernels without CONFIG_READ_ONLY_THP_FOR_FS);
	// harmless elsewhere.
	HugePage bool
}

// zero reports whether no hint is requested.
func (a Advice) zero() bool { return !a.WillNeed && !a.HugePage }

// String renders the advice in ParseAdvice's syntax.
func (a Advice) String() string {
	var parts []string
	if a.WillNeed {
		parts = append(parts, "willneed")
	}
	if a.HugePage {
		parts = append(parts, "hugepage")
	}
	if len(parts) == 0 {
		return "off"
	}
	return strings.Join(parts, ",")
}

// ParseAdvice parses a -graph-madvise flag value: a comma-separated
// subset of {willneed, hugepage}, or "off"/"" for no hints.
func ParseAdvice(s string) (Advice, error) {
	var a Advice
	s = strings.TrimSpace(s)
	if s == "" || s == "off" {
		return a, nil
	}
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "willneed":
			a.WillNeed = true
		case "hugepage":
			a.HugePage = true
		default:
			return Advice{}, fmt.Errorf("graphstore: unknown madvise hint %q (want willneed, hugepage or off)", part)
		}
	}
	return a, nil
}
