package graphstore

import (
	"errors"
	"testing"
)

// FuzzStoreHeader throws arbitrary bytes at the full load path (header
// parse, size arithmetic, checksum verification, CSR adoption) and
// asserts the contract the disk tier and the CLIs rely on: a store image
// is either accepted — in which case the graph satisfies every
// structural invariant including symmetry — or rejected with one of the
// typed sentinel errors. No panic, no unclassified error, no
// wild-allocation path for a hostile size field (the header checksum
// gates all size interpretation).
func FuzzStoreHeader(f *testing.F) {
	// Seed with a valid image and the corruption archetypes the parser
	// must classify: truncations at each section boundary, bit flips in
	// the sealed and unsealed regions, version skew, magic damage.
	valid := encodeSeedImage()
	f.Add(valid)
	f.Add(valid[:headerSize-1])
	f.Add(valid[:headerSize])
	f.Add(valid[:len(valid)-footerSize])
	f.Add(valid[:len(valid)-1])
	f.Add(append(append([]byte{}, valid...), 0x00))
	flip := func(i int, bit byte) []byte {
		b := append([]byte{}, valid...)
		b[i] ^= bit
		return b
	}
	f.Add(flip(0, 0x89))             // magic
	f.Add(flip(8, 0x02))             // version (checksum catches)
	f.Add(flip(16, 0xff))            // n
	f.Add(flip(headerSize+8, 0x01))  // offsets section
	f.Add(flip(len(valid)-10, 0x80)) // footer magic
	f.Add(flip(len(valid)-16, 0x01)) // data checksum word
	f.Add([]byte{})
	f.Add([]byte("not a store file at all, but long enough to look at"))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, h, _, err := load(data)
		if err != nil {
			for _, sentinel := range []error{ErrNotStore, ErrVersion, ErrTruncated, ErrChecksum, ErrCorrupt} {
				if errors.Is(err, sentinel) {
					return
				}
			}
			t.Fatalf("rejection not typed: %v", err)
		}
		// Acceptance promises the linear invariants (what the engines need
		// for memory safety); symmetry is the writer's obligation, sealed
		// by the checksum, so it is not re-proven here. Walk the whole
		// adjacency through the public API: any out-of-range index would
		// panic, any ordering violation is a failure.
		n := int32(g.N())
		for v := int32(0); v < n; v++ {
			adj := g.Neighbors(v)
			for i, u := range adj {
				if u < 0 || u >= n || u == v {
					t.Fatalf("vertex %d has invalid neighbour %d", v, u)
				}
				if i > 0 && adj[i-1] >= u {
					t.Fatalf("adjacency of %d not strictly sorted", v)
				}
			}
		}
		if g.N() != h.N || int64(2*g.M()) != h.Arcs {
			t.Fatalf("header (n=%d arcs=%d) disagrees with graph (n=%d m=%d)", h.N, h.Arcs, g.N(), g.M())
		}
	})
}

// encodeSeedImage builds a small valid store image (path graph on 4
// vertices) without touching the filesystem.
func encodeSeedImage() []byte {
	offsets := []int64{0, 1, 3, 5, 6}
	neighbors := []int32{1, 0, 2, 1, 3, 2}
	rh := rawHeader{
		Header: Header{
			Version: FormatVersion, Name: "seed", N: 4, Arcs: 6, MinDeg: 1, MaxDeg: 2,
		},
		nameLen: 4,
	}
	hdr := encodeHeader(rh)
	var buf []byte
	buf = append(buf, hdr[:]...)
	name := []byte("seed")
	buf = append(buf, name...)
	buf = append(buf, make([]byte, 4)...) // pad name to 8
	offBytes := int64LEBytes(offsets)
	buf = append(buf, offBytes...)
	nbrBytes := int32LEBytes(neighbors)
	buf = append(buf, nbrBytes...)
	foot := encodeFooter(xxh64(hdr[0:48], 0), xxh64(name, 0), xxh64(offBytes, 0), xxh64(nbrBytes, 0))
	buf = append(buf, foot[:]...)
	return buf
}
