// Package graphstore is the on-disk graph tier: a versioned binary CSR
// file format (extension .csrg) that turns "load a 10⁷–10⁸-vertex graph"
// from minutes of generator CPU into a header parse plus a page-cache
// mmap. A store file is the packed adjacency of internal/graph — the
// exact offsets and neighbors arrays CSR() exposes — so a loaded graph
// is byte-for-byte the graph that was written, and every simulation
// result computed on it is byte-identical to one computed on the
// generator-built original (the determinism contract of DESIGN.md §7).
//
// Three access paths:
//
//   - Write streams a realised graph to disk (atomic temp+rename).
//   - ReadAll is the portable heap load: read, verify, copy-free on
//     little-endian machines, decode-copy elsewhere.
//   - Mmap is the zero-copy load: the CSR slices alias the page cache,
//     so N concurrent jobs on one topology share one set of physical
//     pages and the load cost is independent of how the kernel has the
//     file cached. Non-Linux (and big-endian) builds fall back to
//     ReadAll transparently.
//
// Integrity is a two-level xxhash tree: a header checksum over the fixed
// 48-byte prefix, and a footer checksum over the per-section sums
// (header, name, offsets, neighbors) — so sections can be hashed
// independently (and in principle in parallel) while one footer word
// still binds the whole file. Every load verifies both levels; a
// truncated, bit-flipped or version-skewed file is rejected with a typed
// error (ErrTruncated, ErrChecksum, ErrVersion, ...), never a panic.
package graphstore

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// File layout (all integers little-endian):
//
//	offset size  field
//	 0      8    magic  0x89 'C' 'S' 'R' 'G' 'R' 'F' '\n'
//	 8      4    version (currently 1)
//	12      4    flags (0; reserved)
//	16      8    n      vertex count
//	24      8    arcs   len(neighbors) = 2·edges
//	32      4    min degree
//	36      4    max degree
//	40      4    name length in bytes
//	44      4    reserved (0)
//	48      8    header checksum = XXH64(bytes[0:48], seed 0)
//	56      …    name bytes, zero-padded to an 8-byte boundary
//	        …    offsets array, (n+1)×8 bytes
//	        …    neighbors array, arcs×4 bytes, zero-padded to 8
//	footer:
//	+0      8    data checksum = XXH64(headerSum‖nameSum‖offSum‖nbrSum)
//	+8      8    end magic 'C' 'S' 'R' 'G' 'E' 'N' 'D' '\n'
//
// The name/offsets/neighbors sections all start 8-byte aligned (the
// fixed header is 56 bytes and every pad restores the boundary), so a
// page-aligned mmap can alias the offsets array as []int64 directly.

const (
	// Ext is the conventional store file extension.
	Ext = ".csrg"

	// FormatVersion is the version this package writes and accepts.
	FormatVersion = 1

	headerSize = 56
	footerSize = 16

	// maxNameLen bounds the stored graph name; anything bigger is a
	// corrupt or hostile header, not a real graph label.
	maxNameLen = 1 << 12
)

var (
	fileMagic = [8]byte{0x89, 'C', 'S', 'R', 'G', 'R', 'F', '\n'}
	endMagic  = [8]byte{'C', 'S', 'R', 'G', 'E', 'N', 'D', '\n'}
)

// Typed load errors. Callers branch on these with errors.Is: the
// graphcache disk tier falls back to the generator on any of them, the
// fuzz harness asserts rejection is always one of them, and tools print
// them verbatim.
var (
	// ErrNotStore marks a file that does not begin with the store magic.
	ErrNotStore = errors.New("graphstore: not a graph store file")
	// ErrVersion marks a store written by an incompatible format version.
	ErrVersion = errors.New("graphstore: unsupported store version")
	// ErrTruncated marks a file shorter than its header claims.
	ErrTruncated = errors.New("graphstore: truncated store file")
	// ErrChecksum marks a header or data checksum mismatch (bit flips,
	// torn writes).
	ErrChecksum = errors.New("graphstore: checksum mismatch")
	// ErrCorrupt marks a structurally impossible header (oversized name,
	// vertex count beyond int32 ids, odd arc count, ...).
	ErrCorrupt = errors.New("graphstore: corrupt store file")
)

// Header is the store file's metadata, readable without touching the
// adjacency arrays (see ReadHeader): everything cmd/graphinfo prints and
// everything a scheduler needs to size a load.
type Header struct {
	// Version is the format version the file was written with.
	Version uint32 `json:"version"`
	// Name is the graph's human-readable family label.
	Name string `json:"name"`
	// N is the vertex count, Arcs the directed arc count (2·edges).
	N    int   `json:"n"`
	Arcs int64 `json:"arcs"`
	// MinDeg and MaxDeg are the degree extremes (equal for regular graphs).
	MinDeg int `json:"min_degree"`
	MaxDeg int `json:"max_degree"`
}

// M returns the undirected edge count.
func (h Header) M() int64 { return h.Arcs / 2 }

// Regular returns the common degree and true when the stored graph is
// regular.
func (h Header) Regular() (int, bool) {
	return h.MinDeg, h.MinDeg == h.MaxDeg && h.N > 0
}

// pad8 rounds n up to the next multiple of 8.
func pad8(n int64) int64 { return (n + 7) &^ 7 }

// rawHeader is the parsed fixed prefix, checksums included.
type rawHeader struct {
	Header
	nameLen   int64
	headerSum uint64
}

// sectionSizes returns the byte extents implied by the header: start of
// the offsets section, start of the neighbors section, start of the
// footer, and the total file size.
func (h rawHeader) sectionSizes() (offStart, nbrStart, footStart, total int64) {
	offStart = headerSize + pad8(h.nameLen)
	nbrStart = offStart + (int64(h.N)+1)*8
	footStart = nbrStart + pad8(h.Arcs*4)
	return offStart, nbrStart, footStart, footStart + footerSize
}

// encodeHeader renders the fixed 56-byte prefix (checksum included).
func encodeHeader(h rawHeader) [headerSize]byte {
	var b [headerSize]byte
	copy(b[0:8], fileMagic[:])
	binary.LittleEndian.PutUint32(b[8:12], h.Version)
	binary.LittleEndian.PutUint32(b[12:16], 0) // flags
	binary.LittleEndian.PutUint64(b[16:24], uint64(h.N))
	binary.LittleEndian.PutUint64(b[24:32], uint64(h.Arcs))
	binary.LittleEndian.PutUint32(b[32:36], uint32(h.MinDeg))
	binary.LittleEndian.PutUint32(b[36:40], uint32(h.MaxDeg))
	binary.LittleEndian.PutUint32(b[40:44], uint32(h.nameLen))
	binary.LittleEndian.PutUint32(b[44:48], 0) // reserved
	binary.LittleEndian.PutUint64(b[48:56], xxh64(b[0:48], 0))
	return b
}

// parseHeader validates the fixed prefix: magic, header checksum,
// version, and structural sanity of every size field. It does not read
// the name (the caller slices that out once sizes are known).
func parseHeader(b []byte) (rawHeader, error) {
	if len(b) < headerSize {
		return rawHeader{}, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(b), headerSize)
	}
	if [8]byte(b[0:8]) != fileMagic {
		return rawHeader{}, ErrNotStore
	}
	// Checksum before interpreting: a bit-flipped size field must surface
	// as a checksum error, not as a wild allocation or a bounds panic.
	sum := binary.LittleEndian.Uint64(b[48:56])
	if want := xxh64(b[0:48], 0); sum != want {
		return rawHeader{}, fmt.Errorf("%w: header sum %#x, computed %#x", ErrChecksum, sum, want)
	}
	h := rawHeader{headerSum: sum}
	h.Version = binary.LittleEndian.Uint32(b[8:12])
	if h.Version != FormatVersion {
		return rawHeader{}, fmt.Errorf("%w: file version %d, this build reads %d", ErrVersion, h.Version, FormatVersion)
	}
	n := binary.LittleEndian.Uint64(b[16:24])
	arcs := binary.LittleEndian.Uint64(b[24:32])
	const maxN = 1 << 31 // vertex ids are int32
	if n >= maxN {
		return rawHeader{}, fmt.Errorf("%w: %d vertices exceeds int32 vertex ids", ErrCorrupt, n)
	}
	if arcs%2 != 0 || arcs > uint64(n)*maxN {
		return rawHeader{}, fmt.Errorf("%w: impossible arc count %d for %d vertices", ErrCorrupt, arcs, n)
	}
	h.N = int(n)
	h.Arcs = int64(arcs)
	h.MinDeg = int(binary.LittleEndian.Uint32(b[32:36]))
	h.MaxDeg = int(binary.LittleEndian.Uint32(b[36:40]))
	h.nameLen = int64(binary.LittleEndian.Uint32(b[40:44]))
	if h.nameLen > maxNameLen {
		return rawHeader{}, fmt.Errorf("%w: name length %d exceeds %d", ErrCorrupt, h.nameLen, maxNameLen)
	}
	return h, nil
}

// encodeFooter renders the 16-byte footer from the per-section sums.
func encodeFooter(headerSum, nameSum, offSum, nbrSum uint64) [footerSize]byte {
	var b [footerSize]byte
	binary.LittleEndian.PutUint64(b[0:8], dataSum(headerSum, nameSum, offSum, nbrSum))
	copy(b[8:16], endMagic[:])
	return b
}

// dataSum binds the per-section checksums into the footer word.
func dataSum(headerSum, nameSum, offSum, nbrSum uint64) uint64 {
	var block [32]byte
	binary.LittleEndian.PutUint64(block[0:8], headerSum)
	binary.LittleEndian.PutUint64(block[8:16], nameSum)
	binary.LittleEndian.PutUint64(block[16:24], offSum)
	binary.LittleEndian.PutUint64(block[24:32], nbrSum)
	return xxh64(block[:], 0)
}
