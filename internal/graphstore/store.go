package graphstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"cobrawalk/internal/graph"
)

// Write serialises g to path in store format. The write is atomic: bytes
// stream through a temp file in path's directory which is fsynced and
// renamed into place, so a concurrent reader (or a crash mid-write)
// never observes a partial store — it sees either the old file or the
// new one. Section checksums are computed from the same memory being
// written, so Write makes one pass over the graph.
func Write(path string, g *graph.Graph) (err error) {
	offsets, neighbors := g.CSR()
	if len(offsets) == 0 {
		// The zero-value empty graph has nil arrays; its file form is the
		// canonical one-offset CSR.
		offsets = []int64{0}
	}
	name := g.Name()
	if len(name) > maxNameLen {
		name = name[:maxNameLen]
	}
	rh := rawHeader{
		Header: Header{
			Version: FormatVersion,
			Name:    name,
			N:       g.N(),
			Arcs:    int64(len(neighbors)),
			MinDeg:  g.MinDegree(),
			MaxDeg:  g.MaxDegree(),
		},
		nameLen: int64(len(name)),
	}
	hdr := encodeHeader(rh)
	headerSum := binary.LittleEndian.Uint64(hdr[48:56])

	tmp, err := os.CreateTemp(filepath.Dir(path), ".csrg-tmp-*")
	if err != nil {
		return fmt.Errorf("graphstore: creating temp file: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	var pad [8]byte
	bw := bufio.NewWriterSize(tmp, 1<<20)
	bw.Write(hdr[:])

	nameBytes := []byte(name)
	nameSum := xxh64(nameBytes, 0)
	bw.Write(nameBytes)
	bw.Write(pad[:pad8(int64(len(nameBytes)))-int64(len(nameBytes))])

	offBytes := int64LEBytes(offsets)
	offSum := xxh64(offBytes, 0)
	bw.Write(offBytes)

	nbrBytes := int32LEBytes(neighbors)
	nbrSum := xxh64(nbrBytes, 0)
	bw.Write(nbrBytes)
	bw.Write(pad[:pad8(int64(len(nbrBytes)))-int64(len(nbrBytes))])

	foot := encodeFooter(headerSum, nameSum, offSum, nbrSum)
	if _, err := bw.Write(foot[:]); err != nil {
		return fmt.Errorf("graphstore: writing %s: %w", path, err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graphstore: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("graphstore: syncing %s: %w", path, err)
	}
	tmpName := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(tmpName)
		return fmt.Errorf("graphstore: closing temp for %s: %w", path, err)
	}
	tmp = nil
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("graphstore: publishing %s: %w", path, err)
	}
	return nil
}

// ReadHeader reads and verifies a store file's header without touching
// the adjacency arrays: O(1) I/O regardless of graph size. It checks the
// magic, header checksum, version, structural sanity, and that the file
// size matches what the header implies — but not the data checksum
// (verifying that is the loaders' job, since it costs a full scan).
func ReadHeader(path string) (Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, fmt.Errorf("graphstore: %w", err)
	}
	defer f.Close()
	var buf [headerSize]byte
	if _, err := io.ReadFull(f, buf[:]); err != nil {
		return Header{}, fmt.Errorf("%w: %s: %v", ErrTruncated, path, err)
	}
	rh, err := parseHeader(buf[:])
	if err != nil {
		return Header{}, err
	}
	name := make([]byte, rh.nameLen)
	if _, err := io.ReadFull(f, name); err != nil {
		return Header{}, fmt.Errorf("%w: %s: name cut short: %v", ErrTruncated, path, err)
	}
	rh.Name = string(name)
	_, _, _, total := rh.sectionSizes()
	fi, err := f.Stat()
	if err != nil {
		return Header{}, fmt.Errorf("graphstore: %w", err)
	}
	if fi.Size() < total {
		return Header{}, fmt.Errorf("%w: %s is %d bytes, header implies %d", ErrTruncated, path, fi.Size(), total)
	}
	if fi.Size() > total {
		return Header{}, fmt.Errorf("%w: %s has %d trailing bytes", ErrCorrupt, path, fi.Size()-total)
	}
	return rh.Header, nil
}

// ReadAll loads a store file into heap memory, verifying both checksum
// levels and the linear CSR invariants. It works on every platform and
// byte order; prefer Mmap where available — it shares pages across
// processes and defers I/O to first touch.
func ReadAll(path string) (*graph.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("graphstore: %w", err)
	}
	g, _, _, err := load(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// load parses, verifies and adopts a complete in-memory store image.
// aliased reports whether the graph's CSR slices share data's memory
// (the little-endian aligned fast path): when true, data must stay
// mapped/alive for the graph's lifetime; when false the graph owns heap
// copies and data may be released immediately. Verification order is
// header checksum → size arithmetic → data checksum → linear CSR
// validation, so no byte of the adjacency sections is ever interpreted
// before it has been both bounds-checked and checksummed.
func load(data []byte) (g *graph.Graph, h Header, aliased bool, err error) {
	rh, err := parseHeader(data)
	if err != nil {
		return nil, Header{}, false, err
	}
	offStart, nbrStart, footStart, total := rh.sectionSizes()
	if int64(len(data)) < total {
		return nil, Header{}, false, fmt.Errorf("%w: %d bytes, header implies %d", ErrTruncated, len(data), total)
	}
	if int64(len(data)) > total {
		return nil, Header{}, false, fmt.Errorf("%w: %d trailing bytes past footer", ErrCorrupt, int64(len(data))-total)
	}
	foot := data[footStart:total]
	if [8]byte(foot[8:16]) != endMagic {
		return nil, Header{}, false, fmt.Errorf("%w: footer magic missing", ErrCorrupt)
	}
	nameBytes := data[headerSize : headerSize+rh.nameLen]
	offBytes := data[offStart:nbrStart]
	nbrBytes := data[nbrStart : nbrStart+rh.Arcs*4]
	want := dataSum(rh.headerSum, xxh64(nameBytes, 0), xxh64(offBytes, 0), xxh64(nbrBytes, 0))
	if got := binary.LittleEndian.Uint64(foot[0:8]); got != want {
		return nil, Header{}, false, fmt.Errorf("%w: data sum %#x, computed %#x", ErrChecksum, got, want)
	}
	rh.Name = string(nameBytes)

	offsets, offAliased := bytesToInt64LE(offBytes)
	neighbors, nbrAliased := bytesToInt32LE(nbrBytes)
	// The checksum proves the bytes are the writer's bytes; the linear
	// validation proves those bytes describe a CSR the engines can index
	// safely (a buggy or adversarial writer can produce a correctly
	// checksummed file of garbage).
	g, err = graph.FromCSRTrusted(rh.Name, offsets, neighbors)
	if err != nil {
		return nil, Header{}, false, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return g, rh.Header, offAliased || nbrAliased, nil
}
