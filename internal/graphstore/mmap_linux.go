//go:build linux

package graphstore

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"syscall"

	"cobrawalk/internal/graph"
)

// Mmap loads a store file zero-copy: the returned graph's CSR slices
// alias a read-only MAP_SHARED mapping of the file, so the adjacency
// lives in the page cache — loads after the first are limited by
// checksum verification speed, not disk, and every process mapping the
// same file shares one set of physical pages.
//
// Lifetime: the mapping is released when the graph becomes unreachable
// (a GC cleanup calls munmap), so the graph itself needs no Close. The
// corollary is that slices extracted via CSR() or Neighbors() must not
// outlive the graph — after the cleanup runs they point into unmapped
// memory. Hold the *graph.Graph for as long as any derived slice is in
// use (the graphcache does this naturally by owning the reference).
//
// Both checksum levels and the linear CSR invariants are verified before
// the graph is returned, same as ReadAll.
func Mmap(path string) (*graph.Graph, error) {
	return MmapAdvise(path, Advice{})
}

// MmapAdvise is Mmap with madvise hints applied to the mapping before
// the load's verification pass touches it — so with WillNeed the
// checksum sweep itself runs against readahead already in flight, and
// with HugePage the first faults are THP-eligible. Hints are
// best-effort: a kernel rejecting one (old kernels for MADV_HUGEPAGE on
// file mappings) costs nothing but the syscall.
func MmapAdvise(path string, adv Advice) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graphstore: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("graphstore: %w", err)
	}
	size := fi.Size()
	if size < headerSize+footerSize {
		return nil, fmt.Errorf("%w: %s is %d bytes", ErrTruncated, path, size)
	}
	if size > math.MaxInt {
		return nil, fmt.Errorf("%w: %s is %d bytes, beyond addressable range", ErrCorrupt, path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("graphstore: mmap %s: %w", path, err)
	}
	// Hint order matters: hugepage first so any pages the willneed
	// readahead (or the verification sweep below) faults in are already
	// THP-eligible.
	if adv.HugePage {
		_ = syscall.Madvise(data, syscall.MADV_HUGEPAGE)
	}
	if adv.WillNeed {
		_ = syscall.Madvise(data, syscall.MADV_WILLNEED)
	}
	g, _, aliased, err := load(data)
	if err != nil {
		syscall.Munmap(data)
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !aliased {
		// The loader copy-decoded (misaligned or big-endian — neither
		// should occur for a page-aligned mapping on linux, but the
		// fallback is load's contract): the graph owns heap arrays and
		// the mapping is dead weight.
		syscall.Munmap(data)
		return g, nil
	}
	runtime.AddCleanup(g, func(m []byte) { syscall.Munmap(m) }, data)
	return g, nil
}
