//go:build !linux

package graphstore

import "cobrawalk/internal/graph"

// Mmap falls back to the portable heap load on platforms without the
// linux mmap path. Semantics (verification, returned graph) are
// identical; only the zero-copy page-cache sharing is lost.
func Mmap(path string) (*graph.Graph, error) {
	return ReadAll(path)
}

// MmapAdvise ignores the advice on platforms without the linux mmap
// path: hints are best-effort by contract, and a heap load has no
// mapping to advise.
func MmapAdvise(path string, _ Advice) (*graph.Graph, error) {
	return ReadAll(path)
}
