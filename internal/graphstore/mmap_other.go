//go:build !linux

package graphstore

import "cobrawalk/internal/graph"

// Mmap falls back to the portable heap load on platforms without the
// linux mmap path. Semantics (verification, returned graph) are
// identical; only the zero-copy page-cache sharing is lost.
func Mmap(path string) (*graph.Graph, error) {
	return ReadAll(path)
}
