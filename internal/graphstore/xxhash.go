package graphstore

import "math/bits"

// XXH64 (Collet's xxHash, 64-bit variant) is the store format's checksum
// primitive: a non-cryptographic hash that runs at memory bandwidth in
// pure Go, which matters because verifying a 10⁸-vertex store touches
// ~2 GB. The implementation is self-contained (one-shot over a byte
// slice, no streaming state) because the format never hashes data it
// does not already hold contiguously: each section (name, offsets,
// neighbors) is hashed on its own and the footer checksum binds the
// per-section sums together (see format.go).

const (
	xxPrime1 uint64 = 11400714785074694791
	xxPrime2 uint64 = 14029467366897019727
	xxPrime3 uint64 = 1609587929392839161
	xxPrime4 uint64 = 9650029242287828579
	xxPrime5 uint64 = 2870177450012600261
)

func xxLE64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func xxLE32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func xxRound(acc, input uint64) uint64 {
	acc += input * xxPrime2
	acc = bits.RotateLeft64(acc, 31)
	return acc * xxPrime1
}

func xxMergeRound(acc, val uint64) uint64 {
	acc ^= xxRound(0, val)
	return acc*xxPrime1 + xxPrime4
}

// xxh64 returns the XXH64 hash of b with the given seed.
func xxh64(b []byte, seed uint64) uint64 {
	n := uint64(len(b))
	var h uint64
	if len(b) >= 32 {
		v1 := seed + xxPrime1 + xxPrime2
		v2 := seed + xxPrime2
		v3 := seed
		v4 := seed - xxPrime1
		for len(b) >= 32 {
			v1 = xxRound(v1, xxLE64(b[0:8]))
			v2 = xxRound(v2, xxLE64(b[8:16]))
			v3 = xxRound(v3, xxLE64(b[16:24]))
			v4 = xxRound(v4, xxLE64(b[24:32]))
			b = b[32:]
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = xxMergeRound(h, v1)
		h = xxMergeRound(h, v2)
		h = xxMergeRound(h, v3)
		h = xxMergeRound(h, v4)
	} else {
		h = seed + xxPrime5
	}
	h += n
	for len(b) >= 8 {
		h ^= xxRound(0, xxLE64(b))
		h = bits.RotateLeft64(h, 27)*xxPrime1 + xxPrime4
		b = b[8:]
	}
	if len(b) >= 4 {
		h ^= uint64(xxLE32(b)) * xxPrime1
		h = bits.RotateLeft64(h, 23)*xxPrime2 + xxPrime3
		b = b[4:]
	}
	for _, c := range b {
		h ^= uint64(c) * xxPrime5
		h = bits.RotateLeft64(h, 11) * xxPrime1
	}
	h ^= h >> 33
	h *= xxPrime2
	h ^= h >> 29
	h *= xxPrime3
	h ^= h >> 32
	return h
}
