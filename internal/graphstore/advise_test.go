package graphstore

import (
	"testing"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

func TestParseAdvice(t *testing.T) {
	cases := []struct {
		in      string
		want    Advice
		wantErr bool
	}{
		{in: "", want: Advice{}},
		{in: "off", want: Advice{}},
		{in: " off ", want: Advice{}},
		{in: "willneed", want: Advice{WillNeed: true}},
		{in: "hugepage", want: Advice{HugePage: true}},
		{in: "willneed,hugepage", want: Advice{WillNeed: true, HugePage: true}},
		{in: "hugepage, willneed", want: Advice{WillNeed: true, HugePage: true}},
		{in: "madv_free", wantErr: true},
		{in: "willneed,", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParseAdvice(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseAdvice(%q): no error, got %+v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseAdvice(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseAdvice(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		// String renders back into ParseAdvice's syntax.
		back, err := ParseAdvice(got.String())
		if err != nil || back != got {
			t.Errorf("ParseAdvice(%q.String()) = %+v, %v; not a round trip", tc.in, back, err)
		}
	}
}

func TestMmapAdviseSameGraph(t *testing.T) {
	g := mustGraph(graph.RandomRegular(256, 6, rng.NewStream(11, 3)))
	path := writeStore(t, g)
	for _, adv := range []Advice{{}, {WillNeed: true}, {HugePage: true}, {WillNeed: true, HugePage: true}} {
		got, err := MmapAdvise(path, adv)
		if err != nil {
			t.Fatalf("MmapAdvise(%s): %v", adv, err)
		}
		assertSameCSR(t, g, got)
	}
}
