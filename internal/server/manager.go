// Package server is the serving layer behind cmd/cobrawalkd: a job
// manager that runs declarative sweeps (internal/sweep) asynchronously
// on a bounded scheduler, persists every job under a data directory so a
// restarted daemon resumes in-flight work byte-identically, and an HTTP
// API (see NewHandler) exposing the job lifecycle.
//
// A job is one sweep spec. Its lifecycle is
//
//	queued → running → done | failed | cancelled
//
// with at most Config.MaxConcurrent jobs running at once. Each job owns
// a sweep artifact directory (manifest + per-point records +
// results.ndjson), which is both the API's result payload and the
// resume log: on restart the manager re-enqueues every non-terminal job
// with sweep resume semantics, so completed points are never recomputed
// and the final artifacts match an uninterrupted run byte for byte.
// All jobs share one graph cache (internal/graphcache), so repeated
// topologies across jobs skip the dominant graph-construction cost.
package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cobrawalk/internal/graphcache"
	"cobrawalk/internal/sweep"
)

// State is a job lifecycle state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Record is the persisted job metadata (job.json in the job directory).
// The sweep results themselves live in the job's artifact directory; the
// record is only bookkeeping, so its bytes carry no determinism
// guarantee (timestamps differ between a run and its resume — the
// artifacts do not).
type Record struct {
	ID    string     `json:"id"`
	Spec  sweep.Spec `json:"spec"`
	State State      `json:"state"`
	// Error holds the failure message for StateFailed.
	Error string `json:"error,omitempty"`
	// Points is the expanded grid size.
	Points   int        `json:"points"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// Status is a live snapshot of a job: the record plus progress counters.
type Status struct {
	Record
	// PointsDone counts completed points (resumed ones included).
	PointsDone int `json:"points_done"`
	// PointsResumed counts points loaded from artifacts rather than
	// computed — non-zero after a daemon restart mid-job.
	PointsResumed int `json:"points_resumed,omitempty"`
}

// job is the manager's in-memory view of one job. rec and userCancel are
// guarded by Manager.mu; the counters are atomics because the sweep's
// PointDone callback updates them from worker goroutines.
type job struct {
	rec        Record
	dir        string
	cancel     context.CancelFunc
	ctx        context.Context
	userCancel bool
	done       atomic.Int64
	resumed    atomic.Int64
}

func (j *job) artifactsDir() string { return filepath.Join(j.dir, artifactsDirName) }

const (
	jobsDirName      = "jobs"
	jobFileName      = "job.json"
	artifactsDirName = "artifacts"
)

// Config configures a Manager. Only Dir is required.
type Config struct {
	// Dir is the data directory: one subdirectory per job under
	// Dir/jobs, holding job.json plus the sweep artifacts.
	Dir string
	// MaxConcurrent bounds how many jobs run at once (default 1). Queued
	// jobs start in submission order as slots free up.
	MaxConcurrent int
	// PointWorkers and TrialWorkers are passed to every job's sweep run
	// (defaults: 1 point worker, GOMAXPROCS trial workers). Scheduling
	// knobs only — they never affect results.
	PointWorkers int
	TrialWorkers int
	// CacheBudget is the shared graph cache's vertex budget
	// (0 = graphcache.DefaultBudget).
	CacheBudget int
	// Logf, when non-nil, receives one line per job transition.
	Logf func(format string, args ...any)
}

// Manager owns the job set: submission, the bounded scheduler,
// persistence and restart recovery. Construct with NewManager; always
// Close to stop in-flight work before discarding.
type Manager struct {
	cfg    Config
	cache  *graphcache.Cache
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	sem    chan struct{} // scheduler slots: len == running jobs
	start  time.Time

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // job IDs in creation order
	nextID int
}

// NewManager opens (or creates) the data directory and recovers its job
// set: terminal jobs load as history, and every queued or running job is
// re-enqueued with resume semantics — completed points load from their
// artifacts instead of recomputing.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, errors.New("server: Config.Dir is required")
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 1
	}
	if cfg.PointWorkers <= 0 {
		cfg.PointWorkers = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, jobsDirName), 0o755); err != nil {
		return nil, fmt.Errorf("server: creating data dir: %w", err)
	}
	m := &Manager{
		cfg:    cfg,
		cache:  graphcache.New(cfg.CacheBudget),
		sem:    make(chan struct{}, cfg.MaxConcurrent),
		start:  time.Now(),
		jobs:   make(map[string]*job),
		nextID: 1,
	}
	m.ctx, m.cancel = context.WithCancel(context.Background())
	if err := m.restore(); err != nil {
		return nil, err
	}
	return m, nil
}

// restore loads every persisted job and re-enqueues the non-terminal
// ones in ID order (submission order of the previous process).
func (m *Manager) restore() error {
	jobsDir := filepath.Join(m.cfg.Dir, jobsDirName)
	entries, err := os.ReadDir(jobsDir)
	if err != nil {
		return fmt.Errorf("server: scanning %s: %w", jobsDir, err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Slice(ids, func(a, b int) bool { return jobSeq(ids[a]) < jobSeq(ids[b]) })
	for _, id := range ids {
		if jobSeq(id) == 0 {
			m.cfg.Logf("ignoring foreign directory %s in %s", id, jobsDir)
			continue
		}
		// Every parseable job ID advances the counter — including ones
		// skipped below — so a new submission can never reuse a skipped
		// directory's ID and overwrite whatever the operator should see.
		if seq := jobSeq(id); seq >= m.nextID {
			m.nextID = seq + 1
		}
		dir := filepath.Join(jobsDir, id)
		var rec Record
		if err := readJSONFile(filepath.Join(dir, jobFileName), &rec); err != nil {
			// Availability over completeness: one unreadable record must
			// not keep every healthy job (and the daemon) down. The
			// directory is left untouched for the operator to inspect.
			m.cfg.Logf("skipping job %s: unreadable record: %v", id, err)
			continue
		}
		if rec.ID != id {
			m.cfg.Logf("skipping job %s: its record names %q", id, rec.ID)
			continue
		}
		j := &job{rec: rec, dir: dir}
		j.ctx, j.cancel = context.WithCancel(m.ctx)
		m.jobs[id] = j
		m.order = append(m.order, id)
		if !rec.State.Terminal() {
			// The previous process died mid-job (or before starting it):
			// back to the queue; completed points resume from artifacts.
			j.rec.State = StateQueued
			m.cfg.Logf("job %s: recovered (%d points, resuming)", id, rec.Points)
			m.enqueue(j)
		}
	}
	return nil
}

// jobSeq parses the numeric sequence out of a job ID ("j0012" → 12),
// returning 0 for foreign directory names so they sort first and never
// advance the ID counter.
func jobSeq(id string) int {
	if len(id) < 2 || id[0] != 'j' {
		return 0
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// Submit validates spec, persists a new queued job and schedules it.
// The job is registered in memory only after its record is safely on
// disk, so a failed persist leaves no phantom job (and no job directory
// for restore to trip on — an allocated ID is simply skipped).
func (m *Manager) Submit(spec sweep.Spec) (Status, error) {
	pts, err := spec.Points()
	if err != nil {
		return Status{}, err
	}

	m.mu.Lock()
	if m.ctx.Err() != nil {
		m.mu.Unlock()
		return Status{}, errors.New("server: manager is shut down")
	}
	id := fmt.Sprintf("j%04d", m.nextID)
	m.nextID++
	m.mu.Unlock()

	j := &job{
		rec: Record{
			ID:      id,
			Spec:    spec,
			State:   StateQueued,
			Points:  len(pts),
			Created: time.Now().UTC(),
		},
		dir: filepath.Join(m.cfg.Dir, jobsDirName, id),
	}
	j.ctx, j.cancel = context.WithCancel(m.ctx)
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return Status{}, fmt.Errorf("server: creating job dir: %w", err)
	}
	if err := m.persist(j); err != nil {
		os.Remove(j.dir) // best-effort: leave no half-created job behind
		return Status{}, err
	}

	m.mu.Lock()
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.mu.Unlock()
	m.cfg.Logf("job %s: queued (%d points)", id, len(pts))
	m.enqueue(j)
	return m.snapshot(j), nil
}

// enqueue schedules j: wait for a scheduler slot, run the sweep, settle
// the terminal state. Cancellation while queued settles immediately.
func (m *Manager) enqueue(j *job) {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		select {
		case <-j.ctx.Done():
			m.settle(j, j.ctx.Err()) // cancelled (or shut down) while queued
			return
		case m.sem <- struct{}{}:
		}
		defer func() { <-m.sem }()
		if err := j.ctx.Err(); err != nil {
			m.settle(j, err)
			return
		}

		now := time.Now().UTC()
		m.mu.Lock()
		j.rec.State = StateRunning
		j.rec.Started = &now
		m.mu.Unlock()
		if err := m.persist(j); err != nil {
			m.settle(j, err)
			return
		}
		m.cfg.Logf("job %s: running", j.rec.ID)

		_, err := sweep.Run(j.ctx, j.rec.Spec, sweep.Options{
			Dir:          j.artifactsDir(),
			Resume:       true, // no-op on a fresh dir; resumes after a crash
			PointWorkers: m.cfg.PointWorkers,
			TrialWorkers: m.cfg.TrialWorkers,
			GraphCache:   m.cache,
			PointDone: func(_ sweep.Result, resumed bool) {
				j.done.Add(1)
				if resumed {
					j.resumed.Add(1)
				}
			},
		})
		m.settle(j, err)
	}()
}

// settle records a job's terminal state: done when the sweep ran to
// completion (err == nil proves that — a late cancel that raced the
// finish must not hide finished results), cancelled when the user
// asked, or — when the manager itself is shutting down — no transition
// at all, so the persisted queued/running state survives for the next
// process to resume.
func (m *Manager) settle(j *job, err error) {
	m.mu.Lock()
	switch {
	case err == nil:
		j.rec.State = StateDone
		j.rec.Error = ""
	case j.userCancel:
		j.rec.State = StateCancelled
		j.rec.Error = ""
	case m.ctx.Err() != nil:
		// Shutdown, not an outcome: leave the persisted state alone.
		m.mu.Unlock()
		m.cfg.Logf("job %s: interrupted by shutdown", j.rec.ID)
		return
	default:
		j.rec.State = StateFailed
		j.rec.Error = err.Error()
	}
	now := time.Now().UTC()
	j.rec.Finished = &now
	state, msg := j.rec.State, j.rec.Error
	m.mu.Unlock()

	if err := m.persist(j); err != nil {
		m.cfg.Logf("job %s: persisting terminal state: %v", j.rec.ID, err)
	}
	if msg != "" {
		m.cfg.Logf("job %s: %s: %s", j.rec.ID, state, msg)
	} else {
		m.cfg.Logf("job %s: %s", j.rec.ID, state)
	}
}

// persist writes the job record atomically.
func (m *Manager) persist(j *job) error {
	m.mu.Lock()
	rec := j.rec
	m.mu.Unlock()
	return writeJSONFile(filepath.Join(j.dir, jobFileName), rec)
}

// snapshot assembles a Status under the lock.
func (m *Manager) snapshot(j *job) Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Status{
		Record:        j.rec,
		PointsDone:    int(j.done.Load()),
		PointsResumed: int(j.resumed.Load()),
	}
}

// Get returns the live status of one job.
func (m *Manager) Get(id string) (Status, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, false
	}
	return m.snapshot(j), true
}

// List returns every job's status in creation order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = m.snapshot(j)
	}
	return out
}

// Cancel requests cancellation of a queued or running job. The state
// moves to cancelled once in-flight work has stopped; cancelling a
// terminal job is an error.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return Status{}, fmt.Errorf("server: no job %s", id)
	}
	if j.rec.State.Terminal() {
		state := j.rec.State
		m.mu.Unlock()
		return Status{}, fmt.Errorf("server: job %s already %s", id, state)
	}
	j.userCancel = true
	m.mu.Unlock()
	j.cancel()
	m.cfg.Logf("job %s: cancellation requested", id)
	return m.snapshot(j), nil
}

// ResultsPath returns the job's results.ndjson path once the job is
// done; before that it reports the current state in the error.
func (m *Manager) ResultsPath(id string) (string, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	var state State
	if ok {
		state = j.rec.State
	}
	m.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("server: no job %s", id)
	}
	if state != StateDone {
		return "", fmt.Errorf("server: job %s is %s, results are available once done", id, state)
	}
	return filepath.Join(j.artifactsDir(), "results.ndjson"), nil
}

// CacheStats snapshots the shared graph cache counters.
func (m *Manager) CacheStats() graphcache.Stats { return m.cache.Stats() }

// Counts returns the number of jobs in each state.
func (m *Manager) Counts() map[State]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[State]int)
	for _, j := range m.jobs {
		out[j.rec.State]++
	}
	return out
}

// Uptime reports how long the manager has been running.
func (m *Manager) Uptime() time.Duration { return time.Since(m.start) }

// Close stops the manager: in-flight sweeps cancel promptly and their
// persisted queued/running states are left intact, so a new Manager on
// the same directory resumes them. Close blocks until every job
// goroutine has returned.
func (m *Manager) Close() {
	m.cancel()
	m.wg.Wait()
}
