// Package server is the serving layer behind cmd/cobrawalkd: a job
// manager that runs declarative sweeps (internal/sweep) asynchronously
// on a bounded scheduler, persists every job under a data directory so a
// restarted daemon resumes in-flight work byte-identically, and an HTTP
// API (see NewHandler) exposing the job lifecycle.
//
// A job is one sweep spec. Its lifecycle is
//
//	queued → running → done | failed | cancelled
//
// with at most Config.MaxConcurrent jobs running at once. Each job owns
// a sweep artifact directory (manifest + per-point records +
// results.ndjson), which is both the API's result payload and the
// resume log: on restart the manager re-enqueues every non-terminal job
// with sweep resume semantics, so completed points are never recomputed
// and the final artifacts match an uninterrupted run byte for byte.
// All jobs share one graph cache (internal/graphcache), so repeated
// topologies across jobs skip the dominant graph-construction cost.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"maps"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cobrawalk/internal/graphcache"
	"cobrawalk/internal/graphstore"
	"cobrawalk/internal/obs"
	"cobrawalk/internal/stats"
	"cobrawalk/internal/sweep"
)

// State is a job lifecycle state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Record is the persisted job metadata (job.json in the job directory).
// The sweep results themselves live in the job's artifact directory; the
// record is only bookkeeping, so its bytes carry no determinism
// guarantee (timestamps differ between a run and its resume — the
// artifacts do not).
type Record struct {
	ID    string     `json:"id"`
	Spec  sweep.Spec `json:"spec"`
	State State      `json:"state"`
	// Error holds the failure message for StateFailed.
	Error string `json:"error,omitempty"`
	// Points is the expanded grid size.
	Points   int        `json:"points"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// Events is the job's span-event trace (queued → running →
	// per-point progress → terminal), bounded by obs.DefaultTraceCap and
	// refreshed on every persist, so a stuck or slow job is diagnosable
	// from job.json alone. Served live at /v1/jobs/{id}/events.
	Events []obs.Event `json:"events,omitempty"`
}

// Status is a live snapshot of a job: the record plus progress counters.
type Status struct {
	Record
	// PointsDone counts completed points (resumed ones included).
	PointsDone int `json:"points_done"`
	// PointsResumed counts points loaded from artifacts rather than
	// computed — non-zero after a daemon restart mid-job.
	PointsResumed int `json:"points_resumed,omitempty"`
}

// job is the manager's in-memory view of one job. rec and userCancel are
// guarded by Manager.mu; the counters are atomics because the sweep's
// PointDone callback updates them from worker goroutines.
type job struct {
	rec        Record
	dir        string
	cancel     context.CancelFunc
	ctx        context.Context
	userCancel bool
	done       atomic.Int64
	resumed    atomic.Int64
	// trace accumulates span events; rec.Events is its snapshot, taken
	// at each persist. Trace is internally locked, so events can be
	// recorded without holding Manager.mu.
	trace *obs.Trace
	// lastEventPersist throttles progress-driven job.json writes
	// (unix nanos of the last write; at most one per second).
	lastEventPersist atomic.Int64
	// pointStarts maps in-flight point IDs to their start times. Only
	// touched from the sweep's serialised PointStart/PointDone
	// callbacks, so it needs no lock of its own.
	pointStarts map[string]time.Time
}

func (j *job) artifactsDir() string { return filepath.Join(j.dir, artifactsDirName) }

const (
	jobsDirName      = "jobs"
	jobFileName      = "job.json"
	artifactsDirName = "artifacts"
)

// Config configures a Manager. Only Dir is required.
type Config struct {
	// Dir is the data directory: one subdirectory per job under
	// Dir/jobs, holding job.json plus the sweep artifacts.
	Dir string
	// MaxConcurrent bounds how many jobs run at once (default 1). Queued
	// jobs start in submission order as slots free up.
	MaxConcurrent int
	// PointWorkers, TrialWorkers and KernelWorkers are passed to every
	// job's sweep run (defaults: 1 point worker; trial and kernel
	// workers resolve against the per-job CPU budget — see
	// sweep.Options). Scheduling knobs only — they never affect results.
	PointWorkers  int
	TrialWorkers  int
	KernelWorkers int
	// CacheBudget is the shared graph cache's vertex budget
	// (0 = graphcache.DefaultBudget).
	CacheBudget int
	// GraphDir, when non-empty, enables the cache's disk tier: built
	// graphs spill there as graphstore files and cache misses mmap them
	// back instead of re-running generators. Pre-populate it with
	// cmd/graphbuild to make even the first job's graph load O(1).
	GraphDir string
	// GraphMadvise is the set of madvise hints the disk tier applies
	// when mmapping store files back (see graphstore.Advice). A load
	// latency knob only; ignored without GraphDir.
	GraphMadvise graphstore.Advice
	// Logger receives structured job-lifecycle logs with job_id fields
	// (nil = discard). Request logs ride the same logger via NewHandler.
	Logger *slog.Logger
	// Metrics, when non-nil, is the registry the manager registers its
	// metric families into; nil means a private registry. Either way the
	// registry is served at GET /metrics and reachable via
	// Manager.Registry. One registry serves at most one manager —
	// family names collide otherwise.
	Metrics *obs.Registry
	// SnapshotInterval spaces each running point's mid-ensemble digest
	// snapshots broadcast to stream subscribers
	// (<= 0 = sweep.DefaultSnapshotInterval). An observability knob
	// only — per the sweep Options contract it never affects results.
	SnapshotInterval time.Duration
	// StreamBuffer is each SSE subscriber's buffered-event capacity
	// (<= 0 = DefaultStreamBuffer). A subscriber that falls behind has
	// its oldest buffered events dropped rather than stalling the job
	// or other subscribers.
	StreamBuffer int
}

// Manager owns the job set: submission, the bounded scheduler,
// persistence and restart recovery. Construct with NewManager; always
// Close to stop in-flight work before discarding.
type Manager struct {
	cfg    Config
	cache  *graphcache.Cache
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	sem    chan struct{} // scheduler slots: len == running jobs
	start  time.Time
	logger *slog.Logger
	met    *serverMetrics
	// hub fans job events out to SSE subscribers; readCache dedups
	// completed-artifact reads by spec hash.
	hub       *hub
	readCache *readCache

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // job IDs in creation order
	nextID int
}

// NewManager opens (or creates) the data directory and recovers its job
// set: terminal jobs load as history, and every queued or running job is
// re-enqueued with resume semantics — completed points load from their
// artifacts instead of recomputing.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, errors.New("server: Config.Dir is required")
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 1
	}
	if cfg.PointWorkers <= 0 {
		cfg.PointWorkers = 1
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Discard()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, jobsDirName), 0o755); err != nil {
		return nil, fmt.Errorf("server: creating data dir: %w", err)
	}
	cache, err := graphcache.NewWithOptions(graphcache.Options{
		BudgetVertices: cfg.CacheBudget,
		StoreDir:       cfg.GraphDir,
		Madvise:        cfg.GraphMadvise,
	})
	if err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:    cfg,
		cache:  cache,
		sem:    make(chan struct{}, cfg.MaxConcurrent),
		start:  time.Now(),
		logger: cfg.Logger,
		jobs:   make(map[string]*job),
		nextID: 1,
	}
	m.met = newServerMetrics(m, cfg.Metrics)
	m.hub = newHub(cfg.StreamBuffer, m.met.streamDropped, m.met.streamSlow)
	m.readCache = newReadCache(0, m.met.cacheHits, m.met.cacheMisses)
	m.ctx, m.cancel = context.WithCancel(context.Background())
	if err := m.restore(); err != nil {
		return nil, err
	}
	return m, nil
}

// pointProgress is the stream payload of point-start and point events.
type pointProgress struct {
	Point   string `json:"point"`
	Done    int    `json:"done,omitempty"`
	Total   int    `json:"total,omitempty"`
	Resumed bool   `json:"resumed,omitempty"`
}

// snapshotEvent is the stream payload of snapshot events: a running
// point's partial digests plus the publish timestamp (T, unix nanos)
// that streaming clients subtract from their receive time to measure
// fan-out latency.
type snapshotEvent struct {
	Point        string                             `json:"point"`
	Trials       int                                `json:"trials"`
	Total        int                                `json:"total"`
	T            int64                              `json:"t"`
	Metrics      map[string]stats.DigestSummary     `json:"metrics,omitempty"`
	Trajectories map[string]stats.TrajectorySummary `json:"trajectories,omitempty"`
}

// event appends one step to the job's span trace and broadcasts it to
// stream subscribers under the same sequence number, so the
// /events?after poll cursor and the SSE event ids are one space.
// payload is marshalled as the stream data (nil = empty object).
func (m *Manager) event(j *job, name, detail string, payload any) {
	ev := j.trace.Add(name, detail)
	var data json.RawMessage
	if payload != nil {
		if blob, err := json.Marshal(payload); err == nil {
			data = blob
		}
	}
	m.hub.publish(StreamEvent{Seq: ev.Seq, Job: j.rec.ID, Type: name, Data: data})
}

// restore loads every persisted job and re-enqueues the non-terminal
// ones in ID order (submission order of the previous process).
func (m *Manager) restore() error {
	jobsDir := filepath.Join(m.cfg.Dir, jobsDirName)
	entries, err := os.ReadDir(jobsDir)
	if err != nil {
		return fmt.Errorf("server: scanning %s: %w", jobsDir, err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Slice(ids, func(a, b int) bool { return jobSeq(ids[a]) < jobSeq(ids[b]) })
	for _, id := range ids {
		if jobSeq(id) == 0 {
			m.logger.Warn("ignoring foreign directory in jobs dir", "dir", id, "jobs_dir", jobsDir)
			continue
		}
		// Every parseable job ID advances the counter — including ones
		// skipped below — so a new submission can never reuse a skipped
		// directory's ID and overwrite whatever the operator should see.
		if seq := jobSeq(id); seq >= m.nextID {
			m.nextID = seq + 1
		}
		dir := filepath.Join(jobsDir, id)
		var rec Record
		if err := readJSONFile(filepath.Join(dir, jobFileName), &rec); err != nil {
			// Availability over completeness: one unreadable record must
			// not keep every healthy job (and the daemon) down. The
			// directory is left untouched for the operator to inspect.
			m.logger.Warn("skipping job: unreadable record", "job_id", id, "err", err)
			continue
		}
		if rec.ID != id {
			m.logger.Warn("skipping job: record names another id", "job_id", id, "record_id", rec.ID)
			continue
		}
		j := m.newJob(rec, dir)
		m.jobs[id] = j
		m.order = append(m.order, id)
		if !rec.State.Terminal() {
			// The previous process died mid-job (or before starting it):
			// back to the queue; completed points resume from artifacts.
			j.rec.State = StateQueued
			m.event(j, "recovered", fmt.Sprintf("re-enqueued after restart as %s", rec.State), nil)
			m.met.jobsTotal.With(string(StateQueued)).Inc()
			m.logger.Info("job recovered, resuming", "job_id", id, "points", rec.Points, "prev_state", string(rec.State))
			m.enqueue(j)
		}
	}
	return nil
}

// jobSeq parses the numeric sequence out of a job ID ("j0012" → 12),
// returning 0 for foreign directory names so they sort first and never
// advance the ID counter.
func jobSeq(id string) int {
	if len(id) < 2 || id[0] != 'j' {
		return 0
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// Submit validates spec, persists a new queued job and schedules it.
// The job is registered in memory only after its record is safely on
// disk, so a failed persist leaves no phantom job (and no job directory
// for restore to trip on — an allocated ID is simply skipped).
func (m *Manager) Submit(spec sweep.Spec) (Status, error) {
	pts, err := spec.Points()
	if err != nil {
		return Status{}, err
	}

	m.mu.Lock()
	if m.ctx.Err() != nil {
		m.mu.Unlock()
		return Status{}, errors.New("server: manager is shut down")
	}
	id := fmt.Sprintf("j%04d", m.nextID)
	m.nextID++
	m.mu.Unlock()

	j := m.newJob(Record{
		ID:      id,
		Spec:    spec,
		State:   StateQueued,
		Points:  len(pts),
		Created: time.Now().UTC(),
	}, filepath.Join(m.cfg.Dir, jobsDirName, id))
	m.event(j, "queued", fmt.Sprintf("%d points", len(pts)), nil)
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return Status{}, fmt.Errorf("server: creating job dir: %w", err)
	}
	if err := m.persist(j); err != nil {
		os.Remove(j.dir) // best-effort: leave no half-created job behind
		return Status{}, err
	}

	m.mu.Lock()
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.mu.Unlock()
	m.met.jobsTotal.With(string(StateQueued)).Inc()
	m.logger.Info("job queued", "job_id", id, "points", len(pts))
	m.enqueue(j)
	return m.snapshot(j), nil
}

// newJob wires a job around its record: lifecycle context, span trace
// (seeded with any persisted events so a restart continues the same
// history) and the per-point timing map.
func (m *Manager) newJob(rec Record, dir string) *job {
	j := &job{rec: rec, dir: dir, trace: obs.NewTrace(0), pointStarts: make(map[string]time.Time)}
	if len(rec.Events) > 0 {
		j.trace.Seed(rec.Events)
	}
	j.ctx, j.cancel = context.WithCancel(m.ctx)
	return j
}

// enqueue schedules j: wait for a scheduler slot, run the sweep, settle
// the terminal state. Cancellation while queued settles immediately.
func (m *Manager) enqueue(j *job) {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		select {
		case <-j.ctx.Done():
			m.settle(j, j.ctx.Err()) // cancelled (or shut down) while queued
			return
		case m.sem <- struct{}{}:
		}
		defer func() { <-m.sem }()
		if err := j.ctx.Err(); err != nil {
			m.settle(j, err)
			return
		}

		now := time.Now().UTC()
		m.mu.Lock()
		j.rec.State = StateRunning
		j.rec.Started = &now
		m.mu.Unlock()
		m.event(j, "running", "", m.snapshot(j))
		if err := m.persist(j); err != nil {
			m.settle(j, err)
			return
		}
		m.met.jobsTotal.With(string(StateRunning)).Inc()
		m.logger.Info("job running", "job_id", j.rec.ID)

		total := j.rec.Points
		_, err := sweep.Run(j.ctx, j.rec.Spec, sweep.Options{
			Dir:           j.artifactsDir(),
			Resume:        true, // no-op on a fresh dir; resumes after a crash
			PointWorkers:  m.cfg.PointWorkers,
			TrialWorkers:  m.cfg.TrialWorkers,
			KernelWorkers: m.cfg.KernelWorkers,
			// Each job gets its slice of the machine: with MaxConcurrent
			// slots filled, GOMAXPROCS trial workers per job would run
			// MaxConcurrent × GOMAXPROCS goroutines hot — the budget keeps
			// the whole daemon at one worker per core regardless of how
			// many jobs are co-scheduled.
			MaxProcs:   m.jobMaxProcs(),
			GraphCache: m.cache,
			PointStart: func(pt sweep.Point) {
				j.pointStarts[pt.ID] = time.Now()
				m.event(j, "point-start", pt.ID, pointProgress{Point: pt.ID, Total: total})
				m.logger.Debug("point start", "job_id", j.rec.ID, "point", pt.ID)
			},
			PointDone: func(res sweep.Result, resumed bool) {
				done := j.done.Add(1)
				m.met.pointsTotal.Inc()
				m.met.trialsTotal.Add(uint64(res.Trials))
				detail := fmt.Sprintf("%s (%d/%d)", res.ID, done, total)
				if resumed {
					j.resumed.Add(1)
					m.met.pointsResumed.Inc()
					detail += " resumed"
				} else if start, ok := j.pointStarts[res.ID]; ok {
					delete(j.pointStarts, res.ID)
					m.met.pointSeconds.Observe(time.Since(start).Seconds())
				}
				m.event(j, "point", detail, pointProgress{
					Point: res.ID, Done: int(done), Total: total, Resumed: resumed,
				})
				// Each completed trajectory metric streams as a band
				// event whose data is exactly one /trajectories NDJSON
				// line, so a stream client reassembles the same bytes
				// the poll endpoint serves.
				for _, name := range slices.Sorted(maps.Keys(res.Trajectories)) {
					m.event(j, "band", res.ID+"/"+name, trajectoryBand{
						ID: res.ID, Metric: name, TrajectorySummary: res.Trajectories[name],
					})
				}
				m.logger.Debug("point done", "job_id", j.rec.ID, "point", res.ID,
					"done", done, "total", total, "resumed", resumed)
				m.persistProgress(j)
			},
			Snapshot: func(s sweep.Snapshot) {
				begin := time.Now()
				m.event(j, "snapshot", fmt.Sprintf("%s %d/%d trials", s.Point.ID, s.Trials, s.Point.Trials), snapshotEvent{
					Point: s.Point.ID, Trials: s.Trials, Total: s.Point.Trials,
					T: begin.UnixNano(), Metrics: s.Metrics, Trajectories: s.Trajectories,
				})
				m.met.snapshotSeconds.Observe(time.Since(begin).Seconds())
				m.persistProgress(j)
			},
			SnapshotInterval: m.cfg.SnapshotInterval,
		})
		m.settle(j, err)
	}()
}

// persistProgress refreshes job.json with the latest span events, at
// most once per second per job, so a daemon killed mid-sweep leaves a
// current trace on disk without turning every point into a write.
func (m *Manager) persistProgress(j *job) {
	const every = int64(time.Second)
	now := time.Now().UnixNano()
	last := j.lastEventPersist.Load()
	if now-last < every || !j.lastEventPersist.CompareAndSwap(last, now) {
		return
	}
	if err := m.persist(j); err != nil {
		m.logger.Warn("persisting progress", "job_id", j.rec.ID, "err", err)
	}
}

// settle records a job's terminal state: done when the sweep ran to
// completion (err == nil proves that — a late cancel that raced the
// finish must not hide finished results), cancelled when the user
// asked, or — when the manager itself is shutting down — no transition
// at all, so the persisted queued/running state survives for the next
// process to resume.
func (m *Manager) settle(j *job, err error) {
	m.mu.Lock()
	switch {
	case err == nil:
		j.rec.State = StateDone
		j.rec.Error = ""
	case j.userCancel:
		j.rec.State = StateCancelled
		j.rec.Error = ""
	case m.ctx.Err() != nil:
		// Shutdown, not an outcome: leave the persisted state alone.
		m.mu.Unlock()
		m.logger.Info("job interrupted by shutdown", "job_id", j.rec.ID)
		return
	default:
		j.rec.State = StateFailed
		j.rec.Error = err.Error()
	}
	now := time.Now().UTC()
	j.rec.Finished = &now
	state, msg := j.rec.State, j.rec.Error
	var ran time.Duration
	if j.rec.Started != nil {
		ran = now.Sub(*j.rec.Started)
	}
	m.mu.Unlock()

	m.event(j, string(state), msg, m.snapshot(j))
	m.hub.close(j.rec.ID)
	m.met.jobsTotal.With(string(state)).Inc()
	if ran > 0 {
		m.met.jobSeconds.Observe(ran.Seconds())
	}
	if err := m.persist(j); err != nil {
		m.logger.Warn("persisting terminal state", "job_id", j.rec.ID, "err", err)
	}
	if msg != "" {
		m.logger.Info("job settled", "job_id", j.rec.ID, "state", string(state), "err", msg, "ran_seconds", ran.Seconds())
	} else {
		m.logger.Info("job settled", "job_id", j.rec.ID, "state", string(state), "ran_seconds", ran.Seconds())
	}
}

// persist writes the job record atomically, with the span trace's
// current snapshot as rec.Events.
func (m *Manager) persist(j *job) error {
	events := j.trace.Events()
	m.mu.Lock()
	j.rec.Events = events
	rec := j.rec
	m.mu.Unlock()
	return writeJSONFile(filepath.Join(j.dir, jobFileName), rec)
}

// snapshot assembles a Status under the lock. Events are stripped —
// they have their own endpoint (and job.json) and would bloat every
// list response otherwise.
// jobMaxProcs is one job's share of the machine: GOMAXPROCS divided by
// the concurrent job slots (at least 1). The sweep layer resolves its
// trial- and kernel-worker defaults against this budget, so a daemon
// with MaxConcurrent=4 on 16 cores runs each job 4-wide instead of
// every job 16-wide.
func (m *Manager) jobMaxProcs() int {
	per := runtime.GOMAXPROCS(0) / m.cfg.MaxConcurrent
	if per < 1 {
		per = 1
	}
	return per
}

func (m *Manager) snapshot(j *job) Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{
		Record:        j.rec,
		PointsDone:    int(j.done.Load()),
		PointsResumed: int(j.resumed.Load()),
	}
	st.Events = nil
	return st
}

// Get returns the live status of one job.
func (m *Manager) Get(id string) (Status, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, false
	}
	return m.snapshot(j), true
}

// List returns every job's status in creation order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = m.snapshot(j)
	}
	return out
}

// Cancel requests cancellation of a queued or running job. The state
// moves to cancelled once in-flight work has stopped; cancelling a
// terminal job is an error.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return Status{}, fmt.Errorf("server: no job %s", id)
	}
	if j.rec.State.Terminal() {
		state := j.rec.State
		m.mu.Unlock()
		return Status{}, fmt.Errorf("server: job %s already %s", id, state)
	}
	j.userCancel = true
	m.mu.Unlock()
	j.cancel()
	m.event(j, "cancel-requested", "", nil)
	m.logger.Info("job cancellation requested", "job_id", id)
	return m.snapshot(j), nil
}

// ResultsPath returns the job's results.ndjson path once the job is
// done; before that it reports the current state in the error.
func (m *Manager) ResultsPath(id string) (string, error) {
	path, _, err := m.ResultsMeta(id)
	return path, err
}

// ResultsMeta returns a done job's results.ndjson path plus the strong
// ETag for its artifacts. The ETag is the spec hash — shared by every
// job with the same normalised spec, whose completed artifacts are
// byte-identical by the determinism contract — so conditional GETs and
// the read cache dedupe identical reads across jobs, not just across
// clients of one job.
func (m *Manager) ResultsMeta(id string) (path, etag string, err error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	var state State
	var spec sweep.Spec
	if ok {
		state = j.rec.State
		spec = j.rec.Spec
	}
	m.mu.Unlock()
	if !ok {
		return "", "", fmt.Errorf("server: no job %s", id)
	}
	if state != StateDone {
		return "", "", fmt.Errorf("server: job %s is %s, results are available once done", id, state)
	}
	return filepath.Join(j.artifactsDir(), "results.ndjson"), `"` + spec.Hash() + `"`, nil
}

// Subscribe attaches a live-stream subscriber to a job: it returns the
// replayable event history with Seq > after, a channel of subsequent
// events — closed when the job settles or the manager shuts down — and
// a cancel func the caller must invoke when done reading. Subscribing
// to an already-terminal job returns its retained history and an
// immediately-closed channel.
func (m *Manager) Subscribe(id string, after uint64) ([]StreamEvent, <-chan StreamEvent, func(), error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, nil, nil, fmt.Errorf("server: no job %s", id)
	}
	if st := m.snapshot(j); st.State.Terminal() {
		// Jobs restored from disk already terminal never published to
		// their topic in this process: seal it around a synthesised
		// terminal event so late subscribers still see an ending.
		m.hub.ensureClosed(id, m.terminalEvent(j, st))
	}
	replay, ch, cancel := m.hub.subscribe(id, after)
	return replay, ch, cancel, nil
}

// terminalEvent synthesises the terminal stream event for a job that
// settled before this process started publishing, reusing the largest
// persisted trace seq so cursors stay monotonic.
func (m *Manager) terminalEvent(j *job, st Status) StreamEvent {
	var seq uint64
	events := j.trace.Events()
	for _, ev := range events {
		if ev.Seq > seq {
			seq = ev.Seq
		}
	}
	if seq == 0 {
		// Records persisted before events carried seqs.
		seq = uint64(len(events)) + 1
	}
	data, _ := json.Marshal(st)
	return StreamEvent{Seq: seq, Job: st.ID, Type: string(st.State), Data: data}
}

// WatchSubscribe attaches a subscriber to the all-jobs watch stream: a
// firehose of every job's live events with no replay (multi-job resume
// has no single cursor). The channel closes on manager shutdown.
func (m *Manager) WatchSubscribe() (<-chan StreamEvent, func()) {
	_, ch, cancel := m.hub.subscribeTopic(m.hub.watch, ^uint64(0))
	return ch, cancel
}

// streamSent records one SSE frame actually written to a subscriber
// (the cobrawalkd_stream_events_total / _bytes_total counters).
func (m *Manager) streamSent(frameBytes int) {
	m.met.streamEvents.Inc()
	m.met.streamBytes.Add(uint64(frameBytes))
}

// CacheStats snapshots the shared graph cache counters.
func (m *Manager) CacheStats() graphcache.Stats { return m.cache.Stats() }

// Registry is the manager's metrics registry (served at GET /metrics).
func (m *Manager) Registry() *obs.Registry { return m.met.reg }

// Events returns a job's span-event trace: the live in-memory history
// for jobs this process has touched, which for restored jobs starts
// from the events persisted in job.json.
func (m *Manager) Events(id string) ([]obs.Event, error) {
	return m.EventsAfter(id, 0)
}

// EventsAfter returns the stored events with Seq > after — the
// incremental form behind GET /v1/jobs/{id}/events?after=N. The seqs
// are the same numbers the SSE stream uses as event ids, so a client
// can switch between polling and streaming without losing its place.
func (m *Manager) EventsAfter(id string, after uint64) ([]obs.Event, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("server: no job %s", id)
	}
	return j.trace.EventsAfter(after), nil
}

// Counts returns the number of jobs in each state.
func (m *Manager) Counts() map[State]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[State]int)
	for _, j := range m.jobs {
		out[j.rec.State]++
	}
	return out
}

// Uptime reports how long the manager has been running.
func (m *Manager) Uptime() time.Duration { return time.Since(m.start) }

// Close stops the manager: in-flight sweeps cancel promptly and their
// persisted queued/running states are left intact, so a new Manager on
// the same directory resumes them. Every stream topic is sealed, so
// attached SSE handlers end their responses instead of hanging a
// server shutdown. Close blocks until every job goroutine has
// returned; it is idempotent.
func (m *Manager) Close() {
	m.cancel()
	m.wg.Wait()
	m.hub.closeAll()
}
