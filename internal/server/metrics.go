package server

import (
	"cobrawalk/internal/obs"
)

// serverMetrics is the manager's metric family set, registered once per
// manager on its registry (Config.Metrics or a private one). Counters
// and histograms are written at job/point transitions — never on the
// trial hot path — and the gauges are scrape-time reads of manager and
// graph-cache state, so instrumentation observes the computation without
// perturbing it.
type serverMetrics struct {
	reg  *obs.Registry
	http *obs.HTTPMetrics

	// jobsTotal counts lifecycle transitions by entered state; a job
	// contributes one "queued", at most one "running" and exactly one
	// terminal increment.
	jobsTotal *obs.CounterVec
	// jobSeconds observes running→terminal wall time.
	jobSeconds *obs.Histogram
	// pointsTotal / pointsResumed / trialsTotal count sweep progress
	// across all jobs; rate(trialsTotal) is the serving-path trials/sec.
	pointsTotal   *obs.Counter
	pointsResumed *obs.Counter
	trialsTotal   *obs.Counter
	// pointSeconds observes per-point compute time (resumed points are
	// loads, not computes, and are excluded).
	pointSeconds *obs.Histogram

	// Stream fan-out families. streamEvents/streamBytes count SSE
	// frames and bytes actually written to subscribers; streamDropped
	// counts events discarded by the drop-slowest policy and
	// streamSlow counts subscribers that dropped at least once.
	streamEvents  *obs.Counter
	streamBytes   *obs.Counter
	streamDropped *obs.Counter
	streamSlow    *obs.Counter
	// snapshotSeconds observes the encode+broadcast cost of one
	// mid-ensemble digest snapshot.
	snapshotSeconds *obs.Histogram
	// cacheHits/cacheMisses count dedup-cached completed reads.
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
}

// jobBuckets span the job/point durations the daemon sees: millisecond
// smoke points to multi-minute sweeps.
var jobBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600}

// snapshotBuckets span snapshot publish costs: microseconds for
// scalar-only payloads up to tens of milliseconds for full trajectory
// bands fanned out to thousands of subscribers.
var snapshotBuckets = []float64{0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1}

// newServerMetrics registers every serving-layer family on reg: job and
// point transition counters/histograms, scrape-time gauges over the
// manager (queue depth, running jobs, slots — running/slots is worker
// utilization), the graph-cache stats adapter, and the Go runtime
// families.
func newServerMetrics(m *Manager, reg *obs.Registry) *serverMetrics {
	sm := &serverMetrics{
		reg:  reg,
		http: obs.NewHTTPMetrics(reg, "cobrawalkd"),
		jobsTotal: reg.CounterVec("cobrawalkd_jobs_total",
			"Job lifecycle transitions, by entered state.", "state"),
		jobSeconds: reg.Histogram("cobrawalkd_job_seconds",
			"Job wall time from running to terminal, in seconds.", jobBuckets),
		pointsTotal: reg.Counter("cobrawalkd_sweep_points_total",
			"Sweep points completed across all jobs (resumed included)."),
		pointsResumed: reg.Counter("cobrawalkd_sweep_points_resumed_total",
			"Sweep points loaded from artifacts instead of recomputed."),
		trialsTotal: reg.Counter("cobrawalkd_sweep_trials_total",
			"Simulation trials folded into completed points across all jobs."),
		pointSeconds: reg.Histogram("cobrawalkd_sweep_point_seconds",
			"Per-point compute time in seconds (resumed points excluded).", jobBuckets),
		streamEvents: reg.Counter("cobrawalkd_stream_events_total",
			"SSE events written to stream subscribers across all streams."),
		streamBytes: reg.Counter("cobrawalkd_stream_bytes_total",
			"SSE frame bytes written to stream subscribers."),
		streamDropped: reg.Counter("cobrawalkd_stream_dropped_events_total",
			"Events discarded by the drop-slowest policy (subscriber buffer full)."),
		streamSlow: reg.Counter("cobrawalkd_stream_slow_clients_total",
			"Subscribers that fell behind far enough to drop at least one event."),
		snapshotSeconds: reg.Histogram("cobrawalkd_snapshot_seconds",
			"Encode+broadcast cost of one mid-ensemble digest snapshot, in seconds.", snapshotBuckets),
		cacheHits: reg.Counter("cobrawalkd_results_cache_hits_total",
			"Completed-artifact reads served from the dedup read cache."),
		cacheMisses: reg.Counter("cobrawalkd_results_cache_misses_total",
			"Completed-artifact reads that loaded from disk."),
	}
	reg.GaugeFunc("cobrawalkd_stream_subscribers",
		"Currently attached SSE stream subscribers (all jobs plus /v1/watch).",
		func() float64 { return float64(m.hub.subscribers()) })
	reg.GaugeFunc("cobrawalkd_results_cache_entries",
		"Payloads resident in the dedup read cache.",
		func() float64 { e, _ := m.readCache.stats(); return float64(e) })
	reg.GaugeFunc("cobrawalkd_results_cache_bytes",
		"Bytes resident in the dedup read cache.",
		func() float64 { _, b := m.readCache.stats(); return float64(b) })
	reg.GaugeFunc("cobrawalkd_jobs_queue_depth",
		"Jobs waiting for a scheduler slot.",
		func() float64 { return float64(m.Counts()[StateQueued]) })
	reg.GaugeFunc("cobrawalkd_jobs_running",
		"Jobs currently running (cobrawalkd_jobs_running / cobrawalkd_job_slots is worker utilization).",
		func() float64 { return float64(m.Counts()[StateRunning]) })
	reg.GaugeFunc("cobrawalkd_job_slots",
		"Configured concurrent job slots (Config.MaxConcurrent).",
		func() float64 { return float64(m.cfg.MaxConcurrent) })

	// Graph-cache stats adapter: the same counters /v1/cachestats serves,
	// as scrape-time reads of the shared cache.
	reg.CounterFunc("cobrawalkd_graphcache_hits_total",
		"Graph cache builds served from cache (waiters on in-flight builds included).",
		func() float64 { return float64(m.CacheStats().Hits) })
	reg.CounterFunc("cobrawalkd_graphcache_misses_total",
		"Graph cache requests that started a build.",
		func() float64 { return float64(m.CacheStats().Misses) })
	reg.CounterFunc("cobrawalkd_graphcache_evictions_total",
		"Graphs evicted to fit the vertex budget.",
		func() float64 { return float64(m.CacheStats().Evictions) })
	reg.CounterFunc("cobrawalkd_graphcache_disk_hits_total",
		"Cache misses served by mmapping a store file from the disk tier (-graph-dir).",
		func() float64 { return float64(m.CacheStats().DiskHits) })
	reg.CounterFunc("cobrawalkd_graphcache_disk_writes_total",
		"Built graphs spilled to disk-tier store files.",
		func() float64 { return float64(m.CacheStats().DiskWrites) })
	reg.GaugeFunc("cobrawalkd_graphcache_entries",
		"Graphs resident in the cache.",
		func() float64 { return float64(m.CacheStats().Entries) })
	reg.GaugeFunc("cobrawalkd_graphcache_vertices",
		"Total vertices resident in the cache (the budgeted unit).",
		func() float64 { return float64(m.CacheStats().Vertices) })

	obs.RegisterRuntime(reg)
	return sm
}
