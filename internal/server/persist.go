package server

import (
	"encoding/json"
	"fmt"
	"os"
)

// writeJSONFile persists v as indented JSON via temp-file + rename, so a
// crash mid-write never leaves a partial record for restore to trip on.
func writeJSONFile(path string, v any) error {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("server: encoding %s: %w", path, err)
	}
	blob = append(blob, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("server: writing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("server: committing %s: %w", path, err)
	}
	return nil
}

// readJSONFile loads path into v, rejecting unknown fields so a layout
// drift fails loudly instead of resuming a half-understood job.
func readJSONFile(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	return nil
}
