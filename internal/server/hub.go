package server

// hub.go is the fan-out layer behind the live-stream endpoints: every
// job lifecycle event, mid-ensemble snapshot and completed band is
// published once and broadcast to any number of SSE subscribers — a
// per-job topic for /v1/jobs/{id}/stream plus one all-jobs watch topic
// for /v1/watch (the neo-server api/watch.go subscription shape).
//
// The policy throughout is that observers must never slow the observed:
// publishes are non-blocking, each subscriber owns a bounded buffer,
// and a subscriber that stops reading has its *oldest* buffered events
// dropped to make room (drop-slowest) while the job and every other
// subscriber proceed at full speed. Drops are counted per subscriber
// and exported as metric families, so a falling-behind client is a
// graph, not a mystery.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"cobrawalk/internal/obs"
)

// StreamEvent is one event on a job's live stream. Seq is the job's
// trace sequence number — the same cursor space as /v1/jobs/{id}/events
// — and is rendered as the SSE event id, so Last-Event-ID reconnects
// and ?after polls resume from the same position.
type StreamEvent struct {
	Seq uint64 `json:"seq"`
	Job string `json:"job"`
	// Type names the event: lifecycle states ("queued", "running",
	// "recovered", "done", "failed", "cancelled", "cancel-requested"),
	// per-point progress ("point-start", "point"), mid-ensemble digest
	// snapshots ("snapshot") and completed quantile bands ("band").
	Type string `json:"type"`
	// Data is the JSON payload: a Status for lifecycle events, a
	// pointProgress, a snapshotEvent, or a trajectoryBand line.
	Data json.RawMessage `json:"data,omitempty"`

	// frame / watchFrame are the pre-rendered SSE wire frames, built
	// once at publish time and shared by every subscriber's write — at
	// 10k subscribers the fan-out cost is 10k copies of one buffer, not
	// 10k encodings.
	frame      []byte
	watchFrame []byte
}

const (
	// DefaultStreamBuffer is each subscriber's buffered-event capacity
	// when Config.StreamBuffer is unset.
	DefaultStreamBuffer = 64
	// streamHistoryCap bounds each job topic's retained history — the
	// replay window for Last-Event-ID reconnects and late subscribers.
	streamHistoryCap = 64
)

// subscriber is one attached stream reader: a bounded channel plus its
// drop count (guarded by the owning topic's mu).
type subscriber struct {
	ch      chan StreamEvent
	dropped uint64
}

// topic is one broadcast domain: a job's stream, or the global watch.
type topic struct {
	mu      sync.Mutex
	subs    map[*subscriber]struct{}
	history []StreamEvent
	closed  bool
}

func newTopic() *topic { return &topic{subs: make(map[*subscriber]struct{})} }

// hub owns the topic set. Counters are shared with serverMetrics.
type hub struct {
	buffer  int
	dropped *obs.Counter
	slow    *obs.Counter

	mu     sync.Mutex
	topics map[string]*topic
	watch  *topic
	count  atomic.Int64 // currently attached subscribers, all topics
}

func newHub(buffer int, dropped, slow *obs.Counter) *hub {
	if buffer <= 0 {
		buffer = DefaultStreamBuffer
	}
	return &hub{
		buffer:  buffer,
		dropped: dropped,
		slow:    slow,
		topics:  make(map[string]*topic),
		watch:   newTopic(),
	}
}

// subscribers reports the currently attached subscriber count (the
// cobrawalkd_stream_subscribers gauge).
func (h *hub) subscribers() int64 { return h.count.Load() }

// topic returns (creating if needed) the job's broadcast topic.
func (h *hub) topic(job string) *topic {
	h.mu.Lock()
	defer h.mu.Unlock()
	t, ok := h.topics[job]
	if !ok {
		t = newTopic()
		h.topics[job] = t
	}
	return t
}

// publish renders ev's wire frames once and broadcasts it to the job's
// subscribers and to every watch subscriber.
func (h *hub) publish(ev StreamEvent) {
	ev.frame = renderSSE(ev, false)
	ev.watchFrame = renderSSE(ev, true)
	h.topic(ev.Job).publish(ev, h, true)
	h.watch.publish(ev, h, false)
}

func (t *topic) publish(ev StreamEvent, h *hub, keepHistory bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	if keepHistory {
		if len(t.history) >= streamHistoryCap {
			copy(t.history, t.history[1:])
			t.history = t.history[:len(t.history)-1]
		}
		t.history = append(t.history, ev)
	}
	for s := range t.subs {
		t.send(s, ev, h)
	}
}

// send delivers ev without ever blocking: when the subscriber's buffer
// is full, its oldest buffered event is dropped to make room — the
// drop-slowest policy. Every send runs under t.mu and only publishers
// send on s.ch, so after one drain a retried send cannot fail again;
// the loop terminates in at most two rounds.
func (t *topic) send(s *subscriber, ev StreamEvent, h *hub) {
	for {
		select {
		case s.ch <- ev:
			return
		default:
		}
		select {
		case <-s.ch:
			if s.dropped == 0 && h.slow != nil {
				h.slow.Inc()
			}
			s.dropped++
			if h.dropped != nil {
				h.dropped.Inc()
			}
		default:
			// The reader consumed between our failed send and the
			// drain; the retry will land.
		}
	}
}

// subscribe attaches a reader to job's topic: it returns the retained
// history with Seq > after (the Last-Event-ID replay), a channel of
// subsequent events, and a cancel func the caller must invoke when
// done. On an already-closed topic — the job settled — the replay is
// returned with an already-closed channel, so late subscribers get the
// full retained history and an immediate end-of-stream.
func (h *hub) subscribe(job string, after uint64) ([]StreamEvent, <-chan StreamEvent, func()) {
	return h.subscribeTopic(h.topic(job), after)
}

func (h *hub) subscribeTopic(t *topic, after uint64) ([]StreamEvent, <-chan StreamEvent, func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var replay []StreamEvent
	for _, ev := range t.history {
		if ev.Seq > after {
			replay = append(replay, ev)
		}
	}
	if t.closed {
		done := make(chan StreamEvent)
		close(done)
		return replay, done, func() {}
	}
	s := &subscriber{ch: make(chan StreamEvent, h.buffer)}
	t.subs[s] = struct{}{}
	h.count.Add(1)
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			t.mu.Lock()
			defer t.mu.Unlock()
			if _, ok := t.subs[s]; ok {
				delete(t.subs, s)
				h.count.Add(-1)
			}
		})
	}
	return replay, s.ch, cancel
}

// close seals a job's topic after its terminal event: subscriber
// channels close (ending their SSE streams cleanly) while the retained
// history stays for late subscribers. Idempotent.
func (h *hub) close(job string) { h.topic(job).close(h) }

func (t *topic) close(h *hub) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	for s := range t.subs {
		close(s.ch)
		delete(t.subs, s)
		h.count.Add(-1)
	}
}

// ensureClosed makes a terminal job's topic servable even when this
// process never published to it (a job restored from disk already
// terminal): an empty topic gets the synthesised terminal event as its
// whole history, then seals. Idempotent.
func (h *hub) ensureClosed(job string, terminal StreamEvent) {
	t := h.topic(job)
	t.mu.Lock()
	if !t.closed && len(t.history) == 0 && terminal.Type != "" {
		terminal.frame = renderSSE(terminal, false)
		terminal.watchFrame = renderSSE(terminal, true)
		t.history = append(t.history, terminal)
	}
	t.mu.Unlock()
	t.close(h)
}

// closeAll seals every topic — manager shutdown. In-flight SSE
// handlers observe their channels closing and return promptly.
func (h *hub) closeAll() {
	h.mu.Lock()
	topics := make([]*topic, 0, len(h.topics)+1)
	for _, t := range h.topics {
		topics = append(topics, t)
	}
	topics = append(topics, h.watch)
	h.mu.Unlock()
	for _, t := range topics {
		t.close(h)
	}
}

// renderSSE renders an event's SSE wire frame. Per-job frames carry the
// bare payload under the job-local seq as event id; watch frames carry
// the full envelope (watch clients need job attribution) under a
// job-qualified id. JSON escapes newlines inside strings, so the data
// field is always a single `data:` line.
func renderSSE(ev StreamEvent, watch bool) []byte {
	var b bytes.Buffer
	if watch {
		fmt.Fprintf(&b, "id: %s:%d\nevent: %s\ndata: ", ev.Job, ev.Seq, ev.Type)
		blob, _ := json.Marshal(ev)
		b.Write(blob)
	} else {
		fmt.Fprintf(&b, "id: %d\nevent: %s\ndata: ", ev.Seq, ev.Type)
		if len(ev.Data) == 0 {
			b.WriteString("{}")
		} else {
			b.Write(ev.Data)
		}
	}
	b.WriteString("\n\n")
	return b.Bytes()
}
