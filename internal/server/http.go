package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"maps"
	"net/http"
	"os"
	"slices"
	"strconv"
	"strings"
	"time"

	"cobrawalk/internal/buildinfo"
	"cobrawalk/internal/obs"
	"cobrawalk/internal/process"
	"cobrawalk/internal/stats"
	"cobrawalk/internal/sweep"
)

// trajectoryBand is one line of the /v1/jobs/{id}/trajectories NDJSON
// stream: a point's trajectory metric with its per-round quantile bands,
// lifted verbatim from the job's persisted sweep records so the served
// bands match the cmd/sweep artifacts for the same spec byte for byte.
type trajectoryBand struct {
	ID     string `json:"id"`
	Metric string `json:"metric"`
	stats.TrajectorySummary
}

// NewHandler exposes a Manager over HTTP. The API (all JSON):
//
//	POST   /v1/jobs              submit a sweep spec (the cmd/sweep -spec
//	                             format, verbatim) → 202 + job status
//	GET    /v1/jobs              list jobs in creation order
//	GET    /v1/jobs/{id}         one job's live status
//	DELETE /v1/jobs/{id}         request cancellation
//	GET    /v1/jobs/{id}/results stream results.ndjson once done. Served
//	                             with a spec-hash ETag: identical specs
//	                             revalidate with If-None-Match → 304 and
//	                             repeated reads collapse onto one cached
//	                             artifact load
//	GET    /v1/jobs/{id}/trajectories
//	                             stream NDJSON per-round quantile bands
//	                             (one line per point × trajectory metric:
//	                             rounds, n, mean, p10/p50/p90), derived
//	                             from the same artifacts as /results and
//	                             ETag-cached the same way
//	GET    /v1/jobs/{id}/events  the job's span-event trace
//	                             (queued → running → per-point progress
//	                             → terminal), for post-mortems of stuck
//	                             or slow jobs. ?after=<seq> returns only
//	                             events past that cursor; the response's
//	                             "next" is the cursor for the next poll,
//	                             in the same sequence space as SSE ids
//	GET    /v1/jobs/{id}/stream  live SSE stream (text/event-stream) of
//	                             the job: lifecycle events, mid-ensemble
//	                             digest snapshots and completed bands,
//	                             with event ids for Last-Event-ID (or
//	                             ?after=) resume; ends after the
//	                             terminal event
//	GET    /v1/watch             live SSE firehose of every job's events
//	                             (data lines carry the full envelope
//	                             with job attribution)
//	GET    /v1/processes         the process registry
//	GET    /v1/families          the graph family registry
//	GET    /v1/metrics           the sweep metric registry
//	GET    /v1/cachestats        the shared graph cache counters
//	GET    /v1/healthz           liveness + uptime + build identity +
//	                             job counts + queue depth + cache
//	                             counters
//	GET    /v1/version           build identity of the binary
//	GET    /metrics              Prometheus text exposition: HTTP
//	                             request latency/status by route, job
//	                             lifecycle and queue depth, sweep
//	                             points/trials, graph cache, Go runtime
//
// Every request is wrapped in the observability middleware: an
// X-Request-Id (minted or propagated), a per-route latency/status
// metric, and one structured log line on the manager's logger.
//
// Errors are {"error": "..."} with a conventional status code: 400 for
// bad specs, 404 for unknown jobs, 409 for lifecycle conflicts (results
// before done, cancel after terminal).
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
		dec.DisallowUnknownFields()
		var spec sweep.Spec
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("parsing spec: %w", err))
			return
		}
		st, err := m.Submit(spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": m.List()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no job %s", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		serveArtifact(m, w, r, "results", renderResults)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trajectories", func(w http.ResponseWriter, r *http.Request) {
		serveArtifact(m, w, r, "trajectories", renderTrajectories)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		var after uint64
		if s := r.URL.Query().Get("after"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad after cursor %q: %w", s, err))
				return
			}
			after = v
		}
		events, err := m.EventsAfter(id, after)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		// next is the cursor for the next incremental poll: pass it
		// back as ?after= to receive only newer events.
		next := after
		for _, ev := range events {
			if ev.Seq > next {
				next = ev.Seq
			}
		}
		w.Header().Set("Cache-Control", "no-store")
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "events": events, "next": next})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		replay, ch, cancel, err := m.Subscribe(r.PathValue("id"), sseCursor(r))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		defer cancel()
		serveSSE(m, w, r, replay, ch, false)
	})
	mux.HandleFunc("GET /v1/watch", func(w http.ResponseWriter, r *http.Request) {
		ch, cancel := m.WatchSubscribe()
		defer cancel()
		serveSSE(m, w, r, nil, ch, true)
	})
	mux.HandleFunc("GET /v1/processes", func(w http.ResponseWriter, r *http.Request) {
		type proc struct {
			Name       string `json:"name"`
			Branched   bool   `json:"branched"`
			AcceptsRho bool   `json:"accepts_rho"`
			Summary    string `json:"summary"`
		}
		var out []proc
		for _, info := range process.All() {
			out = append(out, proc{info.Name, info.Branched, info.AcceptsRho, info.Summary})
		}
		writeJSON(w, http.StatusOK, map[string]any{"processes": out})
	})
	mux.HandleFunc("GET /v1/families", func(w http.ResponseWriter, r *http.Request) {
		type fam struct {
			Name    string `json:"name"`
			Degreed bool   `json:"degreed"`
		}
		var out []fam
		for _, f := range sweep.Families() {
			out = append(out, fam{f.Name, f.Degreed})
		}
		writeJSON(w, http.StatusOK, map[string]any{"families": out})
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		type metric struct {
			Name       string `json:"name"`
			Trajectory bool   `json:"trajectory"`
			Summary    string `json:"summary"`
		}
		var out []metric
		for _, m := range sweep.Metrics() {
			out = append(out, metric{m.Name, m.Trajectory, m.Summary})
		}
		writeJSON(w, http.StatusOK, map[string]any{"metrics": out})
	})
	mux.HandleFunc("GET /v1/cachestats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.CacheStats())
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		counts := m.Counts()
		writeJSON(w, http.StatusOK, map[string]any{
			"status":         "ok",
			"uptime_seconds": int64(m.Uptime().Seconds()),
			"build":          buildinfo.Read(),
			"jobs":           counts,
			"queue_depth":    counts[StateQueued],
			"running":        counts[StateRunning],
			"cache":          m.CacheStats(),
		})
	})
	mux.HandleFunc("GET /v1/version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, buildinfo.Read())
	})
	mux.Handle("GET /metrics", m.Registry().Handler())
	return obs.Instrument(mux, m.met.http, m.logger, obs.MuxRoute(mux))
}

// sseCursor extracts the resume position of a stream request: the SSE
// standard Last-Event-ID header (sent automatically by EventSource on
// reconnect) or an explicit ?after= query. Unparseable cursors mean
// "from the start of the retained history".
func sseCursor(r *http.Request) uint64 {
	s := r.Header.Get("Last-Event-ID")
	if s == "" {
		s = r.URL.Query().Get("after")
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0
	}
	return v
}

// serveSSE writes a text/event-stream response: the replay first, then
// live events as they arrive — batched per wakeup so a burst costs one
// flush — with heartbeat comments keeping idle connections alive
// through proxies. It returns when the event channel closes (the job
// settled or the manager shut down) or the client disconnects.
func serveSSE(m *Manager, w http.ResponseWriter, r *http.Request, replay []StreamEvent, ch <-chan StreamEvent, watch bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported by this connection"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	write := func(ev StreamEvent) bool {
		frame := ev.frame
		if watch {
			frame = ev.watchFrame
		}
		if frame == nil {
			frame = renderSSE(ev, watch)
		}
		n, err := w.Write(frame)
		m.streamSent(n)
		return err == nil
	}
	for _, ev := range replay {
		if !write(ev) {
			return
		}
	}
	fl.Flush()

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	ctx := r.Context()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return // stream complete: the terminal event is already out
			}
			if !write(ev) {
				return
			}
			for drained := false; !drained; {
				select {
				case ev, ok := <-ch:
					if !ok {
						fl.Flush()
						return
					}
					if !write(ev) {
						return
					}
				default:
					drained = true
				}
			}
			fl.Flush()
		case <-heartbeat.C:
			if _, err := w.Write([]byte(": ping\n\n")); err != nil {
				return
			}
			fl.Flush()
		case <-ctx.Done():
			return
		}
	}
}

// serveArtifact serves a completed job's derived NDJSON payload with
// the dedup-read machinery: a spec-hash ETag (If-None-Match → 304),
// the single-flight read cache for payloads worth retaining, and a
// periodically-flushed disk stream for oversized artifacts.
func serveArtifact(m *Manager, w http.ResponseWriter, r *http.Request, kind string, render func(io.Writer, string) error) {
	path, etag, err := m.ResultsMeta(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	w.Header().Set("ETag", etag)
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if st, err := os.Stat(path); err == nil && st.Size() > maxReadCacheEntry {
		// Too big to retain: stream straight from disk, flushing as it
		// goes so slow readers see bytes incrementally.
		render(newFlushWriter(w), path)
		return
	}
	blob, err := m.readCache.get(kind+":"+etag, func() ([]byte, error) {
		var buf bytes.Buffer
		if err := render(&buf, path); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("reading %s: %w", kind, err))
		return
	}
	w.Write(blob)
	if fl, ok := w.(http.Flusher); ok {
		fl.Flush()
	}
}

// renderResults copies results.ndjson verbatim.
func renderResults(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = io.Copy(w, f)
	return err
}

// renderTrajectories lifts the trajectory blocks out of results.ndjson
// as one trajectoryBand line per point × metric (metrics in sorted
// order). The encoding is shared with the stream's band events, so a
// client that concatenates band event data reproduces these bytes.
func renderTrajectories(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(w)
	dec := json.NewDecoder(f)
	for dec.More() {
		var res sweep.Result
		if err := dec.Decode(&res); err != nil {
			return err
		}
		for _, name := range slices.Sorted(maps.Keys(res.Trajectories)) {
			if err := enc.Encode(trajectoryBand{ID: res.ID, Metric: name, TrajectorySummary: res.Trajectories[name]}); err != nil {
				return err
			}
		}
	}
	return nil
}

// etagMatch implements If-None-Match: "*" matches any representation;
// otherwise any listed entry equal to etag matches (weak validators
// compare by opaque value).
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == etag {
			return true
		}
	}
	return false
}

// flushEvery is the streamed-artifact flush granularity.
const flushEvery = 64 << 10

// flushWriter flushes the underlying ResponseWriter after every
// flushEvery bytes, so long NDJSON responses reach readers
// incrementally instead of pooling in server buffers until EOF.
type flushWriter struct {
	w  io.Writer
	fl http.Flusher
	n  int
}

func newFlushWriter(w http.ResponseWriter) io.Writer {
	if fl, ok := w.(http.Flusher); ok {
		return &flushWriter{w: w, fl: fl}
	}
	return w
}

func (f *flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	f.n += n
	if f.n >= flushEvery {
		f.n = 0
		f.fl.Flush()
	}
	return n, err
}

// statusFor maps manager errors onto HTTP codes by their shape: unknown
// job → 404, lifecycle conflicts → 409.
func statusFor(err error) int {
	msg := err.Error()
	if strings.Contains(msg, "no job") {
		return http.StatusNotFound
	}
	return http.StatusConflict
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
