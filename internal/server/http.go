package server

import (
	"encoding/json"
	"fmt"
	"io"
	"maps"
	"net/http"
	"os"
	"slices"
	"strings"

	"cobrawalk/internal/buildinfo"
	"cobrawalk/internal/obs"
	"cobrawalk/internal/process"
	"cobrawalk/internal/stats"
	"cobrawalk/internal/sweep"
)

// trajectoryBand is one line of the /v1/jobs/{id}/trajectories NDJSON
// stream: a point's trajectory metric with its per-round quantile bands,
// lifted verbatim from the job's persisted sweep records so the served
// bands match the cmd/sweep artifacts for the same spec byte for byte.
type trajectoryBand struct {
	ID     string `json:"id"`
	Metric string `json:"metric"`
	stats.TrajectorySummary
}

// NewHandler exposes a Manager over HTTP. The API (all JSON):
//
//	POST   /v1/jobs              submit a sweep spec (the cmd/sweep -spec
//	                             format, verbatim) → 202 + job status
//	GET    /v1/jobs              list jobs in creation order
//	GET    /v1/jobs/{id}         one job's live status
//	DELETE /v1/jobs/{id}         request cancellation
//	GET    /v1/jobs/{id}/results stream results.ndjson once done
//	GET    /v1/jobs/{id}/trajectories
//	                             stream NDJSON per-round quantile bands
//	                             (one line per point × trajectory metric:
//	                             rounds, n, mean, p10/p50/p90), derived
//	                             from the same artifacts as /results
//	GET    /v1/jobs/{id}/events  the job's span-event trace
//	                             (queued → running → per-point progress
//	                             → terminal), for post-mortems of stuck
//	                             or slow jobs
//	GET    /v1/processes         the process registry
//	GET    /v1/families          the graph family registry
//	GET    /v1/metrics           the sweep metric registry
//	GET    /v1/cachestats        the shared graph cache counters
//	GET    /v1/healthz           liveness + uptime + build identity +
//	                             job counts + queue depth + cache
//	                             counters
//	GET    /v1/version           build identity of the binary
//	GET    /metrics              Prometheus text exposition: HTTP
//	                             request latency/status by route, job
//	                             lifecycle and queue depth, sweep
//	                             points/trials, graph cache, Go runtime
//
// Every request is wrapped in the observability middleware: an
// X-Request-Id (minted or propagated), a per-route latency/status
// metric, and one structured log line on the manager's logger.
//
// Errors are {"error": "..."} with a conventional status code: 400 for
// bad specs, 404 for unknown jobs, 409 for lifecycle conflicts (results
// before done, cancel after terminal).
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
		dec.DisallowUnknownFields()
		var spec sweep.Spec
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("parsing spec: %w", err))
			return
		}
		st, err := m.Submit(spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": m.List()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no job %s", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		path, err := m.ResultsPath(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		f, err := os.Open(path)
		if err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("opening results: %w", err))
			return
		}
		defer f.Close()
		w.Header().Set("Content-Type", "application/x-ndjson")
		io.Copy(w, f)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trajectories", func(w http.ResponseWriter, r *http.Request) {
		path, err := m.ResultsPath(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		f, err := os.Open(path)
		if err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("opening results: %w", err))
			return
		}
		defer f.Close()
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		dec := json.NewDecoder(f)
		for dec.More() {
			var res sweep.Result
			if err := dec.Decode(&res); err != nil {
				// Headers are already out; truncate the stream rather
				// than emitting a half-band.
				return
			}
			for _, name := range slices.Sorted(maps.Keys(res.Trajectories)) {
				enc.Encode(trajectoryBand{ID: res.ID, Metric: name, TrajectorySummary: res.Trajectories[name]})
			}
		}
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		events, err := m.Events(id)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "events": events})
	})
	mux.HandleFunc("GET /v1/processes", func(w http.ResponseWriter, r *http.Request) {
		type proc struct {
			Name       string `json:"name"`
			Branched   bool   `json:"branched"`
			AcceptsRho bool   `json:"accepts_rho"`
			Summary    string `json:"summary"`
		}
		var out []proc
		for _, info := range process.All() {
			out = append(out, proc{info.Name, info.Branched, info.AcceptsRho, info.Summary})
		}
		writeJSON(w, http.StatusOK, map[string]any{"processes": out})
	})
	mux.HandleFunc("GET /v1/families", func(w http.ResponseWriter, r *http.Request) {
		type fam struct {
			Name    string `json:"name"`
			Degreed bool   `json:"degreed"`
		}
		var out []fam
		for _, f := range sweep.Families() {
			out = append(out, fam{f.Name, f.Degreed})
		}
		writeJSON(w, http.StatusOK, map[string]any{"families": out})
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		type metric struct {
			Name       string `json:"name"`
			Trajectory bool   `json:"trajectory"`
			Summary    string `json:"summary"`
		}
		var out []metric
		for _, m := range sweep.Metrics() {
			out = append(out, metric{m.Name, m.Trajectory, m.Summary})
		}
		writeJSON(w, http.StatusOK, map[string]any{"metrics": out})
	})
	mux.HandleFunc("GET /v1/cachestats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.CacheStats())
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		counts := m.Counts()
		writeJSON(w, http.StatusOK, map[string]any{
			"status":         "ok",
			"uptime_seconds": int64(m.Uptime().Seconds()),
			"build":          buildinfo.Read(),
			"jobs":           counts,
			"queue_depth":    counts[StateQueued],
			"running":        counts[StateRunning],
			"cache":          m.CacheStats(),
		})
	})
	mux.HandleFunc("GET /v1/version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, buildinfo.Read())
	})
	mux.Handle("GET /metrics", m.Registry().Handler())
	return obs.Instrument(mux, m.met.http, m.logger, obs.MuxRoute(mux))
}

// statusFor maps manager errors onto HTTP codes by their shape: unknown
// job → 404, lifecycle conflicts → 409.
func statusFor(err error) int {
	msg := err.Error()
	if strings.Contains(msg, "no job") {
		return http.StatusNotFound
	}
	return http.StatusConflict
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
