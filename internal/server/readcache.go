package server

// readcache.go collapses identical completed-artifact reads: results
// and trajectory payloads are keyed by the job's spec-hash ETag, so N
// clients — or N identical jobs — fetching the same completed sweep
// cost one disk read and one render, the read-path analogue of
// graphcache's single-flight build dedup. Entries are LRU-evicted
// against a byte budget.

import (
	"container/list"
	"sync"

	"cobrawalk/internal/obs"
)

const (
	// defaultReadCacheBudget bounds resident cached payload bytes.
	defaultReadCacheBudget = 64 << 20
	// maxReadCacheEntry keeps one giant artifact from evicting the
	// whole cache: larger payloads are served but not retained (the
	// HTTP layer streams anything above it straight from disk).
	maxReadCacheEntry = 8 << 20
)

type readCacheEntry struct {
	key string
	// ready closes when blob/err are set; concurrent getters of an
	// in-flight key wait on it instead of loading again.
	ready chan struct{}
	blob  []byte
	err   error
	elem  *list.Element
}

type readCache struct {
	budget int64
	hits   *obs.Counter
	misses *obs.Counter

	mu      sync.Mutex
	size    int64
	entries map[string]*readCacheEntry
	lru     *list.List // front = most recently used
}

func newReadCache(budget int64, hits, misses *obs.Counter) *readCache {
	if budget <= 0 {
		budget = defaultReadCacheBudget
	}
	return &readCache{
		budget:  budget,
		hits:    hits,
		misses:  misses,
		entries: make(map[string]*readCacheEntry),
		lru:     list.New(),
	}
}

// get returns the payload for key, invoking load exactly once across
// concurrent callers (single flight). Failed loads are not cached, so
// a transient error never poisons the key; oversized payloads are
// returned but not retained.
func (c *readCache) get(key string, load func() ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		<-e.ready
		if e.err == nil && c.hits != nil {
			c.hits.Inc()
		}
		return e.blob, e.err
	}
	e := &readCacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	if c.misses != nil {
		c.misses.Inc()
	}

	e.blob, e.err = load()
	close(e.ready)

	c.mu.Lock()
	defer c.mu.Unlock()
	if e.err != nil || len(e.blob) > maxReadCacheEntry {
		delete(c.entries, key)
		return e.blob, e.err
	}
	e.elem = c.lru.PushFront(e)
	c.size += int64(len(e.blob))
	for c.size > c.budget {
		back := c.lru.Back()
		if back == nil || back == e.elem {
			break
		}
		old := back.Value.(*readCacheEntry)
		c.lru.Remove(back)
		delete(c.entries, old.key)
		c.size -= int64(len(old.blob))
	}
	return e.blob, e.err
}

// stats snapshots the resident entry and byte counts (for the
// cobrawalkd_results_cache_* gauges).
func (c *readCache) stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len(), c.size
}
