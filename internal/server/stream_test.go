package server

// stream_test.go covers the live-observability layer: the fan-out hub's
// drop-slowest policy, the SSE endpoints (replay, Last-Event-ID resume,
// the watch firehose, byte-identity of streamed bands against the
// polled artifact), the ?after incremental event cursor, and the
// spec-hash ETag / dedup-read-cache behaviour of completed reads.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cobrawalk/internal/obs"
)

func testHub(buffer int) (*hub, *obs.Counter, *obs.Counter) {
	reg := obs.NewRegistry()
	dropped := reg.Counter("dropped_total", "t")
	slow := reg.Counter("slow_total", "t")
	return newHub(buffer, dropped, slow), dropped, slow
}

// TestHubDropSlowest pins the core fan-out guarantee: a subscriber that
// stops reading loses its *oldest* buffered events — exactly as many as
// overflowed — while the publisher never blocks and a keeping-up
// subscriber sees every event.
func TestHubDropSlowest(t *testing.T) {
	h, dropped, slow := testHub(4)

	_, slowCh, cancelSlow := h.subscribe("job", 0)
	defer cancelSlow()
	_, fastCh, cancelFast := h.subscribe("job", 0)
	defer cancelFast()

	// Publish more than the buffer holds without either reader running.
	// publish is synchronous, so returning at all proves the slow
	// subscriber did not stall the publisher.
	const total = 10
	for i := 1; i <= total; i++ {
		h.publish(StreamEvent{Seq: uint64(i), Job: "job", Type: "tick"})
	}

	// The fast subscriber also has buffer 4 and wasn't reading, so both
	// dropped total-4 events; what remains is the newest 4, in order.
	wantDropped := uint64(2 * (total - 4))
	if got := dropped.Value(); got != wantDropped {
		t.Fatalf("dropped counter = %d, want %d", got, wantDropped)
	}
	if got := slow.Value(); got != 2 {
		t.Fatalf("slow-client counter = %d, want 2 (each subscriber counted once)", got)
	}
	for _, ch := range []<-chan StreamEvent{slowCh, fastCh} {
		for want := uint64(total - 3); want <= total; want++ {
			ev := <-ch
			if ev.Seq != want {
				t.Fatalf("buffered seq = %d, want %d (drop-oldest order)", ev.Seq, want)
			}
		}
		select {
		case ev := <-ch:
			t.Fatalf("unexpected extra buffered event %+v", ev)
		default:
		}
	}

	// A subscriber that keeps up drops nothing more. publish is
	// synchronous, so reading in lockstep guarantees the fast buffer
	// never overflows, while the idle one — drained above, so 4 slots
	// free — absorbs 4 then drops the remaining 16.
	before := dropped.Value()
	for i := total + 1; i <= total+20; i++ {
		h.publish(StreamEvent{Seq: uint64(i), Job: "job", Type: "tick"})
		if ev := <-fastCh; ev.Seq != uint64(i) {
			t.Fatalf("keeping-up subscriber saw seq %d, want %d", ev.Seq, i)
		}
	}
	if got := dropped.Value() - before; got != 16 {
		t.Fatalf("dropped while one subscriber kept up = %d, want 16 (idle subscriber only)", got)
	}
	if got := slow.Value(); got != 2 {
		t.Fatalf("slow-client counter grew to %d; keeping-up subscriber miscounted", got)
	}
}

// TestHubCloseAndReplay pins topic sealing: subscribers' channels close
// after the terminal event, late subscribers get the retained history
// with an immediately-closed channel, and Last-Event-ID style cursors
// trim the replay.
func TestHubCloseAndReplay(t *testing.T) {
	h, _, _ := testHub(8)
	_, ch, cancel := h.subscribe("job", 0)
	defer cancel()

	for i := 1; i <= 5; i++ {
		h.publish(StreamEvent{Seq: uint64(i), Job: "job", Type: "tick"})
	}
	h.close("job")

	var got []uint64
	for ev := range ch {
		got = append(got, ev.Seq)
	}
	if len(got) != 5 {
		t.Fatalf("live subscriber saw %v, want seqs 1..5 then close", got)
	}

	replay, late, lateCancel := h.subscribe("job", 2)
	defer lateCancel()
	if len(replay) != 3 || replay[0].Seq != 3 {
		t.Fatalf("late replay after cursor 2 = %+v, want seqs 3..5", replay)
	}
	if _, open := <-late; open {
		t.Fatal("late subscriber's channel should be pre-closed on a sealed topic")
	}
	if h.subscribers() != 0 {
		t.Fatalf("subscriber gauge = %d after close, want 0", h.subscribers())
	}
}

// sseEvent is one parsed text/event-stream frame.
type sseEvent struct {
	ID   string
	Type string
	Data string
}

// readSSE parses frames off an event-stream body until it ends or stop
// returns true for a frame.
func readSSE(t *testing.T, r io.Reader, stop func(sseEvent) bool) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.Type != "" || cur.Data != "" {
				events = append(events, cur)
				if stop != nil && stop(cur) {
					return events
				}
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.ID = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		default:
			t.Fatalf("unparseable SSE line %q", line)
		}
	}
	return events
}

// streamJob opens the job's SSE stream and reads it to end-of-stream.
func streamJob(t *testing.T, base, id string, hdr map[string]string) []sseEvent {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("stream cache-control %q", cc)
	}
	return readSSE(t, resp.Body, nil)
}

// TestSSEStreamGolden is the end-to-end pin for live streaming: a
// subscriber attached for the job's whole life sees the lifecycle in
// order with at least one mid-ensemble snapshot before the terminal
// event, and the concatenated band event payloads are byte-identical to
// the polled /trajectories NDJSON — watching live loses nothing over
// polling after the fact.
func TestSSEStreamGolden(t *testing.T) {
	m := newTestManager(t, t.TempDir(), Config{
		TrialWorkers:     2,
		SnapshotInterval: time.Nanosecond, // every fold delivers
	})
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	specBlob, err := json.Marshal(trajectorySpec())
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if code := httpJSON(t, http.MethodPost, ts.URL+"/v1/jobs", specBlob, &st); code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d", code)
	}

	// Subscribe immediately: the replay covers anything already
	// published, the live channel the rest.
	events := streamJob(t, ts.URL, st.ID, nil)

	var kinds []string
	var snapshots, bands int
	var bandData bytes.Buffer
	lastSeq := uint64(0)
	for _, ev := range events {
		kinds = append(kinds, ev.Type)
		var seq uint64
		if _, err := fmt.Sscanf(ev.ID, "%d", &seq); err != nil {
			t.Fatalf("event id %q is not a sequence number", ev.ID)
		}
		if seq <= lastSeq {
			t.Fatalf("event ids not strictly increasing: %d after %d", seq, lastSeq)
		}
		lastSeq = seq
		switch ev.Type {
		case "snapshot":
			snapshots++
			var snap struct {
				Point  string `json:"point"`
				Trials int    `json:"trials"`
				Total  int    `json:"total"`
			}
			if err := json.Unmarshal([]byte(ev.Data), &snap); err != nil {
				t.Fatalf("snapshot payload %q: %v", ev.Data, err)
			}
			if snap.Point == "" || snap.Trials < 1 || snap.Trials > snap.Total {
				t.Fatalf("implausible snapshot payload %q", ev.Data)
			}
		case "band":
			bands++
			bandData.WriteString(ev.Data)
			bandData.WriteByte('\n')
		}
	}
	seq := strings.Join(kinds, ",")
	if !strings.HasPrefix(seq, "queued,running,") || !strings.HasSuffix(seq, ",done") {
		t.Fatalf("stream lifecycle out of order: %s", seq)
	}
	if snapshots == 0 {
		t.Fatalf("no snapshot events before terminal; stream was %s", seq)
	}
	// trajectorySpec: 2 points × 2 trajectory metrics.
	if bands != 4 {
		t.Fatalf("got %d band events, want 4 (stream was %s)", bands, seq)
	}

	// Byte-identity: streamed bands concatenate to the polled artifact.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/trajectories")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	polled, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bandData.Bytes(), polled) {
		t.Fatalf("streamed band bytes differ from polled /trajectories:\nstream: %q\npolled: %q",
			bandData.Bytes(), polled)
	}

	// Last-Event-ID resume: replaying from a mid-stream cursor returns
	// only the retained events past it, under the same ids.
	cursor := events[2].ID // some event well before the terminal one
	resumed := streamJob(t, ts.URL, st.ID, map[string]string{"Last-Event-ID": cursor})
	if len(resumed) == 0 || len(resumed) >= len(events) {
		t.Fatalf("resume from %s replayed %d events, want a strict tail of %d", cursor, len(resumed), len(events))
	}
	if got, want := resumed[0].ID, events[3].ID; got != want {
		t.Fatalf("resume from %s starts at id %s, want %s", cursor, got, want)
	}
	if resumed[len(resumed)-1].Type != "done" {
		t.Fatalf("resumed stream does not end terminal: %+v", resumed[len(resumed)-1])
	}
}

// TestSSEAfterQueryCursor pins the ?after= spelling of stream resume.
func TestSSEAfterQueryCursor(t *testing.T) {
	m := newTestManager(t, t.TempDir(), Config{SnapshotInterval: time.Hour})
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	specBlob, _ := json.Marshal(smokeSpec())
	var st Status
	httpJSON(t, http.MethodPost, ts.URL+"/v1/jobs", specBlob, &st)
	pollUntil(t, ts.URL, st.ID, terminal)

	full := streamJob(t, ts.URL, st.ID, nil)
	if len(full) < 3 {
		t.Fatalf("terminal replay too short: %+v", full)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/stream?after=" + full[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	tail := readSSE(t, resp.Body, nil)
	if len(tail) != len(full)-1 || tail[0].ID != full[1].ID {
		t.Fatalf("?after=%s returned %d events starting %q, want %d starting %q",
			full[0].ID, len(tail), tail[0].ID, len(full)-1, full[1].ID)
	}
}

// TestWatchFirehose pins /v1/watch: events from any job arrive with job
// attribution in the envelope and job-qualified event ids.
func TestWatchFirehose(t *testing.T) {
	m := newTestManager(t, t.TempDir(), Config{SnapshotInterval: time.Hour})
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/watch", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	specBlob, _ := json.Marshal(smokeSpec())
	var st Status
	if code := httpJSON(t, http.MethodPost, ts.URL+"/v1/jobs", specBlob, &st); code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d", code)
	}

	events := readSSE(t, resp.Body, func(ev sseEvent) bool { return ev.Type == "done" })
	if len(events) == 0 || events[len(events)-1].Type != "done" {
		t.Fatalf("watch stream never delivered the terminal event: %+v", events)
	}
	for _, ev := range events {
		if !strings.HasPrefix(ev.ID, st.ID+":") {
			t.Fatalf("watch event id %q lacks job-qualified prefix %q", ev.ID, st.ID+":")
		}
		var envelope StreamEvent
		if err := json.Unmarshal([]byte(ev.Data), &envelope); err != nil {
			t.Fatalf("watch envelope %q: %v", ev.Data, err)
		}
		if envelope.Job != st.ID || envelope.Type != ev.Type || envelope.Seq == 0 {
			t.Fatalf("watch envelope %+v disagrees with frame %+v", envelope, ev)
		}
	}
}

// TestEventsAfterCursor pins the poll-side of the shared sequence
// space: ?after=<seq> returns only newer events, "next" is the resume
// cursor, and the seqs match the SSE event ids.
func TestEventsAfterCursor(t *testing.T) {
	m := newTestManager(t, t.TempDir(), Config{SnapshotInterval: time.Hour})
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	specBlob, _ := json.Marshal(smokeSpec())
	var st Status
	httpJSON(t, http.MethodPost, ts.URL+"/v1/jobs", specBlob, &st)
	pollUntil(t, ts.URL, st.ID, terminal)

	type eventsResp struct {
		Events []obs.Event `json:"events"`
		Next   uint64      `json:"next"`
	}
	var full eventsResp
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("events cache-control %q, want no-store", cc)
	}
	if err := json.Unmarshal(blob, &full); err != nil {
		t.Fatal(err)
	}
	if len(full.Events) < 4 {
		t.Fatalf("too few events: %+v", full.Events)
	}
	if full.Next != full.Events[len(full.Events)-1].Seq {
		t.Fatalf("next = %d, want last seq %d", full.Next, full.Events[len(full.Events)-1].Seq)
	}

	cut := full.Events[1].Seq
	var tail eventsResp
	if code := httpJSON(t, http.MethodGet,
		fmt.Sprintf("%s/v1/jobs/%s/events?after=%d", ts.URL, st.ID, cut), nil, &tail); code != http.StatusOK {
		t.Fatalf("GET events?after: status %d", code)
	}
	if len(tail.Events) != len(full.Events)-2 || tail.Events[0].Seq != full.Events[2].Seq {
		t.Fatalf("?after=%d returned %+v, want the tail past it", cut, tail.Events)
	}

	var empty eventsResp
	httpJSON(t, http.MethodGet,
		fmt.Sprintf("%s/v1/jobs/%s/events?after=%d", ts.URL, st.ID, full.Next), nil, &empty)
	if len(empty.Events) != 0 || empty.Next != full.Next {
		t.Fatalf("polling past next=%d returned %+v", full.Next, empty)
	}

	var errResp map[string]string
	if code := httpJSON(t, http.MethodGet,
		ts.URL+"/v1/jobs/"+st.ID+"/events?after=bogus", nil, &errResp); code != http.StatusBadRequest {
		t.Fatalf("bad cursor: status %d, want 400", code)
	}
}

// TestETagConditionalReads pins the dedup-read layer: completed
// artifacts carry a spec-hash ETag, If-None-Match revalidates to 304
// with no body, repeated reads hit the in-memory cache, and a different
// spec gets a different ETag.
func TestETagConditionalReads(t *testing.T) {
	m := newTestManager(t, t.TempDir(), Config{SnapshotInterval: time.Hour})
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	run := func(spec any) Status {
		blob, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		if code := httpJSON(t, http.MethodPost, ts.URL+"/v1/jobs", blob, &st); code != http.StatusAccepted {
			t.Fatalf("POST /v1/jobs: status %d", code)
		}
		final := pollUntil(t, ts.URL, st.ID, terminal)
		if final.State != StateDone {
			t.Fatalf("job finished as %+v", final)
		}
		return final
	}
	get := func(id, kind, inm string) (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+id+"/"+kind, nil)
		if err != nil {
			t.Fatal(err)
		}
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		blob, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, blob
	}

	st := run(smokeSpec())
	resp, body := get(st.ID, "results", "")
	etag := resp.Header.Get("ETag")
	if resp.StatusCode != http.StatusOK || etag == "" || len(body) == 0 {
		t.Fatalf("first read: status %d etag %q len %d", resp.StatusCode, etag, len(body))
	}
	if !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) {
		t.Fatalf("etag %q is not a quoted strong validator", etag)
	}

	// Revalidation: 304, no body, ETag still present.
	resp304, body304 := get(st.ID, "results", etag)
	if resp304.StatusCode != http.StatusNotModified || len(body304) != 0 {
		t.Fatalf("revalidation: status %d body %q", resp304.StatusCode, body304)
	}
	if resp304.Header.Get("ETag") != etag {
		t.Fatalf("304 etag %q, want %q", resp304.Header.Get("ETag"), etag)
	}

	// A stale validator serves the full payload again — from cache.
	missesBefore := m.met.cacheMisses.Value()
	hitsBefore := m.met.cacheHits.Value()
	resp2, body2 := get(st.ID, "results", `"deadbeef"`)
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(body2, body) {
		t.Fatalf("stale-validator read: status %d, body drifted %v", resp2.StatusCode, !bytes.Equal(body2, body))
	}
	if m.met.cacheHits.Value() != hitsBefore+1 || m.met.cacheMisses.Value() != missesBefore {
		t.Fatalf("repeat read: hits %d→%d misses %d→%d, want one hit and no miss",
			hitsBefore, m.met.cacheHits.Value(), missesBefore, m.met.cacheMisses.Value())
	}

	// Trajectories share the spec-hash validator but cache separately.
	respTraj, _ := get(st.ID, "trajectories", "")
	if respTraj.Header.Get("ETag") != etag {
		t.Fatalf("trajectories etag %q, want %q", respTraj.Header.Get("ETag"), etag)
	}
	if r, b := get(st.ID, "trajectories", etag); r.StatusCode != http.StatusNotModified || len(b) != 0 {
		t.Fatalf("trajectories revalidation: status %d body %q", r.StatusCode, b)
	}

	// A different spec — changed seed — must move the validator.
	other := smokeSpec()
	other.Seed = 12
	st2 := run(other)
	respOther, _ := get(st2.ID, "results", "")
	if otherTag := respOther.Header.Get("ETag"); otherTag == etag || otherTag == "" {
		t.Fatalf("changed spec kept etag %q", otherTag)
	}

	// An identical spec resubmitted shares the validator: the whole
	// point of spec-hash ETags is dedup across identical work.
	st3 := run(smokeSpec())
	respSame, _ := get(st3.ID, "results", "")
	if respSame.Header.Get("ETag") != etag {
		t.Fatalf("identical spec got etag %q, want shared %q", respSame.Header.Get("ETag"), etag)
	}
}
