package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cobrawalk/internal/obs"
)

// metricFamilies scrapes GET /metrics and returns the "# TYPE" family
// declarations as "name type" strings, in exposition order, plus the
// raw body for value assertions.
func metricFamilies(t *testing.T, base string) ([]string, string) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("GET /metrics content type %q", ct)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var fams []string
	for _, line := range strings.Split(string(blob), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fams = append(fams, rest)
		}
	}
	return fams, string(blob)
}

// TestMetricsGoldenFamilies pins the full metric family surface of
// GET /metrics: the exact names and types, in exposition (sorted) order.
// A family appearing, disappearing or changing type is a contract change
// and must show up in this golden list.
func TestMetricsGoldenFamilies(t *testing.T) {
	m := newTestManager(t, t.TempDir(), Config{TrialWorkers: 2})
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	var st Status
	spec, _ := json.Marshal(smokeSpec())
	if code := httpJSON(t, http.MethodPost, ts.URL+"/v1/jobs", spec, &st); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	pollUntil(t, ts.URL, st.ID, terminal)

	fams, body := metricFamilies(t, ts.URL)
	want := []string{
		"cobrawalkd_graphcache_disk_hits_total counter",
		"cobrawalkd_graphcache_disk_writes_total counter",
		"cobrawalkd_graphcache_entries gauge",
		"cobrawalkd_graphcache_evictions_total counter",
		"cobrawalkd_graphcache_hits_total counter",
		"cobrawalkd_graphcache_misses_total counter",
		"cobrawalkd_graphcache_vertices gauge",
		"cobrawalkd_http_request_seconds histogram",
		"cobrawalkd_http_requests_in_flight gauge",
		"cobrawalkd_http_requests_total counter",
		"cobrawalkd_job_seconds histogram",
		"cobrawalkd_job_slots gauge",
		"cobrawalkd_jobs_queue_depth gauge",
		"cobrawalkd_jobs_running gauge",
		"cobrawalkd_jobs_total counter",
		"cobrawalkd_results_cache_bytes gauge",
		"cobrawalkd_results_cache_entries gauge",
		"cobrawalkd_results_cache_hits_total counter",
		"cobrawalkd_results_cache_misses_total counter",
		"cobrawalkd_snapshot_seconds histogram",
		"cobrawalkd_stream_bytes_total counter",
		"cobrawalkd_stream_dropped_events_total counter",
		"cobrawalkd_stream_events_total counter",
		"cobrawalkd_stream_slow_clients_total counter",
		"cobrawalkd_stream_subscribers gauge",
		"cobrawalkd_sweep_point_seconds histogram",
		"cobrawalkd_sweep_points_resumed_total counter",
		"cobrawalkd_sweep_points_total counter",
		"cobrawalkd_sweep_trials_total counter",
		"go_gc_cycles_total counter",
		"go_gc_pause_seconds_total counter",
		"go_goroutines gauge",
		"go_heap_alloc_bytes gauge",
		"go_heap_objects gauge",
		"go_sys_bytes gauge",
		"process_uptime_seconds gauge",
	}
	if len(want) < 12 {
		t.Fatalf("golden list shrank below the contract: %d families", len(want))
	}
	if got, wantStr := strings.Join(fams, "\n"), strings.Join(want, "\n"); got != wantStr {
		t.Errorf("metric families drifted:\ngot:\n%s\nwant:\n%s", got, wantStr)
	}

	// The completed job must be visible in the live values: 2 points,
	// 5 trials each, one done job, and the requests this test made.
	for _, line := range []string{
		"cobrawalkd_sweep_points_total 2",
		"cobrawalkd_sweep_trials_total 10",
		`cobrawalkd_jobs_total{state="done"} 1`,
		`cobrawalkd_jobs_total{state="queued"} 1`,
		`cobrawalkd_http_requests_total{route="POST /v1/jobs",method="POST",code="202"} 1`,
	} {
		if !strings.Contains(body, line+"\n") {
			t.Errorf("scrape lacks %q", line)
		}
	}
	// One graph, two points sharing it: one miss, one hit.
	if !strings.Contains(body, "cobrawalkd_graphcache_hits_total 1\n") ||
		!strings.Contains(body, "cobrawalkd_graphcache_misses_total 1\n") {
		t.Errorf("graph cache adapter not reflecting shared build:\n%s", body)
	}
}

// TestHTTPErrorPaths drives the conventional error statuses and asserts
// all three observability surfaces agree: the response code, the
// request-log line, and the per-route counter increment.
func TestHTTPErrorPaths(t *testing.T) {
	var logBuf bytes.Buffer
	logger, err := obs.NewLogger(&logBuf, obs.LogConfig{Level: "info"})
	if err != nil {
		t.Fatal(err)
	}
	m := newTestManager(t, t.TempDir(), Config{Logger: logger})
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	cases := []struct {
		name, method, path, body string
		wantCode                 int
		wantRoute                string
	}{
		{"malformed spec", http.MethodPost, "/v1/jobs", `{"families": [`, http.StatusBadRequest, "POST /v1/jobs"},
		{"unknown spec field", http.MethodPost, "/v1/jobs", `{"bogus": 1}`, http.StatusBadRequest, "POST /v1/jobs"},
		{"invalid spec", http.MethodPost, "/v1/jobs", `{"families":["no-such-family"],"sizes":[8],"trials":1}`, http.StatusBadRequest, "POST /v1/jobs"},
		{"unknown job", http.MethodGet, "/v1/jobs/j9999", "", http.StatusNotFound, "GET /v1/jobs/{id}"},
		{"unknown job events", http.MethodGet, "/v1/jobs/j9999/events", "", http.StatusNotFound, "GET /v1/jobs/{id}/events"},
		{"unknown job cancel", http.MethodDelete, "/v1/jobs/j9999", "", http.StatusNotFound, "DELETE /v1/jobs/{id}"},
		{"method not allowed", http.MethodPut, "/v1/jobs/j9999", "", http.StatusMethodNotAllowed, "unmatched"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantCode)
			}
			if tc.wantCode != http.StatusMethodNotAllowed {
				// Error bodies carry the {"error": ...} shape (the 405 is
				// the mux's own plain-text response).
				req2, _ := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
				resp2, err := http.DefaultClient.Do(req2)
				if err != nil {
					t.Fatal(err)
				}
				var body struct {
					Error string `json:"error"`
				}
				err = json.NewDecoder(resp2.Body).Decode(&body)
				resp2.Body.Close()
				if err != nil || body.Error == "" {
					t.Errorf("error body malformed: %v %q", err, body.Error)
				}
			}
		})
	}

	// Each case's increment must be on the scrape (the non-405 cases ran
	// twice: once for the status, once for the body shape).
	_, scrape := metricFamilies(t, ts.URL)
	for _, line := range []string{
		`cobrawalkd_http_requests_total{route="POST /v1/jobs",method="POST",code="400"} 6`,
		`cobrawalkd_http_requests_total{route="GET /v1/jobs/{id}",method="GET",code="404"} 2`,
		`cobrawalkd_http_requests_total{route="GET /v1/jobs/{id}/events",method="GET",code="404"} 2`,
		`cobrawalkd_http_requests_total{route="DELETE /v1/jobs/{id}",method="DELETE",code="404"} 2`,
		`cobrawalkd_http_requests_total{route="unmatched",method="PUT",code="405"} 1`,
	} {
		if !strings.Contains(scrape, line+"\n") {
			t.Errorf("scrape lacks %q", line)
		}
	}

	// And the request log saw them, with IDs and statuses.
	logs := logBuf.String()
	for _, frag := range []string{
		`msg="http request"`, "request_id=", "status=400", "status=404", "status=405",
		`route="POST /v1/jobs"`, `route="GET /v1/jobs/{id}"`, "route=unmatched",
	} {
		if !strings.Contains(logs, frag) {
			t.Errorf("request log lacks %s:\n%s", frag, logs)
		}
	}
}

// TestJobEventsLifecycle runs a job to completion and asserts the span
// trace tells the whole story — queued → running → per-point progress →
// done — on the endpoint, and that job.json carries the same events for
// post-mortems without a live daemon.
func TestJobEventsLifecycle(t *testing.T) {
	dir := t.TempDir()
	// SnapshotInterval is pushed out so the asserted event sequence
	// stays exact — smoke jobs finish in milliseconds, but a scheduling
	// hiccup could otherwise sneak a snapshot event in.
	m := newTestManager(t, dir, Config{TrialWorkers: 2, SnapshotInterval: time.Hour})
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	var st Status
	spec, _ := json.Marshal(smokeSpec())
	if code := httpJSON(t, http.MethodPost, ts.URL+"/v1/jobs", spec, &st); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	st = pollUntil(t, ts.URL, st.ID, terminal)
	if st.State != StateDone {
		t.Fatalf("job settled %s: %s", st.State, st.Error)
	}
	if len(st.Events) != 0 {
		t.Errorf("status payloads must not carry events (got %d)", len(st.Events))
	}

	var got struct {
		ID     string      `json:"id"`
		Events []obs.Event `json:"events"`
	}
	if code := httpJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/events", nil, &got); code != http.StatusOK {
		t.Fatalf("GET events: status %d", code)
	}
	names := make([]string, len(got.Events))
	for i, ev := range got.Events {
		names[i] = ev.Name
		if ev.Time.IsZero() {
			t.Errorf("event %d (%s) has no timestamp", i, ev.Name)
		}
	}
	joined := strings.Join(names, ",")
	// queued, running, then a start/done pair per point, then done.
	if want := "queued,running,point-start,point,point-start,point,done"; joined != want {
		t.Fatalf("event sequence %q, want %q", joined, want)
	}
	for i := 1; i < len(got.Events); i++ {
		if got.Events[i].Time.Before(got.Events[i-1].Time) {
			t.Errorf("events out of order at %d: %v then %v", i, got.Events[i-1], got.Events[i])
		}
	}

	// job.json carries the same trace.
	var rec Record
	blob, err := os.ReadFile(filepath.Join(dir, "jobs", st.ID, "job.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) != len(got.Events) {
		t.Errorf("job.json holds %d events, endpoint served %d", len(rec.Events), len(got.Events))
	}
	if rec.Events[len(rec.Events)-1].Name != "done" {
		t.Errorf("job.json trace does not end in done: %+v", rec.Events[len(rec.Events)-1])
	}
}

// TestHealthzEnriched asserts the liveness payload carries uptime, build
// identity and queue depth alongside the job counters.
func TestHealthzEnriched(t *testing.T) {
	m := newTestManager(t, t.TempDir(), Config{})
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	var got struct {
		Status        string         `json:"status"`
		UptimeSeconds *int64         `json:"uptime_seconds"`
		Build         map[string]any `json:"build"`
		QueueDepth    *int           `json:"queue_depth"`
		Jobs          map[string]int `json:"jobs"`
	}
	if code := httpJSON(t, http.MethodGet, ts.URL+"/v1/healthz", nil, &got); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if got.Status != "ok" || got.UptimeSeconds == nil || got.QueueDepth == nil {
		t.Errorf("healthz payload incomplete: %+v", got)
	}
	if got.Build["module"] != "cobrawalk" || got.Build["go_version"] == "" {
		t.Errorf("healthz build identity incomplete: %+v", got.Build)
	}
}
