package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cobrawalk/internal/core"
	"cobrawalk/internal/sweep"
)

// smokeSpec is the tiny grid the golden tests run: two processes on one
// topology, so the shared graph cache is exercised too.
func smokeSpec() sweep.Spec {
	return sweep.Spec{
		Name:      "smoke",
		Families:  []string{"rand-reg"},
		Sizes:     []int{48},
		Degrees:   []int{4},
		Processes: []string{"cobra", "push"},
		Trials:    5,
		Seed:      11,
		MaxRounds: 1 << 14,
	}
}

// referenceNDJSON runs the spec through the sweep engine directly — the
// exact path cmd/sweep -out takes — and returns results.ndjson.
func referenceNDJSON(t *testing.T, spec sweep.Spec) []byte {
	t.Helper()
	dir := t.TempDir()
	if _, err := sweep.Run(context.Background(), spec, sweep.Options{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "results.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func newTestManager(t *testing.T, dir string, cfg Config) *Manager {
	t.Helper()
	cfg.Dir = dir
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// httpJSON performs a request against the test server and decodes the
// JSON response into out (skipped when out is nil).
func httpJSON(t *testing.T, method, url string, body []byte, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(blob, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, blob, err)
		}
	}
	return resp.StatusCode
}

// pollUntil polls the job status over HTTP until pred holds or the
// deadline passes.
func pollUntil(t *testing.T, base, id string, pred func(Status) bool) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st Status
		if code := httpJSON(t, http.MethodGet, base+"/v1/jobs/"+id, nil, &st); code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not reach the expected state: %+v", id, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func terminal(st Status) bool { return st.State.Terminal() }

// TestServerSmokeGolden is the CI smoke: boot the server over httptest,
// submit a tiny sweep, poll it to done, and golden-diff the streamed
// NDJSON against the sweep engine's own artifacts for the same spec —
// the determinism acceptance criterion, pinned end to end over HTTP.
func TestServerSmokeGolden(t *testing.T) {
	want := referenceNDJSON(t, smokeSpec())

	m := newTestManager(t, t.TempDir(), Config{MaxConcurrent: 2})
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	specBlob, err := json.Marshal(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if code := httpJSON(t, http.MethodPost, ts.URL+"/v1/jobs", specBlob, &st); code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d", code)
	}
	if st.ID == "" || st.Points != 2 {
		t.Fatalf("submitted job = %+v, want an ID and 2 points", st)
	}

	final := pollUntil(t, ts.URL, st.ID, terminal)
	if final.State != StateDone || final.PointsDone != 2 {
		t.Fatalf("job finished as %+v, want done with 2 points", final)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results content type %q", ct)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("server results differ from cmd/sweep artifacts:\nserver: %s\nsweep:  %s", got, want)
	}

	// A second job on the same spec exercises the shared graph cache:
	// same bytes, and /v1/healthz reports the hits.
	var st2 Status
	httpJSON(t, http.MethodPost, ts.URL+"/v1/jobs", specBlob, &st2)
	pollUntil(t, ts.URL, st2.ID, func(s Status) bool { return s.State == StateDone })
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + st2.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	got2, _ := io.ReadAll(resp2.Body)
	if !bytes.Equal(got2, want) {
		t.Fatal("second job's results differ — cache state leaked into results")
	}
	var health struct {
		Status string `json:"status"`
		Cache  struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"cache"`
		Jobs map[string]int `json:"jobs"`
	}
	httpJSON(t, http.MethodGet, ts.URL+"/v1/healthz", nil, &health)
	if health.Status != "ok" {
		t.Fatalf("healthz status %q", health.Status)
	}
	// 4 points total across both jobs, one shared topology: 1 miss.
	if health.Cache.Misses != 1 || health.Cache.Hits != 3 {
		t.Fatalf("cache counters = %+v, want 1 miss / 3 hits", health.Cache)
	}
	if health.Jobs["done"] != 2 {
		t.Fatalf("healthz job counts = %v, want 2 done", health.Jobs)
	}
}

// restartSpec has 8 points whose kwalk trials are slow enough (Θ(n²)
// rounds on a cycle) that the first manager is reliably killed mid-job.
func restartSpec() sweep.Spec {
	return sweep.Spec{
		Name:       "restart",
		Families:   []string{"cycle"},
		Sizes:      []int{256, 320, 384, 448},
		Processes:  []string{"kwalk"},
		Branchings: []core.Branching{{K: 1}, {K: 2}},
		Trials:     10,
		Seed:       23,
	}
}

// TestRestartResumeByteIdentical extends TestResumeByteIdentical to the
// server path: a daemon killed mid-job and restarted on the same data
// dir resumes the job and finishes with results.ndjson byte-identical
// to an uninterrupted cmd/sweep run of the same spec.
func TestRestartResumeByteIdentical(t *testing.T) {
	spec := restartSpec()
	want := referenceNDJSON(t, spec)

	dir := t.TempDir()
	first, err := NewManager(Config{Dir: dir, TrialWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := first.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the daemon once at least one point has completed.
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur, ok := first.Get(st.ID)
		if !ok {
			t.Fatal("job vanished")
		}
		if cur.PointsDone >= 1 {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished before the kill: %+v — restartSpec is too fast for this test", cur)
		}
		if time.Now().After(deadline) {
			t.Fatal("first point never completed")
		}
		time.Sleep(time.Millisecond)
	}
	first.Close()

	// The persisted state must still be resumable, not a terminal one.
	var rec Record
	if err := readJSONFile(filepath.Join(dir, jobsDirName, st.ID, jobFileName), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State.Terminal() {
		t.Fatalf("shutdown persisted terminal state %s", rec.State)
	}

	// Restart: the recovered manager finishes the job.
	second := newTestManager(t, dir, Config{TrialWorkers: 4})
	dl := time.Now().Add(120 * time.Second)
	var final Status
	for {
		var ok bool
		final, ok = second.Get(st.ID)
		if !ok {
			t.Fatal("restarted manager lost the job")
		}
		if final.State.Terminal() {
			break
		}
		if time.Now().After(dl) {
			t.Fatalf("resumed job never finished: %+v", final)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if final.State != StateDone {
		t.Fatalf("resumed job finished as %+v", final)
	}
	if final.PointsResumed < 1 || final.PointsResumed >= final.Points {
		t.Fatalf("resumed %d of %d points, want in [1, %d)", final.PointsResumed, final.Points, final.Points)
	}

	path, err := second.ResultsPath(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed job's results.ndjson differs from an uninterrupted run")
	}
}

// TestCancelJob pins DELETE semantics: a running job with an effectively
// unbounded trial stops promptly and settles as cancelled, after which
// results are a 409 conflict and a second cancel is rejected.
func TestCancelJob(t *testing.T) {
	m := newTestManager(t, t.TempDir(), Config{})
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	// One walker on a 2^18 cycle needs ~10^10 rounds: hours, uncancelled.
	spec := sweep.Spec{
		Families:   []string{"cycle"},
		Sizes:      []int{1 << 18},
		Processes:  []string{"kwalk"},
		Branchings: []core.Branching{{K: 1}},
		Trials:     4,
		Seed:       3,
		MaxRounds:  1 << 40,
	}
	blob, _ := json.Marshal(spec)
	var st Status
	if code := httpJSON(t, http.MethodPost, ts.URL+"/v1/jobs", blob, &st); code != http.StatusAccepted {
		t.Fatalf("POST: status %d", code)
	}
	pollUntil(t, ts.URL, st.ID, func(s Status) bool { return s.State == StateRunning })

	start := time.Now()
	if code := httpJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil, nil); code != http.StatusAccepted {
		t.Fatalf("DELETE: status %d", code)
	}
	final := pollUntil(t, ts.URL, st.ID, terminal)
	if final.State != StateCancelled {
		t.Fatalf("cancelled job settled as %+v", final)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v — the trial did not stop promptly", elapsed)
	}

	var errResp map[string]string
	if code := httpJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/results", nil, &errResp); code != http.StatusConflict {
		t.Fatalf("results of a cancelled job: status %d, want 409", code)
	}
	if code := httpJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil, &errResp); code != http.StatusConflict {
		t.Fatalf("double cancel: status %d, want 409", code)
	}
}

// TestCancelQueuedJob: with one scheduler slot occupied by a long job, a
// queued job cancels without ever running.
func TestCancelQueuedJob(t *testing.T) {
	m := newTestManager(t, t.TempDir(), Config{MaxConcurrent: 1})

	long := sweep.Spec{
		Families: []string{"cycle"}, Sizes: []int{1 << 18},
		Processes: []string{"kwalk"}, Branchings: []core.Branching{{K: 1}},
		Trials: 4, Seed: 3, MaxRounds: 1 << 40,
	}
	blocker, err := m.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, _ := m.Get(queued.ID)
		if st.State == StateCancelled {
			if st.Started != nil || st.PointsDone != 0 {
				t.Fatalf("queued job ran before cancelling: %+v", st)
			}
			break
		}
		if st.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("queued job settled as %+v, want cancelled", st)
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPValidation sweeps the API's error surface.
func TestHTTPValidation(t *testing.T) {
	m := newTestManager(t, t.TempDir(), Config{})
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	var errResp map[string]string
	cases := []struct {
		method, path string
		body         []byte
		wantCode     int
		wantErr      string
	}{
		{"POST", "/v1/jobs", []byte(`{not json`), http.StatusBadRequest, "parsing spec"},
		{"POST", "/v1/jobs", []byte(`{"families":["complete"],"sizes":[16],"trials":1,"sede":1}`), http.StatusBadRequest, "unknown field"},
		{"POST", "/v1/jobs", []byte(`{"families":["mobius"],"sizes":[16],"trials":1}`), http.StatusBadRequest, "unknown family"},
		{"POST", "/v1/jobs", []byte(`{"families":["complete"],"sizes":[16]}`), http.StatusBadRequest, "trials"},
		{"GET", "/v1/jobs/j9999", nil, http.StatusNotFound, "no job"},
		{"DELETE", "/v1/jobs/j9999", nil, http.StatusNotFound, "no job"},
		{"GET", "/v1/jobs/j9999/results", nil, http.StatusNotFound, "no job"},
	}
	for _, tc := range cases {
		errResp = nil
		code := httpJSON(t, tc.method, ts.URL+tc.path, tc.body, &errResp)
		if code != tc.wantCode || !strings.Contains(errResp["error"], tc.wantErr) {
			t.Errorf("%s %s: code %d, err %q; want %d mentioning %q",
				tc.method, tc.path, code, errResp["error"], tc.wantCode, tc.wantErr)
		}
	}

	// Registry and version endpoints respond with the canonical data.
	var procs struct {
		Processes []struct {
			Name string `json:"name"`
		} `json:"processes"`
	}
	httpJSON(t, http.MethodGet, ts.URL+"/v1/processes", nil, &procs)
	if len(procs.Processes) == 0 || procs.Processes[0].Name != "cobra" {
		t.Fatalf("process registry over HTTP = %+v", procs)
	}
	var fams struct {
		Families []struct {
			Name string `json:"name"`
		} `json:"families"`
	}
	httpJSON(t, http.MethodGet, ts.URL+"/v1/families", nil, &fams)
	if len(fams.Families) == 0 || fams.Families[0].Name != "rand-reg" {
		t.Fatalf("family registry over HTTP = %+v", fams)
	}
	var ver struct {
		Module    string `json:"module"`
		GoVersion string `json:"go_version"`
	}
	httpJSON(t, http.MethodGet, ts.URL+"/v1/version", nil, &ver)
	if ver.Module != "cobrawalk" || ver.GoVersion == "" {
		t.Fatalf("/v1/version = %+v", ver)
	}

	// The job listing includes submitted jobs in order.
	if _, err := m.Submit(smokeSpec()); err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []Status `json:"jobs"`
	}
	httpJSON(t, http.MethodGet, ts.URL+"/v1/jobs", nil, &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != "j0001" {
		t.Fatalf("job listing = %+v", list.Jobs)
	}
}

// TestRestoredHistoryIsServable: terminal jobs survive a restart as
// queryable history, including their results.
func TestRestoredHistoryIsServable(t *testing.T) {
	dir := t.TempDir()
	first, err := NewManager(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st, err := first.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur, _ := first.Get(st.ID)
		if cur.State == StateDone {
			break
		}
		if cur.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job settled as %+v", cur)
		}
		time.Sleep(time.Millisecond)
	}
	first.Close()

	second := newTestManager(t, dir, Config{})
	got, ok := second.Get(st.ID)
	if !ok || got.State != StateDone {
		t.Fatalf("restored job = %+v, %v", got, ok)
	}
	if _, err := second.ResultsPath(st.ID); err != nil {
		t.Fatal(err)
	}
	// The next submission does not reuse the restored job's ID.
	next, err := second.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if next.ID == st.ID {
		t.Fatalf("ID %s reused after restart", next.ID)
	}
}

// TestRestoreToleratesDamage: a foreign directory and a job with an
// unreadable record must not keep the daemon from booting; healthy jobs
// restore, skipped IDs are never reused, and the damaged directory is
// left in place for the operator.
func TestRestoreToleratesDamage(t *testing.T) {
	dir := t.TempDir()
	first, err := NewManager(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st, err := first.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur, _ := first.Get(st.ID)
		if cur.State == StateDone {
			break
		}
		if cur.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job settled as %+v", cur)
		}
		time.Sleep(time.Millisecond)
	}
	first.Close()

	// Damage the data dir: a foreign directory and a job with garbage.
	jobsDir := filepath.Join(dir, jobsDirName)
	if err := os.MkdirAll(filepath.Join(jobsDir, "backup"), 0o755); err != nil {
		t.Fatal(err)
	}
	corrupt := filepath.Join(jobsDir, "j0099")
	if err := os.MkdirAll(corrupt, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(corrupt, jobFileName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	second := newTestManager(t, dir, Config{})
	if got, ok := second.Get(st.ID); !ok || got.State != StateDone {
		t.Fatalf("healthy job lost after damaged restore: %+v, %v", got, ok)
	}
	if _, ok := second.Get("j0099"); ok {
		t.Fatal("corrupt job should not be served")
	}
	next, err := second.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if next.ID != "j0100" {
		t.Fatalf("next ID = %s, want j0100 (skipped j0099 must still advance the counter)", next.ID)
	}
	if blob, err := os.ReadFile(filepath.Join(corrupt, jobFileName)); err != nil || string(blob) != "{not json" {
		t.Fatalf("damaged record was touched: %q, %v", blob, err)
	}
}

// trajectorySpec is smokeSpec with trajectory metrics enabled, on the
// two core paper processes.
func trajectorySpec() sweep.Spec {
	s := smokeSpec()
	s.Name = "traj"
	s.Processes = []string{"cobra", "bips"}
	s.Metrics = []string{"rounds", "transmissions", "coverage", "frontier"}
	return s
}

// TestTrajectoriesEndpointGolden is the acceptance pin for the serving
// layer: GET /v1/jobs/{id}/trajectories streams per-round quantile bands
// that match the cmd/sweep artifacts for the same spec — every band line
// equals the trajectory block of the corresponding persisted record.
func TestTrajectoriesEndpointGolden(t *testing.T) {
	spec := trajectorySpec()
	wantResults := referenceNDJSON(t, spec)

	m := newTestManager(t, t.TempDir(), Config{})
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	specBlob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if code := httpJSON(t, http.MethodPost, ts.URL+"/v1/jobs", specBlob, &st); code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d", code)
	}

	final := pollUntil(t, ts.URL, st.ID, terminal)
	if final.State != StateDone {
		t.Fatalf("job finished as %+v", final)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/trajectories")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trajectories content type %q", ct)
	}
	type band struct {
		ID     string    `json:"id"`
		Metric string    `json:"metric"`
		Rounds []int     `json:"rounds"`
		N      []int     `json:"n"`
		Mean   []float64 `json:"mean"`
		P10    []float64 `json:"p10"`
		P50    []float64 `json:"p50"`
		P90    []float64 `json:"p90"`
	}
	var bands []band
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var b band
		if err := dec.Decode(&b); err != nil {
			t.Fatal(err)
		}
		bands = append(bands, b)
	}
	// 2 points × 2 trajectory metrics, metric names sorted per point.
	if len(bands) != 4 {
		t.Fatalf("got %d band lines, want 4", len(bands))
	}

	// Golden: the bands must equal the trajectory blocks of the sweep
	// engine's own artifacts for the same spec.
	var wantBands []band
	rdec := json.NewDecoder(bytes.NewReader(wantResults))
	for rdec.More() {
		var res sweep.Result
		if err := rdec.Decode(&res); err != nil {
			t.Fatal(err)
		}
		for _, metric := range []string{"coverage", "frontier"} {
			traj, ok := res.Trajectory(metric)
			if !ok {
				t.Fatalf("reference record %s lacks %s", res.ID, metric)
			}
			wantBands = append(wantBands, band{
				ID: res.ID, Metric: metric,
				Rounds: traj.Rounds, N: traj.N, Mean: traj.Mean,
				P10: traj.P10, P50: traj.P50, P90: traj.P90,
			})
		}
	}
	if len(bands) != len(wantBands) {
		t.Fatalf("band count %d vs reference %d", len(bands), len(wantBands))
	}
	for i := range bands {
		got, _ := json.Marshal(bands[i])
		want, _ := json.Marshal(wantBands[i])
		if !bytes.Equal(got, want) {
			t.Fatalf("band %d differs:\nserver: %s\nsweep:  %s", i, got, want)
		}
	}

	// Sanity on the shape itself: bands are quantile-ordered per round
	// and the start column saw every trial.
	for _, b := range bands {
		if b.N[0] != spec.Trials {
			t.Fatalf("band %s/%s start column n = %d, want %d", b.ID, b.Metric, b.N[0], spec.Trials)
		}
		for k := range b.Rounds {
			if b.P10[k] > b.P50[k] || b.P50[k] > b.P90[k] {
				t.Fatalf("band %s/%s column %d not ordered: %v %v %v",
					b.ID, b.Metric, k, b.P10[k], b.P50[k], b.P90[k])
			}
		}
	}

	// A job without trajectory metrics streams an empty body, not an error.
	leanBlob, _ := json.Marshal(smokeSpec())
	var lean Status
	httpJSON(t, http.MethodPost, ts.URL+"/v1/jobs", leanBlob, &lean)
	pollUntil(t, ts.URL, lean.ID, terminal)
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + lean.ID + "/trajectories")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if body, _ := io.ReadAll(resp2.Body); resp2.StatusCode != http.StatusOK || len(body) != 0 {
		t.Fatalf("trajectory-less job: status %d body %q, want 200 with empty body", resp2.StatusCode, body)
	}

	// Unknown job → 404.
	var errResp map[string]string
	if code := httpJSON(t, http.MethodGet, ts.URL+"/v1/jobs/j9999/trajectories", nil, &errResp); code != http.StatusNotFound {
		t.Fatalf("unknown job trajectories: status %d", code)
	}
}

// TestMetricsAndCacheStatsEndpoints pins the two new registry/observability
// endpoints: /v1/metrics lists the sweep metric registry and
// /v1/cachestats serves the shared graph cache counters.
func TestMetricsAndCacheStatsEndpoints(t *testing.T) {
	m := newTestManager(t, t.TempDir(), Config{})
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	var metrics struct {
		Metrics []struct {
			Name       string `json:"name"`
			Trajectory bool   `json:"trajectory"`
			Summary    string `json:"summary"`
		} `json:"metrics"`
	}
	httpJSON(t, http.MethodGet, ts.URL+"/v1/metrics", nil, &metrics)
	if len(metrics.Metrics) != len(sweep.MetricNames()) {
		t.Fatalf("metric registry over HTTP = %+v", metrics)
	}
	if metrics.Metrics[0].Name != "rounds" || metrics.Metrics[0].Trajectory {
		t.Fatalf("first metric = %+v, want scalar rounds", metrics.Metrics[0])
	}

	var stBefore struct {
		Hits   uint64 `json:"hits"`
		Misses uint64 `json:"misses"`
		Budget int    `json:"budget"`
	}
	httpJSON(t, http.MethodGet, ts.URL+"/v1/cachestats", nil, &stBefore)
	if stBefore.Hits != 0 || stBefore.Misses != 0 || stBefore.Budget <= 0 {
		t.Fatalf("fresh cache stats = %+v", stBefore)
	}

	specBlob, _ := json.Marshal(smokeSpec())
	var st Status
	httpJSON(t, http.MethodPost, ts.URL+"/v1/jobs", specBlob, &st)
	pollUntil(t, ts.URL, st.ID, terminal)

	var stAfter struct {
		Hits   uint64 `json:"hits"`
		Misses uint64 `json:"misses"`
	}
	httpJSON(t, http.MethodGet, ts.URL+"/v1/cachestats", nil, &stAfter)
	// 2 points, 1 topology: one build, one hit.
	if stAfter.Misses != 1 || stAfter.Hits != 1 {
		t.Fatalf("cache stats after job = %+v, want 1 miss / 1 hit", stAfter)
	}
}
