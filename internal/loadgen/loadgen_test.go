package loadgen

import (
	"context"
	"testing"
	"time"

	"cobrawalk/internal/sweep"
)

func TestQuantileNearestRank(t *testing.T) {
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 51 * time.Millisecond},
		{0.99, 100 * time.Millisecond},
		{1.00, 100 * time.Millisecond}, // index clamps to the last sample
		{0.00, 1 * time.Millisecond},
	} {
		if got := quantile(lats, tc.q); got != tc.want {
			t.Errorf("quantile(%.2f) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("empty BaseURL should fail")
	}
	if _, err := Run(context.Background(), Config{
		BaseURL: "http://127.0.0.1:1", Scenarios: []string{"bogus"},
	}); err == nil {
		t.Error("unknown scenario should fail")
	}
}

// TestSelfServeRoundTrip drives the full harness against an in-process
// daemon: both scenarios complete operations, error-free, and the
// report carries coherent latency quantiles.
func TestSelfServeRoundTrip(t *testing.T) {
	base, stop, err := SelfServe(t.TempDir(), 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	rep, err := Run(context.Background(), Config{
		BaseURL:  base,
		Clients:  2,
		Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Target != base || rep.Clients != 2 || len(rep.Scenarios) != 2 {
		t.Fatalf("report header: %+v", rep)
	}
	for _, name := range []string{"status", "job"} {
		s, ok := rep.Scenario(name)
		if !ok {
			t.Fatalf("scenario %s missing", name)
		}
		if s.Ops == 0 || s.Errors != 0 {
			t.Errorf("%s: ops=%d errors=%d, want ops>0 errors=0", name, s.Ops, s.Errors)
		}
		if s.P50Ms <= 0 || s.P99Ms < s.P50Ms || s.MaxMs < s.P99Ms {
			t.Errorf("%s: incoherent quantiles p50=%v p99=%v max=%v", name, s.P50Ms, s.P99Ms, s.MaxMs)
		}
		if s.PerSecond <= 0 {
			t.Errorf("%s: per_second=%v", name, s.PerSecond)
		}
	}
	if rep.Streaming != nil {
		t.Fatalf("streaming block present without StreamSubscribers: %+v", rep.Streaming)
	}
}

// TestStreamingScenario holds a small subscriber pool on an in-flight
// job against an in-process daemon: every subscriber connects, sees
// timestamped snapshot events, and — being local loopback readers —
// keeps up with zero sequence gaps.
func TestStreamingScenario(t *testing.T) {
	base, stop, err := SelfServe(t.TempDir(), 2, 2, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	// A fast-folding endless job: trials are near-instant on a small
	// complete graph, so snapshots arrive every interval regardless of
	// scheduling noise (the default cycle walk has long trials, and
	// snapshots deliver at trial folds).
	streamSpec := sweep.Spec{
		Name:      "stream-test",
		Families:  []string{"complete"},
		Sizes:     []int{64},
		Processes: []string{"push"},
		Metrics:   []string{"rounds"},
		Trials:    1 << 30,
		Seed:      1,
	}
	rep, err := Run(context.Background(), Config{
		BaseURL:           base,
		Clients:           2,
		Duration:          700 * time.Millisecond,
		Scenarios:         []string{"status"},
		StreamSubscribers: 32,
		StreamSpec:        streamSpec,
	})
	if err != nil {
		t.Fatal(err)
	}
	sr := rep.Streaming
	if sr == nil {
		t.Fatal("report has no streaming block")
	}
	if sr.Subscribers != 32 || sr.Connected != 32 || sr.Errors != 0 {
		t.Fatalf("subscribers=%d connected=%d errors=%d, want 32/32/0", sr.Subscribers, sr.Connected, sr.Errors)
	}
	if sr.Events == 0 || sr.Snapshots == 0 {
		t.Fatalf("events=%d snapshots=%d, want both > 0", sr.Events, sr.Snapshots)
	}
	if sr.GappedSubscribers != 0 {
		t.Fatalf("%d keeping-up subscribers saw sequence gaps", sr.GappedSubscribers)
	}
	if sr.FanoutP50Ms <= 0 || sr.FanoutP99Ms < sr.FanoutP50Ms || sr.FanoutMaxMs < sr.FanoutP99Ms {
		t.Fatalf("incoherent fan-out quantiles p50=%v p99=%v max=%v", sr.FanoutP50Ms, sr.FanoutP99Ms, sr.FanoutMaxMs)
	}
}
