package loadgen

// stream.go is the fan-out half of the harness: it holds thousands of
// concurrent SSE subscriptions on one in-flight job and measures what
// the hub actually delivers — per-event fan-out latency (publish
// timestamp to client receipt, from the snapshot payload's "t" field)
// and drop-policy health (a keeping-up client must see gapless event
// ids). The job watched is deliberately endless (DefaultStreamSpec), so
// the event source stays live for the whole window; it is cancelled
// when the measurement ends.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cobrawalk/internal/core"
	"cobrawalk/internal/server"
	"cobrawalk/internal/sweep"
)

// DefaultStreamSpec is the job the streaming scenario watches: one
// walker on a long cycle is a slow cover — minutes of trials at an
// effectively unbounded trials count — with scalar-only metrics, so
// each snapshot frame stays a few hundred bytes no matter how many
// subscribers it fans out to.
func DefaultStreamSpec() sweep.Spec {
	return sweep.Spec{
		Name:       "loadgen-stream",
		Families:   []string{"cycle"},
		Sizes:      []int{4096},
		Processes:  []string{"kwalk"},
		Branchings: []core.Branching{{K: 1}},
		Metrics:    []string{"rounds"},
		Trials:     1 << 30,
		Seed:       1,
		MaxRounds:  1 << 40,
	}
}

// StreamingResult is the streaming scenario's measurement, reported as
// a top-level block beside the closed-loop scenarios (benchgate gates
// only Scenarios, so this block can grow freely).
type StreamingResult struct {
	// Subscribers is the requested concurrent subscription count;
	// Connected is how many attached successfully.
	Subscribers int `json:"subscribers"`
	Connected   int `json:"connected"`
	// Events / Snapshots count SSE events received across all
	// subscribers (snapshots are the timestamped subset).
	Events    int64 `json:"events"`
	Snapshots int64 `json:"snapshots"`
	// GappedSubscribers counts clients that observed a hole in the
	// event-id sequence — events dropped by the hub's drop-slowest
	// policy because that client fell behind. Keeping-up clients must
	// report zero.
	GappedSubscribers int `json:"gapped_subscribers"`
	Errors            int `json:"errors,omitempty"`
	// DurationSeconds is the measured window (connect to teardown).
	DurationSeconds float64 `json:"duration_seconds"`
	// Fan-out latency quantiles in milliseconds: snapshot publish
	// timestamp to client receipt, across every snapshot × subscriber.
	FanoutP50Ms float64 `json:"fanout_p50_ms"`
	FanoutP99Ms float64 `json:"fanout_p99_ms"`
	FanoutMaxMs float64 `json:"fanout_max_ms"`
}

// subOut is one subscriber's tally.
type subOut struct {
	events    int64
	snapshots int64
	lat       []time.Duration
	gapped    bool
	err       error
}

// runStreaming submits the endless stream job, attaches
// cfg.StreamSubscribers concurrent SSE clients in staggered batches,
// holds them for cfg.Duration, then tears everything down and folds
// the per-subscriber tallies.
func runStreaming(ctx context.Context, cfg Config) (*StreamingResult, error) {
	spec := cfg.StreamSpec
	if spec.Families == nil {
		spec = DefaultStreamSpec()
	}
	blob, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	submit := &http.Client{Timeout: 30 * time.Second}
	resp, err := submit.Post(cfg.BaseURL+"/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		return nil, fmt.Errorf("loadgen: submitting stream job: %w", err)
	}
	var st server.Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("loadgen: submitting stream job: status %d, %v", resp.StatusCode, err)
	}
	defer func() {
		// Best-effort cancel: the watched job is endless by design.
		req, _ := http.NewRequest(http.MethodDelete, cfg.BaseURL+"/v1/jobs/"+st.ID, nil)
		if resp, err := submit.Do(req); err == nil {
			resp.Body.Close()
		}
	}()

	// Streams outlive any sane request timeout: a dedicated client with
	// no Timeout, bounded by the subscriber context instead, over a
	// transport that tolerates the connection count.
	streamClient := &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: cfg.StreamSubscribers,
		MaxConnsPerHost:     0,
	}}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()

	url := cfg.BaseURL + "/v1/jobs/" + st.ID + "/stream"
	outs := make([]subOut, cfg.StreamSubscribers)
	start := time.Now()
	var wg sync.WaitGroup
	const batch = 256
	for i := range outs {
		wg.Add(1)
		go func(out *subOut) {
			defer wg.Done()
			streamSubscriber(sctx, streamClient, url, out)
		}(&outs[i])
		if (i+1)%batch == 0 {
			time.Sleep(10 * time.Millisecond) // stagger the dial burst
		}
	}
	timer := time.NewTimer(cfg.Duration)
	select {
	case <-timer.C:
	case <-ctx.Done():
		timer.Stop()
	}
	cancel()
	wg.Wait()
	elapsed := time.Since(start)

	res := &StreamingResult{
		Subscribers:     cfg.StreamSubscribers,
		DurationSeconds: elapsed.Seconds(),
	}
	var lats []time.Duration
	for i := range outs {
		o := &outs[i]
		if o.err != nil {
			res.Errors++
			continue
		}
		res.Connected++
		res.Events += o.events
		res.Snapshots += o.snapshots
		if o.gapped {
			res.GappedSubscribers++
		}
		lats = append(lats, o.lat...)
	}
	if res.Connected == 0 {
		return nil, fmt.Errorf("loadgen: no stream subscriber connected (%d errors, first: %v)", res.Errors, firstErr(outs))
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
		res.FanoutP50Ms = ms(quantile(lats, 0.50))
		res.FanoutP99Ms = ms(quantile(lats, 0.99))
		res.FanoutMaxMs = ms(lats[len(lats)-1])
	}
	return res, nil
}

func firstErr(outs []subOut) error {
	for i := range outs {
		if outs[i].err != nil {
			return outs[i].err
		}
	}
	return nil
}

// streamSubscriber holds one SSE subscription until ctx cancels,
// tallying events, sequence gaps and snapshot fan-out latencies. The
// event-id stream within one job is consecutive, so any hole after the
// first received id is a server-side drop (this client fell behind).
func streamSubscriber(ctx context.Context, client *http.Client, url string, out *subOut) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		out.err = err
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			out.err = err
		}
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		out.err = fmt.Errorf("GET stream: %s", resp.Status)
		return
	}

	var lastSeq uint64
	var isSnapshot bool
	var publishT int64
	// Small initial buffer: snapshot frames are a few hundred bytes and
	// ten thousand subscribers each hold one of these.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 4<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			out.events++
			if isSnapshot {
				out.snapshots++
				if publishT > 0 {
					out.lat = append(out.lat, time.Since(time.Unix(0, publishT)))
				}
			}
			isSnapshot, publishT = false, 0
		case strings.HasPrefix(line, "id: "):
			seq, err := strconv.ParseUint(line[len("id: "):], 10, 64)
			if err == nil {
				if lastSeq != 0 && seq != lastSeq+1 {
					out.gapped = true
				}
				lastSeq = seq
			}
		case strings.HasPrefix(line, "event: "):
			isSnapshot = line[len("event: "):] == "snapshot"
		case strings.HasPrefix(line, "data: ") && isSnapshot:
			var snap struct {
				T int64 `json:"t"`
			}
			if json.Unmarshal([]byte(line[len("data: "):]), &snap) == nil {
				publishT = snap.T
			}
		}
	}
	// The stream ends when ctx cancels (expected) or the connection
	// breaks (an error only if we never saw the cancel).
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		out.err = err
	}
}
