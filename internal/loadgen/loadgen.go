// Package loadgen is the serving-path load harness behind cmd/loadgen:
// a closed-loop (vegeta-style) HTTP client pool that drives a cobrawalkd
// and measures what the daemon actually delivers — request latency
// quantiles on the read path and end-to-end job throughput on the write
// path. Its report is the repo's serving-path perf anchor
// (BENCH_http.json), gated in CI by cmd/benchgate.
//
// Closed-loop means each client issues its next operation only after the
// previous one completed: concurrency is fixed at Config.Clients and the
// measured rate is what the server sustains at that concurrency, not a
// target rate the harness forces.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"cobrawalk/internal/server"
	"cobrawalk/internal/sweep"
)

// Config describes one load run.
type Config struct {
	// BaseURL targets a running daemon ("http://127.0.0.1:8321").
	BaseURL string
	// Clients is the closed-loop concurrency (default 8).
	Clients int
	// Duration bounds each scenario (default 5s).
	Duration time.Duration
	// JobSpec is the sweep spec the job scenario submits; zero value =
	// DefaultJobSpec.
	JobSpec sweep.Spec
	// Scenarios selects which scenarios run (nil = all): "status" is the
	// read path (GET /v1/healthz), "job" the full write path (submit →
	// poll to done → fetch results).
	Scenarios []string
	// StreamSubscribers > 0 additionally runs the streaming scenario:
	// that many concurrent SSE subscribers held on one in-flight job for
	// Duration, measuring fan-out latency and drop-policy health (see
	// stream.go). Reported as Report.Streaming, outside Scenarios.
	StreamSubscribers int
	// StreamSpec is the job the streaming scenario watches; zero value =
	// DefaultStreamSpec (endless by design — it is cancelled afterwards).
	StreamSpec sweep.Spec
}

// DefaultJobSpec is a deliberately tiny sweep — one complete-graph push
// point, a handful of trials — so the job scenario measures serving
// overhead (scheduling, persistence, HTTP) rather than simulation time.
func DefaultJobSpec() sweep.Spec {
	return sweep.Spec{
		Name:      "loadgen",
		Families:  []string{"complete"},
		Sizes:     []int{64},
		Processes: []string{"push"},
		Metrics:   []string{"rounds"},
		Trials:    4,
		Seed:      1,
	}
}

// ScenarioResult is one scenario's measurement.
type ScenarioResult struct {
	Name string `json:"name"`
	// Ops counts completed operations (requests for status, full job
	// round-trips for job); Errors counts failed ones (not in Ops).
	Ops    int `json:"ops"`
	Errors int `json:"errors,omitempty"`
	// DurationSeconds is the measured wall time of the scenario.
	DurationSeconds float64 `json:"duration_seconds"`
	// PerSecond is Ops/DurationSeconds — requests/sec for status,
	// jobs/sec for job.
	PerSecond float64 `json:"per_second"`
	// Latency quantiles over completed operations, in milliseconds.
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Report is the full harness output, serialised into BENCH_http.json.
type Report struct {
	Benchmark string           `json:"benchmark"`
	Target    string           `json:"target"`
	Clients   int              `json:"clients"`
	Scenarios []ScenarioResult `json:"scenarios"`
	// Streaming is the SSE fan-out measurement, present when
	// Config.StreamSubscribers > 0. It lives outside Scenarios so the
	// benchgate scenario gate is unaffected by streaming runs.
	Streaming *StreamingResult `json:"streaming,omitempty"`
}

// Scenario returns the named scenario's result.
func (r *Report) Scenario(name string) (ScenarioResult, bool) {
	for _, s := range r.Scenarios {
		if s.Name == name {
			return s, true
		}
	}
	return ScenarioResult{}, false
}

// Run executes the configured scenarios in order against cfg.BaseURL.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: Config.BaseURL is required")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.JobSpec.Families == nil {
		cfg.JobSpec = DefaultJobSpec()
	}
	scenarios := cfg.Scenarios
	if scenarios == nil {
		scenarios = []string{"status", "job"}
	}
	client := &http.Client{Timeout: 30 * time.Second}
	rep := &Report{Benchmark: "loadgen", Target: cfg.BaseURL, Clients: cfg.Clients}
	for _, name := range scenarios {
		var op func(c *http.Client) error
		switch name {
		case "status":
			op = func(c *http.Client) error { return getOK(c, cfg.BaseURL+"/v1/healthz") }
		case "job":
			op = func(c *http.Client) error { return jobRoundTrip(c, cfg.BaseURL, cfg.JobSpec) }
		default:
			return nil, fmt.Errorf("loadgen: unknown scenario %q (want status or job)", name)
		}
		res, err := runScenario(ctx, name, cfg, client, op)
		if err != nil {
			return nil, err
		}
		rep.Scenarios = append(rep.Scenarios, res)
	}
	if cfg.StreamSubscribers > 0 {
		sr, err := runStreaming(ctx, cfg)
		if err != nil {
			return nil, err
		}
		rep.Streaming = sr
	}
	return rep, nil
}

// runScenario spins cfg.Clients closed loops over op until the deadline,
// then folds every client's latencies into quantiles.
func runScenario(ctx context.Context, name string, cfg Config, client *http.Client, op func(*http.Client) error) (ScenarioResult, error) {
	deadline := time.Now().Add(cfg.Duration)
	dctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()

	type clientOut struct {
		lat    []time.Duration
		errs   int
		lastOp error
	}
	outs := make([]clientOut, cfg.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(out *clientOut) {
			defer wg.Done()
			for dctx.Err() == nil && time.Now().Before(deadline) {
				t0 := time.Now()
				if err := op(client); err != nil {
					out.errs++
					out.lastOp = err
					continue
				}
				out.lat = append(out.lat, time.Since(t0))
			}
		}(&outs[i])
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lats []time.Duration
	errs := 0
	var lastErr error
	for _, o := range outs {
		lats = append(lats, o.lat...)
		errs += o.errs
		if o.lastOp != nil {
			lastErr = o.lastOp
		}
	}
	if len(lats) == 0 {
		if lastErr != nil {
			return ScenarioResult{}, fmt.Errorf("loadgen: scenario %s completed no operations (%d errors, last: %w)", name, errs, lastErr)
		}
		return ScenarioResult{}, fmt.Errorf("loadgen: scenario %s completed no operations in %s", name, cfg.Duration)
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	var sum time.Duration
	for _, d := range lats {
		sum += d
	}
	return ScenarioResult{
		Name:            name,
		Ops:             len(lats),
		Errors:          errs,
		DurationSeconds: elapsed.Seconds(),
		PerSecond:       float64(len(lats)) / elapsed.Seconds(),
		P50Ms:           ms(quantile(lats, 0.50)),
		P99Ms:           ms(quantile(lats, 0.99)),
		MeanMs:          ms(sum / time.Duration(len(lats))),
		MaxMs:           ms(lats[len(lats)-1]),
	}, nil
}

// quantile reads the q-quantile from sorted latencies (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func getOK(c *http.Client, url string) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return nil
}

// jobRoundTrip is one full write-path operation: submit a job, poll its
// status until terminal, stream its results. The poll interval is a
// small fixed backoff — short enough that serving latency, not polling,
// dominates the tiny DefaultJobSpec turnaround.
func jobRoundTrip(c *http.Client, base string, spec sweep.Spec) error {
	blob, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := c.Post(base+"/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	var st server.Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("decoding submit response: %w", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("POST /v1/jobs: status %d", resp.StatusCode)
	}
	for !st.State.Terminal() {
		time.Sleep(time.Millisecond)
		resp, err := c.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			return err
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("decoding job status: %w", err)
		}
	}
	if st.State != server.StateDone {
		return fmt.Errorf("job %s settled %s: %s", st.ID, st.State, st.Error)
	}
	return getOK(c, base+"/v1/jobs/"+st.ID+"/results")
}

// SelfServe boots an in-process daemon — a Manager over dir plus the
// full instrumented handler — on a loopback listener, returning its base
// URL and a shutdown function. It is how cmd/loadgen -self and the CI
// smoke measure the serving path without managing a separate process.
// snapshotInterval spaces the daemon's mid-ensemble stream snapshots
// (0 = the server default).
func SelfServe(dir string, maxJobs, trialWorkers int, snapshotInterval time.Duration) (string, func(), error) {
	m, err := server.NewManager(server.Config{
		Dir:              dir,
		MaxConcurrent:    maxJobs,
		TrialWorkers:     trialWorkers,
		SnapshotInterval: snapshotInterval,
	})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		m.Close()
		return "", nil, err
	}
	srv := &http.Server{Handler: server.NewHandler(m)}
	go srv.Serve(ln)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		m.Close()
	}
	return "http://" + ln.Addr().String(), stop, nil
}
