package graph

// BFS runs a breadth-first search from src and returns the distance (in
// hops) to every vertex; unreachable vertices get -1.
func (g *Graph) BFS(src int32) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	if g.N() == 0 {
		return dist
	}
	dist[src] = 0
	queue := make([]int32, 0, g.N())
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := dist[v]
		for _, u := range g.Neighbors(v) {
			if dist[u] < 0 {
				dist[u] = dv + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// IsConnected reports whether the graph is connected. The empty graph and
// the single-vertex graph are connected.
func (g *Graph) IsConnected() bool {
	if g.N() <= 1 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// ConnectedComponents returns, for each vertex, the index of its component
// (components numbered in order of discovery from vertex 0), along with the
// number of components.
func (g *Graph) ConnectedComponents() (comp []int32, count int) {
	n := g.N()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int32, 0, n)
	for s := int32(0); s < int32(n); s++ {
		if comp[s] >= 0 {
			continue
		}
		c := int32(count)
		count++
		comp[s] = c
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				if comp[u] < 0 {
					comp[u] = c
					queue = append(queue, u)
				}
			}
		}
	}
	return comp, count
}

// IsBipartite reports whether the graph is bipartite, i.e. 2-colourable.
// For connected regular graphs this is equivalent to λ_n = -1, the case the
// paper's theorems exclude (they require λ = max|λ_i| < 1).
func (g *Graph) IsBipartite() bool {
	n := g.N()
	colour := make([]int8, n) // 0 = unvisited, 1 / 2 = the two sides
	queue := make([]int32, 0, n)
	for s := int32(0); s < int32(n); s++ {
		if colour[s] != 0 {
			continue
		}
		colour[s] = 1
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				switch colour[u] {
				case 0:
					colour[u] = 3 - colour[v]
					queue = append(queue, u)
				case colour[v]:
					return false
				}
			}
		}
	}
	return true
}

// Eccentricity returns the maximum BFS distance from v to any vertex, or -1
// if some vertex is unreachable.
func (g *Graph) Eccentricity(v int32) int {
	ecc := 0
	for _, d := range g.BFS(v) {
		if d < 0 {
			return -1
		}
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc
}

// Diameter computes the exact diameter by running a BFS from every vertex.
// It costs O(n·m) and is intended for the small graphs used in tests and
// exact experiments; -1 means disconnected.
func (g *Graph) Diameter() int {
	if g.N() == 0 {
		return 0
	}
	diam := 0
	for v := int32(0); v < int32(g.N()); v++ {
		e := g.Eccentricity(v)
		if e < 0 {
			return -1
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// DegreeHistogram returns a map from degree to the number of vertices with
// that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for v := int32(0); v < int32(g.N()); v++ {
		h[g.Degree(v)]++
	}
	return h
}

// Triangles counts the number of triangles in the graph. Used by tests to
// cross-check generators against closed-form counts. O(sum of deg^2) via
// edge-iterator with sorted-adjacency intersection.
func (g *Graph) Triangles() int64 {
	var count int64
	g.Edges(func(u, v int32) bool {
		count += int64(sortedIntersectionSize(g.Neighbors(u), g.Neighbors(v)))
		return true
	})
	return count / 3 // each triangle counted once per edge
}

func sortedIntersectionSize(a, b []int32) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}
